(* Integration tests: the XenLoop module end-to-end in the scenario worlds —
   discovery, on-demand channel bootstrap, data-path switching, teardown,
   FIFO-size fallback, and transparent live migration. *)

module Setup = Scenarios.Setup
module Experiment = Scenarios.Experiment
module Mw = Scenarios.Migration_world
module Gm = Xenloop.Guest_module
module Domain = Hypervisor.Domain
module Stack = Netstack.Stack

let host_of (ep : Scenarios.Endpoint.t) =
  { Workloads.Host.stack = ep.Scenarios.Endpoint.stack; udp = ep.udp; tcp = ep.tcp }

let modules_of duo =
  match duo.Setup.modules with
  | [ m1; m2 ] -> (m1, m2)
  | _ -> Alcotest.fail "expected two xenloop modules"

(* ------------------------------------------------------------------ *)

let test_discovery_populates_mapping () =
  let duo = Setup.build Setup.Xenloop_path in
  let m1, m2 = modules_of duo in
  Experiment.execute duo (fun () ->
      Alcotest.(check int) "guest1 sees one peer" 1 (Gm.mapping_size m1);
      Alcotest.(check int) "guest2 sees one peer" 1 (Gm.mapping_size m2))

let test_channel_bootstraps_on_traffic () =
  let duo = Setup.build Setup.Xenloop_path in
  let m1, m2 = modules_of duo in
  Experiment.execute duo (fun () ->
      (* warmup already pinged: the channel must exist and be symmetric. *)
      Alcotest.(check (list int)) "guest1 connected to dom 2" [ 2 ]
        (Gm.connected_peer_ids m1);
      Alcotest.(check (list int)) "guest2 connected to dom 1" [ 1 ]
        (Gm.connected_peer_ids m2);
      (* The guest with the smaller domid is the listener: exactly one
         bootstrap each (one Request_channel, one Create). *)
      Alcotest.(check int) "one channel each" 1 (Gm.stats m1).Gm.channels_established;
      Alcotest.(check int) "one channel each" 1 (Gm.stats m2).Gm.channels_established)

let test_data_flows_through_channel () =
  let duo = Setup.build Setup.Xenloop_path in
  let m1, _ = modules_of duo in
  let client = host_of duo.Setup.client and server = host_of duo.Setup.server in
  Experiment.execute duo (fun () ->
      let before = (Gm.stats m1).Gm.via_channel_tx in
      let result =
        Workloads.Netperf.udp_rr ~client ~server ~dst:duo.Setup.server_ip
          ~transactions:50 ()
      in
      Alcotest.(check int) "transactions completed" 50 result.Workloads.Netperf.transactions;
      Alcotest.(check bool) "requests rode the channel" true
        ((Gm.stats m1).Gm.via_channel_tx >= before + 50))

let test_udp_data_integrity_through_fifo () =
  let duo = Setup.build Setup.Xenloop_path in
  let client = host_of duo.Setup.client and server = host_of duo.Setup.server in
  Experiment.execute duo (fun () ->
      let server_sock =
        match Netstack.Udp.bind server.Workloads.Host.udp ~port:901 () with
        | Ok s -> s
        | Error _ -> Alcotest.fail "bind"
      in
      let client_sock =
        match Netstack.Udp.bind client.Workloads.Host.udp () with
        | Ok s -> s
        | Error _ -> Alcotest.fail "bind"
      in
      (* Large enough to fragment at the MTU: every fragment crosses the
         FIFO as real bytes and is reassembled on the far side. *)
      let data = Bytes.init 30_000 (fun i -> Char.chr ((i * 13) land 0xff)) in
      Netstack.Udp.sendto client_sock ~dst:duo.Setup.server_ip ~dst_port:901 data;
      let _, _, got = Netstack.Udp.recvfrom server_sock in
      Alcotest.(check bool) "bytes identical through shared memory" true
        (Bytes.equal data got))

let test_tcp_stream_integrity_through_fifo () =
  let duo = Setup.build Setup.Xenloop_path in
  let client = host_of duo.Setup.client and server = host_of duo.Setup.server in
  Experiment.execute duo (fun () ->
      let listener =
        match Netstack.Tcp.listen server.Workloads.Host.tcp ~port:902 with
        | Ok l -> l
        | Error _ -> Alcotest.fail "listen"
      in
      let n = 1_000_000 in
      let data = Bytes.init n (fun i -> Char.chr ((i * 31) land 0xff)) in
      let got = ref Bytes.empty in
      Sim.Engine.spawn duo.Setup.engine (fun () ->
          let conn = Netstack.Tcp.accept listener in
          got := Netstack.Tcp.recv_exact conn n);
      (match
         Netstack.Tcp.connect client.Workloads.Host.tcp ~dst:duo.Setup.server_ip
           ~dst_port:902 ()
       with
      | Ok conn -> Netstack.Tcp.send conn data
      | Error _ -> Alcotest.fail "connect");
      Sim.Engine.sleep (Sim.Time.ms 500);
      Alcotest.(check bool) "1 MB byte-identical" true (Bytes.equal data !got))

let test_xenloop_faster_than_netfront () =
  let measure kind =
    let duo = Setup.build kind in
    let client = host_of duo.Setup.client and server = host_of duo.Setup.server in
    Experiment.execute duo (fun () ->
        let r =
          Workloads.Netperf.udp_rr ~client ~server ~dst:duo.Setup.server_ip
            ~transactions:300 ()
        in
        r.Workloads.Netperf.avg_latency_us)
  in
  let netfront = measure Setup.Netfront_netback in
  let xenloop = measure Setup.Xenloop_path in
  Alcotest.(check bool)
    (Printf.sprintf "xenloop (%.1fus) at least 2x faster than netfront (%.1fus)"
       xenloop netfront)
    true
    (xenloop *. 2.0 < netfront)

let test_unload_restores_standard_path () =
  let duo = Setup.build Setup.Xenloop_path in
  let m1, m2 = modules_of duo in
  let client = host_of duo.Setup.client in
  Experiment.execute duo (fun () ->
      Gm.unload m1;
      Gm.unload m2;
      Alcotest.(check bool) "unloaded" false (Gm.is_loaded m1);
      (* Traffic still flows — via netfront. *)
      match
        Stack.ping client.Workloads.Host.stack ~dst:duo.Setup.server_ip ()
      with
      | Some rtt ->
          Alcotest.(check bool) "slow path again" true (Sim.Time.to_us_f rtt > 40.0)
      | None -> Alcotest.fail "ping failed after unload")

let test_channel_memory_balanced () =
  (* Channel FIFO pages come from the machine's frame pool and must all be
     returned when the channel is torn down. *)
  let duo = Setup.build Setup.Xenloop_path in
  let m1, m2 = modules_of duo in
  let machine = Option.get duo.Setup.machine in
  let frames = Hypervisor.Machine.frame_allocator machine in
  Experiment.execute duo (fun () ->
      (* Channel is up after warmup; the listener (smaller domid) paid. *)
      let holder = min 1 2 in
      Alcotest.(check bool) "listener charged for channel pages" true
        (Memory.Frame_allocator.owned_by frames holder > 0);
      Gm.unload m1;
      Gm.unload m2;
      Sim.Engine.sleep (Sim.Time.ms 1);
      Alcotest.(check int) "all channel pages returned" 0
        (Memory.Frame_allocator.owned_by frames holder))

let test_teardown_notifies_peer () =
  let duo = Setup.build Setup.Xenloop_path in
  let m1, m2 = modules_of duo in
  Experiment.execute duo (fun () ->
      Gm.unload m1;
      (* Give the peer's event handler a moment to see the inactive flag. *)
      Sim.Engine.sleep (Sim.Time.ms 1);
      Alcotest.(check (list int)) "peer disengaged" [] (Gm.connected_peer_ids m2);
      Alcotest.(check bool) "peer counted teardown" true
        ((Gm.stats m2).Gm.channels_torn_down >= 1))

let test_large_packets_fall_back () =
  (* With a tiny FIFO (k=7: 1 KiB, max packet 1016 B), MTU-sized fragments
     exceed max_packet and must take the standard path (paper Sect. 3.1). *)
  let duo = Setup.build ~fifo_k:7 Setup.Xenloop_path in
  let m1, _ = modules_of duo in
  let client = host_of duo.Setup.client and server = host_of duo.Setup.server in
  Experiment.execute duo (fun () ->
      Alcotest.(check int) "fifo is 1 KiB" 1024 (Gm.fifo_capacity_bytes m1);
      let server_sock =
        match Netstack.Udp.bind server.Workloads.Host.udp ~port:903 () with
        | Ok s -> s
        | Error _ -> Alcotest.fail "bind"
      in
      let client_sock =
        match Netstack.Udp.bind client.Workloads.Host.udp () with
        | Ok s -> s
        | Error _ -> Alcotest.fail "bind"
      in
      let big = Bytes.make 10_000 'B' in
      Netstack.Udp.sendto client_sock ~dst:duo.Setup.server_ip ~dst_port:903 big;
      let _, _, got = Netstack.Udp.recvfrom server_sock in
      Alcotest.(check bool) "still delivered (standard path)" true (Bytes.equal big got);
      Alcotest.(check bool) "fallbacks counted" true
        ((Gm.stats m1).Gm.too_big_fallback > 0))

let test_waiting_list_engages_under_pressure () =
  (* A 2 KiB FIFO holds a single MTU-sized frame: a back-to-back burst must
     overflow onto the waiting list, and everything still arrives in
     order.  Zero-copy stays off so the frames really are inline copies
     rather than two-slot descriptors into the payload pool. *)
  let params = { Hypervisor.Params.default with xenloop_zerocopy = false } in
  let duo = Setup.build ~params ~fifo_k:8 Setup.Xenloop_path in
  let m1, _ = modules_of duo in
  let client = host_of duo.Setup.client and server = host_of duo.Setup.server in
  Experiment.execute duo (fun () ->
      let server_sock =
        match Netstack.Udp.bind server.Workloads.Host.udp ~port:904 () with
        | Ok s -> s
        | Error _ -> Alcotest.fail "bind"
      in
      let client_sock =
        match Netstack.Udp.bind client.Workloads.Host.udp () with
        | Ok s -> s
        | Error _ -> Alcotest.fail "bind"
      in
      let n = 60 in
      for i = 0 to n - 1 do
        Netstack.Udp.sendto client_sock ~dst:duo.Setup.server_ip ~dst_port:904
          (Bytes.make 1400 (Char.chr (i land 0xff)))
      done;
      let received = ref [] in
      for _ = 1 to n do
        let _, _, payload = Netstack.Udp.recvfrom server_sock in
        received := Bytes.get payload 0 :: !received
      done;
      let expected = List.init n (fun i -> Char.chr (i land 0xff)) in
      Alcotest.(check bool) "all arrived in order" true
        (List.rev !received = expected);
      Alcotest.(check bool) "waiting list was used" true
        ((Gm.stats m1).Gm.queued_to_waiting > 0))

let prop_channel_random_bidirectional_traffic =
  QCheck.Test.make
    ~name:"xenloop channel delivers random bidirectional datagram mixes" ~count:8
    QCheck.(
      pair
        (list_of_size Gen.(5 -- 25) (int_range 1 8000))
        (list_of_size Gen.(5 -- 25) (int_range 1 8000)))
    (fun (sizes_ab, sizes_ba) ->
      let duo = Setup.build Setup.Xenloop_path in
      let client = host_of duo.Setup.client and server = host_of duo.Setup.server in
      Experiment.execute duo (fun () ->
          let sock_a =
            match Netstack.Udp.bind client.Workloads.Host.udp ~port:950 () with
            | Ok s -> s
            | Error _ -> failwith "bind"
          in
          let sock_b =
            match Netstack.Udp.bind server.Workloads.Host.udp ~port:951 () with
            | Ok s -> s
            | Error _ -> failwith "bind"
          in
          let payload_for tag i len = Bytes.make len (Char.chr (tag + (i land 0x3f))) in
          Sim.Engine.spawn duo.Setup.engine (fun () ->
              List.iteri
                (fun i len ->
                  Netstack.Udp.sendto sock_a ~dst:duo.Setup.server_ip ~dst_port:951
                    (payload_for 0x40 i len))
                sizes_ab);
          Sim.Engine.spawn duo.Setup.engine (fun () ->
              List.iteri
                (fun i len ->
                  Netstack.Udp.sendto sock_b
                    ~dst:(Netstack.Stack.ip_addr client.Workloads.Host.stack)
                    ~dst_port:950 (payload_for 0x00 i len))
                sizes_ba);
          (* Collect both directions and check order + content. *)
          let ok = ref true in
          List.iteri
            (fun i len ->
              let _, _, got = Netstack.Udp.recvfrom sock_b in
              if not (Bytes.equal got (payload_for 0x40 i len)) then ok := false)
            sizes_ab;
          List.iteri
            (fun i len ->
              let _, _, got = Netstack.Udp.recvfrom sock_a in
              if not (Bytes.equal got (payload_for 0x00 i len)) then ok := false)
            sizes_ba;
          !ok))

let test_corrupt_peer_is_quarantined () =
  (* A malicious or buggy peer scribbles over the shared FIFO: this guest
     must tear the channel down and keep communicating via netfront — never
     crash (paper's isolation/security premise).  Single-queue channel so
     the descriptor page behind gref 0 below is the one the victim's next
     drain reads. *)
  let duo = Setup.build ~client_queues:1 ~server_queues:1 Setup.Xenloop_path in
  let m1, m2 = modules_of duo in
  let client = host_of duo.Setup.client in
  Experiment.execute duo (fun () ->
      (* Reach into the channel guest2 (listener, domid 1... the listener is
         the smaller domid: guest1) created, and corrupt the descriptor of
         the FIFO feeding guest2 by pushing garbage through a raw page
         write.  We simulate the scribble by asking the hook to push, then
         smashing the entry's magic via the machine's grant table pages is
         internal; instead, use the simplest reliable scribble: force the
         shared indices apart so pop sees a bogus entry. *)
      ignore m1;
      (* Locate the in-FIFO of guest2's channel via its module internals is
         not part of the API; instead corrupt through the public surface:
         send one datagram to populate, then use Fifo's own test hook on
         the page the listener granted.  The scenario keeps the pages
         private, so emulate the effect: deliver a crafted event after
         marking indices inconsistent using the descriptor exposed to the
         connector through the machine's grant table. *)
      (* Pragmatic approach: grab the listener's grant table and map the
         most recently granted descriptor page, exactly as a malicious
         connector would. *)
      let machine = Option.get duo.Setup.machine in
      let gt = Option.get (Hypervisor.Machine.grant_table machine 1) in
      let meter = Memory.Cost_meter.create () in
      (* The listener granted descriptor+data pages to domain 2 with grefs
         starting at 0; gref 0 is the first FIFO's descriptor page. *)
      (match Memory.Grant_table.map gt 0 ~by:2 ~meter with
      | Ok desc ->
          (* Make back > front by a bogus amount with garbage where entry
             metadata should be: the next pop on that FIFO sees a corrupt
             entry. *)
          Memory.Page.set_u32 desc 4 9999
      | Error e ->
          Alcotest.failf "could not map descriptor: %s"
            (Memory.Grant_table.error_to_string e));
      (* Trigger the victim's event handler: guest2 (connector) pushes
         nothing; the corrupted FIFO is the one guest1 reads from?  gref 0
         is the listener->connector direction, read by guest2.  Send
         traffic so guest2's handler runs. *)
      ignore
        (Netstack.Stack.ping client.Workloads.Host.stack ~dst:duo.Setup.server_ip
           ~timeout:(Sim.Time.ms 50) ());
      Sim.Engine.sleep (Sim.Time.ms 5);
      (* One of the two modules quarantined its side. *)
      let corrupted =
        (Gm.stats m1).Gm.corrupt_channels + (Gm.stats m2).Gm.corrupt_channels
      in
      Alcotest.(check bool) "channel quarantined" true (corrupted >= 1);
      (* Connectivity survives via the standard path. *)
      match Netstack.Stack.ping client.Workloads.Host.stack ~dst:duo.Setup.server_ip () with
      | Some _ -> ()
      | None -> Alcotest.fail "connectivity lost after quarantine")

let test_trace_narrates_lifecycle () =
  let tr = Sim.Trace.create () in
  Sim.Trace.enable_all tr;
  let duo = Setup.build ~trace:tr Setup.Xenloop_path in
  let m1, _ = modules_of duo in
  Experiment.execute duo (fun () ->
      Gm.unload m1;
      Sim.Engine.sleep (Sim.Time.ms 1));
  let messages = List.map (fun r -> r.Sim.Trace.message) (Sim.Trace.records tr) in
  let has_containing needle =
    List.exists (fun m -> Testutil.contains m needle) messages
  in
  Alcotest.(check bool) "bootstrap traced" true (has_containing "bootstrap");
  Alcotest.(check bool) "connection traced" true (has_containing "connected");
  Alcotest.(check bool) "teardown traced" true (has_containing "tearing down")

let test_module_reload_reforms_channels () =
  (* Unload the module (rmmod) and load a fresh instance (insmod): after
     the next discovery round and traffic, the fast path must re-form. *)
  let duo = Setup.build Setup.Xenloop_path in
  let m1, m2 = modules_of duo in
  let client = host_of duo.Setup.client in
  Experiment.execute duo (fun () ->
      Gm.unload m1;
      Sim.Engine.sleep (Sim.Time.ms 1);
      Alcotest.(check (list int)) "peer disengaged" [] (Gm.connected_peer_ids m2);
      (* insmod: a new module instance on the same guest. *)
      let machine = Option.get duo.Setup.machine in
      let domain = Option.get (Hypervisor.Machine.domain machine 1) in
      let m1' =
        Gm.create ~domain ~stack:client.Workloads.Host.stack
          ~current_machine:(fun () -> machine)
          ()
      in
      (* Next discovery scan re-announces; traffic re-bootstraps. *)
      Sim.Engine.sleep (Sim.Time.sec 6);
      ignore (Stack.ping client.Workloads.Host.stack ~dst:duo.Setup.server_ip ());
      Sim.Engine.sleep (Sim.Time.ms 10);
      (match Stack.ping client.Workloads.Host.stack ~dst:duo.Setup.server_ip () with
      | Some rtt ->
          Alcotest.(check bool) "fast path re-formed" true (Sim.Time.to_us_f rtt < 40.0)
      | None -> Alcotest.fail "ping lost after reload");
      Alcotest.(check (list int)) "channel re-established" [ 2 ]
        (Gm.connected_peer_ids m1'))

let test_chaos_soak () =
  (* A randomized soak over a 3-guest cluster: bursts of UDP traffic
     between random pairs interleaved with module unload/reload.  The
     invariant throughout: every datagram that is sent while both
     endpoints' sockets exist is delivered intact (the substrate only
     drops on UDP buffer overflow, which these small bursts never hit),
     and nothing ever crashes or deadlocks. *)
  let c = Setup.build_cluster ~guests:3 () in
  let rng = Sim.Rng.create ~seed:2026 in
  Experiment.run_process c.Setup.c_engine (fun () ->
      c.Setup.c_warmup ();
      let machine = c.Setup.c_machine in
      let guests = Array.of_list c.Setup.guests in
      let modules = Array.map (fun (_, _, m) -> m) guests in
      let socks =
        Array.map
          (fun (_, ep, _) ->
            match Netstack.Udp.bind ep.Scenarios.Endpoint.udp ~port:4000 () with
            | Ok s -> s
            | Error _ -> Alcotest.fail "bind")
          guests
      in
      for _round = 1 to 40 do
        match Sim.Rng.int rng 10 with
        | 0 ->
            (* rmmod a random guest's module. *)
            let i = Sim.Rng.int rng 3 in
            Gm.unload modules.(i);
            Sim.Engine.sleep (Sim.Time.ms 1)
        | 1 ->
            (* insmod it again (if unloaded). *)
            let i = Sim.Rng.int rng 3 in
            if not (Gm.is_loaded modules.(i)) then begin
              let domain, ep, _ = guests.(i) in
              modules.(i) <-
                Gm.create ~domain ~stack:ep.Scenarios.Endpoint.stack
                  ~current_machine:(fun () -> machine)
                  ();
              Xenloop.Discovery.scan_now c.Setup.c_discovery;
              Sim.Engine.sleep (Sim.Time.ms 1)
            end
        | _ ->
            (* A small burst between a random ordered pair. *)
            let src = Sim.Rng.int rng 3 in
            let dst = (src + 1 + Sim.Rng.int rng 2) mod 3 in
            let _, src_ep, _ = guests.(src) in
            let dst_domain, _, _ = guests.(dst) in
            let n = 1 + Sim.Rng.int rng 5 in
            let sent =
              List.init n (fun k ->
                  let len = 1 + Sim.Rng.int rng 3000 in
                  Bytes.init len (fun i -> Char.chr ((i + k) land 0xff)))
            in
            let client_sock =
              match Netstack.Udp.bind src_ep.Scenarios.Endpoint.udp () with
              | Ok s -> s
              | Error _ -> Alcotest.fail "bind"
            in
            List.iter
              (fun payload ->
                Netstack.Udp.sendto client_sock
                  ~dst:(Hypervisor.Domain.ip dst_domain) ~dst_port:4000 payload)
              sent;
            List.iter
              (fun expected ->
                let _, _, got = Netstack.Udp.recvfrom socks.(dst) in
                if not (Bytes.equal got expected) then
                  Alcotest.fail "soak: payload corrupted or reordered")
              sent;
            Netstack.Udp.close client_sock
      done;
      (* Final sanity: the cluster still communicates end to end. *)
      let _, ep0, _ = guests.(0) in
      let d1, _, _ = guests.(1) in
      match
        Netstack.Stack.ping ep0.Scenarios.Endpoint.stack ~dst:(Hypervisor.Domain.ip d1) ()
      with
      | Some _ -> ()
      | None -> Alcotest.fail "cluster broken after soak")

(* ------------------------------------------------------------------ *)
(* Migration *)

let run_world (w : Mw.t) f = Experiment.run_process w.Mw.engine f

let guest_host (g : Mw.guest_env) =
  {
    Workloads.Host.stack = g.Mw.ep.Scenarios.Endpoint.stack;
    udp = g.Mw.ep.Scenarios.Endpoint.udp;
    tcp = g.Mw.ep.Scenarios.Endpoint.tcp;
  }

let test_migration_establishes_channel () =
  let w = Mw.create () in
  run_world w (fun () ->
      Alcotest.(check bool) "separate at start" false
        (Mw.co_resident w.Mw.guest1 w.Mw.guest2);
      (* Traffic across the wire first. *)
      (match
         Stack.ping (guest_host w.Mw.guest1).Workloads.Host.stack
           ~dst:(Domain.ip w.Mw.guest2.Mw.domain) ()
       with
      | Some _ -> ()
      | None -> Alcotest.fail "inter-machine ping failed");
      Alcotest.(check (list int)) "no channel while apart" []
        (Gm.connected_peer_ids w.Mw.guest1.Mw.xl_module);
      (* Migrate guest1 to machine 2. *)
      Mw.migrate w w.Mw.guest1 ~dst:w.Mw.m2;
      Alcotest.(check bool) "co-resident now" true
        (Mw.co_resident w.Mw.guest1 w.Mw.guest2);
      (* Wait past a discovery period, then send traffic to trigger the
         channel. *)
      Sim.Engine.sleep (Sim.Time.sec 6);
      (match
         Stack.ping (guest_host w.Mw.guest1).Workloads.Host.stack
           ~dst:(Domain.ip w.Mw.guest2.Mw.domain) ()
       with
      | Some _ -> ()
      | None -> Alcotest.fail "co-resident ping failed");
      Sim.Engine.sleep (Sim.Time.ms 10);
      (match
         Stack.ping (guest_host w.Mw.guest1).Workloads.Host.stack
           ~dst:(Domain.ip w.Mw.guest2.Mw.domain) ()
       with
      | Some rtt ->
          Alcotest.(check bool) "fast path engaged" true (Sim.Time.to_us_f rtt < 40.0)
      | None -> Alcotest.fail "fast ping failed");
      Alcotest.(check int) "channel exists" 1
        (List.length (Gm.connected_peer_ids w.Mw.guest1.Mw.xl_module)))

let test_migration_away_tears_down () =
  let w = Mw.create () in
  run_world w (fun () ->
      Mw.migrate w w.Mw.guest1 ~dst:w.Mw.m2;
      Sim.Engine.sleep (Sim.Time.sec 6);
      ignore
        (Stack.ping (guest_host w.Mw.guest1).Workloads.Host.stack
           ~dst:(Domain.ip w.Mw.guest2.Mw.domain) ());
      Sim.Engine.sleep (Sim.Time.ms 10);
      ignore
        (Stack.ping (guest_host w.Mw.guest1).Workloads.Host.stack
           ~dst:(Domain.ip w.Mw.guest2.Mw.domain) ());
      Alcotest.(check int) "channel up" 1
        (List.length (Gm.connected_peer_ids w.Mw.guest1.Mw.xl_module));
      (* Migrate back: the channel must be torn down cleanly... *)
      Mw.migrate w w.Mw.guest1 ~dst:w.Mw.m1;
      Alcotest.(check (list int)) "guest1 channels gone" []
        (Gm.connected_peer_ids w.Mw.guest1.Mw.xl_module);
      Sim.Engine.sleep (Sim.Time.sec 6);
      Alcotest.(check (list int)) "guest2 disengaged too" []
        (Gm.connected_peer_ids w.Mw.guest2.Mw.xl_module);
      (* ...and the wire path works again. *)
      match
        Stack.ping (guest_host w.Mw.guest1).Workloads.Host.stack
          ~dst:(Domain.ip w.Mw.guest2.Mw.domain) ()
      with
      | Some rtt ->
          Alcotest.(check bool) "slow path again" true (Sim.Time.to_us_f rtt > 40.0)
      | None -> Alcotest.fail "ping failed after migrating away")

let test_migration_no_stream_loss () =
  (* A TCP transfer running across a migration must deliver every byte:
     the paper's transparency claim (Sect. 3.4). *)
  let w = Mw.create () in
  run_world w (fun () ->
      let g1 = guest_host w.Mw.guest1 and g2 = guest_host w.Mw.guest2 in
      let listener =
        match Netstack.Tcp.listen g2.Workloads.Host.tcp ~port:905 with
        | Ok l -> l
        | Error _ -> Alcotest.fail "listen"
      in
      let n = 600_000 in
      let data = Bytes.init n (fun i -> Char.chr ((i * 7) land 0xff)) in
      let got = ref Bytes.empty in
      let finished = ref false in
      Sim.Engine.spawn w.Mw.engine (fun () ->
          let conn = Netstack.Tcp.accept listener in
          got := Netstack.Tcp.recv_exact conn n;
          finished := true);
      Sim.Engine.spawn w.Mw.engine (fun () ->
          match
            Netstack.Tcp.connect g1.Workloads.Host.tcp
              ~dst:(Domain.ip w.Mw.guest2.Mw.domain) ~dst_port:905 ()
          with
          | Ok conn -> Netstack.Tcp.send conn data
          | Error _ -> Alcotest.fail "connect");
      (* Let the stream start over the wire, then migrate mid-flight. *)
      Sim.Engine.sleep (Sim.Time.ms 100);
      Mw.migrate w w.Mw.guest1 ~dst:w.Mw.m2;
      (* Wait for completion (now over the fast or standard local path). *)
      let waited = ref 0 in
      while (not !finished) && !waited < 200 do
        incr waited;
        Sim.Engine.sleep (Sim.Time.ms 50)
      done;
      Alcotest.(check bool) "transfer completed" true !finished;
      Alcotest.(check bool) "no bytes lost or corrupted" true (Bytes.equal data !got))

let suites =
  [
    ( "xenloop.integration",
      [
        Alcotest.test_case "discovery populates mapping" `Quick
          test_discovery_populates_mapping;
        Alcotest.test_case "channel bootstraps on traffic" `Quick
          test_channel_bootstraps_on_traffic;
        Alcotest.test_case "data flows through channel" `Quick
          test_data_flows_through_channel;
        Alcotest.test_case "udp integrity through fifo" `Quick
          test_udp_data_integrity_through_fifo;
        Alcotest.test_case "tcp 1MB integrity through fifo" `Slow
          test_tcp_stream_integrity_through_fifo;
        Alcotest.test_case "xenloop faster than netfront" `Slow
          test_xenloop_faster_than_netfront;
        Alcotest.test_case "unload restores standard path" `Quick
          test_unload_restores_standard_path;
        Alcotest.test_case "channel memory balanced" `Quick test_channel_memory_balanced;
        Alcotest.test_case "teardown notifies peer" `Quick test_teardown_notifies_peer;
        Alcotest.test_case "oversize packets fall back" `Quick
          test_large_packets_fall_back;
        Alcotest.test_case "waiting list under pressure" `Quick
          test_waiting_list_engages_under_pressure;
        Alcotest.test_case "corrupt peer quarantined" `Quick
          test_corrupt_peer_is_quarantined;
        Alcotest.test_case "trace narrates lifecycle" `Quick
          test_trace_narrates_lifecycle;
        Alcotest.test_case "module reload re-forms channels" `Slow
          test_module_reload_reforms_channels;
        Alcotest.test_case "randomized chaos soak" `Slow test_chaos_soak;
      ]
      @ [ QCheck_alcotest.to_alcotest prop_channel_random_bidirectional_traffic ] );
    ( "xenloop.migration",
      [
        Alcotest.test_case "co-residence establishes channel" `Slow
          test_migration_establishes_channel;
        Alcotest.test_case "migration away tears down" `Slow
          test_migration_away_tears_down;
        Alcotest.test_case "no stream loss across migration" `Slow
          test_migration_no_stream_loss;
      ] );
  ]
