(* Tests for rings, the software bridge, and the netfront/netback vif. *)

module Ring = Xennet.Ring
module Bridge = Xennet.Bridge
module Vif = Xennet.Vif
module Machine = Hypervisor.Machine
module Domain = Hypervisor.Domain
module Packet = Netcore.Packet
module Mac = Netcore.Mac
module Ip = Netcore.Ip

let run_sim f =
  let engine = Sim.Engine.create () in
  let result = ref None in
  Sim.Engine.spawn engine (fun () -> result := Some (f engine));
  Sim.Engine.run ~until:(Sim.Time.add Sim.Time.zero (Sim.Time.sec 120)) engine;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "simulation deadlocked"

(* ------------------------------------------------------------------ *)
(* Ring *)

let test_ring_fifo_order () =
  run_sim (fun _ ->
      let r = Ring.create ~capacity:4 in
      Alcotest.(check bool) "empty" true (Ring.is_empty r);
      List.iter (Ring.push r) [ 1; 2; 3 ];
      Alcotest.(check int) "length" 3 (Ring.length r);
      Alcotest.(check (option int)) "peek" (Some 1) (Ring.peek r);
      Alcotest.(check int) "pop order" 1 (Ring.pop r);
      Alcotest.(check int) "pop order" 2 (Ring.pop r);
      Alcotest.(check int) "pop order" 3 (Ring.pop r))

let test_ring_blocking_push () =
  run_sim (fun engine ->
      let r = Ring.create ~capacity:2 in
      Ring.push r 1;
      Ring.push r 2;
      Alcotest.(check bool) "full" true (Ring.is_full r);
      Alcotest.(check bool) "try_push fails" false (Ring.try_push r 3);
      let pushed_at = ref Sim.Time.zero in
      Sim.Engine.spawn engine (fun () ->
          Ring.push r 3;
          pushed_at := Sim.Engine.now engine);
      Sim.Engine.after engine (Sim.Time.ms 3) (fun () -> ignore (Ring.try_pop r));
      Sim.Engine.sleep (Sim.Time.ms 10);
      Alcotest.(check int64) "unblocked when space freed" 3_000_000L
        (Sim.Time.instant_to_ns !pushed_at))

let test_ring_blocking_pop () =
  run_sim (fun engine ->
      let r = Ring.create ~capacity:2 in
      let got = ref 0 in
      Sim.Engine.spawn engine (fun () -> got := Ring.pop r);
      Sim.Engine.after engine (Sim.Time.ms 2) (fun () -> Ring.push r 42);
      Sim.Engine.sleep (Sim.Time.ms 5);
      Alcotest.(check int) "popped after push" 42 !got)

let test_ring_invalid_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (Ring.create ~capacity:0))

(* ------------------------------------------------------------------ *)
(* Bridge *)

let mk_packet ~src ~dst =
  Packet.udp ~src_mac:src ~dst_mac:dst ~src_ip:(Ip.make ~subnet:1 ~host:1)
    ~dst_ip:(Ip.make ~subnet:1 ~host:2) ~src_port:1 ~dst_port:2
    (Bytes.of_string "x")

let make_bridge engine =
  let params = Hypervisor.Params.default in
  let cpu = Sim.Resource.create ~name:"dom0.cpu" in
  Bridge.create ~engine ~params ~cpu ~name:"br0"

let test_bridge_learning_and_forwarding () =
  run_sim (fun engine ->
      let bridge = make_bridge engine in
      let mac_a = Mac.of_domid ~machine:0 ~domid:1 in
      let mac_b = Mac.of_domid ~machine:0 ~domid:2 in
      let got_a = ref 0 and got_b = ref 0 in
      let port_a = Bridge.attach bridge ~name:"a" ~deliver:(fun b -> got_a := !got_a + List.length b) in
      let port_b = Bridge.attach bridge ~name:"b" ~deliver:(fun b -> got_b := !got_b + List.length b) in
      ignore port_b;
      (* Unknown destination: flood (B receives). *)
      Bridge.inject bridge ~from:port_a [ mk_packet ~src:mac_a ~dst:mac_b ];
      Alcotest.(check int) "flooded to b" 1 !got_b;
      Alcotest.(check int) "not reflected to a" 0 !got_a;
      (* The bridge learned A's MAC from the source address. *)
      (match Bridge.lookup bridge mac_a with
      | Some p -> Alcotest.(check string) "learned on port a" "a" (Bridge.port_name p)
      | None -> Alcotest.fail "mac_a not learned");
      (* Reply from B is now unicast to A only. *)
      Bridge.inject bridge ~from:port_b [ mk_packet ~src:mac_b ~dst:mac_a ];
      Alcotest.(check int) "unicast to a" 1 !got_a;
      Alcotest.(check int) "b unchanged" 1 !got_b)

let test_bridge_broadcast () =
  run_sim (fun engine ->
      let bridge = make_bridge engine in
      let mac_a = Mac.of_domid ~machine:0 ~domid:1 in
      let seen = ref [] in
      let port_a = Bridge.attach bridge ~name:"a" ~deliver:(fun _ -> seen := "a" :: !seen) in
      let _pb = Bridge.attach bridge ~name:"b" ~deliver:(fun _ -> seen := "b" :: !seen) in
      let _pc = Bridge.attach bridge ~name:"c" ~deliver:(fun _ -> seen := "c" :: !seen) in
      Bridge.inject bridge ~from:port_a [ mk_packet ~src:mac_a ~dst:Mac.broadcast ];
      Alcotest.(check (list string)) "flooded except source" [ "c"; "b" ] !seen)

let test_bridge_detach_flushes () =
  run_sim (fun engine ->
      let bridge = make_bridge engine in
      let mac_a = Mac.of_domid ~machine:0 ~domid:1 in
      let port_a = Bridge.attach bridge ~name:"a" ~deliver:(fun _ -> ()) in
      Bridge.inject bridge ~from:port_a [ mk_packet ~src:mac_a ~dst:Mac.broadcast ];
      Alcotest.(check bool) "learned" true (Bridge.lookup bridge mac_a <> None);
      Bridge.detach bridge port_a;
      Alcotest.(check bool) "flushed" true (Bridge.lookup bridge mac_a = None);
      Alcotest.(check int) "port gone" 0 (Bridge.ports bridge))

(* ------------------------------------------------------------------ *)
(* Vif: guest-to-guest through netback and the bridge *)

type guest = {
  domain : Domain.t;
  stack : Netstack.Stack.t;
  udp : Netstack.Udp.t;
  vif : Vif.t;
}

let make_xen_world engine =
  let params = Hypervisor.Params.default in
  let machine = Machine.create ~engine ~params ~id:0 () in
  let dom0 = Machine.dom0 machine in
  let bridge = Bridge.create ~engine ~params ~cpu:(Domain.cpu dom0) ~name:"br0" in
  let mk i =
    let domain =
      Machine.create_domain machine ~name:(Printf.sprintf "g%d" i)
        ~ip:(Ip.make ~subnet:4 ~host:i)
    in
    let stack =
      Netstack.Stack.create ~engine ~params ~cpu:(Domain.cpu domain)
        ~ip:(Domain.ip domain) ~mac:(Domain.mac domain) ()
    in
    let udp = Netstack.Udp.attach stack in
    let vif = Vif.create ~machine ~guest:domain ~bridge ~stack () in
    { domain; stack; udp; vif }
  in
  (machine, bridge, mk 1, mk 2)

let test_vif_ping_through_bridge () =
  run_sim (fun engine ->
      let _, _, g1, g2 = make_xen_world engine in
      match Netstack.Stack.ping g1.stack ~dst:(Domain.ip g2.domain) () with
      | Some rtt ->
          (* The path crosses Dom0 twice per direction; it must be far
             slower than a raw wire. *)
          Alcotest.(check bool) "rtt > 40us" true
            (Sim.Time.to_us_f rtt > 40.0)
      | None -> Alcotest.fail "ping through bridge failed")

let test_vif_udp_data_integrity () =
  run_sim (fun engine ->
      let _, _, g1, g2 = make_xen_world engine in
      let server =
        match Netstack.Udp.bind g2.udp ~port:9 () with
        | Ok s -> s
        | Error _ -> Alcotest.fail "bind"
      in
      let client =
        match Netstack.Udp.bind g1.udp () with
        | Ok s -> s
        | Error _ -> Alcotest.fail "bind"
      in
      let data = Bytes.init 20_000 (fun i -> Char.chr ((i * 3) land 0xff)) in
      Netstack.Udp.sendto client ~dst:(Domain.ip g2.domain) ~dst_port:9 data;
      let _, _, got = Netstack.Udp.recvfrom server in
      Alcotest.(check bool) "payload intact through netback" true (Bytes.equal data got))

let test_vif_batching_counts () =
  run_sim (fun engine ->
      let _, _, g1, g2 = make_xen_world engine in
      let tcp1 = Netstack.Tcp.attach g1.stack in
      let tcp2 = Netstack.Tcp.attach g2.stack in
      let listener =
        match Netstack.Tcp.listen tcp2 ~port:80 with
        | Ok l -> l
        | Error _ -> Alcotest.fail "listen"
      in
      let n = 1_000_000 in
      Sim.Engine.spawn engine (fun () ->
          let conn = Netstack.Tcp.accept listener in
          ignore (Netstack.Tcp.recv_exact conn n));
      (match Netstack.Tcp.connect tcp1 ~dst:(Domain.ip g2.domain) ~dst_port:80 () with
      | Ok conn -> Netstack.Tcp.send conn (Bytes.make n 'z')
      | Error _ -> Alcotest.fail "connect");
      Sim.Engine.sleep (Sim.Time.ms 100);
      (* TSO batching: the netback moved fewer batches than packets. *)
      Alcotest.(check bool) "batches formed" true
        (Vif.tx_batches g1.vif < Vif.tx_packets_through_netback g1.vif))

let test_vif_detach_stops_traffic () =
  run_sim (fun engine ->
      let _, _, g1, g2 = make_xen_world engine in
      (* Warm the path first. *)
      (match Netstack.Stack.ping g1.stack ~dst:(Domain.ip g2.domain) () with
      | Some _ -> ()
      | None -> Alcotest.fail "warmup ping failed");
      Vif.detach g2.vif;
      Alcotest.(check bool) "detached" false (Vif.is_attached g2.vif);
      match
        Netstack.Stack.ping g1.stack ~dst:(Domain.ip g2.domain)
          ~timeout:(Sim.Time.ms 20) ()
      with
      | Some _ -> Alcotest.fail "ping survived vif detach"
      | None -> ())

let test_vif_event_channel_coalescing () =
  run_sim (fun engine ->
      let machine, _, g1, g2 = make_xen_world engine in
      ignore machine;
      let server =
        match Netstack.Udp.bind g2.udp ~port:9 () with
        | Ok s -> s
        | Error _ -> Alcotest.fail "bind"
      in
      let client =
        match Netstack.Udp.bind g1.udp () with
        | Ok s -> s
        | Error _ -> Alcotest.fail "bind"
      in
      let meter_before =
        Memory.Cost_meter.event_notifies (Domain.meter g1.domain)
      in
      for _ = 1 to 50 do
        Netstack.Udp.sendto client ~dst:(Domain.ip g2.domain) ~dst_port:9
          (Bytes.make 100 'a')
      done;
      for _ = 1 to 50 do
        ignore (Netstack.Udp.recvfrom server)
      done;
      let notifies =
        Memory.Cost_meter.event_notifies (Domain.meter g1.domain) - meter_before
      in
      (* One notify hypercall per packet on the guest side. *)
      Alcotest.(check bool) "guest notifies on pushes" true (notifies >= 50))

let suites =
  [
    ( "xennet.ring",
      [
        Alcotest.test_case "fifo order" `Quick test_ring_fifo_order;
        Alcotest.test_case "blocking push (backpressure)" `Quick test_ring_blocking_push;
        Alcotest.test_case "blocking pop" `Quick test_ring_blocking_pop;
        Alcotest.test_case "invalid capacity" `Quick test_ring_invalid_capacity;
      ] );
    ( "xennet.bridge",
      [
        Alcotest.test_case "learning and forwarding" `Quick
          test_bridge_learning_and_forwarding;
        Alcotest.test_case "broadcast floods" `Quick test_bridge_broadcast;
        Alcotest.test_case "detach flushes fdb" `Quick test_bridge_detach_flushes;
      ] );
    ( "xennet.vif",
      [
        Alcotest.test_case "ping through bridge" `Quick test_vif_ping_through_bridge;
        Alcotest.test_case "udp data integrity" `Quick test_vif_udp_data_integrity;
        Alcotest.test_case "tso batching" `Quick test_vif_batching_counts;
        Alcotest.test_case "detach stops traffic" `Quick test_vif_detach_stops_traffic;
        Alcotest.test_case "event notifications metered" `Quick
          test_vif_event_channel_coalescing;
      ] );
  ]
