(* Multi-queue channel tests: queue-count negotiation, deterministic flow
   steering, per-queue notification independence, and stranded-frame
   reclaim across several queues at teardown. *)

module Setup = Scenarios.Setup
module Experiment = Scenarios.Experiment
module Gm = Xenloop.Guest_module
module Steering = Xenloop.Steering
module Stack = Netstack.Stack

let host_of (ep : Scenarios.Endpoint.t) =
  { Workloads.Host.stack = ep.Scenarios.Endpoint.stack; udp = ep.udp; tcp = ep.tcp }

let modules_of duo =
  match duo.Setup.modules with
  | [ m1; m2 ] -> (m1, m2)
  | _ -> Alcotest.fail "expected two xenloop modules"

let client_ip duo = Stack.ip_addr duo.Setup.client.Scenarios.Endpoint.stack

(* Smallest source port >= [from] whose flow lands on queue [want]. *)
let port_on_queue ~proto ~src ~dst ~dport ~queues ~want ~from =
  let rec go p =
    if p > from + 4096 then Alcotest.fail "no port found for target queue"
    else
      let q =
        Steering.queue_index
          (Steering.ip_flow ~proto ~src ~dst ~sport:p ~dport)
          ~queues
      in
      if q = want then p else go (p + 1)
  in
  go from

(* ------------------------------------------------------------------ *)

let test_handshake_negotiates_min () =
  (* A queues=1 peer (the legacy wire format) meets a queues=4 peer: both
     sides must fall back to a single queue pair, and data still flows. *)
  let duo = Setup.build ~client_queues:1 ~server_queues:4 Setup.Xenloop_path in
  let m1, m2 = modules_of duo in
  let client = host_of duo.Setup.client and server = host_of duo.Setup.server in
  Experiment.execute duo (fun () ->
      Alcotest.(check int) "client advertises 1" 1 (Gm.max_queues m1);
      Alcotest.(check int) "server advertises 4" 4 (Gm.max_queues m2);
      Alcotest.(check int) "client negotiated down to 1" 1
        (Gm.queue_count m1 ~domid:2);
      Alcotest.(check int) "server negotiated down to 1" 1
        (Gm.queue_count m2 ~domid:1);
      Alcotest.(check int) "a single queue's stats" 1
        (Array.length (Gm.queue_stats m1 ~domid:2));
      let before = (Gm.stats m1).Gm.via_channel_tx in
      let r =
        Workloads.Netperf.udp_rr ~client ~server ~dst:duo.Setup.server_ip
          ~transactions:20 ()
      in
      Alcotest.(check int) "transactions completed" 20
        r.Workloads.Netperf.transactions;
      Alcotest.(check bool) "requests rode the single-queue channel" true
        ((Gm.stats m1).Gm.via_channel_tx >= before + 20))

let test_symmetric_default_negotiates_full () =
  let duo = Setup.build Setup.Xenloop_path in
  let m1, m2 = modules_of duo in
  Experiment.execute duo (fun () ->
      let expect = duo.Setup.params.Hypervisor.Params.xenloop_queues in
      Alcotest.(check int) "client side" expect (Gm.queue_count m1 ~domid:2);
      Alcotest.(check int) "server side" expect (Gm.queue_count m2 ~domid:1);
      Alcotest.(check int) "per-queue stats array" expect
        (Array.length (Gm.queue_stats m1 ~domid:2)))

let test_flow_to_queue_determinism () =
  let duo = Setup.build Setup.Xenloop_path in
  let m1, _ = modules_of duo in
  let client = host_of duo.Setup.client and server = host_of duo.Setup.server in
  Experiment.execute duo (fun () ->
      let src = client_ip duo and dst = duo.Setup.server_ip in
      (* Pure properties: stability, range, and the single-queue collapse. *)
      let key = Steering.ip_flow ~proto:6 ~src ~dst ~sport:1234 ~dport:80 in
      Alcotest.(check int) "same key, same queue"
        (Steering.queue_index key ~queues:4)
        (Steering.queue_index key ~queues:4);
      Alcotest.(check int) "queues=1 always queue 0" 0
        (Steering.queue_index key ~queues:1);
      List.iter
        (fun queues ->
          let q = Steering.queue_index key ~queues in
          Alcotest.(check bool) "index within range" true (q >= 0 && q < queues))
        [ 2; 4; 8 ];
      (* TCP 5-tuples spread: some nearby port must map elsewhere. *)
      let q0 = Steering.queue_index key ~queues:4 in
      let spread =
        List.exists
          (fun p ->
            Steering.queue_index
              (Steering.ip_flow ~proto:6 ~src ~dst ~sport:p ~dport:80)
              ~queues:4
            <> q0)
          (List.init 16 (fun i -> 1235 + i))
      in
      Alcotest.(check bool) "5-tuple hash spreads across queues" true spread;
      (* End to end: UDP steers on the 3-tuple, so every datagram — from
         either source port, fragmented or not — lands on one predicted
         queue. *)
      let nq = Gm.queue_count m1 ~domid:2 in
      let predicted =
        Steering.queue_index
          (Steering.ip_flow ~proto:17 ~src ~dst ~sport:0 ~dport:0)
          ~queues:nq
      in
      let server_sock =
        match Netstack.Udp.bind server.Workloads.Host.udp ~port:905 () with
        | Ok s -> s
        | Error _ -> Alcotest.fail "bind"
      in
      let sock_a =
        match Netstack.Udp.bind client.Workloads.Host.udp ~port:31000 () with
        | Ok s -> s
        | Error _ -> Alcotest.fail "bind"
      in
      let sock_b =
        match Netstack.Udp.bind client.Workloads.Host.udp ~port:32000 () with
        | Ok s -> s
        | Error _ -> Alcotest.fail "bind"
      in
      let before = Gm.queue_stats m1 ~domid:2 in
      for _ = 1 to 3 do
        Netstack.Udp.sendto sock_a ~dst ~dst_port:905 (Bytes.make 100 'a');
        Netstack.Udp.sendto sock_b ~dst ~dst_port:905 (Bytes.make 100 'b')
      done;
      (* Fragments carry no ports; the 3-tuple keeps them with their flow. *)
      Netstack.Udp.sendto sock_a ~dst ~dst_port:905 (Bytes.make 5000 'f');
      for _ = 1 to 7 do
        let (_ : Netcore.Ip.t * int * Bytes.t) =
          Netstack.Udp.recvfrom server_sock
        in
        ()
      done;
      let after = Gm.queue_stats m1 ~domid:2 in
      Array.iteri
        (fun q st ->
          let d = st.Gm.qs_steered - before.(q).Gm.qs_steered in
          if q = predicted then
            Alcotest.(check bool) "all datagrams on the predicted queue" true
              (d >= 10)
          else
            Alcotest.(check int)
              (Printf.sprintf "queue %d untouched" q)
              0 d)
        after)

let test_per_queue_suppression_independence () =
  (* A bulk stream saturates its queue (notifications suppressed while the
     consumer stays active); a latency flow steered to a different queue
     must still ring its own doorbell. *)
  let duo = Setup.build Setup.Xenloop_path in
  let m1, _ = modules_of duo in
  let client = host_of duo.Setup.client and server = host_of duo.Setup.server in
  Experiment.execute duo (fun () ->
      let nq = Gm.queue_count m1 ~domid:2 in
      Alcotest.(check bool) "channel is multi-queue" true (nq >= 2);
      let src = client_ip duo and dst = duo.Setup.server_ip in
      let stream_q =
        Steering.queue_index
          (Steering.ip_flow ~proto:17 ~src ~dst ~sport:0 ~dport:0)
          ~queues:nq
      in
      let rr_port = 9200 in
      let rr_client_port =
        let rec pick p =
          if p > 44096 then Alcotest.fail "no off-queue port"
          else
            let q =
              Steering.queue_index
                (Steering.ip_flow ~proto:6 ~src ~dst ~sport:p ~dport:rr_port)
                ~queues:nq
            in
            if q <> stream_q then p else pick (p + 1)
        in
        pick 40001
      in
      let rr_q =
        Steering.queue_index
          (Steering.ip_flow ~proto:6 ~src ~dst ~sport:rr_client_port
             ~dport:rr_port)
          ~queues:nq
      in
      let before = Gm.queue_stats m1 ~domid:2 in
      let finished = ref false in
      let done_cond = Sim.Condition.create () in
      Sim.Engine.spawn duo.Setup.engine (fun () ->
          let (_ : Workloads.Netperf.stream_result) =
            Workloads.Netperf.udp_stream ~client ~server ~dst ~port:9100
              ~message_size:16384 ~total_bytes:(512 * 1024) ()
          in
          finished := true;
          Sim.Condition.broadcast done_cond);
      Sim.Engine.sleep (Sim.Time.us 50);
      let (_ : Workloads.Netperf.rr_result) =
        Workloads.Netperf.tcp_rr ~client ~server ~dst ~port:rr_port
          ~client_port:rr_client_port ~transactions:20 ()
      in
      while not !finished do
        Sim.Condition.await done_cond
      done;
      let after = Gm.queue_stats m1 ~domid:2 in
      let delta q f = f after.(q) - f before.(q) in
      Alcotest.(check bool) "stream queue suppressed notifications" true
        (delta stream_q (fun s -> s.Gm.qs_notifies_suppressed) > 0);
      Alcotest.(check bool) "rr queue rang its own doorbell" true
        (delta rr_q (fun s -> s.Gm.qs_notifies_sent) > 0);
      Alcotest.(check bool) "rr traffic steered to its queue" true
        (delta rr_q (fun s -> s.Gm.qs_steered) >= 20))

let test_multiqueue_stranded_teardown_reclaim () =
  (* Flood every queue of a tiny-FIFO channel with app payloads and unload
     the sender while frames still sit un-consumed in several out-FIFOs and
     waiting lists.  Teardown must reclaim the stranded frames from each
     queue and flush them via the standard path: nothing is lost, per-flow
     order holds, and every channel page goes back to the pool. *)
  let duo = Setup.build ~fifo_k:8 Setup.Xenloop_path in
  let m1, m2 = modules_of duo in
  let machine = Option.get duo.Setup.machine in
  let frames = Hypervisor.Machine.frame_allocator machine in
  Experiment.execute duo (fun () ->
      let nq = Gm.queue_count m1 ~domid:2 in
      Alcotest.(check bool) "channel is multi-queue" true (nq >= 2);
      let src = client_ip duo and dst = duo.Setup.server_ip in
      (* One app-payload flow per queue: shortcut payloads steer like UDP,
         so distinct source ports can be chosen to hit every queue. *)
      let flow_port =
        Array.init nq (fun want ->
            port_on_queue ~proto:17 ~src ~dst ~dport:7777 ~queues:nq ~want
              ~from:20000)
      in
      let received = Hashtbl.create 16 in
      Gm.set_app_payload_handler m2
        (fun ~src_ip:_ ~src_port ~dst_port:_ payload ->
          let seq = int_of_string (String.sub (Bytes.to_string payload) 0 4) in
          let prev =
            match Hashtbl.find_opt received src_port with
            | Some l -> l
            | None -> []
          in
          Hashtbl.replace received src_port (seq :: prev));
      let per_flow = 50 in
      let steered_before = Gm.queue_stats m1 ~domid:2 in
      (* Hog the server's vCPU for the duration of the burst so its drain
         handlers queue behind us: the frames provably pile up inside the
         channel rather than being consumed as fast as they are pushed. *)
      Sim.Engine.spawn duo.Setup.engine (fun () ->
          Sim.Resource.use
            (Stack.cpu duo.Setup.server.Scenarios.Endpoint.stack)
            (Sim.Time.ms 5));
      for seq = 0 to per_flow - 1 do
        Array.iter
          (fun sport ->
            let payload =
              Bytes.of_string (Printf.sprintf "%04d%s" seq (String.make 44 'x'))
            in
            Alcotest.(check bool) "payload accepted by the channel" true
              (Gm.send_app_payload m1 ~dst_ip:dst ~src_port:sport
                 ~dst_port:7777 payload))
          flow_port
      done;
      let steered_after = Gm.queue_stats m1 ~domid:2 in
      Array.iteri
        (fun q st ->
          Alcotest.(check bool)
            (Printf.sprintf "queue %d carried its flow" q)
            true
            (st.Gm.qs_steered - steered_before.(q).Gm.qs_steered >= per_flow))
        steered_after;
      (* The 2 KiB per-queue FIFOs cannot hold 50 frames: at this instant
         frames are stranded in-flight on every queue. *)
      Alcotest.(check bool) "frames parked beyond the FIFOs" true
        (Gm.waiting_list_length m1 ~domid:2 > 0);
      Gm.unload m1;
      Sim.Engine.sleep (Sim.Time.ms 10);
      Array.iter
        (fun sport ->
          let seqs =
            match Hashtbl.find_opt received sport with
            | Some l -> List.rev l
            | None -> []
          in
          Alcotest.(check (list int))
            (Printf.sprintf "flow %d complete and in order" sport)
            (List.init per_flow Fun.id) seqs)
        flow_port;
      Alcotest.(check (list int)) "peer disengaged" []
        (Gm.connected_peer_ids m2);
      Alcotest.(check int) "all channel pages returned" 0
        (Memory.Frame_allocator.owned_by frames 1))

let suites =
  [
    ( "xenloop.multiqueue",
      [
        Alcotest.test_case "asymmetric handshake falls back to 1" `Quick
          test_handshake_negotiates_min;
        Alcotest.test_case "symmetric handshake keeps all queues" `Quick
          test_symmetric_default_negotiates_full;
        Alcotest.test_case "flow-to-queue steering is deterministic" `Quick
          test_flow_to_queue_determinism;
        Alcotest.test_case "per-queue suppression independence" `Quick
          test_per_queue_suppression_independence;
        Alcotest.test_case "stranded multi-queue teardown reclaim" `Quick
          test_multiqueue_stranded_teardown_reclaim;
      ] );
  ]
