(* Tests for the IP stack, UDP, and TCP over a zero-substrate "cable". *)

module Stack = Netstack.Stack
module Udp = Netstack.Udp
module Tcp = Netstack.Tcp
module Netdevice = Netstack.Netdevice
module Netfilter = Netstack.Netfilter
module Ip = Netcore.Ip
module Mac = Netcore.Mac

type host = { stack : Stack.t; udp : Udp.t; tcp : Tcp.t; dev : Netdevice.t }

(* Two hosts joined by a constant-latency cable.  The cable transfers the
   serialized bytes, so everything below the socket API is exercised
   end-to-end through the codec. *)
let make_pair ?(cable_latency = Sim.Time.us 2) ?(mtu = 1500) engine =
  let params = Hypervisor.Params.default in
  let make i =
    let mac = Mac.of_domid ~machine:9 ~domid:i in
    let ip = Ip.make ~subnet:9 ~host:i in
    let cpu = Sim.Resource.create ~name:(Printf.sprintf "host%d.cpu" i) in
    let stack = Stack.create ~engine ~params ~cpu ~ip ~mac () in
    let dev = Netdevice.create ~name:(Printf.sprintf "eth%d" i) ~mtu ~mac () in
    Stack.attach_device stack dev;
    let udp = Udp.attach stack in
    let tcp = Tcp.attach stack in
    { stack; udp; tcp; dev }
  in
  let a = make 1 and b = make 2 in
  let connect_cable src dst =
    Netdevice.set_transmit src.dev (fun packet ->
        let raw = Netcore.Codec.serialize packet in
        Sim.Engine.after engine cable_latency (fun () ->
            match Netcore.Codec.parse raw with
            | Ok p -> Netdevice.receive dst.dev p
            | Error e -> Alcotest.failf "cable corruption: %a" Netcore.Codec.pp_error e))
  in
  connect_cable a b;
  connect_cable b a;
  (a, b)

let run_sim f =
  let engine = Sim.Engine.create () in
  let result = ref None in
  Sim.Engine.spawn engine (fun () -> result := Some (f engine));
  Sim.Engine.run ~until:(Sim.Time.add Sim.Time.zero (Sim.Time.sec 60)) engine;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "simulation deadlocked (process never finished)"

(* ------------------------------------------------------------------ *)
(* ICMP / ARP *)

let test_ping_rtt () =
  run_sim (fun engine ->
      let a, b = make_pair engine in
      match Stack.ping a.stack ~dst:(Stack.ip_addr b.stack) () with
      | None -> Alcotest.fail "ping timed out"
      | Some rtt ->
          Alcotest.(check bool) "rtt positive" true (Sim.Time.span_is_positive rtt);
          (* Second ping should be faster or equal: ARP already resolved. *)
          let rtt2 =
            match Stack.ping a.stack ~dst:(Stack.ip_addr b.stack) () with
            | Some r -> r
            | None -> Alcotest.fail "second ping timed out"
          in
          Alcotest.(check bool) "warm path is not slower" true
            (Sim.Time.span_compare rtt2 rtt <= 0))

let test_ping_self_via_loopback () =
  run_sim (fun engine ->
      let a, _ = make_pair engine in
      match Stack.ping a.stack ~dst:(Stack.ip_addr a.stack) () with
      | None -> Alcotest.fail "self ping timed out"
      | Some _ ->
          (* Request and reply both ride the loopback device. *)
          Alcotest.(check int) "two frames on lo" 2
            (Netdevice.tx_packets (Stack.loopback_device a.stack));
          Alcotest.(check int) "nothing on the wire" 0 (Netdevice.tx_packets a.dev))

let test_ping_unreachable_times_out () =
  run_sim (fun engine ->
      let a, _ = make_pair engine in
      let ghost = Ip.make ~subnet:9 ~host:99 in
      match
        try Some (Stack.ping a.stack ~dst:ghost ()) with Stack.Unreachable _ -> None
      with
      | None -> ()
      | Some (Some _) -> Alcotest.fail "ping to ghost succeeded"
      | Some None -> Alcotest.fail "expected ARP failure, got ICMP timeout")

let test_arp_cache_populated () =
  run_sim (fun engine ->
      let a, b = make_pair engine in
      ignore (Stack.ping a.stack ~dst:(Stack.ip_addr b.stack) ());
      match Netstack.Neighbor.lookup (Stack.neighbor a.stack) (Stack.ip_addr b.stack) with
      | Some mac ->
          Alcotest.(check bool) "learned b's mac" true
            (Mac.equal mac (Stack.mac_addr b.stack))
      | None -> Alcotest.fail "no neighbour entry")

(* ------------------------------------------------------------------ *)
(* UDP *)

let test_udp_roundtrip () =
  run_sim (fun engine ->
      let a, b = make_pair engine in
      let server =
        match Udp.bind b.udp ~port:5353 () with
        | Ok s -> s
        | Error _ -> Alcotest.fail "bind failed"
      in
      let client =
        match Udp.bind a.udp () with Ok s -> s | Error _ -> Alcotest.fail "bind failed"
      in
      Sim.Engine.spawn engine (fun () ->
          let src, sport, query = Udp.recvfrom server in
          Alcotest.(check string) "query" "hello?" (Bytes.to_string query);
          Udp.sendto server ~dst:src ~dst_port:sport (Bytes.of_string "world!"));
      Udp.sendto client ~dst:(Stack.ip_addr b.stack) ~dst_port:5353
        (Bytes.of_string "hello?");
      let _, _, answer = Udp.recvfrom client in
      Alcotest.(check string) "answer" "world!" (Bytes.to_string answer))

let test_udp_large_datagram_fragments () =
  run_sim (fun engine ->
      let a, b = make_pair engine in
      let server =
        match Udp.bind b.udp ~port:7 () with
        | Ok s -> s
        | Error _ -> Alcotest.fail "bind failed"
      in
      let client =
        match Udp.bind a.udp () with Ok s -> s | Error _ -> Alcotest.fail "bind failed"
      in
      let big = Bytes.init 40_000 (fun i -> Char.chr (i land 0xff)) in
      Udp.sendto client ~dst:(Stack.ip_addr b.stack) ~dst_port:7 big;
      let _, _, got = Udp.recvfrom server in
      Alcotest.(check bool) "payload intact" true (Bytes.equal big got);
      Alcotest.(check bool) "was fragmented on the wire" true
        (Netdevice.tx_packets a.dev > 10))

let test_udp_max_datagram_enforced () =
  run_sim (fun engine ->
      let a, b = make_pair engine in
      let client =
        match Udp.bind a.udp () with Ok s -> s | Error _ -> Alcotest.fail "bind failed"
      in
      Alcotest.(check bool) "oversized rejected" true
        (try
           Udp.sendto client ~dst:(Stack.ip_addr b.stack) ~dst_port:1
             (Bytes.make (Udp.max_datagram + 1) 'x');
           false
         with Invalid_argument _ -> true))

let test_udp_port_conflict () =
  run_sim (fun engine ->
      let a, _ = make_pair engine in
      (match Udp.bind a.udp ~port:123 () with Ok _ -> () | Error _ -> Alcotest.fail "bind");
      match Udp.bind a.udp ~port:123 () with
      | Error Udp.Port_in_use -> ()
      | _ -> Alcotest.fail "double bind accepted")

let test_udp_unknown_port_dropped () =
  run_sim (fun engine ->
      let a, b = make_pair engine in
      let client =
        match Udp.bind a.udp () with Ok s -> s | Error _ -> Alcotest.fail "bind failed"
      in
      Udp.sendto client ~dst:(Stack.ip_addr b.stack) ~dst_port:9999
        (Bytes.of_string "void");
      Sim.Engine.sleep (Sim.Time.ms 10);
      (* Nothing crashes; the datagram simply vanishes. *)
      Alcotest.(check int) "no receiver" 0 0)

(* ------------------------------------------------------------------ *)
(* TCP *)

let with_tcp_pair engine f =
  let a, b = make_pair engine in
  let listener =
    match Tcp.listen b.tcp ~port:80 with
    | Ok l -> l
    | Error e -> Alcotest.failf "listen failed: %a" Tcp.pp_error e
  in
  let server_conn = ref None in
  Sim.Engine.spawn engine (fun () -> server_conn := Some (Tcp.accept listener));
  let client_conn =
    match Tcp.connect a.tcp ~dst:(Stack.ip_addr b.stack) ~dst_port:80 () with
    | Ok c -> c
    | Error e -> Alcotest.failf "connect failed: %a" Tcp.pp_error e
  in
  (* Accept completes strictly before connect returns (final ACK), but give
     the accept process a chance to run. *)
  Sim.Engine.sleep (Sim.Time.ms 1);
  match !server_conn with
  | None -> Alcotest.fail "accept never completed"
  | Some sc -> f ~client:client_conn ~server:sc ~a ~b

let test_tcp_connect_and_echo () =
  run_sim (fun engine ->
      with_tcp_pair engine (fun ~client ~server ~a:_ ~b:_ ->
          Sim.Engine.spawn engine (fun () ->
              let request = Tcp.recv_exact server 5 in
              Alcotest.(check string) "request" "marco" (Bytes.to_string request);
              Tcp.send server (Bytes.of_string "polo!"));
          Tcp.send client (Bytes.of_string "marco");
          let reply = Tcp.recv_exact client 5 in
          Alcotest.(check string) "reply" "polo!" (Bytes.to_string reply)))

let test_tcp_bulk_transfer_integrity () =
  run_sim (fun engine ->
      with_tcp_pair engine (fun ~client ~server ~a:_ ~b:_ ->
          let n = 500_000 in
          let data = Bytes.init n (fun i -> Char.chr ((i * 7) land 0xff)) in
          Sim.Engine.spawn engine (fun () -> Tcp.send client data);
          let got = Tcp.recv_exact server n in
          Alcotest.(check bool) "byte-identical" true (Bytes.equal data got);
          Alcotest.(check int) "counters" n (Tcp.bytes_received server)))

let test_tcp_bidirectional () =
  run_sim (fun engine ->
      with_tcp_pair engine (fun ~client ~server ~a:_ ~b:_ ->
          (* Each direction fits in the peer's receive buffer, so two
             blocking sends cannot deadlock (as they would in real TCP). *)
          let n = 30_000 in
          let to_server = Bytes.make n 'A' and to_client = Bytes.make n 'B' in
          Sim.Engine.spawn engine (fun () ->
              Tcp.send server to_client;
              let got = Tcp.recv_exact server n in
              Alcotest.(check bool) "server got A's" true (Bytes.equal got to_server));
          Tcp.send client to_server;
          let got = Tcp.recv_exact client n in
          Alcotest.(check bool) "client got B's" true (Bytes.equal got to_client)))

let test_tcp_connect_refused () =
  run_sim (fun engine ->
      let a, b = make_pair engine in
      ignore b;
      match Tcp.connect a.tcp ~dst:(Stack.ip_addr b.stack) ~dst_port:9 () with
      | Error Tcp.Refused -> ()
      | Ok _ -> Alcotest.fail "connected to a closed port"
      | Error e -> Alcotest.failf "unexpected error: %a" Tcp.pp_error e)

let test_tcp_close_eof () =
  run_sim (fun engine ->
      with_tcp_pair engine (fun ~client ~server ~a:_ ~b:_ ->
          Sim.Engine.spawn engine (fun () ->
              Tcp.send client (Bytes.of_string "bye");
              Tcp.close client);
          let got = Tcp.recv_exact server 3 in
          Alcotest.(check string) "data before fin" "bye" (Bytes.to_string got);
          let eof = Tcp.recv server ~max:10 in
          Alcotest.(check int) "eof" 0 (Bytes.length eof)))

let test_tcp_flow_control_blocks_sender () =
  run_sim (fun engine ->
      with_tcp_pair engine (fun ~client ~server ~a:_ ~b:_ ->
          (* Server never reads: sender must stall at the 256 KiB window. *)
          ignore server;
          let sent = ref 0 in
          let chunks = 24 in
          Sim.Engine.spawn engine (fun () ->
              let chunk = Bytes.make 16_384 'x' in
              for _ = 1 to chunks do
                Tcp.send client chunk;
                sent := !sent + Bytes.length chunk
              done);
          Sim.Engine.sleep (Sim.Time.sec 5);
          Alcotest.(check bool) "sender stalled near the window" true
            (!sent <= 262_140 + 16_384);
          (* Now drain; the sender must finish. *)
          let rec drain n =
            if n < chunks * 16_384 then begin
              let got = Tcp.recv server ~max:65536 in
              drain (n + Bytes.length got)
            end
          in
          drain 0;
          Sim.Engine.sleep (Sim.Time.sec 1);
          Alcotest.(check int) "all sent after drain" (chunks * 16_384) !sent))

let test_tcp_mss_respects_path_mtu () =
  run_sim (fun engine ->
      with_tcp_pair engine (fun ~client ~server ~a:_ ~b:_ ->
          ignore server;
          Alcotest.(check int) "mss = mtu - 40" 1460 (Tcp.mss client)))

let test_tcp_seq_wraparound () =
  (* Serial arithmetic must survive crossing 2^31 and 2^32. *)
  let near_wrap = Int32.of_int (-5) in
  let after = Tcp.seq_add near_wrap 10 in
  Alcotest.(check int) "diff across wrap" 10 (Tcp.seq_diff after near_wrap);
  Alcotest.(check bool) "lt across wrap" true (Tcp.seq_lt near_wrap after);
  Alcotest.(check bool) "not gt" false (Tcp.seq_lt after near_wrap)

let prop_tcp_stream_integrity =
  QCheck.Test.make ~name:"tcp stream delivers arbitrary write patterns intact"
    ~count:20
    QCheck.(list_of_size Gen.(1 -- 10) (string_of_size Gen.(1 -- 5000)))
    (fun chunks ->
      run_sim (fun engine ->
          let a, b = make_pair engine in
          let listener =
            match Tcp.listen b.tcp ~port:81 with
            | Ok l -> l
            | Error _ -> failwith "listen"
          in
          let expected = String.concat "" chunks in
          let received = ref "" in
          Sim.Engine.spawn engine (fun () ->
              let conn = Tcp.accept listener in
              received :=
                Bytes.to_string (Tcp.recv_exact conn (String.length expected)));
          (match Tcp.connect a.tcp ~dst:(Stack.ip_addr b.stack) ~dst_port:81 () with
          | Ok conn ->
              List.iter (fun chunk -> Tcp.send conn (Bytes.of_string chunk)) chunks
          | Error _ -> failwith "connect");
          Sim.Engine.sleep (Sim.Time.sec 20);
          !received = expected))

let test_tcp_double_listen_rejected () =
  run_sim (fun engine ->
      let _a, b = make_pair engine in
      (match Tcp.listen b.tcp ~port:80 with Ok _ -> () | Error _ -> Alcotest.fail "listen");
      match Tcp.listen b.tcp ~port:80 with
      | Error Tcp.Already_bound -> ()
      | _ -> Alcotest.fail "double listen accepted")

let test_tcp_accept_opt_nonblocking () =
  run_sim (fun engine ->
      let a, b = make_pair engine in
      let listener =
        match Tcp.listen b.tcp ~port:80 with Ok l -> l | Error _ -> Alcotest.fail "listen"
      in
      Alcotest.(check bool) "empty accept queue" true (Tcp.accept_opt listener = None);
      (match Tcp.connect a.tcp ~dst:(Stack.ip_addr b.stack) ~dst_port:80 () with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "connect: %a" Tcp.pp_error e);
      Sim.Engine.sleep (Sim.Time.ms 1);
      Alcotest.(check bool) "connection queued" true (Tcp.accept_opt listener <> None))

let test_tcp_conn_metadata () =
  run_sim (fun engine ->
      with_tcp_pair engine (fun ~client ~server ~a:_ ~b ->
          Alcotest.(check int) "server port" 80 (Tcp.local_port server);
          let peer_ip, peer_port = Tcp.peer client in
          Alcotest.(check bool) "peer ip" true
            (Ip.equal peer_ip (Stack.ip_addr b.stack));
          Alcotest.(check int) "peer port" 80 peer_port;
          Tcp.send client (Bytes.make 100 'm');
          ignore (Tcp.recv_exact server 100);
          Alcotest.(check int) "bytes sent" 100 (Tcp.bytes_sent client);
          Alcotest.(check int) "bytes received" 100 (Tcp.bytes_received server)))

let test_netfilter_hooks_run_in_order () =
  run_sim (fun engine ->
      let a, b = make_pair engine in
      let order = ref [] in
      let nf = Stack.post_routing a.stack in
      let _h1 =
        Netfilter.register nf (fun _ ->
            order := 1 :: !order;
            Netfilter.Accept)
      in
      let _h2 =
        Netfilter.register nf (fun _ ->
            order := 2 :: !order;
            Netfilter.Accept)
      in
      Alcotest.(check int) "two hooks" 2 (Netfilter.hook_count nf);
      ignore (Stack.ping a.stack ~dst:(Stack.ip_addr b.stack) ());
      (* Request passed both hooks in registration order. *)
      (match List.rev !order with
      | 1 :: 2 :: _ -> ()
      | _ -> Alcotest.fail "hooks out of order");
      (* A stealing first hook short-circuits the second. *)
      order := [];
      let _h0 = Netfilter.register nf (fun _ -> Netfilter.Steal) in
      ignore
        (Stack.ping a.stack ~dst:(Stack.ip_addr b.stack) ~timeout:(Sim.Time.ms 20) ());
      Alcotest.(check (list int)) "short-circuited after steal" [ 2; 1 ] !order)

(* ------------------------------------------------------------------ *)
(* Loss recovery *)

(* A pair whose cable can drop frames (every [period]-th IPv4 frame when
   [period > 0]) or be cut entirely via the returned switch.  TCP must
   recover through retransmission — this is the migration-blackout
   situation. *)
let make_lossy_pair engine ~period =
  let params = Hypervisor.Params.default in
  let make i =
    let mac = Mac.of_domid ~machine:8 ~domid:i in
    let ip = Ip.make ~subnet:8 ~host:i in
    let cpu = Sim.Resource.create ~name:(Printf.sprintf "lossy%d.cpu" i) in
    let stack = Stack.create ~engine ~params ~cpu ~ip ~mac () in
    let dev = Netdevice.create ~name:(Printf.sprintf "eth%d" i) ~mtu:1500 ~mac () in
    Stack.attach_device stack dev;
    let udp = Udp.attach stack in
    let tcp = Tcp.attach stack in
    { stack; udp; tcp; dev }
  in
  let a = make 1 and b = make 2 in
  let counter = ref 0 in
  let cut = ref false in
  let connect_cable src dst =
    Netdevice.set_transmit src.dev (fun packet ->
        let periodic_drop =
          period > 0 && Netcore.Packet.is_ipv4 packet
          &&
          (incr counter;
           !counter mod period = 0)
        in
        if (not !cut) && not periodic_drop then
          Sim.Engine.after engine (Sim.Time.us 2) (fun () ->
              Netdevice.receive dst.dev packet))
  in
  connect_cable a b;
  connect_cable b a;
  (a, b, cut)

let test_tcp_retransmits_through_loss () =
  run_sim (fun engine ->
      let a, b, _ = make_lossy_pair engine ~period:7 in
      let listener =
        match Tcp.listen b.tcp ~port:80 with
        | Ok l -> l
        | Error _ -> Alcotest.fail "listen"
      in
      let n = 100_000 in
      let data = Bytes.init n (fun i -> Char.chr (i * 11 land 0xff)) in
      let got = ref Bytes.empty in
      Sim.Engine.spawn engine (fun () ->
          let conn = Tcp.accept listener in
          got := Tcp.recv_exact conn n);
      (match Tcp.connect a.tcp ~dst:(Stack.ip_addr b.stack) ~dst_port:80 () with
      | Ok conn -> Tcp.send conn data
      | Error e -> Alcotest.failf "connect through loss failed: %a" Tcp.pp_error e);
      Sim.Engine.sleep (Sim.Time.sec 30);
      Alcotest.(check bool) "every byte recovered" true (Bytes.equal data !got))

let test_tcp_survives_total_blackout () =
  run_sim (fun engine ->
      let a, b, cut = make_lossy_pair engine ~period:0 in
      let listener =
        match Tcp.listen b.tcp ~port:80 with
        | Ok l -> l
        | Error _ -> Alcotest.fail "listen"
      in
      let n = 200_000 in
      let data = Bytes.init n (fun i -> Char.chr (i * 5 land 0xff)) in
      let got = ref Bytes.empty in
      Sim.Engine.spawn engine (fun () ->
          let conn = Tcp.accept listener in
          got := Tcp.recv_exact conn n);
      Sim.Engine.spawn engine (fun () ->
          match Tcp.connect a.tcp ~dst:(Stack.ip_addr b.stack) ~dst_port:80 () with
          | Ok conn -> Tcp.send conn data
          | Error _ -> Alcotest.fail "connect");
      (* Cut the cable for 300 ms in the middle of the stream. *)
      Sim.Engine.after engine (Sim.Time.ms 5) (fun () -> cut := true);
      Sim.Engine.after engine (Sim.Time.ms 305) (fun () -> cut := false);
      Sim.Engine.sleep (Sim.Time.sec 30);
      Alcotest.(check bool) "stream completed after blackout" true
        (Bytes.equal data !got))

let prop_tcp_random_loss =
  QCheck.Test.make ~name:"tcp stream survives random frame loss" ~count:12
    QCheck.(pair (int_range 0 10_000) (int_range 5 25))
    (fun (seed, loss_percent) ->
      run_sim (fun engine ->
          let params = Hypervisor.Params.default in
          let rng = Sim.Rng.create ~seed in
          let make i =
            let mac = Mac.of_domid ~machine:7 ~domid:i in
            let ip = Ip.make ~subnet:7 ~host:i in
            let cpu = Sim.Resource.create ~name:(Printf.sprintf "r%d.cpu" i) in
            let stack = Stack.create ~engine ~params ~cpu ~ip ~mac () in
            let dev =
              Netdevice.create ~name:(Printf.sprintf "eth%d" i) ~mtu:1500 ~mac ()
            in
            Stack.attach_device stack dev;
            let udp = Udp.attach stack in
            let tcp = Tcp.attach stack in
            { stack; udp; tcp; dev }
          in
          let a = make 1 and b = make 2 in
          let connect_cable src dst =
            Netdevice.set_transmit src.dev (fun packet ->
                let drop =
                  Netcore.Packet.is_ipv4 packet
                  && Sim.Rng.int rng 100 < loss_percent
                in
                if not drop then
                  Sim.Engine.after engine (Sim.Time.us 2) (fun () ->
                      Netdevice.receive dst.dev packet))
          in
          connect_cable a b;
          connect_cable b a;
          let listener =
            match Tcp.listen b.tcp ~port:80 with Ok l -> l | Error _ -> failwith "listen"
          in
          let n = 30_000 in
          let data = Bytes.init n (fun i -> Char.chr (i * 13 land 0xff)) in
          let got = ref Bytes.empty in
          Sim.Engine.spawn engine (fun () ->
              let conn = Tcp.accept listener in
              got := Tcp.recv_exact conn n);
          Sim.Engine.spawn engine (fun () ->
              match Tcp.connect a.tcp ~dst:(Stack.ip_addr b.stack) ~dst_port:80 () with
              | Ok conn -> Tcp.send conn data
              | Error _ -> () (* repeated SYN loss can exhaust the handshake *));
          Sim.Engine.sleep (Sim.Time.sec 50);
          (* Either the whole stream arrived intact, or the handshake itself
             never completed (possible at high loss); corruption or partial
             delivery is never acceptable. *)
          Bytes.length !got = 0 || Bytes.equal data !got))

(* ------------------------------------------------------------------ *)
(* Netfilter interaction *)

let test_netfilter_steals_packets () =
  run_sim (fun engine ->
      let a, b = make_pair engine in
      let stolen = ref 0 in
      let _handle =
        Netfilter.register (Stack.post_routing a.stack) (fun packet ->
            if Netcore.Packet.is_ipv4 packet then begin
              incr stolen;
              Netfilter.Steal
            end
            else Netfilter.Accept)
      in
      (match Stack.ping a.stack ~dst:(Stack.ip_addr b.stack) ~timeout:(Sim.Time.ms 50) ()
       with
      | None -> ()
      | Some _ -> Alcotest.fail "stolen ping still completed");
      Alcotest.(check int) "request stolen" 1 !stolen;
      Alcotest.(check int) "stack counted theft" 1 (Stack.stats a.stack).Stack.stolen_by_hook)

let test_netfilter_unregister_restores () =
  run_sim (fun engine ->
      let a, b = make_pair engine in
      let handle =
        Netfilter.register (Stack.post_routing a.stack) (fun _ -> Netfilter.Steal)
      in
      Netfilter.unregister (Stack.post_routing a.stack) handle;
      match Stack.ping a.stack ~dst:(Stack.ip_addr b.stack) () with
      | Some _ -> ()
      | None -> Alcotest.fail "ping failed after unregister")

(* ------------------------------------------------------------------ *)
(* Capture *)

let test_capture_records_both_directions () =
  run_sim (fun engine ->
      let a, b = make_pair engine in
      let cap = Netstack.Capture.attach ~engine a.dev in
      ignore (Stack.ping a.stack ~dst:(Stack.ip_addr b.stack) ());
      (* ARP request+reply and ICMP request+reply all cross a's device. *)
      Alcotest.(check bool) "several frames" true (Netstack.Capture.count cap >= 4);
      let tx =
        Netstack.Capture.filter cap (fun r -> r.Netstack.Capture.dir = Netstack.Capture.Tx)
      in
      let rx =
        Netstack.Capture.filter cap (fun r -> r.Netstack.Capture.dir = Netstack.Capture.Rx)
      in
      Alcotest.(check bool) "tx and rx captured" true
        (List.length tx >= 2 && List.length rx >= 2);
      (* Timestamps are monotone. *)
      let times =
        List.map (fun r -> r.Netstack.Capture.at) (Netstack.Capture.records cap)
      in
      let rec monotone = function
        | t1 :: (t2 :: _ as rest) -> Sim.Time.compare t1 t2 <= 0 && monotone rest
        | _ -> true
      in
      Alcotest.(check bool) "monotone timestamps" true (monotone times))

let test_capture_filters_and_stop () =
  run_sim (fun engine ->
      let a, b = make_pair engine in
      let cap = Netstack.Capture.attach ~engine a.dev in
      let client =
        match Udp.bind a.udp () with Ok s -> s | Error _ -> Alcotest.fail "bind"
      in
      let server =
        match Udp.bind b.udp ~port:9 () with Ok s -> s | Error _ -> Alcotest.fail "bind"
      in
      Udp.sendto client ~dst:(Stack.ip_addr b.stack) ~dst_port:9 (Bytes.make 10 'c');
      ignore (Udp.recvfrom server);
      let udp_frames = Netstack.Capture.filter cap Netstack.Capture.udp_only in
      Alcotest.(check bool) "udp captured" true (List.length udp_frames >= 1);
      Alcotest.(check int) "no tcp" 0
        (List.length (Netstack.Capture.filter cap Netstack.Capture.tcp_only));
      let before = Netstack.Capture.count cap in
      Netstack.Capture.stop cap;
      Udp.sendto client ~dst:(Stack.ip_addr b.stack) ~dst_port:9 (Bytes.make 10 'd');
      Sim.Engine.sleep (Sim.Time.ms 1);
      Alcotest.(check int) "stopped" before (Netstack.Capture.count cap);
      (* Rendering does not raise. *)
      let rendered = Format.asprintf "%a" Netstack.Capture.pp cap in
      Alcotest.(check bool) "rendered" true (String.length rendered > 0))

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "netstack.icmp",
      [
        Alcotest.test_case "ping rtt over cable" `Quick test_ping_rtt;
        Alcotest.test_case "self ping via loopback" `Quick test_ping_self_via_loopback;
        Alcotest.test_case "unreachable host" `Quick test_ping_unreachable_times_out;
        Alcotest.test_case "arp cache populated" `Quick test_arp_cache_populated;
      ] );
    ( "netstack.udp",
      [
        Alcotest.test_case "roundtrip" `Quick test_udp_roundtrip;
        Alcotest.test_case "large datagram fragments" `Quick
          test_udp_large_datagram_fragments;
        Alcotest.test_case "max datagram enforced" `Quick test_udp_max_datagram_enforced;
        Alcotest.test_case "port conflict" `Quick test_udp_port_conflict;
        Alcotest.test_case "unknown port dropped" `Quick test_udp_unknown_port_dropped;
      ] );
    ( "netstack.tcp",
      [
        Alcotest.test_case "connect and echo" `Quick test_tcp_connect_and_echo;
        Alcotest.test_case "bulk transfer integrity" `Quick
          test_tcp_bulk_transfer_integrity;
        Alcotest.test_case "bidirectional" `Quick test_tcp_bidirectional;
        Alcotest.test_case "connect refused" `Quick test_tcp_connect_refused;
        Alcotest.test_case "close delivers EOF" `Quick test_tcp_close_eof;
        Alcotest.test_case "flow control blocks sender" `Quick
          test_tcp_flow_control_blocks_sender;
        Alcotest.test_case "mss from path mtu" `Quick test_tcp_mss_respects_path_mtu;
        Alcotest.test_case "sequence wraparound" `Quick test_tcp_seq_wraparound;
        Alcotest.test_case "double listen rejected" `Quick test_tcp_double_listen_rejected;
        Alcotest.test_case "accept_opt non-blocking" `Quick test_tcp_accept_opt_nonblocking;
        Alcotest.test_case "connection metadata" `Quick test_tcp_conn_metadata;
        Alcotest.test_case "retransmits through loss" `Quick
          test_tcp_retransmits_through_loss;
        Alcotest.test_case "survives total blackout" `Quick
          test_tcp_survives_total_blackout;
      ]
      @ [ QCheck_alcotest.to_alcotest prop_tcp_random_loss ]
      @ [ QCheck_alcotest.to_alcotest prop_tcp_stream_integrity ] );
    ( "netstack.capture",
      [
        Alcotest.test_case "records both directions" `Quick
          test_capture_records_both_directions;
        Alcotest.test_case "filters and stop" `Quick test_capture_filters_and_stop;
      ] );
    ( "netstack.netfilter",
      [
        Alcotest.test_case "hook steals packets" `Quick test_netfilter_steals_packets;
        Alcotest.test_case "unregister restores path" `Quick
          test_netfilter_unregister_restores;
        Alcotest.test_case "hooks run in order, steal short-circuits" `Quick
          test_netfilter_hooks_run_in_order;
      ] );
  ]
