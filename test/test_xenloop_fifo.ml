(* Tests for the XenLoop lockless FIFO, the control protocol codec, and the
   mapping table. *)

module Fifo = Xenloop.Fifo
module Proto = Xenloop.Proto
module Mapping = Xenloop.Mapping_table
module Page = Memory.Page
module Mac = Netcore.Mac

let make_fifo ?(k = 6) () =
  let desc = Page.create () in
  let data = Array.init (Fifo.data_pages_for ~k) (fun _ -> Page.create ()) in
  Fifo.init ~desc ~data ~k;
  (desc, data, Fifo.attach ~desc ~data)

(* ------------------------------------------------------------------ *)
(* FIFO basics *)

let test_fifo_geometry () =
  let _, _, f = make_fifo ~k:6 () in
  Alcotest.(check int) "slots" 64 (Fifo.slots f);
  Alcotest.(check int) "max packet" (63 * 8) (Fifo.max_packet f);
  Alcotest.(check int) "free" 64 (Fifo.free_slots f);
  Alcotest.(check bool) "empty" true (Fifo.is_empty f);
  Alcotest.(check bool) "active" true (Fifo.is_active f);
  Alcotest.(check int) "default k is 64KiB" 8192 (1 lsl Fifo.default_k)

let test_fifo_push_pop_roundtrip () =
  let _, _, f = make_fifo () in
  let payload = Bytes.of_string "hello xenloop fifo" in
  Alcotest.(check bool) "pushed" true (Fifo.try_push f payload);
  Alcotest.(check bool) "not empty" false (Fifo.is_empty f);
  (match Fifo.pop f with
  | Some got -> Alcotest.(check bytes) "identical" payload got
  | None -> Alcotest.fail "pop returned nothing");
  Alcotest.(check bool) "empty again" true (Fifo.is_empty f);
  Alcotest.(check (option reject)) "pop on empty" None
    (Option.map ignore (Fifo.pop f))

let test_fifo_rejects_oversize () =
  let _, _, f = make_fifo ~k:6 () in
  Alcotest.(check bool) "max fits" true
    (Fifo.try_push f (Bytes.make (Fifo.max_packet f) 'x'));
  ignore (Fifo.pop f);
  Alcotest.(check bool) "over max rejected" false
    (Fifo.try_push f (Bytes.make (Fifo.max_packet f + 1) 'x'));
  Alcotest.(check bool) "empty payload rejected" false (Fifo.try_push f Bytes.empty)

let test_fifo_fills_and_frees () =
  let _, _, f = make_fifo ~k:6 () in
  (* Each 24-byte payload consumes 1 + 3 = 4 slots; 16 of them fill 64. *)
  let payload = Bytes.make 24 'f' in
  for i = 1 to 16 do
    Alcotest.(check bool) (Printf.sprintf "push %d" i) true (Fifo.try_push f payload)
  done;
  Alcotest.(check int) "full" 0 (Fifo.free_slots f);
  Alcotest.(check bool) "17th rejected" false (Fifo.try_push f payload);
  (match Fifo.pop f with Some _ -> () | None -> Alcotest.fail "pop failed");
  Alcotest.(check int) "freed 4 slots" 4 (Fifo.free_slots f);
  Alcotest.(check bool) "push fits again" true (Fifo.try_push f payload)

let test_fifo_inactive_flag_shared () =
  let desc, data, f = make_fifo () in
  (* A second view over the same pages — like the peer's mapping. *)
  let peer_view = Fifo.attach ~desc ~data in
  Fifo.mark_inactive f;
  Alcotest.(check bool) "peer sees inactive" false (Fifo.is_active peer_view)

let test_fifo_data_visible_through_second_view () =
  let desc, data, f = make_fifo () in
  let peer_view = Fifo.attach ~desc ~data in
  Alcotest.(check bool) "push via producer view" true
    (Fifo.try_push f (Bytes.of_string "shared-memory"));
  match Fifo.pop peer_view with
  | Some got -> Alcotest.(check string) "consumer view reads it" "shared-memory"
      (Bytes.to_string got)
  | None -> Alcotest.fail "peer view saw nothing"

let test_fifo_wraparound_32bit_indices () =
  (* Force the free-running indices near 2^32: pushes and pops must keep
     working across the wrap (paper: m = 32, no boundary special case). *)
  let desc, _data, f = make_fifo ~k:6 () in
  Fifo.force_indices ~desc (0xFFFFFFFF - 7);
  let payload = Bytes.make 50 'w' in
  for round = 1 to 8 do
    Alcotest.(check bool) (Printf.sprintf "push round %d" round) true
      (Fifo.try_push f payload);
    match Fifo.pop f with
    | Some got ->
        Alcotest.(check bytes) (Printf.sprintf "pop round %d" round) payload got
    | None -> Alcotest.fail "pop failed across wrap"
  done;
  (* Indices really did wrap past zero. *)
  Alcotest.(check bool) "front wrapped" true (Fifo.front f < 100)

let test_fifo_init_validation () =
  let desc = Page.create () in
  let wrong = [| Page.create () |] in
  (* k = 10 needs two data pages; one is a mismatch. *)
  Alcotest.check_raises "wrong page count"
    (Invalid_argument "Fifo.init: wrong number of data pages") (fun () ->
      Fifo.init ~desc ~data:wrong ~k:10);
  Alcotest.check_raises "k out of range"
    (Invalid_argument "Fifo.init: k out of range") (fun () ->
      Fifo.init ~desc ~data:wrong ~k:50)

let test_fifo_grefs_roundtrip () =
  let desc = Page.create () in
  let k = 6 in
  let data = Array.init (Fifo.data_pages_for ~k) (fun _ -> Page.create ()) in
  Fifo.init ~desc ~data ~k;
  let grefs = [ 17 ] in
  Fifo.write_grefs ~desc grefs;
  Alcotest.(check (list int)) "grefs" grefs (Fifo.read_grefs ~desc)

let prop_fifo_order_and_content =
  QCheck.Test.make ~name:"fifo preserves order and content under random ops"
    ~count:100
    QCheck.(list (pair bool (string_of_size QCheck.Gen.(1 -- 300))))
    (fun ops ->
      let _, _, f = make_fifo ~k:8 () in
      let model = Queue.create () in
      List.for_all
        (fun (is_push, payload) ->
          if is_push then begin
            let b = Bytes.of_string payload in
            let pushed = Fifo.try_push f b in
            if pushed then Queue.push b model;
            true
          end
          else
            match (Fifo.pop f, Queue.take_opt model) with
            | None, None -> true
            | Some got, Some expected -> Bytes.equal got expected
            | Some _, None | None, Some _ -> false)
        ops
      && Fifo.used_slots f
         = Queue.fold (fun acc b -> acc + 1 + ((Bytes.length b + 7) / 8)) 0 model)

let prop_fifo_wrap_stream =
  QCheck.Test.make ~name:"fifo streams correctly across the 2^32 wrap" ~count:30
    QCheck.(list_of_size QCheck.Gen.(10 -- 40) (string_of_size QCheck.Gen.(1 -- 100)))
    (fun payloads ->
      let desc = Page.create () in
      let k = 7 in
      let data = Array.init (Fifo.data_pages_for ~k) (fun _ -> Page.create ()) in
      Fifo.init ~desc ~data ~k;
      Fifo.force_indices ~desc (0xFFFFFFFF - 63);
      let f = Fifo.attach ~desc ~data in
      List.for_all
        (fun payload ->
          let b = Bytes.of_string payload in
          Fifo.try_push f b
          && match Fifo.pop f with Some got -> Bytes.equal got b | None -> false)
        payloads)

(* ------------------------------------------------------------------ *)
(* Control protocol *)

let sample_messages =
  [
    Proto.Announce [];
    Proto.Announce
      [
        {
          Proto.entry_domid = 1;
          entry_mac = Mac.of_domid ~machine:0 ~domid:1;
          entry_ip = Netcore.Ip.make ~subnet:2 ~host:1;
          entry_queues = 1;
          entry_zc = false;
          entry_loans = false;
          entry_gso = false;
        };
        {
          Proto.entry_domid = 2;
          entry_mac = Mac.of_domid ~machine:0 ~domid:2;
          entry_ip = Netcore.Ip.make ~subnet:2 ~host:2;
          entry_queues = 4;
          entry_zc = true;
          entry_loans = true;
          entry_gso = true;
        };
      ];
    Proto.Request_channel
      { requester_domid = 7; max_queues = 1; zerocopy = false; loans = false; gso = false };
    Proto.Request_channel
      { requester_domid = 7; max_queues = 8; zerocopy = true; loans = true; gso = true };
    Proto.Create_channel
      {
        listener_domid = 1;
        queues =
          [
            {
              Proto.qg_lc_gref = 123;
              qg_cl_gref = 456;
              qg_port = 3;
              qg_lc_pool = None;
              qg_cl_pool = None;
            };
          ];
      };
    Proto.Create_channel
      {
        listener_domid = 1;
        queues =
          [
            {
              Proto.qg_lc_gref = 123;
              qg_cl_gref = 456;
              qg_port = 3;
              qg_lc_pool = Some 77;
              qg_cl_pool = Some 88;
            };
            {
              Proto.qg_lc_gref = 789;
              qg_cl_gref = 1011;
              qg_port = 4;
              qg_lc_pool = Some 99;
              qg_cl_pool = Some 111;
            };
          ];
      };
    Proto.Channel_ack { connector_domid = 9 };
    Proto.App_payload
      {
        src_ip = Netcore.Ip.make ~subnet:2 ~host:1;
        src_port = 4000;
        dst_port = 53;
        payload = Bytes.of_string "raw shortcut payload";
      };
    Proto.App_payload
      {
        src_ip = Netcore.Ip.make ~subnet:2 ~host:1;
        src_port = 1;
        dst_port = 2;
        payload = Bytes.empty;
      };
  ]

let test_proto_roundtrip () =
  List.iter
    (fun msg ->
      match Proto.decode (Proto.encode msg) with
      | Ok got ->
          Alcotest.(check bool)
            (Format.asprintf "%a" Proto.pp msg)
            true (Proto.equal msg got)
      | Error e -> Alcotest.failf "decode failed: %s" e)
    sample_messages

let test_proto_rejects_garbage () =
  (match Proto.decode (Bytes.of_string "\xFFgarbage") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decoded garbage tag");
  match Proto.decode (Bytes.of_string "\x03\x00") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decoded truncated message"

(* Version gating: every message a single-queue endpoint can produce must
   encode to exactly the original wire format — same tags, same bytes — so
   a negotiated-to-1 handshake is indistinguishable from the paper-faithful
   module on the wire. *)
let test_proto_legacy_wire_format () =
  let check_bytes name expect msg =
    Alcotest.(check string) name expect (Bytes.to_string (Proto.encode msg))
  in
  check_bytes "request_channel q=1 is legacy tag 2" "\x02\x00\x07"
    (Proto.Request_channel
       { requester_domid = 7; max_queues = 1; zerocopy = false; loans = false; gso = false });
  check_bytes "create_channel single queue is legacy tag 3"
    "\x03\x00\x01\x00\x00\x00\x7b\x00\x00\x01\xc8\x00\x03"
    (Proto.Create_channel
       {
         listener_domid = 1;
         queues =
           [
             {
               Proto.qg_lc_gref = 123;
               qg_cl_gref = 456;
               qg_port = 3;
               qg_lc_pool = None;
               qg_cl_pool = None;
             };
           ];
       });
  let entry =
    {
      Proto.entry_domid = 1;
      entry_mac = Mac.of_domid ~machine:0 ~domid:1;
      entry_ip = Netcore.Ip.make ~subnet:2 ~host:1;
      entry_queues = 1;
      entry_zc = false;
      entry_loans = false;
      entry_gso = false;
    }
  in
  let tag_of msg = Char.code (Bytes.get (Proto.encode msg) 0) in
  Alcotest.(check int) "announce all-q1 is legacy tag 1" 1
    (tag_of (Proto.Announce [ entry ]));
  Alcotest.(check int) "announce with q>1 uses tag 6" 6
    (tag_of (Proto.Announce [ { entry with Proto.entry_queues = 4 } ]));
  Alcotest.(check int) "request q>1 uses tag 7" 7
    (tag_of
       (Proto.Request_channel
          { requester_domid = 7; max_queues = 4; zerocopy = false; loans = false; gso = false }));
  Alcotest.(check int) "multi-queue create uses tag 8" 8
    (tag_of
       (Proto.Create_channel
          {
            listener_domid = 1;
            queues =
              [
                {
                  Proto.qg_lc_gref = 1;
                  qg_cl_gref = 2;
                  qg_port = 3;
                  qg_lc_pool = None;
                  qg_cl_pool = None;
                };
                {
                  Proto.qg_lc_gref = 4;
                  qg_cl_gref = 5;
                  qg_port = 6;
                  qg_lc_pool = None;
                  qg_cl_pool = None;
                };
              ];
          }))

let prop_proto_announce_roundtrip =
  QCheck.Test.make ~name:"announce roundtrips for arbitrary entry lists" ~count:100
    QCheck.(
      list_of_size
        Gen.(0 -- 20)
        (triple (int_bound 0xFFFF) (int_bound 1000) (int_range 1 16)))
    (fun raw_entries ->
      let entries =
        List.map
          (fun (domid, m, queues) ->
            {
              Proto.entry_domid = domid;
              entry_mac = Mac.of_domid ~machine:m ~domid;
              entry_ip = Netcore.Ip.make ~subnet:(m land 0xff) ~host:(domid land 0xff);
              entry_queues = queues;
              entry_zc = queues land 1 = 0;
              entry_loans = queues land 3 = 0;
              entry_gso = queues land 5 = 0;
            })
          raw_entries
      in
      match Proto.decode (Proto.encode (Proto.Announce entries)) with
      | Ok (Proto.Announce got) -> got = entries
      | Ok _ | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Mapping table *)

let test_mapping_soft_state () =
  let t = Mapping.create () in
  let mac1 = Mac.of_domid ~machine:0 ~domid:1 in
  let mac2 = Mac.of_domid ~machine:0 ~domid:2 in
  let ip1 = Netcore.Ip.make ~subnet:2 ~host:1 in
  let ip2 = Netcore.Ip.make ~subnet:2 ~host:2 in
  Mapping.update t
    [
      {
        Proto.entry_domid = 1;
        entry_mac = mac1;
        entry_ip = ip1;
        entry_queues = 1;
        entry_zc = false;
        entry_loans = false;
        entry_gso = false;
      };
      {
        Proto.entry_domid = 2;
        entry_mac = mac2;
        entry_ip = ip2;
        entry_queues = 4;
        entry_zc = false;
        entry_loans = false;
        entry_gso = false;
      };
    ];
  Alcotest.(check (option int)) "lookup 1" (Some 1) (Mapping.lookup t mac1);
  Alcotest.(check (option int)) "lookup 2" (Some 2) (Mapping.lookup t mac2);
  (match Mapping.lookup_by_ip t ip1 with
  | Some e -> Alcotest.(check int) "lookup by ip" 1 e.Proto.entry_domid
  | None -> Alcotest.fail "ip lookup failed");
  Alcotest.(check bool) "mem" true (Mapping.mem_domid t 1);
  Alcotest.(check int) "size" 2 (Mapping.size t);
  (* Next announcement drops guest 1: soft state forgets it. *)
  Mapping.update t
    [
      {
        Proto.entry_domid = 2;
        entry_mac = mac2;
        entry_ip = ip2;
        entry_queues = 4;
        entry_zc = false;
        entry_loans = false;
        entry_gso = false;
      };
    ];
  Alcotest.(check (option int)) "1 gone" None (Mapping.lookup t mac1);
  Alcotest.(check bool) "1 not member" false (Mapping.mem_domid t 1);
  Mapping.clear t;
  Alcotest.(check int) "cleared" 0 (Mapping.size t)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "xenloop.fifo",
      [
        Alcotest.test_case "geometry" `Quick test_fifo_geometry;
        Alcotest.test_case "push/pop roundtrip" `Quick test_fifo_push_pop_roundtrip;
        Alcotest.test_case "rejects oversize and empty" `Quick test_fifo_rejects_oversize;
        Alcotest.test_case "fills and frees slots" `Quick test_fifo_fills_and_frees;
        Alcotest.test_case "inactive flag shared" `Quick test_fifo_inactive_flag_shared;
        Alcotest.test_case "two views share data" `Quick
          test_fifo_data_visible_through_second_view;
        Alcotest.test_case "32-bit index wraparound" `Quick
          test_fifo_wraparound_32bit_indices;
        Alcotest.test_case "init validation" `Quick test_fifo_init_validation;
        Alcotest.test_case "grefs in descriptor page" `Quick test_fifo_grefs_roundtrip;
      ]
      @ qsuite [ prop_fifo_order_and_content; prop_fifo_wrap_stream ] );
    ( "xenloop.proto",
      [
        Alcotest.test_case "roundtrip" `Quick test_proto_roundtrip;
        Alcotest.test_case "rejects garbage" `Quick test_proto_rejects_garbage;
        Alcotest.test_case "legacy wire format at queues=1" `Quick
          test_proto_legacy_wire_format;
      ]
      @ qsuite [ prop_proto_announce_roundtrip ] );
    ( "xenloop.mapping",
      [ Alcotest.test_case "soft state semantics" `Quick test_mapping_soft_state ] );
  ]
