(* QoS subsystem tests (DESIGN.md §14): DRR weight proportionality and
   the per-flow sub-queue bound, watermark hysteresis (one edge per
   genuine crossing), tenant-policy install/teardown against a live
   channel, and a qcheck property that every DRR visit serves at most
   one replenishment past the flow's banked credit. *)

module Drr = Qos.Drr
module Watermark = Qos.Watermark
module Policy = Qos.Policy
module Setup = Scenarios.Setup
module Experiment = Scenarios.Experiment
module Endpoint = Scenarios.Endpoint
module Gm = Xenloop.Guest_module
module Steering = Xenloop.Steering

(* ------------------------------------------------------------------ *)
(* DRR: service is proportional to weight while flows stay backlogged *)

let test_drr_weight_proportionality () =
  let d = Drr.create ~quantum:100 ~max_per_flow:64 () in
  for _ = 1 to 32 do
    assert (Drr.enqueue d ~key:"heavy" ~weight:3 ~len:100 ());
    assert (Drr.enqueue d ~key:"light" ~weight:1 ~len:100 ())
  done;
  (* 8 visits = 4 full rounds over 2 flows; both stay backlogged, so
     service is exactly quantum * weight per visit. *)
  let heavy = ref 0 and light = ref 0 in
  for _ = 1 to 8 do
    match Drr.select d with
    | None -> Alcotest.fail "scheduler drained early"
    | Some (key, batch) ->
        let served = List.fold_left (fun a (_, l) -> a + l) 0 batch in
        if key = "heavy" then heavy := !heavy + served
        else light := !light + served
  done;
  Alcotest.(check int) "heavy bytes" 1200 !heavy;
  Alcotest.(check int) "light bytes" 400 !light;
  Alcotest.(check int) "3:1 ratio" (3 * !light) !heavy;
  Alcotest.(check int) "nothing lost"
    (32 * 2 * 100 - !heavy - !light)
    (Drr.bytes d)

let test_drr_per_flow_bound () =
  let d = Drr.create ~quantum:100 ~max_per_flow:4 () in
  for _ = 1 to 4 do
    Alcotest.(check bool) "under bound" true
      (Drr.enqueue d ~key:"a" ~weight:1 ~len:10 ())
  done;
  Alcotest.(check bool) "5th refused" false
    (Drr.enqueue d ~key:"a" ~weight:1 ~len:10 ());
  (* The bound is per flow: another flow still has room. *)
  Alcotest.(check bool) "other flow unaffected" true
    (Drr.enqueue d ~key:"b" ~weight:1 ~len:10 ());
  Alcotest.(check int) "a holds its bound" 4 (Drr.flow_length d "a");
  (* Draining frees the slot again. *)
  (match Drr.select d with
  | Some ("a", batch) ->
      Alcotest.(check int) "full sub-queue served" 4 (List.length batch)
  | _ -> Alcotest.fail "expected flow a first");
  Alcotest.(check bool) "room after drain" true
    (Drr.enqueue d ~key:"a" ~weight:1 ~len:10 ())

let test_drr_restore_resumes () =
  let d = Drr.create ~quantum:1000 ~max_per_flow:16 () in
  List.iter
    (fun (k, v) -> assert (Drr.enqueue d ~key:"f" ~weight:1 ~len:100 (k, v)))
    [ (1, 'a'); (2, 'b'); (3, 'c') ];
  assert (Drr.enqueue d ~key:"g" ~weight:1 ~len:100 (9, 'z'));
  (match Drr.select d with
  | Some ("f", batch) ->
      (* Consumer-full: only the first item fit; hand back the rest. *)
      Drr.restore d "f" (List.tl batch)
  | _ -> Alcotest.fail "expected flow f first");
  (* The next select resumes with f's restored suffix, ahead of g. *)
  (match Drr.select d with
  | Some ("f", ((2, 'b'), 100) :: _) -> ()
  | Some ("f", _) -> Alcotest.fail "restored suffix out of order"
  | _ -> Alcotest.fail "restore must put the flow back at the ring front");
  Alcotest.(check int) "g still queued" 1 (Drr.flow_length d "g")

(* ------------------------------------------------------------------ *)
(* Watermark: one edge per genuine crossing, latched between *)

let test_watermark_hysteresis () =
  let w = Watermark.create ~high:0.75 ~low:0.25 in
  let up u = Watermark.update w ~used:u ~capacity:8 in
  Alcotest.(check bool) "below high: no edge" true (up 5 = `None);
  Alcotest.(check bool) "crossing raises" true (up 6 = `Raise);
  Alcotest.(check bool) "hovering: latched, no second raise" true
    (up 6 = `None && up 7 = `None);
  Alcotest.(check bool) "latched while above low" true
    (Watermark.congested w && up 3 = `None);
  Alcotest.(check bool) "falling to low clears" true (up 2 = `Clear);
  Alcotest.(check bool) "cleared: no second clear" true (up 1 = `None);
  Alcotest.(check bool) "second crossing raises again" true (up 8 = `Raise);
  Alcotest.(check int) "raises counted" 2 (Watermark.raises w);
  Alcotest.(check int) "clears counted" 1 (Watermark.clears w);
  Alcotest.(check bool) "zero capacity is no information" true
    (Watermark.update w ~used:0 ~capacity:0 = `None);
  (* Teardown reset drops the latch without emitting an edge. *)
  Watermark.reset w;
  Alcotest.(check bool) "reset unlatches silently" true
    ((not (Watermark.congested w)) && Watermark.clears w = 1)

(* ------------------------------------------------------------------ *)
(* Tenant policy hooks against a live channel: install routes the
   tenant's flow through the policy's enqueue/dequeue; teardown restores
   the default classification and silences the hooks. *)

let qos_params =
  {
    Hypervisor.Params.default with
    qos_enabled = true;
    qos_tenant_weights = [ (7, 4) ];
  }

let modules_of duo =
  match duo.Setup.modules with
  | [ m1; m2 ] -> (m1, m2)
  | _ -> Alcotest.fail "expected two xenloop modules"

let test_tenant_policy_install_teardown () =
  let duo = Setup.build ~params:qos_params Setup.Xenloop_path in
  let m1, _ = modules_of duo in
  Experiment.execute duo (fun () ->
      Alcotest.(check bool) "qos world" true (Gm.qos_enabled m1);
      let server_sock =
        match
          Netstack.Udp.bind duo.Setup.server.Endpoint.udp ~port:977 ()
        with
        | Ok s -> s
        | Error _ -> Alcotest.fail "bind server"
      in
      let client_sock =
        match Netstack.Udp.bind duo.Setup.client.Endpoint.udp () with
        | Ok s -> s
        | Error _ -> Alcotest.fail "bind client"
      in
      let send_one () =
        Netstack.Udp.sendto client_sock ~dst:duo.Setup.server_ip ~dst_port:977
          (Bytes.make 64 'q');
        let _, _, got = Netstack.Udp.recvfrom server_sock in
        Alcotest.(check int) "delivered" 64 (Bytes.length got)
      in
      let enq = ref 0 and deq = ref 0 in
      let policy =
        Policy.make ~name:"counting"
          ~classify:(fun key ->
            match key with
            | Steering.Ip_flow { dport = 977; _ } -> Some 7
            | _ -> None)
          ~enqueue:(fun _ ->
            incr enq;
            Policy.Pass)
          ~dequeue:(fun _ -> incr deq)
          ()
      in
      Gm.install_tenant_policy m1 ~tenant:7 policy;
      send_one ();
      Alcotest.(check bool) "enqueue hook fired" true (!enq > 0);
      Alcotest.(check bool) "dequeue hook fired" true (!deq > 0);
      let tenant7 =
        List.filter (fun fs -> fs.Gm.fs_tenant = 7) (Gm.flow_stats m1)
      in
      (match tenant7 with
      | [ fs ] ->
          Alcotest.(check int) "configured weight applied" 4 fs.Gm.fs_weight;
          Alcotest.(check bool) "flow accounted" true
            (fs.Gm.fs_frames > 0 && fs.Gm.fs_bytes > 0)
      | _ -> Alcotest.fail "expected exactly one tenant-7 flow");
      (* Teardown: the hook goes quiet and the flow re-resolves to the
         default tenant and weight. *)
      Gm.remove_tenant_policy m1 ~tenant:7;
      let enq0 = !enq and deq0 = !deq in
      send_one ();
      Alcotest.(check int) "enqueue hook silent" enq0 !enq;
      Alcotest.(check int) "dequeue hook silent" deq0 !deq;
      Alcotest.(check bool) "flow reclassified to default" true
        (List.for_all (fun fs -> fs.Gm.fs_tenant = 0) (Gm.flow_stats m1)))

let test_tenant_policy_drop_and_divert () =
  let duo = Setup.build ~params:qos_params Setup.Xenloop_path in
  let m1, _ = modules_of duo in
  Experiment.execute duo (fun () ->
      let server_sock =
        match
          Netstack.Udp.bind duo.Setup.server.Endpoint.udp ~port:978 ()
        with
        | Ok s -> s
        | Error _ -> Alcotest.fail "bind server"
      in
      let client_sock =
        match Netstack.Udp.bind duo.Setup.client.Endpoint.udp () with
        | Ok s -> s
        | Error _ -> Alcotest.fail "bind client"
      in
      let mode = ref Policy.Divert in
      let policy =
        Policy.make ~name:"mode"
          ~classify:(fun key ->
            match key with
            | Steering.Ip_flow { dport = 978; _ } -> Some 3
            | _ -> None)
          ~enqueue:(fun _ -> !mode)
          ()
      in
      Gm.install_tenant_policy m1 ~tenant:3 policy;
      (* Divert: delivery still happens, via the standard netfront path,
         and is NOT charged as a per-flow overflow. *)
      Netstack.Udp.sendto client_sock ~dst:duo.Setup.server_ip ~dst_port:978
        (Bytes.make 64 'd');
      let _, _, got = Netstack.Udp.recvfrom server_sock in
      Alcotest.(check int) "diverted datagram delivered" 64 (Bytes.length got);
      List.iter
        (fun fs ->
          if fs.Gm.fs_tenant = 3 then
            Alcotest.(check int) "divert is not an overflow" 0
              fs.Gm.fs_overflows)
        (Gm.flow_stats m1);
      (* Drop: the tenant opted out; the datagram must vanish while the
         channel stays healthy for everyone else. *)
      mode := Policy.Drop;
      Netstack.Udp.sendto client_sock ~dst:duo.Setup.server_ip ~dst_port:978
        (Bytes.make 64 'x');
      Sim.Engine.sleep (Sim.Time.ms 5);
      Alcotest.(check bool) "dropped datagram never arrives" true
        (Netstack.Udp.recv_opt server_sock = None);
      Alcotest.(check (list string)) "module invariants hold" []
        (Gm.invariant_violations m1))

(* ------------------------------------------------------------------ *)
(* qcheck: every DRR visit serves within one replenishment of the
   flow's banked credit, and nothing is lost or invented. *)

let prop_drr_visit_bounded =
  QCheck.Test.make ~name:"drr visit serves <= banked credit + quantum*weight"
    ~count:300
    QCheck.(list (pair (int_range 0 3) (int_range 1 200)))
    (fun items ->
      let quantum = 64 in
      let weight = [| 1; 2; 3; 4 |] in
      let d = Drr.create ~quantum ~max_per_flow:10_000 () in
      let enqueued = Array.make 4 0 in
      List.iter
        (fun (f, len) ->
          assert (Drr.enqueue d ~key:f ~weight:weight.(f) ~len ());
          enqueued.(f) <- enqueued.(f) + len)
        items;
      let served = Array.make 4 0 in
      let ok = ref true in
      let rec drain () =
        match Drr.select d with
        | None -> ()
        | Some (f, batch) ->
            let bytes = List.fold_left (fun a (_, l) -> a + l) 0 batch in
            (* A skipped visit banks credit only while the bank is still
               smaller than the head item (< 200 B here), so the serving
               visit holds less than max_len - 1 + one replenishment —
               the classic "within one quantum" DRR bound. *)
            if bytes > 200 - 1 + (quantum * weight.(f)) then ok := false;
            served.(f) <- served.(f) + bytes;
            drain ()
      in
      drain ();
      !ok
      && Array.for_all2 (fun a b -> a = b) served enqueued
      && Drr.is_empty d)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "qos.drr",
      [
        Alcotest.test_case "weight proportionality" `Quick
          test_drr_weight_proportionality;
        Alcotest.test_case "per-flow bound" `Quick test_drr_per_flow_bound;
        Alcotest.test_case "restore resumes at the ring front" `Quick
          test_drr_restore_resumes;
      ] );
    ( "qos.watermark",
      [ Alcotest.test_case "hysteresis" `Quick test_watermark_hysteresis ] );
    ( "qos.tenant",
      [
        Alcotest.test_case "policy install and teardown" `Quick
          test_tenant_policy_install_teardown;
        Alcotest.test_case "drop and divert actions" `Quick
          test_tenant_policy_drop_and_divert;
      ] );
    ("qos.qcheck", qsuite [ prop_drr_visit_bounded ]);
  ]
