(* Zero-copy descriptor channel tests: the payload pool's lock-free free
   ring, descriptor entries through the FIFO, capability negotiation and
   its fallback to the inline path, pool-exhaustion degradation, and
   stranded descriptor reclaim at teardown. *)

module Setup = Scenarios.Setup
module Experiment = Scenarios.Experiment
module Gm = Xenloop.Guest_module
module Fifo = Xenloop.Fifo
module Pool = Xenloop.Payload_pool
module Page = Memory.Page
module Stack = Netstack.Stack

let host_of (ep : Scenarios.Endpoint.t) =
  { Workloads.Host.stack = ep.Scenarios.Endpoint.stack; udp = ep.udp; tcp = ep.tcp }

let modules_of duo =
  match duo.Setup.modules with
  | [ m1; m2 ] -> (m1, m2)
  | _ -> Alcotest.fail "expected two xenloop modules"

let make_pool ?(slots = 4) ?(slot_pages = 1) ?(inline_max = 256) () =
  let ctrl = Page.create () in
  let data = Array.init (slots * slot_pages) (fun _ -> Page.create ()) in
  (ctrl, data, Pool.init ~ctrl ~data ~slots ~slot_pages ~inline_max ())

let make_fifo ?(k = 6) () =
  let desc = Page.create () in
  let data = Array.init (Fifo.data_pages_for ~k) (fun _ -> Page.create ()) in
  Fifo.init ~desc ~data ~k;
  Fifo.attach ~desc ~data

(* ------------------------------------------------------------------ *)
(* Payload pool *)

let test_pool_geometry () =
  Alcotest.(check int) "pages" (1 + (64 * 5)) (Pool.pages_for ~slots:64 ~slot_pages:5);
  Alcotest.(check bool) "default geometry valid" true
    (Pool.geometry_valid ~slots:64 ~slot_pages:5);
  Alcotest.(check bool) "non-power-of-two slots invalid" false
    (Pool.geometry_valid ~slots:48 ~slot_pages:5);
  Alcotest.(check bool) "zero slot pages invalid" false
    (Pool.geometry_valid ~slots:64 ~slot_pages:0);
  (* 512 slots x 2 pages: ring (2 KiB) + gref table (4 KiB) overflow the
     4 KiB control page. *)
  Alcotest.(check bool) "oversized table invalid" false
    (Pool.geometry_valid ~slots:512 ~slot_pages:2);
  Alcotest.check_raises "init rejects bad geometry"
    (Invalid_argument "Payload_pool.init: slots must be a power of two")
    (fun () ->
      let ctrl = Page.create () in
      let data = Array.init 3 (fun _ -> Page.create ()) in
      ignore (Pool.init ~ctrl ~data ~slots:3 ~slot_pages:1 ~inline_max:256 ()))

let test_pool_alloc_free_cycle () =
  let _, _, p = make_pool ~slots:4 () in
  Alcotest.(check int) "starts full" 4 (Pool.free_slots p);
  let s0 = Option.get (Pool.alloc p) in
  let s1 = Option.get (Pool.alloc p) in
  let s2 = Option.get (Pool.alloc p) in
  let s3 = Option.get (Pool.alloc p) in
  Alcotest.(check bool) "all slots distinct" true
    (List.length (List.sort_uniq compare [ s0; s1; s2; s3 ]) = 4);
  Alcotest.(check int) "exhausted" 0 (Pool.free_slots p);
  Alcotest.(check (option int)) "alloc on empty" None (Pool.alloc p);
  (* Receiver returns slots out of order; the ring recycles them. *)
  Pool.free p s2;
  Pool.free p s0;
  Alcotest.(check int) "two back" 2 (Pool.free_slots p);
  Alcotest.(check (option int)) "recycled oldest first" (Some s2) (Pool.alloc p);
  (* Sender-local revert: an alloc the FIFO refused goes straight back. *)
  let s = Option.get (Pool.alloc p) in
  Alcotest.(check int) "drained again" 0 (Pool.free_slots p);
  Pool.unalloc p s;
  Alcotest.(check int) "revert restores" 1 (Pool.free_slots p);
  Alcotest.(check (option int)) "same slot comes back" (Some s) (Pool.alloc p)

let test_pool_write_read_spans_pages () =
  let _, _, p = make_pool ~slots:2 ~slot_pages:2 () in
  Alcotest.(check int) "slot bytes" (2 * Page.size) (Pool.slot_bytes p);
  let len = Page.size + 100 in
  let payload = Bytes.init len (fun i -> Char.chr (i land 0xff)) in
  Pool.write p ~slot:1 ~src:payload ~len;
  Alcotest.(check bytes) "roundtrip across the page boundary" payload
    (Pool.read p ~slot:1 ~off:0 ~len);
  Alcotest.(check bytes) "offset read" (Bytes.sub payload 3996 200)
    (Pool.read p ~slot:1 ~off:3996 ~len:200);
  Alcotest.check_raises "out of bounds rejected"
    (Invalid_argument "Payload_pool.read: out of slot bounds") (fun () ->
      ignore (Pool.read p ~slot:1 ~off:0 ~len:(Pool.slot_bytes p + 1)))

let test_pool_shared_views () =
  let ctrl, data, p = make_pool ~slots:4 ~inline_max:512 () in
  (* The connector learns the data grefs from the control page alone. *)
  let grefs = Array.init (Array.length data) (fun i -> 1000 + i) in
  Pool.write_grefs p grefs;
  Alcotest.(check (array int)) "gref table roundtrip" grefs (Pool.read_grefs ~ctrl);
  let peer = Pool.attach ~ctrl ~data in
  Alcotest.(check int) "slots visible" 4 (Pool.slots peer);
  Alcotest.(check int) "inline threshold stamped" 512 (Pool.inline_threshold peer);
  (* Free-ring state is shared: a sender-side alloc is visible to the
     receiver-side view, and a receiver-side free replenishes the sender. *)
  let s = Option.get (Pool.alloc p) in
  Alcotest.(check int) "peer sees the alloc" 3 (Pool.free_slots peer);
  let payload = Bytes.make 700 'z' in
  Pool.write p ~slot:s ~src:payload ~len:700;
  Alcotest.(check bytes) "payload visible in place" payload
    (Pool.read peer ~slot:s ~off:0 ~len:700);
  Pool.free peer s;
  Alcotest.(check int) "sender sees the return" 4 (Pool.free_slots p)

(* ------------------------------------------------------------------ *)
(* Descriptor entries through the FIFO *)

let test_fifo_descriptor_roundtrip () =
  let f = make_fifo () in
  Alcotest.(check bool) "descriptor pushed" true
    (Fifo.try_push_desc f ~slot:3 ~offset:16 ~len:9000 ~proto_hint:17 ());
  Alcotest.(check bool) "inline alongside" true
    (Fifo.try_push f (Bytes.of_string "inline packet"));
  (match Fifo.pop_entry f with
  | Some (Fifo.Desc { d_slot; d_off; d_len; d_proto; d_flags = _ }) ->
      Alcotest.(check int) "slot" 3 d_slot;
      Alcotest.(check int) "offset" 16 d_off;
      Alcotest.(check int) "len" 9000 d_len;
      Alcotest.(check int) "proto hint" 17 d_proto
  | Some (Fifo.Inline _ | Fifo.Jumbo _) ->
      Alcotest.fail "expected a descriptor entry"
  | None -> Alcotest.fail "pop_entry came up empty");
  (match Fifo.pop_entry f with
  | Some (Fifo.Inline b) ->
      Alcotest.(check string) "inline preserved" "inline packet" (Bytes.to_string b)
  | Some (Fifo.Desc _ | Fifo.Jumbo _) -> Alcotest.fail "expected an inline entry"
  | None -> Alcotest.fail "pop_entry came up empty");
  Alcotest.(check bool) "drained" true (Fifo.is_empty f)

let test_fifo_pop_refuses_descriptors () =
  (* The inline-only consumer (legacy pop) must never silently misread a
     descriptor as payload bytes. *)
  let f = make_fifo () in
  ignore (Fifo.try_push_desc f ~slot:0 ~offset:0 ~len:400 ~proto_hint:0 ());
  Alcotest.check_raises "legacy pop rejects"
    (Invalid_argument "Fifo.pop: descriptor entry on an inline-only consumer")
    (fun () -> ignore (Fifo.pop f))

let test_fifo_push_selects_path () =
  let _, _, pool = make_pool ~slots:2 ~slot_pages:1 () in
  let f = make_fifo ~k:8 () in
  let small = Bytes.make 200 's' and big = Bytes.make 1000 'b' in
  (match Fifo.push f ~pool ~inline_max:256 small with
  | Fifo.Pushed { desc = false; pool_fallback = false } -> ()
  | _ -> Alcotest.fail "small payload must stay inline");
  Alcotest.(check int) "no slot consumed" 2 (Pool.free_slots pool);
  (match Fifo.push f ~pool ~inline_max:256 ~proto_hint:6 big with
  | Fifo.Pushed { desc = true; pool_fallback = false } -> ()
  | _ -> Alcotest.fail "large payload must take a descriptor");
  Alcotest.(check int) "one slot consumed" 1 (Pool.free_slots pool);
  ignore (Fifo.push f ~pool ~inline_max:256 big);
  (* Pool exhausted: the next large payload degrades to inline, flagged. *)
  (match Fifo.push f ~pool ~inline_max:256 big with
  | Fifo.Pushed { desc = false; pool_fallback = true } -> ()
  | _ -> Alcotest.fail "exhaustion must degrade to inline");
  (* Drain and verify content on both paths. *)
  (match Fifo.pop_entry f with
  | Some (Fifo.Inline b) -> Alcotest.(check bytes) "inline bytes" small b
  | _ -> Alcotest.fail "expected inline");
  (match Fifo.pop_entry f with
  | Some (Fifo.Desc { d_slot; d_len; d_off; d_proto; d_flags = _ }) ->
      Alcotest.(check int) "descriptor length" 1000 d_len;
      Alcotest.(check int) "proto hint carried" 6 d_proto;
      Alcotest.(check bytes) "payload in place" big
        (Pool.read pool ~slot:d_slot ~off:d_off ~len:d_len);
      Pool.free pool d_slot
  | _ -> Alcotest.fail "expected descriptor");
  (match (Fifo.pop_entry f, Fifo.pop_entry f) with
  | Some (Fifo.Desc { d_slot; _ }), Some (Fifo.Inline b) ->
      Pool.free pool d_slot;
      Alcotest.(check bytes) "degraded payload intact" big b
  | _ -> Alcotest.fail "expected desc then degraded inline");
  Alcotest.(check int) "all slots home" 2 (Pool.free_slots pool)

let test_fifo_refusal_never_burns_slots () =
  (* k = 6: 64 slots.  Fill the FIFO, then push a descriptor-eligible
     payload: the FIFO refuses, and the pool must be untouched. *)
  let _, _, pool = make_pool ~slots:4 ~slot_pages:1 () in
  let f = make_fifo ~k:6 () in
  while Fifo.can_accept f 24 do
    ignore (Fifo.try_push f (Bytes.make 24 'x'))
  done;
  (match Fifo.push f ~pool ~inline_max:256 (Bytes.make 1000 'y') with
  | Fifo.Push_failed -> ()
  | Fifo.Pushed _ -> Alcotest.fail "full FIFO must refuse");
  Alcotest.(check int) "no pool slot leaked" 4 (Pool.free_slots pool);
  Alcotest.(check bool) "admission check agrees" false
    (Fifo.can_accept_entry f ~pool ~inline_max:256 1000)

let test_push_many_reports_paths () =
  let _, _, pool = make_pool ~slots:2 ~slot_pages:1 () in
  let f = make_fifo ~k:10 () in
  let batch =
    [
      Bytes.make 100 'a';  (* inline: under the threshold *)
      Bytes.make 1000 'b';  (* descriptor *)
      Bytes.make 1000 'c';  (* descriptor: drains the pool *)
      Bytes.make 1000 'd';  (* pool exhausted: inline fallback *)
      Bytes.make 50 'e';  (* inline *)
    ]
  in
  let r = Fifo.push_many f ~pool ~inline_max:256 batch in
  Alcotest.(check int) "all pushed" 5 r.Fifo.pr_pushed;
  Alcotest.(check int) "descriptor-backed" 2 r.Fifo.pr_desc;
  Alcotest.(check int) "inline" 3 r.Fifo.pr_inline;
  Alcotest.(check int) "fallbacks" 1 r.Fifo.pr_fallbacks

(* ------------------------------------------------------------------ *)
(* End to end *)

let udp_burst ~client ~server ~dst ~port ~count ~size =
  let server_sock =
    match Netstack.Udp.bind server.Workloads.Host.udp ~port () with
    | Ok s -> s
    | Error _ -> Alcotest.fail "bind"
  in
  let client_sock =
    match Netstack.Udp.bind client.Workloads.Host.udp () with
    | Ok s -> s
    | Error _ -> Alcotest.fail "bind"
  in
  for i = 0 to count - 1 do
    Netstack.Udp.sendto client_sock ~dst ~dst_port:port
      (Bytes.make size (Char.chr (i land 0xff)))
  done;
  List.init count (fun _ ->
      let _, _, payload = Netstack.Udp.recvfrom server_sock in
      Bytes.get payload 0)

let test_negotiation_enables_pools () =
  let duo = Setup.build Setup.Xenloop_path in
  let m1, m2 = modules_of duo in
  let client = host_of duo.Setup.client and server = host_of duo.Setup.server in
  Experiment.execute duo (fun () ->
      Alcotest.(check bool) "client side active" true (Gm.zerocopy_active m1 ~domid:2);
      Alcotest.(check bool) "server side active" true (Gm.zerocopy_active m2 ~domid:1);
      let got =
        udp_burst ~client ~server ~dst:duo.Setup.server_ip ~port:921 ~count:20
          ~size:2000
      in
      Alcotest.(check (list char)) "delivered in order"
        (List.init 20 (fun i -> Char.chr i))
        got;
      Alcotest.(check bool) "large frames rode descriptors" true
        ((Gm.stats m1).Gm.desc_tx > 0);
      Alcotest.(check int) "nothing degraded" 0 (Gm.stats m1).Gm.pool_fallbacks)

let test_negotiation_falls_back_without_peer_support () =
  (* The server module predates zero-copy (does not advertise "zc"): the
     handshake must produce a pool-less PR-2-style channel, and traffic —
     including frames far above the inline threshold — still flows on the
     copy path. *)
  let duo = Setup.build ~server_zerocopy:false Setup.Xenloop_path in
  let m1, m2 = modules_of duo in
  let client = host_of duo.Setup.client and server = host_of duo.Setup.server in
  Experiment.execute duo (fun () ->
      Alcotest.(check bool) "channel up" true (Gm.has_channel_with m1 ~domid:2);
      Alcotest.(check bool) "no pools on the client" false
        (Gm.zerocopy_active m1 ~domid:2);
      Alcotest.(check bool) "no pools on the server" false
        (Gm.zerocopy_active m2 ~domid:1);
      let before_rx = (Gm.stats m2).Gm.via_channel_rx in
      let got =
        udp_burst ~client ~server ~dst:duo.Setup.server_ip ~port:922 ~count:20
          ~size:2000
      in
      Alcotest.(check (list char)) "delivered in order"
        (List.init 20 (fun i -> Char.chr i))
        got;
      Alcotest.(check bool) "traffic used the channel" true
        ((Gm.stats m2).Gm.via_channel_rx > before_rx);
      Alcotest.(check int) "no descriptors ever sent" 0 (Gm.stats m1).Gm.desc_tx;
      Alcotest.(check int) "everything inline" 0
        (Array.fold_left
           (fun acc q -> acc + q.Gm.qs_desc_tx)
           0
           (Gm.queue_stats m1 ~domid:2)))

let test_slot_starvation_degrades_to_inline () =
  (* Two pool slots per queue and a receiver pinned off-CPU: a burst of
     large datagrams must exhaust the pool, degrade the overflow to the
     inline path, and still deliver every frame in order. *)
  let params =
    {
      Hypervisor.Params.default with
      Hypervisor.Params.xenloop_pool_slots = 2;
      xenloop_pool_slot_pages = 1;
    }
  in
  let duo = Setup.build ~params Setup.Xenloop_path in
  let m1, _ = modules_of duo in
  let client = host_of duo.Setup.client and server = host_of duo.Setup.server in
  Experiment.execute duo (fun () ->
      Alcotest.(check bool) "pools negotiated" true (Gm.zerocopy_active m1 ~domid:2);
      (* Pin the server's vCPU so consumed slots are not returned during
         the burst: allocation pressure is real, not a timing accident. *)
      Sim.Engine.spawn duo.Setup.engine (fun () ->
          Sim.Resource.use
            (Stack.cpu duo.Setup.server.Scenarios.Endpoint.stack)
            (Sim.Time.ms 5));
      let n = 30 in
      let got =
        udp_burst ~client ~server ~dst:duo.Setup.server_ip ~port:923 ~count:n
          ~size:1400
      in
      Alcotest.(check (list char)) "every frame, in order"
        (List.init n (fun i -> Char.chr i))
        got;
      let s = Gm.stats m1 in
      Alcotest.(check bool) "descriptors used until exhaustion" true (s.Gm.desc_tx > 0);
      Alcotest.(check bool) "exhaustion degraded some to inline" true
        (s.Gm.pool_fallbacks > 0);
      Alcotest.(check int) "per-queue counters agree" s.Gm.pool_fallbacks
        (Array.fold_left
           (fun acc q -> acc + q.Gm.qs_pool_fallbacks)
           0
           (Gm.queue_stats m1 ~domid:2)))

let test_stranded_descriptor_teardown_reclaim () =
  (* Large app payloads ride descriptors; pin the receiver and unload the
     sender while descriptor entries still sit in the out-FIFOs.  Teardown
     must resolve each stranded descriptor from the sender's own tx pool,
     flush the bytes via the standard path, and release every channel page
     — pools included. *)
  let duo = Setup.build Setup.Xenloop_path in
  let m1, m2 = modules_of duo in
  let machine = Option.get duo.Setup.machine in
  let frames = Hypervisor.Machine.frame_allocator machine in
  Experiment.execute duo (fun () ->
      let received = ref [] in
      Gm.set_app_payload_handler m2 (fun ~src_ip:_ ~src_port:_ ~dst_port:_ payload ->
          received := int_of_string (String.sub (Bytes.to_string payload) 0 4) :: !received);
      Sim.Engine.spawn duo.Setup.engine (fun () ->
          Sim.Resource.use
            (Stack.cpu duo.Setup.server.Scenarios.Endpoint.stack)
            (Sim.Time.ms 5));
      let n = 40 in
      for seq = 0 to n - 1 do
        let payload =
          Bytes.of_string (Printf.sprintf "%04d%s" seq (String.make 996 'p'))
        in
        Alcotest.(check bool) "payload accepted" true
          (Gm.send_app_payload m1 ~dst_ip:duo.Setup.server_ip ~src_port:5001
             ~dst_port:6001 payload)
      done;
      Alcotest.(check bool) "descriptors in flight" true
        ((Gm.stats m1).Gm.desc_tx > 0);
      Alcotest.(check int) "receiver has consumed nothing yet" 0
        (List.length !received);
      Gm.unload m1;
      Sim.Engine.sleep (Sim.Time.ms 10);
      Alcotest.(check (list int)) "every payload delivered exactly once, in order"
        (List.init n Fun.id) (List.rev !received);
      Alcotest.(check (list int)) "peer disengaged" [] (Gm.connected_peer_ids m2);
      (* Page balance: FIFO pages, pool control pages, and pool data pages
         all go home — on both sides. *)
      Alcotest.(check int) "no pages left owned by the client" 0
        (Memory.Frame_allocator.owned_by frames 1);
      Alcotest.(check int) "no pages left owned by the server" 0
        (Memory.Frame_allocator.owned_by frames 2))

let test_migration_with_descriptors_in_flight () =
  (* Live-migrate the sender while descriptor entries still sit in the
     out-FIFOs: the pre-migrate wind-down must resolve every stranded
     slot from the tx pool and flush the bytes via the standard path,
     page balance must return to zero on both machines, the stream must
     keep flowing over the wire while the guests are apart, and the
     channel must come back when they are reunited. *)
  let w = Scenarios.Migration_world.create () in
  let open Scenarios.Migration_world in
  Experiment.run_process ~limit:(Sim.Time.sec 120) w.engine (fun () ->
      let g1 = w.guest1.xl_module and g2 = w.guest2.xl_module in
      let dst_ip = Hypervisor.Domain.ip w.guest2.domain in
      let received = ref [] in
      Gm.set_app_payload_handler g2 (fun ~src_ip:_ ~src_port:_ ~dst_port:_ payload ->
          received :=
            int_of_string (String.sub (Bytes.to_string payload) 0 4) :: !received);
      let server_sock =
        match Netstack.Udp.bind w.guest2.ep.Scenarios.Endpoint.udp ~port:924 () with
        | Ok s -> s
        | Error _ -> Alcotest.fail "bind"
      in
      let client_sock =
        match Netstack.Udp.bind w.guest1.ep.Scenarios.Endpoint.udp () with
        | Ok s -> s
        | Error _ -> Alcotest.fail "bind"
      in
      (* Become co-resident; the first datagram kicks off the bootstrap. *)
      migrate w w.guest1 ~dst:w.m2;
      Sim.Engine.sleep (Sim.Time.sec 6);
      Netstack.Udp.sendto client_sock ~dst:dst_ip ~dst_port:924
        (Bytes.of_string "warm");
      ignore (Netstack.Udp.recvfrom server_sock);
      Sim.Engine.sleep (Sim.Time.ms 10);
      let warm = Bytes.of_string "0000warm" in
      Alcotest.(check bool) "channel engaged" true
        (Gm.send_app_payload g1 ~dst_ip ~src_port:5002 ~dst_port:6002 warm);
      Sim.Engine.sleep (Sim.Time.ms 10);
      received := [];
      Alcotest.(check bool) "pools negotiated" true
        (Gm.zerocopy_active g1 ~domid:(Hypervisor.Domain.domid w.guest2.domain));
      (* Pin the receiver so the burst's descriptors stay in flight. *)
      Sim.Engine.spawn w.engine (fun () ->
          Sim.Resource.use
            (Stack.cpu w.guest2.ep.Scenarios.Endpoint.stack)
            (Sim.Time.ms 5));
      let n = 40 in
      for seq = 0 to n - 1 do
        let payload =
          Bytes.of_string (Printf.sprintf "%04d%s" seq (String.make 996 'm'))
        in
        Alcotest.(check bool) "payload accepted" true
          (Gm.send_app_payload g1 ~dst_ip ~src_port:5002 ~dst_port:6002 payload)
      done;
      Alcotest.(check bool) "descriptors in flight" true ((Gm.stats g1).Gm.desc_tx > 0);
      Alcotest.(check int) "receiver has consumed nothing yet" 0
        (List.length !received);
      (* Migrate away mid-stream: wind-down resolves the stranded
         descriptors and flushes them before the vif detaches. *)
      migrate w w.guest1 ~dst:w.m1;
      Sim.Engine.sleep (Sim.Time.ms 50);
      Alcotest.(check (list int)) "every payload delivered exactly once, in order"
        (List.init n Fun.id) (List.rev !received);
      (* Channel memory all went home — on both machines. *)
      List.iter
        (fun (name, env) ->
          let frames = Hypervisor.Machine.frame_allocator env.machine in
          Alcotest.(check int)
            (name ^ ": no frames left owned")
            0
            (List.fold_left
               (fun acc (_, count) -> acc + count)
               0
               (Memory.Frame_allocator.owners frames)))
        [ ("m1", w.m1); ("m2", w.m2) ];
      (* Apart: the stream continues over the wire via netfront. *)
      Netstack.Udp.sendto client_sock ~dst:dst_ip ~dst_port:924
        (Bytes.of_string "over the wire");
      let _, _, got = Netstack.Udp.recvfrom server_sock in
      Alcotest.(check string) "netfront carried it" "over the wire"
        (Bytes.to_string got);
      (* Reunite: the fast path re-establishes. *)
      migrate w w.guest1 ~dst:w.m2;
      Sim.Engine.sleep (Sim.Time.sec 6);
      Netstack.Udp.sendto client_sock ~dst:dst_ip ~dst_port:924
        (Bytes.of_string "warm again");
      ignore (Netstack.Udp.recvfrom server_sock);
      Sim.Engine.sleep (Sim.Time.ms 10);
      received := [];
      Alcotest.(check bool) "channel re-engaged" true
        (Gm.send_app_payload g1 ~dst_ip ~src_port:5002 ~dst_port:6002 warm);
      Sim.Engine.sleep (Sim.Time.ms 10);
      Alcotest.(check int) "payload arrived over the new channel" 1
        (List.length !received))

let suites =
  [
    ( "xenloop.zerocopy",
      [
        Alcotest.test_case "pool geometry" `Quick test_pool_geometry;
        Alcotest.test_case "pool alloc/free/unalloc cycle" `Quick
          test_pool_alloc_free_cycle;
        Alcotest.test_case "pool write/read spans pages" `Quick
          test_pool_write_read_spans_pages;
        Alcotest.test_case "pool views share the free ring" `Quick
          test_pool_shared_views;
        Alcotest.test_case "fifo descriptor roundtrip" `Quick
          test_fifo_descriptor_roundtrip;
        Alcotest.test_case "legacy pop refuses descriptors" `Quick
          test_fifo_pop_refuses_descriptors;
        Alcotest.test_case "push selects inline vs descriptor" `Quick
          test_fifo_push_selects_path;
        Alcotest.test_case "refused push never burns a slot" `Quick
          test_fifo_refusal_never_burns_slots;
        Alcotest.test_case "push_many reports both paths" `Quick
          test_push_many_reports_paths;
        Alcotest.test_case "negotiation enables pools" `Quick
          test_negotiation_enables_pools;
        Alcotest.test_case "fallback without peer support" `Quick
          test_negotiation_falls_back_without_peer_support;
        Alcotest.test_case "slot starvation degrades to inline" `Quick
          test_slot_starvation_degrades_to_inline;
        Alcotest.test_case "stranded descriptor teardown reclaim" `Quick
          test_stranded_descriptor_teardown_reclaim;
        Alcotest.test_case "migration with descriptors in flight" `Slow
          test_migration_with_descriptors_in_flight;
      ] );
  ]
