(* Allocation-regression tests: the simulator hot paths must not allocate
   on the minor heap in steady state.  Each test warms the path to steady
   state (pools populated, wheel slots touched), then measures
   [Gc.minor_words] across many iterations.

   The wheel and FIFO paths are plain mutation and must be EXACTLY zero.
   The engine paths carry a documented slack that is the OCaml effects
   runtime, not engine bookkeeping:

   - a sleep/wake cycle is an [Effect.perform] + [Effect.Deep.continue]
     pair, which allocates the suspended continuation (10 minor words per
     event as of OCaml 5.1);
   - every callback entry is an [Effect.Deep.match_with], which allocates
     a fresh fiber (5 minor words per event).

   If either number creeps above the bound, engine bookkeeping has started
   allocating again — the regression these tests exist to catch. *)

let minor_per_iter ~iters f =
  let before = Gc.minor_words () in
  for _ = 1 to iters do
    f ()
  done;
  (Gc.minor_words () -. before) /. float_of_int iters

let check_words name ~bound per =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.2f minor words/iter (bound %.1f)" name per bound)
    true (per <= bound)

let test_wheel_cycle_zero_alloc () =
  let module W = Sim.Wheel in
  let w = W.create ~dummy:0 in
  let seq = ref 0 in
  Array.iter
    (fun c ->
      c.W.c_time <- 1_000;
      c.W.c_seq <- !seq;
      incr seq;
      W.insert w c)
    (Array.init 64 (fun i -> W.make_cell w i));
  let per =
    minor_per_iter ~iters:50_000 (fun () ->
        let c = W.pop w in
        c.W.c_time <- c.W.c_time + 5_000;
        c.W.c_seq <- !seq;
        incr seq;
        W.insert w c)
  in
  check_words "wheel pop+insert" ~bound:0.0 per

let test_fifo_roundtrip_zero_alloc () =
  let module Page = Memory.Page in
  let module Fifo = Xenloop.Fifo in
  let k = 8 in
  let desc = Page.create () in
  let data = Array.init (Fifo.data_pages_for ~k) (fun _ -> Page.create ()) in
  Fifo.init ~desc ~data ~k;
  let tx = Fifo.attach ~desc ~data in
  let rx = Fifo.attach ~desc ~data in
  let payload = Bytes.make 1_400 'x' in
  let dst = Bytes.create (Fifo.max_packet rx) in
  (* Warm one cycle so first-touch effects are outside the window. *)
  ignore (Fifo.push_entry tx ~pool:None ~inline_max:max_int ~proto_hint:0 payload);
  ignore (Fifo.pop_into rx dst);
  let per =
    minor_per_iter ~iters:50_000 (fun () ->
        ignore (Fifo.push_entry tx ~pool:None ~inline_max:max_int ~proto_hint:0 payload);
        ignore (Fifo.pop_into rx dst))
  in
  check_words "fifo push_entry+pop_into" ~bound:0.0 per

let test_busy_poll_receive_zero_alloc () =
  (* The busy-poll receive cycle (DESIGN.md §11): producer writes a slot
     and publishes a descriptor; the spinning consumer pops it with
     [pop_into], borrows the slot, reads it into a reusable scratch
     buffer, and releases the borrow.  Run-to-completion, and — like the
     FIFO path it extends — it must allocate EXACTLY nothing. *)
  let module Page = Memory.Page in
  let module Fifo = Xenloop.Fifo in
  let module Pool = Xenloop.Payload_pool in
  let k = 8 in
  let desc = Page.create () in
  let data = Array.init (Fifo.data_pages_for ~k) (fun _ -> Page.create ()) in
  Fifo.init ~desc ~data ~k;
  let tx = Fifo.attach ~desc ~data in
  let rx = Fifo.attach ~desc ~data in
  let slots = 8 in
  let pctrl = Page.create () in
  let pdata = Array.init slots (fun _ -> Page.create ()) in
  let pool =
    Pool.init ~max_loans:slots ~ctrl:pctrl ~data:pdata ~slots ~slot_pages:1
      ~inline_max:64 ()
  in
  let len = 1_400 in
  let payload = Bytes.make len 'x' in
  let scratch = Bytes.create (Fifo.max_packet rx) in
  let cycle () =
    let slot = Pool.alloc_slot pool in
    Pool.write pool ~slot ~src:payload ~len;
    ignore (Fifo.try_push_desc tx ~slot ~offset:0 ~len ~proto_hint:17 ());
    let code = Fifo.pop_into rx scratch in
    if code <> Fifo.popped_desc then Alcotest.fail "expected a descriptor";
    let s = Fifo.desc_slot rx in
    Pool.loan pool s;
    Pool.read_into pool ~slot:s ~off:0 ~len:(Fifo.desc_len rx) ~dst:scratch
      ~dst_off:0;
    Pool.release pool s
  in
  (* Warm one cycle so first-touch effects are outside the window. *)
  cycle ();
  let per = minor_per_iter ~iters:50_000 cycle in
  check_words "busy-poll pop_into+loan+read_into+release" ~bound:0.0 per

let test_engine_sleep_wake_slack () =
  let e = Sim.Engine.create () in
  Sim.Engine.spawn e (fun () ->
      for _ = 1 to 1_000_000 do
        Sim.Engine.sleep (Sim.Time.us 1)
      done);
  Sim.Engine.spawn e (fun () ->
      for _ = 1 to 1_000_000 do
        Sim.Engine.sleep (Sim.Time.us 3)
      done);
  for _ = 1 to 100 do
    ignore (Sim.Engine.step e)
  done;
  let per = minor_per_iter ~iters:50_000 (fun () -> ignore (Sim.Engine.step e)) in
  (* 10 words = the perform/continue continuation; +2 headroom for future
     compiler versions, still far below one boxed closure per event. *)
  check_words "engine step, sleep/wake pair" ~bound:12.0 per

let test_engine_timer_fire_slack () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.every e (Sim.Time.us 1) (fun () -> ()));
  for _ = 1 to 100 do
    ignore (Sim.Engine.step e)
  done;
  let per = minor_per_iter ~iters:50_000 (fun () -> ignore (Sim.Engine.step e)) in
  (* 5 words = the match_with fiber; +1 headroom. *)
  check_words "engine step, periodic timer fire" ~bound:6.0 per

let suites =
  [
    ( "sim.alloc",
      [
        Alcotest.test_case "wheel cycle allocates nothing" `Quick test_wheel_cycle_zero_alloc;
        Alcotest.test_case "fifo roundtrip allocates nothing" `Quick
          test_fifo_roundtrip_zero_alloc;
        Alcotest.test_case "busy-poll receive cycle allocates nothing" `Quick
          test_busy_poll_receive_zero_alloc;
        Alcotest.test_case "engine sleep/wake within effect slack" `Quick
          test_engine_sleep_wake_slack;
        Alcotest.test_case "engine timer fire within fiber slack" `Quick
          test_engine_timer_fire_slack;
      ] );
  ]
