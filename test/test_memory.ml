(* Tests for pages, grant tables and cost accounting. *)

module Gt = Memory.Grant_table
module Cm = Memory.Cost_meter
module Page = Memory.Page

let gt_error = Alcotest.testable Gt.pp_error ( = )

let check_gt msg expected actual =
  Alcotest.(check (result unit gt_error)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Page *)

let test_page_roundtrip () =
  let p = Page.create () in
  let src = Bytes.of_string "hello page" in
  Page.write p ~off:100 ~src ~src_off:0 ~len:(Bytes.length src);
  let dst = Bytes.make (Bytes.length src) ' ' in
  Page.read p ~off:100 ~dst ~dst_off:0 ~len:(Bytes.length src);
  Alcotest.(check string) "roundtrip" "hello page" (Bytes.to_string dst)

let test_page_bounds () =
  let p = Page.create () in
  let src = Bytes.make 16 'x' in
  Alcotest.(check bool) "write past end raises" true
    (try
       Page.write p ~off:Page.size ~src ~src_off:0 ~len:1;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative offset raises" true
    (try
       Page.write p ~off:(-1) ~src ~src_off:0 ~len:1;
       false
     with Invalid_argument _ -> true)

let test_page_integers () =
  let p = Page.create () in
  Page.set_u8 p 0 0x7f;
  Page.set_u32 p 4 0xdeadbeef;
  Page.set_u64 p 8 0x0123456789abcdefL;
  Alcotest.(check int) "u8" 0x7f (Page.get_u8 p 0);
  Alcotest.(check int) "u32" 0xdeadbeef (Page.get_u32 p 4);
  Alcotest.(check int64) "u64" 0x0123456789abcdefL (Page.get_u64 p 8)

let test_page_zero () =
  let p = Page.create () in
  Alcotest.(check bool) "fresh page zeroed" true (Page.is_zeroed p);
  Page.set_u8 p 2048 1;
  Alcotest.(check bool) "dirty" false (Page.is_zeroed p);
  Page.zero p;
  Alcotest.(check bool) "zeroed again" true (Page.is_zeroed p)

let test_page_ids_unique () =
  let a = Page.create () and b = Page.create () in
  Alcotest.(check bool) "distinct ids" true (Page.id a <> Page.id b)

(* ------------------------------------------------------------------ *)
(* Grant table: access grants *)

let test_grant_map_shares_memory () =
  let table = Gt.create ~owner:1 in
  let meter = Cm.create () in
  let page = Page.create () in
  let gref = Gt.grant_access table ~to_dom:2 ~page ~writable:true in
  match Gt.map table gref ~by:2 ~meter with
  | Error e -> Alcotest.failf "map failed: %s" (Gt.error_to_string e)
  | Ok mapped ->
      (* Writing through the mapping is visible to the granter: it is the
         same page. *)
      Page.set_u8 mapped 0 42;
      Alcotest.(check int) "shared write visible" 42 (Page.get_u8 page 0);
      Alcotest.(check int) "map cost one hypercall" 1 (Cm.hypercalls meter)

let test_grant_wrong_domain_rejected () =
  let table = Gt.create ~owner:1 in
  let meter = Cm.create () in
  let gref = Gt.grant_access table ~to_dom:2 ~page:(Page.create ()) ~writable:true in
  (match Gt.map table gref ~by:3 ~meter with
  | Error Gt.Wrong_domain -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" (Gt.error_to_string e)
  | Ok _ -> Alcotest.fail "domain 3 mapped a grant for domain 2")

let test_grant_bad_ref () =
  let table = Gt.create ~owner:1 in
  let meter = Cm.create () in
  match Gt.map table 999 ~by:2 ~meter with
  | Error Gt.Bad_ref -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" (Gt.error_to_string e)
  | Ok _ -> Alcotest.fail "mapped a nonexistent grant"

let test_grant_end_while_mapped () =
  let table = Gt.create ~owner:1 in
  let meter = Cm.create () in
  let gref = Gt.grant_access table ~to_dom:2 ~page:(Page.create ()) ~writable:false in
  (match Gt.map table gref ~by:2 ~meter with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "map failed: %s" (Gt.error_to_string e));
  check_gt "end while mapped" (Error Gt.Still_mapped) (Gt.end_access table gref);
  check_gt "unmap" (Ok ()) (Gt.unmap table gref ~by:2 ~meter);
  check_gt "end after unmap" (Ok ()) (Gt.end_access table gref);
  Alcotest.(check int) "no grants left" 0 (Gt.active_grants table)

let test_grant_unmap_not_mapped () =
  let table = Gt.create ~owner:1 in
  let meter = Cm.create () in
  let gref = Gt.grant_access table ~to_dom:2 ~page:(Page.create ()) ~writable:false in
  check_gt "unmap unmapped" (Error Gt.Not_mapped) (Gt.unmap table gref ~by:2 ~meter)

let test_grant_copy () =
  let table = Gt.create ~owner:1 in
  let meter = Cm.create () in
  let page = Page.create () in
  let gref = Gt.grant_access table ~to_dom:2 ~page ~writable:true in
  let src = Bytes.of_string "payload!" in
  check_gt "copy_to" (Ok ())
    (Gt.copy_to table gref ~by:2 ~meter ~src ~src_off:0 ~dst_off:64
       ~len:(Bytes.length src));
  let dst = Bytes.make 8 ' ' in
  check_gt "copy_from" (Ok ())
    (Gt.copy_from table gref ~by:2 ~meter ~src_off:64 ~dst ~dst_off:0 ~len:8);
  Alcotest.(check string) "copied data" "payload!" (Bytes.to_string dst);
  Alcotest.(check int) "bytes accounted" 16 (Cm.bytes_copied meter);
  Alcotest.(check int) "two gnttab_copy hypercalls" 2
    (Cm.hypercall_count meter "gnttab_copy")

let test_grant_copy_readonly () =
  let table = Gt.create ~owner:1 in
  let meter = Cm.create () in
  let gref = Gt.grant_access table ~to_dom:2 ~page:(Page.create ()) ~writable:false in
  let src = Bytes.of_string "x" in
  check_gt "copy_to read-only" (Error Gt.Read_only)
    (Gt.copy_to table gref ~by:2 ~meter ~src ~src_off:0 ~dst_off:0 ~len:1)

let test_grant_no_sender_hypercall () =
  (* Per the paper: granting and revoking are not hypercalls for the
     granter. *)
  let table = Gt.create ~owner:1 in
  let meter = Cm.create () in
  let gref = Gt.grant_access table ~to_dom:2 ~page:(Page.create ()) ~writable:true in
  check_gt "end" (Ok ()) (Gt.end_access table gref);
  Alcotest.(check int) "no hypercalls recorded anywhere" 0 (Cm.hypercalls meter)

(* ------------------------------------------------------------------ *)
(* Grant table: transfer grants *)

let test_grant_transfer_roundtrip () =
  let table = Gt.create ~owner:1 in
  let meter = Cm.create () in
  let gref = Gt.grant_transfer table ~to_dom:2 in
  let page = Page.create () in
  Page.set_u8 page 0 99;
  (match Gt.transfer table gref ~by:2 ~meter ~page with
  | Error e -> Alcotest.failf "transfer failed: %s" (Gt.error_to_string e)
  | Ok exchange ->
      Alcotest.(check bool) "exchange page zeroed" true (Page.is_zeroed exchange));
  (match Gt.take_transferred table gref with
  | Error e -> Alcotest.failf "take failed: %s" (Gt.error_to_string e)
  | Ok received -> Alcotest.(check int) "content moved" 99 (Page.get_u8 received 0));
  Alcotest.(check int) "zeroing accounted" 1 (Cm.page_zeroes meter);
  Alcotest.(check int) "transfer hypercall" 1 (Cm.hypercall_count meter "gnttab_transfer")

let test_grant_transfer_empty () =
  let table = Gt.create ~owner:1 in
  let gref = Gt.grant_transfer table ~to_dom:2 in
  match Gt.take_transferred table gref with
  | Error Gt.Nothing_transferred -> ()
  | Error e -> Alcotest.failf "unexpected: %s" (Gt.error_to_string e)
  | Ok _ -> Alcotest.fail "took a page that was never transferred"

let test_grant_kind_mismatch () =
  let table = Gt.create ~owner:1 in
  let meter = Cm.create () in
  let access_ref = Gt.grant_access table ~to_dom:2 ~page:(Page.create ()) ~writable:true in
  let transfer_ref = Gt.grant_transfer table ~to_dom:2 in
  (match Gt.map table transfer_ref ~by:2 ~meter with
  | Error Gt.Wrong_kind -> ()
  | _ -> Alcotest.fail "mapped a transfer grant");
  match Gt.transfer table access_ref ~by:2 ~meter ~page:(Page.create ()) with
  | Error Gt.Wrong_kind -> ()
  | _ -> Alcotest.fail "transferred into an access grant"

let prop_grant_refs_unique =
  QCheck.Test.make ~name:"grant refs are unique" ~count:50
    QCheck.(int_range 1 100)
    (fun n ->
      let table = Gt.create ~owner:1 in
      let refs =
        List.init n (fun _ ->
            Gt.grant_access table ~to_dom:2 ~page:(Page.create ()) ~writable:true)
      in
      List.length (List.sort_uniq compare refs) = n)

(* ------------------------------------------------------------------ *)
(* Frame allocator *)

module Fa = Memory.Frame_allocator

let test_frames_allocate_release () =
  let fa = Fa.create ~total_frames:4 in
  Alcotest.(check int) "free" 4 (Fa.free_frames fa);
  let p1 = match Fa.allocate fa ~owner:1 with Ok p -> p | Error _ -> Alcotest.fail "alloc" in
  let _p2 = match Fa.allocate fa ~owner:1 with Ok p -> p | Error _ -> Alcotest.fail "alloc" in
  let _p3 = match Fa.allocate fa ~owner:2 with Ok p -> p | Error _ -> Alcotest.fail "alloc" in
  Alcotest.(check int) "owner 1 has two" 2 (Fa.owned_by fa 1);
  Alcotest.(check int) "owner 2 has one" 1 (Fa.owned_by fa 2);
  Alcotest.(check int) "one left" 1 (Fa.free_frames fa);
  Fa.release fa ~owner:1 p1;
  Alcotest.(check int) "returned" 2 (Fa.free_frames fa);
  Alcotest.(check int) "owner 1 down to one" 1 (Fa.owned_by fa 1)

let test_frames_exhaustion () =
  let fa = Fa.create ~total_frames:2 in
  ignore (Fa.allocate fa ~owner:1);
  ignore (Fa.allocate fa ~owner:1);
  (match Fa.allocate fa ~owner:2 with
  | Error Fa.Out_of_frames -> ()
  | Ok _ -> Alcotest.fail "allocated beyond the machine");
  (* all-or-nothing batch *)
  let fa2 = Fa.create ~total_frames:3 in
  (match Fa.allocate_many fa2 ~owner:1 ~count:4 with
  | Error Fa.Out_of_frames -> ()
  | Ok _ -> Alcotest.fail "partial batch accepted");
  Alcotest.(check int) "nothing leaked by failed batch" 3 (Fa.free_frames fa2);
  match Fa.allocate_many fa2 ~owner:1 ~count:3 with
  | Ok pages -> Alcotest.(check int) "batch size" 3 (Array.length pages)
  | Error _ -> Alcotest.fail "batch should fit"

let test_frames_double_free_rejected () =
  let fa = Fa.create ~total_frames:2 in
  let p = match Fa.allocate fa ~owner:1 with Ok p -> p | Error _ -> Alcotest.fail "alloc" in
  Fa.release fa ~owner:1 p;
  Alcotest.(check bool) "double free rejected" true
    (try
       Fa.release fa ~owner:1 p;
       false
     with Invalid_argument _ -> true);
  let q = match Fa.allocate fa ~owner:1 with Ok p -> p | Error _ -> Alcotest.fail "alloc" in
  Alcotest.(check bool) "cross-owner release rejected" true
    (try
       Fa.release fa ~owner:2 q;
       false
     with Invalid_argument _ -> true)

let test_frames_release_all () =
  let fa = Fa.create ~total_frames:8 in
  for _ = 1 to 5 do
    ignore (Fa.allocate fa ~owner:3)
  done;
  ignore (Fa.allocate fa ~owner:4);
  Fa.release_all fa ~owner:3;
  Alcotest.(check int) "owner 3 cleared" 0 (Fa.owned_by fa 3);
  Alcotest.(check int) "owner 4 untouched" 1 (Fa.owned_by fa 4);
  Alcotest.(check int) "frames back" 7 (Fa.free_frames fa)

(* ------------------------------------------------------------------ *)
(* Cost meter *)

let test_meter_counts () =
  let m = Cm.create () in
  Cm.record m (Cm.Hypercall "a");
  Cm.record m (Cm.Hypercall "a");
  Cm.record m (Cm.Hypercall "b");
  Cm.record m (Cm.Page_copy 100);
  Cm.record m (Cm.Page_copy 50);
  Cm.record m Cm.Page_zero;
  Cm.record m Cm.Event_notify;
  Cm.record m Cm.Domain_switch;
  Alcotest.(check int) "hypercalls" 3 (Cm.hypercalls m);
  Alcotest.(check int) "by name" 2 (Cm.hypercall_count m "a");
  Alcotest.(check int) "bytes" 150 (Cm.bytes_copied m);
  Alcotest.(check int) "zeroes" 1 (Cm.page_zeroes m);
  Alcotest.(check int) "notifies" 1 (Cm.event_notifies m);
  Alcotest.(check int) "switches" 1 (Cm.domain_switches m)

let test_meter_reset_merge () =
  let a = Cm.create () and b = Cm.create () in
  Cm.record a (Cm.Hypercall "x");
  Cm.record b (Cm.Hypercall "x");
  Cm.record b (Cm.Page_copy 10);
  Cm.merge_into ~src:a ~dst:b;
  Alcotest.(check int) "merged hypercalls" 2 (Cm.hypercalls b);
  Cm.reset b;
  Alcotest.(check int) "reset" 0 (Cm.hypercalls b);
  Alcotest.(check int) "reset bytes" 0 (Cm.bytes_copied b)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "memory.page",
      [
        Alcotest.test_case "read/write roundtrip" `Quick test_page_roundtrip;
        Alcotest.test_case "bounds checked" `Quick test_page_bounds;
        Alcotest.test_case "integer accessors" `Quick test_page_integers;
        Alcotest.test_case "zeroing" `Quick test_page_zero;
        Alcotest.test_case "unique ids" `Quick test_page_ids_unique;
      ] );
    ( "memory.grant",
      [
        Alcotest.test_case "map shares memory" `Quick test_grant_map_shares_memory;
        Alcotest.test_case "wrong domain rejected" `Quick test_grant_wrong_domain_rejected;
        Alcotest.test_case "bad ref rejected" `Quick test_grant_bad_ref;
        Alcotest.test_case "revoke blocked while mapped" `Quick test_grant_end_while_mapped;
        Alcotest.test_case "unmap requires mapping" `Quick test_grant_unmap_not_mapped;
        Alcotest.test_case "gnttab copy" `Quick test_grant_copy;
        Alcotest.test_case "copy_to needs writable grant" `Quick test_grant_copy_readonly;
        Alcotest.test_case "granter pays no hypercall" `Quick test_grant_no_sender_hypercall;
        Alcotest.test_case "transfer roundtrip" `Quick test_grant_transfer_roundtrip;
        Alcotest.test_case "take before transfer" `Quick test_grant_transfer_empty;
        Alcotest.test_case "kind mismatch" `Quick test_grant_kind_mismatch;
      ]
      @ qsuite [ prop_grant_refs_unique ] );
    ( "memory.frames",
      [
        Alcotest.test_case "allocate and release" `Quick test_frames_allocate_release;
        Alcotest.test_case "exhaustion and batches" `Quick test_frames_exhaustion;
        Alcotest.test_case "double free rejected" `Quick test_frames_double_free_rejected;
        Alcotest.test_case "release_all on destruction" `Quick test_frames_release_all;
      ] );
    ( "memory.cost_meter",
      [
        Alcotest.test_case "counts operations" `Quick test_meter_counts;
        Alcotest.test_case "reset and merge" `Quick test_meter_reset_merge;
      ] );
  ]
