(* Tests for the notification/batching layer: FIFO admission and batch
   primitives, the shared suppression flags, and the module-level doorbell
   behavior — suppression under load, poll-window expiry re-arming, and
   teardown draining while notifications are suppressed. *)

module Fifo = Xenloop.Fifo
module Page = Memory.Page
module Setup = Scenarios.Setup
module Experiment = Scenarios.Experiment
module Gm = Xenloop.Guest_module

let make_fifo ?(k = 6) () =
  let desc = Page.create () in
  let data = Array.init (Fifo.data_pages_for ~k) (fun _ -> Page.create ()) in
  Fifo.init ~desc ~data ~k;
  (desc, data, Fifo.attach ~desc ~data)

let modules_of duo =
  match duo.Setup.modules with
  | [ m1; m2 ] -> (m1, m2)
  | _ -> Alcotest.fail "expected two xenloop modules"

let host_of (ep : Scenarios.Endpoint.t) =
  { Workloads.Host.stack = ep.Scenarios.Endpoint.stack; udp = ep.udp; tcp = ep.tcp }

let bind_or_fail udp ?port () =
  match Netstack.Udp.bind udp ?port () with
  | Ok s -> s
  | Error _ -> Alcotest.fail "bind"

(* ------------------------------------------------------------------ *)
(* FIFO admission: can_accept *)

let test_can_accept_exact_fit () =
  (* Regression: a payload whose entry exactly fills the remaining free
     slots must be admitted.  The old waiting-list drain re-derived the
     check as [free_slots * 8 > len + 8], which rejects exact fits. *)
  let _, _, f = make_fifo ~k:6 () in
  (* 24-byte payload = 4 slots; 60 of 64 remain. *)
  Alcotest.(check bool) "first push" true (Fifo.try_push f (Bytes.make 24 'a'));
  Alcotest.(check int) "60 slots free" 60 (Fifo.free_slots f);
  (* 472 bytes = 59 payload slots + 1 metadata slot = exactly 60. *)
  Alcotest.(check int) "472 B needs 60 slots" 60 (Fifo.slots_for_payload 472);
  Alcotest.(check bool) "one byte over rejected" false (Fifo.can_accept f 473);
  Alcotest.(check bool) "exact fit accepted" true (Fifo.can_accept f 472);
  Alcotest.(check bool) "exact fit pushes" true (Fifo.try_push f (Bytes.make 472 'b'));
  Alcotest.(check int) "completely full" 0 (Fifo.free_slots f);
  Alcotest.(check bool) "nothing fits when full" false (Fifo.can_accept f 1)

let test_can_accept_bounds () =
  let _, _, f = make_fifo ~k:6 () in
  Alcotest.(check bool) "empty payload rejected" false (Fifo.can_accept f 0);
  Alcotest.(check bool) "max packet fits empty fifo" true
    (Fifo.can_accept f (Fifo.max_packet f));
  Alcotest.(check bool) "over max rejected even when empty" false
    (Fifo.can_accept f (Fifo.max_packet f + 1))

(* ------------------------------------------------------------------ *)
(* Batched pushes *)

let test_push_many_roundtrip_across_pages () =
  (* k = 10: 1024 slots over two 4 KiB data pages.  20 x 300-byte payloads
     occupy 780 slots = 6240 bytes, so the burst crosses the page
     boundary; every byte must come back out in order. *)
  let _, _, f = make_fifo ~k:10 () in
  let payload i = Bytes.init 300 (fun j -> Char.chr ((i + (j * 7)) land 0xff)) in
  let batch = List.init 20 payload in
  Alcotest.(check int) "all 20 pushed" 20 (Fifo.push_many f batch).Fifo.pr_pushed;
  List.iteri
    (fun i expected ->
      match Fifo.pop f with
      | Some got ->
          Alcotest.(check bytes) (Printf.sprintf "payload %d identical" i) expected got
      | None -> Alcotest.fail "pop came up empty mid-batch")
    batch;
  Alcotest.(check bool) "drained" true (Fifo.is_empty f)

let test_push_many_stops_at_full () =
  let _, _, f = make_fifo ~k:6 () in
  (* Each 100-byte payload needs 14 slots; 64 slots admit 4 of them. *)
  let batch = List.init 10 (fun i -> Bytes.make 100 (Char.chr (0x30 + i))) in
  Alcotest.(check int) "prefix pushed" 4 (Fifo.push_many f batch).Fifo.pr_pushed;
  (* The prefix that made it is intact and in order. *)
  for i = 0 to 3 do
    match Fifo.pop f with
    | Some got ->
        Alcotest.(check char) (Printf.sprintf "payload %d" i) (Char.chr (0x30 + i))
          (Bytes.get got 0)
    | None -> Alcotest.fail "pop failed"
  done;
  Alcotest.(check bool) "rest never entered" true (Fifo.is_empty f)

(* ------------------------------------------------------------------ *)
(* Suppression flags in the shared descriptor *)

let test_notify_flags_shared_between_views () =
  let desc, data, f = make_fifo () in
  let peer = Fifo.attach ~desc ~data in
  Alcotest.(check bool) "consumer flag starts clear" false (Fifo.consumer_active f);
  Alcotest.(check bool) "producer flag starts clear" false (Fifo.producer_waiting f);
  Fifo.set_consumer_active f true;
  Alcotest.(check bool) "peer sees consumer active" true (Fifo.consumer_active peer);
  Fifo.set_producer_waiting peer true;
  Alcotest.(check bool) "we see producer waiting" true (Fifo.producer_waiting f);
  Fifo.set_consumer_active f false;
  Fifo.set_producer_waiting peer false;
  Alcotest.(check bool) "consumer flag cleared" false (Fifo.consumer_active peer);
  Alcotest.(check bool) "producer flag cleared" false (Fifo.producer_waiting f)

(* ------------------------------------------------------------------ *)
(* Module-level: doorbells under a back-to-back burst *)

let test_burst_suppresses_doorbells () =
  let duo = Setup.build Setup.Xenloop_path in
  let m1, m2 = modules_of duo in
  let client = host_of duo.Setup.client and server = host_of duo.Setup.server in
  Experiment.execute duo (fun () ->
      let server_sock = bind_or_fail server.Workloads.Host.udp ~port:910 () in
      let client_sock = bind_or_fail client.Workloads.Host.udp () in
      let sent_before = (Gm.stats m1).Gm.notifies_sent in
      let n = 50 in
      for i = 0 to n - 1 do
        Netstack.Udp.sendto client_sock ~dst:duo.Setup.server_ip ~dst_port:910
          (Bytes.make 1400 (Char.chr (i land 0xff)))
      done;
      let received = ref [] in
      for _ = 1 to n do
        let _, _, payload = Netstack.Udp.recvfrom server_sock in
        received := Bytes.get payload 0 :: !received
      done;
      let expected = List.init n (fun i -> Char.chr (i land 0xff)) in
      Alcotest.(check bool) "all delivered in order" true
        (List.rev !received = expected);
      (* The receiver stayed in its handler, so most of the burst rode on
         already-pending doorbells. *)
      Alcotest.(check bool) "doorbells suppressed" true
        ((Gm.stats m1).Gm.notifies_suppressed > 0);
      Alcotest.(check bool) "far fewer doorbells than packets" true
        ((Gm.stats m1).Gm.notifies_sent - sent_before < n / 2);
      (* The receiver actually polled between arrivals (NAPI window). *)
      Alcotest.(check bool) "receiver polled" true ((Gm.stats m2).Gm.poll_rounds > 0))

let test_fragment_burst_batched () =
  (* A datagram large enough to fragment hands the hook a whole burst of
     frames at once; they must cross the FIFO as a single batch. *)
  let duo = Setup.build Setup.Xenloop_path in
  let m1, _ = modules_of duo in
  let client = host_of duo.Setup.client and server = host_of duo.Setup.server in
  Experiment.execute duo (fun () ->
      let server_sock = bind_or_fail server.Workloads.Host.udp ~port:911 () in
      let client_sock = bind_or_fail client.Workloads.Host.udp () in
      let data = Bytes.init 30_000 (fun i -> Char.chr ((i * 11) land 0xff)) in
      Netstack.Udp.sendto client_sock ~dst:duo.Setup.server_ip ~dst_port:911 data;
      let _, _, got = Netstack.Udp.recvfrom server_sock in
      Alcotest.(check bool) "reassembled intact" true (Bytes.equal data got);
      Alcotest.(check bool) "fragments went as a batch" true
        ((Gm.stats m1).Gm.batches > 0))

let test_poll_window_expiry_rearms () =
  let duo = Setup.build Setup.Xenloop_path in
  let m1, _ = modules_of duo in
  let client = host_of duo.Setup.client and server = host_of duo.Setup.server in
  Experiment.execute duo (fun () ->
      let server_sock = bind_or_fail server.Workloads.Host.udp ~port:912 () in
      let client_sock = bind_or_fail client.Workloads.Host.udp () in
      let send_recv tag =
        Netstack.Udp.sendto client_sock ~dst:duo.Setup.server_ip ~dst_port:912
          (Bytes.make 200 tag);
        let _, _, got = Netstack.Udp.recvfrom server_sock in
        Alcotest.(check char) "payload intact" tag (Bytes.get got 0)
      in
      send_recv 'x';
      (* Sleep far past the receiver's poll window: it must have cleared
         its consumer-active flag and gone back to sleep. *)
      Sim.Engine.sleep (Sim.Time.ms 5);
      let sent_before = (Gm.stats m1).Gm.notifies_sent in
      send_recv 'y';
      Alcotest.(check bool) "fresh doorbell after window expiry" true
        ((Gm.stats m1).Gm.notifies_sent > sent_before))

let test_teardown_drains_under_suppression () =
  (* A 2 KiB FIFO under a back-to-back burst piles frames onto the waiting
     list while doorbells are suppressed; yanking the module mid-stream
     must still deliver every frame — channel contents via the peer's
     teardown drain, waiting-list contents via the standard path.  The two
     paths race, so we check the delivered multiset, not global order.
     Zero-copy stays off: the burst must overflow the {e inline} path's
     2 KiB capacity, not ride the descriptor pool. *)
  let params = { Hypervisor.Params.default with xenloop_zerocopy = false } in
  let duo = Setup.build ~params ~fifo_k:8 Setup.Xenloop_path in
  let m1, m2 = modules_of duo in
  let client = host_of duo.Setup.client and server = host_of duo.Setup.server in
  Experiment.execute duo (fun () ->
      let server_sock = bind_or_fail server.Workloads.Host.udp ~port:913 () in
      let client_sock = bind_or_fail client.Workloads.Host.udp () in
      let n = 40 in
      for i = 0 to n - 1 do
        Netstack.Udp.sendto client_sock ~dst:duo.Setup.server_ip ~dst_port:913
          (Bytes.make 1400 (Char.chr i))
      done;
      Alcotest.(check bool) "waiting list engaged" true
        ((Gm.stats m1).Gm.queued_to_waiting > 0);
      Gm.unload m1;
      let received = ref [] in
      for _ = 1 to n do
        let _, _, payload = Netstack.Udp.recvfrom server_sock in
        received := Bytes.get payload 0 :: !received
      done;
      let expected = List.init n Char.chr in
      Alcotest.(check bool) "every frame delivered exactly once" true
        (List.sort compare !received = expected);
      Sim.Engine.sleep (Sim.Time.ms 1);
      Alcotest.(check bool) "peer tore the channel down" true
        ((Gm.stats m2).Gm.channels_torn_down >= 1))

let test_suppression_off_is_seed_baseline () =
  (* With every knob off, the module must ring one doorbell per handled
     event exactly like the seed: no suppression, no polling. *)
  let params =
    {
      Hypervisor.Params.default with
      xenloop_notify_suppression = false;
      xenloop_batch_tx = false;
      xenloop_poll_window = Sim.Time.span_zero;
    }
  in
  let duo = Setup.build ~params Setup.Xenloop_path in
  let m1, m2 = modules_of duo in
  let client = host_of duo.Setup.client and server = host_of duo.Setup.server in
  Experiment.execute duo (fun () ->
      let server_sock = bind_or_fail server.Workloads.Host.udp ~port:914 () in
      let client_sock = bind_or_fail client.Workloads.Host.udp () in
      let n = 20 in
      for i = 0 to n - 1 do
        Netstack.Udp.sendto client_sock ~dst:duo.Setup.server_ip ~dst_port:914
          (Bytes.make 800 (Char.chr i))
      done;
      for _ = 1 to n do
        ignore (Netstack.Udp.recvfrom server_sock)
      done;
      Alcotest.(check int) "nothing suppressed" 0
        ((Gm.stats m1).Gm.notifies_suppressed + (Gm.stats m2).Gm.notifies_suppressed);
      Alcotest.(check int) "no poll rounds" 0
        ((Gm.stats m1).Gm.poll_rounds + (Gm.stats m2).Gm.poll_rounds);
      Alcotest.(check int) "no batches" 0
        ((Gm.stats m1).Gm.batches + (Gm.stats m2).Gm.batches);
      Alcotest.(check bool) "at least one doorbell per datagram" true
        ((Gm.stats m1).Gm.notifies_sent >= n))

let suites =
  [
    ( "xenloop.notify",
      [
        Alcotest.test_case "can_accept exact fit" `Quick test_can_accept_exact_fit;
        Alcotest.test_case "can_accept bounds" `Quick test_can_accept_bounds;
        Alcotest.test_case "push_many across page boundary" `Quick
          test_push_many_roundtrip_across_pages;
        Alcotest.test_case "push_many stops at full" `Quick test_push_many_stops_at_full;
        Alcotest.test_case "flags shared between views" `Quick
          test_notify_flags_shared_between_views;
        Alcotest.test_case "burst suppresses doorbells" `Quick
          test_burst_suppresses_doorbells;
        Alcotest.test_case "fragment burst batched" `Quick test_fragment_burst_batched;
        Alcotest.test_case "poll window expiry re-arms" `Quick
          test_poll_window_expiry_rearms;
        Alcotest.test_case "teardown drains under suppression" `Quick
          test_teardown_drains_under_suppression;
        Alcotest.test_case "all knobs off matches seed" `Quick
          test_suppression_off_is_seed_baseline;
      ] );
  ]
