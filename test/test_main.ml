let () =
  Alcotest.run "xenloop-repro"
    (Test_sim.suites @ Test_wheel.suites @ Test_alloc.suites @ Test_memory.suites
   @ Test_evtchn.suites
   @ Test_xenstore.suites @ Test_netcore.suites @ Test_netstack.suites
   @ Test_xennet.suites @ Test_physnet.suites @ Test_xenloop_fifo.suites
   @ Test_xenloop_notify.suites @ Test_xenloop_integration.suites
   @ Test_xenloop_multiqueue.suites @ Test_xenloop_zerocopy.suites
   @ Test_xenloop_loans.suites @ Test_qos.suites
   @ Test_hypervisor.suites
   @ Test_workloads.suites @ Test_socket_shortcut.suites @ Test_cluster.suites @ Test_mesh.suites @ Test_related.suites @ Test_credit_scheduler.suites @ Test_chaos.suites)
