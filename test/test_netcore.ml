(* Tests for addresses, checksums, packet codec, and IP fragmentation. *)

module Mac = Netcore.Mac
module Ip = Netcore.Ip
module Checksum = Netcore.Checksum
module Ipv4 = Netcore.Ipv4
module Transport = Netcore.Transport
module Arp = Netcore.Arp
module Packet = Netcore.Packet
module Codec = Netcore.Codec
module Fragment = Netcore.Fragment

let mac_a = Mac.of_domid ~machine:0 ~domid:1
let mac_b = Mac.of_domid ~machine:0 ~domid:2
let ip_a = Ip.make ~subnet:1 ~host:1
let ip_b = Ip.make ~subnet:1 ~host:2

(* ------------------------------------------------------------------ *)
(* Addresses *)

let test_mac_string_roundtrip () =
  let m = Mac.of_int64 0x0123456789ABL in
  Alcotest.(check string) "to_string" "01:23:45:67:89:ab" (Mac.to_string m);
  (match Mac.of_string "01:23:45:67:89:ab" with
  | Some m' -> Alcotest.(check bool) "roundtrip" true (Mac.equal m m')
  | None -> Alcotest.fail "parse failed");
  Alcotest.(check (option reject)) "garbage" None
    (Option.map ignore (Mac.of_string "zz:aa"));
  Alcotest.(check (option reject)) "wrong groups" None
    (Option.map ignore (Mac.of_string "01:23:45:67:89"))

let test_mac_broadcast () =
  Alcotest.(check string) "broadcast" "ff:ff:ff:ff:ff:ff" (Mac.to_string Mac.broadcast);
  Alcotest.(check bool) "is_broadcast" true (Mac.is_broadcast Mac.broadcast);
  Alcotest.(check bool) "unicast not broadcast" false (Mac.is_broadcast mac_a)

let test_mac_of_domid () =
  Alcotest.(check bool) "distinct per domain" false (Mac.equal mac_a mac_b);
  Alcotest.(check bool) "distinct per machine" false
    (Mac.equal mac_a (Mac.of_domid ~machine:1 ~domid:1));
  (* Xen OUI prefix. *)
  Alcotest.(check string) "oui" "00:16:3e"
    (String.sub (Mac.to_string mac_a) 0 8)

let test_ip_string_roundtrip () =
  let ip = Ip.of_octets 192 168 1 42 in
  Alcotest.(check string) "to_string" "192.168.1.42" (Ip.to_string ip);
  (match Ip.of_string "192.168.1.42" with
  | Some ip' -> Alcotest.(check bool) "roundtrip" true (Ip.equal ip ip')
  | None -> Alcotest.fail "parse failed");
  Alcotest.(check (option reject)) "out of range" None
    (Option.map ignore (Ip.of_string "1.2.3.256"));
  Alcotest.(check (option reject)) "not dotted quad" None
    (Option.map ignore (Ip.of_string "1.2.3"))

let test_ip_make () =
  Alcotest.(check string) "cluster scheme" "10.3.0.7"
    (Ip.to_string (Ip.make ~subnet:3 ~host:7))

(* ------------------------------------------------------------------ *)
(* Checksum *)

let test_checksum_known_vector () =
  (* Classic RFC 1071 example: 0001 f203 f4f5 f6f7 -> checksum 220d. *)
  let data = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  Alcotest.(check int) "rfc1071" 0x220d (Checksum.compute data ~off:0 ~len:8)

let test_checksum_verify () =
  (* Checksum field (offset 2) starts zeroed; after embedding the computed
     checksum the whole range must verify. *)
  let data = Bytes.of_string "\x45\x00\x00\x00xyzabcdefhij" in
  let len = Bytes.length data in
  let ck = Checksum.compute data ~off:0 ~len in
  Bytes.set_uint8 data 2 (ck lsr 8);
  Bytes.set_uint8 data 3 (ck land 0xff);
  Alcotest.(check bool) "verifies" true (Checksum.verify data ~off:0 ~len);
  (* And corruption breaks verification. *)
  Bytes.set_uint8 data 5 (Bytes.get_uint8 data 5 lxor 1);
  Alcotest.(check bool) "corruption detected" false (Checksum.verify data ~off:0 ~len)

let test_checksum_odd_length () =
  let data = Bytes.of_string "abc" in
  let ck = Checksum.compute data ~off:0 ~len:3 in
  Alcotest.(check bool) "in range" true (ck >= 0 && ck <= 0xffff)

let prop_checksum_detects_single_bit_flips =
  QCheck.Test.make ~name:"checksum detects single corrupted byte" ~count:200
    QCheck.(pair (string_of_size Gen.(2 -- 64)) small_int)
    (fun (s, idx) ->
      QCheck.assume (String.length s >= 2);
      let data = Bytes.of_string s in
      let len = Bytes.length data in
      let ck = Checksum.compute data ~off:0 ~len in
      let idx = idx mod len in
      let original = Bytes.get_uint8 data idx in
      let corrupted = (original + 1) land 0xff in
      QCheck.assume (corrupted <> original);
      Bytes.set_uint8 data idx corrupted;
      Checksum.compute data ~off:0 ~len <> ck)

(* The production sum is accumulated 32 bits at a time in native byte
   order; this reference is the textbook big-endian byte-pair fold.  They
   must agree bit-for-bit on every input, offset, and length parity. *)
let reference_checksum data ~off ~len =
  let sum = ref 0 in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    sum :=
      !sum
      + (Char.code (Bytes.get data !i) lsl 8)
      + Char.code (Bytes.get data (!i + 1));
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Char.code (Bytes.get data !i) lsl 8);
  let s = ref !sum in
  while !s > 0xffff do
    s := (!s land 0xffff) + (!s lsr 16)
  done;
  lnot !s land 0xffff

let prop_checksum_matches_reference =
  QCheck.Test.make ~name:"wide checksum matches byte-pair reference" ~count:500
    QCheck.(pair (string_of_size Gen.(0 -- 80)) (int_bound 7))
    (fun (s, off) ->
      let data = Bytes.of_string s in
      QCheck.assume (off <= Bytes.length data);
      let len = Bytes.length data - off in
      Checksum.compute data ~off ~len = reference_checksum data ~off ~len)

let prop_checksum_incremental_matches_full =
  QCheck.Test.make ~name:"incremental update matches recomputation" ~count:200
    QCheck.(triple (string_of_size (QCheck.Gen.return 8)) (int_bound 3) (int_bound 0xffff))
    (fun (s, word_idx, new_word) ->
      let data = Bytes.of_string s in
      let old = Checksum.compute data ~off:0 ~len:8 in
      let old_word =
        (Bytes.get_uint8 data (2 * word_idx) lsl 8)
        lor Bytes.get_uint8 data ((2 * word_idx) + 1)
      in
      Bytes.set_uint8 data (2 * word_idx) (new_word lsr 8);
      Bytes.set_uint8 data ((2 * word_idx) + 1) (new_word land 0xff);
      let fresh = Checksum.compute data ~off:0 ~len:8 in
      let incremental = Checksum.incremental_update ~old_checksum:old ~old_word ~new_word in
      fresh = incremental)

(* ------------------------------------------------------------------ *)
(* Codec *)

let codec_error = Alcotest.testable Codec.pp_error ( = )

let roundtrip packet =
  match Codec.parse (Codec.serialize packet) with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse failed: %a" Codec.pp_error e

let test_codec_udp_roundtrip () =
  let p =
    Packet.udp ~src_mac:mac_a ~dst_mac:mac_b ~src_ip:ip_a ~dst_ip:ip_b ~src_port:5000
      ~dst_port:53 ~ident:7 (Bytes.of_string "dns query")
  in
  Alcotest.(check bool) "roundtrip equal" true (Packet.equal p (roundtrip p))

let test_codec_tcp_roundtrip () =
  let header =
    {
      Transport.tcp_src_port = 43210;
      tcp_dst_port = 80;
      seq = 123456789l;
      ack_seq = 42l;
      flags = { Transport.no_flags with syn = true; ack = true };
      window = 65535;
    }
  in
  let p =
    Packet.tcp ~src_mac:mac_a ~dst_mac:mac_b ~src_ip:ip_a ~dst_ip:ip_b ~header ~ident:3
      (Bytes.of_string "GET / HTTP/1.0\r\n")
  in
  Alcotest.(check bool) "roundtrip equal" true (Packet.equal p (roundtrip p))

let test_codec_icmp_roundtrip () =
  let p =
    Packet.icmp_echo ~src_mac:mac_a ~dst_mac:mac_b ~src_ip:ip_a ~dst_ip:ip_b
      ~kind:`Request ~icmp_ident:99 ~icmp_seq:5 ~ident:11 (Bytes.of_string "ping")
  in
  Alcotest.(check bool) "roundtrip equal" true (Packet.equal p (roundtrip p))

let test_codec_arp_roundtrip () =
  let msg = Arp.request ~sender_mac:mac_a ~sender_ip:ip_a ~target_ip:ip_b in
  let p = Packet.arp ~src_mac:mac_a ~dst_mac:Mac.broadcast msg in
  Alcotest.(check bool) "roundtrip equal" true (Packet.equal p (roundtrip p))

let test_codec_xenloop_roundtrip () =
  let p =
    Packet.xenloop_ctrl ~src_mac:mac_a ~dst_mac:mac_b (Bytes.of_string "ANNOUNCE 1 2 3")
  in
  Alcotest.(check bool) "roundtrip equal" true (Packet.equal p (roundtrip p))

let test_codec_wire_length_matches () =
  let p =
    Packet.udp ~src_mac:mac_a ~dst_mac:mac_b ~src_ip:ip_a ~dst_ip:ip_b ~src_port:1
      ~dst_port:2 (Bytes.of_string "0123456789")
  in
  Alcotest.(check int) "wire length" (Bytes.length (Codec.serialize p))
    (Packet.wire_length p)

let test_codec_rejects_corruption () =
  let p =
    Packet.udp ~src_mac:mac_a ~dst_mac:mac_b ~src_ip:ip_a ~dst_ip:ip_b ~src_port:1
      ~dst_port:2 (Bytes.of_string "payload")
  in
  let raw = Codec.serialize p in
  (* Corrupt a payload byte: transport checksum must catch it. *)
  let last = Bytes.length raw - 1 in
  Bytes.set_uint8 raw last (Bytes.get_uint8 raw last lxor 0xFF);
  (match Codec.parse raw with
  | Error (Codec.Bad_checksum "transport") -> ()
  | Error e -> Alcotest.failf "unexpected error: %a" Codec.pp_error e
  | Ok _ -> Alcotest.fail "accepted corrupted payload");
  (* Corrupt the IP header. *)
  let raw2 = Codec.serialize p in
  Bytes.set_uint8 raw2 20 (Bytes.get_uint8 raw2 20 lxor 0xFF);
  match Codec.parse raw2 with
  | Error (Codec.Bad_checksum "IPv4") -> ()
  | Error e -> Alcotest.failf "unexpected error: %a" Codec.pp_error e
  | Ok _ -> Alcotest.fail "accepted corrupted header"

let test_codec_truncated () =
  let p = Packet.arp ~src_mac:mac_a ~dst_mac:Mac.broadcast
      (Arp.request ~sender_mac:mac_a ~sender_ip:ip_a ~target_ip:ip_b) in
  let raw = Codec.serialize p in
  Alcotest.(check (result reject codec_error)) "truncated" (Error Codec.Truncated)
    (Result.map ignore (Codec.parse (Bytes.sub raw 0 (Bytes.length raw - 3))))

let test_codec_bad_ethertype () =
  let raw = Bytes.make 20 '\000' in
  Bytes.set_uint8 raw 12 0xAB;
  Bytes.set_uint8 raw 13 0xCD;
  match Codec.parse raw with
  | Error (Codec.Bad_ethertype 0xABCD) -> ()
  | Error e -> Alcotest.failf "unexpected error: %a" Codec.pp_error e
  | Ok _ -> Alcotest.fail "accepted unknown ethertype"

let payload_gen = QCheck.Gen.(map Bytes.of_string (string_size (0 -- 2000)))

let arbitrary_udp_packet =
  QCheck.make
    ~print:(fun p -> Format.asprintf "%a" Packet.pp p)
    QCheck.Gen.(
      let* sp = 0 -- 0xffff and* dp = 0 -- 0xffff and* ident = 0 -- 0xffff in
      let* payload = payload_gen in
      return
        (Packet.udp ~src_mac:mac_a ~dst_mac:mac_b ~src_ip:ip_a ~dst_ip:ip_b
           ~src_port:sp ~dst_port:dp ~ident payload))

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"serialize/parse roundtrip" ~count:200 arbitrary_udp_packet
    (fun p ->
      match Codec.parse (Codec.serialize p) with
      | Ok p' -> Packet.equal p p'
      | Error _ -> false)

let arbitrary_tcp_packet =
  QCheck.make
    ~print:(fun p -> Format.asprintf "%a" Packet.pp p)
    QCheck.Gen.(
      let* sp = 0 -- 0xffff and* dp = 0 -- 0xffff in
      let* seq = map Int32.of_int (0 -- 0x3FFFFFFF) in
      let* ack_seq = map Int32.of_int (0 -- 0x3FFFFFFF) in
      let* window = 0 -- 0xffff in
      let* syn = bool and* ack = bool and* fin = bool and* psh = bool and* rst = bool in
      let* payload = payload_gen in
      let header =
        {
          Transport.tcp_src_port = sp;
          tcp_dst_port = dp;
          seq;
          ack_seq;
          flags = { Transport.syn; ack; fin; psh; rst };
          window;
        }
      in
      return
        (Packet.tcp ~src_mac:mac_a ~dst_mac:mac_b ~src_ip:ip_a ~dst_ip:ip_b ~header
           payload))

let prop_codec_tcp_roundtrip =
  QCheck.Test.make ~name:"tcp serialize/parse roundtrip (all flag combos)" ~count:300
    arbitrary_tcp_packet (fun p ->
      match Codec.parse (Codec.serialize p) with
      | Ok p' -> Packet.equal p p'
      | Error _ -> false)

(* Checksum-elision trust contract (DESIGN.md §15): a frame sent over
   the xenloop channel with its transport checksum elided, then bounced
   to netfront/physnet by the fallback (parse without verification,
   re-serialize with the default always-compute), must be bit for bit
   the frame the sender would have produced with no elision at all.
   Payloads are sliced out of a backing buffer at unaligned offsets and
   biased toward odd lengths, and zero length is generated, because the
   16-bit ones'-complement sum is exactly where odd tails and offset
   bugs hide. *)
let elision_payload_gen =
  QCheck.Gen.(
    let* backing = string_size (0 -- 2000) in
    let* off = 0 -- 7 in
    let off = min off (String.length backing) in
    let* len = 0 -- (String.length backing - off) in
    let* odd_bias = bool in
    let len = if odd_bias && len > 0 && len mod 2 = 0 then len - 1 else len in
    return (Bytes.sub (Bytes.of_string backing) off len))

let arbitrary_elision_tcp_packet =
  QCheck.make
    ~print:(fun p -> Format.asprintf "%a" Packet.pp p)
    QCheck.Gen.(
      let* sp = 0 -- 0xffff and* dp = 0 -- 0xffff in
      let* seq = map Int32.of_int (0 -- 0x3FFFFFFF) in
      let* ack = bool and* fin = bool and* psh = bool in
      let* payload = elision_payload_gen in
      let header =
        {
          Transport.tcp_src_port = sp;
          tcp_dst_port = dp;
          seq;
          ack_seq = 0l;
          flags = { Transport.syn = false; ack; fin; psh; rst = false };
          window = 0xffff;
        }
      in
      return
        (Packet.tcp ~src_mac:mac_a ~dst_mac:mac_b ~src_ip:ip_a ~dst_ip:ip_b ~header
           payload))

let prop_csum_elision_fallback =
  QCheck.Test.make
    ~name:"csum elision + fallback recompute equals always-compute baseline"
    ~count:400 arbitrary_elision_tcp_packet (fun p ->
      let baseline = Codec.serialize p in
      let elided = Codec.serialize ~csum:false p in
      match Codec.parse ~verify_transport:false elided with
      | Error _ -> false
      | Ok p' -> Bytes.equal (Codec.serialize p') baseline)

let prop_mac_string_roundtrip =
  QCheck.Test.make ~name:"mac to_string/of_string roundtrip" ~count:200
    QCheck.(map Int64.of_int int)
    (fun v ->
      let m = Mac.of_int64 v in
      match Mac.of_string (Mac.to_string m) with
      | Some m' -> Mac.equal m m'
      | None -> false)

let prop_ip_string_roundtrip =
  QCheck.Test.make ~name:"ip to_string/of_string roundtrip" ~count:200
    QCheck.(quad (int_bound 255) (int_bound 255) (int_bound 255) (int_bound 255))
    (fun (a, b, c, d) ->
      let ip = Ip.of_octets a b c d in
      match Ip.of_string (Ip.to_string ip) with
      | Some ip' -> Ip.equal ip ip'
      | None -> false)

(* ------------------------------------------------------------------ *)
(* Fragmentation *)

let big_udp len =
  Packet.udp ~src_mac:mac_a ~dst_mac:mac_b ~src_ip:ip_a ~dst_ip:ip_b ~src_port:9
    ~dst_port:10 ~ident:77
    (Bytes.init len (fun i -> Char.chr (i land 0xff)))

let test_fragment_small_packet_untouched () =
  let p = big_udp 100 in
  Alcotest.(check int) "singleton" 1 (List.length (Fragment.fragment ~mtu:1500 p))

let test_fragment_splits_and_offsets () =
  let p = big_udp 4000 in
  let frags = Fragment.fragment ~mtu:1500 p in
  Alcotest.(check bool) "several fragments" true (List.length frags >= 3);
  let offsets =
    List.filter_map
      (fun f -> Option.map (fun h -> h.Ipv4.frag_offset) (Packet.ip_header f))
      frags
  in
  Alcotest.(check int) "first at 0" 0 (List.hd offsets);
  List.iter
    (fun off -> Alcotest.(check int) "8-byte aligned" 0 (off mod 8))
    offsets;
  (* All but the last must have more_fragments set. *)
  let more_flags =
    List.filter_map
      (fun f -> Option.map (fun h -> h.Ipv4.more_fragments) (Packet.ip_header f))
      frags
  in
  Alcotest.(check bool) "last has no MF" false (List.nth more_flags (List.length more_flags - 1));
  List.iteri
    (fun i mf ->
      if i < List.length more_flags - 1 then
        Alcotest.(check bool) "MF set" true mf)
    more_flags;
  (* Every fragment respects the MTU. *)
  List.iter
    (fun f ->
      Alcotest.(check bool) "fits mtu" true
        (Packet.wire_length f - Packet.ethernet_header_length <= 1500))
    frags

let test_fragment_reassembles_in_order () =
  let p = big_udp 5000 in
  let frags = Fragment.fragment ~mtu:1500 p in
  let reasm = Fragment.create_reassembler () in
  let result =
    List.fold_left
      (fun acc f ->
        match Fragment.push reasm f with
        | Ok (Some whole) -> Some whole
        | Ok None -> acc
        | Error e -> Alcotest.failf "reassembly error: %a" Codec.pp_error e)
      None frags
  in
  match result with
  | None -> Alcotest.fail "never completed"
  | Some whole ->
      Alcotest.(check bool) "identical to original" true (Packet.equal p whole);
      Alcotest.(check int) "no pending state" 0 (Fragment.pending_datagrams reasm)

let test_fragment_reassembles_out_of_order () =
  let p = big_udp 6000 in
  let frags = Fragment.fragment ~mtu:1500 p in
  let shuffled = List.rev frags in
  let reasm = Fragment.create_reassembler () in
  let result =
    List.fold_left
      (fun acc f ->
        match Fragment.push reasm f with
        | Ok (Some whole) -> Some whole
        | Ok None -> acc
        | Error e -> Alcotest.failf "reassembly error: %a" Codec.pp_error e)
      None shuffled
  in
  match result with
  | None -> Alcotest.fail "never completed"
  | Some whole -> Alcotest.(check bool) "identical" true (Packet.equal p whole)

let test_fragment_incomplete_stays_pending () =
  let p = big_udp 4000 in
  let frags = Fragment.fragment ~mtu:1500 p in
  let reasm = Fragment.create_reassembler () in
  (match frags with
  | first :: _ -> (
      match Fragment.push reasm first with
      | Ok None -> ()
      | _ -> Alcotest.fail "single fragment completed a datagram")
  | [] -> Alcotest.fail "no fragments");
  Alcotest.(check int) "pending" 1 (Fragment.pending_datagrams reasm)

let test_fragment_interleaved_datagrams () =
  let p1 = big_udp 3000 in
  let p2 =
    Packet.udp ~src_mac:mac_a ~dst_mac:mac_b ~src_ip:ip_a ~dst_ip:ip_b ~src_port:9
      ~dst_port:10 ~ident:78 (Bytes.make 3000 'z')
  in
  let frags = Fragment.fragment ~mtu:1500 p1 @ Fragment.fragment ~mtu:1500 p2 in
  (* Interleave the two datagrams' fragments. *)
  let reasm = Fragment.create_reassembler () in
  let completed = ref [] in
  List.iter
    (fun f ->
      match Fragment.push reasm f with
      | Ok (Some whole) -> completed := whole :: !completed
      | Ok None -> ()
      | Error e -> Alcotest.failf "reassembly error: %a" Codec.pp_error e)
    frags;
  Alcotest.(check int) "both completed" 2 (List.length !completed)

let prop_fragment_roundtrip =
  QCheck.Test.make ~name:"fragment/reassemble roundtrip at random sizes" ~count:100
    QCheck.(pair (int_range 0 20000) (int_range 600 1500))
    (fun (len, mtu) ->
      let p = big_udp len in
      let frags = Fragment.fragment ~mtu p in
      let reasm = Fragment.create_reassembler () in
      let result =
        List.fold_left
          (fun acc f ->
            match Fragment.push reasm f with
            | Ok (Some whole) -> Some whole
            | Ok None -> acc
            | Error _ -> acc)
          None frags
      in
      match result with Some whole -> Packet.equal p whole | None -> false)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "netcore.addresses",
      [
        Alcotest.test_case "mac string roundtrip" `Quick test_mac_string_roundtrip;
        Alcotest.test_case "broadcast" `Quick test_mac_broadcast;
        Alcotest.test_case "mac of domid" `Quick test_mac_of_domid;
        Alcotest.test_case "ip string roundtrip" `Quick test_ip_string_roundtrip;
        Alcotest.test_case "cluster addressing" `Quick test_ip_make;
      ]
      @ qsuite [ prop_mac_string_roundtrip; prop_ip_string_roundtrip ] );
    ( "netcore.checksum",
      [
        Alcotest.test_case "known vector" `Quick test_checksum_known_vector;
        Alcotest.test_case "verify embedded" `Quick test_checksum_verify;
        Alcotest.test_case "odd length" `Quick test_checksum_odd_length;
      ]
      @ qsuite
          [
            prop_checksum_detects_single_bit_flips;
            prop_checksum_matches_reference;
            prop_checksum_incremental_matches_full;
          ]
    );
    ( "netcore.codec",
      [
        Alcotest.test_case "udp roundtrip" `Quick test_codec_udp_roundtrip;
        Alcotest.test_case "tcp roundtrip" `Quick test_codec_tcp_roundtrip;
        Alcotest.test_case "icmp roundtrip" `Quick test_codec_icmp_roundtrip;
        Alcotest.test_case "arp roundtrip" `Quick test_codec_arp_roundtrip;
        Alcotest.test_case "xenloop ctrl roundtrip" `Quick test_codec_xenloop_roundtrip;
        Alcotest.test_case "wire length matches bytes" `Quick test_codec_wire_length_matches;
        Alcotest.test_case "rejects corruption" `Quick test_codec_rejects_corruption;
        Alcotest.test_case "rejects truncation" `Quick test_codec_truncated;
        Alcotest.test_case "rejects unknown ethertype" `Quick test_codec_bad_ethertype;
      ]
      @ qsuite
          [
            prop_codec_roundtrip;
            prop_codec_tcp_roundtrip;
            prop_csum_elision_fallback;
          ] );
    ( "netcore.fragment",
      [
        Alcotest.test_case "small packet untouched" `Quick
          test_fragment_small_packet_untouched;
        Alcotest.test_case "splits with correct offsets" `Quick
          test_fragment_splits_and_offsets;
        Alcotest.test_case "reassembles in order" `Quick test_fragment_reassembles_in_order;
        Alcotest.test_case "reassembles out of order" `Quick
          test_fragment_reassembles_out_of_order;
        Alcotest.test_case "incomplete stays pending" `Quick
          test_fragment_incomplete_stays_pending;
        Alcotest.test_case "interleaved datagrams" `Quick test_fragment_interleaved_datagrams;
      ]
      @ qsuite [ prop_fragment_roundtrip ] );
  ]
