(* Loaned-slot zero-copy receive (DESIGN.md §11): borrowed pool-slot
   views through the socket layer, negotiated loan credit, transparent
   degradation to copy-out when credit runs dry, force-return at channel
   teardown, and a qcheck property that the loan/release protocol never
   double-frees or leaks a slot. *)

module Setup = Scenarios.Setup
module Experiment = Scenarios.Experiment
module Gm = Xenloop.Guest_module
module Shortcut = Xenloop.Socket_shortcut
module Pool = Xenloop.Payload_pool
module Page = Memory.Page
module Udp = Netstack.Udp

let host_of (ep : Scenarios.Endpoint.t) =
  { Workloads.Host.stack = ep.Scenarios.Endpoint.stack; udp = ep.udp; tcp = ep.tcp }

let modules_of duo =
  match duo.Setup.modules with
  | [ m1; m2 ] -> (m1, m2)
  | _ -> Alcotest.fail "expected two xenloop modules"

let bind_exn udp ?port () =
  match Udp.bind udp ?port () with Ok s -> s | Error _ -> Alcotest.fail "bind"

(* A payload large enough to ride a descriptor (above the inline
   threshold), patterned so corruption cannot hide. *)
let big_payload i =
  Bytes.init 1400 (fun j -> Char.chr ((i + (j * 7)) land 0xff))

let with_shortcut_world ?params f =
  let duo =
    match params with
    | Some params -> Setup.build ~params Setup.Xenloop_path
    | None -> Setup.build Setup.Xenloop_path
  in
  let m1, m2 = modules_of duo in
  let sc1 =
    Shortcut.enable ~xl_module:m1 ~udp:duo.Setup.client.Scenarios.Endpoint.udp ()
  in
  let sc2 =
    Shortcut.enable ~xl_module:m2 ~udp:duo.Setup.server.Scenarios.Endpoint.udp ()
  in
  Experiment.execute duo (fun () ->
      f ~duo ~m1 ~m2 ~client:(host_of duo.Setup.client)
        ~server:(host_of duo.Setup.server) ~sc1 ~sc2)

(* ------------------------------------------------------------------ *)
(* Loaned delivery over the transport shortcut *)

let test_loaned_delivery_roundtrip () =
  with_shortcut_world (fun ~duo ~m1 ~m2 ~client ~server ~sc1:_ ~sc2 ->
      Alcotest.(check bool) "loans negotiated" true (Gm.loans_active m1 ~domid:2);
      let server_sock = bind_exn server.Workloads.Host.udp ~port:4000 () in
      let client_sock = bind_exn client.Workloads.Host.udp () in
      let n = 8 in
      for i = 0 to n - 1 do
        Udp.sendto client_sock ~dst:duo.Setup.server_ip ~dst_port:4000
          (big_payload i)
      done;
      for i = 0 to n - 1 do
        let _, _, got = Udp.recvfrom server_sock in
        Alcotest.(check bytes)
          (Printf.sprintf "payload %d intact" i)
          (big_payload i) got
      done;
      let tx = Gm.stats m1 and rx = Gm.stats m2 in
      Alcotest.(check int) "all rode loan descriptors" n tx.Gm.loan_tx;
      Alcotest.(check int) "all delivered as loans" n rx.Gm.loan_rx;
      Alcotest.(check int) "every borrow returned" n rx.Gm.loan_returns;
      Alcotest.(check int) "delivered as views" n (Shortcut.received_as_view sc2);
      Alcotest.(check int) "no credit stalls" 0 rx.Gm.loan_credit_stalls;
      Alcotest.(check int) "no loans outstanding" 0 (Gm.outstanding_loans m2))

let test_packet_path_loaned_delivery () =
  (* Without the transport shortcut, large frames still ride descriptors;
     the receiver borrows the slot for the whole netstack traversal and
     the borrow ends when the app reads the datagram out. *)
  let duo = Setup.build Setup.Xenloop_path in
  let _, m2 = modules_of duo in
  let client = host_of duo.Setup.client and server = host_of duo.Setup.server in
  Experiment.execute duo (fun () ->
      let server_sock = bind_exn server.Workloads.Host.udp ~port:4001 () in
      let client_sock = bind_exn client.Workloads.Host.udp () in
      let n = 6 in
      for i = 0 to n - 1 do
        Udp.sendto client_sock ~dst:duo.Setup.server_ip ~dst_port:4001
          (big_payload i)
      done;
      for i = 0 to n - 1 do
        let _, _, got = Udp.recvfrom server_sock in
        Alcotest.(check bytes)
          (Printf.sprintf "payload %d intact" i)
          (big_payload i) got
      done;
      let rx = Gm.stats m2 in
      Alcotest.(check bool) "frames delivered as loans" true (rx.Gm.loan_rx > 0);
      Alcotest.(check int) "every borrow returned" rx.Gm.loan_rx
        rx.Gm.loan_returns;
      Alcotest.(check int) "no loans outstanding" 0 (Gm.outstanding_loans m2))

let test_view_release_idempotent () =
  with_shortcut_world (fun ~duo ~m1:_ ~m2 ~client ~server ~sc1:_ ~sc2:_ ->
      let server_sock = bind_exn server.Workloads.Host.udp ~port:4002 () in
      let client_sock = bind_exn client.Workloads.Host.udp () in
      Udp.sendto client_sock ~dst:duo.Setup.server_ip ~dst_port:4002
        (big_payload 0);
      let _, _, got, release = Udp.recvfrom_view server_sock in
      Alcotest.(check bytes) "view intact" (big_payload 0) got;
      Alcotest.(check int) "view pins the slot" 1 (Gm.outstanding_loans m2);
      release ();
      Alcotest.(check int) "released" 0 (Gm.outstanding_loans m2);
      release ();
      release ();
      Alcotest.(check int) "extra releases no-op" 0 (Gm.outstanding_loans m2);
      Alcotest.(check int) "returned exactly once" 1 (Gm.stats m2).Gm.loan_returns)

(* ------------------------------------------------------------------ *)
(* Credit exhaustion degrades transparently to copy-out *)

let test_credit_exhaustion_transparent_copyout () =
  let params =
    { Hypervisor.Params.default with Hypervisor.Params.xenloop_max_loans = 2 }
  in
  with_shortcut_world ~params (fun ~duo ~m1:_ ~m2 ~client ~server ~sc1:_ ~sc2 ->
      let server_sock = bind_exn server.Workloads.Host.udp ~port:4003 () in
      let client_sock = bind_exn client.Workloads.Host.udp () in
      let n = 10 in
      (* The receiver never runs while the burst lands: the first two
         datagrams park as views and pin the whole loan credit, so the
         rest must degrade to copy-out — delivery itself must not care. *)
      for i = 0 to n - 1 do
        Udp.sendto client_sock ~dst:duo.Setup.server_ip ~dst_port:4003
          (big_payload i)
      done;
      (* Let the receiving module drain every descriptor before looking:
         the views park in the socket buffer, nobody reads yet. *)
      Sim.Engine.sleep (Sim.Time.ms 2);
      let rx = Gm.stats m2 in
      Alcotest.(check int) "credit capped the borrows" 2 rx.Gm.loan_rx;
      Alcotest.(check int) "the rest stalled to copy-out" (n - 2)
        rx.Gm.loan_credit_stalls;
      Alcotest.(check int) "credit fully pinned" 2 (Gm.outstanding_loans m2);
      (* Identical delivery: same order, same bytes, loan or copy. *)
      for i = 0 to n - 1 do
        let _, _, got = Udp.recvfrom server_sock in
        Alcotest.(check bytes)
          (Printf.sprintf "payload %d identical" i)
          (big_payload i) got
      done;
      Alcotest.(check int) "borrows returned on read" 2
        (Gm.stats m2).Gm.loan_returns;
      Alcotest.(check int) "no loans outstanding" 0 (Gm.outstanding_loans m2);
      Alcotest.(check int) "views counted" 2 (Shortcut.received_as_view sc2);
      Alcotest.(check int) "all delivered via shortcut" n
        (Shortcut.received_via_shortcut sc2))

let test_loans_disabled_world_uses_copyout () =
  let params =
    { Hypervisor.Params.default with Hypervisor.Params.xenloop_loans = false }
  in
  with_shortcut_world ~params (fun ~duo ~m1 ~m2 ~client ~server ~sc1:_ ~sc2 ->
      Alcotest.(check bool) "no loan credit negotiated" false
        (Gm.loans_active m1 ~domid:2);
      let server_sock = bind_exn server.Workloads.Host.udp ~port:4004 () in
      let client_sock = bind_exn client.Workloads.Host.udp () in
      let n = 5 in
      for i = 0 to n - 1 do
        Udp.sendto client_sock ~dst:duo.Setup.server_ip ~dst_port:4004
          (big_payload i)
      done;
      for i = 0 to n - 1 do
        let _, _, got = Udp.recvfrom server_sock in
        Alcotest.(check bytes)
          (Printf.sprintf "payload %d identical" i)
          (big_payload i) got
      done;
      let rx = Gm.stats m2 in
      Alcotest.(check int) "no loans" 0 rx.Gm.loan_rx;
      Alcotest.(check int) "no views" 0 (Shortcut.received_as_view sc2);
      Alcotest.(check int) "no stalls either (credit is zero, not dry)" 0
        rx.Gm.loan_credit_stalls)

(* ------------------------------------------------------------------ *)
(* Teardown force-returns leaked loans *)

let test_leak_force_return_on_teardown () =
  with_shortcut_world (fun ~duo ~m1 ~m2 ~client ~server ~sc1:_ ~sc2:_ ->
      (* A leaky application: every borrowed view is kept forever. *)
      Gm.set_loan_fault_injector m2 (Some (fun () -> Gm.Loan_leak));
      let server_sock = bind_exn server.Workloads.Host.udp ~port:4005 () in
      let client_sock = bind_exn client.Workloads.Host.udp () in
      let n = 5 in
      for i = 0 to n - 1 do
        Udp.sendto client_sock ~dst:duo.Setup.server_ip ~dst_port:4005
          (big_payload i)
      done;
      for i = 0 to n - 1 do
        let _, _, got = Udp.recvfrom server_sock in
        Alcotest.(check bytes)
          (Printf.sprintf "payload %d still delivered" i)
          (big_payload i) got
      done;
      Alcotest.(check int) "leaked borrows pin their slots" n
        (Gm.outstanding_loans m2);
      Alcotest.(check int) "nothing returned" 0 (Gm.stats m2).Gm.loan_returns;
      (* Channel teardown (here: the peer unloading, as a migration or
         module removal would) must force-return every leaked slot before
         the pool pages are unmapped. *)
      Gm.unload m1;
      Sim.Engine.sleep (Sim.Time.ms 1);
      Alcotest.(check int) "force-return recovered the leaks" n
        (Gm.stats m2).Gm.loans_force_returned;
      Alcotest.(check int) "no loans outstanding after teardown" 0
        (Gm.outstanding_loans m2))

(* ------------------------------------------------------------------ *)
(* qcheck: the loan/release protocol never double-frees or leaks *)

let prop_loan_release_safe =
  QCheck.Test.make ~name:"loan/release never double-frees or leaks" ~count:300
    QCheck.(list (int_range 0 5))
    (fun ops ->
      let slots = 8 and max_loans = 4 in
      let ctrl = Page.create () in
      let data = Array.init slots (fun _ -> Page.create ()) in
      let p =
        Pool.init ~max_loans ~ctrl ~data ~slots ~slot_pages:1 ~inline_max:64 ()
      in
      (* Model: [allocated] are slots off the ring being written/read;
         [loaned] are borrowed views the app holds. *)
      let allocated = ref [] and loaned = ref [] in
      List.iter
        (fun op ->
          match op with
          | 0 | 1 -> (
              match Pool.alloc p with
              | Some s -> allocated := s :: !allocated
              | None -> ())
          | 2 -> (
              match !allocated with
              | s :: rest ->
                  allocated := rest;
                  Pool.free p s
              | [] -> ())
          | 3 -> (
              match !allocated with
              | s :: rest when List.length !loaned < max_loans ->
                  allocated := rest;
                  Pool.loan p s;
                  loaned := s :: !loaned
              | _ -> ())
          | 4 -> (
              match !loaned with
              | s :: rest ->
                  loaned := rest;
                  Pool.release p s
              | [] -> ())
          | _ -> (
              (* Release from the back: out-of-order returns are legal. *)
              match List.rev !loaned with
              | s :: _ ->
                  loaned := List.filter (fun x -> x <> s) !loaned;
                  Pool.release p s
              | [] -> ()))
        ops;
      (* Conservation: every slot is exactly one of free / allocated /
         loaned, the pool's own sanity check agrees, and its outstanding
         count matches the model. *)
      let ok_mid =
        Pool.sanity p = None
        && Pool.outstanding_loans p = List.length !loaned
        && Pool.free_slots p
           = slots - List.length !allocated - List.length !loaned
      in
      (* Teardown: force-return recovers exactly the model's loans, after
         which late releases are no-ops (never a double free). *)
      let returned = Pool.force_return_loans p in
      let late_release_safe =
        List.for_all
          (fun s ->
            Pool.release p s;
            true)
          !loaned
      in
      ok_mid
      && returned = List.length !loaned
      && Pool.outstanding_loans p = 0
      && late_release_safe
      && Pool.sanity p = None)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "xenloop.loans",
      [
        Alcotest.test_case "loaned delivery roundtrip" `Quick
          test_loaned_delivery_roundtrip;
        Alcotest.test_case "packet path loaned delivery" `Quick
          test_packet_path_loaned_delivery;
        Alcotest.test_case "view release is idempotent" `Quick
          test_view_release_idempotent;
        Alcotest.test_case "credit exhaustion degrades to copy-out" `Quick
          test_credit_exhaustion_transparent_copyout;
        Alcotest.test_case "loans-off world uses copy-out" `Quick
          test_loans_disabled_world_uses_copyout;
        Alcotest.test_case "teardown force-returns leaked loans" `Quick
          test_leak_force_return_on_teardown;
      ] );
    ("xenloop.loans.qcheck", qsuite [ prop_loan_release_safe ]);
  ]
