(* Timer-wheel tests: the calendar queue must reproduce the exact
   (time, seq) pop order of the binary heap it replaced — same-tick FIFO
   ordering, far-future overflow promotion, and cascade across the wheel
   window boundary — plus a property test checking a random workload pops
   in identical order on the wheel and on a reference model. *)

module W = Sim.Wheel

let window_ns = 8192 * 1024
(* slot_count * tick_ns: events beyond [cursor + window] overflow to the
   heap.  Mirrors the constants in wheel.ml; a geometry change that breaks
   this mirror fails the far-future tests loudly. *)

let drain w =
  let rec go acc =
    let c = W.pop w in
    if c == W.nil w then List.rev acc
    else go ((c.W.c_time, c.W.c_seq, c.W.c_value) :: acc)
  in
  go []

let insert_at w ~time ~seq v =
  let c = W.make_cell w v in
  c.W.c_time <- time;
  c.W.c_seq <- seq;
  W.insert w c;
  c

let test_same_tick_fifo () =
  let w = W.create ~dummy:(-1) in
  (* Ten events at one instant (necessarily one slot) pop in seq order. *)
  for i = 0 to 9 do
    ignore (insert_at w ~time:5_000 ~seq:i i)
  done;
  let order = List.map (fun (_, _, v) -> v) (drain w) in
  Alcotest.(check (list int)) "seq order within a tick" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] order

let test_same_tick_distinct_times () =
  let w = W.create ~dummy:(-1) in
  (* Distinct times within one 1.024us tick still pop by time first. *)
  ignore (insert_at w ~time:1_003 ~seq:0 0);
  ignore (insert_at w ~time:1_001 ~seq:1 1);
  ignore (insert_at w ~time:1_002 ~seq:2 2);
  let order = List.map (fun (t, _, _) -> t) (drain w) in
  Alcotest.(check (list int)) "time order within a tick" [ 1_001; 1_002; 1_003 ] order

let test_far_future_promotion () =
  let w = W.create ~dummy:(-1) in
  (* An event parked far beyond the wheel window must reach the heap and
     still pop, after everything nearer. *)
  ignore (insert_at w ~time:(100 * window_ns) ~seq:0 0);
  ignore (insert_at w ~time:500 ~seq:1 1);
  Alcotest.(check int) "both counted" 2 (W.length w);
  Alcotest.(check int) "peek sees the near one" 500 (W.next_time w);
  let order = List.map (fun (_, _, v) -> v) (drain w) in
  Alcotest.(check (list int)) "near then far" [ 1; 0 ] order;
  Alcotest.(check bool) "empty after drain" true (W.is_empty w)

let test_cascade_at_rollover () =
  let w = W.create ~dummy:(-1) in
  (* Events straddling the window boundary: some inside [0, window), some
     in the next window revolution (same slot indices, later times).  The
     wheel must not conflate them. *)
  let times =
    [ 100; window_ns - 1; window_ns; window_ns + 100; (2 * window_ns) + 5; 7 ]
  in
  List.iteri (fun i t -> ignore (insert_at w ~time:t ~seq:i i)) times;
  let popped = List.map (fun (t, _, _) -> t) (drain w) in
  let expect = List.sort compare times in
  Alcotest.(check (list int)) "global time order across rollover" expect popped

let test_remove () =
  let w = W.create ~dummy:(-1) in
  let near = insert_at w ~time:1_000 ~seq:0 0 in
  let mid = insert_at w ~time:1_000 ~seq:1 1 in
  let far = insert_at w ~time:(50 * window_ns) ~seq:2 2 in
  Alcotest.(check bool) "remove middle of slot" true (W.remove w mid);
  Alcotest.(check bool) "remove from overflow heap" true (W.remove w far);
  Alcotest.(check bool) "second remove is false" false (W.remove w mid);
  Alcotest.(check int) "one left" 1 (W.length w);
  ignore near;
  let order = List.map (fun (_, _, v) -> v) (drain w) in
  Alcotest.(check (list int)) "survivor pops" [ 0 ] order

let test_pop_before () =
  let w = W.create ~dummy:(-1) in
  ignore (insert_at w ~time:2_000 ~seq:0 0);
  ignore (insert_at w ~time:9_000 ~seq:1 1);
  let c = W.pop_before w 1_000 in
  Alcotest.(check bool) "nothing at or before 1us" true (c == W.nil w);
  let c = W.pop_before w 2_000 in
  Alcotest.(check int) "pops the 2us event" 0 c.W.c_value;
  let c = W.pop_before w 2_000 in
  Alcotest.(check bool) "declines the 9us event" true (c == W.nil w);
  (* Declining must leave the queue intact for a later bounded run. *)
  Alcotest.(check int) "still pending" 1 (W.length w);
  Alcotest.(check int) "peek unchanged" 9_000 (W.next_time w)

(* Property: a random workload pops in exactly the (time, seq) order of a
   reference model (stable sort by time — seq is the insertion index, so
   stability gives the tie-break).  Times are drawn across several wheel
   windows so slots, collisions, and the overflow heap are all hit. *)
let prop_wheel_matches_model =
  QCheck.Test.make ~count:100 ~name:"wheel pops in model order"
    QCheck.(list_of_size Gen.(int_range 0 200) (int_bound (3 * window_ns)))
    (fun times ->
      let w = W.create ~dummy:(-1) in
      List.iteri (fun i t -> ignore (insert_at w ~time:t ~seq:i i)) times;
      let popped = List.map (fun (t, s, _) -> (t, s)) (drain w) in
      let model =
        List.stable_sort
          (fun (t1, _) (t2, _) -> compare t1 t2)
          (List.mapi (fun i t -> (t, i)) times)
      in
      popped = model)

(* Property: interleaved insert/pop rounds with a monotonic clock (the
   engine's usage pattern: every insert is at or after the last popped
   time) still pop in global (time, seq) order. *)
let prop_wheel_interleaved =
  QCheck.Test.make ~count:100 ~name:"wheel interleaved rounds stay sorted"
    QCheck.(
      pair (int_bound 1_000_000)
        (list_of_size Gen.(int_range 1 20)
           (list_of_size Gen.(int_range 0 30) (int_bound (2 * window_ns)))))
    (fun (seed0, rounds) ->
      ignore seed0;
      let w = W.create ~dummy:(-1) in
      let seq = ref 0 in
      let now = ref 0 in
      let ok = ref true in
      let last = ref (-1, -1) in
      List.iter
        (fun offsets ->
          List.iter
            (fun off ->
              ignore (insert_at w ~time:(!now + off) ~seq:!seq !seq);
              incr seq)
            offsets;
          (* Pop half of what is pending, checking global order. *)
          for _ = 1 to W.length w / 2 do
            let c = W.pop w in
            let key = (c.W.c_time, c.W.c_seq) in
            if key < !last then ok := false;
            last := key;
            now := max !now c.W.c_time
          done)
        rounds;
      (* Drain the rest. *)
      let rec finish () =
        let c = W.pop w in
        if c != W.nil w then begin
          let key = (c.W.c_time, c.W.c_seq) in
          if key < !last then ok := false;
          last := key;
          finish ()
        end
      in
      finish ();
      !ok)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "sim.wheel",
      [
        Alcotest.test_case "same-tick fifo order" `Quick test_same_tick_fifo;
        Alcotest.test_case "same-tick distinct times" `Quick test_same_tick_distinct_times;
        Alcotest.test_case "far-future promotion" `Quick test_far_future_promotion;
        Alcotest.test_case "cascade at rollover" `Quick test_cascade_at_rollover;
        Alcotest.test_case "remove" `Quick test_remove;
        Alcotest.test_case "pop_before" `Quick test_pop_before;
      ]
      @ qsuite [ prop_wheel_matches_model; prop_wheel_interleaved ] );
  ]
