(* Tests for the simulation engine library. *)

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Time *)

let test_time_arithmetic () =
  let t = Sim.Time.add Sim.Time.zero (Sim.Time.us 5) in
  Alcotest.(check int64) "5us in ns" 5_000L (Sim.Time.instant_to_ns t);
  let t2 = Sim.Time.add t (Sim.Time.ms 1) in
  Alcotest.(check int64) "diff" 1_000_000L Sim.Time.(to_ns (diff t2 t))

let test_time_ordering () =
  let a = Sim.Time.add Sim.Time.zero (Sim.Time.ns 10) in
  let b = Sim.Time.add Sim.Time.zero (Sim.Time.ns 20) in
  Alcotest.(check bool) "a < b" true Sim.Time.(a < b);
  Alcotest.(check bool) "b > a" true Sim.Time.(b > a);
  Alcotest.(check bool) "a <= a" true Sim.Time.(a <= a);
  Alcotest.(check bool) "not b <= a" false Sim.Time.(b <= a)

let test_time_span_units () =
  Alcotest.(check int64) "1s" 1_000_000_000L (Sim.Time.to_ns (Sim.Time.sec 1));
  Alcotest.(check int64) "1ms" 1_000_000L (Sim.Time.to_ns (Sim.Time.ms 1));
  Alcotest.(check int64) "1us" 1_000L (Sim.Time.to_ns (Sim.Time.us 1));
  check_float "to_us_f" 2.5 (Sim.Time.to_us_f (Sim.Time.ns 2500));
  check_float "of_sec_f roundtrip" 1.5 (Sim.Time.to_sec_f (Sim.Time.of_sec_f 1.5))

let test_time_span_ops () =
  let a = Sim.Time.us 3 and b = Sim.Time.us 7 in
  Alcotest.(check int64) "add" 10_000L Sim.Time.(to_ns (span_add a b));
  Alcotest.(check int64) "sub" 4_000L Sim.Time.(to_ns (span_sub b a));
  Alcotest.(check int64) "scale" 21_000L Sim.Time.(to_ns (span_scale 3 b));
  Alcotest.(check int64) "max" 7_000L Sim.Time.(to_ns (span_max a b));
  Alcotest.(check bool) "positive" true (Sim.Time.span_is_positive a);
  Alcotest.(check bool) "zero not positive" false
    (Sim.Time.span_is_positive Sim.Time.span_zero);
  Alcotest.(check bool) "negative not positive" false
    (Sim.Time.span_is_positive (Sim.Time.span_sub a b))

let test_time_pp () =
  let str v = Format.asprintf "%a" Sim.Time.pp_span v in
  Alcotest.(check string) "ns" "500ns" (str (Sim.Time.ns 500));
  Alcotest.(check string) "us" "12.50us" (str (Sim.Time.of_us_f 12.5));
  Alcotest.(check string) "ms" "3.00ms" (str (Sim.Time.ms 3));
  Alcotest.(check string) "s" "2.000s" (str (Sim.Time.sec 2))

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_basic () =
  let h = Sim.Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Sim.Heap.is_empty h);
  Sim.Heap.push h 5;
  Sim.Heap.push h 1;
  Sim.Heap.push h 3;
  Alcotest.(check int) "length" 3 (Sim.Heap.length h);
  Alcotest.(check (option int)) "peek" (Some 1) (Sim.Heap.peek h);
  Alcotest.(check (option int)) "pop1" (Some 1) (Sim.Heap.pop h);
  Alcotest.(check (option int)) "pop2" (Some 3) (Sim.Heap.pop h);
  Alcotest.(check (option int)) "pop3" (Some 5) (Sim.Heap.pop h);
  Alcotest.(check (option int)) "pop empty" None (Sim.Heap.pop h)

let test_heap_pop_exn_empty () =
  let h = Sim.Heap.create ~cmp:compare in
  Alcotest.check_raises "pop_exn"
    (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Sim.Heap.pop_exn h))

let test_heap_clear () =
  let h = Sim.Heap.create ~cmp:compare in
  List.iter (Sim.Heap.push h) [ 4; 2; 9 ];
  Sim.Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Sim.Heap.length h);
  Sim.Heap.push h 7;
  Alcotest.(check (option int)) "usable after clear" (Some 7) (Sim.Heap.pop h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Sim.Heap.create ~cmp:compare in
      List.iter (Sim.Heap.push h) xs;
      let rec drain acc =
        match Sim.Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

let prop_heap_interleaved =
  QCheck.Test.make ~name:"heap handles interleaved push/pop" ~count:200
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let h = Sim.Heap.create ~cmp:compare in
      let model = ref [] in
      List.iter
        (fun (is_push, v) ->
          if is_push then begin
            Sim.Heap.push h v;
            model := List.sort compare (v :: !model)
          end
          else begin
            match (Sim.Heap.pop h, !model) with
            | None, [] -> ()
            | Some x, m :: rest when x = m -> model := rest
            | _ -> failwith "mismatch"
          end)
        ops;
      Sim.Heap.length h = List.length !model)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Sim.Rng.create ~seed:7 and b = Sim.Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Rng.int64 a) (Sim.Rng.int64 b)
  done

let test_rng_seed_matters () =
  let a = Sim.Rng.create ~seed:1 and b = Sim.Rng.create ~seed:2 in
  let same = ref true in
  for _ = 1 to 10 do
    if Sim.Rng.int64 a <> Sim.Rng.int64 b then same := false
  done;
  Alcotest.(check bool) "different seeds differ" false !same

let test_rng_bounds () =
  let r = Sim.Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Sim.Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let v = Sim.Rng.float r 2.5 in
    Alcotest.(check bool) "float in range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_invalid_bound () =
  let r = Sim.Rng.create ~seed:3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Sim.Rng.int r 0))

let test_rng_split_independent () =
  let parent = Sim.Rng.create ~seed:11 in
  let child = Sim.Rng.split parent in
  let xs = List.init 20 (fun _ -> Sim.Rng.int64 parent) in
  let ys = List.init 20 (fun _ -> Sim.Rng.int64 child) in
  Alcotest.(check bool) "streams differ" false (xs = ys)

let test_rng_exponential_mean () =
  let r = Sim.Rng.create ~seed:5 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let v = Sim.Rng.exponential r ~mean:10.0 in
    Alcotest.(check bool) "positive" true (v > 0.0);
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 10"
    true
    (mean > 9.0 && mean < 11.0)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_empty () =
  let s = Sim.Stats.create () in
  Alcotest.(check int) "count" 0 (Sim.Stats.count s);
  check_float "mean" 0.0 (Sim.Stats.mean s);
  Alcotest.check_raises "min empty" (Invalid_argument "Stats.min: empty")
    (fun () -> ignore (Sim.Stats.min s))

let test_stats_moments () =
  let s = Sim.Stats.create () in
  List.iter (Sim.Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_float "mean" 5.0 (Sim.Stats.mean s);
  check_float "stddev" 2.0 (Sim.Stats.stddev s);
  check_float "min" 2.0 (Sim.Stats.min s);
  check_float "max" 9.0 (Sim.Stats.max s);
  check_float "total" 40.0 (Sim.Stats.total s)

let test_stats_percentile () =
  let s = Sim.Stats.create () in
  for i = 1 to 100 do
    Sim.Stats.add s (float_of_int i)
  done;
  check_float "p0" 1.0 (Sim.Stats.percentile s 0.0);
  check_float "p100" 100.0 (Sim.Stats.percentile s 100.0);
  check_float "median" 50.5 (Sim.Stats.median s);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: p out of range")
    (fun () -> ignore (Sim.Stats.percentile s 101.0))

let prop_stats_mean_matches_naive =
  QCheck.Test.make ~name:"streaming mean matches naive mean" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_inclusive 1000.0))
    (fun xs ->
      let s = Sim.Stats.create () in
      List.iter (Sim.Stats.add s) xs;
      let naive = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      Float.abs (Sim.Stats.mean s -. naive) < 1e-6)

let prop_stats_minmax =
  QCheck.Test.make ~name:"stats min/max match folds" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_inclusive 1000.0))
    (fun xs ->
      let s = Sim.Stats.create () in
      List.iter (Sim.Stats.add s) xs;
      Sim.Stats.min s = List.fold_left Float.min infinity xs
      && Sim.Stats.max s = List.fold_left Float.max neg_infinity xs)

(* ------------------------------------------------------------------ *)
(* Series *)

let test_series_order () =
  let s = Sim.Series.create ~name:"t" in
  Sim.Series.record s ~x:1.0 ~y:10.0;
  Sim.Series.record s ~x:2.0 ~y:20.0;
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "insertion order"
    [ (1.0, 10.0); (2.0, 20.0) ]
    (Sim.Series.points s)

let test_series_bucketize () =
  let pts = [ (0.1, 1.0); (0.2, 1.0); (1.5, 1.0); (2.9, 4.0) ] in
  let buckets = Sim.Series.bucketize ~width:1.0 pts in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "buckets"
    [ (0.5, 2.0); (1.5, 1.0); (2.5, 4.0) ]
    buckets

let test_series_bucketize_invalid () =
  Alcotest.check_raises "width 0"
    (Invalid_argument "Series.bucketize: width must be positive")
    (fun () -> ignore (Sim.Series.bucketize ~width:0.0 []))

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table_render () =
  let t = Sim.Table.create ~title:"demo" ~columns:[ "a"; "bb" ] in
  Sim.Table.add_row t [ "1"; "2" ];
  let out = Format.asprintf "%a" Sim.Table.pp t in
  Alcotest.(check bool) "has title" true (Testutil.contains out "=== demo ===");
  Alcotest.(check bool) "has row" true (Testutil.contains out "1")

let test_table_row_mismatch () =
  let t = Sim.Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Table.add_row: row width mismatch")
    (fun () -> Sim.Table.add_row t [ "only-one" ])

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_clock_advances () =
  let e = Sim.Engine.create () in
  let seen = ref [] in
  Sim.Engine.spawn e (fun () ->
      Sim.Engine.sleep (Sim.Time.us 10);
      seen := Sim.Time.instant_to_ns (Sim.Engine.now e) :: !seen;
      Sim.Engine.sleep (Sim.Time.us 5);
      seen := Sim.Time.instant_to_ns (Sim.Engine.now e) :: !seen);
  Sim.Engine.run e;
  Alcotest.(check (list int64)) "timestamps" [ 15_000L; 10_000L ] !seen

let test_engine_event_order () =
  let e = Sim.Engine.create () in
  let order = ref [] in
  Sim.Engine.after e (Sim.Time.us 20) (fun () -> order := 2 :: !order);
  Sim.Engine.after e (Sim.Time.us 10) (fun () -> order := 1 :: !order);
  Sim.Engine.after e (Sim.Time.us 30) (fun () -> order := 3 :: !order);
  Sim.Engine.run e;
  Alcotest.(check (list int)) "order" [ 3; 2; 1 ] !order

let test_engine_fifo_ties () =
  (* Events at the same instant run in scheduling order. *)
  let e = Sim.Engine.create () in
  let order = ref [] in
  for i = 1 to 5 do
    Sim.Engine.spawn e (fun () -> order := i :: !order)
  done;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "fifo ties" [ 5; 4; 3; 2; 1 ] !order

let test_engine_run_until () =
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  Sim.Engine.after e (Sim.Time.ms 1) (fun () -> incr fired);
  Sim.Engine.after e (Sim.Time.ms 3) (fun () -> incr fired);
  Sim.Engine.run ~until:(Sim.Time.add Sim.Time.zero (Sim.Time.ms 2)) e;
  Alcotest.(check int) "only first fired" 1 !fired;
  Alcotest.(check int64) "clock at limit" 2_000_000L
    (Sim.Time.instant_to_ns (Sim.Engine.now e));
  (* Bounded runs compose: continue to 4ms. *)
  Sim.Engine.run ~until:(Sim.Time.add Sim.Time.zero (Sim.Time.ms 4)) e;
  Alcotest.(check int) "second fired" 2 !fired

let test_engine_at_past_rejected () =
  let e = Sim.Engine.create () in
  Sim.Engine.after e (Sim.Time.ms 1) (fun () ->
      Alcotest.check_raises "past" (Invalid_argument "Engine.at: instant in the past")
        (fun () -> Sim.Engine.at e Sim.Time.zero (fun () -> ())));
  Sim.Engine.run e

let test_engine_every () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  let timer = Sim.Engine.every e (Sim.Time.ms 1) (fun () -> incr count) in
  Sim.Engine.after e (Sim.Time.of_us_f 3500.0) (fun () -> Sim.Engine.cancel timer);
  Sim.Engine.run e;
  Alcotest.(check int) "fired 3 times" 3 !count

let test_engine_every_start () =
  let e = Sim.Engine.create () in
  let stamps = ref [] in
  let timer =
    Sim.Engine.every e ~start:Sim.Time.span_zero (Sim.Time.ms 1) (fun () ->
        stamps := Sim.Time.instant_to_ns (Sim.Engine.now e) :: !stamps)
  in
  Sim.Engine.after e (Sim.Time.of_us_f 2500.0) (fun () -> Sim.Engine.cancel timer);
  Sim.Engine.run e;
  Alcotest.(check (list int64)) "stamps" [ 2_000_000L; 1_000_000L; 0L ] !stamps

let test_engine_every_no_drift () =
  let e = Sim.Engine.create () in
  (* A periodic callback that consumes simulated time must not push its own
     schedule: firings rearm from the scheduled fire instant, not from the
     clock after the callback ran. *)
  let fires = ref [] in
  let timer =
    Sim.Engine.every e (Sim.Time.ms 1) (fun () ->
        fires := Sim.Time.instant_to_ns (Sim.Engine.now e) :: !fires;
        Sim.Engine.sleep (Sim.Time.us 300))
  in
  Sim.Engine.after e (Sim.Time.of_us_f 3500.0) (fun () -> Sim.Engine.cancel timer);
  Sim.Engine.run e;
  Alcotest.(check (list int64))
    "exact period multiples" [ 3_000_000L; 2_000_000L; 1_000_000L ] !fires

let test_engine_cancel_immediate () =
  let e = Sim.Engine.create () in
  let timer = Sim.Engine.every e (Sim.Time.ms 1) (fun () -> Alcotest.fail "fired") in
  Alcotest.(check int) "armed" 1 (Sim.Engine.pending_events e);
  Sim.Engine.cancel timer;
  (* The pending entry is gone now, not lazily skipped at fire time. *)
  Alcotest.(check int) "disarmed immediately" 0 (Sim.Engine.pending_events e);
  Sim.Engine.cancel timer;
  (* double-cancel is a no-op *)
  Sim.Engine.run e

let test_engine_cancel_in_own_callback () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  let tref = ref None in
  let timer =
    Sim.Engine.every e (Sim.Time.ms 1) (fun () ->
        incr count;
        if !count = 2 then Sim.Engine.cancel (Option.get !tref))
  in
  tref := Some timer;
  Sim.Engine.run ~until:(Sim.Time.add Sim.Time.zero (Sim.Time.ms 10)) e;
  Alcotest.(check int) "fired exactly twice" 2 !count

let test_engine_suspend_resume () =
  let e = Sim.Engine.create () in
  let resumer = ref (fun () -> ()) in
  let log = ref [] in
  Sim.Engine.spawn e (fun () ->
      log := "before" :: !log;
      Sim.Engine.suspend ~register:(fun resume -> resumer := resume);
      log := "after" :: !log);
  Sim.Engine.after e (Sim.Time.ms 2) (fun () -> !resumer ());
  Sim.Engine.run e;
  Alcotest.(check (list string)) "resumed" [ "after"; "before" ] !log;
  Alcotest.(check int64) "resumed at 2ms" 2_000_000L
    (Sim.Time.instant_to_ns (Sim.Engine.now e))

let test_engine_double_resume_rejected () =
  let e = Sim.Engine.create () in
  let resumer = ref (fun () -> ()) in
  Sim.Engine.spawn e (fun () ->
      Sim.Engine.suspend ~register:(fun resume -> resumer := resume));
  Sim.Engine.after e (Sim.Time.ms 1) (fun () ->
      !resumer ();
      Alcotest.check_raises "double resume"
        (Invalid_argument "Engine: suspended process resumed twice")
        (fun () -> !resumer ()));
  Sim.Engine.run e

let test_engine_negative_sleep_clamped () =
  let e = Sim.Engine.create () in
  let ok = ref false in
  Sim.Engine.spawn e (fun () ->
      Sim.Engine.sleep (Sim.Time.span_sub Sim.Time.span_zero (Sim.Time.us 5));
      ok := Sim.Time.equal (Sim.Engine.now e) Sim.Time.zero);
  Sim.Engine.run e;
  Alcotest.(check bool) "clock unchanged" true !ok

let test_engine_determinism () =
  let run_once () =
    let e = Sim.Engine.create ~seed:9 () in
    let log = ref [] in
    for i = 0 to 9 do
      Sim.Engine.after e
        (Sim.Time.us (Sim.Rng.int (Sim.Engine.rng e) 100))
        (fun () -> log := i :: !log)
    done;
    Sim.Engine.run e;
    !log
  in
  Alcotest.(check (list int)) "identical runs" (run_once ()) (run_once ())

let test_engine_pending_events () =
  let e = Sim.Engine.create () in
  Alcotest.(check int) "empty" 0 (Sim.Engine.pending_events e);
  Sim.Engine.after e (Sim.Time.ms 1) (fun () -> ());
  Sim.Engine.after e (Sim.Time.ms 2) (fun () -> ());
  Alcotest.(check int) "two pending" 2 (Sim.Engine.pending_events e);
  Alcotest.(check bool) "step" true (Sim.Engine.step e);
  Alcotest.(check int) "one left" 1 (Sim.Engine.pending_events e);
  Alcotest.(check bool) "step" true (Sim.Engine.step e);
  Alcotest.(check bool) "drained" false (Sim.Engine.step e)

let test_engine_spawn_inside_process () =
  let e = Sim.Engine.create () in
  let order = ref [] in
  Sim.Engine.spawn e (fun () ->
      order := "outer-start" :: !order;
      Sim.Engine.spawn e (fun () ->
          Sim.Engine.sleep (Sim.Time.us 5);
          order := "inner" :: !order);
      Sim.Engine.sleep (Sim.Time.us 10);
      order := "outer-end" :: !order);
  Sim.Engine.run e;
  Alcotest.(check (list string)) "interleaving" [ "outer-start"; "inner"; "outer-end" ]
    (List.rev !order)

let test_engine_nested_timers () =
  let e = Sim.Engine.create () in
  let fired = ref [] in
  Sim.Engine.after e (Sim.Time.ms 1) (fun () ->
      fired := "outer" :: !fired;
      Sim.Engine.after e (Sim.Time.ms 1) (fun () -> fired := "nested" :: !fired));
  Sim.Engine.run e;
  Alcotest.(check (list string)) "nested timer fired" [ "nested"; "outer" ] !fired;
  Alcotest.(check int64) "at 2ms" 2_000_000L (Sim.Time.instant_to_ns (Sim.Engine.now e))

(* ------------------------------------------------------------------ *)
(* Trace *)

let t0 = Sim.Time.zero
let t_us n = Sim.Time.add Sim.Time.zero (Sim.Time.us n)

let test_trace_enable_disable () =
  let tr = Sim.Trace.create () in
  Sim.Trace.emit tr Sim.Trace.Channel ~time:t0 "dropped";
  Alcotest.(check int) "disabled drops" 0 (Sim.Trace.count tr);
  Sim.Trace.enable tr Sim.Trace.Channel;
  Sim.Trace.emit tr Sim.Trace.Channel ~time:t0 "kept";
  Sim.Trace.emit tr Sim.Trace.Bootstrap ~time:t0 "still dropped";
  Alcotest.(check int) "only enabled kept" 1 (Sim.Trace.count tr);
  Sim.Trace.disable tr Sim.Trace.Channel;
  Sim.Trace.emit tr Sim.Trace.Channel ~time:t0 "dropped again";
  Alcotest.(check int) "disable works" 1 (Sim.Trace.count tr)

let test_trace_ring_overwrites () =
  let tr = Sim.Trace.create ~capacity:3 () in
  Sim.Trace.enable_all tr;
  for i = 1 to 5 do
    Sim.Trace.emit tr Sim.Trace.Channel ~time:(t_us i) (string_of_int i)
  done;
  Alcotest.(check int) "retains capacity" 3 (Sim.Trace.count tr);
  Alcotest.(check int) "counts all" 5 (Sim.Trace.total_emitted tr);
  Alcotest.(check (list string)) "oldest evicted" [ "3"; "4"; "5" ]
    (List.map (fun r -> r.Sim.Trace.message) (Sim.Trace.records tr))

let test_trace_emitf_lazy () =
  let tr = Sim.Trace.create () in
  (* Disabled category: format args must not be evaluated into a record. *)
  Sim.Trace.emitf tr Sim.Trace.Discovery ~time:t0 "guest %d" 7;
  Alcotest.(check int) "nothing recorded" 0 (Sim.Trace.count tr);
  Sim.Trace.enable tr Sim.Trace.Discovery;
  Sim.Trace.emitf tr Sim.Trace.Discovery ~time:t0 "guest %d" 7;
  Alcotest.(check (list string)) "formatted" [ "guest 7" ]
    (List.map (fun r -> r.Sim.Trace.message) (Sim.Trace.records tr));
  Sim.Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (Sim.Trace.count tr)

(* ------------------------------------------------------------------ *)
(* Resource *)

let test_resource_serializes () =
  let e = Sim.Engine.create () in
  let r = Sim.Resource.create ~name:"cpu" in
  let finish_times = ref [] in
  for _ = 1 to 3 do
    Sim.Engine.spawn e (fun () ->
        Sim.Resource.use r (Sim.Time.us 10);
        finish_times := Sim.Time.instant_to_ns (Sim.Engine.now e) :: !finish_times)
  done;
  Sim.Engine.run e;
  Alcotest.(check (list int64)) "serialized 10us apart" [ 30_000L; 20_000L; 10_000L ]
    !finish_times;
  Alcotest.(check int64) "busy time accumulated" 30_000L
    (Sim.Time.to_ns (Sim.Resource.busy_time r))

let test_resource_fifo_no_barging () =
  (* Strict handoff: a later acquirer can never overtake an earlier one,
     even when the release and the new acquire land at the same instant. *)
  let e = Sim.Engine.create () in
  let r = Sim.Resource.create ~name:"cpu" in
  let order = ref [] in
  for i = 1 to 5 do
    Sim.Engine.after e (Sim.Time.ns i) (fun () ->
        Sim.Resource.use r (Sim.Time.us 5);
        order := i :: !order)
  done;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "completion order = arrival order" [ 5; 4; 3; 2; 1 ]
    !order

let test_resource_release_unheld () =
  let r = Sim.Resource.create ~name:"cpu" in
  Alcotest.check_raises "release unheld" (Invalid_argument "Resource.release: not held")
    (fun () -> Sim.Resource.release r)

let test_resource_queue_length () =
  let e = Sim.Engine.create () in
  let r = Sim.Resource.create ~name:"cpu" in
  Sim.Engine.spawn e (fun () -> Sim.Resource.use r (Sim.Time.us 100));
  Sim.Engine.spawn e (fun () -> Sim.Resource.use r (Sim.Time.us 1));
  Sim.Engine.spawn e (fun () -> Sim.Resource.use r (Sim.Time.us 1));
  Sim.Engine.run ~until:(Sim.Time.add Sim.Time.zero (Sim.Time.us 50)) e;
  Alcotest.(check bool) "busy" true (Sim.Resource.is_busy r);
  Alcotest.(check int) "two waiting" 2 (Sim.Resource.queue_length r);
  Sim.Engine.run ~until:(Sim.Time.add Sim.Time.zero (Sim.Time.ms 1)) e;
  Alcotest.(check bool) "idle at the end" false (Sim.Resource.is_busy r)

(* ------------------------------------------------------------------ *)
(* Condition / Mailbox *)

let test_condition_signal_wakes_one () =
  let e = Sim.Engine.create () in
  let cond = Sim.Condition.create () in
  let woke = ref [] in
  for i = 1 to 3 do
    Sim.Engine.spawn e (fun () ->
        Sim.Condition.await cond;
        woke := i :: !woke)
  done;
  Sim.Engine.after e (Sim.Time.ms 1) (fun () -> Sim.Condition.signal cond);
  Sim.Engine.run e;
  Alcotest.(check (list int)) "only first woke" [ 1 ] !woke;
  Alcotest.(check int) "two still waiting" 2 (Sim.Condition.waiters cond)

let test_condition_broadcast_wakes_all () =
  let e = Sim.Engine.create () in
  let cond = Sim.Condition.create () in
  let woke = ref 0 in
  for _ = 1 to 4 do
    Sim.Engine.spawn e (fun () ->
        Sim.Condition.await cond;
        incr woke)
  done;
  Sim.Engine.after e (Sim.Time.ms 1) (fun () -> Sim.Condition.broadcast cond);
  Sim.Engine.run e;
  Alcotest.(check int) "all woke" 4 !woke;
  Alcotest.(check int) "queue empty" 0 (Sim.Condition.waiters cond)

let test_condition_signal_empty_noop () =
  let cond = Sim.Condition.create () in
  Sim.Condition.signal cond;
  Sim.Condition.broadcast cond;
  Alcotest.(check int) "no waiters" 0 (Sim.Condition.waiters cond)

let test_mailbox_fifo () =
  let e = Sim.Engine.create () in
  let mb = Sim.Mailbox.create () in
  let got = ref [] in
  Sim.Engine.spawn e (fun () ->
      for _ = 1 to 3 do
        got := Sim.Mailbox.recv mb :: !got
      done);
  Sim.Engine.after e (Sim.Time.ms 1) (fun () ->
      Sim.Mailbox.send mb "a";
      Sim.Mailbox.send mb "b";
      Sim.Mailbox.send mb "c");
  Sim.Engine.run e;
  Alcotest.(check (list string)) "fifo order" [ "c"; "b"; "a" ] !got

let test_mailbox_nonblocking () =
  let mb = Sim.Mailbox.create () in
  Alcotest.(check (option int)) "empty" None (Sim.Mailbox.recv_opt mb);
  Sim.Mailbox.send mb 42;
  Alcotest.(check int) "length" 1 (Sim.Mailbox.length mb);
  Alcotest.(check (option int)) "recv_opt" (Some 42) (Sim.Mailbox.recv_opt mb);
  Alcotest.(check bool) "empty again" true (Sim.Mailbox.is_empty mb)

let test_mailbox_blocks_until_send () =
  let e = Sim.Engine.create () in
  let mb = Sim.Mailbox.create () in
  let stamp = ref Sim.Time.zero in
  Sim.Engine.spawn e (fun () ->
      ignore (Sim.Mailbox.recv mb);
      stamp := Sim.Engine.now e);
  Sim.Engine.after e (Sim.Time.ms 5) (fun () -> Sim.Mailbox.send mb ());
  Sim.Engine.run e;
  Alcotest.(check int64) "received at 5ms" 5_000_000L (Sim.Time.instant_to_ns !stamp)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "sim.time",
      [
        Alcotest.test_case "arithmetic" `Quick test_time_arithmetic;
        Alcotest.test_case "ordering" `Quick test_time_ordering;
        Alcotest.test_case "span units" `Quick test_time_span_units;
        Alcotest.test_case "span ops" `Quick test_time_span_ops;
        Alcotest.test_case "pretty printing" `Quick test_time_pp;
      ] );
    ( "sim.heap",
      [
        Alcotest.test_case "basic operations" `Quick test_heap_basic;
        Alcotest.test_case "pop_exn on empty" `Quick test_heap_pop_exn_empty;
        Alcotest.test_case "clear" `Quick test_heap_clear;
      ]
      @ qsuite [ prop_heap_sorts; prop_heap_interleaved ] );
    ( "sim.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "seed matters" `Quick test_rng_seed_matters;
        Alcotest.test_case "bounds respected" `Quick test_rng_bounds;
        Alcotest.test_case "invalid bound" `Quick test_rng_invalid_bound;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
      ] );
    ( "sim.stats",
      [
        Alcotest.test_case "empty" `Quick test_stats_empty;
        Alcotest.test_case "moments" `Quick test_stats_moments;
        Alcotest.test_case "percentiles" `Quick test_stats_percentile;
      ]
      @ qsuite [ prop_stats_mean_matches_naive; prop_stats_minmax ] );
    ( "sim.series",
      [
        Alcotest.test_case "insertion order" `Quick test_series_order;
        Alcotest.test_case "bucketize" `Quick test_series_bucketize;
        Alcotest.test_case "bucketize invalid width" `Quick test_series_bucketize_invalid;
      ] );
    ( "sim.table",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "row width mismatch" `Quick test_table_row_mismatch;
      ] );
    ( "sim.engine",
      [
        Alcotest.test_case "clock advances with sleep" `Quick test_engine_clock_advances;
        Alcotest.test_case "events run in time order" `Quick test_engine_event_order;
        Alcotest.test_case "same-instant ties are FIFO" `Quick test_engine_fifo_ties;
        Alcotest.test_case "run ~until composes" `Quick test_engine_run_until;
        Alcotest.test_case "at rejects the past" `Quick test_engine_at_past_rejected;
        Alcotest.test_case "periodic timer" `Quick test_engine_every;
        Alcotest.test_case "periodic timer with start" `Quick test_engine_every_start;
        Alcotest.test_case "periodic timer does not drift" `Quick test_engine_every_no_drift;
        Alcotest.test_case "cancel disarms immediately" `Quick test_engine_cancel_immediate;
        Alcotest.test_case "cancel in own callback" `Quick test_engine_cancel_in_own_callback;
        Alcotest.test_case "suspend/resume" `Quick test_engine_suspend_resume;
        Alcotest.test_case "double resume rejected" `Quick test_engine_double_resume_rejected;
        Alcotest.test_case "negative sleep clamped" `Quick test_engine_negative_sleep_clamped;
        Alcotest.test_case "determinism across runs" `Quick test_engine_determinism;
        Alcotest.test_case "pending events / step" `Quick test_engine_pending_events;
        Alcotest.test_case "spawn inside process" `Quick test_engine_spawn_inside_process;
        Alcotest.test_case "nested timers" `Quick test_engine_nested_timers;
      ] );
    ( "sim.trace",
      [
        Alcotest.test_case "enable/disable" `Quick test_trace_enable_disable;
        Alcotest.test_case "bounded ring" `Quick test_trace_ring_overwrites;
        Alcotest.test_case "lazy formatting" `Quick test_trace_emitf_lazy;
      ] );
    ( "sim.resource",
      [
        Alcotest.test_case "serializes users" `Quick test_resource_serializes;
        Alcotest.test_case "strict FIFO, no barging" `Quick test_resource_fifo_no_barging;
        Alcotest.test_case "release unheld rejected" `Quick test_resource_release_unheld;
        Alcotest.test_case "queue length" `Quick test_resource_queue_length;
      ] );
    ( "sim.sync",
      [
        Alcotest.test_case "signal wakes one" `Quick test_condition_signal_wakes_one;
        Alcotest.test_case "broadcast wakes all" `Quick test_condition_broadcast_wakes_all;
        Alcotest.test_case "signal on empty is noop" `Quick test_condition_signal_empty_noop;
        Alcotest.test_case "mailbox fifo order" `Quick test_mailbox_fifo;
        Alcotest.test_case "mailbox non-blocking ops" `Quick test_mailbox_nonblocking;
        Alcotest.test_case "mailbox blocks until send" `Quick test_mailbox_blocks_until_send;
      ] );
  ]
