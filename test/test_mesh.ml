(* Tests for the cluster-scale control plane (DESIGN.md §12): versioned
   delta announcements with per-guest acks and suppression, version-gated
   legacy interop, the bounded channel state (per-guest cap, idle LRU,
   grant-balanced eviction, netfront fallback, re-establishment), and the
   parameterized mesh topology generator itself. *)

module Mesh = Scenarios.Mesh
module Setup = Scenarios.Setup
module Experiment = Scenarios.Experiment
module Endpoint = Scenarios.Endpoint
module Gm = Xenloop.Guest_module
module Discovery = Xenloop.Discovery
module Params = Hypervisor.Params
module Machine = Hypervisor.Machine
module Domain = Hypervisor.Domain
module Udp = Netstack.Udp

(* Control-plane timings compressed ~100x against the paper's 5 s scan so
   whole soft-state lifetimes fit in a quick test. *)
let ctl_params =
  {
    Params.default with
    Params.discovery_period = Sim.Time.ms 50;
    xenloop_softstate_ttl = Sim.Time.ms 400;
    xenloop_announce_refresh = Sim.Time.ms 100;
    xenloop_delta_announce = true;
  }

let with_mesh ?(params = ctl_params) ~guests ~hosts f =
  let t = Mesh.build ~params ~guests ~hosts () in
  Experiment.run_process t.Mesh.engine (fun () ->
      Mesh.warmup t;
      f t)

let guest t i = t.Mesh.guests.(i)
let module_of t i = (guest t i).Mesh.g_module
let domid t i = Domain.domid (guest t i).Mesh.g_domain

(* --- Delta announcements --- *)

let test_delta_epoch_acked () =
  with_mesh ~guests:4 ~hosts:1 (fun t ->
      let d = t.Mesh.hosts.(0).Mesh.h_discovery in
      let epoch = Discovery.current_epoch d in
      Alcotest.(check bool) "joins advanced the epoch" true (epoch >= 1);
      Array.iter
        (fun g ->
          let m = g.Mesh.g_module in
          Alcotest.(check int) "guest acked the current epoch" epoch
            (Gm.announce_epoch m);
          Alcotest.(check bool) "guest heard delta announcements" true
            ((Gm.stats m).Gm.delta_announces >= 1);
          Alcotest.(check int) "mapping holds all co-residents" 3
            (Gm.mapping_size m))
        t.Mesh.guests)

let test_delta_suppression_steady_state () =
  with_mesh ~guests:4 ~hosts:1 (fun t ->
      let d = t.Mesh.hosts.(0).Mesh.h_discovery in
      let bytes0 = Discovery.announce_bytes d in
      let supp0 = Discovery.announcements_suppressed d in
      for _ = 1 to 3 do
        Discovery.scan_now d;
        Sim.Engine.sleep (Sim.Time.ms 1)
      done;
      Alcotest.(check int) "no churn, no announce bytes" bytes0
        (Discovery.announce_bytes d);
      Alcotest.(check bool) "every up-to-date recipient was suppressed" true
        (Discovery.announcements_suppressed d - supp0 >= 3 * 4))

let test_delta_heartbeat_keeps_softstate () =
  with_mesh ~guests:3 ~hosts:1 (fun t ->
      let d = t.Mesh.hosts.(0).Mesh.h_discovery in
      (* Several whole soft-state lifetimes with zero churn: suppression
         must not starve the TTL — the refresh heartbeat keeps every
         mapping alive. *)
      Sim.Engine.sleep (Sim.Time.sec 2);
      Array.iter
        (fun g ->
          Alcotest.(check int) "mapping survived the silence" 2
            (Gm.mapping_size g.Mesh.g_module);
          Alcotest.(check int) "no soft-state evictions" 0
            (Gm.stats g.Mesh.g_module).Gm.softstate_evictions)
        t.Mesh.guests;
      Alcotest.(check bool) "steady state suppressed most rounds" true
        (Discovery.announcements_suppressed d > 0))

let test_delta_leave_propagates () =
  with_mesh ~guests:4 ~hosts:1 (fun t ->
      let h = t.Mesh.hosts.(0) in
      let d = h.Mesh.h_discovery in
      let e0 = Discovery.current_epoch d in
      Machine.shutdown_domain h.Mesh.h_machine (guest t 3).Mesh.g_domain;
      Discovery.scan_now d;
      Sim.Engine.sleep (Sim.Time.ms 2);
      let e1 = Discovery.current_epoch d in
      Alcotest.(check bool) "the leave bumped the epoch" true (e1 > e0);
      for i = 0 to 2 do
        Alcotest.(check int) "survivors applied the leave delta" 2
          (Gm.mapping_size (module_of t i));
        Alcotest.(check int) "survivors acked the new epoch" e1
          (Gm.announce_epoch (module_of t i))
      done)

(* Version gating: a Dom0 running delta announcements keeps feeding the
   classic full list to a guest whose module predates the protocol (no
   "dl" token in its advert), while delta-capable neighbours get epochs.
   The two kinds interoperate on one machine, channels included. *)
let test_legacy_guest_interop () =
  let engine = Sim.Engine.create () in
  let params = ctl_params in
  let legacy_params = { ctl_params with Params.xenloop_delta_announce = false } in
  let machine = Machine.create ~engine ~params ~id:0 () in
  let dom0 = Machine.dom0 machine in
  let bridge =
    Xennet.Bridge.create ~engine ~params ~cpu:(Domain.cpu dom0) ~name:"xenbr0"
  in
  let dom0_ep =
    Endpoint.make ~engine ~params ~cpu:(Domain.cpu dom0) ~name:"dom0"
      ~ip:(Domain.ip dom0) ~mac:(Domain.mac dom0)
  in
  Setup.attach_stack_to_bridge ~params ~bridge ~stack:dom0_ep.Endpoint.stack
    ~name:"dom0-vif";
  let discovery =
    Discovery.start ~machine ~dom0_stack:dom0_ep.Endpoint.stack ()
  in
  let make_guest ~params i =
    let name = Printf.sprintf "guest%d" i in
    let domain =
      Machine.create_domain machine ~name ~ip:(Netcore.Ip.make ~subnet:2 ~host:i)
    in
    let ep =
      Endpoint.make ~engine ~params ~cpu:(Domain.cpu domain) ~name
        ~ip:(Domain.ip domain) ~mac:(Domain.mac domain)
    in
    let _vif =
      Xennet.Vif.create ~machine ~guest:domain ~bridge ~stack:ep.Endpoint.stack ()
    in
    let m =
      Gm.create ~domain ~stack:ep.Endpoint.stack
        ~current_machine:(fun () -> machine)
        ()
    in
    (domain, ep, m)
  in
  let da, ea, ma = make_guest ~params 1 in
  let db, _eb, mb = make_guest ~params:legacy_params 2 in
  Experiment.run_process engine (fun () ->
      Discovery.scan_now discovery;
      Sim.Engine.sleep (Sim.Time.ms 2);
      let epoch = Discovery.current_epoch discovery in
      Alcotest.(check bool) "delta-capable guest rides the epochs" true
        (epoch >= 1 && Gm.announce_epoch ma = epoch);
      Alcotest.(check bool) "delta-capable guest got delta messages" true
        ((Gm.stats ma).Gm.delta_announces >= 1);
      Alcotest.(check int) "legacy guest never sees an epoch" 0
        (Gm.announce_epoch mb);
      Alcotest.(check int) "legacy guest got no delta messages" 0
        (Gm.stats mb).Gm.delta_announces;
      Alcotest.(check int) "legacy guest still maps its neighbour" 1
        (Gm.mapping_size mb);
      Alcotest.(check int) "delta guest maps the legacy one" 1
        (Gm.mapping_size ma);
      (* And the data plane is indifferent to the gating: a channel comes
         up between the two generations. *)
      (match
         Netstack.Stack.ping ea.Endpoint.stack ~dst:(Domain.ip db) ()
       with
      | Some _ -> ()
      | None -> Alcotest.fail "ping across generations failed");
      Sim.Engine.sleep (Sim.Time.ms 2);
      Alcotest.(check bool) "channel established across generations" true
        (Gm.has_channel_with ma ~domid:(Domain.domid db)
        && Gm.has_channel_with mb ~domid:(Domain.domid da)))

(* --- Bounded channel state: cap, LRU, grant balance, re-establishment --- *)

let evict_params =
  {
    ctl_params with
    Params.xenloop_channel_cap = 2;
    xenloop_evict_cooldown = Sim.Time.ms 5;
  }

let test_cap_evicts_lru () =
  with_mesh ~params:evict_params ~guests:4 ~hosts:1 (fun t ->
      Mesh.establish_all_pairs t;
      Sim.Engine.sleep (Sim.Time.ms 5);
      Array.iter
        (fun g ->
          Alcotest.(check bool) "per-guest cap holds after all-pairs churn"
            true
            (Gm.active_channel_count g.Mesh.g_module <= 2))
        t.Mesh.guests;
      Alcotest.(check bool) "the cap forced evictions" true
        (Mesh.channels_evicted t >= 1);
      (* Evicted pairs still talk — transparently, over netfront. *)
      Mesh.ping t ~src:0 ~dst:3)

let test_eviction_grant_balanced () =
  with_mesh ~params:evict_params ~guests:4 ~hosts:1 (fun t ->
      Mesh.establish_all_pairs t;
      Sim.Engine.sleep (Sim.Time.ms 5);
      Alcotest.(check bool) "channels granted pages" true
        (Mesh.grant_entries t > 0 && Mesh.channel_pool_bytes t > 0);
      (* Drain every module's channel set through the LRU evictor. *)
      Array.iter
        (fun g ->
          while Gm.evict_lru g.Mesh.g_module do
            ()
          done)
        t.Mesh.guests;
      Sim.Engine.sleep (Sim.Time.ms 2);
      Alcotest.(check int) "no live channels remain" 0 (Mesh.live_channels t);
      Alcotest.(check int) "grant tables balanced back to zero" 0
        (Mesh.grant_entries t);
      Alcotest.(check int) "channel memory pool fully released" 0
        (Mesh.channel_pool_bytes t))

let test_exactly_once_across_eviction () =
  with_mesh ~params:evict_params ~guests:2 ~hosts:1 (fun t ->
      Mesh.ping t ~src:0 ~dst:1;
      Sim.Engine.sleep (Sim.Time.ms 2);
      Alcotest.(check bool) "channel up before the stream" true
        (Gm.has_channel_with (module_of t 0) ~domid:(domid t 1));
      let server =
        match Udp.bind (guest t 1).Mesh.g_endpoint.Endpoint.udp ~port:7000 () with
        | Ok s -> s
        | Error _ -> Alcotest.fail "bind server"
      in
      let client =
        match Udp.bind (guest t 0).Mesh.g_endpoint.Endpoint.udp () with
        | Ok s -> s
        | Error _ -> Alcotest.fail "bind client"
      in
      let dst = Endpoint.ip (guest t 1).Mesh.g_endpoint in
      let send seq =
        Udp.sendto client ~dst ~dst_port:7000
          (Bytes.of_string (Printf.sprintf "%04d" seq))
      in
      for seq = 0 to 49 do
        send seq
      done;
      (* Shed the channel mid-stream: whatever is still in the FIFO must be
         flushed over netfront, once. *)
      Alcotest.(check bool) "evictor found the live channel" true
        (Gm.evict_lru (module_of t 0));
      for seq = 50 to 99 do
        send seq
      done;
      Sim.Engine.sleep (Sim.Time.ms 10);
      let seen = Hashtbl.create 128 in
      let rec drain n =
        match Udp.recv_opt server with
        | None -> n
        | Some (_, _, payload) ->
            let seq = int_of_string (Bytes.to_string payload) in
            Alcotest.(check bool)
              (Printf.sprintf "seq %d delivered once" seq)
              false (Hashtbl.mem seen seq);
            Hashtbl.replace seen seq ();
            drain (n + 1)
      in
      let n = drain 0 in
      Alcotest.(check int) "no datagram lost across the eviction" 100 n;
      Alcotest.(check int) "receive buffer never overflowed" 0
        (Udp.drops server))

let test_reestablish_after_cooldown () =
  with_mesh ~params:evict_params ~guests:2 ~hosts:1 (fun t ->
      let m0 = module_of t 0 in
      let peer = domid t 1 in
      Mesh.ping t ~src:0 ~dst:1;
      Sim.Engine.sleep (Sim.Time.ms 2);
      Alcotest.(check bool) "channel up" true (Gm.has_channel_with m0 ~domid:peer);
      Alcotest.(check bool) "evicted" true (Gm.evict_lru m0);
      Sim.Engine.sleep (Sim.Time.ms 1);
      (* Inside the cooldown traffic flows but must not re-bootstrap. *)
      Mesh.ping t ~src:0 ~dst:1;
      Sim.Engine.sleep (Sim.Time.ms 1);
      Alcotest.(check bool) "cooldown blocks re-establishment" false
        (Gm.has_channel_with m0 ~domid:peer);
      (* Past the cooldown the first packet re-bootstraps on demand. *)
      Sim.Engine.sleep (Sim.Time.ms 10);
      Mesh.ping t ~src:0 ~dst:1;
      Sim.Engine.sleep (Sim.Time.ms 5);
      Alcotest.(check bool) "channel re-established after cooldown" true
        (Gm.has_channel_with m0 ~domid:peer);
      Alcotest.(check bool) "second establishment counted" true
        ((Gm.stats m0).Gm.channels_established >= 2))

let test_idle_ttl_evicts () =
  let params =
    { ctl_params with Params.xenloop_channel_idle_ttl = Sim.Time.ms 10 }
  in
  with_mesh ~params ~guests:2 ~hosts:1 (fun t ->
      let m0 = module_of t 0 in
      let peer = domid t 1 in
      Mesh.ping t ~src:0 ~dst:1;
      Sim.Engine.sleep (Sim.Time.ms 2);
      Alcotest.(check bool) "channel up" true (Gm.has_channel_with m0 ~domid:peer);
      (* Long silence: the idle LRU reaps the channel, but the soft state —
         kept warm by announce heartbeats — survives. *)
      Sim.Engine.sleep (Sim.Time.ms 200);
      Alcotest.(check bool) "idle channel evicted" false
        (Gm.has_channel_with m0 ~domid:peer);
      Alcotest.(check bool) "eviction counted" true
        ((Gm.stats m0).Gm.channels_evicted >= 1
        || (Gm.stats (module_of t 1)).Gm.channels_evicted >= 1);
      Alcotest.(check int) "soft state intact" 1 (Gm.mapping_size m0))

(* --- The topology generator --- *)

let test_mesh_topology_shape () =
  with_mesh ~params:Params.default ~guests:12 ~hosts:3 (fun t ->
      Alcotest.(check int) "three hosts" 3 (Array.length t.Mesh.hosts);
      Alcotest.(check int) "twelve guests" 12 (Array.length t.Mesh.guests);
      Array.iter
        (fun g ->
          Alcotest.(check int)
            (Printf.sprintf "guest %d in its block" g.Mesh.g_index)
            (g.Mesh.g_index * 3 / 12)
            g.Mesh.g_host)
        t.Mesh.guests;
      Alcotest.(check bool) "block mates co-resident" true
        (Mesh.co_resident t 0 3);
      Alcotest.(check bool) "block boundary splits" false (Mesh.co_resident t 3 4);
      (* Warmed up: every guest maps exactly its three block mates. *)
      Array.iter
        (fun g ->
          Alcotest.(check int) "mapping = co-residents only" 3
            (Gm.mapping_size g.Mesh.g_module))
        t.Mesh.guests;
      (* Co-resident traffic raises a channel; cross-host traffic takes the
         wire and raises none. *)
      Mesh.ping t ~src:0 ~dst:1;
      Sim.Engine.sleep (Sim.Time.ms 2);
      Alcotest.(check bool) "co-resident pair on the fast path" true
        (Gm.has_channel_with (module_of t 0) ~domid:(domid t 1));
      Mesh.ping t ~src:3 ~dst:4;
      Alcotest.(check int) "cross-host pair stays on the wire" 0
        (Gm.live_channels (module_of t 4)))

let test_mesh_guest_ips_unique () =
  let seen = Hashtbl.create 1024 in
  for i = 0 to 599 do
    let ip = Mesh.guest_ip i in
    Alcotest.(check bool)
      (Printf.sprintf "guest %d ip fresh" i)
      false (Hashtbl.mem seen ip);
    Hashtbl.replace seen ip ()
  done

let suites =
  [
    ( "xenloop.delta",
      [
        Alcotest.test_case "epoch advances and guests ack" `Quick
          test_delta_epoch_acked;
        Alcotest.test_case "steady state is suppressed" `Quick
          test_delta_suppression_steady_state;
        Alcotest.test_case "heartbeat keeps soft state" `Quick
          test_delta_heartbeat_keeps_softstate;
        Alcotest.test_case "leave propagates as a delta" `Quick
          test_delta_leave_propagates;
        Alcotest.test_case "legacy guest interop (version gating)" `Quick
          test_legacy_guest_interop;
      ] );
    ( "xenloop.evict",
      [
        Alcotest.test_case "cap holds under all-pairs churn" `Quick
          test_cap_evicts_lru;
        Alcotest.test_case "eviction is grant-balanced" `Quick
          test_eviction_grant_balanced;
        Alcotest.test_case "exactly-once delivery across eviction" `Quick
          test_exactly_once_across_eviction;
        Alcotest.test_case "re-establishment after cooldown" `Quick
          test_reestablish_after_cooldown;
        Alcotest.test_case "idle TTL evicts, soft state survives" `Quick
          test_idle_ttl_evicts;
      ] );
    ( "xenloop.mesh",
      [
        Alcotest.test_case "topology shape and placement" `Quick
          test_mesh_topology_shape;
        Alcotest.test_case "guest addresses unique at scale" `Quick
          test_mesh_guest_ips_unique;
      ] );
  ]
