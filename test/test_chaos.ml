(* Chaos-harness tests: determinism of a seeded run, a quick soak subset,
   the sabotage self-test (a deliberately broken invariant must be
   caught), and direct exercises of the soft-state recovery paths the
   harness leans on — TTL eviction, bootstrap-retry exhaustion with
   cooldown, and the reactive discovery watch. *)

module Setup = Scenarios.Setup
module Experiment = Scenarios.Experiment
module Gm = Xenloop.Guest_module
module Discovery = Xenloop.Discovery
module Fault = Chaos.Fault
module Harness = Chaos.Harness
module Soak = Chaos.Soak
module Invariant = Chaos.Invariant

let storm scenario =
  List.filter_map
    (fun k ->
      if Harness.applicable scenario k then Some (Fault.default_spec k)
      else None)
    Fault.all

let modules_of duo =
  match duo.Setup.modules with
  | [ m1; m2 ] -> (m1, m2)
  | _ -> Alcotest.fail "expected two xenloop modules"

(* ------------------------------------------------------------------ *)
(* Determinism *)

let test_same_seed_same_digest () =
  let config =
    Harness.default_config ~seed:9 ~faults:(storm Harness.Xenloop_duo)
      Harness.Xenloop_duo
  in
  let v1, _ = Harness.run config in
  let v2, _ = Harness.run config in
  Alcotest.(check string) "digest" v1.Harness.v_log_digest v2.Harness.v_log_digest;
  Alcotest.(check int) "log length" v1.Harness.v_log_length v2.Harness.v_log_length;
  Alcotest.(check int) "injections" v1.Harness.v_total_injected
    v2.Harness.v_total_injected;
  Alcotest.(check (list (pair string int)))
    "per-kind counts" v1.Harness.v_faults v2.Harness.v_faults;
  Alcotest.(check int) "delivered" v1.Harness.v_delivered v2.Harness.v_delivered;
  Alcotest.(check bool) "clean" true (Harness.ok v1)

let test_different_seed_different_plan () =
  let run seed =
    let config =
      Harness.default_config ~seed ~faults:(storm Harness.Xenloop_duo)
        Harness.Xenloop_duo
    in
    fst (Harness.run config)
  in
  let v1 = run 1 and v2 = run 2 in
  Alcotest.(check bool) "digests differ" true
    (v1.Harness.v_log_digest <> v2.Harness.v_log_digest);
  Alcotest.(check bool) "both clean" true (Harness.ok v1 && Harness.ok v2)

(* ------------------------------------------------------------------ *)
(* Soak subset *)

let test_soak_subset_clean () =
  let cases =
    [
      {
        Soak.c_name = "xenloop-duo/baseline";
        c_scenario = Harness.Xenloop_duo;
        c_faults = [];
        c_loans = false;
        c_evictions = false;
        c_qos = false;
        c_gso = false;
      };
      {
        Soak.c_name = "xenloop-duo/storm";
        c_scenario = Harness.Xenloop_duo;
        c_faults = storm Harness.Xenloop_duo;
        c_loans = false;
        c_evictions = false;
        c_qos = false;
        c_gso = false;
      };
      {
        Soak.c_name = "cluster3/peer-crash";
        c_scenario = Harness.Cluster3;
        c_faults = [ Fault.default_spec Fault.Peer_crash ];
        c_loans = false;
        c_evictions = false;
        c_qos = false;
        c_gso = false;
      };
      {
        Soak.c_name = "migration-world/migrate-midstream";
        c_scenario = Harness.Migration_world;
        c_faults = [ Fault.default_spec Fault.Migrate_midstream ];
        c_loans = false;
        c_evictions = false;
        c_qos = false;
        c_gso = false;
      };
    ]
  in
  let s = Soak.run ~cases ~seed:42 ~iters:1 () in
  Alcotest.(check int) "runs" 4 s.Soak.s_runs;
  Alcotest.(check int) "lost" 0 s.Soak.s_lost;
  Alcotest.(check int) "duplicates" 0 s.Soak.s_duplicates;
  Alcotest.(check int) "violation runs" 0 s.Soak.s_violation_runs;
  Alcotest.(check int) "all delivered" s.Soak.s_sent s.Soak.s_delivered;
  Alcotest.(check bool) "faults actually fired" true (s.Soak.s_total_injected > 0);
  Alcotest.(check bool) "summary ok" true (Soak.ok s)

(* ------------------------------------------------------------------ *)
(* Loans-on chaos: leaked and slow-released borrows must not break
   exactly-once delivery, and a mid-window teardown must force-return
   every outstanding loan (zero outstanding at quiescence). *)

let test_loans_chaos_clean () =
  let faults =
    [
      Fault.default_spec Fault.Loan_leak;
      Fault.default_spec Fault.Slow_consumer;
      Fault.default_spec Fault.Suspend_resume;
    ]
  in
  let config =
    Harness.default_config ~seed:7 ~faults ~loans:true Harness.Xenloop_duo
  in
  let v, _ = Harness.run config in
  if not (Harness.ok v) then
    Alcotest.failf "loans-on chaos run violated: %s"
      (String.concat "; " v.Harness.v_violations);
  Alcotest.(check bool) "loan faults fired" true
    (List.mem_assoc "loan-leak" v.Harness.v_faults
    || List.mem_assoc "slow-consumer" v.Harness.v_faults);
  (* Determinism holds for loans-on runs too. *)
  let v2, _ = Harness.run config in
  Alcotest.(check string) "digest stable" v.Harness.v_log_digest
    v2.Harness.v_log_digest

let test_loans_soak_subset_clean () =
  let cases =
    List.filter
      (fun c -> c.Soak.c_scenario = Harness.Xenloop_duo)
      (Soak.loan_cases ())
  in
  Alcotest.(check bool) "duo loan cases exist" true (List.length cases >= 4);
  let s = Soak.run ~cases ~seed:42 ~iters:1 () in
  Alcotest.(check int) "violation runs" 0 s.Soak.s_violation_runs;
  Alcotest.(check int) "lost" 0 s.Soak.s_lost;
  Alcotest.(check int) "duplicates" 0 s.Soak.s_duplicates;
  Alcotest.(check bool) "summary ok" true (Soak.ok s)

(* ------------------------------------------------------------------ *)
(* QoS chaos: a misbehaving tenant flooding flat-out must not cost any
   victim flow a datagram (exactly-once holds) nor force a victim to
   spill to netfront (the harness checks per-flow overflow counters),
   and arming the new kind must not perturb any pre-QoS digest. *)

let test_qos_flood_clean () =
  let faults = [ Fault.default_spec Fault.Tenant_flood ] in
  let config =
    Harness.default_config ~seed:11 ~faults ~qos:true Harness.Xenloop_duo
  in
  let v, _ = Harness.run config in
  if not (Harness.ok v) then
    Alcotest.failf "qos flood run violated: %s"
      (String.concat "; " v.Harness.v_violations);
  Alcotest.(check bool) "flood actually fired" true
    (List.mem_assoc "tenant-flood" v.Harness.v_faults);
  Alcotest.(check int) "victims exactly-once: lost" 0 v.Harness.v_lost;
  Alcotest.(check int) "victims exactly-once: dups" 0 v.Harness.v_duplicates;
  (* Determinism holds for QoS worlds too. *)
  let v2, _ = Harness.run config in
  Alcotest.(check string) "digest stable" v.Harness.v_log_digest
    v2.Harness.v_log_digest

let test_qos_off_digest_unperturbed () =
  (* With QoS off, Tenant_flood is inert: arming it must reproduce the
     exact same run — the RNG split discipline means a new kind never
     reseeds the streams existing kinds consume. *)
  let base =
    Harness.default_config ~seed:23 ~faults:(storm Harness.Xenloop_duo)
      Harness.Xenloop_duo
  in
  let armed =
    {
      base with
      Harness.faults =
        base.Harness.faults @ [ Fault.default_spec Fault.Tenant_flood ];
    }
  in
  let v1, _ = Harness.run base in
  let v2, _ = Harness.run armed in
  Alcotest.(check string) "digest bit-for-bit" v1.Harness.v_log_digest
    v2.Harness.v_log_digest;
  Alcotest.(check int) "log length" v1.Harness.v_log_length
    v2.Harness.v_log_length;
  Alcotest.(check (list (pair string int)))
    "per-kind counts" v1.Harness.v_faults v2.Harness.v_faults

let test_qos_soak_subset_clean () =
  let cases =
    List.filter
      (fun c -> c.Soak.c_scenario = Harness.Xenloop_duo)
      (Soak.qos_cases ())
  in
  Alcotest.(check bool) "duo qos cases exist" true (List.length cases >= 4);
  let s = Soak.run ~cases ~seed:42 ~iters:1 () in
  Alcotest.(check int) "violation runs" 0 s.Soak.s_violation_runs;
  Alcotest.(check int) "lost" 0 s.Soak.s_lost;
  Alcotest.(check int) "duplicates" 0 s.Soak.s_duplicates;
  Alcotest.(check bool) "summary ok" true (Soak.ok s)

(* ------------------------------------------------------------------ *)
(* GSO chaos: corrupting a jumbo descriptor's scatter length vector must
   cost nothing — the receiver drops the frame loudly (accounted, never
   mis-delivered) and TCP retransmission repairs the bulk stream, which
   still lands byte-identical.  Arming the new kind must not perturb any
   pre-gso digest. *)

let test_gso_truncate_clean () =
  let faults = [ Fault.default_spec Fault.Jumbo_truncate ] in
  let config =
    Harness.default_config ~seed:13 ~faults ~gso:true Harness.Xenloop_duo
  in
  let v, _ = Harness.run config in
  if not (Harness.ok v) then
    Alcotest.failf "gso truncate run violated: %s"
      (String.concat "; " v.Harness.v_violations);
  Alcotest.(check bool) "truncations actually fired" true
    (List.mem_assoc "jumbo-truncate" v.Harness.v_faults);
  Alcotest.(check int) "exactly-once: lost" 0 v.Harness.v_lost;
  Alcotest.(check int) "exactly-once: dups" 0 v.Harness.v_duplicates;
  (* Determinism holds for gso worlds too. *)
  let v2, _ = Harness.run config in
  Alcotest.(check string) "digest stable" v.Harness.v_log_digest
    v2.Harness.v_log_digest

let test_gso_off_digest_unperturbed () =
  (* With gso off, Jumbo_truncate is inert: arming it must reproduce the
     exact same run — the RNG split discipline means a new kind never
     reseeds the streams existing kinds consume, and a gso-off world
     never pushes a jumbo descriptor for the injector to consult. *)
  let base =
    Harness.default_config ~seed:29 ~faults:(storm Harness.Xenloop_duo)
      Harness.Xenloop_duo
  in
  let armed =
    {
      base with
      Harness.faults =
        base.Harness.faults @ [ Fault.default_spec Fault.Jumbo_truncate ];
    }
  in
  let v1, _ = Harness.run base in
  let v2, _ = Harness.run armed in
  Alcotest.(check string) "digest bit-for-bit" v1.Harness.v_log_digest
    v2.Harness.v_log_digest;
  Alcotest.(check int) "log length" v1.Harness.v_log_length
    v2.Harness.v_log_length;
  Alcotest.(check (list (pair string int)))
    "per-kind counts" v1.Harness.v_faults v2.Harness.v_faults

let test_gso_soak_subset_clean () =
  let cases = Soak.gso_cases () in
  Alcotest.(check bool) "gso cases exist" true (List.length cases >= 4);
  let s = Soak.run ~cases ~seed:42 ~iters:1 () in
  Alcotest.(check int) "violation runs" 0 s.Soak.s_violation_runs;
  Alcotest.(check int) "lost" 0 s.Soak.s_lost;
  Alcotest.(check int) "duplicates" 0 s.Soak.s_duplicates;
  Alcotest.(check bool) "summary ok" true (Soak.ok s)

(* ------------------------------------------------------------------ *)
(* Sabotage: the checker must catch a deliberately broken invariant *)

let test_sabotage_detected () =
  let sabotage ctx =
    match ctx.Invariant.iv_machines with
    | (_, machine) :: _ ->
        (* Leak one frame to a guest: accounting stays conserved, but the
           final sweep requires every guest to have returned its memory. *)
        let frames = Hypervisor.Machine.frame_allocator machine in
        ignore (Memory.Frame_allocator.allocate frames ~owner:1)
    | [] -> Alcotest.fail "sabotage hook saw no machines"
  in
  let config = Harness.default_config ~seed:4242 Harness.Xenloop_duo in
  let v, _ = Harness.run ~sabotage config in
  Alcotest.(check bool) "verdict not ok" false (Harness.ok v);
  Alcotest.(check int) "failing seed reported" 4242 v.Harness.v_seed;
  Alcotest.(check bool) "frame leak named" true
    (List.exists
       (fun m ->
         let contains s sub =
           let n = String.length sub in
           let rec go i = i + n <= String.length s
             && (String.sub s i n = sub || go (i + 1)) in
           go 0
         in
         contains m "frame")
       v.Harness.v_violations);
  (* The very same config without the sabotage is clean. *)
  let clean, _ = Harness.run config in
  Alcotest.(check bool) "clean without sabotage" true (Harness.ok clean)

(* ------------------------------------------------------------------ *)
(* Soft-state recovery paths *)

let fast_params =
  {
    Hypervisor.Params.default with
    discovery_period = Sim.Time.ms 5;
    xenloop_softstate_ttl = Sim.Time.ms 40;
    xenloop_bootstrap_cooldown = Sim.Time.ms 800;
  }

let test_softstate_ttl_eviction () =
  let duo = Setup.build ~params:fast_params Setup.Xenloop_path in
  let m1, m2 = modules_of duo in
  let discovery = Option.get duo.Setup.discovery in
  Experiment.execute duo (fun () ->
      Alcotest.(check bool) "channel up after warmup" true
        (Gm.has_channel_with m1 ~domid:2);
      (* Starve both guests of announcements: every mapping entry must
         age out within the TTL and take its channel down with it. *)
      Discovery.set_announce_fault discovery (Some (fun ~domid:_ -> true));
      Sim.Engine.sleep (Sim.Time.ms 100);
      Alcotest.(check bool) "client evicted peer" true
        ((Gm.stats m1).Gm.softstate_evictions > 0);
      Alcotest.(check bool) "server evicted peer" true
        ((Gm.stats m2).Gm.softstate_evictions > 0);
      Alcotest.(check bool) "channel torn down" false
        (Gm.has_channel_with m1 ~domid:2);
      Alcotest.(check int) "mapping empty" 0 (Gm.mapping_size m1);
      (* Announcements resume: the mapping refills and traffic pulls the
         channel back up. *)
      Discovery.set_announce_fault discovery None;
      Sim.Engine.sleep (Sim.Time.ms 15);
      Alcotest.(check bool) "mapping repopulated" true (Gm.mapping_size m1 > 0);
      let server_sock =
        match Netstack.Udp.bind duo.Setup.server.Scenarios.Endpoint.udp ~port:921 () with
        | Ok s -> s
        | Error _ -> Alcotest.fail "bind"
      in
      let client_sock =
        match Netstack.Udp.bind duo.Setup.client.Scenarios.Endpoint.udp () with
        | Ok s -> s
        | Error _ -> Alcotest.fail "bind"
      in
      Netstack.Udp.sendto client_sock ~dst:duo.Setup.server_ip ~dst_port:921
        (Bytes.make 64 'r');
      let _, _, got = Netstack.Udp.recvfrom server_sock in
      Alcotest.(check int) "datagram survived the outage" 64 (Bytes.length got);
      Sim.Engine.sleep (Sim.Time.ms 20);
      Alcotest.(check bool) "channel re-established" true
        (Gm.has_channel_with m1 ~domid:2))

let test_bootstrap_exhaustion_and_cooldown () =
  let duo = Setup.build ~params:fast_params Setup.Xenloop_path in
  let m1, m2 = modules_of duo in
  let discovery = Option.get duo.Setup.discovery in
  Experiment.execute ~limit:(Sim.Time.sec 60) duo (fun () ->
      (* Tear the warmed-up channel down via soft-state expiry, then make
         every re-bootstrap control message vanish. *)
      Discovery.set_announce_fault discovery (Some (fun ~domid:_ -> true));
      Sim.Engine.sleep (Sim.Time.ms 100);
      Alcotest.(check bool) "channel torn down" false
        (Gm.has_channel_with m1 ~domid:2);
      Gm.set_ctrl_fault_injector m1 (Some (fun _ -> Gm.Ctrl_drop));
      Gm.set_ctrl_fault_injector m2 (Some (fun _ -> Gm.Ctrl_drop));
      Discovery.set_announce_fault discovery None;
      Sim.Engine.sleep (Sim.Time.ms 15);
      let server_sock =
        match Netstack.Udp.bind duo.Setup.server.Scenarios.Endpoint.udp ~port:922 () with
        | Ok s -> s
        | Error _ -> Alcotest.fail "bind"
      in
      let client_sock =
        match Netstack.Udp.bind duo.Setup.client.Scenarios.Endpoint.udp () with
        | Ok s -> s
        | Error _ -> Alcotest.fail "bind"
      in
      (* The first datagram kicks off the doomed bootstrap — and must
         still arrive via netfront while the handshake flounders. *)
      Netstack.Udp.sendto client_sock ~dst:duo.Setup.server_ip ~dst_port:922
        (Bytes.make 64 'x');
      let _, _, got = Netstack.Udp.recvfrom server_sock in
      Alcotest.(check int) "netfront carried the datagram" 64 (Bytes.length got);
      (* Let the Create retries exhaust (3 retries x 500 ms ack timeout). *)
      Sim.Engine.sleep (Sim.Time.sec 3);
      Alcotest.(check bool) "bootstrap failure counted" true
        ((Gm.stats m1).Gm.bootstrap_failures >= 1);
      Alcotest.(check (list int)) "peer in cooldown" [ 2 ] (Gm.failed_peer_ids m1);
      Alcotest.(check bool) "still no channel" false
        (Gm.has_channel_with m1 ~domid:2);
      (* Heal the control plane; after the cooldown the next packet may
         bootstrap again and the fast path returns. *)
      Gm.set_ctrl_fault_injector m1 None;
      Gm.set_ctrl_fault_injector m2 None;
      Sim.Engine.sleep fast_params.Hypervisor.Params.xenloop_bootstrap_cooldown;
      let deadline = Sim.Time.add (Sim.Engine.now duo.Setup.engine) (Sim.Time.sec 10) in
      let rec stir () =
        if Gm.has_channel_with m1 ~domid:2 then ()
        else if Sim.Time.(Sim.Engine.now duo.Setup.engine >= deadline) then
          Alcotest.fail "channel never recovered after cooldown"
        else begin
          Netstack.Udp.sendto client_sock ~dst:duo.Setup.server_ip ~dst_port:922
            (Bytes.make 32 's');
          Sim.Engine.sleep (Sim.Time.ms 50);
          stir ()
        end
      in
      stir ();
      Alcotest.(check bool) "cooldown cleared" true (Gm.failed_peer_ids m1 = []))

let test_reactive_discovery_watch () =
  (* With the paper's 5 s discovery period, only the XenStore watch can
     explain Dom0 noticing a withdrawn advertisement within a
     millisecond. *)
  let duo = Setup.build Setup.Xenloop_path in
  let _, m2 = modules_of duo in
  let discovery = Option.get duo.Setup.discovery in
  Experiment.execute duo (fun () ->
      Alcotest.(check int) "both guests willing" 2
        (List.length (Discovery.willing_guests discovery));
      Gm.unload m2;
      Sim.Engine.sleep (Sim.Time.ms 1);
      Alcotest.(check int) "withdrawal noticed without a period" 1
        (List.length (Discovery.willing_guests discovery)))

let suites =
  [
    ( "chaos.harness",
      [
        Alcotest.test_case "same seed, same digest" `Quick test_same_seed_same_digest;
        Alcotest.test_case "different seed, different plan" `Quick
          test_different_seed_different_plan;
        Alcotest.test_case "soak subset is clean" `Quick test_soak_subset_clean;
        Alcotest.test_case "loans-on chaos run is clean" `Quick
          test_loans_chaos_clean;
        Alcotest.test_case "loans-on soak subset is clean" `Quick
          test_loans_soak_subset_clean;
        Alcotest.test_case "qos tenant-flood run is clean" `Quick
          test_qos_flood_clean;
        Alcotest.test_case "qos-off digest unperturbed by new kind" `Quick
          test_qos_off_digest_unperturbed;
        Alcotest.test_case "qos soak subset is clean" `Quick
          test_qos_soak_subset_clean;
        Alcotest.test_case "gso truncate run is clean" `Quick
          test_gso_truncate_clean;
        Alcotest.test_case "gso-off digest unperturbed by new kind" `Quick
          test_gso_off_digest_unperturbed;
        Alcotest.test_case "gso soak subset is clean" `Quick
          test_gso_soak_subset_clean;
        Alcotest.test_case "sabotage is detected" `Quick test_sabotage_detected;
      ] );
    ( "chaos.softstate",
      [
        Alcotest.test_case "ttl eviction and recovery" `Quick
          test_softstate_ttl_eviction;
        Alcotest.test_case "bootstrap exhaustion and cooldown" `Quick
          test_bootstrap_exhaustion_and_cooldown;
        Alcotest.test_case "reactive discovery watch" `Quick
          test_reactive_discovery_watch;
      ] );
  ]
