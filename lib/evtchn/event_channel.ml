type domid = int
type port = int

type error = Bad_port | Already_bound | Not_bound

let pp_error fmt = function
  | Bad_port -> Format.pp_print_string fmt "bad event channel port"
  | Already_bound -> Format.pp_print_string fmt "port already bound"
  | Not_bound -> Format.pp_print_string fmt "port not bound"

type endpoint = {
  ep_dom : domid;
  ep_port : port;
  mutable state : state;
  mutable pending : bool;
  mutable masked : bool;
  mutable handler : (unit -> unit) option;
}

and state =
  | Unbound of domid  (** waiting for this remote domain to bind *)
  | Bound of endpoint  (** the peer endpoint *)
  | Closed

type notify_fault = Notify_deliver | Notify_drop | Notify_delay of Sim.Time.span

type t = {
  engine : Sim.Engine.t;
  delivery_latency : unit -> Sim.Time.span;
  endpoints : (domid * port, endpoint) Hashtbl.t;
  next_port : (domid, int) Hashtbl.t;
  mutable fault_injector : (dom:domid -> port:port -> notify_fault) option;
  mutable notify_faults : int;
}

let create ~engine ~delivery_latency =
  {
    engine;
    delivery_latency;
    endpoints = Hashtbl.create 32;
    next_port = Hashtbl.create 8;
    fault_injector = None;
    notify_faults = 0;
  }

let set_fault_injector t f = t.fault_injector <- f
let notify_faults t = t.notify_faults

let fresh_port t dom =
  let p = Option.value ~default:1 (Hashtbl.find_opt t.next_port dom) in
  Hashtbl.replace t.next_port dom (p + 1);
  p

let make_endpoint t ~dom ~state =
  let p = fresh_port t dom in
  let ep =
    { ep_dom = dom; ep_port = p; state; pending = false; masked = false; handler = None }
  in
  Hashtbl.replace t.endpoints (dom, p) ep;
  ep

let alloc_unbound t ~dom ~remote =
  let ep = make_endpoint t ~dom ~state:(Unbound remote) in
  ep.ep_port

let find t ~dom ~port = Hashtbl.find_opt t.endpoints (dom, port)

let bind_interdomain t ~dom ~remote ~remote_port =
  match find t ~dom:remote ~port:remote_port with
  | None -> Error Bad_port
  | Some remote_ep -> (
      match remote_ep.state with
      | Closed -> Error Bad_port
      | Bound _ -> Error Already_bound
      | Unbound expected when expected <> dom -> Error Bad_port
      | Unbound _ ->
          let local_ep = make_endpoint t ~dom ~state:(Bound remote_ep) in
          remote_ep.state <- Bound local_ep;
          Ok local_ep.ep_port)

let set_handler t ~dom ~port f =
  match find t ~dom ~port with
  | None -> invalid_arg "Event_channel.set_handler: bad port"
  | Some ep -> ep.handler <- Some f

let deliver ?(extra = Sim.Time.span_zero) t ep =
  (* Level-triggered with coalescing: a delivery in flight is represented by
     the pending bit; it is cleared just before the handler runs so that
     events arriving during the handler schedule a fresh delivery. *)
  Sim.Engine.after t.engine
    (Sim.Time.span_add (t.delivery_latency ()) extra)
    (fun () ->
      if ep.pending && not ep.masked then begin
        ep.pending <- false;
        match ep.handler with None -> () | Some f -> f ()
      end)

let notify t ~dom ~port ~meter =
  Memory.Cost_meter.record meter (Memory.Cost_meter.Hypercall "evtchn_send");
  Memory.Cost_meter.record meter Memory.Cost_meter.Event_notify;
  match find t ~dom ~port with
  | None -> Error Bad_port
  | Some ep -> (
      match ep.state with
      | Closed -> Error Bad_port
      | Unbound _ -> Error Not_bound
      | Bound peer_ep -> (
          let fault =
            match t.fault_injector with
            | None -> Notify_deliver
            | Some f -> f ~dom ~port
          in
          match fault with
          | Notify_drop ->
              (* The hypercall happens (already metered) but the virtual IRQ
                 never reaches the peer — a lost doorbell.  The peer's
                 pending bit stays clear, so a later successful notify on
                 the same port recovers everything still in the ring. *)
              t.notify_faults <- t.notify_faults + 1;
              Ok ()
          | Notify_deliver | Notify_delay _ ->
              let extra =
                match fault with
                | Notify_delay d ->
                    t.notify_faults <- t.notify_faults + 1;
                    d
                | _ -> Sim.Time.span_zero
              in
              if not peer_ep.pending then begin
                peer_ep.pending <- true;
                if not peer_ep.masked then deliver ~extra t peer_ep
              end;
              Ok ()))

let mask t ~dom ~port =
  match find t ~dom ~port with None -> () | Some ep -> ep.masked <- true

let unmask t ~dom ~port =
  match find t ~dom ~port with
  | None -> ()
  | Some ep ->
      if ep.masked then begin
        ep.masked <- false;
        if ep.pending then deliver t ep
      end

let is_pending t ~dom ~port =
  match find t ~dom ~port with None -> false | Some ep -> ep.pending

let close t ~dom ~port =
  match find t ~dom ~port with
  | None -> ()
  | Some ep ->
      (match ep.state with
      | Bound peer_ep ->
          peer_ep.state <- Closed;
          Hashtbl.remove t.endpoints (peer_ep.ep_dom, peer_ep.ep_port)
      | Unbound _ | Closed -> ());
      ep.state <- Closed;
      Hashtbl.remove t.endpoints (dom, port)

let peer t ~dom ~port =
  match find t ~dom ~port with
  | Some { state = Bound peer_ep; _ } -> Some (peer_ep.ep_dom, peer_ep.ep_port)
  | Some _ | None -> None

let active_channels t = Hashtbl.length t.endpoints
