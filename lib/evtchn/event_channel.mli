(** Xen-style inter-domain event channels.

    An event channel is a 1-bit notification mechanism between two domains.
    Notifications are level-triggered and coalesce: sending to a port whose
    pending bit is already set has no additional effect.  This matters for
    performance modelling — a fast producer batching packets into a FIFO
    pays for far fewer interrupt deliveries than packets sent.

    One {!t} models the event-channel subsystem of a single physical
    machine. *)

type t

type domid = int
type port = int

type error = Bad_port | Already_bound | Not_bound

val pp_error : Format.formatter -> error -> unit

val create :
  engine:Sim.Engine.t -> delivery_latency:(unit -> Sim.Time.span) -> t
(** [delivery_latency] is sampled at each delivery; it models virtual IRQ
    injection plus the wake-up delay before the target domain runs. *)

val alloc_unbound : t -> dom:domid -> remote:domid -> port
(** Allocate a port on [dom] that only [remote] may bind to. *)

val bind_interdomain :
  t -> dom:domid -> remote:domid -> remote_port:port -> (port, error) result
(** Bind a local port on [dom] to [remote]'s unbound port, completing the
    channel. *)

val set_handler : t -> dom:domid -> port:port -> (unit -> unit) -> unit
(** Register the callback run (in process context) when a notification is
    delivered to [port].  Replaces any previous handler. *)

val notify :
  t -> dom:domid -> port:port -> meter:Memory.Cost_meter.t -> (unit, error) result
(** Send an event through [dom]'s end of the channel.  Costs one hypercall
    (EVTCHNOP_send).  Sets the peer's pending bit; if the bit was clear and
    the peer is unmasked, schedules the peer's handler after the delivery
    latency. *)

val mask : t -> dom:domid -> port:port -> unit
val unmask : t -> dom:domid -> port:port -> unit
(** Unmasking a port with its pending bit set triggers delivery, as in
    Xen. *)

val is_pending : t -> dom:domid -> port:port -> bool

val close : t -> dom:domid -> port:port -> unit
(** Tear down both endpoints.  Subsequent operations return [Bad_port]. *)

val peer : t -> dom:domid -> port:port -> (domid * port) option
val active_channels : t -> int

(** {2 Fault injection}

    Hooks for the chaos harness (lib/chaos).  The injector is consulted on
    every {!notify} whose channel is bound; it may drop the virtual IRQ on
    the floor or delay its delivery.  Because channels are level-triggered
    and coalescing, a dropped doorbell is recovered by any later successful
    notify on the same port — exactly the property the harness checks. *)

type notify_fault =
  | Notify_deliver  (** normal delivery *)
  | Notify_drop  (** hypercall succeeds, IRQ never arrives *)
  | Notify_delay of Sim.Time.span  (** extra delivery latency *)

val set_fault_injector :
  t -> (dom:domid -> port:port -> notify_fault) option -> unit
(** [dom]/[port] identify the notifying end.  [None] removes the hook. *)

val notify_faults : t -> int
(** Notifications dropped or delayed by the injector since [create]. *)
