(** Parameterized N-guest x M-host mesh topology generator (DESIGN.md §12).

    One description — guest count, host count — builds the whole world:
    per host a Xen machine, its bridge, a Dom0 endpoint and a running
    {!Xenloop.Discovery}; per guest a domain, stack, vif and loaded
    {!Xenloop.Guest_module}; on a multi-host mesh one physical switch
    with an uplink NIC per host.  Guests are placed in contiguous blocks
    across hosts, so low-stride neighbour traffic is mostly co-resident.

    This is what the [mesh_sweep] bench section, the eviction tests, and
    the opt-in chaos eviction cases build on — the hand-wired duo /
    cluster3 worlds stay for the digest-pinned scenarios. *)

module Params = Hypervisor.Params
module Machine = Hypervisor.Machine
module Domain = Hypervisor.Domain
module Gm = Xenloop.Guest_module

type host = {
  h_index : int;
  h_machine : Machine.t;
  h_bridge : Xennet.Bridge.t;
  h_dom0 : Endpoint.t;
  h_discovery : Xenloop.Discovery.t;
}

type guest = {
  g_index : int;  (** global 0-based index across the whole mesh *)
  g_host : int;  (** index into [hosts] *)
  g_domain : Domain.t;
  g_endpoint : Endpoint.t;
  g_module : Gm.t;
}

type t = {
  engine : Sim.Engine.t;
  params : Params.t;
  switch : Physnet.Switch.t option;  (** [None] on a single-host mesh *)
  hosts : host array;
  guests : guest array;
}

val build :
  ?params:Params.t ->
  ?fifo_k:int ->
  ?queues:int ->
  ?zerocopy:bool ->
  ?loans:bool ->
  guests:int ->
  hosts:int ->
  unit ->
  t
(** Raises [Invalid_argument] unless 2 <= hosts <= guests (hosts >= 1). *)

val guest_ip : int -> Netcore.Ip.t
(** Address of the guest with the given global index: 10.2.x.y, unique
    far past one /24. *)

val scan_all : t -> unit
(** One synchronous discovery round on every host. *)

val prime_arp : t -> unit
(** Boot-time gratuitous ARP from every guest: warms every neighbour
    cache and the bridge/switch forwarding databases, so first-contact
    traffic does not pay an O(N) broadcast flood per destination. *)

val warmup : t -> unit
(** [prime_arp] and [scan_all] plus settle time: mapping tables
    populated, caches warm, no channels. *)

val co_resident : t -> int -> int -> bool
val ping : t -> src:int -> dst:int -> unit

val establish_ring : t -> degree:int -> unit
(** Guest i pings its next [degree] co-resident successors (mod N): the
    sparse traffic matrix — live channels per guest ~ degree. *)

val establish_all_pairs : t -> unit
(** Every co-resident pair pings once: the dense worst case.  Quadratic
    per host. *)

(** {1 Mesh-wide aggregates} (sums over all guests / hosts) *)

val live_channels : t -> int
val channel_pool_bytes : t -> int
val grant_entries : t -> int
val announce_bytes : t -> int
val announcements_sent : t -> int
val announcements_suppressed : t -> int
val channels_established : t -> int
val channels_evicted : t -> int
