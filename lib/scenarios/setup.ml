module Params = Hypervisor.Params
module Machine = Hypervisor.Machine
module Domain = Hypervisor.Domain

type kind = Inter_machine | Netfront_netback | Xenloop_path | Native_loopback

let kind_label = function
  | Inter_machine -> "inter-machine"
  | Netfront_netback -> "netfront/netback"
  | Xenloop_path -> "xenloop"
  | Native_loopback -> "native loopback"

let all_kinds = [ Inter_machine; Netfront_netback; Xenloop_path; Native_loopback ]

type duo = {
  engine : Sim.Engine.t;
  params : Params.t;
  client : Endpoint.t;
  server : Endpoint.t;
  server_ip : Netcore.Ip.t;
  label : string;
  warmup : unit -> unit;
  modules : Xenloop.Guest_module.t list;
  machine : Machine.t option;
  discovery : Xenloop.Discovery.t option;
}

let attach_stack_to_bridge ~params ~bridge ~stack ~name =
  let dev =
    Netstack.Netdevice.create ~name ~mtu:params.Params.nic_mtu
      ~mac:(Netstack.Stack.mac_addr stack) ()
  in
  Netstack.Stack.attach_device stack dev;
  let port =
    Xennet.Bridge.attach bridge ~name ~deliver:(fun batch ->
        List.iter (Netstack.Netdevice.receive dev) batch)
  in
  Netstack.Netdevice.set_transmit dev (fun packet ->
      Xennet.Bridge.inject bridge ~from:port [ packet ])

let ping_until_replied endpoint ~dst =
  (* ARP plus any path setup; a couple of tries is plenty. *)
  let rec go n =
    if n > 0 then begin
      match Netstack.Stack.ping endpoint.Endpoint.stack ~dst ~payload_len:8 () with
      | Some _ -> ()
      | None -> go (n - 1)
    end
  in
  go 5

(* --- Scenario 1: two native machines across the switch --- *)

let build_inter_machine ~params =
  let engine = Sim.Engine.create () in
  let switch = Physnet.Switch.create ~engine ~params in
  let make_host i name =
    let cpu = Sim.Resource.create ~name:(name ^ ".cpu") in
    let mac = Netcore.Mac.of_domid ~machine:i ~domid:0 in
    let ip = Netcore.Ip.make ~subnet:1 ~host:i in
    let ep = Endpoint.make ~engine ~params ~cpu ~name ~ip ~mac in
    let dev =
      Netstack.Netdevice.create ~name:"eth0" ~mtu:params.Params.nic_mtu
        ~gso_size:16384 ~mac ()
    in
    Netstack.Stack.attach_device ep.Endpoint.stack dev;
    let nic = Physnet.Nic.create ~engine ~params ~cpu ~switch ~mac ~name:(name ^ ".nic") in
    Physnet.Nic.attach_to_device nic dev;
    ep
  in
  let client = make_host 1 "host1" in
  let server = make_host 2 "host2" in
  {
    engine;
    params;
    client;
    server;
    server_ip = Endpoint.ip server;
    label = kind_label Inter_machine;
    warmup = (fun () -> ping_until_replied client ~dst:(Endpoint.ip server));
    modules = [];
    machine = None;
    discovery = None;
  }

(* --- Scenarios 2 and 3: two guests on one Xen machine --- *)

let build_xen_machine ~params ~with_xenloop ~fifo_k ~client_queues ~server_queues
    ~client_zerocopy ~server_zerocopy ~trace ~cpu_model =
  let engine = Sim.Engine.create () in
  let machine = Machine.create ~engine ~params ~id:0 ?cpu_model () in
  let dom0 = Machine.dom0 machine in
  let bridge =
    Xennet.Bridge.create ~engine ~params ~cpu:(Domain.cpu dom0) ~name:"xenbr0"
  in
  let dom0_ep =
    Endpoint.make ~engine ~params ~cpu:(Domain.cpu dom0) ~name:"dom0"
      ~ip:(Domain.ip dom0) ~mac:(Domain.mac dom0)
  in
  attach_stack_to_bridge ~params ~bridge ~stack:dom0_ep.Endpoint.stack ~name:"dom0-vif";
  let make_guest i =
    let name = Printf.sprintf "guest%d" i in
    let domain = Machine.create_domain machine ~name ~ip:(Netcore.Ip.make ~subnet:2 ~host:i) in
    let ep =
      Endpoint.make ~engine ~params ~cpu:(Domain.cpu domain) ~name
        ~ip:(Domain.ip domain) ~mac:(Domain.mac domain)
    in
    let _vif =
      Xennet.Vif.create ~machine ~guest:domain ~bridge ~stack:ep.Endpoint.stack ()
    in
    (domain, ep)
  in
  let _d1, client = make_guest 1 in
  let _d2, server = make_guest 2 in
  let modules, discovery =
    if with_xenloop then begin
      let m1 =
        Xenloop.Guest_module.create ~domain:_d1 ~stack:client.Endpoint.stack
          ~current_machine:(fun () -> machine)
          ?fifo_k ?max_queues:client_queues ?zerocopy:client_zerocopy ?trace ()
      in
      let m2 =
        Xenloop.Guest_module.create ~domain:_d2 ~stack:server.Endpoint.stack
          ~current_machine:(fun () -> machine)
          ?fifo_k ?max_queues:server_queues ?zerocopy:server_zerocopy ?trace ()
      in
      let discovery =
        Xenloop.Discovery.start ~machine ~dom0_stack:dom0_ep.Endpoint.stack ()
      in
      ([ m1; m2 ], Some discovery)
    end
    else ([], None)
  in
  let warmup () =
    (match discovery with
    | Some d -> Xenloop.Discovery.scan_now d
    | None -> ());
    Sim.Engine.sleep (Sim.Time.ms 1);
    (* First traffic rides netfront and, under XenLoop, triggers channel
       bootstrap; wait for the handshake, then confirm the fast path. *)
    ping_until_replied client ~dst:(Endpoint.ip server);
    Sim.Engine.sleep (Sim.Time.ms 5);
    ping_until_replied client ~dst:(Endpoint.ip server);
    Sim.Engine.sleep (Sim.Time.ms 1)
  in
  let kind = if with_xenloop then Xenloop_path else Netfront_netback in
  {
    engine;
    params;
    client;
    server;
    server_ip = Endpoint.ip server;
    label = kind_label kind;
    warmup;
    modules;
    machine = Some machine;
    discovery;
  }

(* --- Scenario 4: native loopback --- *)

let build_native_loopback ~params =
  let engine = Sim.Engine.create () in
  let cpu = Sim.Resource.create ~name:"host.cpu" in
  let mac = Netcore.Mac.of_domid ~machine:7 ~domid:0 in
  let ip = Netcore.Ip.make ~subnet:3 ~host:1 in
  let ep = Endpoint.make ~engine ~params ~cpu ~name:"host" ~ip ~mac in
  {
    engine;
    params;
    client = ep;
    server = ep;
    server_ip = ip;
    label = kind_label Native_loopback;
    warmup = (fun () -> ping_until_replied ep ~dst:ip);
    modules = [];
    machine = None;
    discovery = None;
  }

(* --- N-guest XenLoop cluster --- *)

type cluster = {
  c_engine : Sim.Engine.t;
  c_params : Params.t;
  c_machine : Machine.t;
  guests : (Domain.t * Endpoint.t * Xenloop.Guest_module.t) list;
  c_discovery : Xenloop.Discovery.t;
  c_warmup : unit -> unit;
}

let build_cluster ?(params = Params.default) ?fifo_k ?queues ?cpu_model ~guests:n () =
  if n < 2 then invalid_arg "Setup.build_cluster: need at least two guests";
  let engine = Sim.Engine.create () in
  let machine = Machine.create ~engine ~params ~id:0 ?cpu_model () in
  let dom0 = Machine.dom0 machine in
  let bridge =
    Xennet.Bridge.create ~engine ~params ~cpu:(Domain.cpu dom0) ~name:"xenbr0"
  in
  let dom0_ep =
    Endpoint.make ~engine ~params ~cpu:(Domain.cpu dom0) ~name:"dom0"
      ~ip:(Domain.ip dom0) ~mac:(Domain.mac dom0)
  in
  attach_stack_to_bridge ~params ~bridge ~stack:dom0_ep.Endpoint.stack ~name:"dom0-vif";
  let guests =
    List.init n (fun i ->
        let i = i + 1 in
        let name = Printf.sprintf "guest%d" i in
        let domain =
          Machine.create_domain machine ~name ~ip:(Netcore.Ip.make ~subnet:2 ~host:i)
        in
        let ep =
          Endpoint.make ~engine ~params ~cpu:(Domain.cpu domain) ~name
            ~ip:(Domain.ip domain) ~mac:(Domain.mac domain)
        in
        let _vif =
          Xennet.Vif.create ~machine ~guest:domain ~bridge ~stack:ep.Endpoint.stack ()
        in
        let xl =
          Xenloop.Guest_module.create ~domain ~stack:ep.Endpoint.stack
            ~current_machine:(fun () -> machine)
            ?fifo_k ?max_queues:queues ()
        in
        (domain, ep, xl))
  in
  let discovery =
    Xenloop.Discovery.start ~machine ~dom0_stack:dom0_ep.Endpoint.stack ()
  in
  let c_warmup () =
    Xenloop.Discovery.scan_now discovery;
    Sim.Engine.sleep (Sim.Time.ms 1);
    (* All-pairs traffic: each ping triggers one channel bootstrap. *)
    List.iteri
      (fun i (_, ep_i, _) ->
        List.iteri
          (fun j (_, ep_j, _) ->
            if i < j then
              ignore
                (Netstack.Stack.ping ep_i.Endpoint.stack
                   ~dst:(Netstack.Stack.ip_addr ep_j.Endpoint.stack)
                   ()))
          guests)
      guests;
    Sim.Engine.sleep (Sim.Time.ms 10)
  in
  { c_engine = engine; c_params = params; c_machine = machine; guests;
    c_discovery = discovery; c_warmup }

let build ?(params = Params.default) ?fifo_k ?client_queues ?server_queues
    ?client_zerocopy ?server_zerocopy ?trace ?cpu_model kind =
  match kind with
  | Inter_machine -> build_inter_machine ~params
  | Netfront_netback ->
      build_xen_machine ~params ~with_xenloop:false ~fifo_k:None ~client_queues:None
        ~server_queues:None ~client_zerocopy:None ~server_zerocopy:None ~trace
        ~cpu_model
  | Xenloop_path ->
      build_xen_machine ~params ~with_xenloop:true ~fifo_k ~client_queues
        ~server_queues ~client_zerocopy ~server_zerocopy ~trace ~cpu_model
  | Native_loopback -> build_native_loopback ~params
