(** Builders for the paper's four communication scenarios (Sect. 4):

    - {e inter-machine}: two native hosts across the 1 Gbps switch;
    - {e netfront/netback}: two guests on one Xen machine, standard path
      through the Dom0 software bridge;
    - {e XenLoop}: the same two guests with the XenLoop module loaded and
      the Dom0 discovery module running;
    - {e native loopback}: two processes on one non-virtualized host
      talking over the loopback interface. *)

type kind = Inter_machine | Netfront_netback | Xenloop_path | Native_loopback

val kind_label : kind -> string
val all_kinds : kind list

type duo = {
  engine : Sim.Engine.t;
  params : Hypervisor.Params.t;
  client : Endpoint.t;
  server : Endpoint.t;
  server_ip : Netcore.Ip.t;
  label : string;
  warmup : unit -> unit;
      (** Process context: resolves ARP, triggers discovery and XenLoop
          channel bootstrap, and waits for the fast path to engage, so
          measurements start from steady state (as the paper's benchmarks
          do after their first packets). *)
  modules : Xenloop.Guest_module.t list;
      (** Loaded XenLoop modules (empty outside the XenLoop scenario). *)
  machine : Hypervisor.Machine.t option;
      (** The shared machine for the two virtualized scenarios. *)
  discovery : Xenloop.Discovery.t option;
      (** The Dom0 discovery module (XenLoop scenario only) — exposed so
          the chaos harness can fault its announcements. *)
}

val build :
  ?params:Hypervisor.Params.t ->
  ?fifo_k:int ->
  ?client_queues:int ->
  ?server_queues:int ->
  ?client_zerocopy:bool ->
  ?server_zerocopy:bool ->
  ?trace:Sim.Trace.t ->
  ?cpu_model:Hypervisor.Machine.cpu_model ->
  kind ->
  duo
(** Fresh engine and world for the given scenario.  [fifo_k] only affects
    the XenLoop scenario (paper Fig. 5); [client_queues]/[server_queues]
    override each module's advertised queue count (default
    {!Hypervisor.Params.xenloop_queues}), letting tests exercise asymmetric
    negotiation; [client_zerocopy]/[server_zerocopy] override each module's
    zero-copy advertisement (default {!Hypervisor.Params.xenloop_zerocopy}),
    so tests can pit a zero-copy module against a copy-only peer; [trace] is
    handed to the XenLoop modules; [cpu_model]
    selects dedicated vCPUs (default) or the credit scheduler for the Xen
    scenarios. *)

(** {1 N-guest clusters}

    Discovery and the mapping table are inherently N-party (paper
    Sect. 3.2); a cluster scenario exercises pairwise channels among many
    co-resident guests. *)

type cluster = {
  c_engine : Sim.Engine.t;
  c_params : Hypervisor.Params.t;
  c_machine : Hypervisor.Machine.t;
  guests : (Hypervisor.Domain.t * Endpoint.t * Xenloop.Guest_module.t) list;
  c_discovery : Xenloop.Discovery.t;
  c_warmup : unit -> unit;
      (** Runs a discovery scan and all-pairs pings so every channel is
          established (process context). *)
}

val build_cluster :
  ?params:Hypervisor.Params.t ->
  ?fifo_k:int ->
  ?queues:int ->
  ?cpu_model:Hypervisor.Machine.cpu_model ->
  guests:int ->
  unit ->
  cluster

(** {1 Pieces reused by the migration world} *)

val attach_stack_to_bridge :
  params:Hypervisor.Params.t ->
  bridge:Xennet.Bridge.t ->
  stack:Netstack.Stack.t ->
  name:string ->
  unit
(** Plug a Dom0-resident stack straight into the software bridge (Dom0
    needs no netback for its own traffic). *)
