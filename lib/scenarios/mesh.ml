(* Parameterized N-guest x M-host mesh (DESIGN.md §12).

   The hand-wired worlds top out at a handful of guests; the cluster-scale
   control plane needs topologies two orders of magnitude larger, built
   from one description: how many guests, spread over how many hosts.
   Guests are placed in contiguous blocks (host h gets guests
   [h*N/M .. (h+1)*N/M)), so low-stride neighbour traffic is mostly
   co-resident — the regime XenLoop channels exist for — while any
   cross-host pair exercises the standard wire path untouched.

   A single-host mesh is exactly the [Setup.build_cluster] construction
   generalized; a multi-host mesh adds the [Migration_world] plumbing:
   one switch, one uplink NIC per host bridged into its xenbr. *)

module Params = Hypervisor.Params
module Machine = Hypervisor.Machine
module Domain = Hypervisor.Domain
module Gm = Xenloop.Guest_module

type host = {
  h_index : int;
  h_machine : Machine.t;
  h_bridge : Xennet.Bridge.t;
  h_dom0 : Endpoint.t;
  h_discovery : Xenloop.Discovery.t;
}

type guest = {
  g_index : int;  (** global 0-based index across the whole mesh *)
  g_host : int;  (** index into [hosts] *)
  g_domain : Domain.t;
  g_endpoint : Endpoint.t;
  g_module : Gm.t;
}

type t = {
  engine : Sim.Engine.t;
  params : Params.t;
  switch : Physnet.Switch.t option;  (** [None] on a single-host mesh *)
  hosts : host array;
  guests : guest array;
}

(* Globally unique guest addresses: 10.2.x.y over the flat L2, good for
   meshes far past the 254-host ceiling of one /24. *)
let guest_ip idx =
  let n = idx + 1 in
  Netcore.Ip.of_octets 10 2 (n lsr 8) (n land 0xff)

let make_host ~engine ~params ~switch ~index =
  (* Machine ids start at 1 so dom0 MACs never collide with the
     single-machine worlds' id 0. *)
  let id = index + 1 in
  let machine = Machine.create ~engine ~params ~id () in
  let dom0 = Machine.dom0 machine in
  let bridge =
    Xennet.Bridge.create ~engine ~params ~cpu:(Domain.cpu dom0)
      ~name:(Printf.sprintf "xenbr%d" id)
  in
  let dom0_ep =
    Endpoint.make ~engine ~params ~cpu:(Domain.cpu dom0)
      ~name:(Printf.sprintf "m%d.dom0" id)
      ~ip:(Domain.ip dom0) ~mac:(Domain.mac dom0)
  in
  Setup.attach_stack_to_bridge ~params ~bridge ~stack:dom0_ep.Endpoint.stack
    ~name:"dom0-vif";
  (match switch with
  | None -> ()
  | Some switch ->
      let nic =
        Physnet.Nic.create ~engine ~params ~cpu:(Domain.cpu dom0) ~switch
          ~mac:(Netcore.Mac.of_domid ~machine:id ~domid:999)
          ~name:(Printf.sprintf "m%d.uplink" id)
      in
      let uplink_port = ref None in
      let port =
        Xennet.Bridge.attach bridge ~name:"uplink" ~deliver:(fun batch ->
            List.iter (Physnet.Nic.send nic) batch)
      in
      uplink_port := Some port;
      Physnet.Nic.set_receiver nic (fun packet ->
          match !uplink_port with
          | Some p -> Xennet.Bridge.inject bridge ~from:p [ packet ]
          | None -> ()));
  let discovery =
    Xenloop.Discovery.start ~machine ~dom0_stack:dom0_ep.Endpoint.stack ()
  in
  { h_index = index; h_machine = machine; h_bridge = bridge; h_dom0 = dom0_ep;
    h_discovery = discovery }

let host_of_guest ~guests ~hosts idx = idx * hosts / guests

let build ?(params = Params.default) ?fifo_k ?queues ?zerocopy ?loans
    ~guests:n ~hosts:m () =
  if n < 2 then invalid_arg "Mesh.build: need at least two guests";
  if m < 1 then invalid_arg "Mesh.build: need at least one host";
  if m > n then invalid_arg "Mesh.build: more hosts than guests";
  let engine = Sim.Engine.create () in
  let switch =
    if m = 1 then None else Some (Physnet.Switch.create ~engine ~params)
  in
  let hosts = Array.init m (fun index -> make_host ~engine ~params ~switch ~index) in
  let guests =
    Array.init n (fun idx ->
        let hi = host_of_guest ~guests:n ~hosts:m idx in
        let host = hosts.(hi) in
        let name = Printf.sprintf "g%d" (idx + 1) in
        let domain =
          Machine.create_domain host.h_machine ~name ~ip:(guest_ip idx)
        in
        let ep =
          Endpoint.make ~engine ~params ~cpu:(Domain.cpu domain) ~name
            ~ip:(Domain.ip domain) ~mac:(Domain.mac domain)
        in
        let _vif =
          Xennet.Vif.create ~machine:host.h_machine ~guest:domain
            ~bridge:host.h_bridge ~stack:ep.Endpoint.stack ()
        in
        let g_module =
          Gm.create ~domain ~stack:ep.Endpoint.stack
            ~current_machine:(fun () -> host.h_machine)
            ?fifo_k ?max_queues:queues ?zerocopy ?loans ()
        in
        { g_index = idx; g_host = hi; g_domain = domain; g_endpoint = ep;
          g_module })
  in
  { engine; params; switch; hosts; guests }

let scan_all t =
  Array.iter (fun h -> Xenloop.Discovery.scan_now h.h_discovery) t.hosts

(* One discovery round plus settle time: every guest's mapping table holds
   its co-residents, no channels yet. *)
(* Boot-time gratuitous ARP from every guest — every stack gleans the
   sender from any ARP message, and the bridges and switch learn the
   source port — so later traffic starts with warm neighbour caches and
   forwarding databases.  Without this, each first contact floods a
   broadcast across all N vifs, and at cluster scale those O(N) floods
   drown the channel bring-up being measured. *)
let prime_arp t =
  Array.iter
    (fun g -> Netstack.Stack.gratuitous_arp g.g_endpoint.Endpoint.stack)
    t.guests

let warmup t =
  prime_arp t;
  scan_all t;
  Sim.Engine.sleep (Sim.Time.ms 1)

let co_resident t a b = t.guests.(a).g_host = t.guests.(b).g_host

let ping t ~src ~dst =
  ignore
    (Netstack.Stack.ping t.guests.(src).g_endpoint.Endpoint.stack
       ~dst:(Endpoint.ip t.guests.(dst).g_endpoint)
       ())

(* Ring-neighbour traffic: guest i talks to its next [degree] successors
   (mod N).  With block placement most of these pairs are co-resident, so
   the live channel population per guest is ~degree — the sparse traffic
   matrix the idle-LRU eviction is sized against. *)
let establish_ring t ~degree =
  let n = Array.length t.guests in
  for i = 0 to n - 1 do
    for d = 1 to degree do
      let j = (i + d) mod n in
      if i <> j && co_resident t i j then ping t ~src:i ~dst:j
    done
  done

(* All-pairs co-resident traffic: the dense worst case the channel cap is
   sized against.  Quadratic per host — keep N per host modest. *)
let establish_all_pairs t =
  let n = Array.length t.guests in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if co_resident t i j then ping t ~src:i ~dst:j
    done
  done

let live_channels t =
  Array.fold_left (fun acc g -> acc + Gm.live_channels g.g_module) 0 t.guests

let channel_pool_bytes t =
  Array.fold_left (fun acc g -> acc + Gm.channel_pool_bytes g.g_module) 0 t.guests

let grant_entries t =
  Array.fold_left (fun acc g -> acc + Gm.grant_entries g.g_module) 0 t.guests

let announce_bytes t =
  Array.fold_left
    (fun acc h -> acc + Xenloop.Discovery.announce_bytes h.h_discovery)
    0 t.hosts

let announcements_sent t =
  Array.fold_left
    (fun acc h -> acc + Xenloop.Discovery.announcements_sent h.h_discovery)
    0 t.hosts

let announcements_suppressed t =
  Array.fold_left
    (fun acc h -> acc + Xenloop.Discovery.announcements_suppressed h.h_discovery)
    0 t.hosts

let channels_established t =
  Array.fold_left
    (fun acc g -> acc + (Gm.stats g.g_module).Gm.channels_established)
    0 t.guests

let channels_evicted t =
  Array.fold_left
    (fun acc g -> acc + (Gm.stats g.g_module).Gm.channels_evicted)
    0 t.guests
