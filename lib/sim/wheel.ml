(* Calendar-queue event scheduler: a circular timer wheel over the
   near-future window with a binary heap of cells as far-future overflow.

   The wheel covers [cursor, cursor + slots) ticks of [tick_ns] each
   (~8.4 ms of simulated time).  Events inside the window go to the slot
   [tick land slot_mask]; events beyond it wait in the overflow heap and
   are promoted ("cascaded") into the wheel when the cursor approaches.
   Each slot keeps its cells sorted by (time, seq), so pop order is
   exactly the binary-heap order the engine used before: time first, then
   insertion sequence.

   Cells are caller-owned mutable records linked through [c_next] with the
   wheel's own [nil] cell as the end-of-list marker, so steady-state
   insert/remove/pop never allocates. *)

type 'a cell = {
  mutable c_time : int;  (* ns *)
  mutable c_seq : int;
  mutable c_value : 'a;
  mutable c_next : 'a cell;
  mutable c_loc : int;
}

let tick_bits = 10 (* 1.024 us per tick *)
let slot_bits = 13
let slot_count = 1 lsl slot_bits
let slot_mask = slot_count - 1
let group_bits = 6 (* 64 slots per occupancy group *)
let group_count = slot_count lsr group_bits

(* [c_loc] values: a slot index, or one of these. *)
let loc_free = -1
let loc_heap = -2

type 'a t = {
  nil : 'a cell;
  heads : 'a cell array;
  group_fill : int array;  (* occupied-slot count per group, for fast scans *)
  mutable wheel_len : int;
  mutable cur_tick : int;
  mutable heap : 'a cell array;
  mutable heap_len : int;
}

let create ~dummy =
  let rec nil =
    { c_time = max_int; c_seq = max_int; c_value = dummy; c_next = nil; c_loc = loc_free }
  in
  {
    nil;
    heads = Array.make slot_count nil;
    group_fill = Array.make group_count 0;
    wheel_len = 0;
    cur_tick = 0;
    heap = [||];
    heap_len = 0;
  }

let make_cell t v =
  { c_time = 0; c_seq = 0; c_value = v; c_next = t.nil; c_loc = loc_free }

let nil t = t.nil
let length t = t.wheel_len + t.heap_len
let is_empty t = t.wheel_len = 0 && t.heap_len = 0

let before a b = a.c_time < b.c_time || (a.c_time = b.c_time && a.c_seq < b.c_seq)

(* Slot indices are always masked into range and group indices derived from
   them, so the hot paths use unchecked array accesses. *)
let head_get t s = Array.unsafe_get t.heads s
let head_set t s c = Array.unsafe_set t.heads s c
let fill_incr t g d =
  Array.unsafe_set t.group_fill g (Array.unsafe_get t.group_fill g + d)

(* Overflow heap: an array binary min-heap of cells ordered by [before]. *)

let heap_swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec heap_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(p) then begin
      heap_swap t i p;
      heap_up t p
    end
  end

let rec heap_down t i =
  let l = (2 * i) + 1 in
  if l < t.heap_len then begin
    let s = if l + 1 < t.heap_len && before t.heap.(l + 1) t.heap.(l) then l + 1 else l in
    if before t.heap.(s) t.heap.(i) then begin
      heap_swap t i s;
      heap_down t s
    end
  end

let heap_push t c =
  if t.heap_len = Array.length t.heap then begin
    let cap = max 16 (2 * t.heap_len) in
    let bigger = Array.make cap t.nil in
    Array.blit t.heap 0 bigger 0 t.heap_len;
    t.heap <- bigger
  end;
  t.heap.(t.heap_len) <- c;
  t.heap_len <- t.heap_len + 1;
  heap_up t (t.heap_len - 1);
  c.c_loc <- loc_heap

let heap_pop_top t =
  let c = t.heap.(0) in
  t.heap_len <- t.heap_len - 1;
  t.heap.(0) <- t.heap.(t.heap_len);
  t.heap.(t.heap_len) <- t.nil;
  if t.heap_len > 0 then heap_down t 0;
  c.c_loc <- loc_free;
  c

let heap_remove t c =
  let rec find i = if i >= t.heap_len then -1 else if t.heap.(i) == c then i else find (i + 1) in
  let i = find 0 in
  if i < 0 then false
  else begin
    t.heap_len <- t.heap_len - 1;
    let last = t.heap.(t.heap_len) in
    t.heap.(t.heap_len) <- t.nil;
    if i < t.heap_len then begin
      t.heap.(i) <- last;
      heap_up t i;
      heap_down t i
    end;
    c.c_loc <- loc_free;
    true
  end

(* Wheel slots. *)

let tick_of_time time_ns = time_ns asr tick_bits

let slot_insert t c tick =
  let s = tick land slot_mask in
  let head = head_get t s in
  if head == t.nil then begin
    fill_incr t (s lsr group_bits) 1;
    c.c_next <- t.nil;
    head_set t s c
  end
  else begin
    (* Sorted insertion keeps pop = list head; slots span ~1 us so lists
       stay short.  [c]'s key is hoisted into locals so the walk reloads
       only the scanned cell's fields (mutable loads are never CSEd). *)
    let ct = c.c_time and cs = c.c_seq in
    if ct < head.c_time || (ct = head.c_time && cs < head.c_seq) then begin
      c.c_next <- head;
      head_set t s c
    end
    else begin
      let nil = t.nil in
      let prev = ref head in
      let nxt = ref head.c_next in
      while
        let n = !nxt in
        n != nil && (n.c_time < ct || (n.c_time = ct && n.c_seq < cs))
      do
        prev := !nxt;
        nxt := !nxt.c_next
      done;
      c.c_next <- !nxt;
      !prev.c_next <- c
    end
  end;
  c.c_loc <- s;
  t.wheel_len <- t.wheel_len + 1

let insert t c =
  let tick = tick_of_time c.c_time in
  (* The engine may schedule at instants at or before the cursor (e.g.
     resume-at-current-instant); clamp into the cursor slot — the sorted
     slot list still pops them in (time, seq) order. *)
  let tick = if tick < t.cur_tick then t.cur_tick else tick in
  if tick - t.cur_tick >= slot_count then heap_push t c else slot_insert t c tick

let slot_unlink t c =
  let s = c.c_loc in
  let head = t.heads.(s) in
  if head == c then begin
    t.heads.(s) <- c.c_next;
    if c.c_next == t.nil then fill_incr t (s lsr group_bits) (-1)
  end
  else begin
    let prev = ref head in
    while !prev.c_next != c do
      prev := !prev.c_next
    done;
    !prev.c_next <- c.c_next
  end;
  c.c_next <- t.nil;
  c.c_loc <- loc_free;
  t.wheel_len <- t.wheel_len - 1

let remove t c =
  if c.c_loc = loc_free then false
  else if c.c_loc = loc_heap then heap_remove t c
  else begin
    slot_unlink t c;
    true
  end

(* Promote overflow cells whose tick has entered the wheel window. *)
let cascade t =
  while t.heap_len > 0 && tick_of_time t.heap.(0).c_time - t.cur_tick < slot_count do
    let c = heap_pop_top t in
    let tick = tick_of_time c.c_time in
    let tick = if tick < t.cur_tick then t.cur_tick else tick in
    slot_insert t c tick
  done

(* First occupied slot at or after the cursor (circularly), skipping empty
   64-slot groups in one comparison each. *)
let scan_to_next_occupied t =
  let base = t.cur_tick in
  let nil = t.nil in
  let d = ref 0 in
  let found = ref (-1) in
  while !found < 0 do
    let s = (base + !d) land slot_mask in
    if s land ((1 lsl group_bits) - 1) = 0
       && Array.unsafe_get t.group_fill (s lsr group_bits) = 0
    then d := !d + (1 lsl group_bits)
    else if head_get t s != nil then found := s
    else incr d
  done;
  t.cur_tick <- base + !d;
  !found

let pop t =
  if t.wheel_len = 0 && t.heap_len = 0 then t.nil
  else begin
    if t.heap_len > 0 then cascade t;
    if t.wheel_len = 0 then begin
      (* Everything lives beyond the window: jump the cursor to the heap
         top.  Safe only here — pop advances the clock to the returned
         cell's time, so no later insert can land behind the new cursor. *)
      t.cur_tick <- tick_of_time t.heap.(0).c_time;
      cascade t
    end;
    let s = scan_to_next_occupied t in
    let c = head_get t s in
    head_set t s c.c_next;
    if c.c_next == t.nil then fill_incr t (s lsr group_bits) (-1);
    c.c_next <- t.nil;
    c.c_loc <- loc_free;
    t.wheel_len <- t.wheel_len - 1;
    c
  end

(* [pop], but only if the minimum's time is <= [limit_ns]; otherwise [nil]
   and the wheel is untouched except for cascading (which never reorders).
   This is the bounded run loop's single-scan fast path: peek-then-pop
   would walk the slots twice per event. *)
let pop_before t limit_ns =
  if t.wheel_len = 0 && t.heap_len = 0 then t.nil
  else begin
    if t.heap_len > 0 then cascade t;
    if t.wheel_len = 0 then begin
      if t.heap.(0).c_time > limit_ns then t.nil
      else begin
        t.cur_tick <- tick_of_time t.heap.(0).c_time;
        cascade t;
        let s = scan_to_next_occupied t in
        let c = head_get t s in
        head_set t s c.c_next;
        if c.c_next == t.nil then fill_incr t (s lsr group_bits) (-1);
        c.c_next <- t.nil;
        c.c_loc <- loc_free;
        t.wheel_len <- t.wheel_len - 1;
        c
      end
    end
    else begin
      (* Advancing the cursor to the first occupied slot is safe even if we
         then decline: every queued event is at or past that slot, and the
         caller's clock only moves to [limit_ns] (>= popped times seen so
         far), so later inserts still land at or after the cursor. *)
      let s = scan_to_next_occupied t in
      let c = head_get t s in
      if c.c_time > limit_ns then t.nil
      else begin
        head_set t s c.c_next;
        if c.c_next == t.nil then fill_incr t (s lsr group_bits) (-1);
        c.c_next <- t.nil;
        c.c_loc <- loc_free;
        t.wheel_len <- t.wheel_len - 1;
        c
      end
    end
  end

(* Earliest pending time in ns, or [max_int] when empty.  Read-only: the
   cursor must not move, because a bounded [run ~until] that stops here may
   later enqueue events earlier than what it peeked at. *)
let next_time t =
  let wheel_min =
    if t.wheel_len = 0 then max_int
    else begin
      let d = ref 0 and found = ref (-1) in
      while !found < 0 do
        let s = (t.cur_tick + !d) land slot_mask in
        if s land ((1 lsl group_bits) - 1) = 0 && t.group_fill.(s lsr group_bits) = 0
        then d := !d + (1 lsl group_bits)
        else if t.heads.(s) != t.nil then found := s
        else incr d
      done;
      t.heads.(!found).c_time
    end
  in
  if t.heap_len = 0 then wheel_min
  else if wheel_min <= t.heap.(0).c_time then wheel_min
  else t.heap.(0).c_time
