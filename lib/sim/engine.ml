module W = Wheel

(* Event payloads live directly in pooled wheel cells.  [P_resume] carries
   a sleeping process's continuation without a wrapping closure, and
   [P_timer] lets a periodic timer own one cell for its whole life, so the
   steady-state schedule/fire cycle touches the allocator not at all. *)
type t = {
  mutable clock_ns : int;
  queue : payload W.t;
  mutable free : payload W.cell;  (* freelist chained through c_next *)
  mutable next_seq : int;
  mutable events_run : int;
  engine_rng : Rng.t;
  (* [now] returns a boxed Time.t; cache the box so bursts of same-instant
     queries (every packet touches the clock several times) allocate once
     per distinct instant instead of once per call. *)
  mutable clock_box : Time.t;
  mutable clock_box_ns : int;
  (* The effect handler and its [Sleep] arm are built once per engine and
     reused for every process entry: rebuilding them per callback was a
     measurable share of per-event cost.  [sleep_ns_arg] smuggles the
     span from [effc] into the pre-allocated continuation consumer. *)
  mutable proc_handler : (unit, unit) Effect.Deep.handler;
  mutable sleep_ns_arg : int;
  mutable sleep_arm : ((unit, unit) Effect.Deep.continuation -> unit) option;
}

and payload =
  | P_none
  | P_thunk of (unit -> unit)
  (* Inline record: a timer fire dereferences one block, not a chain of
     variant-then-record. *)
  | P_timer of {
      mutable tm_period_ns : int;
      mutable tm_active : bool;
      tm_run : unit -> unit;
    }
  | P_resume of (unit, unit) Effect.Deep.continuation

(* Handle returned by [every]; cold-path only.  [tmh_active] guards
   double-cancel — the cell may be recycled for an unrelated event after
   the first cancel, so the handle must not trust [c_value] alone. *)
type timer = {
  tmh_engine : t;
  tmh_cell : payload W.cell;
  mutable tmh_active : bool;
}

type _ Effect.t +=
  | Sleep : Time.span -> unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let null_handler : (unit, unit) Effect.Deep.handler =
  { retc = (fun () -> ()); exnc = raise; effc = (fun _ -> None) }

let now t =
  if t.clock_box_ns <> t.clock_ns then begin
    t.clock_box <- Time.instant_of_ns (Int64.of_int t.clock_ns);
    t.clock_box_ns <- t.clock_ns
  end;
  t.clock_box

let rng t = t.engine_rng

let alloc_cell t time_ns v =
  let nil = W.nil t.queue in
  let c =
    if t.free == nil then W.make_cell t.queue v
    else begin
      let c = t.free in
      t.free <- c.W.c_next;
      c.W.c_next <- nil;
      c.W.c_value <- v;
      c
    end
  in
  c.W.c_time <- time_ns;
  c.W.c_seq <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  c

let free_cell t c =
  c.W.c_value <- P_none;
  c.W.c_next <- t.free;
  t.free <- c

let schedule t time_ns v = W.insert t.queue (alloc_cell t time_ns v)

let span_ns span = Int64.to_int (Time.to_ns span)
let delay_ns span = let d = span_ns span in if d > 0 then d else 0

(* Resumptions must fire exactly once: double-resume would duplicate the
   continuation and corrupt the simulation, so we guard each one. *)
let once name f =
  let fired = ref false in
  fun () ->
    if !fired then invalid_arg (Printf.sprintf "Engine: %s resumed twice" name);
    fired := true;
    f ()

let create ?(seed = 42) () =
  let queue = W.create ~dummy:P_none in
  let t =
    {
      clock_ns = 0;
      queue;
      free = W.nil queue;
      next_seq = 0;
      events_run = 0;
      engine_rng = Rng.create ~seed;
      clock_box = Time.zero;
      clock_box_ns = 0;
      proc_handler = null_handler;
      sleep_ns_arg = 0;
      sleep_arm = None;
    }
  in
  t.sleep_arm <-
    Some (fun k -> schedule t (t.clock_ns + t.sleep_ns_arg) (P_resume k));
  let open Effect.Deep in
  t.proc_handler <-
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep span ->
              t.sleep_ns_arg <- delay_ns span;
              (t.sleep_arm : ((a, unit) continuation -> unit) option)
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let resume =
                    once "suspended process" (fun () ->
                        schedule t t.clock_ns (P_resume k))
                  in
                  register resume)
          | _ -> None);
    };
  t

let run_process t f = Effect.Deep.match_with f () t.proc_handler

let spawn t ?name f =
  ignore name;
  schedule t t.clock_ns (P_thunk (fun () -> run_process t f))

let at t time f =
  let time_ns = Int64.to_int (Time.instant_to_ns time) in
  if time_ns < t.clock_ns then invalid_arg "Engine.at: instant in the past";
  schedule t time_ns (P_thunk (fun () -> run_process t f))

let after t span f =
  schedule t (t.clock_ns + delay_ns span) (P_thunk (fun () -> run_process t f))

let every t ?start period f =
  let first = match start with Some s -> delay_ns s | None -> delay_ns period in
  let cell = alloc_cell t (t.clock_ns + first) P_none in
  cell.W.c_value <-
    P_timer { tm_period_ns = span_ns period; tm_active = true; tm_run = f };
  W.insert t.queue cell;
  { tmh_engine = t; tmh_cell = cell; tmh_active = true }

let cancel h =
  if h.tmh_active then begin
    h.tmh_active <- false;
    (match h.tmh_cell.W.c_value with
    | P_timer tm -> tm.tm_active <- false
    | _ -> ());
    (* Drop the pooled cell now rather than letting a dead entry fire:
       [remove] fails only while the timer's own callback is running (the
       cell is out of the queue then), and [step] frees it in that case. *)
    let t = h.tmh_engine in
    if W.remove t.queue h.tmh_cell then free_cell t h.tmh_cell
  end

let sleep span = Effect.perform (Sleep span)
let suspend ~register = Effect.perform (Suspend register)

let exec t c =
  t.clock_ns <- c.W.c_time;
  t.events_run <- t.events_run + 1;
  match c.W.c_value with
  | P_thunk f ->
      (* Recycle before running so the callback's own scheduling reuses
         this cell. *)
      free_cell t c;
      f ()
  | P_resume k ->
      free_cell t c;
      Effect.Deep.continue k ()
  | P_timer tm ->
      let fired_ns = c.W.c_time in
      run_process t tm.tm_run;
      if tm.tm_active then begin
        (* Rearm from the scheduled fire time, not the clock after the
           callback: periodic timers must not drift.  The fresh seq is
           taken after the callback's own enqueues, matching the order
           the pre-wheel engine produced. *)
        c.W.c_time <- fired_ns + tm.tm_period_ns;
        c.W.c_seq <- t.next_seq;
        t.next_seq <- t.next_seq + 1;
        W.insert t.queue c
      end
      else free_cell t c
  | P_none -> invalid_arg "Engine.step: empty event cell"

let step t =
  let c = W.pop t.queue in
  if c == W.nil t.queue then false
  else begin
    exec t c;
    true
  end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
      let limit_ns = Int64.to_int (Time.instant_to_ns limit) in
      let nil = W.nil t.queue in
      let continue_ = ref true in
      while !continue_ do
        let c = W.pop_before t.queue limit_ns in
        if c == nil then begin
          t.clock_ns <- limit_ns;
          continue_ := false
        end
        else exec t c
      done

let pending_events t = W.length t.queue
let events_executed t = t.events_run
