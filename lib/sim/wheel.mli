(** Calendar-queue event scheduler: a circular timer wheel for the
    near-future window, a binary heap of the same cells as far-future
    overflow, preserving exact (time, seq) pop order.

    Cells are caller-owned mutable records; the steady-state
    insert/remove/pop cycle performs no allocation, which is what lets
    {!Engine} pool them.  A cell belongs to at most one wheel at a time.

    Time is in plain [int] nanoseconds (63-bit — ±146 years of simulated
    time) so cell updates never box an [Int64]. *)

type 'a cell = {
  mutable c_time : int;  (** event time, ns *)
  mutable c_seq : int;  (** tie-break: insertion sequence *)
  mutable c_value : 'a;
  mutable c_next : 'a cell;  (** intra-slot link; the wheel's {!nil} ends lists *)
  mutable c_loc : int;  (** where the cell currently lives (internal) *)
}

type 'a t

val create : dummy:'a -> 'a t
(** An empty wheel.  [dummy] fills the internal sentinel cell's value. *)

val make_cell : 'a t -> 'a -> 'a cell
(** A fresh unlinked cell usable with this wheel. *)

val nil : 'a t -> 'a cell
(** The wheel's sentinel: returned by {!pop} on an empty wheel, and the
    list terminator for [c_next] chains (callers may reuse it as their own
    freelist terminator). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val insert : 'a t -> 'a cell -> unit
(** Queue a cell at its [c_time]/[c_seq].  Times before the current cursor
    are admitted (they pop at the cursor position, still in (time, seq)
    order relative to their slot). *)

val remove : 'a t -> 'a cell -> bool
(** Unlink a queued cell ([false] if it was not queued).  O(slot length)
    in the wheel, O(heap) in the overflow. *)

val pop : 'a t -> 'a cell
(** Remove and return the minimum-(time, seq) cell, or {!nil} when empty.
    Advances the internal cursor; callers must only advance their clock
    monotonically with the popped times (which the engine does). *)

val pop_before : 'a t -> int -> 'a cell
(** [pop_before t limit_ns] pops the minimum cell if its time is at most
    [limit_ns], else returns {!nil} leaving the queue's contents intact.
    One slot scan instead of the peek-then-pop two — the bounded run
    loop's fast path. *)

val next_time : 'a t -> int
(** Earliest pending [c_time], or [max_int] when empty.  Never moves the
    cursor, so it is safe around bounded runs that stop short. *)
