(** Deterministic discrete-event simulation engine.

    The engine maintains a virtual clock and a priority queue of pending
    events.  Code scheduled on the engine runs as a cooperative {e process}:
    inside a process, {!sleep} advances virtual time and {!suspend} parks the
    process until some other event resumes it.  Processes are implemented
    with OCaml effects, so simulation code reads like straight-line blocking
    code while remaining single-threaded and fully deterministic (ties in the
    event queue are broken by scheduling order). *)

type t

val create : ?seed:int -> unit -> t
(** A fresh engine with its clock at {!Time.zero}.  [seed] (default 42)
    seeds the engine's {!Rng}. *)

val now : t -> Time.t
val rng : t -> Rng.t

(** {1 Scheduling}

    Every scheduled callback runs in process context, so it may freely call
    {!sleep} and {!suspend}. *)

val spawn : t -> ?name:string -> (unit -> unit) -> unit
(** Run a process at the current instant (after the currently executing
    event completes). *)

val at : t -> Time.t -> (unit -> unit) -> unit
(** Run a process at an absolute instant.
    @raise Invalid_argument if the instant is in the past. *)

val after : t -> Time.span -> (unit -> unit) -> unit
(** Run a process after the given delay (negative delays are clamped to
    zero). *)

type timer

val every : t -> ?start:Time.span -> Time.span -> (unit -> unit) -> timer
(** Periodic process: first firing after [start] (default one period), then
    every period until {!cancel}. *)

val cancel : timer -> unit

(** {1 Process operations}

    These must be called from process context; calling them outside any
    process raises [Effect.Unhandled]. *)

val sleep : Time.span -> unit
(** Advance this process's virtual time.  Non-positive spans yield the
    processor but do not advance the clock. *)

val suspend : register:((unit -> unit) -> unit) -> unit
(** [suspend ~register] parks the calling process.  [register] receives a
    [resume] thunk; invoking [resume] (from any context, at any later
    instant) schedules the process to continue at the instant of the call.
    Invoking [resume] more than once is an error and raises
    [Invalid_argument]. *)

(** {1 Running} *)

val run : ?until:Time.t -> t -> unit
(** Process events in time order until the queue is empty or the clock
    would pass [until].  When [until] is given the clock is left at [until]
    even if the queue drained earlier, so repeated bounded runs compose. *)

val step : t -> bool
(** Process a single event.  Returns [false] if the queue was empty. *)

val pending_events : t -> int

val events_executed : t -> int
(** Total events this engine has run since creation — the numerator of the
    [sim_events_per_sec] benchmark metric. *)
