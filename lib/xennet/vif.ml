module P = Netcore.Packet
module T = Netcore.Transport
module Ec = Evtchn.Event_channel
module Params = Hypervisor.Params

let ring_slots = 256

type t = {
  machine : Hypervisor.Machine.t;
  vif_guest : Hypervisor.Domain.t;
  bridge : Bridge.t;
  dev : Netstack.Netdevice.t;
  tx_ring : P.t Ring.t;  (* guest -> dom0 *)
  rx_ring : P.t Ring.t;  (* dom0 -> guest *)
  guest_port : Ec.port;
  dom0_port : Ec.port;
  mutable bridge_port : Bridge.port option;
  mutable netback_draining : bool;
  mutable netfront_draining : bool;
  mutable attached : bool;
  mutable batches : int;
  mutable netback_packets : int;
}

let device t = t.dev
let guest t = t.vif_guest
let is_attached t = t.attached
let tx_batches t = t.batches
let tx_packets_through_netback t = t.netback_packets

let same_tcp_flow a b =
  match (a.P.body, b.P.body) with
  | ( P.Ipv4_body { header = ha; content = P.Full { transport = T.Tcp ta; _ } },
      P.Ipv4_body { header = hb; content = P.Full { transport = T.Tcp tb; _ } } ) ->
      Netcore.Ip.equal ha.Netcore.Ipv4.src hb.Netcore.Ipv4.src
      && Netcore.Ip.equal ha.Netcore.Ipv4.dst hb.Netcore.Ipv4.dst
      && ta.T.tcp_src_port = tb.T.tcp_src_port
      && ta.T.tcp_dst_port = tb.T.tcp_dst_port
  | _ -> false

let is_tcp p =
  match p.P.body with
  | P.Ipv4_body { content = P.Full { transport = T.Tcp _; _ }; _ } -> true
  | _ -> false

let batch_bytes batch = List.fold_left (fun acc p -> acc + P.wire_length p) 0 batch

(* Driver-domain cost of moving one batch across a netback boundary:
   fixed per-packet work plus grant-copy per page. *)
let netback_cost params batch =
  let bytes = batch_bytes batch in
  Sim.Time.span_add params.Params.netback_per_packet
    (Sim.Time.span_scale (Params.pages_of_bytes bytes) params.Params.netback_per_page)

let dom0_of t = Hypervisor.Machine.dom0 t.machine

(* --- tx direction: netback worker drains the guest's tx ring --- *)

let collect_batch t first =
  let params = Hypervisor.Machine.params t.machine in
  if not (is_tcp first) then [ first ]
  else begin
    let rec grow acc bytes =
      match Ring.peek t.tx_ring with
      | Some next
        when same_tcp_flow first next
             && bytes + P.wire_length next <= params.Params.tso_max_frame -> (
          match Ring.try_pop t.tx_ring with
          | Some popped -> grow (popped :: acc) (bytes + P.wire_length popped)
          | None -> acc
        )
      | Some _ | None -> acc
    in
    List.rev (grow [ first ] (P.wire_length first))
  end

let netback_drain t =
  let params = Hypervisor.Machine.params t.machine in
  let dom0 = dom0_of t in
  (* Wake-up penalty: scheduling the driver domain after the event. *)
  Sim.Engine.sleep params.Params.dom0_wakeup;
  let rec loop () =
    match Ring.try_pop t.tx_ring with
    | None -> t.netback_draining <- false
    | Some first ->
        let batch = collect_batch t first in
        t.batches <- t.batches + 1;
        t.netback_packets <- t.netback_packets + List.length batch;
        Memory.Cost_meter.record
          (Hypervisor.Domain.meter dom0)
          (Memory.Cost_meter.Page_copy (batch_bytes batch));
        Sim.Resource.use (Hypervisor.Domain.cpu dom0) (netback_cost params batch);
        (match t.bridge_port with
        | Some port when t.attached -> Bridge.inject t.bridge ~from:port batch
        | Some _ | None -> ());
        loop ()
  in
  loop ()

(* --- rx direction: netfront drains the guest's rx ring --- *)

let netfront_drain t =
  let params = Hypervisor.Machine.params t.machine in
  let rec loop () =
    match Ring.try_pop t.rx_ring with
    | None -> t.netfront_draining <- false
    | Some packet ->
        Sim.Resource.use (Hypervisor.Domain.cpu t.vif_guest) params.Params.netfront_rx;
        Netstack.Netdevice.receive t.dev packet;
        loop ()
  in
  loop ()

(* --- bridge side: frames destined to this guest --- *)

let deliver_batch t batch =
  if t.attached then begin
    let params = Hypervisor.Machine.params t.machine in
    let dom0 = dom0_of t in
    Memory.Cost_meter.record
      (Hypervisor.Domain.meter dom0)
      (Memory.Cost_meter.Page_copy (batch_bytes batch));
    Sim.Resource.use (Hypervisor.Domain.cpu dom0) (netback_cost params batch);
    List.iter (fun packet -> Ring.push t.rx_ring packet) batch;
    ignore
      (Ec.notify
         (Hypervisor.Machine.evtchn t.machine)
         ~dom:0 ~port:t.dom0_port
         ~meter:(Hypervisor.Domain.meter dom0))
  end

(* --- guest transmit entry point --- *)

let guest_xmit t packet =
  if t.attached then begin
    let params = Hypervisor.Machine.params t.machine in
    let cpu = Hypervisor.Domain.cpu t.vif_guest in
    Sim.Resource.use cpu params.Params.netfront_tx;
    Ring.push t.tx_ring packet;
    (* Notify netback; the hypercall costs guest CPU and is metered. *)
    Sim.Resource.use cpu params.Params.hypercall;
    ignore
      (Ec.notify
         (Hypervisor.Machine.evtchn t.machine)
         ~dom:(Hypervisor.Domain.domid t.vif_guest)
         ~port:t.guest_port
         ~meter:(Hypervisor.Domain.meter t.vif_guest))
  end

let create ~machine ~guest ~bridge ~stack () =
  let params = Hypervisor.Machine.params machine in
  let domid = Hypervisor.Domain.domid guest in
  let dev =
    Netstack.Netdevice.create
      ~name:(Printf.sprintf "vif%d.0" domid)
      ~mtu:params.Params.nic_mtu ?gso_size:params.Params.vif_gso_size
      ~mac:(Hypervisor.Domain.mac guest)
      ()
  in
  let ec = Hypervisor.Machine.evtchn machine in
  let guest_port = Ec.alloc_unbound ec ~dom:domid ~remote:0 in
  let dom0_port =
    match Ec.bind_interdomain ec ~dom:0 ~remote:domid ~remote_port:guest_port with
    | Ok p -> p
    | Error e -> invalid_arg (Format.asprintf "Vif.create: %a" Ec.pp_error e)
  in
  let t =
    {
      machine;
      vif_guest = guest;
      bridge;
      dev;
      tx_ring = Ring.create ~capacity:ring_slots;
      rx_ring = Ring.create ~capacity:ring_slots;
      guest_port;
      dom0_port;
      bridge_port = None;
      netback_draining = false;
      netfront_draining = false;
      attached = true;
      batches = 0;
      netback_packets = 0;
    }
  in
  (* Dom0 side: tx-ring events start the netback worker. *)
  Ec.set_handler ec ~dom:0 ~port:dom0_port (fun () ->
      if not t.netback_draining then begin
        t.netback_draining <- true;
        netback_drain t
      end);
  (* Guest side: rx-ring events start the netfront worker. *)
  Ec.set_handler ec ~dom:domid ~port:guest_port (fun () ->
      if not t.netfront_draining then begin
        t.netfront_draining <- true;
        netfront_drain t
      end);
  let port =
    Bridge.attach bridge
      ~name:(Netstack.Netdevice.name dev)
      ~deliver:(fun batch -> deliver_batch t batch)
  in
  t.bridge_port <- Some port;
  Netstack.Netdevice.set_transmit dev (fun packet -> guest_xmit t packet);
  Netstack.Stack.attach_device stack dev;
  t

let detach t =
  if t.attached then begin
    t.attached <- false;
    (match t.bridge_port with
    | Some port -> Bridge.detach t.bridge port
    | None -> ());
    t.bridge_port <- None;
    Ec.close (Hypervisor.Machine.evtchn t.machine) ~dom:0 ~port:t.dom0_port
  end
