(** The chaos soak: the default fault matrix, iterated over seeds.

    A {e case} is one (scenario, fault set); the {e matrix} pairs every
    scenario with its applicable fault kinds — each kind alone, plus a
    "storm" arming all of them at once — and every iteration replays the
    whole matrix under a fresh seed ([base seed + i]).  The summary
    aggregates verdicts, recovery-latency percentiles, and the first
    failing seed with its replay command, which is exactly what you need
    to reproduce a red run: [xenloopsim chaos --scenario S --fault F
    --seed N]. *)

type case = {
  c_name : string;
  c_scenario : Harness.scenario;
  c_faults : Fault.spec list;
  c_loans : bool;  (** loans-on world: loaned-slot receive negotiated *)
  c_evictions : bool;
      (** eviction world: delta announcements on, tight channel cap *)
  c_qos : bool;  (** QoS world: per-flow DRR scheduler, small sub-queues *)
  c_gso : bool;  (** gso world: jumbo offload negotiated, TCP bulk aux flow *)
}

val loan_cases : unit -> case list
(** Loaned-slot receive cases (DESIGN.md §11): loans-on worlds soaked
    against [Loan_leak] / [Slow_consumer] alone, mixed with data-plane
    kinds, and across mid-window teardowns (suspend/resume and the
    migration world), which force-return every outstanding loan. *)

val evict_cases : unit -> case list
(** Cluster-scale control-plane cases (DESIGN.md §12): eviction worlds
    (delta announcements on, channel cap 2, short idle TTL) soaked
    fault-free, under the forced [Evict_storm], under the storm mixed
    with the control-plane kinds it races, and across a mid-window
    teardown. *)

val qos_cases : unit -> case list
(** Multi-tenant QoS cases (DESIGN.md §14): QoS worlds (per-flow DRR on,
    deliberately small sub-queues) soaked fault-free, under the
    misbehaving-tenant [Tenant_flood] alone, mixed with [Push_refusal]
    (so the flooder actually backlogs), across a mid-window teardown,
    and at cluster scale.  Victims must stay exactly-once and must never
    be forced to overflow to netfront. *)

val gso_cases : unit -> case list
(** Segmentation-offload cases (DESIGN.md §15): gso worlds (jumbo
    descriptors negotiated, an auxiliary TCP bulk stream in flight)
    soaked fault-free, under scatter-vector [Jumbo_truncate] alone
    (plain and loaned receive), mixed with [Push_refusal] and
    [Pool_exhaustion] (so the multi-slot allocator actually fails), and
    across a mid-window teardown.  The bulk stream must land
    byte-identical and every truncation must be accounted as a loud rx
    drop. *)

val matrix : unit -> case list
(** The stock matrix: every scenario × {baseline, each applicable kind,
    storm}, plus {!loan_cases}, {!evict_cases}, {!qos_cases} and
    {!gso_cases}.  [Migration_world]
    pairs each probabilistic kind with the migration itself (windows
    shifted past the migration instant, since guests apart have no
    XenLoop state to fault); [Netfront_duo] runs baseline only, as the
    fault-free control. *)

type failure = {
  fail_seed : int;
  fail_case : string;
  fail_scenario : string;
  fail_fault : string;  (** kind label for replay; "" for baseline/storm *)
  fail_violations : string list;
}

type summary = {
  s_base_seed : int;
  s_iters : int;
  s_runs : int;
  s_scenarios : string list;
  s_kinds : string list;  (** distinct fault kinds armed across the matrix *)
  s_total_injected : int;
  s_sent : int;
  s_delivered : int;
  s_lost : int;
  s_duplicates : int;
  s_violation_runs : int;
  s_first_failure : failure option;
  s_recovery_p50_us : float;
  s_recovery_p99_us : float;
  s_recovery_max_us : float;
}

val ok : summary -> bool

val run :
  ?cases:case list ->
  ?seed:int ->
  ?iters:int ->
  ?progress:(string -> unit) ->
  unit ->
  summary
(** Run [iters] passes over [cases] (default: the full {!matrix}) with
    seeds [seed], [seed+1], ….  [progress] is called once per completed
    run with a one-line status. *)

val pp : Format.formatter -> summary -> unit

val to_json : summary -> string
(** The [chaos] summary object embedded in BENCH_results.json. *)
