(** The chaos harness's deterministic event log.

    Every run appends timestamped entries — phase transitions, every
    injected fault, every violation — in simulation order.  The rendered
    log and its digest are the determinism witness: {e same seed ⇒ same
    event log ⇒ same digest}, checked by the test suite and printable for
    replay debugging ([xenloopsim chaos --print-log]). *)

type t

val create : unit -> t

val record : t -> time:Sim.Time.t -> string -> unit

val length : t -> int

val render : t -> string list
(** One ["[%12d us] message"] line per entry, in append order. *)

val digest : t -> string
(** Hex MD5 over the rendered lines. *)
