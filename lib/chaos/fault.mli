(** The fault vocabulary of the chaos harness (DESIGN.md §9).

    A fault {e kind} names one place where the simulated system can
    misbehave; a {e spec} arms a kind over a time window with a
    per-consultation probability; a {e plan} is the armed set bound to a
    seeded generator, consulted by the injectors the harness wires into
    the lower layers.

    Determinism contract: a plan draws only from its own {!Sim.Rng}
    stream (one independent split per kind, so adding a kind never
    perturbs another kind's draws) and reads only simulation time.  Two
    runs with the same (seed, specs, scenario) therefore make identical
    decisions at identical instants. *)

type kind =
  | Drop_notify  (** event-channel doorbell vanishes after the hypercall *)
  | Delay_notify  (** doorbell delivered late *)
  | Grant_map_fail  (** transient [GNTST_*] failure mapping a granted page *)
  | Frame_exhaustion  (** frame allocator refuses a guest's allocation *)
  | Lost_watch  (** a XenStore watch event evaporates for one watcher *)
  | Stale_read  (** a XenStore read returns the node's previous value *)
  | Drop_announce  (** Dom0's announcement copy to one guest is dropped *)
  | Ctrl_drop  (** a XenLoop bootstrap control message vanishes *)
  | Ctrl_dup  (** a control message is delivered twice *)
  | Ctrl_delay  (** a control message is delivered late *)
  | Push_refusal  (** a FIFO push acts as if the ring were full *)
  | Pool_exhaustion  (** a payload-pool slot allocation fails *)
  | Peer_crash  (** a flow-free guest dies abruptly, no teardown *)
  | Suspend_resume  (** a guest suspends and resumes in place *)
  | Migrate_midstream  (** a guest live-migrates at an arbitrary instant *)
  | Loan_leak  (** a borrowed pool-slot view is never released by the app *)
  | Slow_consumer
      (** a loaned slot's release is deferred, holding loan credit *)
  | Evict_storm
      (** the LRU evictor fires far ahead of policy, shedding live
          channels mid-stream (opt-in eviction worlds only) *)
  | Tenant_flood
      (** one tenant floods its flow flat-out and ignores congestion
          signals (the per-flow backpressure edge is swallowed); victims
          must keep their fair share (opt-in QoS worlds only) *)
  | Jumbo_truncate
      (** a jumbo descriptor's scatter length vector is corrupted in
          flight; the receiver must drop the frame loudly and never
          deliver bytes the vector does not account for (opt-in gso
          worlds only) *)

val all : kind list

val label : kind -> string
(** Stable kebab-case name (CLI, JSON, event logs). *)

val of_label : string -> kind option

val is_oneshot : kind -> bool
(** [Peer_crash], [Suspend_resume] and [Migrate_midstream] fire exactly
    once at their window start; every other kind is probabilistic over
    its whole window. *)

type spec = {
  f_kind : kind;
  f_start : Sim.Time.span;  (** window start, relative to fault-plan arm time *)
  f_stop : Sim.Time.span;  (** window end (exclusive) *)
  f_prob : float;  (** per-consultation fault probability inside the window *)
}

val default_spec : kind -> spec
(** The soak matrix's stock window and probability for this kind. *)

(** {1 Armed plans} *)

type plan

val arm : engine:Sim.Engine.t -> seed:int -> spec list -> plan
(** Bind the specs to a fresh seeded generator and to the engine's clock;
    window offsets are measured from the current simulation time.  At most
    one spec per kind ([Invalid_argument] otherwise). *)

val draw : plan -> kind -> bool
(** Consult the plan: [true] iff the kind is armed, the clock is inside
    its window, and its probability fires.  Counts every [true]. *)

val delay_span : plan -> kind -> Sim.Time.span
(** A drawn extra latency for [Delay_notify] / [Ctrl_delay] hits. *)

val armed : plan -> kind -> bool
val oneshot_start : plan -> kind -> Sim.Time.span option
(** The window start of an armed one-shot kind, relative to arm time. *)

val note_fired : plan -> kind -> unit
(** Record a one-shot firing (the harness fires those itself), so the
    verdict's per-kind counts cover every kind uniformly. *)

val clearance : plan -> Sim.Time.span
(** Latest window end across all armed specs, relative to arm time: after
    arm-time + clearance the plan never fires again.  [span_zero] for an
    empty plan. *)

val injections : plan -> (string * int) list
(** Faults actually injected, by kind label, sorted; kinds that never
    fired are omitted. *)

val total_injected : plan -> int
