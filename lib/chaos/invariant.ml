module Machine = Hypervisor.Machine
module Domain = Hypervisor.Domain

type ctx = {
  iv_machines : (string * Machine.t) list;
  iv_modules : (string * Xenloop.Guest_module.t) list;
}

let frame_conservation name machine acc =
  let frames = Machine.frame_allocator machine in
  let total = Memory.Frame_allocator.total_frames frames in
  let free = Memory.Frame_allocator.free_frames frames in
  let owned =
    List.fold_left (fun a (_, n) -> a + n) 0 (Memory.Frame_allocator.owners frames)
  in
  if free + owned <> total then
    Printf.sprintf "%s: frame pages unbalanced: free=%d + owned=%d <> total=%d" name
      free owned total
    :: acc
  else acc

let check_runtime ctx =
  let acc =
    List.fold_left
      (fun acc (name, machine) -> frame_conservation name machine acc)
      [] ctx.iv_machines
  in
  let acc =
    List.fold_left
      (fun acc (name, m) ->
        List.fold_left
          (fun acc v -> Printf.sprintf "%s: %s" name v :: acc)
          acc
          (Xenloop.Guest_module.invariant_violations m))
      acc ctx.iv_modules
  in
  List.rev acc

let check_final ctx =
  let acc = List.rev (check_runtime ctx) in
  let acc =
    List.fold_left
      (fun acc (name, machine) ->
        let frames = Machine.frame_allocator machine in
        let acc =
          List.fold_left
            (fun acc (owner, count) ->
              if count > 0 then
                Printf.sprintf "%s: dom%d still owns %d frame(s) after unload" name
                  owner count
                :: acc
              else acc)
            acc
            (Memory.Frame_allocator.owners frames)
        in
        List.fold_left
          (fun acc domain ->
            let domid = Domain.domid domain in
            match Machine.grant_table machine domid with
            | None -> acc
            | Some gt ->
                let live = Memory.Grant_table.active_grants gt in
                if live > 0 then
                  Printf.sprintf "%s: dom%d still holds %d active grant(s)" name
                    domid live
                  :: acc
                else acc)
          acc (Machine.guests machine))
      acc ctx.iv_machines
  in
  let acc =
    List.fold_left
      (fun acc (name, m) ->
        let acc =
          match Xenloop.Guest_module.connected_peer_ids m with
          | [] -> acc
          | ids ->
              Printf.sprintf "%s: still connected to %d peer(s) after unload" name
                (List.length ids)
              :: acc
        in
        if Xenloop.Guest_module.is_loaded m then
          Printf.sprintf "%s: module still loaded at final check" name :: acc
        else acc)
      acc ctx.iv_modules
  in
  List.rev acc
