type case = {
  c_name : string;
  c_scenario : Harness.scenario;
  c_faults : Fault.spec list;
  c_loans : bool;  (** loans-on world: loaned-slot receive negotiated *)
  c_evictions : bool;
      (** eviction world: delta announcements on, tight channel cap *)
  c_qos : bool;  (** QoS world: per-flow DRR scheduler, small sub-queues *)
  c_gso : bool;  (** gso world: jumbo offload negotiated, TCP bulk aux flow *)
}

(* In the migration world the guests start apart: there is no XenLoop
   state to fault until the migration lands them together, so every
   probabilistic kind rides with the migration and its window opens just
   after the blackout. *)
let migration_shifted kind =
  let spec = Fault.default_spec kind in
  let stop =
    Sim.Time.span_max (Sim.Time.ms 20)
      (match kind with
      | Fault.Lost_watch | Fault.Stale_read | Fault.Drop_announce -> spec.Fault.f_stop
      | _ -> Sim.Time.ms 20)
  in
  { spec with Fault.f_start = Sim.Time.ms 8; f_stop = stop }

let case scenario kinds suffix =
  let label =
    match kinds with
    | [] -> "baseline"
    | [ k ] -> Fault.label k
    | _ -> suffix
  in
  let specs =
    List.map
      (fun k ->
        if scenario = Harness.Migration_world && not (Fault.is_oneshot k) then
          migration_shifted k
        else Fault.default_spec k)
      kinds
  in
  {
    c_name = Printf.sprintf "%s/%s" (Harness.scenario_label scenario) label;
    c_scenario = scenario;
    c_faults = specs;
    c_loans = false;
    c_evictions = false;
    c_qos = false;
    c_gso = false;
  }

(* Loaned-slot receive soaks its own corner of the matrix: worlds with
   loans negotiated on, against the loan faults alone, mixed with the
   data-plane kinds, and across a mid-window teardown (suspend/resume
   forces a force-return of every outstanding loan, then re-bootstrap). *)
let loan_cases () =
  let mk scenario kinds label =
    {
      (case scenario kinds label) with
      c_name =
        Printf.sprintf "%s/loans-%s" (Harness.scenario_label scenario) label;
      c_loans = true;
    }
  in
  [
    mk Harness.Xenloop_duo [] "baseline";
    mk Harness.Xenloop_duo [ Fault.Loan_leak ] "leak";
    mk Harness.Xenloop_duo [ Fault.Slow_consumer ] "slow-consumer";
    mk Harness.Xenloop_duo
      [ Fault.Loan_leak; Fault.Suspend_resume ]
      "leak-teardown";
    mk Harness.Xenloop_duo
      [
        Fault.Loan_leak; Fault.Slow_consumer; Fault.Drop_notify;
        Fault.Push_refusal; Fault.Pool_exhaustion;
      ]
      "storm";
    mk Harness.Migration_world
      [ Fault.Migrate_midstream; Fault.Loan_leak; Fault.Slow_consumer ]
      "migrate";
  ]

(* The cluster-scale control plane (DESIGN.md §12) soaks the same way:
   eviction worlds run with delta announcements on and a tight channel
   cap, first fault-free, then under the forced eviction storm, then the
   storm mixed with the control-plane kinds it races against. *)
let evict_cases () =
  let mk scenario kinds label =
    {
      (case scenario kinds label) with
      c_name =
        Printf.sprintf "%s/evict-%s" (Harness.scenario_label scenario) label;
      c_evictions = true;
    }
  in
  [
    mk Harness.Xenloop_duo [] "baseline";
    mk Harness.Cluster3 [] "baseline";
    mk Harness.Cluster3 [ Fault.Evict_storm ] "storm";
    mk Harness.Cluster3
      [ Fault.Evict_storm; Fault.Drop_announce; Fault.Ctrl_drop ]
      "storm-ctrl";
    mk Harness.Cluster3 [ Fault.Evict_storm; Fault.Suspend_resume ] "teardown";
  ]

(* The QoS subsystem (DESIGN.md §14) soaks its own worlds: per-flow DRR
   scheduling on with deliberately small sub-queues, first fault-free,
   then under the misbehaving-tenant flood alone, then the flood mixed
   with FIFO push refusal (so the flooder actually backlogs), across a
   mid-window teardown, and at cluster scale.  The invariants ride in the
   harness: victims stay exactly-once and never overflow to netfront. *)
let qos_cases () =
  let mk scenario kinds label =
    {
      (case scenario kinds label) with
      c_name =
        Printf.sprintf "%s/qos-%s" (Harness.scenario_label scenario) label;
      c_qos = true;
    }
  in
  [
    mk Harness.Xenloop_duo [] "baseline";
    mk Harness.Xenloop_duo [ Fault.Tenant_flood ] "flood";
    mk Harness.Xenloop_duo
      [ Fault.Tenant_flood; Fault.Push_refusal ]
      "flood-full";
    mk Harness.Cluster3 [ Fault.Tenant_flood ] "flood";
    mk Harness.Xenloop_duo
      [ Fault.Tenant_flood; Fault.Suspend_resume ]
      "flood-teardown";
  ]

(* Segmentation offload (DESIGN.md §15) soaks its own worlds: jumbo
   descriptors negotiated on and an auxiliary TCP bulk stream in flight,
   first fault-free, then under scatter-vector truncation alone (plain
   and loaned receive), mixed with the data-plane kinds that starve the
   jumbo allocator, and across a mid-window teardown (which must reclaim
   or drop stranded multi-slot frames, never leak or mis-deliver). *)
let gso_cases () =
  let mk ?(loans = false) scenario kinds label =
    {
      (case scenario kinds label) with
      c_name =
        Printf.sprintf "%s/gso-%s" (Harness.scenario_label scenario) label;
      c_gso = true;
      c_loans = loans;
    }
  in
  [
    mk Harness.Xenloop_duo [] "baseline";
    mk Harness.Xenloop_duo [ Fault.Jumbo_truncate ] "truncate";
    mk ~loans:true Harness.Xenloop_duo [ Fault.Jumbo_truncate ] "truncate-loans";
    mk Harness.Xenloop_duo
      [ Fault.Jumbo_truncate; Fault.Push_refusal; Fault.Pool_exhaustion ]
      "storm";
    mk ~loans:true Harness.Xenloop_duo
      [ Fault.Jumbo_truncate; Fault.Suspend_resume ]
      "truncate-teardown";
  ]

let matrix () =
  let scenario_cases scenario =
    let kinds = List.filter (Harness.applicable scenario) Fault.all in
    match scenario with
    | Harness.Netfront_duo -> [ case scenario [] "baseline" ]
    | Harness.Migration_world ->
        (* Each kind needs the migration to have anything to bite on. *)
        case scenario [] "baseline"
        :: case scenario [ Fault.Migrate_midstream ] ""
        :: List.filter_map
             (fun k ->
               if k = Fault.Migrate_midstream then None
               else
                 Some
                   {
                     (case scenario [ Fault.Migrate_midstream; k ] "") with
                     c_name =
                       Printf.sprintf "%s/migrate+%s"
                         (Harness.scenario_label scenario) (Fault.label k);
                   })
             kinds
        @ [ { (case scenario kinds "storm") with c_name = "migration-world/storm" } ]
    | Harness.Xenloop_duo | Harness.Cluster3 ->
        (case scenario [] "baseline"
        :: List.map (fun k -> case scenario [ k ] "") kinds)
        @ [ case scenario kinds "storm" ]
  in
  List.concat_map scenario_cases Harness.all_scenarios
  @ loan_cases () @ evict_cases () @ qos_cases () @ gso_cases ()

type failure = {
  fail_seed : int;
  fail_case : string;
  fail_scenario : string;
  fail_fault : string;
  fail_violations : string list;
}

type summary = {
  s_base_seed : int;
  s_iters : int;
  s_runs : int;
  s_scenarios : string list;
  s_kinds : string list;
  s_total_injected : int;
  s_sent : int;
  s_delivered : int;
  s_lost : int;
  s_duplicates : int;
  s_violation_runs : int;
  s_first_failure : failure option;
  s_recovery_p50_us : float;
  s_recovery_p99_us : float;
  s_recovery_max_us : float;
}

let ok s = s.s_violation_runs = 0 && s.s_lost = 0 && s.s_duplicates = 0

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n ->
      let idx = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
      sorted.(max 0 (min (n - 1) idx))

let run ?cases ?(seed = 42) ?(iters = 1) ?(progress = fun _ -> ()) () =
  let cases = match cases with Some c -> c | None -> matrix () in
  let runs = ref 0 in
  let injected = ref 0 in
  let sent = ref 0 in
  let delivered = ref 0 in
  let lost = ref 0 in
  let dups = ref 0 in
  let violation_runs = ref 0 in
  let first_failure = ref None in
  let recoveries = ref [] in
  for i = 0 to iters - 1 do
    List.iter
      (fun c ->
        let run_seed = seed + i in
        let config =
          Harness.default_config ~seed:run_seed ~faults:c.c_faults
            ~loans:c.c_loans ~evictions:c.c_evictions ~qos:c.c_qos
            ~gso:c.c_gso c.c_scenario
        in
        let v, _log = Harness.run config in
        incr runs;
        injected := !injected + v.Harness.v_total_injected;
        sent := !sent + v.Harness.v_sent;
        delivered := !delivered + v.Harness.v_delivered;
        lost := !lost + v.Harness.v_lost;
        dups := !dups + v.Harness.v_duplicates;
        (match v.Harness.v_recovery with
        | Some d -> recoveries := Sim.Time.to_us_f d :: !recoveries
        | None -> ());
        if v.Harness.v_violations <> [] then begin
          incr violation_runs;
          if !first_failure = None then
            first_failure :=
              Some
                {
                  fail_seed = run_seed;
                  fail_case = c.c_name;
                  fail_scenario = v.Harness.v_scenario;
                  fail_fault =
                    (match c.c_faults with
                    | [ s ] -> Fault.label s.Fault.f_kind
                    | _ -> "");
                  fail_violations = v.Harness.v_violations;
                }
        end;
        progress
          (Printf.sprintf "%s seed=%d: %s (injected %d)" c.c_name run_seed
             (if Harness.ok v then "ok" else "VIOLATED")
             v.Harness.v_total_injected))
      cases
  done;
  let sorted = Array.of_list !recoveries in
  Array.sort compare sorted;
  let kinds =
    List.concat_map (fun c -> List.map (fun s -> Fault.label s.Fault.f_kind) c.c_faults) cases
    |> List.sort_uniq compare
  in
  let scenarios =
    List.map (fun c -> Harness.scenario_label c.c_scenario) cases
    |> List.sort_uniq compare
  in
  {
    s_base_seed = seed;
    s_iters = iters;
    s_runs = !runs;
    s_scenarios = scenarios;
    s_kinds = kinds;
    s_total_injected = !injected;
    s_sent = !sent;
    s_delivered = !delivered;
    s_lost = !lost;
    s_duplicates = !dups;
    s_violation_runs = !violation_runs;
    s_first_failure = !first_failure;
    s_recovery_p50_us = percentile sorted 50.0;
    s_recovery_p99_us = percentile sorted 99.0;
    s_recovery_max_us = percentile sorted 100.0;
  }

let pp fmt s =
  Format.fprintf fmt "@[<v>chaos soak: %d run(s), %d scenario(s), %d fault kind(s)@,"
    s.s_runs (List.length s.s_scenarios) (List.length s.s_kinds);
  Format.fprintf fmt "  faults injected: %d@," s.s_total_injected;
  Format.fprintf fmt "  datagrams: %d sent, %d delivered, %d lost, %d duplicated@,"
    s.s_sent s.s_delivered s.s_lost s.s_duplicates;
  Format.fprintf fmt "  recovery latency: p50 %.0f us, p99 %.0f us, max %.0f us@,"
    s.s_recovery_p50_us s.s_recovery_p99_us s.s_recovery_max_us;
  (match s.s_first_failure with
  | None -> Format.fprintf fmt "  violations: none@,"
  | Some f ->
      Format.fprintf fmt "  violations: %d run(s); first failing seed %d (%s)@,"
        s.s_violation_runs f.fail_seed f.fail_case;
      List.iter (fun v -> Format.fprintf fmt "    %s@," v) f.fail_violations;
      Format.fprintf fmt "  replay: xenloopsim chaos --scenario %s%s --seed %d@,"
        f.fail_scenario
        (if f.fail_fault = "" then "" else " --fault " ^ f.fail_fault)
        f.fail_seed);
  Format.fprintf fmt "@]"

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json s =
  let b = Buffer.create 512 in
  let field ?(last = false) name value =
    Buffer.add_string b (Printf.sprintf "    %S: %s%s\n" name value (if last then "" else ","))
  in
  let strings l =
    "[" ^ String.concat ", " (List.map (fun x -> "\"" ^ json_escape x ^ "\"") l) ^ "]"
  in
  Buffer.add_string b "{\n";
  field "base_seed" (string_of_int s.s_base_seed);
  field "iterations" (string_of_int s.s_iters);
  field "runs" (string_of_int s.s_runs);
  field "scenarios" (strings s.s_scenarios);
  field "fault_kinds" (strings s.s_kinds);
  field "faults_injected" (string_of_int s.s_total_injected);
  field "datagrams_sent" (string_of_int s.s_sent);
  field "datagrams_delivered" (string_of_int s.s_delivered);
  field "datagrams_lost" (string_of_int s.s_lost);
  field "datagrams_duplicated" (string_of_int s.s_duplicates);
  field "violation_runs" (string_of_int s.s_violation_runs);
  field "recovery_p50_us" (Printf.sprintf "%.1f" s.s_recovery_p50_us);
  field "recovery_p99_us" (Printf.sprintf "%.1f" s.s_recovery_p99_us);
  field "recovery_max_us" (Printf.sprintf "%.1f" s.s_recovery_max_us);
  (match s.s_first_failure with
  | None -> field ~last:true "first_failure" "null"
  | Some f ->
      field ~last:true "first_failure"
        (Printf.sprintf
           "{\"seed\": %d, \"case\": \"%s\", \"violations\": %s}" f.fail_seed
           (json_escape f.fail_case) (strings f.fail_violations)));
  Buffer.add_string b "  }";
  Buffer.contents b
