(** Structural invariants over a chaos scenario's world.

    The checker never mutates anything and charges no simulated cost, so
    it can run from a timer at any instant — including mid-fault — without
    perturbing the run.  Runtime checks must hold {e always}; final checks
    additionally assume the world has been quiesced and every XenLoop
    module unloaded. *)

type ctx = {
  iv_machines : (string * Hypervisor.Machine.t) list;
      (** every Xen machine in the scenario, with a display name *)
  iv_modules : (string * Xenloop.Guest_module.t) list;
      (** every {e live} XenLoop module (crashed guests' modules are
          removed by the harness — their shared pages are reclaimed by the
          hypervisor and by the surviving peers, so reading them would be
          inspecting reused memory) *)
}

val check_runtime : ctx -> string list
(** Invariants that hold at every instant:
    - frame-page conservation per machine (free + Σ per-owner = total);
    - per-channel FIFO control-word sanity, both directions of every
      queue (indices within capacity, geometry intact, flags boolean);
    - payload-pool slot conservation (free ring within bounds, each slot
      distinct and valid);
    - waiting lists within {!Hypervisor.Params.xenloop_waiting_list_max}.

    Empty list = healthy; messages are deterministic and sorted by
    machine/module name. *)

val check_final : ctx -> string list
(** Everything in {!check_runtime}, plus quiescent-state checks valid
    only after all modules are unloaded:
    - no guest (or Dom0) still owns machine frames — channel memory must
      be fully returned;
    - no grant table has active grants — every mapping unwound;
    - no module still reports an established channel or a non-empty
      waiting list. *)
