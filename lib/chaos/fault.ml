type kind =
  | Drop_notify
  | Delay_notify
  | Grant_map_fail
  | Frame_exhaustion
  | Lost_watch
  | Stale_read
  | Drop_announce
  | Ctrl_drop
  | Ctrl_dup
  | Ctrl_delay
  | Push_refusal
  | Pool_exhaustion
  | Peer_crash
  | Suspend_resume
  | Migrate_midstream
  (* New kinds append at the end: [arm] splits the RNG in [all] order, so
     appending never reseeds the stream an existing kind sees. *)
  | Loan_leak
  | Slow_consumer
  | Evict_storm
  | Tenant_flood
  | Jumbo_truncate

let all =
  [
    Drop_notify; Delay_notify; Grant_map_fail; Frame_exhaustion; Lost_watch;
    Stale_read; Drop_announce; Ctrl_drop; Ctrl_dup; Ctrl_delay; Push_refusal;
    Pool_exhaustion; Peer_crash; Suspend_resume; Migrate_midstream; Loan_leak;
    Slow_consumer; Evict_storm; Tenant_flood; Jumbo_truncate;
  ]

let label = function
  | Drop_notify -> "drop-notify"
  | Delay_notify -> "delay-notify"
  | Grant_map_fail -> "grant-map-fail"
  | Frame_exhaustion -> "frame-exhaustion"
  | Lost_watch -> "lost-watch"
  | Stale_read -> "stale-read"
  | Drop_announce -> "drop-announce"
  | Ctrl_drop -> "ctrl-drop"
  | Ctrl_dup -> "ctrl-dup"
  | Ctrl_delay -> "ctrl-delay"
  | Push_refusal -> "push-refusal"
  | Pool_exhaustion -> "pool-exhaustion"
  | Peer_crash -> "peer-crash"
  | Suspend_resume -> "suspend-resume"
  | Migrate_midstream -> "migrate-midstream"
  | Loan_leak -> "loan-leak"
  | Slow_consumer -> "slow-consumer"
  | Evict_storm -> "evict-storm"
  | Tenant_flood -> "tenant-flood"
  | Jumbo_truncate -> "jumbo-truncate"

let of_label s = List.find_opt (fun k -> label k = s) all

let is_oneshot = function
  | Peer_crash | Suspend_resume | Migrate_midstream -> true
  | _ -> false

type spec = {
  f_kind : kind;
  f_start : Sim.Time.span;
  f_stop : Sim.Time.span;
  f_prob : float;
}

(* Stock windows: data-plane faults burn hot over a short slice of the
   stream; control-plane soft-state faults (announcements, XenStore) need
   to outlast the chaos-profile announcement cadence and soft-state TTL
   to bite, so their windows run long enough to starve a TTL. *)
let default_spec kind =
  let short_start = Sim.Time.ms 2 and short_stop = Sim.Time.ms 12 in
  let long_stop = Sim.Time.ms 60 in
  match kind with
  | Drop_notify ->
      { f_kind = kind; f_start = short_start; f_stop = short_stop; f_prob = 0.25 }
  | Delay_notify ->
      { f_kind = kind; f_start = short_start; f_stop = short_stop; f_prob = 0.25 }
  | Grant_map_fail ->
      { f_kind = kind; f_start = short_start; f_stop = short_stop; f_prob = 0.5 }
  | Frame_exhaustion ->
      { f_kind = kind; f_start = short_start; f_stop = short_stop; f_prob = 0.5 }
  | Lost_watch ->
      { f_kind = kind; f_start = short_start; f_stop = long_stop; f_prob = 0.5 }
  | Stale_read ->
      { f_kind = kind; f_start = short_start; f_stop = long_stop; f_prob = 0.5 }
  | Drop_announce ->
      { f_kind = kind; f_start = short_start; f_stop = long_stop; f_prob = 1.0 }
  | Ctrl_drop ->
      { f_kind = kind; f_start = short_start; f_stop = short_stop; f_prob = 0.5 }
  | Ctrl_dup ->
      { f_kind = kind; f_start = short_start; f_stop = short_stop; f_prob = 0.5 }
  | Ctrl_delay ->
      { f_kind = kind; f_start = short_start; f_stop = short_stop; f_prob = 0.5 }
  | Push_refusal ->
      { f_kind = kind; f_start = short_start; f_stop = short_stop; f_prob = 0.3 }
  | Pool_exhaustion ->
      { f_kind = kind; f_start = short_start; f_stop = short_stop; f_prob = 0.5 }
  | Loan_leak ->
      { f_kind = kind; f_start = short_start; f_stop = short_stop; f_prob = 0.3 }
  | Slow_consumer ->
      { f_kind = kind; f_start = short_start; f_stop = short_stop; f_prob = 0.5 }
  | Evict_storm ->
      (* Long window: each forced eviction must overlap the cooldown and
         the subsequent re-establishment to stress exactly-once delivery. *)
      { f_kind = kind; f_start = short_start; f_stop = long_stop; f_prob = 0.25 }
  | Tenant_flood ->
      (* Consulted by the flooder's pacer: every tick inside the window
         bursts the misbehaving tenant's flow (opt-in QoS worlds only). *)
      { f_kind = kind; f_start = short_start; f_stop = Sim.Time.ms 30; f_prob = 1.0 }
  | Jumbo_truncate ->
      (* Consulted once per jumbo push: corrupts the scatter length
         vector so the receiver's frame-level validation must drop and
         account (opt-in gso worlds only). *)
      { f_kind = kind; f_start = short_start; f_stop = short_stop; f_prob = 0.3 }
  | Peer_crash | Suspend_resume | Migrate_midstream ->
      { f_kind = kind; f_start = Sim.Time.ms 5; f_stop = Sim.Time.ms 5; f_prob = 1.0 }

type armed_spec = {
  a_spec : spec;
  a_rng : Sim.Rng.t;  (** independent split: kinds never perturb each other *)
  mutable a_count : int;
}

type plan = {
  p_engine : Sim.Engine.t;
  p_origin : Sim.Time.t;
  p_specs : (kind * armed_spec) list;
}

let arm ~engine ~seed specs =
  let rng = Sim.Rng.create ~seed in
  let armed =
    (* Split in [all] order, not spec order, so the stream a kind sees
       depends only on the kind — adding a spec never reseeds another. *)
    List.filter_map
      (fun kind ->
        let split = Sim.Rng.split rng in
        match List.find_all (fun s -> s.f_kind = kind) specs with
        | [] -> None
        | [ s ] -> Some (kind, { a_spec = s; a_rng = split; a_count = 0 })
        | _ -> invalid_arg "Fault.arm: duplicate spec for a kind")
      all
  in
  { p_engine = engine; p_origin = Sim.Engine.now engine; p_specs = armed }

let find plan kind = List.assq_opt kind plan.p_specs

let in_window plan a =
  let now = Sim.Engine.now plan.p_engine in
  let start = Sim.Time.add plan.p_origin a.a_spec.f_start in
  let stop = Sim.Time.add plan.p_origin a.a_spec.f_stop in
  Sim.Time.(now >= start) && Sim.Time.(now < stop)

let draw plan kind =
  match find plan kind with
  | None -> false
  | Some a ->
      (not (is_oneshot kind))
      && in_window plan a
      && Sim.Rng.float a.a_rng 1.0 < a.a_spec.f_prob
      && begin
           a.a_count <- a.a_count + 1;
           true
         end

let delay_span plan kind =
  match find plan kind with
  | None -> Sim.Time.span_zero
  | Some a -> Sim.Time.of_us_f (50.0 +. Sim.Rng.float a.a_rng 450.0)

let armed plan kind = find plan kind <> None

let oneshot_start plan kind =
  if not (is_oneshot kind) then None
  else
    match find plan kind with
    | None -> None
    | Some a -> Some a.a_spec.f_start

let clearance plan =
  List.fold_left
    (fun acc (_, a) -> Sim.Time.span_max acc a.a_spec.f_stop)
    Sim.Time.span_zero plan.p_specs

(* One-shots are fired by the harness, which records them here so the
   verdict's per-kind counts cover every kind uniformly. *)
let note_fired plan kind =
  match find plan kind with None -> () | Some a -> a.a_count <- a.a_count + 1

let injections plan =
  List.filter_map
    (fun (kind, a) -> if a.a_count > 0 then Some (label kind, a.a_count) else None)
    plan.p_specs
  |> List.sort compare

let total_injected plan =
  List.fold_left (fun acc (_, a) -> acc + a.a_count) 0 plan.p_specs
