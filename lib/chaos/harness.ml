module Machine = Hypervisor.Machine
module Domain = Hypervisor.Domain
module Params = Hypervisor.Params
module Migration = Hypervisor.Migration
module Gm = Xenloop.Guest_module
module Discovery = Xenloop.Discovery
module Ec = Evtchn.Event_channel
module Setup = Scenarios.Setup
module Mw = Scenarios.Migration_world
module Endpoint = Scenarios.Endpoint
module Experiment = Scenarios.Experiment
module Stack = Netstack.Stack
module Udp = Netstack.Udp
module Tcp = Netstack.Tcp

type scenario = Xenloop_duo | Netfront_duo | Cluster3 | Migration_world

let all_scenarios = [ Xenloop_duo; Netfront_duo; Cluster3; Migration_world ]

let scenario_label = function
  | Xenloop_duo -> "xenloop-duo"
  | Netfront_duo -> "netfront-duo"
  | Cluster3 -> "cluster3"
  | Migration_world -> "migration-world"

let scenario_of_label s =
  List.find_opt (fun sc -> scenario_label sc = s) all_scenarios

let applicable scenario kind =
  match (scenario, kind) with
  (* Loan faults only bite in a loans-on world; the standard matrix runs
     with loans pinned off (see [chaos_params]), so they are armed only by
     the explicit loans-on cases ([config.loans]). *)
  | _, (Fault.Loan_leak | Fault.Slow_consumer) -> false
  (* Forced eviction needs the bounded-channel knobs on; the standard
     matrix pins them off, so the storm is armed only by the explicit
     eviction cases ([config.evictions]). *)
  | _, Fault.Evict_storm -> false
  (* The flood needs the QoS scheduler on to have fairness to attack;
     the standard matrix pins QoS off, so it is armed only by the
     explicit QoS cases ([config.qos]). *)
  | _, Fault.Tenant_flood -> false
  (* Truncation corrupts jumbo scatter vectors, which only exist in a
     gso world; the standard matrix pins gso off, so it is armed only by
     the explicit gso cases ([config.gso]). *)
  | _, Fault.Jumbo_truncate -> false
  | Netfront_duo, _ -> false
  | Cluster3, Fault.Peer_crash -> true
  | _, Fault.Peer_crash -> false
  | Migration_world, Fault.Migrate_midstream -> true
  | _, Fault.Migrate_midstream -> false
  | (Xenloop_duo | Cluster3), Fault.Suspend_resume -> true
  | Migration_world, Fault.Suspend_resume -> false
  | (Xenloop_duo | Cluster3 | Migration_world), _ -> true

type config = {
  seed : int;
  scenario : scenario;
  faults : Fault.spec list;
  packets : int;
  payload : int;
  check_period : Sim.Time.span;
  loans : bool;
  evictions : bool;
      (** eviction world: delta announcements on, tight channel cap,
          short idle TTL — the regime [Fault.Evict_storm] bites in *)
  qos : bool;
      (** QoS world: the multi-tenant scheduler on, with a deliberately
          shallow per-flow bound so [Fault.Tenant_flood] overflows *)
  gso : bool;
      (** gso world: jumbo segmentation offload negotiated, plus an
          auxiliary TCP bulk stream that keeps jumbo descriptors in
          flight for [Fault.Jumbo_truncate] to corrupt *)
}

let default_config ?(seed = 1) ?(faults = []) ?(loans = false)
    ?(evictions = false) ?(qos = false) ?(gso = false) scenario =
  {
    seed;
    scenario;
    faults;
    packets = 250;
    payload = 256;
    check_period = Sim.Time.ms 1;
    loans;
    evictions;
    qos;
    gso;
  }

type verdict = {
  v_seed : int;
  v_scenario : string;
  v_faults : (string * int) list;
  v_total_injected : int;
  v_sent : int;
  v_delivered : int;
  v_duplicates : int;
  v_lost : int;
  v_checks : int;
  v_recovery : Sim.Time.span option;
  v_violations : string list;
  v_log_digest : string;
  v_log_length : int;
}

let ok v = v.v_violations = [] && v.v_lost = 0 && v.v_duplicates = 0

let pp_verdict fmt v =
  Format.fprintf fmt "@[<v>%s seed=%d: %s@," v.v_scenario v.v_seed
    (if ok v then "OK" else "VIOLATED");
  Format.fprintf fmt "  injected=%d sent=%d delivered=%d lost=%d dup=%d checks=%d@,"
    v.v_total_injected v.v_sent v.v_delivered v.v_lost v.v_duplicates v.v_checks;
  (match v.v_recovery with
  | Some d -> Format.fprintf fmt "  recovery=%.0fus@," (Sim.Time.to_us_f d)
  | None -> ());
  List.iter (fun (k, n) -> Format.fprintf fmt "  fault %s x%d@," k n) v.v_faults;
  List.iter (fun m -> Format.fprintf fmt "  violation: %s@," m) v.v_violations;
  Format.fprintf fmt "@]"

(* ------------------------------------------------------------------ *)
(* Worlds *)

(* Compressed soft-state timescales so one run exercises full discovery /
   TTL / cooldown cycles in tens of simulated milliseconds. *)
let chaos_params =
  {
    Params.default with
    Params.discovery_period = Sim.Time.ms 5;
    xenloop_softstate_ttl = Sim.Time.ms 40;
    xenloop_bootstrap_cooldown = Sim.Time.ms 100;
    migration_downtime = Sim.Time.ms 2;
    (* Pinned off so the standard matrix stays bit-for-bit reproducible
       against captures taken before loaned-slot receive and poll mode
       existed; loans-on runs opt in through [config.loans]. *)
    xenloop_loans = false;
    xenloop_poll_mode = false;
    (* Same story for the cluster-scale control plane (DESIGN.md §12):
       with these pinned, discovery performs exactly the legacy sequence
       of XenStore reads, announce encodes, sends, and injector draws, so
       pre-delta scenario digests replay unchanged; eviction runs opt in
       through [config.evictions]. *)
    xenloop_delta_announce = false;
    xenloop_channel_cap = 0;
    xenloop_channel_idle_ttl = Sim.Time.span_zero;
    (* And for the QoS subsystem (DESIGN.md §14): off, the tx path is the
       legacy FIFO-order waiting list bit-for-bit; QoS runs opt in
       through [config.qos]. *)
    qos_enabled = false;
    (* And for segmentation offload (DESIGN.md §15): off, negotiation
       never advertises "gs", announce wires carry the legacy tags, and
       the tx path never consults the jumbo injector, so pre-gso digests
       replay unchanged; gso runs opt in through [config.gso]. *)
    xenloop_gso = false;
  }

type world = {
  w_engine : Sim.Engine.t;
  w_label : string;
  w_machines : (string * Machine.t) list;
  w_modules : (string * Gm.t) list ref;
      (* live modules only: a crash removes the victim (its shared pages
         are reclaimed and reused, so inspecting them would be reading
         someone else's memory) *)
  w_discoveries : Discovery.t list;
  w_warmup : unit -> unit;
  w_flows : (Endpoint.t * Endpoint.t) list;  (* (sender, receiver) *)
  w_stir : unit -> unit;  (* traffic nudge that re-triggers bootstrap *)
  w_recovered : unit -> bool;
  w_expected_peers : unit -> (string * int * int) list;
      (* (module, actual mapping size, expected) at convergence time *)
  w_suspend : (unit -> unit) option;
  w_crash : (unit -> unit) option;
  w_migrate : (unit -> unit) option;
}

let ping_until stack ~dst =
  let ok = ref false in
  while not !ok do
    match Stack.ping stack ~dst ~timeout:(Sim.Time.ms 5) () with
    | Some _ -> ok := true
    | None -> Sim.Engine.sleep (Sim.Time.ms 1)
  done

let stir_ping stack ~dst =
  ignore (Stack.ping stack ~dst ~timeout:(Sim.Time.ms 1) ())

let expected_peers_colocated modules () =
  (* Everyone lives on one machine: each live module must know every
     other live module. *)
  let live = List.filter (fun (_, m) -> Gm.is_loaded m) !modules in
  let n = List.length live in
  List.map (fun (name, m) -> (name, Gm.mapping_size m, n - 1)) live

let build_duo ~params ~xenloop =
  let kind = if xenloop then Setup.Xenloop_path else Setup.Netfront_netback in
  let duo = Setup.build ~params kind in
  let machine = Option.get duo.Setup.machine in
  let modules =
    ref
      (match duo.Setup.modules with
      | [ m1; m2 ] -> [ ("guest1", m1); ("guest2", m2) ]
      | _ -> [])
  in
  let client = duo.Setup.client and server = duo.Setup.server in
  let domain1 = Option.get (Machine.domain machine 1) in
  let stir () =
    stir_ping client.Endpoint.stack ~dst:(Endpoint.ip server);
    stir_ping server.Endpoint.stack ~dst:(Endpoint.ip client)
  in
  let recovered () =
    match !modules with
    | [ (_, m1); (_, m2) ] ->
        Gm.has_channel_with m1 ~domid:2 && Gm.has_channel_with m2 ~domid:1
    | _ -> true
  in
  {
    w_engine = duo.Setup.engine;
    w_label = duo.Setup.label;
    w_machines = [ ("machine0", machine) ];
    w_modules = modules;
    w_discoveries = Option.to_list duo.Setup.discovery;
    w_warmup = duo.Setup.warmup;
    w_flows = [ (client, server); (server, client) ];
    w_stir = stir;
    w_recovered = recovered;
    w_expected_peers = expected_peers_colocated modules;
    w_suspend =
      (if xenloop then
         Some (fun () -> Migration.suspend_resume ~machine domain1)
       else None);
    w_crash = None;
    w_migrate = None;
  }

let build_cluster3 ~params () =
  let c = Setup.build_cluster ~params ~guests:3 () in
  let machine = c.Setup.c_machine in
  let guests = Array.of_list c.Setup.guests in
  let domain_of i = match guests.(i) with d, _, _ -> d in
  let ep_of i = match guests.(i) with _, ep, _ -> ep in
  let module_of i = match guests.(i) with _, _, m -> m in
  let modules =
    ref
      (List.mapi
         (fun i (_, _, m) -> (Printf.sprintf "guest%d" (i + 1), m))
         c.Setup.guests)
  in
  let stir () =
    stir_ping (ep_of 0).Endpoint.stack ~dst:(Endpoint.ip (ep_of 1));
    stir_ping (ep_of 1).Endpoint.stack ~dst:(Endpoint.ip (ep_of 0))
  in
  let recovered () =
    (* The flows run between guest1 and guest2; guest3 exists to be the
       crash victim, so its channels are not part of recovery. *)
    Gm.has_channel_with (module_of 0) ~domid:(Domain.domid (domain_of 1))
    && Gm.has_channel_with (module_of 1) ~domid:(Domain.domid (domain_of 0))
  in
  let crash () =
    (* Abrupt death: the module gets no chance to tear down or
       unadvertise; the hypervisor reclaims the domain's memory. *)
    Gm.kill (module_of 2);
    Machine.crash_domain machine (domain_of 2);
    modules := List.filter (fun (name, _) -> name <> "guest3") !modules
  in
  {
    w_engine = c.Setup.c_engine;
    w_label = "cluster3";
    w_machines = [ ("machine0", machine) ];
    w_modules = modules;
    w_discoveries = [ c.Setup.c_discovery ];
    w_warmup = c.Setup.c_warmup;
    w_flows = [ (ep_of 0, ep_of 1); (ep_of 1, ep_of 0) ];
    w_stir = stir;
    w_recovered = recovered;
    w_expected_peers = expected_peers_colocated modules;
    w_suspend = Some (fun () -> Migration.suspend_resume ~machine (domain_of 0));
    w_crash = Some crash;
    w_migrate = None;
  }

let build_migration_world ~params () =
  let w = Mw.create ~params () in
  let g1 = w.Mw.guest1 and g2 = w.Mw.guest2 in
  let modules =
    ref [ ("guest1", g1.Mw.xl_module); ("guest2", g2.Mw.xl_module) ]
  in
  let warmup () =
    (* Let both Dom0s run a discovery round, then resolve the cross-wire
       path in both directions. *)
    Sim.Engine.sleep (Sim.Time.ms 6);
    ping_until g1.Mw.ep.Endpoint.stack ~dst:(Endpoint.ip g2.Mw.ep);
    ping_until g2.Mw.ep.Endpoint.stack ~dst:(Endpoint.ip g1.Mw.ep)
  in
  let stir () =
    stir_ping g1.Mw.ep.Endpoint.stack ~dst:(Endpoint.ip g2.Mw.ep);
    stir_ping g2.Mw.ep.Endpoint.stack ~dst:(Endpoint.ip g1.Mw.ep)
  in
  let recovered () =
    (* Domids are dynamic: adoption by the destination machine assigns a
       fresh one.  Apart, no channel is expected and the wire path is the
       steady state. *)
    (not (Mw.co_resident g1 g2))
    || Gm.has_channel_with g1.Mw.xl_module ~domid:(Domain.domid g2.Mw.domain)
       && Gm.has_channel_with g2.Mw.xl_module ~domid:(Domain.domid g1.Mw.domain)
  in
  let expected_peers () =
    let expected = if Mw.co_resident g1 g2 then 1 else 0 in
    List.filter_map
      (fun (name, m) ->
        if Gm.is_loaded m then Some (name, Gm.mapping_size m, expected) else None)
      !modules
  in
  {
    w_engine = w.Mw.engine;
    w_label = "migration-world";
    w_machines =
      [ ("machine1", w.Mw.m1.Mw.machine); ("machine2", w.Mw.m2.Mw.machine) ];
    w_modules = modules;
    w_discoveries = [ w.Mw.m1.Mw.discovery; w.Mw.m2.Mw.discovery ];
    w_warmup = warmup;
    w_flows = [ (g1.Mw.ep, g2.Mw.ep); (g2.Mw.ep, g1.Mw.ep) ];
    w_stir = stir;
    w_recovered = recovered;
    w_expected_peers = expected_peers;
    w_suspend = None;
    w_crash = None;
    w_migrate = Some (fun () -> Mw.migrate w g1 ~dst:w.Mw.m2);
  }

let build ~params = function
  | Xenloop_duo -> build_duo ~params ~xenloop:true
  | Netfront_duo -> build_duo ~params ~xenloop:false
  | Cluster3 -> build_cluster3 ~params ()
  | Migration_world -> build_migration_world ~params ()

(* ------------------------------------------------------------------ *)
(* Injector wiring *)

let ctrl_label = function
  | Xenloop.Proto.Request_channel _ -> "request"
  | Xenloop.Proto.Create_channel _ -> "create"
  | Xenloop.Proto.Channel_ack _ -> "ack"
  | Xenloop.Proto.Announce _ -> "announce"
  | Xenloop.Proto.Delta_announce _ -> "delta"
  | Xenloop.Proto.App_payload _ -> "payload"

let wire w plan rec_ =
  List.iter
    (fun (mname, machine) ->
      let ec = Machine.evtchn machine in
      Ec.set_fault_injector ec
        (Some
           (fun ~dom ~port ->
             (* Only guest-to-guest doorbells (the XenLoop channels);
                vif interrupts to and from Dom0 stay reliable. *)
             let guest_to_guest =
               dom <> 0
               &&
               match Ec.peer ec ~dom ~port with
               | Some (pd, _) -> pd <> 0
               | None -> false
             in
             if not guest_to_guest then Ec.Notify_deliver
             else if Fault.draw plan Fault.Drop_notify then begin
               rec_ (Printf.sprintf "%s: notify dom%d port %d dropped" mname dom port);
               Ec.Notify_drop
             end
             else if Fault.draw plan Fault.Delay_notify then begin
               let d = Fault.delay_span plan Fault.Delay_notify in
               rec_
                 (Printf.sprintf "%s: notify dom%d port %d delayed %.0fus" mname
                    dom port (Sim.Time.to_us_f d));
               Ec.Notify_delay d
             end
             else Ec.Notify_deliver));
      Memory.Frame_allocator.set_fault_injector
        (Machine.frame_allocator machine)
        (Some
           (fun ~owner ~count ->
             if owner = 0 then false
             else if Fault.draw plan Fault.Frame_exhaustion then begin
               rec_
                 (Printf.sprintf "%s: frame allocation refused dom%d (%d frame(s))"
                    mname owner count);
               true
             end
             else false));
      List.iter
        (fun domain ->
          let domid = Domain.domid domain in
          match Machine.grant_table machine domid with
          | None -> ()
          | Some gt ->
              Memory.Grant_table.set_map_fault_injector gt
                (Some
                   (fun ~by gref ->
                     if by = 0 then false
                     else if Fault.draw plan Fault.Grant_map_fail then begin
                       rec_
                         (Printf.sprintf
                            "%s: grant map gref %d by dom%d failed" mname gref by);
                       true
                     end
                     else false)))
        (Machine.guests machine);
      Xenstore.set_fault_injector (Machine.xenstore machine)
        (Some
           (fun ~op ~path ->
             match op with
             | `Watch ->
                 if Fault.draw plan Fault.Lost_watch then begin
                   rec_ (Printf.sprintf "%s: watch event lost: %s" mname path);
                   Xenstore.Lost_watch
                 end
                 else Xenstore.Pass
             | `Read ->
                 if Fault.draw plan Fault.Stale_read then begin
                   rec_ (Printf.sprintf "%s: stale read: %s" mname path);
                   Xenstore.Stale_read
                 end
                 else Xenstore.Pass)))
    w.w_machines;
  List.iter
    (fun d ->
      Discovery.set_announce_fault d
        (Some
           (fun ~domid ->
             if Fault.draw plan Fault.Drop_announce then begin
               rec_ (Printf.sprintf "announcement to dom%d dropped" domid);
               true
             end
             else false)))
    w.w_discoveries;
  List.iter
    (fun (mname, m) ->
      Gm.set_ctrl_fault_injector m
        (Some
           (fun msg ->
             match msg with
             | Xenloop.Proto.Request_channel _ | Xenloop.Proto.Create_channel _
             | Xenloop.Proto.Channel_ack _ ->
                 if Fault.draw plan Fault.Ctrl_drop then begin
                   rec_
                     (Printf.sprintf "%s: ctrl %s dropped" mname (ctrl_label msg));
                   Gm.Ctrl_drop
                 end
                 else if Fault.draw plan Fault.Ctrl_dup then begin
                   rec_
                     (Printf.sprintf "%s: ctrl %s duplicated" mname
                        (ctrl_label msg));
                   Gm.Ctrl_dup
                 end
                 else if Fault.draw plan Fault.Ctrl_delay then begin
                   let d = Fault.delay_span plan Fault.Ctrl_delay in
                   rec_
                     (Printf.sprintf "%s: ctrl %s delayed %.0fus" mname
                        (ctrl_label msg) (Sim.Time.to_us_f d));
                   Gm.Ctrl_delay d
                 end
                 else Gm.Ctrl_pass
             | Xenloop.Proto.Announce _ | Xenloop.Proto.Delta_announce _
             | Xenloop.Proto.App_payload _ ->
                 Gm.Ctrl_pass));
      Gm.set_push_fault_injector m
        (Some
           (fun () ->
             if Fault.draw plan Fault.Push_refusal then begin
               rec_ (Printf.sprintf "%s: fifo push refused" mname);
               true
             end
             else false));
      Gm.set_pool_fault_injector m
        (Some
           (fun () ->
             if Fault.draw plan Fault.Pool_exhaustion then begin
               rec_ (Printf.sprintf "%s: payload-pool slot refused" mname);
               true
             end
             else false));
      (* Consulted only at loaned-delivery time, so in a loans-off world
         these kinds never draw and never perturb another kind's stream. *)
      Gm.set_loan_fault_injector m
        (Some
           (fun () ->
             if Fault.draw plan Fault.Loan_leak then begin
               rec_ (Printf.sprintf "%s: loaned view leaked by app" mname);
               Gm.Loan_leak
             end
             else if Fault.draw plan Fault.Slow_consumer then begin
               let d = Fault.delay_span plan Fault.Slow_consumer in
               rec_
                 (Printf.sprintf "%s: slow consumer holds loan %.0fus" mname
                    (Sim.Time.to_us_f d));
               Gm.Loan_delay d
             end
             else Gm.Loan_pass));
      (* Consulted only when a jumbo descriptor is pushed, so in a
         gso-off world this kind never draws and never perturbs another
         kind's stream. *)
      Gm.set_jumbo_fault_injector m
        (Some
           (fun () ->
             if Fault.draw plan Fault.Jumbo_truncate then begin
               rec_
                 (Printf.sprintf "%s: jumbo scatter vector truncated" mname);
               true
             end
             else false)))
    !(w.w_modules)

(* ------------------------------------------------------------------ *)
(* Stamped flows *)

type flow = {
  fl_id : int;
  fl_label : string;
  fl_src : Endpoint.t;
  fl_dst : Endpoint.t;
  fl_sock : Udp.socket;
  fl_counts : int array;
  mutable fl_sent : int;
  mutable fl_corrupt : int;
}

let stamp ~payload ~flow ~seq =
  let b = Bytes.make payload '\000' in
  Bytes.set_uint16_be b 0 flow;
  Bytes.set_int32_be b 2 (Int32.of_int seq);
  for i = 6 to payload - 1 do
    Bytes.set_uint8 b i (((flow * 7) + (seq * 13) + i) land 0xff)
  done;
  b

let note_rx fl data =
  let corrupt () = fl.fl_corrupt <- fl.fl_corrupt + 1 in
  if Bytes.length data < 6 then corrupt ()
  else
    let flow = Bytes.get_uint16_be data 0 in
    let seq = Int32.to_int (Bytes.get_int32_be data 2) in
    if flow <> fl.fl_id || seq < 0 || seq >= Array.length fl.fl_counts then
      corrupt ()
    else begin
      let intact = ref true in
      for i = 6 to Bytes.length data - 1 do
        if Bytes.get_uint8 data i <> ((flow * 7) + (seq * 13) + i) land 0xff then
          intact := false
      done;
      if !intact then fl.fl_counts.(seq) <- fl.fl_counts.(seq) + 1
      else corrupt ()
    end

let make_flows w config =
  List.mapi
    (fun i (src, dst) ->
      let sock =
        match Udp.bind dst.Endpoint.udp ~port:(7000 + i) () with
        | Ok s -> s
        | Error _ -> failwith "chaos: receiver bind failed"
      in
      {
        fl_id = i;
        fl_label =
          Printf.sprintf "flow%d(%s->%s)" i src.Endpoint.ep_name
            dst.Endpoint.ep_name;
        fl_src = src;
        fl_dst = dst;
        fl_sock = sock;
        fl_counts = Array.make config.packets 0;
        fl_sent = 0;
        fl_corrupt = 0;
      })
    w.w_flows

let start_receiver engine running fl =
  Sim.Engine.spawn engine ~name:(fl.fl_label ^ "-rx") (fun () ->
      let rec loop () =
        if !running then
          match Udp.recv_opt fl.fl_sock with
          | Some (_, _, data) ->
              note_rx fl data;
              loop ()
          | None ->
              Sim.Engine.sleep (Sim.Time.us 20);
              loop ()
      in
      loop ())

let start_sender engine frozen config fl senders_left =
  Sim.Engine.spawn engine ~name:(fl.fl_label ^ "-tx") (fun () ->
      (match Udp.bind fl.fl_src.Endpoint.udp () with
      | Error _ -> ()
      | Ok sock ->
          for seq = 0 to config.packets - 1 do
            (* Senders pause across lifecycle one-shots: a frame pushed
               into a vif mid-detach is legitimately gone, and this
               harness asserts exactly-once for everything it sends. *)
            while !frozen do
              Sim.Engine.sleep (Sim.Time.ms 1)
            done;
            Udp.sendto sock ~dst:(Endpoint.ip fl.fl_dst)
              ~dst_port:(7000 + fl.fl_id)
              (stamp ~payload:config.payload ~flow:fl.fl_id ~seq);
            fl.fl_sent <- fl.fl_sent + 1;
            Sim.Engine.sleep (Sim.Time.us 200)
          done);
      decr senders_left)

(* ------------------------------------------------------------------ *)
(* The run loop *)

let min_span a b = if Sim.Time.span_compare a b <= 0 then a else b

let run ?sabotage config =
  if config.payload < 6 then invalid_arg "Harness.run: payload below stamp size";
  if config.packets < 1 then invalid_arg "Harness.run: no packets";
  let params =
    let p =
      if config.loans then { chaos_params with Params.xenloop_loans = true }
      else chaos_params
    in
    let p =
      (* gso world: jumbo negotiation back on (zerocopy pools are already
         on in [chaos_params], which gso rides on). *)
      if config.gso then { p with Params.xenloop_gso = true } else p
    in
    let p =
      if config.qos then
        (* QoS world: scheduler on, per-flow bound shallow enough that a
           flooding tenant actually overflows (to netfront, per flow)
           inside one run. *)
        { p with Params.qos_enabled = true; qos_flow_queue_max = 16 }
      else p
    in
    if config.evictions then
      (* Eviction world: the bounded-channel knobs come back on, tight
         enough that the cap, the idle TTL and the post-eviction cooldown
         all cycle several times inside one run. *)
      {
        p with
        Params.xenloop_delta_announce = true;
        xenloop_channel_cap = 2;
        xenloop_channel_idle_ttl = Sim.Time.ms 20;
        xenloop_evict_cooldown = Sim.Time.ms 2;
      }
    else p
  in
  let w = build ~params config.scenario in
  let engine = w.w_engine in
  let log = Event_log.create () in
  let rec_ msg = Event_log.record log ~time:(Sim.Engine.now engine) msg in
  let out = ref None in
  Experiment.run_process ~limit:(Sim.Time.sec 120) engine (fun () ->
      w.w_warmup ();
      rec_ (Printf.sprintf "%s warmed up" w.w_label);
      let plan = Fault.arm ~engine ~seed:config.seed config.faults in
      wire w plan rec_;
      (* Evict-storm: shed LRU channels far ahead of policy while the
         window is open — mid-stream, so in-flight frames must fall back
         to netfront and still land exactly once. *)
      let evictor =
        if not (Fault.armed plan Fault.Evict_storm) then None
        else
          Some
            (Sim.Engine.every engine (Sim.Time.ms 1) (fun () ->
                 List.iter
                   (fun (name, m) ->
                     if Fault.draw plan Fault.Evict_storm && Gm.evict_lru m
                     then
                       rec_
                         (Printf.sprintf "evict-storm: %s sheds its LRU channel"
                            name))
                   !(w.w_modules)))
      in
      (* Tenant-flood (QoS worlds): one misbehaving tenant bursts its own
         flow flat-out while the window is open, with its congestion
         edges swallowed — a tenant that ignores backpressure.  Victims
         must keep exactly-once delivery and their own fair share; the
         flooder's excess overflows to netfront, per flow. *)
      let flood_port = 7999 in
      (if config.qos && Fault.armed plan Fault.Tenant_flood then begin
         List.iter
           (fun (_, m) ->
             Gm.set_congestion_fault_injector m
               (Some
                  (fun key ->
                    match key with
                    | Xenloop.Steering.Ip_flow { dport; _ } -> dport = flood_port
                    | Xenloop.Steering.Mac_flow _ -> false)))
           !(w.w_modules);
         match w.w_flows with
         | [] -> ()
         | (src, dst) :: _ ->
             let deadline =
               Sim.Time.add (Sim.Engine.now engine) (Fault.clearance plan)
             in
             Sim.Engine.spawn engine ~name:"tenant-flood" (fun () ->
                 match Udp.bind src.Endpoint.udp () with
                 | Error _ -> ()
                 | Ok sock ->
                     rec_ "tenant-flood: flooder online";
                     let payload = Bytes.make 1024 '\xfa' in
                     while Sim.Time.(Sim.Engine.now engine < deadline) do
                       if Fault.draw plan Fault.Tenant_flood then
                         for _ = 1 to 16 do
                           ignore
                             (Udp.sendto_nb sock ~dst:(Endpoint.ip dst)
                                ~dst_port:flood_port payload)
                         done;
                       Sim.Engine.sleep (Sim.Time.us 100)
                     done)
       end);
      (* Jumbo-truncate (gso worlds): the stamped UDP datagrams are far
         below jumbo size, so an auxiliary TCP bulk stream keeps jumbo
         descriptors in flight while the fault window is open.  The
         stream must still land byte-identical — a truncated jumbo is
         dropped loudly at rx and recovered by TCP retransmission. *)
      let aux_bulk =
        if not config.gso then None
        else
          match w.w_flows with
          | [] -> None
          | (src, dst) :: _ ->
              let total = 512 * 1024 in
              let data =
                Bytes.init total (fun i -> Char.chr ((i * 131) land 0xff))
              in
              let state = ref `Running in
              (match Tcp.listen dst.Endpoint.tcp ~port:7997 with
              | Error _ -> state := `Failed
              | Ok listener ->
                  Sim.Engine.spawn engine ~name:"gso-bulk-rx" (fun () ->
                      let conn = Tcp.accept listener in
                      let got = Tcp.recv_exact conn total in
                      state :=
                        (if Bytes.equal got data then `Done else `Corrupt));
                  Sim.Engine.spawn engine ~name:"gso-bulk-tx" (fun () ->
                      match
                        Tcp.connect src.Endpoint.tcp ~dst:(Endpoint.ip dst)
                          ~dst_port:7997 ()
                      with
                      | Ok conn ->
                          (* Paced in jumbo-sized chunks so descriptor
                             pushes span the whole fault window instead
                             of bursting before it opens. *)
                          let chunk = 64 * 1024 in
                          let off = ref 0 in
                          while !off < total do
                            let n = min chunk (total - !off) in
                            Tcp.send conn (Bytes.sub data !off n);
                            off := !off + n;
                            Sim.Engine.sleep (Sim.Time.ms 1)
                          done;
                          Tcp.close conn
                      | Error _ -> state := `Failed));
              Some state
      in
      let seen = Hashtbl.create 16 in
      let violations = ref [] in
      let note_violation msg =
        if not (Hashtbl.mem seen msg) then begin
          Hashtbl.replace seen msg ();
          violations := msg :: !violations;
          rec_ ("VIOLATION " ^ msg)
        end
      in
      let ctx () =
        { Invariant.iv_machines = w.w_machines; iv_modules = !(w.w_modules) }
      in
      let checks = ref 0 in
      let checker =
        Sim.Engine.every engine config.check_period (fun () ->
            incr checks;
            List.iter note_violation (Invariant.check_runtime (ctx ())))
      in
      let frozen = ref false in
      let flows = make_flows w config in
      let running = ref true in
      let senders_left = ref (List.length flows) in
      List.iter (fun fl -> start_receiver engine running fl) flows;
      List.iter (fun fl -> start_sender engine frozen config fl senders_left) flows;
      (* One-shot lifecycle faults run as their own processes. *)
      let schedule_oneshot kind op ~freeze desc =
        match op with
        | None -> ()
        | Some f -> (
            match Fault.oneshot_start plan kind with
            | None -> ()
            | Some start ->
                Sim.Engine.after engine start (fun () ->
                    rec_ (Printf.sprintf "one-shot %s: %s" (Fault.label kind) desc);
                    if freeze then frozen := true;
                    f ();
                    Fault.note_fired plan kind;
                    if freeze then begin
                      Sim.Engine.sleep (Sim.Time.ms 2);
                      frozen := false
                    end))
      in
      schedule_oneshot Fault.Peer_crash w.w_crash ~freeze:false
        "flow-free guest crashes without teardown";
      schedule_oneshot Fault.Suspend_resume w.w_suspend ~freeze:false
        "guest suspends and resumes in place";
      schedule_oneshot Fault.Migrate_midstream w.w_migrate ~freeze:true
        "guest live-migrates to join its peer";
      (* Bootstrap-phase faults would never fire against warm channels, so
         churn: suspend/resume at the window start forces a re-bootstrap
         inside the window. *)
      let churn_kinds =
        [
          Fault.Grant_map_fail; Fault.Frame_exhaustion; Fault.Ctrl_drop;
          Fault.Ctrl_dup; Fault.Ctrl_delay;
        ]
      in
      (match w.w_suspend with
      | Some suspend
        when (not (Fault.armed plan Fault.Suspend_resume))
             && List.exists (fun k -> Fault.armed plan k) churn_kinds ->
          let start =
            List.fold_left
              (fun acc s ->
                if List.mem s.Fault.f_kind churn_kinds then
                  match acc with
                  | None -> Some s.Fault.f_start
                  | Some a -> Some (min_span a s.Fault.f_start)
                else acc)
              None config.faults
          in
          Option.iter
            (fun st ->
              Sim.Engine.after engine
                (Sim.Time.span_add st (Sim.Time.us 200))
                (fun () ->
                  rec_ "churn: suspend/resume forces re-bootstrap in-window";
                  suspend ()))
            start
      | Some _ | None -> ());
      (* Ride out every fault window, then measure recovery. *)
      Sim.Engine.sleep (Sim.Time.span_max (Fault.clearance plan) (Sim.Time.ms 10));
      let clearance_t = Sim.Engine.now engine in
      rec_ "fault windows cleared";
      let deadline = Sim.Time.add clearance_t (Sim.Time.sec 4) in
      let recovery = ref None in
      let rec poll () =
        if w.w_recovered () then
          recovery := Some (Sim.Time.diff (Sim.Engine.now engine) clearance_t)
        else if Sim.Time.(Sim.Engine.now engine >= deadline) then ()
        else begin
          w.w_stir ();
          Sim.Engine.sleep (Sim.Time.us 500);
          poll ()
        end
      in
      poll ();
      (match !recovery with
      | Some d ->
          rec_
            (Printf.sprintf "fast path recovered %.0fus after clearance"
               (Sim.Time.to_us_f d))
      | None ->
          note_violation "fast path failed to re-establish before the deadline");
      while !senders_left > 0 do
        Sim.Engine.sleep (Sim.Time.ms 1)
      done;
      rec_ "all senders finished";
      (* Drain: everything sent must land; stirring keeps doorbells coming
         for any frame parked behind a dropped notification. *)
      let drain_deadline = Sim.Time.add (Sim.Engine.now engine) (Sim.Time.sec 2) in
      let all_delivered () =
        List.for_all
          (fun fl -> Array.for_all (fun c -> c > 0) fl.fl_counts)
          flows
      in
      while
        (not (all_delivered ()))
        && Sim.Time.(Sim.Engine.now engine < drain_deadline)
      do
        w.w_stir ();
        Sim.Engine.sleep (Sim.Time.ms 1)
      done;
      (* gso worlds: the bulk stream must have completed byte-identical,
         jumbo descriptors must actually have moved (else the world
         tested nothing), and every injected truncation must show up as
         an accounted rx drop — never as delivered bytes. *)
      (match aux_bulk with
      | None -> ()
      | Some state ->
          let aux_deadline =
            Sim.Time.add (Sim.Engine.now engine) (Sim.Time.sec 8)
          in
          while
            !state = `Running
            && Sim.Time.(Sim.Engine.now engine < aux_deadline)
          do
            Sim.Engine.sleep (Sim.Time.ms 1)
          done;
          (match !state with
          | `Done -> rec_ "gso bulk stream delivered byte-identical"
          | `Running -> note_violation "gso bulk stream did not complete"
          | `Corrupt -> note_violation "gso bulk stream delivered corrupt bytes"
          | `Failed -> note_violation "gso bulk stream failed to establish");
          let sum f =
            List.fold_left (fun a (_, m) -> a + f (Gm.stats m)) 0 !(w.w_modules)
          in
          if sum (fun s -> s.Gm.jumbo_tx) = 0 then
            note_violation "gso world moved no jumbo descriptors";
          let truncations =
            match List.assoc_opt "jumbo-truncate" (Fault.injections plan) with
            | Some n -> n
            | None -> 0
          in
          let drops = sum (fun s -> s.Gm.jumbo_drops) in
          if truncations > 0 && drops = 0 then
            note_violation
              "jumbo truncations injected but no rx drop accounted";
          if drops > truncations then
            note_violation
              (Printf.sprintf "%d jumbo drop(s) accounted for %d truncation(s)"
                 drops truncations));
      (* Tenant-flood fairness: per-flow sub-queues mean only the flooder
         may be forced to spill to netfront; a victim flow overflowing
         means the flood evicted someone else's frames. *)
      (if config.qos && Fault.armed plan Fault.Tenant_flood then
         let flood_suffix = Printf.sprintf ":%d" flood_port in
         let is_flood label =
           let n = String.length flood_suffix and l = String.length label in
           l >= n && String.sub label (l - n) n = flood_suffix
         in
         List.iter
           (fun (name, m) ->
             List.iter
               (fun fs ->
                 if (not (is_flood fs.Gm.fs_label)) && fs.Gm.fs_overflows > 0
                 then
                   note_violation
                     (Printf.sprintf
                        "%s: victim flow %s overflowed under tenant flood (%d)"
                        name fs.Gm.fs_label fs.Gm.fs_overflows))
               (Gm.flow_stats m))
           !(w.w_modules));
      (* Soft state must have converged on the surviving population before
         teardown. *)
      List.iter
        (fun (name, actual, expected) ->
          if actual <> expected then
            note_violation
              (Printf.sprintf
                 "%s: mapping table not converged: %d peer(s), expected %d" name
                 actual expected))
        (w.w_expected_peers ());
      (* Finale: quiesce, unload, final sweep. *)
      List.iter Discovery.stop w.w_discoveries;
      Sim.Engine.cancel checker;
      Option.iter (Sim.Engine.cancel) evictor;
      (* Loan quiescence: with every datagram drained, no borrowed slot
         view may still be out — unless the plan deliberately leaked some,
         in which case teardown's force-return must recover them below. *)
      if not (Fault.armed plan Fault.Loan_leak) then
        List.iter
          (fun (name, m) ->
            let out = Gm.outstanding_loans m in
            if out > 0 then
              note_violation
                (Printf.sprintf "%s: %d loaned slot(s) outstanding at quiescence"
                   name out))
          !(w.w_modules);
      List.iter
        (fun (_, m) ->
          if Gm.is_loaded m then begin
            Gm.unload m;
            Sim.Engine.sleep (Sim.Time.ms 1)
          end)
        !(w.w_modules);
      Sim.Engine.sleep (Sim.Time.ms 2);
      List.iter
        (fun (name, m) ->
          let out = Gm.outstanding_loans m in
          if out > 0 then
            note_violation
              (Printf.sprintf "%s: %d loaned slot(s) survived unload" name out))
        !(w.w_modules);
      running := false;
      Sim.Engine.sleep (Sim.Time.ms 1);
      (match sabotage with Some f -> f (ctx ()) | None -> ());
      List.iter note_violation (Invariant.check_final (ctx ()));
      let sent = List.fold_left (fun a fl -> a + fl.fl_sent) 0 flows in
      let delivered = ref 0 and dups = ref 0 and lost = ref 0 in
      List.iter
        (fun fl ->
          let fl_lost = ref 0 and fl_dup = ref 0 in
          Array.iter
            (fun c ->
              if c = 0 then incr fl_lost
              else begin
                incr delivered;
                if c > 1 then incr fl_dup
              end)
            fl.fl_counts;
          lost := !lost + !fl_lost;
          dups := !dups + !fl_dup;
          if !fl_lost > 0 then
            note_violation
              (Printf.sprintf "%s: %d of %d datagram(s) lost" fl.fl_label
                 !fl_lost config.packets);
          if !fl_dup > 0 then
            note_violation
              (Printf.sprintf "%s: %d datagram(s) duplicated" fl.fl_label !fl_dup);
          if fl.fl_corrupt > 0 then
            note_violation
              (Printf.sprintf "%s: %d corrupt datagram(s)" fl.fl_label
                 fl.fl_corrupt);
          let drops = Udp.drops fl.fl_sock in
          if drops > 0 then
            note_violation
              (Printf.sprintf "%s: %d receive-buffer drop(s)" fl.fl_label drops))
        flows;
      rec_
        (Printf.sprintf "run complete: injected=%d sent=%d violations=%d"
           (Fault.total_injected plan) sent (List.length !violations));
      out :=
        Some
          {
            v_seed = config.seed;
            v_scenario = scenario_label config.scenario;
            v_faults = Fault.injections plan;
            v_total_injected = Fault.total_injected plan;
            v_sent = sent;
            v_delivered = !delivered;
            v_duplicates = !dups;
            v_lost = !lost;
            v_checks = !checks;
            v_recovery = !recovery;
            v_violations = List.rev !violations;
            v_log_digest = "";
            v_log_length = 0;
          });
  match !out with
  | None -> failwith "chaos: run did not complete"
  | Some v ->
      ( { v with v_log_digest = Event_log.digest log; v_log_length = Event_log.length log },
        log )
