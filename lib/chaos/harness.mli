(** One chaos run: a scenario world + an armed fault plan + stamped
    traffic + the invariant checker, driven to a verdict.

    The harness builds a fresh world, warms it up to steady state, arms
    the {!Fault.plan}, wires injectors into every layer (event channels,
    frame allocator, grant tables, XenStore, Dom0 discovery, the XenLoop
    modules), then runs sequence-stamped UDP flows through the fault
    windows.  Throughout, a timer evaluates {!Invariant.check_runtime};
    after the last window clears it measures how long the fast path takes
    to re-establish, drains every outstanding datagram, unloads the
    modules, and runs {!Invariant.check_final} plus exactly-once delivery
    accounting.

    Determinism contract: a run is a pure function of its {!config} —
    same (seed, scenario, faults) ⇒ same event log ⇒ same digest
    ([v_log_digest]).  Nothing reads wall-clock time or unseeded
    randomness. *)

type scenario =
  | Xenloop_duo  (** two co-resident guests, XenLoop loaded (paper Sect. 4) *)
  | Netfront_duo  (** same guests on the standard path — fault-free control *)
  | Cluster3  (** three co-resident guests; guest3 is the crash victim *)
  | Migration_world  (** two machines; guest1 migrates to join guest2 *)

val scenario_label : scenario -> string
val scenario_of_label : string -> scenario option
val all_scenarios : scenario list

val applicable : scenario -> Fault.kind -> bool
(** Whether the soak matrix arms this kind in this scenario:
    [Peer_crash] needs a flow-free third guest ([Cluster3]),
    [Migrate_midstream] needs two machines ([Migration_world]),
    [Suspend_resume] needs a co-resident pair from the start,
    [Netfront_duo] is the fault-free control, the loan kinds
    ([Loan_leak], [Slow_consumer]) only bite in a loans-on world so they
    are armed only by explicit loans-on cases ([config.loans]),
    [Evict_storm] likewise only bites with the bounded-channel knobs on
    ([config.evictions]), [Tenant_flood] only in a QoS world
    ([config.qos]), and [Jumbo_truncate] only in a gso world
    ([config.gso]). *)

type config = {
  seed : int;
  scenario : scenario;
  faults : Fault.spec list;
  packets : int;  (** datagrams per flow (two flows, one per direction) *)
  payload : int;  (** datagram payload bytes (>= 8 for the stamp) *)
  check_period : Sim.Time.span;  (** runtime invariant-checker cadence *)
  loans : bool;
      (** build the world with loaned-slot receive negotiated on
          ({!Hypervisor.Params.xenloop_loans}); the standard matrix runs
          with it pinned off so digests match pre-loan captures *)
  evictions : bool;
      (** build the world with the cluster-scale control plane on: delta
          announcements, a channel cap of 2, a 20 ms idle TTL and a 2 ms
          eviction cooldown — the regime {!Fault.Evict_storm} bites in;
          the standard matrix pins all of that off so pre-delta digests
          replay unchanged *)
  qos : bool;
      (** build the world with the multi-tenant QoS subsystem on
          ({!Hypervisor.Params.qos_enabled}) and deliberately small
          per-flow sub-queues, the regime {!Fault.Tenant_flood} bites in;
          the standard matrix pins QoS off so pre-QoS digests replay
          unchanged *)
  gso : bool;
      (** build the world with jumbo segmentation offload negotiated on
          ({!Hypervisor.Params.xenloop_gso}) and run an auxiliary TCP
          bulk stream that keeps jumbo descriptors in flight — the
          regime {!Fault.Jumbo_truncate} bites in; the standard matrix
          pins gso off so pre-gso digests replay unchanged *)
}

val default_config :
  ?seed:int ->
  ?faults:Fault.spec list ->
  ?loans:bool ->
  ?evictions:bool ->
  ?qos:bool ->
  ?gso:bool ->
  scenario ->
  config
(** 250 packets of 256 B per flow, 1 ms checker cadence, loans,
    evictions, QoS and gso off. *)

type verdict = {
  v_seed : int;
  v_scenario : string;
  v_faults : (string * int) list;  (** injections actually fired, by kind *)
  v_total_injected : int;
  v_sent : int;
  v_delivered : int;  (** distinct (flow, seq) pairs that arrived *)
  v_duplicates : int;  (** (flow, seq) pairs that arrived more than once *)
  v_lost : int;  (** (flow, seq) pairs that never arrived *)
  v_checks : int;  (** runtime invariant evaluations performed *)
  v_recovery : Sim.Time.span option;
      (** fast-path re-establishment latency measured from the moment the
          last fault window closed; [None] when the scenario expects no
          channel or it never recovered within the deadline *)
  v_violations : string list;  (** invariant + delivery violations, in order *)
  v_log_digest : string;
  v_log_length : int;
}

val ok : verdict -> bool
(** No violations, nothing lost, nothing duplicated. *)

val pp_verdict : Format.formatter -> verdict -> unit

val run :
  ?sabotage:(Invariant.ctx -> unit) -> config -> verdict * Event_log.t
(** Execute one chaos run to completion (bounded at 120 simulated
    seconds).  [sabotage], used by the self-test, runs just before the
    final invariant sweep — deliberately corrupting the world there must
    surface as a violation, proving the checker is live. *)
