type t = { mutable entries : (Sim.Time.t * string) list; mutable count : int }

let create () = { entries = []; count = 0 }

let record t ~time msg =
  t.entries <- (time, msg) :: t.entries;
  t.count <- t.count + 1

let length t = t.count

let render t =
  List.rev_map
    (fun (time, msg) ->
      (* Integer microseconds: total ordering and bit-stable rendering. *)
      Printf.sprintf "[%12Ld us] %s"
        (Int64.div (Sim.Time.instant_to_ns time) 1_000L)
        msg)
    t.entries

let digest t = Digest.to_hex (Digest.string (String.concat "\n" (render t)))
