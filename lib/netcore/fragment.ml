let max_fragment_payload ~mtu = (mtu - Ipv4.header_length) / 8 * 8

let fragment ~mtu packet =
  match packet.Packet.body with
  | Packet.Arp_body _ | Packet.Xenloop_body _ -> [ packet ]
  | Packet.Ipv4_body { header; content } ->
      (* The fits-in-one-MTU test needs only the serialized length; the
         common unfragmented case must not serialize (and checksum) a blob
         it would throw away. *)
      let content_length =
        match content with
        | Packet.Full { transport; payload } ->
            Codec.transport_length transport ~payload
        | Packet.Fragment blob -> Bytes.length blob
      in
      if Ipv4.header_length + content_length <= mtu then [ packet ]
      else begin
        let blob =
          match content with
          | Packet.Full { transport; payload } ->
              Codec.serialize_transport transport ~payload
          | Packet.Fragment blob -> blob
        in
        let chunk = max_fragment_payload ~mtu in
        if chunk <= 0 then invalid_arg "Fragment.fragment: mtu too small";
        let total = Bytes.length blob in
        let rec slice off acc =
          if off >= total then List.rev acc
          else begin
            let len = min chunk (total - off) in
            let more = off + len < total in
            let fragment_header =
              { header with Ipv4.frag_offset = off; more_fragments = more }
            in
            let piece =
              {
                packet with
                Packet.body =
                  Packet.Ipv4_body
                    {
                      header = fragment_header;
                      content = Packet.Fragment (Bytes.sub blob off len);
                    };
              }
            in
            slice (off + len) (piece :: acc)
          end
        in
        slice 0 []
      end

type key = { k_src : Ip.t; k_dst : Ip.t; k_proto : Ipv4.protocol; k_ident : int }

type datagram = {
  mutable chunks : (int * Bytes.t) list;  (** (offset, blob) *)
  mutable total : int option;  (** known once the last fragment arrives *)
  mutable frame : Packet.t;  (** source of MAC addresses for the rebuild *)
}

type reassembler = (key, datagram) Hashtbl.t

let create_reassembler () : reassembler = Hashtbl.create 16

let coverage_complete chunks total =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) chunks in
  let rec walk expected = function
    | [] -> expected = total
    | (off, blob) :: rest ->
        off = expected && walk (off + Bytes.length blob) rest
  in
  walk 0 sorted

let assemble chunks total =
  let blob = Bytes.create total in
  List.iter
    (fun (off, piece) -> Bytes.blit piece 0 blob off (Bytes.length piece))
    chunks;
  blob

let push reasm packet =
  match packet.Packet.body with
  | Packet.Arp_body _ | Packet.Xenloop_body _ -> Ok (Some packet)
  | Packet.Ipv4_body { header; content } -> (
      match content with
      | Packet.Full _ -> Ok (Some packet)
      | Packet.Fragment blob ->
          let key =
            {
              k_src = header.Ipv4.src;
              k_dst = header.Ipv4.dst;
              k_proto = header.Ipv4.protocol;
              k_ident = header.Ipv4.ident;
            }
          in
          let datagram =
            match Hashtbl.find_opt reasm key with
            | Some d -> d
            | None ->
                let d = { chunks = []; total = None; frame = packet } in
                Hashtbl.replace reasm key d;
                d
          in
          let off = header.Ipv4.frag_offset in
          if not (List.mem_assoc off datagram.chunks) then
            datagram.chunks <- (off, blob) :: datagram.chunks;
          if not header.Ipv4.more_fragments then
            datagram.total <- Some (off + Bytes.length blob);
          (match datagram.total with
          | Some total when coverage_complete datagram.chunks total -> (
              Hashtbl.remove reasm key;
              let whole = assemble datagram.chunks total in
              match Codec.parse_transport header.Ipv4.protocol whole with
              | Error e -> Error e
              | Ok (transport, payload) ->
                  let rebuilt_header =
                    { header with Ipv4.frag_offset = 0; more_fragments = false }
                  in
                  Ok
                    (Some
                       {
                         datagram.frame with
                         Packet.body =
                           Packet.Ipv4_body
                             {
                               header = rebuilt_header;
                               content = Packet.Full { transport; payload };
                             };
                       }))
          | Some _ | None -> Ok None))

let pending_datagrams reasm = Hashtbl.length reasm
