(** Binary serialization of packets.

    Shared-memory data paths (the XenLoop FIFO, the netfront/netback rings)
    transport real bytes through real pages, so packets must round-trip
    through an on-the-wire format.  The format follows the actual protocols
    (Ethernet II, IPv4, ICMP echo, UDP, TCP) closely enough that headers
    and checksums are genuine; transport checksums are computed without the
    IPv4 pseudo-header. *)

type error =
  | Truncated
  | Bad_ethertype of int
  | Bad_protocol of int
  | Bad_checksum of string  (** which layer failed *)
  | Malformed of string

val pp_error : Format.formatter -> error -> unit

val serialize : Packet.t -> Bytes.t
val parse : Bytes.t -> (Packet.t, error) result

(** {1 Transport blobs}

    IP fragmentation slices the serialized transport-header+payload blob;
    these are the helpers the fragmenter and reassembler use. *)

val serialize_transport : Transport.t -> payload:Bytes.t -> Bytes.t

(** Length of [serialize_transport transport ~payload] without building
    it — the fragmenter's fits-in-one-MTU test needs only the size. *)
val transport_length : Transport.t -> payload:Bytes.t -> int
val parse_transport :
  Ipv4.protocol -> Bytes.t -> (Transport.t * Bytes.t, error) result
