(** Binary serialization of packets.

    Shared-memory data paths (the XenLoop FIFO, the netfront/netback rings)
    transport real bytes through real pages, so packets must round-trip
    through an on-the-wire format.  The format follows the actual protocols
    (Ethernet II, IPv4, ICMP echo, UDP, TCP) closely enough that headers
    and checksums are genuine; transport checksums are computed without the
    IPv4 pseudo-header. *)

type error =
  | Truncated
  | Bad_ethertype of int
  | Bad_protocol of int
  | Bad_checksum of string  (** which layer failed *)
  | Malformed of string

val pp_error : Format.formatter -> error -> unit

val serialize : ?csum:bool -> Packet.t -> Bytes.t
(** [~csum:false] leaves the transport checksum field zero (checksum
    elision on the trusted xenloop channel, DESIGN.md §15).  Such bytes
    parse only with [~verify_transport:false]; re-serializing them with
    the default [~csum:true] — as any netfront/physnet fallback does —
    reproduces the always-compute baseline bit for bit.  IPv4 header
    checksums are always computed. *)

val parse : ?verify_transport:bool -> Bytes.t -> (Packet.t, error) result
(** [~verify_transport:false] skips the transport-checksum check (GRO on
    a channel whose descriptor carries the [csum_ok] flag); IPv4 header
    checksums are still verified. *)

(** {1 Transport blobs}

    IP fragmentation slices the serialized transport-header+payload blob;
    these are the helpers the fragmenter and reassembler use. *)

val serialize_transport : ?csum:bool -> Transport.t -> payload:Bytes.t -> Bytes.t

(** Length of [serialize_transport transport ~payload] without building
    it — the fragmenter's fits-in-one-MTU test needs only the size. *)
val transport_length : Transport.t -> payload:Bytes.t -> int
val parse_transport :
  ?verify:bool -> Ipv4.protocol -> Bytes.t -> (Transport.t * Bytes.t, error) result
