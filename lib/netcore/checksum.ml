(* Internet (RFC 1071) ones'-complement checksum.

   The sum is accumulated 32 bits at a time with native-endian unaligned
   reads: ones'-complement addition commutes with byte swapping, so
   summing native-order words and byte-swapping the folded result once at
   the end yields exactly the big-endian word sum the wire format
   specifies.  A 63-bit accumulator takes 2^30 32-bit adds before it
   could overflow, far beyond any frame. *)

external get32u : Bytes.t -> int -> int32 = "%caml_bytes_get32u"
external get16u : Bytes.t -> int -> int = "%caml_bytes_get16u"

let fold16 v =
  let v = (v land 0xFFFF) + (v lsr 16) in
  (v land 0xFFFF) + (v lsr 16)

let mask32 = 0xFFFFFFFF

let ones_complement_sum data ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length data then
    invalid_arg "Checksum: out of bounds";
  let sum = ref 0 in
  let i = ref off in
  let stop = off + len in
  while !i + 8 <= stop do
    sum :=
      !sum
      + (Int32.to_int (get32u data !i) land mask32)
      + (Int32.to_int (get32u data (!i + 4)) land mask32);
    i := !i + 8
  done;
  if !i + 4 <= stop then begin
    sum := !sum + (Int32.to_int (get32u data !i) land mask32);
    i := !i + 4
  end;
  if !i + 2 <= stop then begin
    sum := !sum + (get16u data !i land 0xFFFF);
    i := !i + 2
  end;
  (* A trailing odd byte is the high octet of a final zero-padded word in
     wire order, which in the native little-endian accumulation is the low
     octet; the final swap puts it back. *)
  if !i < stop then begin
    let b = Char.code (Bytes.unsafe_get data !i) in
    sum := !sum + (if Sys.big_endian then b lsl 8 else b)
  end;
  let s = ref !sum in
  while !s > 0xFFFF do
    s := (!s land 0xFFFF) + (!s lsr 16)
  done;
  if Sys.big_endian then !s else ((!s lsr 8) lor (!s lsl 8)) land 0xFFFF

let compute data ~off ~len = lnot (ones_complement_sum data ~off ~len) land 0xFFFF

let verify data ~off ~len = ones_complement_sum data ~off ~len = 0xFFFF

let incremental_update ~old_checksum ~old_word ~new_word =
  (* RFC 1624: HC' = ~(~HC + ~m + m'). *)
  let sum =
    (lnot old_checksum land 0xFFFF)
    + (lnot old_word land 0xFFFF)
    + (new_word land 0xFFFF)
  in
  lnot (fold16 sum) land 0xFFFF
