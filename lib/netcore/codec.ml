type error =
  | Truncated
  | Bad_ethertype of int
  | Bad_protocol of int
  | Bad_checksum of string
  | Malformed of string

let pp_error fmt = function
  | Truncated -> Format.pp_print_string fmt "truncated frame"
  | Bad_ethertype e -> Format.fprintf fmt "unknown ethertype 0x%04x" e
  | Bad_protocol p -> Format.fprintf fmt "unknown IP protocol %d" p
  | Bad_checksum layer -> Format.fprintf fmt "bad %s checksum" layer
  | Malformed what -> Format.fprintf fmt "malformed %s" what

(* --- Writers ---

   Serialization targets an exact-size [Bytes.t] through a mutable write
   cursor.  The previous [Buffer]-based writers re-allocated on every
   doubling: for an MTU-sized frame the final backing block crosses the
   minor-heap large-object threshold, so every serialized packet paid a
   direct major-heap allocation plus the doubling garbage.  Sizes are
   known up front for every layer, so nothing here ever resizes. *)

type wcursor = { wdata : Bytes.t; mutable wpos : int }

let w8 w v =
  Bytes.unsafe_set w.wdata w.wpos (Char.unsafe_chr (v land 0xFF));
  w.wpos <- w.wpos + 1

let w16 w v =
  w8 w (v lsr 8);
  w8 w v

let w32 w (v : int32) =
  w16 w (Int32.to_int (Int32.shift_right_logical v 16));
  w16 w (Int32.to_int (Int32.logand v 0xFFFFl))

let wmac w mac =
  let v = Mac.to_int64 mac in
  for i = 5 downto 0 do
    w8 w (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done

let wip w ip = w32 w (Ip.to_int32 ip)

let wbytes w b =
  let len = Bytes.length b in
  Bytes.blit b 0 w.wdata w.wpos len;
  w.wpos <- w.wpos + len

let transport_header_length = function
  | Transport.Icmp _ -> 8
  | Transport.Udp _ -> 8
  | Transport.Tcp _ -> 20

let transport_length transport ~payload =
  transport_header_length transport + Bytes.length payload

(* --- Readers (cursor over bytes) --- *)

exception Short

type cursor = { data : Bytes.t; mutable pos : int }

let r8 c =
  if c.pos >= Bytes.length c.data then raise Short;
  let v = Char.code (Bytes.get c.data c.pos) in
  c.pos <- c.pos + 1;
  v

let r16 c =
  let hi = r8 c in
  (hi lsl 8) lor r8 c

let r32 c =
  let hi = r16 c in
  Int32.logor (Int32.shift_left (Int32.of_int hi) 16) (Int32.of_int (r16 c))

let rmac c =
  let v = ref 0L in
  for _ = 1 to 6 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (r8 c))
  done;
  Mac.of_int64 !v

let rip c = Ip.of_int32 (r32 c)

let rbytes c len =
  if len < 0 || c.pos + len > Bytes.length c.data then raise Short;
  let b = Bytes.sub c.data c.pos len in
  c.pos <- c.pos + len;
  b

let remaining c = Bytes.length c.data - c.pos

(* --- Transport --- *)

let tcp_flag_bits (f : Transport.tcp_flags) =
  (if f.fin then 0x01 else 0)
  lor (if f.syn then 0x02 else 0)
  lor (if f.rst then 0x04 else 0)
  lor (if f.psh then 0x08 else 0)
  lor if f.ack then 0x10 else 0

let tcp_flags_of_bits bits : Transport.tcp_flags =
  {
    fin = bits land 0x01 <> 0;
    syn = bits land 0x02 <> 0;
    rst = bits land 0x04 <> 0;
    psh = bits land 0x08 <> 0;
    ack = bits land 0x10 <> 0;
  }

(* Serialize transport header with a zero checksum field into [w], then
   patch the real checksum (computed over header + payload) in place.
   [~csum:false] leaves the field zero — the checksum-elision contract on
   the trusted xenloop channel (DESIGN.md §15): such bytes are only valid
   against [parse ~verify_transport:false], and any path that re-enters
   an untrusted transport (netfront, physnet) must re-serialize, which
   recomputes. *)
let write_transport ?(csum = true) w transport ~payload =
  let start = w.wpos in
  let cksum_off =
    match transport with
    | Transport.Icmp i ->
        w8 w (match i.echo_kind with `Request -> 8 | `Reply -> 0);
        w8 w 0;
        w16 w 0;
        w16 w i.icmp_ident;
        w16 w i.icmp_seq;
        2
    | Transport.Udp u ->
        w16 w u.udp_src_port;
        w16 w u.udp_dst_port;
        w16 w (8 + Bytes.length payload);
        w16 w 0;
        6
    | Transport.Tcp t ->
        w16 w t.tcp_src_port;
        w16 w t.tcp_dst_port;
        w32 w t.seq;
        w32 w t.ack_seq;
        w16 w (0x5000 lor tcp_flag_bits t.flags);
        w16 w t.window;
        w16 w 0;
        w16 w 0;
        16
  in
  wbytes w payload;
  if csum then begin
    let cksum = Checksum.compute w.wdata ~off:start ~len:(w.wpos - start) in
    Bytes.set_uint8 w.wdata (start + cksum_off) (cksum lsr 8);
    Bytes.set_uint8 w.wdata (start + cksum_off + 1) (cksum land 0xFF)
  end
  else ignore cksum_off

let serialize_transport ?(csum = true) transport ~payload =
  let w =
    { wdata = Bytes.create (transport_length transport ~payload); wpos = 0 }
  in
  write_transport ~csum w transport ~payload;
  w.wdata

let parse_transport ?(verify = true) protocol blob =
  let c = { data = blob; pos = 0 } in
  try
    if verify && not (Checksum.verify blob ~off:0 ~len:(Bytes.length blob)) then
      Error (Bad_checksum "transport")
    else begin
      let transport =
        match protocol with
        | Ipv4.Icmp ->
            let ty = r8 c in
            let _code = r8 c in
            let _cksum = r16 c in
            let icmp_ident = r16 c in
            let icmp_seq = r16 c in
            let echo_kind =
              match ty with
              | 8 -> `Request
              | 0 -> `Reply
              | _ -> raise Exit
            in
            Transport.Icmp { echo_kind; icmp_ident; icmp_seq }
        | Ipv4.Udp ->
            let udp_src_port = r16 c in
            let udp_dst_port = r16 c in
            let len = r16 c in
            let _cksum = r16 c in
            if len <> Bytes.length blob then raise Exit;
            Transport.Udp { udp_src_port; udp_dst_port }
        | Ipv4.Tcp ->
            let tcp_src_port = r16 c in
            let tcp_dst_port = r16 c in
            let seq = r32 c in
            let ack_seq = r32 c in
            let off_flags = r16 c in
            let window = r16 c in
            let _cksum = r16 c in
            let _urgent = r16 c in
            Transport.Tcp
              {
                tcp_src_port;
                tcp_dst_port;
                seq;
                ack_seq;
                flags = tcp_flags_of_bits (off_flags land 0x3F);
                window;
              }
      in
      let payload = rbytes c (remaining c) in
      Ok (transport, payload)
    end
  with
  | Short -> Error Truncated
  | Exit -> Error (Malformed "transport header")

(* --- IPv4 --- *)

let serialize_ipv4_header w (h : Ipv4.header) ~content_length =
  let start = w.wpos in
  w8 w 0x45;
  w8 w 0;
  w16 w (Ipv4.header_length + content_length);
  w16 w h.ident;
  assert (h.frag_offset mod 8 = 0);
  w16 w (((if h.more_fragments then 1 else 0) lsl 13) lor (h.frag_offset / 8));
  w8 w h.ttl;
  w8 w (Ipv4.protocol_number h.protocol);
  w16 w 0;
  wip w h.src;
  wip w h.dst;
  let cksum = Checksum.compute w.wdata ~off:start ~len:Ipv4.header_length in
  Bytes.set_uint8 w.wdata (start + 10) (cksum lsr 8);
  Bytes.set_uint8 w.wdata (start + 11) (cksum land 0xFF)

let parse_ipv4 ?(verify_transport = true) c =
  let start = c.pos in
  let vihl = r8 c in
  if vihl <> 0x45 then Error (Malformed "IPv4 version/IHL")
  else begin
    let _tos = r8 c in
    let total_length = r16 c in
    let ident = r16 c in
    let flags_frag = r16 c in
    let ttl = r8 c in
    let proto = r8 c in
    let _cksum = r16 c in
    let src = rip c in
    let dst = rip c in
    if not (Checksum.verify c.data ~off:start ~len:Ipv4.header_length) then
      Error (Bad_checksum "IPv4")
    else
      match Ipv4.protocol_of_number proto with
      | None -> Error (Bad_protocol proto)
      | Some protocol ->
          let content_len = total_length - Ipv4.header_length in
          if content_len <> remaining c then Error Truncated
          else begin
            let header : Ipv4.header =
              {
                src;
                dst;
                protocol;
                ident;
                frag_offset = (flags_frag land 0x1FFF) * 8;
                more_fragments = flags_frag land 0x2000 <> 0;
                ttl;
              }
            in
            let blob = rbytes c content_len in
            if Ipv4.is_fragment header then
              Ok (Packet.Ipv4_body { header; content = Packet.Fragment blob })
            else
              match parse_transport ~verify:verify_transport protocol blob with
              | Error e -> Error e
              | Ok (transport, payload) ->
                  Ok
                    (Packet.Ipv4_body
                       { header; content = Packet.Full { transport; payload } })
          end
  end

(* --- ARP --- *)

let arp_length = 28

let serialize_arp w (a : Arp.t) =
  w16 w 1;
  w16 w 0x0800;
  w8 w 6;
  w8 w 4;
  w16 w (match a.op with Arp.Request -> 1 | Arp.Reply -> 2);
  wmac w a.sender_mac;
  wip w a.sender_ip;
  wmac w a.target_mac;
  wip w a.target_ip

let parse_arp c =
  let htype = r16 c in
  let ptype = r16 c in
  let hlen = r8 c in
  let plen = r8 c in
  if htype <> 1 || ptype <> 0x0800 || hlen <> 6 || plen <> 4 then
    Error (Malformed "ARP header")
  else begin
    let opn = r16 c in
    let sender_mac = rmac c in
    let sender_ip = rip c in
    let target_mac = rmac c in
    let target_ip = rip c in
    match opn with
    | 1 | 2 ->
        let op = if opn = 1 then Arp.Request else Arp.Reply in
        Ok (Packet.Arp_body { Arp.op; sender_mac; sender_ip; target_mac; target_ip })
    | _ -> Error (Malformed "ARP op")
  end

(* --- Frames --- *)

let ethernet_header_length = 14

let body_length (body : Packet.body) =
  match body with
  | Packet.Ipv4_body { content = Packet.Full { transport; payload }; _ } ->
      Ipv4.header_length + transport_length transport ~payload
  | Packet.Ipv4_body { content = Packet.Fragment blob; _ } ->
      Ipv4.header_length + Bytes.length blob
  | Packet.Arp_body _ -> arp_length
  | Packet.Xenloop_body data -> 2 + Bytes.length data

let serialize ?(csum = true) (p : Packet.t) =
  let w =
    { wdata = Bytes.create (ethernet_header_length + body_length p.body);
      wpos = 0 }
  in
  wmac w p.dst_mac;
  wmac w p.src_mac;
  w16 w (Packet.ethertype p.body);
  (match p.body with
  | Packet.Ipv4_body { header; content } -> (
      match content with
      | Packet.Full { transport; payload } ->
          serialize_ipv4_header w header
            ~content_length:(transport_length transport ~payload);
          write_transport ~csum w transport ~payload
      | Packet.Fragment blob ->
          serialize_ipv4_header w header ~content_length:(Bytes.length blob);
          wbytes w blob)
  | Packet.Arp_body a -> serialize_arp w a
  | Packet.Xenloop_body data ->
      w16 w (Bytes.length data);
      wbytes w data);
  w.wdata

let parse ?(verify_transport = true) data =
  let c = { data; pos = 0 } in
  try
    let dst_mac = rmac c in
    let src_mac = rmac c in
    let ethertype = r16 c in
    let body =
      match ethertype with
      | 0x0800 -> parse_ipv4 ~verify_transport c
      | 0x0806 -> parse_arp c
      | 0x58D0 ->
          let len = r16 c in
          if len <> remaining c then Error Truncated
          else Ok (Packet.Xenloop_body (rbytes c len))
      | other -> Error (Bad_ethertype other)
    in
    Result.map (fun body -> { Packet.src_mac; dst_mac; body }) body
  with Short -> Error Truncated
