(** Bounded per-flow accounting table with tenant classification.

    Each flow records bytes/frames/descriptors sent and overflow
    reroutes, plus its own {!Watermark} so congestion is signalled per
    flow.  Tenant id and weight come from caller-supplied [classify]
    and [weight_of] functions, re-resolvable at runtime via
    {!set_classify}. *)

type 'k flow = {
  f_key : 'k;
  f_label : string;  (** human-readable key, fixed at creation *)
  f_seq : int;  (** creation order, for deterministic listings *)
  mutable f_tenant : int;
  mutable f_weight : int;
  mutable f_bytes : int;
  mutable f_frames : int;
  mutable f_descs : int;
  mutable f_overflows : int;
  f_mark : Watermark.t;
}

type 'k t

(** [create ~max_flows ~high ~low ~label_of ~classify ~weight_of ()].
    [high]/[low] are the watermark fractions installed on every new
    flow.  When the table holds [max_flows] entries the next miss
    resets it wholesale (accounting restarts; no frames are lost). *)
val create :
  max_flows:int ->
  high:float ->
  low:float ->
  label_of:('k -> string) ->
  classify:('k -> int) ->
  weight_of:(int -> int) ->
  unit ->
  'k t

(** Find or create the flow for [key]. *)
val lookup : 'k t -> 'k -> 'k flow

val find_opt : 'k t -> 'k -> 'k flow option

(** Swap the classifier and weight function, re-resolving the tenant
    and weight of every existing flow. *)
val set_classify : 'k t -> ('k -> int) -> (int -> int) -> unit

(** All flows in creation order. *)
val flows : 'k t -> 'k flow list

val length : 'k t -> int

(** Number of wholesale resets forced by table overflow. *)
val resets : 'k t -> int

val clear : 'k t -> unit
