(** Tenant-installable delivery policy.

    A tenant sees raw descriptor-level entries for its flows and can
    reclassify, divert, or drop them before they reach the channel
    scheduler, and observe per-flow congestion edges.  {!default} is
    inert: installing it changes nothing, which is what the QoS-off
    equivalence contract requires. *)

(** One frame as the hook sees it: the flow key, the serialized byte
    length, and whether the channel would send it as a zero-copy
    descriptor ([pe_desc = true]) or inline. *)
type 'k entry = { pe_key : 'k; pe_len : int; pe_desc : bool }

type action =
  | Pass  (** hand to the DRR scheduler normally *)
  | Divert  (** bypass the channel: send via the standard netfront path
                (not counted as an overflow) *)
  | Drop  (** discard silently — the tenant opted out of delivery *)

type 'k t = {
  p_name : string;
  p_classify : 'k -> int option;
      (** override the channel classifier's tenant id, [None] = defer *)
  p_enqueue : 'k entry -> action;  (** called before scheduling *)
  p_dequeue : 'k entry -> unit;  (** called as the frame enters the FIFO *)
  p_on_congestion : 'k -> congested:bool -> unit;
      (** called on each watermark edge for the tenant's flows *)
}

val default : 'k t

val make :
  ?name:string ->
  ?classify:('k -> int option) ->
  ?enqueue:('k entry -> action) ->
  ?dequeue:('k entry -> unit) ->
  ?on_congestion:('k -> congested:bool -> unit) ->
  unit ->
  'k t
