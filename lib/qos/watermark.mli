(** Two-threshold hysteresis for occupancy-driven congestion signals.

    A watermark latches: it raises once when [used/capacity >= high]
    and stays raised until the ratio falls to [low] or below, so a
    producer hovering around the high threshold emits one signal per
    genuine crossing rather than one per enqueue. *)

type edge = [ `Raise | `Clear | `None ]

type t

(** [create ~high ~low] builds a watermark with the given fractional
    thresholds.  Raises [Invalid_argument] unless
    [0 <= low <= high <= 1]. *)
val create : high:float -> low:float -> t

(** [update t ~used ~capacity] feeds the current occupancy and returns
    the edge this sample produced, if any.  [capacity <= 0] is treated
    as "no information" and returns [`None]. *)
val update : t -> used:int -> capacity:int -> edge

(** Current latched state. *)
val congested : t -> bool

(** Total [`Raise] edges emitted since creation. *)
val raises : t -> int

(** Total [`Clear] edges emitted since creation. *)
val clears : t -> int

(** Drop the latched state without emitting an edge (teardown path). *)
val reset : t -> unit
