(* Weighted deficit round robin over per-flow sub-queues.

   Each flow key owns a bounded FIFO of (value, length) items and a
   deficit counter.  Active flows sit on a ring; [select] visits the
   ring head, replenishes its deficit by quantum * weight, peels the
   longest prefix whose lengths fit the deficit, and rotates the flow
   to the ring tail.  A flow whose queue drains leaves the ring with
   its deficit zeroed (the classic DRR rule that stops an idle flow
   from banking credit).

   [restore] exists for the consumer-full case: when the caller could
   only push part of a selected batch downstream, the unpushed suffix
   goes back to the *front* of the flow's queue, its deficit is
   refunded, and the flow returns to the ring *front* so the next
   round resumes exactly where this one stopped. *)

module Dq = struct
  type 'a t = {
    mutable front : 'a list;
    mutable back : 'a list;
    mutable len : int;
  }

  let create () = { front = []; back = []; len = 0 }
  let length t = t.len
  let is_empty t = t.len = 0
  let clear t = t.front <- []; t.back <- []; t.len <- 0
  let push_back t v = t.back <- v :: t.back; t.len <- t.len + 1
  let push_front t v = t.front <- v :: t.front; t.len <- t.len + 1

  let normalize t =
    match t.front with
    | [] -> t.front <- List.rev t.back; t.back <- []
    | _ -> ()

  let peek_front t =
    normalize t;
    match t.front with [] -> None | v :: _ -> Some v

  let pop_front t =
    normalize t;
    match t.front with
    | [] -> None
    | v :: rest -> t.front <- rest; t.len <- t.len - 1; Some v

  let iter f t =
    List.iter f t.front;
    List.iter f (List.rev t.back)
end

type ('k, 'v) cls = {
  c_key : 'k;
  mutable c_weight : int;
  mutable c_deficit : int;
  c_items : ('v * int) Dq.t;
  mutable c_bytes : int;
  mutable c_on_ring : bool;
}

type ('k, 'v) t = {
  quantum : int;
  max_per_flow : int;
  classes : ('k, ('k, 'v) cls) Hashtbl.t;
  ring : ('k, 'v) cls Dq.t;
  mutable total_items : int;
  mutable total_bytes : int;
}

let create ~quantum ~max_per_flow () =
  if quantum <= 0 then invalid_arg "Drr.create: quantum must be positive";
  if max_per_flow <= 0 then invalid_arg "Drr.create: max_per_flow must be positive";
  {
    quantum;
    max_per_flow;
    classes = Hashtbl.create 64;
    ring = Dq.create ();
    total_items = 0;
    total_bytes = 0;
  }

let quantum t = t.quantum
let max_per_flow t = t.max_per_flow
let length t = t.total_items
let bytes t = t.total_bytes
let is_empty t = t.total_items = 0

let find_class t key weight =
  match Hashtbl.find_opt t.classes key with
  | Some c ->
      if c.c_weight <> weight then c.c_weight <- max 1 weight;
      c
  | None ->
      let c =
        {
          c_key = key;
          c_weight = max 1 weight;
          c_deficit = 0;
          c_items = Dq.create ();
          c_bytes = 0;
          c_on_ring = false;
        }
      in
      Hashtbl.replace t.classes key c;
      c

let activate_back t c =
  if not c.c_on_ring then begin
    c.c_on_ring <- true;
    Dq.push_back t.ring c
  end

let activate_front t c =
  if not c.c_on_ring then begin
    c.c_on_ring <- true;
    Dq.push_front t.ring c
  end

let enqueue t ~key ~weight ~len v =
  let c = find_class t key weight in
  if Dq.length c.c_items >= t.max_per_flow then false
  else begin
    Dq.push_back c.c_items (v, len);
    c.c_bytes <- c.c_bytes + len;
    t.total_items <- t.total_items + 1;
    t.total_bytes <- t.total_bytes + len;
    activate_back t c;
    true
  end

let flow_length t key =
  match Hashtbl.find_opt t.classes key with
  | None -> 0
  | Some c -> Dq.length c.c_items

let flow_bytes t key =
  match Hashtbl.find_opt t.classes key with
  | None -> 0
  | Some c -> c.c_bytes

let head_len t =
  match Dq.peek_front t.ring with
  | None -> None
  | Some c -> (
      match Dq.peek_front c.c_items with
      | None -> None (* unreachable: on-ring classes are non-empty *)
      | Some (_, len) -> Some len)

let take_prefix t c =
  let out = ref [] in
  let continue = ref true in
  while !continue do
    match Dq.peek_front c.c_items with
    | Some (v, len) when len <= c.c_deficit ->
        ignore (Dq.pop_front c.c_items);
        c.c_deficit <- c.c_deficit - len;
        c.c_bytes <- c.c_bytes - len;
        t.total_items <- t.total_items - 1;
        t.total_bytes <- t.total_bytes - len;
        out := (v, len) :: !out
    | _ -> continue := false
  done;
  List.rev !out

let select t =
  (* Visit ring classes until one yields a non-empty prefix.  An empty
     visit (head item larger than the replenished deficit) banks the
     deficit and rotates, so each pass strictly grows that class's
     credit and the loop terminates. *)
  let rec visit () =
    match Dq.pop_front t.ring with
    | None -> None
    | Some c ->
        c.c_deficit <- c.c_deficit + (t.quantum * c.c_weight);
        let batch = take_prefix t c in
        if Dq.is_empty c.c_items then begin
          c.c_deficit <- 0;
          c.c_on_ring <- false
        end
        else Dq.push_back t.ring c;
        (match batch with [] -> visit () | _ -> Some (c.c_key, batch))
  in
  visit ()

let restore t key items =
  match items with
  | [] -> ()
  | _ ->
      let c = find_class t key 1 in
      List.iter
        (fun (v, len) ->
          Dq.push_front c.c_items (v, len);
          c.c_deficit <- c.c_deficit + len;
          c.c_bytes <- c.c_bytes + len;
          t.total_items <- t.total_items + 1;
          t.total_bytes <- t.total_bytes + len)
        (List.rev items);
      activate_front t c

let drain_all t =
  let out = ref [] in
  let rec loop () =
    match Dq.pop_front t.ring with
    | None -> ()
    | Some c ->
        Dq.iter (fun (v, len) -> out := (c.c_key, v, len) :: !out) c.c_items;
        Dq.clear c.c_items;
        c.c_bytes <- 0;
        c.c_deficit <- 0;
        c.c_on_ring <- false;
        loop ()
  in
  loop ();
  t.total_items <- 0;
  t.total_bytes <- 0;
  List.rev !out

let clear t = ignore (drain_all t)

let fold_flows f t init =
  (* Ring order: only active (non-empty) flows are folded, in service
     order, which keeps the result deterministic across runs. *)
  let acc = ref init in
  Dq.iter
    (fun c -> acc := f !acc c.c_key ~items:(Dq.length c.c_items) ~bytes:c.c_bytes)
    t.ring;
  !acc
