(* Per-flow accounting keyed by the caller's flow key (XenLoop uses
   the steering tuple).  Flows are created on first lookup, classified
   into a tenant class, and given the tenant's weight; each flow also
   carries its own congestion watermark so backpressure is per-flow,
   not per-channel.

   The table is bounded like the steering flow cache: when it fills,
   it is reset wholesale rather than evicted piecemeal — accounting
   restarts but no frame is ever dropped on reset. *)

type 'k flow = {
  f_key : 'k;
  f_label : string;
  f_seq : int;
  mutable f_tenant : int;
  mutable f_weight : int;
  mutable f_bytes : int;
  mutable f_frames : int;
  mutable f_descs : int;
  mutable f_overflows : int;
  f_mark : Watermark.t;
}

type 'k t = {
  flows : ('k, 'k flow) Hashtbl.t;
  max_flows : int;
  high : float;
  low : float;
  label_of : 'k -> string;
  mutable classify : 'k -> int;
  mutable weight_of : int -> int;
  mutable next_seq : int;
  mutable resets : int;
}

let create ~max_flows ~high ~low ~label_of ~classify ~weight_of () =
  if max_flows <= 0 then invalid_arg "Flow_table.create: max_flows";
  {
    flows = Hashtbl.create 64;
    max_flows;
    high;
    low;
    label_of;
    classify;
    weight_of;
    next_seq = 0;
    resets = 0;
  }

let lookup t key =
  match Hashtbl.find_opt t.flows key with
  | Some f -> f
  | None ->
      if Hashtbl.length t.flows >= t.max_flows then begin
        Hashtbl.reset t.flows;
        t.resets <- t.resets + 1
      end;
      let tenant = t.classify key in
      let f =
        {
          f_key = key;
          f_label = t.label_of key;
          f_seq = t.next_seq;
          f_tenant = tenant;
          f_weight = max 1 (t.weight_of tenant);
          f_bytes = 0;
          f_frames = 0;
          f_descs = 0;
          f_overflows = 0;
          f_mark = Watermark.create ~high:t.high ~low:t.low;
        }
      in
      t.next_seq <- t.next_seq + 1;
      Hashtbl.replace t.flows key f;
      f

let find_opt t key = Hashtbl.find_opt t.flows key

let set_classify t classify weight_of =
  t.classify <- classify;
  t.weight_of <- weight_of;
  Hashtbl.iter
    (fun _ f ->
      f.f_tenant <- classify f.f_key;
      f.f_weight <- max 1 (weight_of f.f_tenant))
    t.flows

let flows t =
  let all = Hashtbl.fold (fun _ f acc -> f :: acc) t.flows [] in
  List.sort (fun a b -> compare a.f_seq b.f_seq) all

let length t = Hashtbl.length t.flows
let resets t = t.resets
let clear t = Hashtbl.reset t.flows
