(* Tenant policy hook: a vtable a tenant installs to see raw
   descriptor-level entries on its flows and steer delivery.  The
   default policy is inert — with it installed (or none installed)
   the data path behaves exactly as if the hook did not exist, which
   is the QoS-off equivalence contract leans on. *)

type 'k entry = { pe_key : 'k; pe_len : int; pe_desc : bool }

type action = Pass | Divert | Drop

type 'k t = {
  p_name : string;
  p_classify : 'k -> int option;
  p_enqueue : 'k entry -> action;
  p_dequeue : 'k entry -> unit;
  p_on_congestion : 'k -> congested:bool -> unit;
}

let default =
  {
    p_name = "default";
    p_classify = (fun _ -> None);
    p_enqueue = (fun _ -> Pass);
    p_dequeue = (fun _ -> ());
    p_on_congestion = (fun _ ~congested:_ -> ());
  }

let make ?(name = "anon") ?classify ?enqueue ?dequeue ?on_congestion () =
  {
    p_name = name;
    p_classify = (match classify with Some f -> f | None -> default.p_classify);
    p_enqueue = (match enqueue with Some f -> f | None -> default.p_enqueue);
    p_dequeue = (match dequeue with Some f -> f | None -> default.p_dequeue);
    p_on_congestion =
      (match on_congestion with
      | Some f -> f
      | None -> default.p_on_congestion);
  }
