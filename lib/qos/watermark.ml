(* Two-threshold hysteresis over an occupancy ratio.  The signal is
   raised exactly once when used/capacity crosses [high] from below and
   cleared exactly once when it falls back to [low]; between the two
   thresholds the state latches.  Counters record every edge so tests
   can assert one raise per crossing. *)

type edge = [ `Raise | `Clear | `None ]

type t = {
  high : float;
  low : float;
  mutable congested : bool;
  mutable raises : int;
  mutable clears : int;
}

let create ~high ~low =
  if not (0. <= low && low <= high && high <= 1.) then
    invalid_arg "Watermark.create: need 0 <= low <= high <= 1";
  { high; low; congested = false; raises = 0; clears = 0 }

let update t ~used ~capacity : edge =
  if capacity <= 0 then `None
  else begin
    let frac = float_of_int used /. float_of_int capacity in
    if (not t.congested) && frac >= t.high then begin
      t.congested <- true;
      t.raises <- t.raises + 1;
      `Raise
    end
    else if t.congested && frac <= t.low then begin
      t.congested <- false;
      t.clears <- t.clears + 1;
      `Clear
    end
    else `None
  end

let congested t = t.congested
let raises t = t.raises
let clears t = t.clears

let reset t = t.congested <- false
