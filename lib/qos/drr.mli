(** Weighted deficit-round-robin scheduler over per-flow sub-queues.

    Generic in both the flow key ['k] and the queued value ['v]; the
    caller supplies each item's byte length so the scheduler never
    inspects payloads.  Flows are created lazily on first [enqueue],
    carry a weight (re-asserted on every enqueue, so classifier
    changes take effect immediately), and share service in proportion
    to [quantum * weight] bytes per round. *)

type ('k, 'v) t

(** [create ~quantum ~max_per_flow ()] builds an empty scheduler.
    [quantum] is the per-visit byte credit for weight-1 flows;
    [max_per_flow] bounds each flow's sub-queue depth in items.
    Raises [Invalid_argument] if either is non-positive. *)
val create : quantum:int -> max_per_flow:int -> unit -> ('k, 'v) t

val quantum : ('k, 'v) t -> int
val max_per_flow : ('k, 'v) t -> int

(** [enqueue t ~key ~weight ~len v] appends [v] to [key]'s sub-queue.
    Returns [false] without queueing when the sub-queue already holds
    [max_per_flow] items — the caller decides the overflow policy
    (XenLoop reroutes that frame through netfront). *)
val enqueue : ('k, 'v) t -> key:'k -> weight:int -> len:int -> 'v -> bool

(** One DRR visit: replenish the ring-head flow's deficit, dequeue the
    longest prefix of its sub-queue whose byte lengths fit, rotate the
    flow to the ring tail.  Flows whose head item exceeds the
    replenished deficit bank the credit and are skipped this call.
    [None] iff the scheduler is empty. *)
val select : ('k, 'v) t -> ('k * ('v * int) list) option

(** [restore t key items] returns the unpushed suffix of a selected
    batch to the front of [key]'s sub-queue (order preserved),
    refunds the consumed deficit, and puts the flow back at the ring
    front so the next [select] resumes with it. *)
val restore : ('k, 'v) t -> 'k -> ('v * int) list -> unit

(** Byte length of the item the next [select] would serve first, or
    [None] when empty.  Used by the drain loop's "does the head fit in
    the FIFO" check. *)
val head_len : ('k, 'v) t -> int option

val flow_length : ('k, 'v) t -> 'k -> int
val flow_bytes : ('k, 'v) t -> 'k -> int
val length : ('k, 'v) t -> int
val bytes : ('k, 'v) t -> int
val is_empty : ('k, 'v) t -> bool

(** Remove and return every queued item, grouped by flow in ring
    (service) order, each flow's items in FIFO order.  Deficits are
    zeroed.  Used at channel teardown to hand frames back to the
    legacy waiting list. *)
val drain_all : ('k, 'v) t -> ('k * 'v * int) list

val clear : ('k, 'v) t -> unit

(** Fold over active (non-empty) flows in service order. *)
val fold_flows :
  ('a -> 'k -> items:int -> bytes:int -> 'a) -> ('k, 'v) t -> 'a -> 'a
