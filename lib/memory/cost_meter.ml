type op =
  | Hypercall of string
  | Page_copy of int
  | Page_zero
  | Event_notify
  | Domain_switch
  | Grant_map
  | Grant_unmap

type t = {
  by_hypercall : (string, int) Hashtbl.t;
  mutable total_hypercalls : int;
  mutable copied : int;
  mutable zeroes : int;
  mutable notifies : int;
  mutable switches : int;
  mutable maps : int;
  mutable unmaps : int;
}

let create () =
  {
    by_hypercall = Hashtbl.create 16;
    total_hypercalls = 0;
    copied = 0;
    zeroes = 0;
    notifies = 0;
    switches = 0;
    maps = 0;
    unmaps = 0;
  }

let record t = function
  | Hypercall name ->
      t.total_hypercalls <- t.total_hypercalls + 1;
      let cur = Option.value ~default:0 (Hashtbl.find_opt t.by_hypercall name) in
      Hashtbl.replace t.by_hypercall name (cur + 1)
  | Page_copy bytes -> t.copied <- t.copied + bytes
  | Page_zero -> t.zeroes <- t.zeroes + 1
  | Event_notify -> t.notifies <- t.notifies + 1
  | Domain_switch -> t.switches <- t.switches + 1
  | Grant_map -> t.maps <- t.maps + 1
  | Grant_unmap -> t.unmaps <- t.unmaps + 1

let hypercalls t = t.total_hypercalls

let hypercall_count t name =
  Option.value ~default:0 (Hashtbl.find_opt t.by_hypercall name)

let bytes_copied t = t.copied
let page_zeroes t = t.zeroes
let event_notifies t = t.notifies
let domain_switches t = t.switches
let grant_maps t = t.maps
let grant_unmaps t = t.unmaps

let reset t =
  Hashtbl.reset t.by_hypercall;
  t.total_hypercalls <- 0;
  t.copied <- 0;
  t.zeroes <- 0;
  t.notifies <- 0;
  t.switches <- 0;
  t.maps <- 0;
  t.unmaps <- 0

let merge_into ~src ~dst =
  Hashtbl.iter
    (fun name n ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt dst.by_hypercall name) in
      Hashtbl.replace dst.by_hypercall name (cur + n))
    src.by_hypercall;
  dst.total_hypercalls <- dst.total_hypercalls + src.total_hypercalls;
  dst.copied <- dst.copied + src.copied;
  dst.zeroes <- dst.zeroes + src.zeroes;
  dst.notifies <- dst.notifies + src.notifies;
  dst.switches <- dst.switches + src.switches;
  dst.maps <- dst.maps + src.maps;
  dst.unmaps <- dst.unmaps + src.unmaps

let pp fmt t =
  Format.fprintf fmt
    "hypercalls=%d copied=%dB zeroes=%d notifies=%d switches=%d maps=%d unmaps=%d"
    t.total_hypercalls t.copied t.zeroes t.notifies t.switches t.maps t.unmaps
