(** Xen-style grant tables.

    Each domain owns a grant table through which it can give other domains
    access to individual pages of its memory.  Two mechanisms exist, as in
    Xen: {e access} grants (the foreign domain maps or copies through the
    page) and {e transfer} grants (page ownership moves between domains).

    Cost accounting follows the paper's description (Sect. 2 and 3.3):
    issuing and revoking a grant is {e not} a hypercall for the granting
    domain (its grant table is mapped into its address space), whereas
    map/unmap/copy/transfer performed by the foreign domain each cost one
    hypercall, recorded against the foreign domain's {!Cost_meter}. *)

type t

type domid = int
type gref = int

type error =
  | Bad_ref
  | Wrong_domain  (** caller is not the domain the grant was issued to *)
  | Still_mapped  (** cannot revoke while a foreign mapping exists *)
  | Not_mapped
  | Read_only  (** write attempted through a read-only grant *)
  | Wrong_kind  (** access op on a transfer grant or vice versa *)
  | Nothing_transferred

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val create : owner:domid -> t
val owner : t -> domid

(** {1 Granter-side operations (no hypercall)} *)

val grant_access : t -> to_dom:domid -> page:Page.t -> writable:bool -> gref
val end_access : t -> gref -> (unit, error) result
val grant_transfer : t -> to_dom:domid -> gref
val take_transferred : t -> gref -> (Page.t, error) result
(** Collect the page a foreign domain transferred into a transfer grant;
    ends the grant. *)

val active_grants : t -> int

val revoke_mappings_for : t -> dom:domid -> int
(** Forget every live mapping held by [dom], returning how many were
    revoked.  This is the hypervisor's domain-destruction path: when a
    domain dies — cleanly or by crashing — Xen tears down its foreign
    mappings so granters are not wedged in [Still_mapped] forever.  Only
    the hypervisor ({!remove_domain} in the machine) may call this. *)

(** {1 Foreign-domain operations (one hypercall each)} *)

val map :
  t -> gref -> by:domid -> meter:Cost_meter.t -> (Page.t, error) result
(** Map a shared page into the foreign domain's address space.  The
    returned page aliases the granter's memory: writes through it are
    shared-memory writes. *)

val unmap : t -> gref -> by:domid -> meter:Cost_meter.t -> (unit, error) result

val copy_from :
  t ->
  gref ->
  by:domid ->
  meter:Cost_meter.t ->
  src_off:int ->
  dst:Bytes.t ->
  dst_off:int ->
  len:int ->
  (unit, error) result
(** GNTTABOP_copy out of the granted page. *)

val copy_to :
  t ->
  gref ->
  by:domid ->
  meter:Cost_meter.t ->
  src:Bytes.t ->
  src_off:int ->
  dst_off:int ->
  len:int ->
  (unit, error) result
(** GNTTABOP_copy into the granted page (requires a writable grant). *)

val transfer :
  t ->
  gref ->
  by:domid ->
  meter:Cost_meter.t ->
  page:Page.t ->
  (Page.t, error) result
(** Transfer [page] into the granter's transfer slot.  Returns a fresh,
    zeroed exchange page for the transferring domain (the zeroing cost is
    recorded, matching the security argument in the paper). *)

(** {1 Fault injection}

    Chaos-harness hook: the injector is consulted on every {!map}
    hypercall; returning [true] fails the map with [Bad_ref], modelling a
    transient GNTST_general_error.  The grant itself is untouched, so a
    retried map can succeed. *)

val set_map_fault_injector : t -> (by:domid -> gref -> bool) option -> unit
val map_faults : t -> int
