(* Pages are Bigarray-backed: the buffer lives outside the OCaml heap, so
   the GC never scans or moves 4 KiB of payload bytes, and the accessors
   below compile to plain loads/stores.  Multi-byte accessors are
   little-endian, composed from byte accesses (portable, no alignment
   requirement — descriptor fields in the FIFOs are packed).

   Two code-generation constraints shape this file:

   - [Bigarray.Array1.unsafe_get] is a compiler primitive ONLY when fully
     applied at a statically-known kind; an eta-reduced alias degrades
     every access to a generic C call with runtime kind dispatch (~7 ns
     per byte instead of a single load).  All call sites below apply the
     primitive directly.
   - There is no stdlib Bytes<->Bigarray blit, so the bulk copies use the
     unaligned 64-bit access builtins ([%caml_bytes_get64u],
     [%caml_bigstring_set64u], ...) to move 8 bytes per load/store pair.
     A 64-bit load+store is a raw byte move, so this is endian-agnostic;
     only the named accessors encode byte order, and those stay as byte
     composition. *)

type buf = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { page_id : int; data : buf }

external ba_get64u : buf -> int -> int64 = "%caml_bigstring_get64u"
external ba_set64u : buf -> int -> int64 -> unit = "%caml_bigstring_set64u"
external bytes_get64u : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external bytes_set64u : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

let size = 4096

let next_id = ref 0

(* Pages are carved out of arena chunks rather than allocated one bigarray
   each.  A bigarray is a GC custom block whose payload bytes count toward
   the collector's custom-memory pacing: allocating a few thousand 4 KiB
   bigarrays (one channel bootstrap) schedules dozens of extra major
   collections over the following run.  Carving [Array1.sub] slices from a
   1 MiB chunk charges the pacing once per 256 pages instead of once per
   page.  Only the current, partially-carved chunk is referenced here;
   a fully-carved chunk stays alive exactly as long as one of its page
   proxies does, so memory is reclaimed just as with per-page allocation. *)
let chunk_pages = 256

let new_chunk () =
  Bigarray.Array1.create Bigarray.char Bigarray.c_layout (chunk_pages * size)

let chunk = ref (new_chunk ())
let chunk_used = ref 0

let create () =
  let page_id = !next_id in
  incr next_id;
  if !chunk_used >= chunk_pages then begin
    chunk := new_chunk ();
    chunk_used := 0
  end;
  let data = Bigarray.Array1.sub !chunk (!chunk_used * size) size in
  incr chunk_used;
  (* Chunks come from malloc unzeroed; a fresh page must read as zeros. *)
  Bigarray.Array1.fill data '\000';
  { page_id; data }

let id t = t.page_id

let check_bounds ~what ~off ~len =
  if off < 0 || len < 0 || off + len > size then
    invalid_arg (Printf.sprintf "Page.%s: out of bounds (off=%d len=%d)" what off len)

(* After [check_bounds] every page index below is in range, so the bodies
   use unchecked accessors. *)

let write t ~off ~src ~src_off ~len =
  check_bounds ~what:"write" ~off ~len;
  if src_off < 0 || src_off + len > Bytes.length src then
    invalid_arg "Page.write: source range out of bounds";
  let data = t.data in
  let n8 = len land lnot 7 in
  let i = ref 0 in
  while !i < n8 do
    let j = !i in
    ba_set64u data (off + j) (bytes_get64u src (src_off + j));
    i := j + 8
  done;
  for j = n8 to len - 1 do
    Bigarray.Array1.unsafe_set data (off + j) (Bytes.unsafe_get src (src_off + j))
  done

let read t ~off ~dst ~dst_off ~len =
  check_bounds ~what:"read" ~off ~len;
  if dst_off < 0 || dst_off + len > Bytes.length dst then
    invalid_arg "Page.read: destination range out of bounds";
  let data = t.data in
  let n8 = len land lnot 7 in
  let i = ref 0 in
  while !i < n8 do
    let j = !i in
    bytes_set64u dst (dst_off + j) (ba_get64u data (off + j));
    i := j + 8
  done;
  for j = n8 to len - 1 do
    Bytes.unsafe_set dst (dst_off + j) (Bigarray.Array1.unsafe_get data (off + j))
  done

let get_u8 t off =
  check_bounds ~what:"get_u8" ~off ~len:1;
  Char.code (Bigarray.Array1.unsafe_get t.data off)

let set_u8 t off v =
  check_bounds ~what:"set_u8" ~off ~len:1;
  Bigarray.Array1.unsafe_set t.data off (Char.unsafe_chr (v land 0xff))

let get_u16 t off =
  check_bounds ~what:"get_u16" ~off ~len:2;
  let data = t.data in
  Char.code (Bigarray.Array1.unsafe_get data off)
  lor (Char.code (Bigarray.Array1.unsafe_get data (off + 1)) lsl 8)

let set_u16 t off v =
  check_bounds ~what:"set_u16" ~off ~len:2;
  let data = t.data in
  Bigarray.Array1.unsafe_set data off (Char.unsafe_chr (v land 0xff));
  Bigarray.Array1.unsafe_set data (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xff))

let get_u32 t off =
  check_bounds ~what:"get_u32" ~off ~len:4;
  let data = t.data in
  Char.code (Bigarray.Array1.unsafe_get data off)
  lor (Char.code (Bigarray.Array1.unsafe_get data (off + 1)) lsl 8)
  lor (Char.code (Bigarray.Array1.unsafe_get data (off + 2)) lsl 16)
  lor (Char.code (Bigarray.Array1.unsafe_get data (off + 3)) lsl 24)

let set_u32 t off v =
  check_bounds ~what:"set_u32" ~off ~len:4;
  let data = t.data in
  Bigarray.Array1.unsafe_set data off (Char.unsafe_chr (v land 0xff));
  Bigarray.Array1.unsafe_set data (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bigarray.Array1.unsafe_set data (off + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bigarray.Array1.unsafe_set data (off + 3) (Char.unsafe_chr ((v lsr 24) land 0xff))

let get_u64 t off =
  check_bounds ~what:"get_u64" ~off ~len:8;
  let data = t.data in
  let lo =
    Char.code (Bigarray.Array1.unsafe_get data off)
    lor (Char.code (Bigarray.Array1.unsafe_get data (off + 1)) lsl 8)
    lor (Char.code (Bigarray.Array1.unsafe_get data (off + 2)) lsl 16)
    lor (Char.code (Bigarray.Array1.unsafe_get data (off + 3)) lsl 24)
  and hi =
    Char.code (Bigarray.Array1.unsafe_get data (off + 4))
    lor (Char.code (Bigarray.Array1.unsafe_get data (off + 5)) lsl 8)
    lor (Char.code (Bigarray.Array1.unsafe_get data (off + 6)) lsl 16)
    lor (Char.code (Bigarray.Array1.unsafe_get data (off + 7)) lsl 24)
  in
  Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int hi) 32)

let set_u64 t off v =
  check_bounds ~what:"set_u64" ~off ~len:8;
  let data = t.data in
  let lo = Int64.to_int (Int64.logand v 0xFFFFFFFFL)
  and hi = Int64.to_int (Int64.logand (Int64.shift_right_logical v 32) 0xFFFFFFFFL) in
  Bigarray.Array1.unsafe_set data off (Char.unsafe_chr (lo land 0xff));
  Bigarray.Array1.unsafe_set data (off + 1) (Char.unsafe_chr ((lo lsr 8) land 0xff));
  Bigarray.Array1.unsafe_set data (off + 2) (Char.unsafe_chr ((lo lsr 16) land 0xff));
  Bigarray.Array1.unsafe_set data (off + 3) (Char.unsafe_chr ((lo lsr 24) land 0xff));
  Bigarray.Array1.unsafe_set data (off + 4) (Char.unsafe_chr (hi land 0xff));
  Bigarray.Array1.unsafe_set data (off + 5) (Char.unsafe_chr ((hi lsr 8) land 0xff));
  Bigarray.Array1.unsafe_set data (off + 6) (Char.unsafe_chr ((hi lsr 16) land 0xff));
  Bigarray.Array1.unsafe_set data (off + 7) (Char.unsafe_chr ((hi lsr 24) land 0xff))

let zero t = Bigarray.Array1.fill t.data '\000'

let is_zeroed t =
  let data = t.data in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < size do
    if ba_get64u data !i <> 0L then ok := false;
    i := !i + 8
  done;
  !ok
