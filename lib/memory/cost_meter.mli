(** Operation accounting.

    The substrate libraries count the operations that dominate Xen inter-VM
    networking cost (hypercalls, page copies, page zeroings, event-channel
    notifications); the hypervisor's cost model converts counts into
    simulated time, and the benchmark harness reports them so experiments
    can explain *why* a data path is slow. *)

type t

type op =
  | Hypercall of string  (** e.g. "gnttab_grant_foreign_access" *)
  | Page_copy of int  (** bytes copied *)
  | Page_zero
  | Event_notify
  | Domain_switch
  | Grant_map  (** one granted page mapped — a per-connect setup cost *)
  | Grant_unmap

val create : unit -> t

val record : t -> op -> unit

val hypercalls : t -> int
val hypercall_count : t -> string -> int
val bytes_copied : t -> int
(** Per-packet data-path copies.  Kept distinct from {!grant_maps} so a
    copies-per-byte figure never smears one-time connect costs over the
    packets that follow. *)

val page_zeroes : t -> int
val event_notifies : t -> int
val domain_switches : t -> int

val grant_maps : t -> int
(** Granted pages mapped (one-time per-connect costs, amortized over the
    channel lifetime — not per-packet work). *)

val grant_unmaps : t -> int

val reset : t -> unit

val merge_into : src:t -> dst:t -> unit

val pp : Format.formatter -> t -> unit
