type domid = int
type gref = int

type error =
  | Bad_ref
  | Wrong_domain
  | Still_mapped
  | Not_mapped
  | Read_only
  | Wrong_kind
  | Nothing_transferred

let error_to_string = function
  | Bad_ref -> "bad grant reference"
  | Wrong_domain -> "grant issued to a different domain"
  | Still_mapped -> "grant still mapped by foreign domain"
  | Not_mapped -> "grant not mapped"
  | Read_only -> "write through read-only grant"
  | Wrong_kind -> "operation does not match grant kind"
  | Nothing_transferred -> "no page has been transferred yet"

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

type kind =
  | Access of { page : Page.t; writable : bool; mutable mapped : bool }
  | Transfer of { mutable incoming : Page.t option }

type entry = { to_dom : domid; kind : kind }

type t = {
  table_owner : domid;
  entries : (gref, entry) Hashtbl.t;
  mutable next_ref : gref;
  mutable map_fault_injector : (by:domid -> gref -> bool) option;
  mutable map_faults : int;
}

let create ~owner =
  { table_owner = owner; entries = Hashtbl.create 64; next_ref = 0;
    map_fault_injector = None; map_faults = 0 }

let set_map_fault_injector t f = t.map_fault_injector <- f
let map_faults t = t.map_faults

let owner t = t.table_owner

let fresh_ref t =
  let r = t.next_ref in
  t.next_ref <- r + 1;
  r

let grant_access t ~to_dom ~page ~writable =
  let r = fresh_ref t in
  Hashtbl.replace t.entries r
    { to_dom; kind = Access { page; writable; mapped = false } };
  r

let grant_transfer t ~to_dom =
  let r = fresh_ref t in
  Hashtbl.replace t.entries r { to_dom; kind = Transfer { incoming = None } };
  r

let end_access t gref =
  match Hashtbl.find_opt t.entries gref with
  | None -> Error Bad_ref
  | Some { kind = Transfer _; _ } -> Error Wrong_kind
  | Some { kind = Access a; _ } ->
      if a.mapped then Error Still_mapped
      else begin
        Hashtbl.remove t.entries gref;
        Ok ()
      end

let take_transferred t gref =
  match Hashtbl.find_opt t.entries gref with
  | None -> Error Bad_ref
  | Some { kind = Access _; _ } -> Error Wrong_kind
  | Some { kind = Transfer tr; _ } -> (
      match tr.incoming with
      | None -> Error Nothing_transferred
      | Some page ->
          Hashtbl.remove t.entries gref;
          Ok page)

let active_grants t = Hashtbl.length t.entries

let revoke_mappings_for t ~dom =
  let revoked = ref 0 in
  Hashtbl.iter
    (fun _ entry ->
      match entry.kind with
      | Access a when entry.to_dom = dom && a.mapped ->
          a.mapped <- false;
          incr revoked
      | Access _ | Transfer _ -> ())
    t.entries;
  !revoked

let lookup_for t gref ~by =
  match Hashtbl.find_opt t.entries gref with
  | None -> Error Bad_ref
  | Some entry -> if entry.to_dom <> by then Error Wrong_domain else Ok entry

let hypercall meter name = Cost_meter.record meter (Cost_meter.Hypercall name)

let map t gref ~by ~meter =
  hypercall meter "gnttab_map_grant_ref";
  let faulted =
    match t.map_fault_injector with
    | None -> false
    | Some f ->
        let hit = f ~by gref in
        if hit then t.map_faults <- t.map_faults + 1;
        hit
  in
  if faulted then Error Bad_ref
  else
  match lookup_for t gref ~by with
  | Error e -> Error e
  | Ok { kind = Transfer _; _ } -> Error Wrong_kind
  | Ok { kind = Access a; _ } ->
      a.mapped <- true;
      Cost_meter.record meter Cost_meter.Grant_map;
      Ok a.page

let unmap t gref ~by ~meter =
  hypercall meter "gnttab_unmap_grant_ref";
  match lookup_for t gref ~by with
  | Error e -> Error e
  | Ok { kind = Transfer _; _ } -> Error Wrong_kind
  | Ok { kind = Access a; _ } ->
      if not a.mapped then Error Not_mapped
      else begin
        a.mapped <- false;
        Cost_meter.record meter Cost_meter.Grant_unmap;
        Ok ()
      end

let copy_from t gref ~by ~meter ~src_off ~dst ~dst_off ~len =
  hypercall meter "gnttab_copy";
  match lookup_for t gref ~by with
  | Error e -> Error e
  | Ok { kind = Transfer _; _ } -> Error Wrong_kind
  | Ok { kind = Access a; _ } ->
      Page.read a.page ~off:src_off ~dst ~dst_off ~len;
      Cost_meter.record meter (Cost_meter.Page_copy len);
      Ok ()

let copy_to t gref ~by ~meter ~src ~src_off ~dst_off ~len =
  hypercall meter "gnttab_copy";
  match lookup_for t gref ~by with
  | Error e -> Error e
  | Ok { kind = Transfer _; _ } -> Error Wrong_kind
  | Ok { kind = Access a; _ } ->
      if not a.writable then Error Read_only
      else begin
        Page.write a.page ~off:dst_off ~src ~src_off ~len;
        Cost_meter.record meter (Cost_meter.Page_copy len);
        Ok ()
      end

let transfer t gref ~by ~meter ~page =
  hypercall meter "gnttab_transfer";
  match lookup_for t gref ~by with
  | Error e -> Error e
  | Ok { kind = Access _; _ } -> Error Wrong_kind
  | Ok { kind = Transfer tr; _ } ->
      tr.incoming <- Some page;
      (* The exchange page handed back must not leak data. *)
      let exchange = Page.create () in
      Cost_meter.record meter Cost_meter.Page_zero;
      Ok exchange
