type error = Out_of_frames

type t = {
  total : int;
  mutable allocated : int;
  owners : (int, int) Hashtbl.t;  (* page id -> owner domid *)
  per_owner : (int, int) Hashtbl.t;  (* domid -> frame count *)
  mutable fault_injector : (owner:int -> count:int -> bool) option;
  mutable alloc_faults : int;
}

let create ~total_frames =
  if total_frames <= 0 then invalid_arg "Frame_allocator.create: no frames";
  { total = total_frames; allocated = 0; owners = Hashtbl.create 256;
    per_owner = Hashtbl.create 16; fault_injector = None; alloc_faults = 0 }

let set_fault_injector t f = t.fault_injector <- f
let alloc_faults t = t.alloc_faults

let fault_exhausted t ~owner ~count =
  match t.fault_injector with
  | None -> false
  | Some f ->
      let hit = f ~owner ~count in
      if hit then t.alloc_faults <- t.alloc_faults + 1;
      hit

let total_frames t = t.total
let free_frames t = t.total - t.allocated

let bump t owner delta =
  let cur = Option.value ~default:0 (Hashtbl.find_opt t.per_owner owner) in
  let next = cur + delta in
  if next = 0 then Hashtbl.remove t.per_owner owner
  else Hashtbl.replace t.per_owner owner next

let allocate_raw t ~owner =
  if t.allocated >= t.total then Error Out_of_frames
  else begin
    let page = Page.create () in
    t.allocated <- t.allocated + 1;
    Hashtbl.replace t.owners (Page.id page) owner;
    bump t owner 1;
    Ok page
  end

let allocate t ~owner =
  if fault_exhausted t ~owner ~count:1 then Error Out_of_frames
  else allocate_raw t ~owner

let release t ~owner page =
  match Hashtbl.find_opt t.owners (Page.id page) with
  | Some o when o = owner ->
      Hashtbl.remove t.owners (Page.id page);
      t.allocated <- t.allocated - 1;
      bump t owner (-1)
  | Some _ -> invalid_arg "Frame_allocator.release: page owned by another domain"
  | None -> invalid_arg "Frame_allocator.release: page not allocated here"

let allocate_many t ~owner ~count =
  if count < 0 then invalid_arg "Frame_allocator.allocate_many: negative count";
  if free_frames t < count || fault_exhausted t ~owner ~count then
    Error Out_of_frames
  else
    Ok
      (Array.init count (fun _ ->
           match allocate_raw t ~owner with
           | Ok page -> page
           | Error Out_of_frames -> assert false))

let owned_by t owner = Option.value ~default:0 (Hashtbl.find_opt t.per_owner owner)

let owners t =
  Hashtbl.fold (fun dom n acc -> (dom, n) :: acc) t.per_owner []
  |> List.sort compare

let release_all t ~owner =
  let mine =
    Hashtbl.fold (fun id o acc -> if o = owner then id :: acc else acc) t.owners []
  in
  List.iter
    (fun id ->
      Hashtbl.remove t.owners id;
      t.allocated <- t.allocated - 1)
    mine;
  Hashtbl.remove t.per_owner owner
