(** Machine pages.

    A page is 4 KiB of real bytes: the XenLoop FIFOs and the netfront rings
    store actual packet payloads in pages, so tests can verify end-to-end
    data integrity, not just event ordering.

    The backing store is a [Bigarray] outside the OCaml heap: the GC never
    scans or copies page contents, and the accessors below are plain
    loads/stores after a single bounds check.  Multi-byte accessors are
    little-endian and have no alignment requirement. *)

type t

val size : int
(** 4096. *)

val create : unit -> t
(** A fresh zeroed page. *)

val id : t -> int
(** Unique identity (monotonically assigned), usable as a pseudo frame
    number. *)

val write : t -> off:int -> src:Bytes.t -> src_off:int -> len:int -> unit
(** @raise Invalid_argument on out-of-bounds access (either side). *)

val read : t -> off:int -> dst:Bytes.t -> dst_off:int -> len:int -> unit

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit

val get_u16 : t -> int -> int
val set_u16 : t -> int -> int -> unit

val get_u32 : t -> int -> int
(** Unboxed: the value is a plain non-negative [int] (OCaml ints are 63-bit,
    so a u32 always fits), which keeps ring-descriptor field reads off the
    minor heap — the old [int32] interface boxed every access. *)

val set_u32 : t -> int -> int -> unit
(** Stores the low 32 bits of the value. *)

val get_u64 : t -> int -> int64
val set_u64 : t -> int -> int64 -> unit

val zero : t -> unit
(** Clear the page (Xen zeroes pages exchanged between domains to prevent
    data leakage). *)

val is_zeroed : t -> bool

