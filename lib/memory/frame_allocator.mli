(** Machine-frame accounting.

    Tracks which domain owns each allocated page and enforces the machine's
    physical memory limit.  XenLoop channel FIFOs draw their pages from
    here, so a machine cannot hand out unbounded shared memory, and
    teardown must return every page (tests assert balance). *)

type t

type error = Out_of_frames

val create : total_frames:int -> t

val total_frames : t -> int
val free_frames : t -> int

val allocate : t -> owner:int -> (Page.t, error) result
(** A fresh zeroed page charged to [owner]. *)

val allocate_many : t -> owner:int -> count:int -> (Page.t array, error) result
(** All-or-nothing. *)

val release : t -> owner:int -> Page.t -> unit
(** @raise Invalid_argument if the page is not currently owned by
    [owner] (double free or theft). *)

val owned_by : t -> int -> int
(** Frames currently charged to a domain. *)

val owners : t -> (int * int) list
(** Every (domid, frame count) with a nonzero balance, sorted by domid —
    the chaos invariant checker sums these against [free_frames] to prove
    conservation. *)

val release_all : t -> owner:int -> unit
(** Return every frame a domain owns (domain destruction). *)

(** {2 Fault injection}

    The injector is consulted once per {!allocate} / {!allocate_many} call
    (not per page of a batch); returning [true] makes the call fail with
    [Out_of_frames] even though frames are free — a transient exhaustion
    the caller must handle like the real thing. *)

val set_fault_injector : t -> (owner:int -> count:int -> bool) option -> unit
val alloc_faults : t -> int
