(** The per-host IP stack.

    One stack instance runs inside each guest (and Dom0, and each native
    host).  It owns the host's devices, neighbour cache, POST_ROUTING
    netfilter hooks, IP fragmentation/reassembly, and in-kernel ICMP echo.
    UDP and TCP are separate layers ({!Udp}, {!Tcp}) that register
    themselves as protocol handlers.

    All protocol processing is charged to the host's vCPU resource, so the
    stack contends with everything else the domain does. *)

type t

exception Unreachable of Netcore.Ip.t
exception No_route of Netcore.Ip.t

val create :
  engine:Sim.Engine.t ->
  params:Hypervisor.Params.t ->
  cpu:Sim.Resource.t ->
  ip:Netcore.Ip.t ->
  mac:Netcore.Mac.t ->
  unit ->
  t

val engine : t -> Sim.Engine.t
val params : t -> Hypervisor.Params.t
val cpu : t -> Sim.Resource.t
val ip_addr : t -> Netcore.Ip.t
val mac_addr : t -> Netcore.Mac.t

val attach_device : t -> Netdevice.t -> unit
(** Attach the host's Ethernet device ([eth0]); the stack installs its
    receive handler on it.  The loopback device is built in. *)

val device : t -> Netdevice.t option
val loopback_device : t -> Netdevice.t

val neighbor : t -> Neighbor.t
val post_routing : t -> Netfilter.t

(** {1 Output path} *)

val resolve : t -> Netcore.Ip.t -> Netcore.Mac.t
(** Next-hop MAC: neighbour cache, or blocking ARP (3 × 1 s retries).
    @raise Unreachable when resolution fails. *)

val ip_send :
  t -> dst:Netcore.Ip.t -> transport:Netcore.Transport.t -> payload:Bytes.t -> unit
(** Route, resolve, build, fragment to the egress MTU, run POST_ROUTING
    hooks on each fragment, and transmit.  Charges protocol tx cost and the
    user-to-kernel copy on the host CPU.  Process context.
    @raise No_route when the destination is off-host and no device is
    attached. *)

val path_mtu : t -> Netcore.Ip.t -> int
(** The MTU IP fragmentation applies for this destination (loopback MTU
    for self-addressed traffic). *)

val tcp_mss : t -> Netcore.Ip.t -> int
(** Segment size for TCP towards this destination: on a TSO-capable egress
    device TCP may emit GSO super-frames up to the device's gso size;
    otherwise MTU - 40. *)

(** {1 Jumbo segmentation offload (DESIGN.md §15)} *)

val set_tx_jumbo_hint : t -> (dst:Netcore.Ip.t -> int) option -> unit
(** Register the xenloop module's answer to "how many TCP payload bytes
    may one segment towards [dst] carry?" — the negotiated gso ceiling
    of an active gso-capable channel, or 0 (no jumbo path; the per-MSS
    sender is untouched).  The hint is consulted per send, so a channel
    tearing down mid-stream simply stops coalescing; a jumbo frame
    already in flight that the xenloop hook then declines is
    software-segmented back to wire-exact MSS before it reaches
    netfront or the physical device. *)

val tx_jumbo_hint : t -> dst:Netcore.Ip.t -> int
(** The current hint for [dst] (0 when none is registered). *)

(** {1 Input path} *)

val inject_rx : t -> Netcore.Packet.t -> unit
(** Deliver a frame into the stack as if it came from a device ([netif_rx]).
    This is the entry point the XenLoop receiver uses.  Process context. *)

val inject_rx_borrowed :
  t -> Netcore.Packet.t -> release:(copied:bool -> unit) -> unit
(** {!inject_rx} for a frame whose payload is a borrowed view of a
    grant-mapped pool slot (loaned-slot receive, DESIGN.md §11).
    [release] must be called exactly once when the payload's borrow ends:
    [~copied:false] if the bytes were consumed or dropped in place,
    [~copied:true] if they had to be duplicated into private memory (a
    parked reassembly fragment, an out-of-order TCP hold).  The transport
    layer claims the release with {!take_rx_release}; if nothing claims it
    by the time delivery returns, it fires here with [~copied:false].
    [release] must tolerate a second call (idempotent). *)

val take_rx_release : t -> (copied:bool -> unit) option
(** Transport-layer side of {!inject_rx_borrowed}: claim (and clear) the
    in-flight delivery's release callback.  [None] for a normal, unborrowed
    delivery — the caller then treats the payload as private memory. *)

val set_protocol_handler :
  t -> Netcore.Ipv4.protocol -> (Netcore.Packet.t -> unit) -> unit
(** Register the UDP or TCP input function.  Handlers receive reassembled
    [Full] packets in process context.  ICMP is handled internally.
    @raise Invalid_argument for [Icmp]. *)

(** {1 Per-flow congestion signals (QoS backpressure, DESIGN.md §14)} *)

val set_congestion_handler :
  t ->
  proto:int ->
  (sport:int -> dst:Netcore.Ip.t -> dport:int -> congested:bool -> unit) ->
  unit
(** Register the transport-layer receiver for congestion edges on flows
    of IP protocol number [proto] (6 = TCP, 17 = UDP).  {!Tcp.attach}
    and {!Udp.create} install theirs. *)

val notify_congestion :
  t ->
  proto:int ->
  sport:int ->
  dst:Netcore.Ip.t ->
  dport:int ->
  congested:bool ->
  unit
(** Deliver a congestion edge for the local flow
    [(proto, sport) -> (dst, dport)].  Called by the XenLoop channel
    when a per-flow watermark crosses; a [sport] of 0 addresses every
    socket towards [dst] (3-tuple aggregate — fragmented-UDP flows
    carry no ports).  No-op when no handler is registered. *)

(** {1 XenLoop control frames} *)

val set_ctrl_handler : t -> (Netcore.Packet.t -> unit) -> unit
(** Handler for frames of the XenLoop layer-3 protocol type. *)

val send_ctrl : t -> dst_mac:Netcore.Mac.t -> Bytes.t -> unit
(** Transmit a XenLoop control frame directly through the Ethernet device,
    below IP and the netfilter hooks. *)

val gratuitous_arp : t -> unit
(** Broadcast a gratuitous ARP announcing this host's IP-to-MAC binding.
    Sent after live migration so that bridges and switches relearn the
    guest's new location. *)

(** {1 ICMP echo} *)

val ping :
  t ->
  dst:Netcore.Ip.t ->
  ?payload_len:int ->
  ?timeout:Sim.Time.span ->
  unit ->
  Sim.Time.span option
(** Send an echo request and wait for the reply; [None] on timeout
    (default 1 s).  Blocking; process context. *)

(** {1 Statistics} *)

type stats = {
  mutable tx_datagrams : int;
  mutable rx_datagrams : int;
  mutable stolen_by_hook : int;
  mutable dropped_not_mine : int;
  mutable echo_requests_served : int;
  mutable sw_segmented : int;
      (** jumbo TCP frames software-segmented back to wire MSS because a
          netfilter hook declined them (DESIGN.md §15 fallback) *)
}

val stats : t -> stats
