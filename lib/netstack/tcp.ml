module T = Netcore.Transport
module P = Netcore.Packet

type error = Refused | Closed | Already_bound

let pp_error fmt = function
  | Refused -> Format.pp_print_string fmt "connection refused"
  | Closed -> Format.pp_print_string fmt "connection closed"
  | Already_bound -> Format.pp_print_string fmt "port already bound"

exception Tcp_error of error

let ephemeral_base = 32768
let initial_rto = Sim.Time.ms 200
let max_rto_backoff = 16

(* 256 KiB receive buffer with a fixed window scale of 4 (RFC 1323 style:
   the 16-bit wire field carries the window in 4-byte units).  Both sides
   of this stack always apply the scale, as if the option were negotiated
   on every connection. *)
let default_recv_capacity = 262_140
let window_scale = 4

(* --- Serial arithmetic on 32-bit sequence numbers --- *)

let seq_add (s : int32) (n : int) = Int32.add s (Int32.of_int n)
let seq_diff (a : int32) (b : int32) = Int32.to_int (Int32.sub a b)
let seq_lt (a : int32) (b : int32) = Int32.sub a b < 0l

(* --- Types --- *)

type conn_key = { local_port : int; peer_ip : Netcore.Ip.t; peer_port : int }

type conn_state = Syn_sent | Syn_received | Established | Conn_closed

type conn = {
  tcp : t;
  key : conn_key;
  conn_mss : int;
  mutable state : conn_state;
  (* Send side *)
  mutable snd_nxt : int32;
  mutable snd_una : int32;
  mutable peer_window : int;
  window_avail : Sim.Condition.t;
  mutable cork : Bytes.t;
      (** autocork buffer (DESIGN.md §11): sub-MSS writes issued while
          data is in flight accumulate here instead of each becoming a
          tinygram segment — and, on a XenLoop channel, each pinning a
          whole pool slot.  Flushes on reaching the segment ceiling: one
          MSS normally, the jumbo limit when segmentation offload is
          negotiated (DESIGN.md §15) — the buffer is grown on demand so
          the sub-MSS tail of one large write coalesces into the front
          of the next jumbo instead of leaving as a runt segment. *)
  mutable cork_len : int;
  mutable nodelay : bool;
      (** TCP_NODELAY: latency-sensitive pipelined senders (MPI-style
          windowed workloads) opt out of autocorking entirely *)
  mutable congested : bool;
      (** per-flow congestion signal from below (QoS backpressure,
          DESIGN.md §14): while set, the effective send window is
          clamped to one MSS and the flight-drained autocork flush is
          deferred, so the connection trickles instead of refilling the
          channel's sub-queue *)
  (* Receive side *)
  mutable rcv_nxt : int32;
  recv_chunks : (Bytes.t * (copied:bool -> unit) option) Queue.t;
      (** in-order data; a chunk delivered as a borrowed pool-slot view
          (loaned-slot receive, DESIGN.md §11) carries its release, fired
          when the app drains past it *)
  mutable head_offset : int;
  mutable recv_buffered : int;
  recv_capacity : int;
  mutable fin_received : bool;
  mutable fin_sent : bool;
  mutable unacked_segments : int;
      (** received data segments not yet acknowledged (delayed ACK) *)
  mutable ooo_segments : (int32 * Bytes.t) list;
      (** out-of-order data held for reassembly, sorted by sequence *)
  (* Retransmission: the substrate is normally lossless, but frames die
     during vif detach / migration blackout, so sequence-consuming segments
     are kept until acknowledged and retransmitted on timeout. *)
  retx_queue : (int32 * Bytes.t * Netcore.Transport.tcp_flags) Queue.t;
  mutable rto_armed : bool;
  mutable rto_backoff : int;
  data_arrived : Sim.Condition.t;
  state_changed : Sim.Condition.t;
  mutable sent_bytes : int;
  mutable received_bytes : int;
  mutable window_announced : int;  (** last advertised window *)
}

and listener = { l_port : int; accept_q : conn Sim.Mailbox.t; l_tcp : t }

and t = {
  stack : Stack.t;
  conns : (conn_key, conn) Hashtbl.t;
  listeners : (int, listener) Hashtbl.t;
  mutable next_ephemeral : int;
  mutable isn : int32;
}

let mss c = c.conn_mss
let is_congested c = c.congested
let peer c = (c.key.peer_ip, c.key.peer_port)
let local_port c = c.key.local_port
let bytes_sent c = c.sent_bytes
let bytes_received c = c.received_bytes

let params c = Stack.params c.tcp.stack
let cpu c = Stack.cpu c.tcp.stack
let conn_engine c = Stack.engine c.tcp.stack

let current_window c = c.recv_capacity - c.recv_buffered

(* The window the send side actually respects: the peer's advertised
   window, clamped to one MSS while the channel below signals
   congestion (a cwnd clamp in a stack whose loss-free substrate never
   grew a real congestion window). *)
let send_window c = if c.congested then min c.peer_window c.conn_mss else c.peer_window

(* --- Segment transmission --- *)

let seq_consumed payload (flags : T.tcp_flags) =
  Bytes.length payload + (if flags.T.syn then 1 else 0) + if flags.T.fin then 1 else 0

let prune_retx c =
  let pruned = ref false in
  let continue_pruning = ref true in
  while !continue_pruning && not (Queue.is_empty c.retx_queue) do
    let seq, payload, flags = Queue.peek c.retx_queue in
    let seg_end = seq_add seq (seq_consumed payload flags) in
    if seq_diff c.snd_una seg_end >= 0 then begin
      ignore (Queue.pop c.retx_queue);
      pruned := true
    end
    else continue_pruning := false
  done;
  if !pruned then c.rto_backoff <- 1

let rec arm_rto c =
  if not c.rto_armed then begin
    c.rto_armed <- true;
    let delay = Sim.Time.span_scale c.rto_backoff initial_rto in
    Sim.Engine.after (conn_engine c) delay (fun () ->
        c.rto_armed <- false;
        if c.state <> Conn_closed then begin
          prune_retx c;
          match Queue.peek_opt c.retx_queue with
          | None -> ()
          | Some (seq, payload, flags) ->
              (* Timeout: resend the oldest unacknowledged segment. *)
              if c.rto_backoff < max_rto_backoff then
                c.rto_backoff <- c.rto_backoff * 2;
              (try send_segment c ~seq ~flags ~payload with
              | Stack.Unreachable _ | Stack.No_route _ -> ());
              arm_rto c
        end)
  end

and send_segment c ~seq ~flags ~payload =
  let header =
    {
      T.tcp_src_port = c.key.local_port;
      tcp_dst_port = c.key.peer_port;
      seq;
      ack_seq = c.rcv_nxt;
      flags;
      window = current_window c / window_scale;
    }
  in
  c.window_announced <- header.T.window * window_scale;
  Stack.ip_send c.tcp.stack ~dst:c.key.peer_ip ~transport:(T.Tcp header) ~payload

(* Transmit a sequence-consuming segment and keep it for retransmission. *)
let send_tracked c ~seq ~flags ~payload =
  Queue.push (seq, payload, flags) c.retx_queue;
  arm_rto c;
  send_segment c ~seq ~flags ~payload

(* Send as much of the cork as the peer window admits.  The cork never
   holds a full MSS, so this is at most one segment; PSH unconditionally —
   corked bytes are always the tail of an application write, and the
   immediate ACK it forces is what re-triggers the flush machinery. *)
let cork_flush_avail c =
  if c.cork_len > 0 && c.state = Established then begin
    let in_flight = seq_diff c.snd_nxt c.snd_una in
    let window_room = send_window c - in_flight in
    if window_room > 0 then begin
      let len = min c.cork_len window_room in
      let payload = Bytes.sub c.cork 0 len in
      if len < c.cork_len then Bytes.blit c.cork len c.cork 0 (c.cork_len - len);
      c.cork_len <- c.cork_len - len;
      (* Advance [snd_nxt] before transmitting: [send_tracked] yields
         inside the CPU charge, and this flush may run in the receive
         fiber (handle_ack) concurrently with the app fiber sitting in
         [send] — both picking up the same pre-update [snd_nxt] would
         emit two different segments at one sequence number. *)
      let seq = c.snd_nxt in
      c.snd_nxt <- seq_add c.snd_nxt len;
      c.sent_bytes <- c.sent_bytes + len;
      send_tracked c ~seq
        ~flags:{ T.no_flags with T.ack = true; psh = true }
        ~payload
    end
  end

let flush_cork_blocking c =
  while c.cork_len > 0 && c.state = Established do
    let in_flight = seq_diff c.snd_nxt c.snd_una in
    if send_window c - in_flight <= 0 then Sim.Condition.await c.window_avail
    else cork_flush_avail c
  done

let set_nodelay c v =
  c.nodelay <- v;
  if v then flush_cork_blocking c

let send_pure_ack c =
  c.unacked_segments <- 0;
  Sim.Resource.use (cpu c) (params c).Hypervisor.Params.tcp_ack;
  send_segment c ~seq:c.snd_nxt
    ~flags:{ T.no_flags with T.ack = true }
    ~payload:Bytes.empty

(* Delayed ACK (no timer needed: the substrate is lossless, and senders
   set PSH on the tail of every write, which forces an immediate ACK). *)
let ack_received_data c ~pushed =
  c.unacked_segments <- c.unacked_segments + 1;
  if pushed || c.unacked_segments >= 2 then send_pure_ack c

let send_rst t ~dst ~dst_port ~src_port ~seq =
  let header =
    {
      T.tcp_src_port = src_port;
      tcp_dst_port = dst_port;
      seq;
      ack_seq = 0l;
      flags = { T.no_flags with T.rst = true; ack = true };
      window = 0;
    }
  in
  Stack.ip_send t.stack ~dst ~transport:(T.Tcp header) ~payload:Bytes.empty

(* --- Receive-side buffering --- *)

let append_data c ?release payload =
  Queue.push (payload, release) c.recv_chunks;
  c.recv_buffered <- c.recv_buffered + Bytes.length payload;
  c.received_bytes <- c.received_bytes + Bytes.length payload

let take_data c max =
  let buf = Buffer.create (min max c.recv_buffered) in
  let rec fill () =
    if Buffer.length buf < max && not (Queue.is_empty c.recv_chunks) then begin
      let head, head_release = Queue.peek c.recv_chunks in
      let available = Bytes.length head - c.head_offset in
      let want = max - Buffer.length buf in
      if available <= want then begin
        Buffer.add_subbytes buf head c.head_offset available;
        ignore (Queue.pop c.recv_chunks);
        (* Chunk fully drained into the app's buffer: the borrow ends —
           the recv copy is the same one the private-buffer path pays. *)
        (match head_release with Some r -> r ~copied:false | None -> ());
        c.head_offset <- 0;
        fill ()
      end
      else begin
        Buffer.add_subbytes buf head c.head_offset want;
        c.head_offset <- c.head_offset + want
      end
    end
  in
  fill ();
  let taken = Buffer.length buf in
  c.recv_buffered <- c.recv_buffered - taken;
  Buffer.to_bytes buf

(* --- Connection cleanup --- *)

let maybe_reap c =
  if c.fin_sent && c.fin_received then begin
    Hashtbl.remove c.tcp.conns c.key;
    if c.state <> Conn_closed then c.state <- Conn_closed
  end

let abort c =
  c.state <- Conn_closed;
  (* End any borrows parked in the receive buffer; the bytes stay readable
     to a late reader, but the pool slots must not remain pinned. *)
  let kept = Queue.create () in
  Queue.transfer c.recv_chunks kept;
  Queue.iter
    (fun (payload, release) ->
      (match release with Some r -> r ~copied:false | None -> ());
      Queue.push (payload, None) c.recv_chunks)
    kept;
  Hashtbl.remove c.tcp.conns c.key;
  Sim.Condition.broadcast c.window_avail;
  Sim.Condition.broadcast c.data_arrived;
  Sim.Condition.broadcast c.state_changed

(* --- Segment input --- *)

let handle_ack c (h : T.tcp) =
  if h.T.flags.T.ack then begin
    if seq_lt c.snd_una h.T.ack_seq then c.snd_una <- h.T.ack_seq;
    c.peer_window <- h.T.window * window_scale;
    prune_retx c;
    (* Autocork: the flight just drained — a corked tail must not sit
       waiting for application bytes that may never come.  Under a
       congestion signal the flush is deferred: the tail waits for the
       clear edge instead of poking the congested channel. *)
    if c.cork_len > 0 && (not c.congested) && seq_diff c.snd_nxt c.snd_una = 0 then
      cork_flush_avail c;
    Sim.Condition.broadcast c.window_avail
  end

let handle_segment_for_conn c ~release (h : T.tcp) payload =
  let p = params c in
  (* A borrowed payload is consumed out of the pool slot — no kernel copy
     to charge on this edge. *)
  Sim.Resource.use (cpu c)
    (if Bytes.length payload = 0 then p.Hypervisor.Params.tcp_ack
     else
       match release with
       | Some _ -> p.Hypervisor.Params.tcp_rx
       | None ->
           Sim.Time.span_add p.Hypervisor.Params.tcp_rx
             (Hypervisor.Params.copy_cost p (Bytes.length payload)));
  let release_pending = ref release in
  let end_borrow ~copied =
    match !release_pending with
    | Some r ->
        release_pending := None;
        r ~copied
    | None -> ()
  in
  if h.T.flags.T.rst then begin
    end_borrow ~copied:false;
    abort c
  end
  else begin
    match c.state with
    | Syn_sent ->
        if h.T.flags.T.syn && h.T.flags.T.ack then begin
          c.rcv_nxt <- seq_add h.T.seq 1;
          handle_ack c h;
          c.state <- Established;
          send_pure_ack c;
          Sim.Condition.broadcast c.state_changed
        end
    | Syn_received ->
        handle_ack c h;
        if h.T.flags.T.ack && seq_diff c.snd_una c.snd_nxt >= 0 then begin
          c.state <- Established;
          Sim.Condition.broadcast c.state_changed;
          (* Deliver to the accept queue now that the handshake is done. *)
          match Hashtbl.find_opt c.tcp.listeners c.key.local_port with
          | Some listener -> Sim.Mailbox.send listener.accept_q c
          | None -> ()
        end
    | Established | Conn_closed ->
        handle_ack c h;
        let seg_len = Bytes.length payload in
        if seg_len > 0 then begin
          if Int32.equal h.T.seq c.rcv_nxt then begin
            (* In-order: the borrowed view parks in the receive queue and
               releases when the app drains past it. *)
            let r = !release_pending in
            release_pending := None;
            append_data c ?release:r payload;
            c.rcv_nxt <- seq_add c.rcv_nxt seg_len;
            (* Drain any out-of-order segments that are now contiguous. *)
            let rec drain () =
              match c.ooo_segments with
              | (seq, data) :: rest when Int32.equal seq c.rcv_nxt ->
                  c.ooo_segments <- rest;
                  append_data c data;
                  c.rcv_nxt <- seq_add c.rcv_nxt (Bytes.length data);
                  drain ()
              | (seq, _) :: rest when seq_lt seq c.rcv_nxt ->
                  (* Stale duplicate overtaken by the contiguous stream. *)
                  c.ooo_segments <- rest;
                  drain ()
              | _ -> ()
            in
            drain ();
            Sim.Condition.broadcast c.data_arrived;
            ack_received_data c ~pushed:h.T.flags.T.psh
          end
          else if seq_lt h.T.seq c.rcv_nxt then
            (* Duplicate: re-ACK so the peer can make progress. *)
            send_pure_ack c
          else begin
            (* Future data: held in reassembly memory until the gap fills —
               a borrowed view cannot stay pinned for that long, so the
               hold counts as the borrow degenerating into a copy. *)
            if not (List.exists (fun (s, _) -> Int32.equal s h.T.seq) c.ooo_segments)
            then begin
              end_borrow ~copied:true;
              c.ooo_segments <-
                List.sort
                  (fun (a, _) (b, _) -> if seq_lt a b then -1 else 1)
                  ((h.T.seq, payload) :: c.ooo_segments)
            end;
            send_pure_ack c
          end
        end;
        if h.T.flags.T.fin && Int32.equal h.T.seq c.rcv_nxt && not c.fin_received
        then begin
          c.fin_received <- true;
          c.rcv_nxt <- seq_add c.rcv_nxt 1;
          Sim.Condition.broadcast c.data_arrived;
          send_pure_ack c;
          maybe_reap c
        end
  end;
  (* Anything that did not park the payload (handshake states, stale
     duplicates, pure ACKs) ends the borrow untouched. *)
  end_borrow ~copied:false

let fresh_isn t =
  t.isn <- Int32.add t.isn 64021l;
  t.isn

let make_conn t ~key ~mss ~state ~isn =
  {
    tcp = t;
    key;
    conn_mss = mss;
    state;
    snd_nxt = isn;
    snd_una = isn;
    peer_window = default_recv_capacity;
    window_avail = Sim.Condition.create ();
    cork = Bytes.create (max 1 mss);
    cork_len = 0;
    nodelay = false;
    congested = false;
    rcv_nxt = 0l;
    recv_chunks = Queue.create ();
    head_offset = 0;
    recv_buffered = 0;
    recv_capacity = default_recv_capacity;
    fin_received = false;
    fin_sent = false;
    unacked_segments = 0;
    ooo_segments = [];
    retx_queue = Queue.create ();
    rto_armed = false;
    rto_backoff = 1;
    data_arrived = Sim.Condition.create ();
    state_changed = Sim.Condition.create ();
    sent_bytes = 0;
    received_bytes = 0;
    window_announced = default_recv_capacity;
  }

let handle_syn t (header : Netcore.Ipv4.header) (h : T.tcp) =
  match Hashtbl.find_opt t.listeners h.T.tcp_dst_port with
  | None ->
      send_rst t ~dst:header.Netcore.Ipv4.src ~dst_port:h.T.tcp_src_port
        ~src_port:h.T.tcp_dst_port ~seq:0l
  | Some _listener ->
      let key =
        {
          local_port = h.T.tcp_dst_port;
          peer_ip = header.Netcore.Ipv4.src;
          peer_port = h.T.tcp_src_port;
        }
      in
      let mss = Stack.tcp_mss t.stack header.Netcore.Ipv4.src in
      let isn = fresh_isn t in
      let c = make_conn t ~key ~mss ~state:Syn_received ~isn in
      c.rcv_nxt <- seq_add h.T.seq 1;
      c.peer_window <- h.T.window * window_scale;
      Hashtbl.replace t.conns key c;
      (* SYN-ACK consumes one sequence number. *)
      send_tracked c ~seq:c.snd_nxt
        ~flags:{ T.no_flags with T.syn = true; ack = true }
        ~payload:Bytes.empty;
      c.snd_nxt <- seq_add c.snd_nxt 1

let handle_packet t (packet : P.t) =
  match packet.P.body with
  | P.Ipv4_body { header; content = P.Full { transport = T.Tcp h; payload } } -> (
      let key =
        {
          local_port = h.T.tcp_dst_port;
          peer_ip = header.Netcore.Ipv4.src;
          peer_port = h.T.tcp_src_port;
        }
      in
      let release = Stack.take_rx_release t.stack in
      match Hashtbl.find_opt t.conns key with
      | Some conn -> handle_segment_for_conn conn ~release h payload
      | None ->
          (match release with Some r -> r ~copied:false | None -> ());
          if h.T.flags.T.syn && not h.T.flags.T.ack then handle_syn t header h
          else if not h.T.flags.T.rst then
            send_rst t ~dst:header.Netcore.Ipv4.src ~dst_port:h.T.tcp_src_port
              ~src_port:h.T.tcp_dst_port ~seq:h.T.ack_seq)
  | _ -> ()

let attach stack =
  let t =
    {
      stack;
      conns = Hashtbl.create 16;
      listeners = Hashtbl.create 4;
      next_ephemeral = ephemeral_base;
      isn = 1013904223l;
    }
  in
  Stack.set_protocol_handler stack Netcore.Ipv4.Tcp (handle_packet t);
  (* QoS backpressure (DESIGN.md §14): a channel watermark edge on one
     of our flows toggles the cwnd clamp.  The clear edge may arrive in
     XenLoop's own send/drain context, so the catch-up cork flush is
     deferred to a fresh fiber rather than re-entering the netfilter
     hook from inside it; blocked senders are woken immediately. *)
  Stack.set_congestion_handler stack ~proto:6 (fun ~sport ~dst ~dport ~congested ->
      let apply c =
        if c.congested <> congested then begin
          c.congested <- congested;
          if not congested then begin
            Sim.Condition.broadcast c.window_avail;
            if c.cork_len > 0 && seq_diff c.snd_nxt c.snd_una = 0 then
              Sim.Engine.spawn (Stack.engine stack) (fun () -> cork_flush_avail c)
          end
        end
      in
      Hashtbl.iter
        (fun key c ->
          if
            Netcore.Ip.equal key.peer_ip dst
            && (sport = 0 || key.local_port = sport)
            && (dport = 0 || key.peer_port = dport)
          then apply c)
        t.conns);
  t

(* --- Blocking API --- *)

let listen t ~port =
  if Hashtbl.mem t.listeners port then Error Already_bound
  else begin
    let listener = { l_port = port; accept_q = Sim.Mailbox.create (); l_tcp = t } in
    Hashtbl.replace t.listeners port listener;
    Ok listener
  end

let accept listener =
  let t = listener.l_tcp in
  Sim.Resource.use (Stack.cpu t.stack) (Stack.params t.stack).Hypervisor.Params.syscall;
  Sim.Mailbox.recv listener.accept_q

let accept_opt listener = Sim.Mailbox.recv_opt listener.accept_q

let alloc_ephemeral t =
  (* Ports are plentiful in the simulation: scan forward from the cursor. *)
  let rec scan port =
    let in_use =
      Hashtbl.fold (fun k _ acc -> acc || k.local_port = port) t.conns false
    in
    if in_use then scan (port + 1) else port
  in
  let port = scan t.next_ephemeral in
  t.next_ephemeral <- port + 1;
  port

let connect t ?src_port ~dst ~dst_port () =
  let stack = t.stack in
  Sim.Resource.use (Stack.cpu stack) (Stack.params stack).Hypervisor.Params.syscall;
  let local_port =
    match src_port with Some p -> p | None -> alloc_ephemeral t
  in
  let key = { local_port; peer_ip = dst; peer_port = dst_port } in
  let mss = Stack.tcp_mss stack dst in
  let isn = fresh_isn t in
  let c = make_conn t ~key ~mss ~state:Syn_sent ~isn in
  Hashtbl.replace t.conns key c;
  send_tracked c ~seq:c.snd_nxt
    ~flags:{ T.no_flags with T.syn = true }
    ~payload:Bytes.empty;
  c.snd_nxt <- seq_add c.snd_nxt 1;
  while c.state = Syn_sent do
    Sim.Condition.await c.state_changed
  done;
  if c.state = Established then Ok c else Error Refused

let send c data =
  let p = params c in
  Sim.Resource.use (cpu c) p.Hypervisor.Params.syscall;
  let total = Bytes.length data in
  let off = ref 0 in
  (* Jumbo segmentation offload (DESIGN.md §15): when the stack's hint
     says this peer is reachable over a gso-capable xenloop channel, one
     segment may carry up to the negotiated ceiling instead of one MSS.
     The hint is 0 everywhere else, so the per-MSS sender below is
     bit-for-bit untouched.  The payload of one segment is additionally
     capped so the IPv4 total length (payload + 40 bytes of IP/TCP
     headers) still fits the datagram's 16-bit length field — a 64 KiB
     ceiling would otherwise wrap it. *)
  let seg_limit =
    max c.conn_mss
      (min
         (Stack.tx_jumbo_hint c.tcp.stack ~dst:c.key.peer_ip)
         (65535 - Netcore.Ipv4.header_length - 20))
  in
  if Bytes.length c.cork < seg_limit then begin
    let grown = Bytes.create seg_limit in
    Bytes.blit c.cork 0 grown 0 c.cork_len;
    c.cork <- grown
  end;
  while !off < total do
    if c.state <> Established then raise (Tcp_error Closed);
    if c.cork_len > 0 then begin
      (* Top up the cork first so bytes leave in order; a full cork
         flushes as one ceiling-sized segment.  [seg_limit] may have
         shrunk below the corked length (channel torn down mid-stream):
         top up nothing and flush — the standard-path resegmenter cuts
         the oversized flush back to wire MSS. *)
      let n = max 0 (min (seg_limit - c.cork_len) (total - !off)) in
      Bytes.blit data !off c.cork c.cork_len n;
      c.cork_len <- c.cork_len + n;
      off := !off + n;
      if c.cork_len >= seg_limit then flush_cork_blocking c
    end
    else begin
      let in_flight = seq_diff c.snd_nxt c.snd_una in
      let window_room = send_window c - in_flight in
      let remaining = total - !off in
      if (not c.nodelay) && total * 2 <= c.conn_mss && in_flight > 0 then begin
        (* Autocork (Nagle): a whole small write (at most half an MSS, so
           near-MSS streaming writes stay on the direct path) with data
           still unacked waits for more bytes or the flight to drain
           instead of becoming a tinygram segment — on a XenLoop loan
           channel every such segment would otherwise pin a whole pool
           slot.  Only whole small writes cork: the sub-MSS tail of a
           larger write still goes out directly with PSH, because its
           mid-write siblings carry no PSH and a delayed-ACK receiver
           would otherwise sit on the ACK the corked tail is waiting
           for. *)
        Bytes.blit data !off c.cork 0 remaining;
        c.cork_len <- remaining;
        off := total
      end
      else if
        (not c.nodelay) && seg_limit > c.conn_mss && remaining < c.conn_mss
        && in_flight > 0
      then begin
        (* Jumbo tail coalescing: the IPv4 length field caps one jumbo
           at 65495 B of payload, so a 64 KiB application write leaves a
           runt behind the jumbo it just emitted.  Corking the runt lets
           it ride the front of the next write's jumbo — a back-to-back
           stream emits exactly one descriptor per write — while the
           flight-drained autocork flush bounds its latency when the
           stream goes quiet.  Guarded on [seg_limit > conn_mss], so the
           per-MSS path never takes it. *)
        Bytes.blit data !off c.cork 0 remaining;
        c.cork_len <- remaining;
        off := total
      end
      else if window_room <= 0 then Sim.Condition.await c.window_avail
      else begin
        let len = min (min seg_limit remaining) window_room in
        let last = !off + len >= total in
        let payload = Bytes.sub data !off len in
        (* Same pre-update discipline as [cork_flush_avail]: an ACK
           arriving while [send_tracked] yields can flush the cork from
           the receive fiber, which must see this segment's sequence
           space as already consumed. *)
        let seq = c.snd_nxt in
        c.snd_nxt <- seq_add c.snd_nxt len;
        c.sent_bytes <- c.sent_bytes + len;
        off := !off + len;
        send_tracked c ~seq
          ~flags:{ T.no_flags with T.ack = true; psh = last }
          ~payload
      end
    end
  done

let recv c ~max =
  let p = params c in
  Sim.Resource.use (cpu c) p.Hypervisor.Params.syscall;
  let blocked = ref false in
  while c.recv_buffered = 0 && not c.fin_received && c.state <> Conn_closed do
    blocked := true;
    Sim.Condition.await c.data_arrived
  done;
  if !blocked then Sim.Resource.use (cpu c) p.Hypervisor.Params.app_wakeup;
  if c.recv_buffered = 0 then Bytes.empty
  else begin
    let window_before = current_window c in
    let data = take_data c max in
    (* Window-update ACK if the drain reopened a nearly-closed window. *)
    if window_before < c.conn_mss && current_window c >= c.conn_mss then
      send_pure_ack c;
    data
  end

let recv_exact c n =
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    let chunk = recv c ~max:(n - Buffer.length buf) in
    if Bytes.length chunk = 0 then raise (Tcp_error Closed);
    Buffer.add_bytes buf chunk
  done;
  Buffer.to_bytes buf

let close c =
  if not c.fin_sent && c.state <> Conn_closed then begin
    c.fin_sent <- true;
    (* A corked tail goes out before the FIN so the stream ends complete
       and in order. *)
    flush_cork_blocking c;
    (* Wait for all data to be acknowledged before FIN, so the FIN carries
       the right sequence number and the peer sees an ordered stream end. *)
    while (c.state = Established && seq_diff c.snd_nxt c.snd_una > 0)
          || (c.state = Established && c.cork_len > 0)
    do
      flush_cork_blocking c;
      Sim.Condition.await c.window_avail
    done;
    if c.state <> Conn_closed then begin
      send_tracked c ~seq:c.snd_nxt
        ~flags:{ T.no_flags with T.fin = true; ack = true }
        ~payload:Bytes.empty;
      c.snd_nxt <- seq_add c.snd_nxt 1;
      maybe_reap c
    end
  end
