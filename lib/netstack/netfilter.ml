type verdict = Accept | Steal

type hook_handle = int

type hook =
  | Single of (Netcore.Packet.t -> verdict)
  | Batch of (Netcore.Packet.t list -> verdict list)

type t = {
  mutable hooks : (hook_handle * hook) list;
  mutable next_handle : int;
}

let create () = { hooks = []; next_handle = 0 }

let add t hook =
  let h = t.next_handle in
  t.next_handle <- h + 1;
  t.hooks <- t.hooks @ [ (h, hook) ];
  h

let register t f = add t (Single f)
let register_batch t f = add t (Batch f)

let unregister t handle = t.hooks <- List.filter (fun (h, _) -> h <> handle) t.hooks

let apply_one hook packet =
  match hook with
  | Single f -> f packet
  | Batch f -> ( match f [ packet ] with [ v ] -> v | _ -> Accept)

let run t packet =
  let rec go = function
    | [] -> Accept
    | (_, hook) :: rest -> (
        match apply_one hook packet with Steal -> Steal | Accept -> go rest)
  in
  go t.hooks

let pad_verdicts packets vs =
  (* The general path treats a short verdict list as Accept for the rest;
     the single-hook fast path must agree. *)
  let rec go packets vs acc =
    match (packets, vs) with
    | [], _ -> List.rev acc
    | _ :: ps, v :: vs' -> go ps vs' (v :: acc)
    | _ :: ps, [] -> go ps [] (Accept :: acc)
  in
  go packets vs []

let rec run_batch t packets =
  match t.hooks with
  | [] -> List.map (fun _ -> Accept) packets
  | [ (_, Single f) ] -> List.map (fun p -> f p) packets
  | [ (_, Batch f) ] -> pad_verdicts packets (f packets)
  | _ -> run_batch_general t packets

and run_batch_general t packets =
  (* Hooks run in registration order over the whole burst; a packet stolen
     by an earlier hook is not shown to later ones.  Relative order within
     the burst is preserved for every hook. *)
  let n = List.length packets in
  let verdicts = Array.make n Accept in
  let indexed = List.mapi (fun i p -> (i, p)) packets in
  let (_ : (int * Netcore.Packet.t) list) =
    List.fold_left
      (fun remaining (_, hook) ->
        match remaining with
        | [] -> []
        | _ -> (
            match hook with
            | Single f ->
                List.filter
                  (fun (i, p) ->
                    match f p with
                    | Steal ->
                        verdicts.(i) <- Steal;
                        false
                    | Accept -> true)
                  remaining
            | Batch f ->
                let vs = f (List.map snd remaining) in
                let rec keep rem vs acc =
                  match (rem, vs) with
                  | [], _ -> List.rev acc
                  | rem, [] -> List.rev_append acc rem
                  | (i, p) :: rem', v :: vs' -> (
                      match v with
                      | Steal ->
                          verdicts.(i) <- Steal;
                          keep rem' vs' acc
                      | Accept -> keep rem' vs' ((i, p) :: acc))
                in
                keep remaining vs []))
      indexed t.hooks
  in
  Array.to_list verdicts

let hook_count t = List.length t.hooks
