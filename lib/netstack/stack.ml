module P = Netcore.Packet
module T = Netcore.Transport

exception Unreachable of Netcore.Ip.t
exception No_route of Netcore.Ip.t

type stats = {
  mutable tx_datagrams : int;
  mutable rx_datagrams : int;
  mutable stolen_by_hook : int;
  mutable dropped_not_mine : int;
  mutable echo_requests_served : int;
  mutable sw_segmented : int;
      (** jumbo TCP frames software-segmented back to wire MSS because a
          netfilter hook declined them (DESIGN.md §15 fallback) *)
}

type t = {
  s_engine : Sim.Engine.t;
  s_params : Hypervisor.Params.t;
  s_cpu : Sim.Resource.t;
  s_ip : Netcore.Ip.t;
  s_mac : Netcore.Mac.t;
  mutable eth : Netdevice.t option;
  lo : Netdevice.t;
  s_neighbor : Neighbor.t;
  s_post_routing : Netfilter.t;
  reassembler : Netcore.Fragment.reassembler;
  mutable next_ident : int;
  mutable next_icmp_ident : int;
  mutable udp_handler : (P.t -> unit) option;
  mutable tcp_handler : (P.t -> unit) option;
  mutable ctrl_handler : (P.t -> unit) option;
  (* Loaned-slot receive (DESIGN.md §11): set for the duration of one
     [inject_rx_borrowed] delivery; the transport layer that decides to
     keep the payload claims it with [take_rx_release]. *)
  mutable pending_release : (copied:bool -> unit) option;
  (* Segmentation offload (DESIGN.md §15): the xenloop module answers
     "how many TCP payload bytes may one segment to [dst] carry?"; 0
     means no jumbo path and the per-MSS sender is untouched. *)
  mutable jumbo_hint : (dst:Netcore.Ip.t -> int) option;
  (* Per-flow congestion signals from below (QoS backpressure,
     DESIGN.md §14): transport layers register by protocol number so a
     channel watermark edge can reach the owning socket. *)
  congestion_handlers :
    (int, sport:int -> dst:Netcore.Ip.t -> dport:int -> congested:bool -> unit)
    Hashtbl.t;
  ping_waiters : (int, unit -> unit) Hashtbl.t;
  s_stats : stats;
}

let engine t = t.s_engine
let params t = t.s_params
let cpu t = t.s_cpu
let ip_addr t = t.s_ip
let mac_addr t = t.s_mac
let device t = t.eth
let loopback_device t = t.lo
let neighbor t = t.s_neighbor
let post_routing t = t.s_post_routing
let stats t = t.s_stats

let fresh_ident t =
  let i = t.next_ident in
  t.next_ident <- (i + 1) land 0xFFFF;
  i

let use_cpu t span = Sim.Resource.use t.s_cpu span

let set_tx_jumbo_hint t f = t.jumbo_hint <- f

let tx_jumbo_hint t ~dst =
  match t.jumbo_hint with None -> 0 | Some f -> max 0 (f ~dst)

(* ------------------------------------------------------------------ *)
(* Input path *)

let is_for_us t (packet : P.t) =
  Netcore.Mac.equal packet.P.dst_mac t.s_mac
  || Netcore.Mac.is_broadcast packet.P.dst_mac

let handle_arp t (msg : Netcore.Arp.t) =
  use_cpu t t.s_params.Hypervisor.Params.arp_proc;
  (* Every ARP message teaches us the sender's address. *)
  Neighbor.resolved t.s_neighbor msg.Netcore.Arp.sender_ip msg.Netcore.Arp.sender_mac;
  match msg.Netcore.Arp.op with
  | Netcore.Arp.Request when Netcore.Ip.equal msg.Netcore.Arp.target_ip t.s_ip -> (
      match t.eth with
      | None -> ()
      | Some dev ->
          let reply =
            Netcore.Arp.reply ~sender_mac:t.s_mac ~sender_ip:t.s_ip
              ~target_mac:msg.Netcore.Arp.sender_mac
              ~target_ip:msg.Netcore.Arp.sender_ip
          in
          Netdevice.transmit dev
            (P.arp ~src_mac:t.s_mac ~dst_mac:msg.Netcore.Arp.sender_mac reply))
  | Netcore.Arp.Request | Netcore.Arp.Reply -> ()

(* The largest TCP payload one frame may carry on this device's wire
   path (its TSO budget, or the plain MTU), i.e. the MSS the sender
   would have used without a jumbo hint. *)
let wire_seg_max dev =
  (match Netdevice.gso_size dev with
  | Some gso -> max (Netdevice.mtu dev) gso
  | None -> Netdevice.mtu dev)
  - 40

(* Software GSO fallback (DESIGN.md §15): a jumbo TCP frame the xenloop
   hook declined — the channel died between the send decision and the
   hook, or steering diverted the flow — must not reach netfront or the
   physical wire oversized.  Re-segment it into exactly the wire-MSS
   frames the sender would have emitted without the hint: sequence
   numbers advance per chunk, PSH/FIN ride only on the last chunk, and
   each chunk gets its own IP ident.  Checksums need no special care
   here: elision exists only in the FIFO's serialized bytes, and every
   device-boundary serialization recomputes them from scratch. *)
let resegment_tcp t ~mss frame =
  match frame.P.body with
  | P.Ipv4_body { header; content = P.Full { transport = T.Tcp tcp; payload } }
    ->
      let total = Bytes.length payload in
      let mss = max 1 mss in
      t.s_stats.sw_segmented <- t.s_stats.sw_segmented + 1;
      let rec chunks off acc =
        if off >= total then List.rev acc
        else begin
          let len = min mss (total - off) in
          let last = off + len >= total in
          let transport =
            T.Tcp
              {
                tcp with
                T.seq = Int32.add tcp.T.seq (Int32.of_int off);
                flags =
                  {
                    tcp.T.flags with
                    T.psh = tcp.T.flags.T.psh && last;
                    fin = tcp.T.flags.T.fin && last;
                  };
              }
          in
          let seg =
            {
              frame with
              P.body =
                P.Ipv4_body
                  {
                    header = { header with Netcore.Ipv4.ident = fresh_ident t };
                    content =
                      P.Full { transport; payload = Bytes.sub payload off len };
                  };
            }
          in
          chunks (off + len) (seg :: acc)
        end
      in
      chunks 0 []
  | _ -> [ frame ]

let transmit_fragments t dev frags =
  let p = t.s_params in
  let hook_cost =
    Sim.Time.span_scale
      (max 1 (Netfilter.hook_count t.s_post_routing))
      p.Hypervisor.Params.netfilter_hook
  in
  (* The whole burst (all fragments of one datagram, or one TSO frame)
     traverses the hooks together so batch-aware hooks — XenLoop's FIFO
     path — can coalesce their work and notifications; the per-fragment
     hook cost is unchanged. *)
  use_cpu t (Sim.Time.span_scale (List.length frags) hook_cost);
  let verdicts = Netfilter.run_batch t.s_post_routing frags in
  let wire_max = wire_seg_max dev in
  List.iter2
    (fun frag verdict ->
      match verdict with
      | Netfilter.Steal -> t.s_stats.stolen_by_hook <- t.s_stats.stolen_by_hook + 1
      | Netfilter.Accept -> (
          match frag.P.body with
          | P.Ipv4_body
              { content = P.Full { transport = T.Tcp _; payload }; _ }
            when Bytes.length payload > wire_max ->
              (* Extra per-segment tx work the jumbo send skipped. *)
              let n = (Bytes.length payload + wire_max - 1) / wire_max in
              use_cpu t
                (Sim.Time.span_scale (n - 1) p.Hypervisor.Params.tcp_tx);
              List.iter (Netdevice.transmit dev)
                (resegment_tcp t ~mss:wire_max frag)
          | _ -> Netdevice.transmit dev frag))
    frags verdicts

let send_ip_packet t ~dst ~dst_mac ~dev ~transport ~payload =
  let p = t.s_params in
  let tx_cost =
    match transport with
    | T.Icmp _ -> p.Hypervisor.Params.icmp_proc
    | T.Udp _ -> p.Hypervisor.Params.udp_tx
    | T.Tcp _ -> p.Hypervisor.Params.tcp_tx
  in
  use_cpu t
    (Sim.Time.span_add tx_cost (Hypervisor.Params.copy_cost p (Bytes.length payload)));
  let header =
    Netcore.Ipv4.make ~src:t.s_ip ~dst ~protocol:(T.protocol transport)
      ~ident:(fresh_ident t) ()
  in
  let packet =
    {
      P.src_mac = Netdevice.mac dev;
      dst_mac;
      body = P.Ipv4_body { header; content = P.Full { transport; payload } };
    }
  in
  t.s_stats.tx_datagrams <- t.s_stats.tx_datagrams + 1;
  (* TSO: TCP super-frames bypass IP fragmentation — the device (or its
     backend) segments them where the real wire needs it.  A jumbo hint
     for this destination (gso xenloop channel, DESIGN.md §15) widens
     the bypass further; if the hook then declines the frame,
     [transmit_fragments] software-segments it back to wire MSS. *)
  let limit =
    match (transport, Netdevice.gso_size dev) with
    | T.Tcp _, Some gso ->
        max (max (Netdevice.mtu dev) gso) (tx_jumbo_hint t ~dst) + 60
    | (T.Tcp _ | T.Udp _ | T.Icmp _), _ -> Netdevice.mtu dev
  in
  let frags = Netcore.Fragment.fragment ~mtu:limit packet in
  transmit_fragments t dev frags

(* ------------------------------------------------------------------ *)
(* ARP resolution *)

let send_arp_request t dev ~dst =
  use_cpu t t.s_params.Hypervisor.Params.arp_proc;
  let req = Netcore.Arp.request ~sender_mac:t.s_mac ~sender_ip:t.s_ip ~target_ip:dst in
  Netdevice.transmit dev (P.arp ~src_mac:t.s_mac ~dst_mac:Netcore.Mac.broadcast req)

let resolve t dst =
  match Neighbor.lookup t.s_neighbor dst with
  | Some mac -> mac
  | None -> (
      let dev = match t.eth with Some d -> d | None -> raise (No_route dst) in
      let result = ref None in
      let attempts = ref 3 in
      while !result = None && !attempts > 0 do
        decr attempts;
        send_arp_request t dev ~dst;
        Sim.Engine.suspend ~register:(fun resume ->
            let fired = ref false in
            let fire () =
              if not !fired then begin
                fired := true;
                resume ()
              end
            in
            Neighbor.add_waiter t.s_neighbor dst (fun mac ->
                result := Some mac;
                fire ());
            Sim.Engine.after t.s_engine (Sim.Time.sec 1) fire)
      done;
      match !result with Some mac -> mac | None -> raise (Unreachable dst))

(* ------------------------------------------------------------------ *)
(* Output path *)

let egress_device t dst =
  if Netcore.Ip.equal dst t.s_ip || Netcore.Ip.equal dst Netcore.Ip.localhost then t.lo
  else match t.eth with Some dev -> dev | None -> raise (No_route dst)

let path_mtu t dst = Netdevice.mtu (egress_device t dst)

let tcp_mss t dst =
  let dev = egress_device t dst in
  let limit =
    match Netdevice.gso_size dev with
    | Some gso -> max (Netdevice.mtu dev) gso
    | None -> Netdevice.mtu dev
  in
  limit - 40

let ip_send t ~dst ~transport ~payload =
  if Netcore.Ip.equal dst t.s_ip || Netcore.Ip.equal dst Netcore.Ip.localhost then
    (* Loopback: destination is ourselves. *)
    send_ip_packet t ~dst:t.s_ip ~dst_mac:t.s_mac ~dev:t.lo ~transport ~payload
  else begin
    let dev = match t.eth with Some d -> d | None -> raise (No_route dst) in
    let dst_mac = resolve t dst in
    send_ip_packet t ~dst ~dst_mac ~dev ~transport ~payload
  end

let gratuitous_arp t =
  match t.eth with
  | None -> ()
  | Some dev ->
      use_cpu t t.s_params.Hypervisor.Params.arp_proc;
      let msg =
        Netcore.Arp.reply ~sender_mac:t.s_mac ~sender_ip:t.s_ip
          ~target_mac:Netcore.Mac.broadcast ~target_ip:t.s_ip
      in
      Netdevice.transmit dev (P.arp ~src_mac:t.s_mac ~dst_mac:Netcore.Mac.broadcast msg)

let send_ctrl t ~dst_mac data =
  match t.eth with
  | None -> ()
  | Some dev ->
      use_cpu t t.s_params.Hypervisor.Params.arp_proc;
      Netdevice.transmit dev (P.xenloop_ctrl ~src_mac:t.s_mac ~dst_mac data)

(* ------------------------------------------------------------------ *)
(* ICMP *)

let handle_icmp t (packet : P.t) header (icmp : T.icmp) payload =
  let p = t.s_params in
  use_cpu t p.Hypervisor.Params.icmp_proc;
  match icmp.T.echo_kind with
  | `Request ->
      t.s_stats.echo_requests_served <- t.s_stats.echo_requests_served + 1;
      let reply = T.Icmp { icmp with T.echo_kind = `Reply } in
      let dst = header.Netcore.Ipv4.src in
      if Netcore.Ip.equal dst t.s_ip then
        send_ip_packet t ~dst ~dst_mac:t.s_mac ~dev:t.lo ~transport:reply ~payload
      else begin
        (* Reply along the reverse path; the request's source MAC is the
           next hop we learned it from. *)
        match t.eth with
        | None -> ()
        | Some dev ->
            send_ip_packet t ~dst ~dst_mac:packet.P.src_mac ~dev ~transport:reply
              ~payload
      end
  | `Reply -> (
      match Hashtbl.find_opt t.ping_waiters icmp.T.icmp_ident with
      | None -> ()
      | Some wake -> wake ())

(* ------------------------------------------------------------------ *)
(* Frame input *)

let handle_full_ipv4 t (packet : P.t) =
  match packet.P.body with
  | P.Ipv4_body { header; content = P.Full { transport; payload } } -> (
      t.s_stats.rx_datagrams <- t.s_stats.rx_datagrams + 1;
      match transport with
      | T.Icmp icmp -> handle_icmp t packet header icmp payload
      | T.Udp _ -> (
          match t.udp_handler with Some h -> h packet | None -> ())
      | T.Tcp _ -> (
          match t.tcp_handler with Some h -> h packet | None -> ()))
  | _ -> ()

let take_rx_release t =
  match t.pending_release with
  | None -> None
  | some ->
      t.pending_release <- None;
      some

let inject_rx t (packet : P.t) =
  if not (is_for_us t packet) then
    t.s_stats.dropped_not_mine <- t.s_stats.dropped_not_mine + 1
  else
    match packet.P.body with
    | P.Arp_body msg -> handle_arp t msg
    | P.Xenloop_body _ -> (
        match t.ctrl_handler with Some h -> h packet | None -> ())
    | P.Ipv4_body { header; _ } -> (
        use_cpu t t.s_params.Hypervisor.Params.ip_rx;
        if not (Netcore.Ip.equal header.Netcore.Ipv4.dst t.s_ip) then
          t.s_stats.dropped_not_mine <- t.s_stats.dropped_not_mine + 1
        else
          match Netcore.Fragment.push t.reassembler packet with
          | Ok (Some whole) ->
              (* A merged datagram lives in reassembly memory, not in the
                 borrowed frame — the borrow ends here as a copy.  When the
                 frame passed through whole ([whole == packet]) the borrow
                 stays pending for the transport layer to claim. *)
              if whole != packet then begin
                match take_rx_release t with
                | Some r -> r ~copied:true
                | None -> ()
              end;
              handle_full_ipv4 t whole
          | Ok None -> (
              (* Fragment parked inside the reassembler: its bytes outlive
                 this delivery, so a borrowed frame counts as copied. *)
              match take_rx_release t with
              | Some r -> r ~copied:true
              | None -> ())
          | Error _ -> t.s_stats.dropped_not_mine <- t.s_stats.dropped_not_mine + 1)

let inject_rx_borrowed t (packet : P.t) ~release =
  t.pending_release <- Some release;
  inject_rx t packet;
  (* Nobody kept the payload (dropped, no handler, ARP/ctrl frame): the
     slot goes straight back, no copy was made. *)
  match take_rx_release t with Some r -> r ~copied:false | None -> ()

(* ------------------------------------------------------------------ *)

let set_protocol_handler t protocol handler =
  match protocol with
  | Netcore.Ipv4.Udp -> t.udp_handler <- Some handler
  | Netcore.Ipv4.Tcp -> t.tcp_handler <- Some handler
  | Netcore.Ipv4.Icmp ->
      invalid_arg "Stack.set_protocol_handler: ICMP is handled internally"

let set_ctrl_handler t handler = t.ctrl_handler <- Some handler

let set_congestion_handler t ~proto handler =
  Hashtbl.replace t.congestion_handlers proto handler

let notify_congestion t ~proto ~sport ~dst ~dport ~congested =
  match Hashtbl.find_opt t.congestion_handlers proto with
  | Some h -> h ~sport ~dst ~dport ~congested
  | None -> ()

let attach_device t dev =
  t.eth <- Some dev;
  Netdevice.set_receive_handler dev (fun packet -> inject_rx t packet)

let ping t ~dst ?(payload_len = 56) ?(timeout = Sim.Time.sec 1) () =
  let p = t.s_params in
  use_cpu t p.Hypervisor.Params.syscall;
  let ident = t.next_icmp_ident in
  t.next_icmp_ident <- (ident + 1) land 0xFFFF;
  let done_cond = Sim.Condition.create () in
  let replied = ref false in
  let timed_out = ref false in
  (* Register the waiter before sending: the reply can arrive while the
     send path is still being charged to the CPU. *)
  Hashtbl.replace t.ping_waiters ident (fun () ->
      replied := true;
      Sim.Condition.broadcast done_cond);
  let sent_at = Sim.Engine.now t.s_engine in
  let transport = T.Icmp { T.echo_kind = `Request; icmp_ident = ident; icmp_seq = 0 } in
  ip_send t ~dst ~transport ~payload:(Bytes.make payload_len 'p');
  Sim.Engine.after t.s_engine timeout (fun () ->
      timed_out := true;
      Sim.Condition.broadcast done_cond);
  while (not !replied) && not !timed_out do
    Sim.Condition.await done_cond
  done;
  Hashtbl.remove t.ping_waiters ident;
  if !replied then Some (Sim.Time.diff (Sim.Engine.now t.s_engine) sent_at) else None

let create ~engine ~params ~cpu ~ip ~mac () =
  let lo =
    Netdevice.create ~name:"lo" ~mtu:params.Hypervisor.Params.loopback_mtu ~mac ()
  in
  let t =
    {
      s_engine = engine;
      s_params = params;
      s_cpu = cpu;
      s_ip = ip;
      s_mac = mac;
      eth = None;
      lo;
      s_neighbor = Neighbor.create ();
      s_post_routing = Netfilter.create ();
      reassembler = Netcore.Fragment.create_reassembler ();
      next_ident = 1;
      next_icmp_ident = 1;
      udp_handler = None;
      tcp_handler = None;
      ctrl_handler = None;
      pending_release = None;
      jumbo_hint = None;
      congestion_handlers = Hashtbl.create 2;
      ping_waiters = Hashtbl.create 4;
      s_stats =
        {
          tx_datagrams = 0;
          rx_datagrams = 0;
          stolen_by_hook = 0;
          dropped_not_mine = 0;
          echo_requests_served = 0;
          sw_segmented = 0;
        };
    }
  in
  (* Loopback driver: deliver asynchronously (softirq-style) with the
     device's per-packet cost. *)
  Netdevice.set_transmit lo (fun packet ->
      Sim.Engine.spawn engine (fun () ->
          Sim.Resource.use t.s_cpu params.Hypervisor.Params.loopback_xmit;
          Netdevice.receive lo packet));
  Netdevice.set_receive_handler lo (fun packet -> inject_rx t packet);
  t
