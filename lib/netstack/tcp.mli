(** A reliable, windowed, in-order stream transport.

    Faithful to TCP where it matters for the reproduced experiments:
    three-way handshake, MSS segmentation against the path MTU, sliding
    window flow control with a 16-bit advertised window, cumulative ACKs,
    window-update ACKs on receive-buffer drain, FIN/RST teardown.
    Simplified where the substrate guarantees make machinery moot: all
    simulated channels are lossless and ordered, so there is no
    retransmission, reordering queue, or congestion control (the paper's
    testbed is a single switched LAN).  Sequence numbers use serial
    (wrap-around) arithmetic and are exercised across the wrap in tests. *)

type t
(** The per-host TCP layer. *)

type listener
type conn

type error = Refused | Closed | Already_bound

val pp_error : Format.formatter -> error -> unit

exception Tcp_error of error

val attach : Stack.t -> t

val listen : t -> port:int -> (listener, error) result
val accept : listener -> conn
(** Blocking. *)

val accept_opt : listener -> conn option

val connect :
  t -> ?src_port:int -> dst:Netcore.Ip.t -> dst_port:int -> unit ->
  (conn, error) result
(** Blocking three-way handshake.  [src_port] pins the local port instead
    of taking an ephemeral one (benchmarks use it to control the
    connection's flow-steering 5-tuple). *)

val send : conn -> Bytes.t -> unit
(** Blocking stream send: segments at the connection MSS and respects the
    peer's advertised window.  Whole writes of at most half an MSS issued
    while data is in flight are autocorked (Nagle) unless {!set_nodelay}
    was called.
    @raise Tcp_error if the connection is closed under us. *)

val set_nodelay : conn -> bool -> unit
(** TCP_NODELAY: disable autocorking of small writes.  Enabling flushes
    any corked bytes immediately.  Latency-sensitive pipelined senders
    (MPI-style windowed workloads) set this, mirroring real MPI-over-TCP
    transports. *)

val recv : conn -> max:int -> Bytes.t
(** Blocking; returns 1..max bytes, or the empty string at end-of-stream. *)

val recv_exact : conn -> int -> Bytes.t
(** Loop {!recv} until exactly [n] bytes arrive.
    @raise Tcp_error [Closed] if the stream ends first. *)

val close : conn -> unit
(** Send FIN.  Receiving is still possible until the peer closes. *)

val is_congested : conn -> bool
(** Whether the channel below has this flow's congestion signal raised
    (QoS backpressure, DESIGN.md §14).  While raised, the effective
    send window is clamped to one MSS and flight-drained autocork
    flushes wait for the clear edge. *)

val mss : conn -> int
val peer : conn -> Netcore.Ip.t * int
val local_port : conn -> int
val bytes_sent : conn -> int
val bytes_received : conn -> int

(** {1 Serial sequence-number arithmetic} (exposed for property tests) *)

val seq_add : int32 -> int -> int32
val seq_diff : int32 -> int32 -> int
val seq_lt : int32 -> int32 -> bool
