(** UDP sockets. *)

type t
(** The per-host UDP layer. *)

type socket

type bind_error = Port_in_use | No_ports_left

val attach : Stack.t -> t
(** Create the UDP layer and register it as the stack's UDP protocol
    handler. *)

val bind : t -> ?port:int -> unit -> (socket, bind_error) result
(** Bind to a port (an ephemeral one if omitted). *)

val port : socket -> int

val max_datagram : int
(** 65507 bytes, as for real UDP over IPv4. *)

val sendto : socket -> dst:Netcore.Ip.t -> dst_port:int -> Bytes.t -> unit
(** Blocking (process context); charges syscall plus stack costs.
    While the socket's congestion signal is raised (QoS backpressure,
    DESIGN.md §14) the send is charged against the
    [Params.qos_udp_sendspace] budget and blocks at the limit until the
    channel clears.
    @raise Invalid_argument beyond {!max_datagram}.
    @raise Stack.Unreachable / {!Stack.No_route} as from the IP layer. *)

val sendto_nb : socket -> dst:Netcore.Ip.t -> dst_port:int -> Bytes.t -> bool
(** Non-blocking {!sendto}: where the blocking variant would wait for
    sendspace it returns [false] without transmitting (EWOULDBLOCK) and
    counts the refusal in {!rejected}.  Always [true] when the socket
    is not congested. *)

val is_congested : socket -> bool
(** Whether the channel below currently holds this socket's congestion
    signal raised. *)

val rejected : socket -> int
(** {!sendto_nb} refusals (EWOULDBLOCK) so far. *)

val recvfrom : socket -> Netcore.Ip.t * int * Bytes.t
(** Blocking receive.  A datagram delivered as a borrowed pool-slot view
    (loaned-slot receive, DESIGN.md §11) is released here — the app read
    it straight out of the slot, so the borrow ends with no extra kernel
    copy. *)

val recv_opt : socket -> (Netcore.Ip.t * int * Bytes.t) option

val recvfrom_view :
  socket -> Netcore.Ip.t * int * Bytes.t * (unit -> unit)
(** {!recvfrom} with an explicit release: the returned thunk ends the
    datagram's borrow (idempotent; a no-op for datagrams that arrived by
    copy).  For apps that want to hold the view across further receives —
    each held view pins one pool slot until released. *)

val close : socket -> unit

val drops : socket -> int
(** Datagrams dropped because the socket receive buffer was full. *)

val receive_buffer_bytes : int

(** {1 Transport-level shortcut hooks}

    Support for interception {e between the socket and transport layers}
    (the XenLoop paper's future-work direction): a shortcut provider can
    consume outgoing datagrams before any UDP/IP processing happens, and
    inject incoming payloads directly into a destination socket. *)

val set_tx_shortcut :
  t ->
  (dst:Netcore.Ip.t -> dst_port:int -> src_port:int -> Bytes.t -> bool) ->
  unit
(** Consulted by {!sendto} before the normal transport path (never for
    self-addressed traffic).  Returning [true] consumes the datagram. *)

val clear_tx_shortcut : t -> unit

val deliver_local :
  t -> src:Netcore.Ip.t -> src_port:int -> dst_port:int -> Bytes.t -> unit
(** Deliver a payload straight into the socket bound to [dst_port], as the
    shortcut's receive side.  Charges only the copy into the socket buffer
    (no transport processing — that is the point). *)

val deliver_local_borrowed :
  t ->
  src:Netcore.Ip.t ->
  src_port:int ->
  dst_port:int ->
  Bytes.t ->
  release:(copied:bool -> unit) ->
  unit
(** {!deliver_local} for a payload that is a borrowed pool-slot view: the
    datagram parks in the socket buffer without any copy charge and
    [release ~copied:false] fires when it leaves (received, dropped, or
    the socket closes).  [release] must be idempotent. *)
