module T = Netcore.Transport
module P = Netcore.Packet

let max_datagram = 65507
let receive_buffer_bytes = 212_992
let ephemeral_base = 32768
let ephemeral_limit = 61000

(* A queued datagram may be a borrowed view of a grant-mapped pool slot
   (loaned-slot receive, DESIGN.md §11): the release travels with it and
   fires when the datagram leaves the socket buffer. *)
type socket = {
  layer : t;
  sock_port : int;
  inbox :
    (Netcore.Ip.t * int * Bytes.t * (copied:bool -> unit) option) Sim.Mailbox.t;
  mutable buffered : int;
  mutable dropped : int;
  mutable closed : bool;
  (* QoS backpressure (DESIGN.md §14): while the channel below holds
     this socket's congestion signal raised, sends are charged against
     a sendspace budget — [sendto] blocks at the limit and [sendto_nb]
     refuses (EWOULDBLOCK).  The accounting resets on the clear edge.
     One flag per socket: a socket with several destinations is
     throttled as a whole while any of its flows is congested. *)
  mutable congested : bool;
  mutable send_accounted : int;
  send_avail : Sim.Condition.t;
  mutable rejected : int;
}

and t = {
  stack : Stack.t;
  ports : (int, socket) Hashtbl.t;
  mutable next_ephemeral : int;
  mutable tx_shortcut :
    (dst:Netcore.Ip.t -> dst_port:int -> src_port:int -> Bytes.t -> bool) option;
}

type bind_error = Port_in_use | No_ports_left

let enqueue sock ~src ~src_port payload release =
  if sock.buffered + Bytes.length payload > receive_buffer_bytes then begin
    sock.dropped <- sock.dropped + 1;
    (* Dropped in place: the borrowed slot goes straight back, no copy. *)
    match release with Some r -> r ~copied:false | None -> ()
  end
  else begin
    sock.buffered <- sock.buffered + Bytes.length payload;
    Sim.Mailbox.send sock.inbox (src, src_port, payload, release)
  end

let handle_packet t (packet : P.t) =
  match packet.P.body with
  | P.Ipv4_body { header; content = P.Full { transport = T.Udp udp; payload } } -> (
      let release = Stack.take_rx_release t.stack in
      match Hashtbl.find_opt t.ports udp.T.udp_dst_port with
      | None -> (
          (* No receiver: the borrow ends here, untouched. *)
          match release with Some r -> r ~copied:false | None -> ())
      | Some sock ->
          let params = Stack.params t.stack in
          (* A borrowed payload stays in the pool slot until the app reads
             it — no socket-buffer copy to charge. *)
          Sim.Resource.use (Stack.cpu t.stack)
            (match release with
            | None ->
                Sim.Time.span_add params.Hypervisor.Params.udp_rx
                  (Hypervisor.Params.copy_cost params (Bytes.length payload))
            | Some _ -> params.Hypervisor.Params.udp_rx);
          enqueue sock ~src:header.Netcore.Ipv4.src ~src_port:udp.T.udp_src_port
            payload release)
  | _ -> ()

let attach stack =
  let t =
    {
      stack;
      ports = Hashtbl.create 16;
      next_ephemeral = ephemeral_base;
      tx_shortcut = None;
    }
  in
  Stack.set_protocol_handler stack Netcore.Ipv4.Udp (handle_packet t);
  Stack.set_congestion_handler stack ~proto:17
    (fun ~sport ~dst:_ ~dport:_ ~congested ->
      let apply sock =
        if sock.congested <> congested then begin
          sock.congested <- congested;
          if not congested then begin
            sock.send_accounted <- 0;
            Sim.Condition.broadcast sock.send_avail
          end
        end
      in
      if sport = 0 then Hashtbl.iter (fun _ sock -> apply sock) t.ports
      else
        match Hashtbl.find_opt t.ports sport with
        | Some sock -> apply sock
        | None -> ());
  t

let set_tx_shortcut t f = t.tx_shortcut <- Some f
let clear_tx_shortcut t = t.tx_shortcut <- None

let alloc_ephemeral t =
  let start = t.next_ephemeral in
  let rec scan port =
    if not (Hashtbl.mem t.ports port) then begin
      t.next_ephemeral <-
        (if port + 1 > ephemeral_limit then ephemeral_base else port + 1);
      Some port
    end
    else begin
      let next = if port + 1 > ephemeral_limit then ephemeral_base else port + 1 in
      if next = start then None else scan next
    end
  in
  scan start

let bind t ?port () =
  let chosen =
    match port with
    | Some p -> if Hashtbl.mem t.ports p then Error Port_in_use else Ok p
    | None -> ( match alloc_ephemeral t with Some p -> Ok p | None -> Error No_ports_left)
  in
  match chosen with
  | Error e -> Error e
  | Ok p ->
      let sock =
        {
          layer = t;
          sock_port = p;
          inbox = Sim.Mailbox.create ();
          buffered = 0;
          dropped = 0;
          closed = false;
          congested = false;
          send_accounted = 0;
          send_avail = Sim.Condition.create ();
          rejected = 0;
        }
      in
      Hashtbl.replace t.ports p sock;
      Ok sock

let port sock = sock.sock_port

let sendspace sock =
  (Stack.params sock.layer.stack).Hypervisor.Params.qos_udp_sendspace

(* Charge [len] bytes against the congested-socket sendspace budget.
   [block:true] waits for the clear edge (or a budget reset) like a
   blocking sendto; [block:false] reports refusal (EWOULDBLOCK). *)
let account_send sock ~block len =
  if not sock.congested then true
  else begin
    let budget = sendspace sock in
    if block then begin
      while sock.congested && sock.send_accounted + len > budget do
        Sim.Condition.await sock.send_avail
      done;
      if sock.congested then sock.send_accounted <- sock.send_accounted + len;
      true
    end
    else if sock.send_accounted + len > budget then begin
      sock.rejected <- sock.rejected + 1;
      false
    end
    else begin
      sock.send_accounted <- sock.send_accounted + len;
      true
    end
  end

let transmit_datagram sock ~dst ~dst_port payload =
  let stack = sock.layer.stack in
  let taken_by_shortcut =
    match sock.layer.tx_shortcut with
    | Some shortcut when not (Netcore.Ip.equal dst (Stack.ip_addr stack)) ->
        shortcut ~dst ~dst_port ~src_port:sock.sock_port payload
    | Some _ | None -> false
  in
  if not taken_by_shortcut then begin
    let transport =
      T.Udp { T.udp_src_port = sock.sock_port; udp_dst_port = dst_port }
    in
    Stack.ip_send stack ~dst ~transport ~payload
  end

let check_sendable sock payload =
  if sock.closed then invalid_arg "Udp.sendto: socket closed";
  if Bytes.length payload > max_datagram then
    invalid_arg "Udp.sendto: datagram too large"

let sendto sock ~dst ~dst_port payload =
  check_sendable sock payload;
  let stack = sock.layer.stack in
  Sim.Resource.use (Stack.cpu stack) (Stack.params stack).Hypervisor.Params.syscall;
  ignore (account_send sock ~block:true (Bytes.length payload));
  transmit_datagram sock ~dst ~dst_port payload

let sendto_nb sock ~dst ~dst_port payload =
  check_sendable sock payload;
  let stack = sock.layer.stack in
  Sim.Resource.use (Stack.cpu stack) (Stack.params stack).Hypervisor.Params.syscall;
  if account_send sock ~block:false (Bytes.length payload) then begin
    transmit_datagram sock ~dst ~dst_port payload;
    true
  end
  else false

let recvfrom sock =
  let stack = sock.layer.stack in
  let params = Stack.params stack in
  Sim.Resource.use (Stack.cpu stack) params.Hypervisor.Params.syscall;
  let blocked = Sim.Mailbox.is_empty sock.inbox in
  let src, src_port, payload, release = Sim.Mailbox.recv sock.inbox in
  if blocked then
    Sim.Resource.use (Stack.cpu stack) params.Hypervisor.Params.app_wakeup;
  sock.buffered <- sock.buffered - Bytes.length payload;
  (* The app consumed the datagram straight out of the slot view (the
     syscall's user copy is the same one the private-buffer path pays) —
     the borrow ends without an extra kernel copy. *)
  (match release with Some r -> r ~copied:false | None -> ());
  (src, src_port, payload)

let recv_opt sock =
  match Sim.Mailbox.recv_opt sock.inbox with
  | None -> None
  | Some (src, src_port, payload, release) ->
      sock.buffered <- sock.buffered - Bytes.length payload;
      (match release with Some r -> r ~copied:false | None -> ());
      Some (src, src_port, payload)

let recvfrom_view sock =
  let stack = sock.layer.stack in
  let params = Stack.params stack in
  Sim.Resource.use (Stack.cpu stack) params.Hypervisor.Params.syscall;
  let blocked = Sim.Mailbox.is_empty sock.inbox in
  let src, src_port, payload, release = Sim.Mailbox.recv sock.inbox in
  if blocked then
    Sim.Resource.use (Stack.cpu stack) params.Hypervisor.Params.app_wakeup;
  sock.buffered <- sock.buffered - Bytes.length payload;
  let released = ref false in
  let release () =
    if not !released then begin
      released := true;
      match release with Some r -> r ~copied:false | None -> ()
    end
  in
  (src, src_port, payload, release)

let deliver_local t ~src ~src_port ~dst_port payload =
  match Hashtbl.find_opt t.ports dst_port with
  | None -> ()
  | Some sock ->
      let params = Stack.params t.stack in
      Sim.Resource.use (Stack.cpu t.stack)
        (Hypervisor.Params.copy_cost params (Bytes.length payload));
      enqueue sock ~src ~src_port payload None

let deliver_local_borrowed t ~src ~src_port ~dst_port payload ~release =
  match Hashtbl.find_opt t.ports dst_port with
  | None -> release ~copied:false
  | Some sock ->
      (* The datagram is parked in the pool slot, not copied into the
         socket buffer: no copy charge at all on this edge. *)
      enqueue sock ~src ~src_port payload (Some release)

let close sock =
  sock.closed <- true;
  (* Drain borrowed datagrams still parked in the buffer: their slots must
     not stay pinned behind a dead socket. *)
  let rec drain () =
    match Sim.Mailbox.recv_opt sock.inbox with
    | None -> ()
    | Some (_, _, payload, release) ->
        sock.buffered <- sock.buffered - Bytes.length payload;
        (match release with Some r -> r ~copied:false | None -> ());
        drain ()
  in
  drain ();
  Hashtbl.remove sock.layer.ports sock.sock_port

let drops sock = sock.dropped
let is_congested sock = sock.congested
let rejected sock = sock.rejected
