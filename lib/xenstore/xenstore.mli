(** XenStore: the hierarchical key-value store maintained by Dom0.

    Permission model, after the paper (Sect. 3.2): Dom0 (domain id 0) can
    read and write everything; an unprivileged guest can read and modify
    only its own subtree [/local/domain/<id>], and in particular cannot read
    other guests' entries — which is exactly why XenLoop needs a discovery
    module in Dom0. *)

type t

type domid = int

type error = Noent | Eacces | Einval

val pp_error : Format.formatter -> error -> unit

val create : unit -> t

val dom0 : domid

val domain_path : domid -> string
(** ["/local/domain/<id>"]. *)

(** {1 Store operations}

    Paths are ['/']-separated, absolute ("/local/domain/3/xenloop").
    Writing creates intermediate nodes.  [rm] removes a whole subtree. *)

val write : t -> caller:domid -> path:string -> value:string -> (unit, error) result
val read : t -> caller:domid -> path:string -> (string, error) result
val rm : t -> caller:domid -> path:string -> (unit, error) result
val exists : t -> caller:domid -> path:string -> bool
(** [false] also when the caller lacks read permission. *)

val directory : t -> caller:domid -> path:string -> (string list, error) result
(** Child node names, sorted. *)

(** {1 Watches} *)

type event = Written of string | Removed
type watch

val watch :
  t -> caller:domid -> path:string -> (string -> event -> unit) -> (watch, error) result
(** Fire the callback for every change at or below [path] (the callback
    receives the affected path).  The caller must be able to read [path]. *)

val unwatch : t -> watch -> unit

(** {1 Introspection} *)

val node_count : t -> int

(** {1 Fault injection}

    Chaos-harness hooks.  The injector is consulted per watch delivery
    ([`Watch], once per matching watcher) and per [read] ([`Read]).
    [Lost_watch] silently swallows the watch event for that watcher;
    [Stale_read] makes the read return the value the node held before its
    most recent write (a torn view of the store) — if the node was never
    overwritten the read proceeds normally.  Soft-state protocols built on
    periodic scans (the paper's discovery module) must converge despite
    both. *)

type fault = Pass | Lost_watch | Stale_read

val set_fault_injector :
  t -> (op:[ `Read | `Watch ] -> path:string -> fault) option -> unit

val faults_injected : t -> int
(** Watch events lost plus reads served stale since [create]. *)
