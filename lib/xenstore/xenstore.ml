type domid = int

type error = Noent | Eacces | Einval

let pp_error fmt = function
  | Noent -> Format.pp_print_string fmt "no such node"
  | Eacces -> Format.pp_print_string fmt "permission denied"
  | Einval -> Format.pp_print_string fmt "invalid path"

type node = {
  mutable value : string option;
  children : (string, node) Hashtbl.t;
}

type event = Written of string | Removed

type watch_entry = {
  watch_id : int;
  prefix : string list;
  callback : string -> event -> unit;
}

type watch = { id : int }

type fault = Pass | Lost_watch | Stale_read

type t = {
  root : node;
  mutable watches : watch_entry list;
  mutable next_watch : int;
  (* Last value each node held before its most recent write — what a stale
     read returns.  Keyed by canonical path string. *)
  prev_values : (string, string) Hashtbl.t;
  mutable fault_injector : (op:[ `Read | `Watch ] -> path:string -> fault) option;
  mutable faults_injected : int;
}

let dom0 = 0

let domain_path dom = Printf.sprintf "/local/domain/%d" dom

let make_node () = { value = None; children = Hashtbl.create 4 }

let create () =
  { root = make_node (); watches = []; next_watch = 0;
    prev_values = Hashtbl.create 32; fault_injector = None; faults_injected = 0 }

let set_fault_injector t f = t.fault_injector <- f
let faults_injected t = t.faults_injected

let consult t ~op ~path =
  match t.fault_injector with None -> Pass | Some f -> f ~op ~path

let split_path path =
  if String.length path = 0 || path.[0] <> '/' then None
  else begin
    let segments =
      String.split_on_char '/' path |> List.filter (fun s -> s <> "")
    in
    if List.exists (fun s -> String.contains s ' ') segments then None
    else Some segments
  end

(* A guest may touch only its own subtree; Dom0 may touch everything. *)
let permitted ~caller segments =
  caller = dom0
  ||
  match segments with
  | "local" :: "domain" :: id :: _ -> id = string_of_int caller
  | _ -> false

let rec find_node node = function
  | [] -> Some node
  | seg :: rest -> (
      match Hashtbl.find_opt node.children seg with
      | None -> None
      | Some child -> find_node child rest)

let rec ensure_node node = function
  | [] -> node
  | seg :: rest ->
      let child =
        match Hashtbl.find_opt node.children seg with
        | Some c -> c
        | None ->
            let c = make_node () in
            Hashtbl.replace node.children seg c;
            c
      in
      ensure_node child rest

let is_prefix prefix segments =
  let rec go p s =
    match (p, s) with
    | [], _ -> true
    | _, [] -> false
    | ph :: pt, sh :: st -> ph = sh && go pt st
  in
  go prefix segments

let fire_watches t segments event =
  let path = "/" ^ String.concat "/" segments in
  List.iter
    (fun w ->
      if is_prefix w.prefix segments then
        match consult t ~op:`Watch ~path with
        | Lost_watch ->
            (* The event evaporates for this watcher. *)
            t.faults_injected <- t.faults_injected + 1
        | Pass | Stale_read -> w.callback path event)
    t.watches

let with_path path f =
  match split_path path with None -> Error Einval | Some segments -> f segments

let write t ~caller ~path ~value =
  with_path path (fun segments ->
      if not (permitted ~caller segments) then Error Eacces
      else begin
        let node = ensure_node t.root segments in
        (match node.value with
        | Some old -> Hashtbl.replace t.prev_values ("/" ^ String.concat "/" segments) old
        | None -> ());
        node.value <- Some value;
        fire_watches t segments (Written value);
        Ok ()
      end)

let read t ~caller ~path =
  with_path path (fun segments ->
      if not (permitted ~caller segments) then Error Eacces
      else
        let path = "/" ^ String.concat "/" segments in
        let stale =
          match consult t ~op:`Read ~path with
          | Stale_read ->
              let prev = Hashtbl.find_opt t.prev_values path in
              if prev <> None then t.faults_injected <- t.faults_injected + 1;
              prev
          | Pass | Lost_watch -> None
        in
        match stale with
        | Some v -> Ok v
        | None -> (
            match find_node t.root segments with
            | None -> Error Noent
            | Some { value = None; _ } -> Error Noent
            | Some { value = Some v; _ } -> Ok v))

let rm t ~caller ~path =
  with_path path (fun segments ->
      if not (permitted ~caller segments) then Error Eacces
      else
        match List.rev segments with
        | [] -> Error Einval
        | last :: rev_parent -> (
            let parent_segments = List.rev rev_parent in
            match find_node t.root parent_segments with
            | None -> Error Noent
            | Some parent ->
                if Hashtbl.mem parent.children last then begin
                  Hashtbl.remove parent.children last;
                  fire_watches t segments Removed;
                  Ok ()
                end
                else Error Noent))

let exists t ~caller ~path =
  match read t ~caller ~path with
  | Ok _ -> true
  | Error _ -> (
      (* A node can exist with no value but with children. *)
      match split_path path with
      | None -> false
      | Some segments ->
          permitted ~caller segments && Option.is_some (find_node t.root segments))

let directory t ~caller ~path =
  with_path path (fun segments ->
      if not (permitted ~caller segments) then Error Eacces
      else
        match find_node t.root segments with
        | None -> Error Noent
        | Some node ->
            Ok (Hashtbl.fold (fun k _ acc -> k :: acc) node.children []
                |> List.sort compare))

let watch t ~caller ~path callback =
  match split_path path with
  | None -> Error Einval
  | Some segments ->
      if not (permitted ~caller segments) then Error Eacces
      else begin
        let watch_id = t.next_watch in
        t.next_watch <- watch_id + 1;
        t.watches <- { watch_id; prefix = segments; callback } :: t.watches;
        Ok { id = watch_id }
      end

let unwatch t w =
  t.watches <- List.filter (fun entry -> entry.watch_id <> w.id) t.watches

let node_count t =
  let rec count node =
    Hashtbl.fold (fun _ child acc -> acc + count child) node.children 1
  in
  count t.root - 1
