(** The XenLoop guest kernel module (paper Sect. 3).

    A self-contained module loaded into a guest: it inserts a netfilter
    hook between the network and link layers, advertises the guest's
    willingness in XenStore, maintains the soft-state mapping table from
    Dom0 announcements, sets up and tears down bidirectional FIFO channels
    with co-resident guests on demand, and transparently follows the guest
    through suspend, shutdown, and live migration.

    The data path: an outgoing packet whose next-hop MAC belongs to a
    co-resident, XenLoop-willing guest is serialized and copied into the
    outgoing FIFO (or onto the waiting list when the FIFO is full), and the
    peer is signalled over the event channel; everything else — unknown
    destinations, packets larger than the FIFO, traffic during bootstrap —
    takes the standard netfront path untouched.  User applications never
    see any of this: full transparency.

    {b Multi-queue} (engineering extension): a channel carries N
    independent queue pairs instead of one, each with its own FIFO pair,
    event channel, waiting list, and suppression/poll state.  The transmit
    hook steers each packet by a deterministic flow hash ({!Steering}), so
    a bulk stream saturating one queue cannot head-of-line-block a
    latency-sensitive flow steered to another.  The queue count is
    negotiated during bootstrap as the min of both sides' advertised
    values; a count of 1 reproduces the paper-faithful single channel
    bit-for-bit on the wire. *)

type t

type stats = {
  mutable via_channel_tx : int;
  mutable via_channel_rx : int;
  mutable queued_to_waiting : int;
  mutable waiting_overflows : int;
      (** frames rerouted through the standard netfront path because their
          queue's waiting list was already at
          {!Hypervisor.Params.xenloop_waiting_list_max} *)
  mutable too_big_fallback : int;
  mutable channels_established : int;
  mutable channels_torn_down : int;
  mutable bootstraps_started : int;
  mutable corrupt_channels : int;
      (** channels torn down because the peer corrupted the shared FIFO
          state — a misbehaving or malicious co-resident guest must never
          crash this one, only lose its fast path *)
  mutable notifies_sent : int;
      (** event-channel doorbells actually rung (one hypercall each) *)
  mutable notifies_suppressed : int;
      (** doorbells elided because the peer's consumer-active flag showed it
          already draining ({!Hypervisor.Params.xenloop_notify_suppression}) *)
  mutable batches : int;
      (** multi-frame bursts pushed under one amortized charge and a single
          trailing notification ({!Hypervisor.Params.xenloop_batch_tx}) *)
  mutable poll_rounds : int;
      (** NAPI-style receiver poll iterations inside the event handler
          ({!Hypervisor.Params.xenloop_poll_window}) *)
  mutable steered_packets : int;
      (** packets placed on a specific queue by the flow hash (hook steals
          plus transport-shortcut payloads) *)
  mutable flow_cache_hits : int;
  mutable flow_cache_misses : int;
      (** per-flow routing-decision cache in the transmit hook; every
          soft-state replacement or channel set change invalidates it
          wholesale via an epoch counter *)
  mutable desc_tx : int;
      (** frames sent as payload-pool descriptors — one copy end to end
          ({!Hypervisor.Params.xenloop_zerocopy}, DESIGN.md §7) *)
  mutable inline_tx : int;
      (** frames sent on the inline copy path (at or below the negotiated
          threshold, non-zero-copy channels, and pool-exhaustion
          degradations) *)
  mutable pool_fallbacks : int;
      (** descriptor-eligible frames degraded to the inline path because
          the payload pool had no free slot *)
  mutable loan_tx : int;
      (** descriptors pushed onto loan-negotiated queues — loan-eligible at
          the receiver ({!Hypervisor.Params.xenloop_loans}, DESIGN.md §11) *)
  mutable loan_rx : int;
      (** received descriptors delivered as borrowed pool-slot views (the
          slot stays out of the free ring until the consumer releases it) *)
  mutable loan_returns : int;
      (** borrowed slots handed back by the consumer (including those that
          degenerated into a copy, e.g. out-of-order TCP holds) *)
  mutable loan_credit_stalls : int;
      (** received descriptors degraded to copy-out because the negotiated
          loan credit was exhausted (a slow consumer pinning the pool) *)
  mutable loans_force_returned : int;
      (** borrowed slots reclaimed at channel teardown (migration, peer
          loss, unload) before the pool pages were unmapped *)
  mutable bootstrap_failures : int;
      (** peers marked failed after a bootstrap handshake exhausted its
          retries (listener Create retries or connector ack wait); the
          peer sits in a cooldown ({!Hypervisor.Params.xenloop_bootstrap_cooldown})
          before any re-attempt *)
  mutable softstate_evictions : int;
      (** mapping-table entries dropped because no Dom0 announcement
          arrived within {!Hypervisor.Params.xenloop_softstate_ttl} —
          the soft-state expiry of paper Sect. 3.2 *)
  mutable channels_evicted : int;
      (** Active channels torn down by the bounded-state policy (the
          per-guest cap {!Hypervisor.Params.xenloop_channel_cap} or the
          idle LRU {!Hypervisor.Params.xenloop_channel_idle_ttl},
          DESIGN.md §12); grant-balanced, with in-flight traffic flushed
          over netfront exactly once *)
  mutable delta_announces : int;
      (** versioned delta announcements received from Dom0 (including
          full resyncs and keep-alive heartbeats, DESIGN.md §12) *)
  mutable jumbo_tx : int;
      (** jumbo descriptors pushed — one 64 KiB-class TCP super-frame
          carried as a single multi-slot scatter descriptor
          ({!Hypervisor.Params.xenloop_gso}, DESIGN.md §15) *)
  mutable jumbo_rx : int;
      (** jumbo descriptors reassembled and delivered whole (GRO) *)
  mutable jumbo_chunks_tx : int;
      (** pool slots the pushed jumbo descriptors carried in total *)
  mutable jumbo_drops : int;
      (** received jumbo descriptors dropped because their scatter-length
          vector was corrupt (chaos Jumbo_truncate): the slots are
          returned and the frame is lost loudly, never mis-delivered *)
  mutable csum_elided : int;
      (** frames serialized without computing a transport checksum
          because they were bound for a gso channel — the jumbo
          descriptor's [csum_ok] flag vouches for them instead *)
}

val create :
  domain:Hypervisor.Domain.t ->
  stack:Netstack.Stack.t ->
  current_machine:(unit -> Hypervisor.Machine.t) ->
  ?fifo_k:int ->
  ?max_queues:int ->
  ?zerocopy:bool ->
  ?loans:bool ->
  ?gso:bool ->
  ?qos:bool ->
  ?trace:Sim.Trace.t ->
  unit ->
  t
(** Load the module into a guest.  [current_machine] is consulted whenever
    the module needs hypervisor facilities, so it stays correct across
    migration.  [fifo_k] sets the FIFO size to 2^k 8-byte slots per
    direction {e per queue} (default {!Fifo.default_k} = 64 KiB, the
    paper's setting).  [max_queues] is the queue count this guest
    advertises (default {!Hypervisor.Params.xenloop_queues}); each channel
    uses the min of both endpoints' advertised values, so 1 yields exactly
    the paper's single FIFO pair.  [zerocopy] is whether this guest
    advertises the zero-copy descriptor channel (default
    {!Hypervisor.Params.xenloop_zerocopy}); pools are set up only when
    both endpoints advertise it, and a channel without them is bit-for-bit
    the inline two-copy path.  [loans] is whether this guest advertises
    loaned-slot receive on top of zero-copy (default
    {!Hypervisor.Params.xenloop_loans}, forced off without [zerocopy]);
    the per-queue loan credit is negotiated through the pool control page
    and a credit of zero reproduces the copy-out receive path exactly.
    [gso] is whether this guest advertises jumbo segmentation offload on
    top of zero-copy (default {!Hypervisor.Params.xenloop_gso}, forced
    off without [zerocopy], DESIGN.md §15); the per-queue jumbo ceiling
    is negotiated through the pool control page and a ceiling of zero
    keeps every frame on the per-MSS paths bit-for-bit.
    [qos] enables the multi-tenant QoS subsystem (default
    {!Hypervisor.Params.qos_enabled}, DESIGN.md §14): per-flow accounting,
    weighted-DRR transmit scheduling in place of the FIFO-order waiting
    list, watermark backpressure into the socket layer, and tenant
    policies; off, every path is bit-for-bit the legacy behavior.
    [trace] receives bootstrap/channel/teardown/migration events when its
    categories are enabled. *)

val unload : t -> unit
(** Remove the module: tears down all channels (flushing waiting packets
    through the standard path), withdraws the XenStore advertisement, and
    unregisters the netfilter hook.  Traffic continues via netfront. *)

val is_loaded : t -> bool

val stats : t -> stats
val mapping_size : t -> int
val connected_peer_ids : t -> int list
val has_channel_with : t -> domid:int -> bool

val failed_peer_ids : t -> int list
(** Peers currently in bootstrap-failure cooldown, sorted by domid. *)

val waiting_list_length : t -> domid:int -> int
(** Total frames parked on the waiting lists of all of this peer's
    queues. *)

val fifo_k : t -> int
val fifo_capacity_bytes : t -> int

(** {1 Bounded channel state (DESIGN.md §12)} *)

val live_channels : t -> int
(** Connected Active channels right now (both roles). *)

val active_channel_count : t -> int
(** Active channels including those whose ack is still in flight — the
    population the per-guest cap is enforced against. *)

val channel_pool_bytes : t -> int
(** Machine memory (bytes) backing this guest's Active channels — FIFO
    pages plus payload pools — counted only on the allocating (listener)
    side, so summing over a mesh never double counts. *)

val grant_entries : t -> int
(** Live entries in this guest's grant table (channel pages granted to
    peers).  Zero after a clean teardown of everything — the
    grant-balance half of the eviction contract. *)

val evict_lru : t -> bool
(** Tear down the least-recently-active channel (grant-balanced; waiting
    and in-flight frames flushed over netfront), leaving the peer in a
    short {!Hypervisor.Params.xenloop_evict_cooldown} so the freed slot
    is not immediately re-bootstrapped.  [false] when no Active channel
    exists.  The cap and idle-TTL policies use this internally; the chaos
    harness's Evict_storm fault drives it directly. *)

val announce_epoch : t -> int
(** The Dom0 announce epoch this guest has applied and acked (delta
    announcements, DESIGN.md §12); 0 under legacy full-list
    announcements. *)

(** {1 Multi-queue observability} *)

val max_queues : t -> int
(** The advertised (not negotiated) queue count. *)

val queue_count : t -> domid:int -> int
(** Negotiated queue count of the active channel to this peer; 0 when no
    channel is established. *)

type queue_stat = {
  qs_notifies_sent : int;
  qs_notifies_suppressed : int;
  qs_steered : int;
  qs_waiting : int;
  qs_desc_tx : int;
  qs_inline_tx : int;
  qs_pool_fallbacks : int;
  qs_loan_tx : int;
  qs_loan_rx : int;
  qs_loan_returns : int;
  qs_loan_credit_stalls : int;
}

val queue_stats : t -> domid:int -> queue_stat array
(** Per-queue counters of the active channel to this peer (index = queue
    index); [[||]] when no channel is established. *)

val zerocopy_active : t -> domid:int -> bool
(** Whether the active channel to this peer negotiated payload pools
    (i.e. both endpoints advertised zero-copy); [false] when the channel
    fell back to the inline path or does not exist. *)

val loans_active : t -> domid:int -> bool
(** Whether the active channel to this peer negotiated a non-zero loan
    credit on any queue (both endpoints advertised loans on a pooled
    channel); [false] otherwise. *)

val gso_active : t -> domid:int -> bool
(** Whether the active channel to this peer negotiated a non-zero jumbo
    ceiling on any queue (both endpoints advertised gso on a pooled
    channel, DESIGN.md §15); [false] otherwise. *)

val outstanding_loans : t -> int
(** Pool slots currently borrowed by this guest's socket layer across all
    live channels.  Must be zero at quiescence (every loaned view released
    or force-returned) — the chaos harness's loan-conservation check. *)

(** {1 Multi-tenant QoS (DESIGN.md §14)}

    Active only when the module was created with QoS on; every function
    here is a no-op (or returns the empty/default answer) otherwise, so
    harness code can call them unconditionally. *)

val qos_enabled : t -> bool

val set_qos_classifier : t -> (Steering.flow_key -> int) -> unit
(** Install the base flow→tenant classifier (default: everything is
    tenant 0).  Existing flows are re-resolved immediately; per-tenant
    weights come from {!Hypervisor.Params.qos_tenant_weights} (default
    {!Hypervisor.Params.qos_default_weight}). *)

val install_tenant_policy :
  t -> tenant:int -> Steering.flow_key Qos.Policy.t -> unit
(** Install (or replace) a tenant's delivery policy.  Its [p_classify]
    runs before the base classifier (lowest tenant id wins when several
    policies claim a flow); [p_enqueue]/[p_dequeue] see that tenant's
    frames at admission and FIFO entry; [p_on_congestion] observes the
    tenant's watermark edges.  Installing {!Qos.Policy.default} changes
    nothing — the QoS-off equivalence contract. *)

val remove_tenant_policy : t -> tenant:int -> unit

type flow_stat = {
  fs_label : string;  (** human-readable flow key *)
  fs_tenant : int;
  fs_weight : int;
  fs_bytes : int;  (** admitted to the QoS layer (pre-overflow) *)
  fs_frames : int;
  fs_descs : int;  (** of those pushed, descriptor-backed *)
  fs_overflows : int;
      (** frames rerouted via netfront because THIS flow's sub-queue was
          full (per-flow overflow: also counted in the module-wide
          [waiting_overflows]) *)
  fs_congestion_raises : int;
  fs_congestion_clears : int;
  fs_congested : bool;
}

val flow_stats : t -> flow_stat list
(** Per-flow accounting in flow-creation order; [[]] when QoS is off. *)

val set_congestion_fault_injector :
  t -> (Steering.flow_key -> bool) option -> unit
(** Chaos hook (Tenant_flood): [true] swallows that flow's congestion
    edge before it reaches the socket layer — a tenant that ignores
    backpressure.  Per-flow fairness must still hold: the misbehaving
    flow's frames overflow to netfront, never other tenants'. *)

(** {1 Transport-level shortcut}

    The paper's future-work direction (Sect. 6): intercepting between the
    socket and transport layers eliminates network protocol processing from
    the inter-VM data path entirely.  These two entry points let a socket
    layer ship raw application payloads over an established channel; see
    {!Socket_shortcut} for the glue. *)

val send_app_payload :
  t -> dst_ip:Netcore.Ip.t -> src_port:int -> dst_port:int -> Bytes.t -> bool
(** [true] if the payload was shipped (or queued) over a connected channel
    to the co-resident guest owning [dst_ip].  [false] when there is no
    such guest, the channel is still bootstrapping (a bootstrap is kicked
    off as a side effect), or the payload exceeds the FIFO: the caller must
    then use the standard path. *)

val set_app_payload_handler :
  t ->
  (src_ip:Netcore.Ip.t -> src_port:int -> dst_port:int -> Bytes.t -> unit) ->
  unit

val set_app_view_handler :
  t ->
  (src_ip:Netcore.Ip.t ->
  src_port:int ->
  dst_port:int ->
  Bytes.t ->
  release:(copied:bool -> unit) ->
  unit) ->
  unit
(** Loaned-slot delivery of transport-shortcut datagrams (DESIGN.md §11):
    on a loan-negotiated queue with available credit the handler receives a
    borrowed view of the pool slot and must call [release] exactly once
    when done — [~copied:false] for a pure zero-copy consume/drop,
    [~copied:true] if the datagram had to be duplicated into private
    memory first.  [release] is idempotent (extra calls no-op).  Without
    this handler — or without credit — delivery transparently degrades to
    the copy-out {!set_app_payload_handler} path. *)

(** {1 Fault injection and invariant checking}

    Chaos-harness hooks (DESIGN.md §9).  Each injector is a pure decision
    callback: it must not touch the module, only answer "fault this one?".
    Passing [None] clears the hook.  All hooks default to off and cost one
    option match when unset. *)

type ctrl_fault =
  | Ctrl_pass
  | Ctrl_drop  (** the control message silently vanishes *)
  | Ctrl_dup  (** delivered twice back to back *)
  | Ctrl_delay of Sim.Time.span  (** delivered late by the given span *)

val set_ctrl_fault_injector : t -> (Proto.t -> ctrl_fault) option -> unit
(** Consulted for every outgoing XenLoop control message (announcements
    are Dom0's and are faulted at {!Discovery}).  The bootstrap handshake
    must converge or fail cleanly under any answer sequence. *)

val set_push_fault_injector : t -> (unit -> bool) option -> unit
(** [true] makes the next FIFO push attempt act as if the FIFO were full,
    forcing the waiting-list / netfront degradation paths. *)

val set_pool_fault_injector : t -> (unit -> bool) option -> unit
(** [true] makes a payload-pool slot allocation fail, forcing the inline
    fallback ([pool_fallbacks]).  Applies to all current and future
    transmit pools of this module. *)

type loan_fault =
  | Loan_pass
  | Loan_leak
      (** the consumer never releases this borrowed slot — it stays pinned
          until channel teardown force-returns it *)
  | Loan_delay of Sim.Time.span
      (** the release is deferred by the given span (a slow consumer
          holding credit) *)

val set_loan_fault_injector : t -> (unit -> loan_fault) option -> unit
(** Consulted once per loaned delivery, at borrow time.  The loan-credit
    cap and slot conservation must hold under any answer sequence, and
    every leaked slot must be reclaimed by teardown
    ([loans_force_returned]). *)

val set_jumbo_fault_injector : t -> (unit -> bool) option -> unit
(** Chaos hook (Jumbo_truncate): [true] corrupts one chunk length in the
    next pushed jumbo descriptor's scatter vector (the payload is written
    intact and [total_len] stays honest).  The receiver must detect the
    mismatch, return the slots, and account the drop ([jumbo_drops]) —
    never deliver bytes the vector does not cover, never poison the
    channel. *)

val kill : t -> unit
(** Model the guest dying abruptly (chaos Peer_crash): the module stops
    reacting — no teardown, no unadvertisement, no peer notification, no
    resource release.  Pair with {!Hypervisor.Machine.crash_domain}, which
    reclaims everything the hypervisor accounted to the domain; peers must
    detect the loss through the soft-state control plane and reclaim their
    own half of every shared channel. *)

val invariant_violations : t -> string list
(** Structural invariants over every live channel: FIFO control-word
    sanity both directions, payload-pool slot conservation, waiting lists
    within bound.  Empty list = healthy.  Messages carry peer domid and
    queue index; ordering is deterministic (sorted by peer). *)
