type t = {
  xl_module : Guest_module.t;
  udp : Netstack.Udp.t;
  mutable enabled : bool;
  mutable sent : int;
  mutable received : int;
  mutable received_views : int;
  mutable fell_back : int;
}

let enable ~xl_module ~udp () =
  let t =
    {
      xl_module;
      udp;
      enabled = true;
      sent = 0;
      received = 0;
      received_views = 0;
      fell_back = 0;
    }
  in
  Netstack.Udp.set_tx_shortcut udp (fun ~dst ~dst_port ~src_port payload ->
      if not t.enabled then false
      else if Guest_module.send_app_payload xl_module ~dst_ip:dst ~src_port ~dst_port
                payload
      then begin
        t.sent <- t.sent + 1;
        true
      end
      else begin
        t.fell_back <- t.fell_back + 1;
        false
      end);
  Guest_module.set_app_payload_handler xl_module
    (fun ~src_ip ~src_port ~dst_port payload ->
      if t.enabled then begin
        t.received <- t.received + 1;
        Netstack.Udp.deliver_local udp ~src:src_ip ~src_port ~dst_port payload
      end);
  (* Loaned-slot receive (DESIGN.md §11): when the channel negotiated loan
     credit, the datagram arrives as a borrowed view of the pool slot and
     parks in the socket buffer copy-free; the borrow ends when the app
     reads it out.  A disabled shortcut hands the slot straight back. *)
  Guest_module.set_app_view_handler xl_module
    (fun ~src_ip ~src_port ~dst_port payload ~release ->
      if not t.enabled then release ~copied:false
      else begin
        t.received <- t.received + 1;
        t.received_views <- t.received_views + 1;
        Netstack.Udp.deliver_local_borrowed udp ~src:src_ip ~src_port ~dst_port
          payload ~release
      end);
  t

let disable t =
  t.enabled <- false;
  Netstack.Udp.clear_tx_shortcut t.udp

let is_enabled t = t.enabled
let sent_via_shortcut t = t.sent
let received_via_shortcut t = t.received
let received_as_view t = t.received_views
let fallbacks t = t.fell_back
