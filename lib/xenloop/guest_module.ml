module P = Netcore.Packet
module Ec = Evtchn.Event_channel
module Gt = Memory.Grant_table
module Page = Memory.Page
module Params = Hypervisor.Params
module Domain = Hypervisor.Domain
module Machine = Hypervisor.Machine
module Stack = Netstack.Stack

type stats = {
  mutable via_channel_tx : int;
  mutable via_channel_rx : int;
  mutable queued_to_waiting : int;
  mutable waiting_overflows : int;
  mutable too_big_fallback : int;
  mutable channels_established : int;
  mutable channels_torn_down : int;
  mutable bootstraps_started : int;
  mutable corrupt_channels : int;
  mutable notifies_sent : int;
  mutable notifies_suppressed : int;
  mutable batches : int;
  mutable poll_rounds : int;
  mutable steered_packets : int;
  mutable flow_cache_hits : int;
  mutable flow_cache_misses : int;
  mutable desc_tx : int;
  mutable inline_tx : int;
  mutable pool_fallbacks : int;
  mutable loan_tx : int;
  mutable loan_rx : int;
  mutable loan_returns : int;
  mutable loan_credit_stalls : int;
  mutable loans_force_returned : int;
  mutable bootstrap_failures : int;
  mutable softstate_evictions : int;
  mutable channels_evicted : int;
  mutable delta_announces : int;
  mutable jumbo_tx : int;  (** jumbo descriptors pushed (DESIGN.md §15) *)
  mutable jumbo_rx : int;  (** jumbo descriptors delivered *)
  mutable jumbo_chunks_tx : int;  (** pool slots those descriptors carried *)
  mutable jumbo_drops : int;
      (** jumbo descriptors dropped at rx for a corrupt chunk vector
          (slots returned, frame lost loudly — never mis-delivered) *)
  mutable csum_elided : int;
      (** frames serialized without a transport checksum because they
          were bound for a gso channel (the descriptor carries csum_ok) *)
}

type role = Listener | Connector

(* One of a channel's N independent queue pairs: its own FIFO pair, its own
   event-channel port, its own waiting list, and its own suppression/poll
   state, so a bulk stream saturating one queue never head-of-line-blocks
   flows steered to another. *)
type queue = {
  q_index : int;
  out_fifo : Fifo.t;
  in_fifo : Fifo.t;
  q_port : Ec.port;  (** this endpoint's event-channel port for this queue *)
  waiting : Bytes.t Queue.t;  (** serialized frames awaiting FIFO space *)
  q_sched : (Steering.flow_key, Bytes.t) Qos.Drr.t option;
      (** QoS mode only (DESIGN.md §14): the waiting list becomes per-flow
          sub-queues served by weighted deficit round robin; [None] keeps
          the legacy FIFO-order list bit-for-bit *)
  q_tx_pool : Payload_pool.t option;
      (** payload pool our sends write into (zero-copy channels only);
          per queue, so steering stays lock-free *)
  q_rx_pool : Payload_pool.t option;
      (** pool the peer writes into; we consume in place and return slots *)
  q_inline_max : int;
      (** effective inline threshold: max of our configured value and the
          listener's stamp in the pool control page *)
  q_max_loans : int;
      (** effective loan credit for this queue direction: min of our
          configured [xenloop_max_loans] and the listener's stamp in the
          pool control page; 0 = loaned-slot receive off (copy-out path,
          bit-for-bit the pre-loan behaviour) *)
  q_gso_max : int;
      (** negotiated jumbo ceiling (max TCP payload bytes one jumbo
          descriptor may carry, DESIGN.md §15): min of our configured
          [xenloop_gso_max] and the listener's stamp in the pool control
          page; 0 = segmentation offload off for this queue, every frame
          keeps the per-MSS paths bit-for-bit *)
  mutable q_busy : bool;
      (** an event handler is draining this queue (guards against
          re-entrant handlers interleaving across CPU charges) *)
  mutable q_tx_draining : bool;
      (** some process is inside [drain_waiting]; CPU charges yield, so the
          handler and a sender batch-flush could otherwise double-pop *)
  mutable q_notifies_sent : int;
  mutable q_notifies_suppressed : int;
  mutable q_steered : int;
  mutable q_desc_tx : int;
  mutable q_inline_tx : int;
  mutable q_pool_fallbacks : int;
  mutable q_loan_tx : int;
  mutable q_loan_rx : int;
  mutable q_loan_returns : int;
  mutable q_loan_credit_stalls : int;
}

type channel = {
  peer_domid : int;
  peer_mac : Netcore.Mac.t;
  role : role;
  queues : queue array;  (** negotiated min of both sides' advertised counts *)
  mutable connected : bool;
  mutable ch_last_active : Sim.Time.t;
      (** last sim-time this channel moved a packet in either direction —
          the LRU key for cap/idle eviction (DESIGN.md §12) *)
  cleanup : unit -> unit;  (** releases every queue's pages, grants, ports *)
}

type awaiting = { ba_channel : channel; mutable retries : int }

(* [Requested_from_listener] carries a token so the request-timeout timer
   can tell "still the same unanswered request" from "a later bootstrap
   reused the state". *)
type bootstrap = Requested_from_listener of int | Awaiting_ack of awaiting

(* [Failed_until t]: bootstrap against this peer exhausted its retries (or
   the request was never answered); no new attempt before sim-time [t].
   Incoming control traffic from the peer proves it alive and clears the
   cooldown early. *)
type peer_state =
  | Bootstrapping of bootstrap
  | Active of channel
  | Failed_until of Sim.Time.t

(* Memoized per-flow routing decision (mapping-table lookup + steering
   hash), invalidated wholesale by bumping [epoch]. *)
type cached_decision = Cache_standard | Cache_queue of channel * queue

type cache_entry = { ce_epoch : int; ce_decision : cached_decision }

(* Multi-tenant QoS (DESIGN.md §14): per-module flow table (keys carry
   the peer address, so one table covers every channel), installed
   tenant policies, and the composed classifier.  [None] on t.qos means
   QoS is off and every path below stays bit-for-bit legacy. *)
type qos_state = {
  qt_flows : Steering.flow_key Qos.Flow_table.t;
  qt_policies : (int, Steering.flow_key Qos.Policy.t) Hashtbl.t;
  qt_base_classify : (Steering.flow_key -> int) ref;
  qt_composed : Steering.flow_key -> int;
      (** policy [p_classify] overrides (lowest tenant id first), then
          the base classifier — what the flow table actually runs *)
  qt_weight_of : int -> int;
  mutable qt_congestion_fault : (Steering.flow_key -> bool) option;
      (** chaos hook: [true] swallows this flow's congestion signal
          before it reaches the socket layer (Tenant_flood) *)
}

type t = {
  domain : Domain.t;
  stack : Stack.t;
  current_machine : unit -> Machine.t;
  k : int;
  max_queues : int;  (** what we advertise; channels carry the negotiated min *)
  zerocopy : bool;  (** whether we advertise the zero-copy descriptor channel *)
  loans : bool;  (** whether we advertise loaned-slot receive (implies zerocopy) *)
  gso : bool;
      (** whether we advertise jumbo segmentation offload (implies zerocopy) *)
  qos : qos_state option;
  mapping : Mapping_table.t;
  peers : (int, peer_state) Hashtbl.t;
  flow_cache : (Steering.flow_key, cache_entry) Hashtbl.t;
  mutable epoch : int;
  mutable hook : Netstack.Netfilter.hook_handle option;
  mutable saved_frames : Bytes.t list;
  mutable app_handler :
    (src_ip:Netcore.Ip.t -> src_port:int -> dst_port:int -> Bytes.t -> unit) option;
  mutable app_view_handler :
    (src_ip:Netcore.Ip.t ->
    src_port:int ->
    dst_port:int ->
    Bytes.t ->
    release:(copied:bool -> unit) ->
    unit)
    option;
  trace : Sim.Trace.t option;
  s : stats;
  mutable loaded : bool;
  mutable next_token : int;  (** Requested_from_listener incarnations *)
  mutable last_announce : Sim.Time.t;
      (** when the mapping table was last refreshed (soft-state TTL) *)
  mutable announce_epoch : int;
      (** the Dom0 announce epoch this guest has applied and acked
          (delta announcements only; 0 otherwise) *)
  mutable expiry_timer : Sim.Engine.timer option;
  (* Chaos-harness hooks (lib/chaos); [None] in production. *)
  mutable ctrl_fault : (Proto.t -> ctrl_fault) option;
  mutable push_fault : (unit -> bool) option;
  mutable pool_fault : (unit -> bool) option;
  mutable loan_fault : (unit -> loan_fault) option;
  mutable jumbo_fault : (unit -> bool) option;
      (** [true] corrupts one chunk length in the next jumbo descriptor's
          scatter vector (the payload itself is written intact) *)
}

and ctrl_fault = Ctrl_pass | Ctrl_drop | Ctrl_dup | Ctrl_delay of Sim.Time.span

and loan_fault =
  | Loan_pass
  | Loan_leak  (** the application never releases this borrowed view *)
  | Loan_delay of Sim.Time.span  (** slow consumer: release runs this much later *)

let max_create_retries = 3
let ack_timeout = Sim.Time.ms 500
let flow_cache_max = 4096

let stats t = t.s
let is_loaded t = t.loaded
let mapping_size t = Mapping_table.size t.mapping
let fifo_k t = t.k
let fifo_capacity_bytes t = (1 lsl t.k) * 8
let max_queues t = t.max_queues

(* Soft-state replacement and channel set changes invalidate every memoized
   flow decision at once; entries are lazily overwritten on the next miss.
   The table is bounded so a scan of short-lived flows cannot grow it
   without limit. *)
let bump_epoch t =
  t.epoch <- t.epoch + 1;
  if Hashtbl.length t.flow_cache > flow_cache_max then Hashtbl.reset t.flow_cache

let connected_peer_ids t =
  Hashtbl.fold
    (fun domid state acc ->
      match state with Active ch when ch.connected -> domid :: acc | _ -> acc)
    t.peers []
  |> List.sort compare

let has_channel_with t ~domid =
  match Hashtbl.find_opt t.peers domid with
  | Some (Active ch) -> ch.connected
  | Some (Bootstrapping _ | Failed_until _) | None -> false

let failed_peer_ids t =
  Hashtbl.fold
    (fun domid state acc ->
      match state with Failed_until _ -> domid :: acc | _ -> acc)
    t.peers []
  |> List.sort compare

(* The tx backlog is the per-flow DRR scheduler in QoS mode, the legacy
   FIFO-order waiting list otherwise.  These helpers let the rest of the
   module stay agnostic about which one a queue carries. *)
let tx_backlog_length q =
  match q.q_sched with
  | Some sched -> Qos.Drr.length sched
  | None -> Queue.length q.waiting

let tx_backlog_empty q =
  match q.q_sched with
  | Some sched -> Qos.Drr.is_empty sched && Queue.is_empty q.waiting
  | None -> Queue.is_empty q.waiting

let tx_backlog_head_len q =
  match q.q_sched with
  | Some sched -> (
      match Qos.Drr.head_len sched with
      | Some _ as l -> l
      | None ->
          if Queue.is_empty q.waiting then None
          else Some (Bytes.length (Queue.peek q.waiting)))
  | None ->
      if Queue.is_empty q.waiting then None
      else Some (Bytes.length (Queue.peek q.waiting))

let waiting_list_length t ~domid =
  match Hashtbl.find_opt t.peers domid with
  | Some (Active ch) ->
      Array.fold_left (fun acc q -> acc + tx_backlog_length q) 0 ch.queues
  | Some (Bootstrapping _ | Failed_until _) | None -> 0

let queue_count t ~domid =
  match Hashtbl.find_opt t.peers domid with
  | Some (Active ch) -> Array.length ch.queues
  | Some (Bootstrapping _ | Failed_until _) | None -> 0

type queue_stat = {
  qs_notifies_sent : int;
  qs_notifies_suppressed : int;
  qs_steered : int;
  qs_waiting : int;
  qs_desc_tx : int;
  qs_inline_tx : int;
  qs_pool_fallbacks : int;
  qs_loan_tx : int;
  qs_loan_rx : int;
  qs_loan_returns : int;
  qs_loan_credit_stalls : int;
}

let queue_stats t ~domid =
  match Hashtbl.find_opt t.peers domid with
  | Some (Active ch) ->
      Array.map
        (fun q ->
          {
            qs_notifies_sent = q.q_notifies_sent;
            qs_notifies_suppressed = q.q_notifies_suppressed;
            qs_steered = q.q_steered;
            qs_waiting = tx_backlog_length q;
            qs_desc_tx = q.q_desc_tx;
            qs_inline_tx = q.q_inline_tx;
            qs_pool_fallbacks = q.q_pool_fallbacks;
            qs_loan_tx = q.q_loan_tx;
            qs_loan_rx = q.q_loan_rx;
            qs_loan_returns = q.q_loan_returns;
            qs_loan_credit_stalls = q.q_loan_credit_stalls;
          })
        ch.queues
  | Some (Bootstrapping _ | Failed_until _) | None -> [||]

let zerocopy_active t ~domid =
  match Hashtbl.find_opt t.peers domid with
  | Some (Active ch) ->
      ch.connected && Array.exists (fun q -> q.q_tx_pool <> None) ch.queues
  | Some (Bootstrapping _ | Failed_until _) | None -> false

let loans_active t ~domid =
  match Hashtbl.find_opt t.peers domid with
  | Some (Active ch) ->
      ch.connected && Array.exists (fun q -> q.q_max_loans > 0) ch.queues
  | Some (Bootstrapping _ | Failed_until _) | None -> false

let gso_active t ~domid =
  match Hashtbl.find_opt t.peers domid with
  | Some (Active ch) ->
      ch.connected && Array.exists (fun q -> q.q_gso_max > 0) ch.queues
  | Some (Bootstrapping _ | Failed_until _) | None -> false

let outstanding_loans t =
  (* A killed module's views are conceptually dead with the guest; the
     hypervisor reclaims its mappings, so nothing is outstanding. *)
  if not t.loaded then 0
  else
    Hashtbl.fold
      (fun _ state acc ->
        match state with
        | Active ch | Bootstrapping (Awaiting_ack { ba_channel = ch; _ }) ->
            Array.fold_left
              (fun acc q ->
                match q.q_rx_pool with
                | Some pool -> acc + Payload_pool.outstanding_loans pool
                | None -> acc)
              acc ch.queues
        | Bootstrapping (Requested_from_listener _) | Failed_until _ -> acc)
      t.peers 0

let trace t cat fmt =
  match t.trace with
  | Some tr ->
      Sim.Trace.emitf tr cat ~time:(Sim.Engine.now (Stack.engine t.stack)) fmt
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let my_domid t = Domain.domid t.domain
let cpu t = Stack.cpu t.stack
let params t = Stack.params t.stack
let engine t = Stack.engine t.stack
let meter t = Domain.meter t.domain

(* ------------------------------------------------------------------ *)
(* XenStore advertisement *)

(* Record the announce epoch this guest has applied where Dom0's scan can
   read it back (delta announcements, DESIGN.md §12).  The node is in our
   own subtree (the only place a guest may write) and does not end in
   "/xenloop", so ack writes never retrigger the discovery watch. *)
let write_ack t epoch =
  if (params t).Params.xenloop_delta_announce then begin
    t.announce_epoch <- epoch;
    let machine = t.current_machine () in
    let domid = my_domid t in
    match
      Xenstore.write (Machine.xenstore machine) ~caller:domid
        ~path:(Discovery.ack_path ~domid)
        ~value:(string_of_int epoch)
    with
    | Ok () | Error _ -> ()
  end

let advertise t =
  let machine = t.current_machine () in
  let domid = my_domid t in
  let delta = (params t).Params.xenloop_delta_announce in
  (* The advert value is the advertised queue count, plus a "zc" token
     when this guest speaks the zero-copy descriptor channel, an "ln"
     token when it additionally speaks loaned-slot receive, a "gs" token
     when it additionally speaks jumbo segmentation offload, and a "dl"
     token when it understands delta announcements; the original module
     wrote "1", which is exactly what a single-queue non-zero-copy
     non-delta configuration still produces (version gating). *)
  (match
     Xenstore.write (Machine.xenstore machine) ~caller:domid
       ~path:(Discovery.advert_path ~domid)
       ~value:
         (string_of_int t.max_queues
         ^ (if t.zerocopy then " zc" else "")
         ^ (if t.zerocopy && t.loans then " ln" else "")
         ^ (if t.zerocopy && t.gso then " gs" else "")
         ^ if delta then " dl" else "")
   with
  | Ok () | Error _ -> ());
  (* A fresh advert means a fresh mapping table: ack epoch 0 so Dom0's
     first delta to us is a full resync rather than a diff against state
     we no longer hold (e.g. after migration or reload). *)
  write_ack t 0

let unadvertise t =
  let machine = t.current_machine () in
  let domid = my_domid t in
  (match
     Xenstore.rm (Machine.xenstore machine) ~caller:domid
       ~path:(Discovery.advert_path ~domid)
   with
  | Ok () | Error _ -> ());
  if (params t).Params.xenloop_delta_announce then
    match
      Xenstore.rm (Machine.xenstore machine) ~caller:domid
        ~path:(Discovery.ack_path ~domid)
    with
    | Ok () | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Channel data path (all per queue) *)

let notify_peer ?(force = false) t q =
  (* Doorbell suppression: a consumer that has published "actively
     draining" in this queue's shared descriptor will see our data on its
     next poll round, so the hypercall is pure overhead.  Teardown and
     quarantine pass [~force:true] — liveness signals must never be
     elided.  Suppression state is per queue: a peer busily draining the
     bulk queue says nothing about its attention to the rr queue. *)
  let p = params t in
  if
    (not force)
    && (p.Params.xenloop_notify_suppression || p.Params.xenloop_poll_mode)
    && Fifo.consumer_active q.out_fifo
  then begin
    t.s.notifies_suppressed <- t.s.notifies_suppressed + 1;
    q.q_notifies_suppressed <- q.q_notifies_suppressed + 1
  end
  else begin
    t.s.notifies_sent <- t.s.notifies_sent + 1;
    q.q_notifies_sent <- q.q_notifies_sent + 1;
    Sim.Resource.use (cpu t) p.Params.hypercall;
    ignore
      (Ec.notify (Machine.evtchn (t.current_machine ())) ~dom:(my_domid t)
         ~port:q.q_port ~meter:(meter t))
  end

(* The IP protocol number straight out of the serialized frame (Ethernet
   header + IPv4 protocol byte) — a descriptor hint only, so 0 for
   anything that is not a long-enough IPv4 frame. *)
let proto_hint_of raw =
  if Bytes.length raw >= 24 && Bytes.get_uint16_be raw 12 = 0x0800 then
    Bytes.get_uint8 raw 23
  else 0

let record_copy t len =
  Memory.Cost_meter.record (meter t) (Memory.Cost_meter.Page_copy len)

(* Chaos-harness hook: a forced FIFO push refusal, indistinguishable from
   a full ring to every caller (the frame queues on the waiting list and
   is retried or flushed via netfront — never dropped). *)
let push_refused t =
  match t.push_fault with None -> false | Some f -> f ()

(* [outcome] is a {!Fifo.push_entry} result code; plain ints keep the
   per-packet TX path allocation-free. *)
let note_outcome t q outcome =
  if outcome = Fifo.push_failed then false
  else begin
    if outcome = Fifo.pushed_desc then begin
      q.q_desc_tx <- q.q_desc_tx + 1;
      t.s.desc_tx <- t.s.desc_tx + 1;
      (* Every descriptor on a loan-negotiated channel is loan-eligible at
         the receiver (which may still degrade it to copy-out under credit
         pressure — that shows up in its loan_credit_stalls, not here). *)
      if q.q_max_loans > 0 then begin
        q.q_loan_tx <- q.q_loan_tx + 1;
        t.s.loan_tx <- t.s.loan_tx + 1
      end
    end
    else begin
      q.q_inline_tx <- q.q_inline_tx + 1;
      t.s.inline_tx <- t.s.inline_tx + 1
    end;
    if outcome = Fifo.pushed_inline_fallback then begin
      q.q_pool_fallbacks <- q.q_pool_fallbacks + 1;
      t.s.pool_fallbacks <- t.s.pool_fallbacks + 1
    end;
    true
  end

(* Write a serialized frame into the outgoing channel, charging the
   sender half of the data path (paper Sect. 3.3, "Data transfer").  The
   sender always pays exactly one copy — into the FIFO on the inline
   path, into its payload-pool slot on the descriptor path — so the
   sender-side cost is identical either way; zero-copy wins on the
   receiver, which consumes pool payloads in place. *)
(* Whether this frame is about to take the descriptor path on a
   loan-negotiated channel.  On such channels the pool slot is the frame's
   only resting place — the frame is built in the slot and the receiver's
   socket layer borrows it — so the sender skips both the copy charge and
   the copy record.  The prediction mirrors {!Fifo.desc_eligible} plus the
   exhaustion check; a chaos alloc fault can still downgrade the actual
   outcome to an inline fallback, whose copy is then recorded (the metric
   follows the real outcome, only the CPU charge follows the prediction). *)
let tx_loan_desc q len =
  q.q_max_loans > 0
  &&
  match q.q_tx_pool with
  | Some pool ->
      len > q.q_inline_max
      && len <= Payload_pool.slot_bytes pool
      && len <= Fifo.max_packet q.out_fifo
      && Payload_pool.free_slots pool > 0
  | None -> false

(* ------------------------------------------------------------------ *)
(* Jumbo segmentation offload (DESIGN.md §15).  A TCP super-frame larger
   than one pool slot rides the channel as a single jumbo descriptor
   whose scatter vector spans several slots; the receiver reassembles and
   delivers it as one frame (GRO).  [q_gso_max = 0] means every frame
   keeps the per-MSS paths bit-for-bit. *)

let jumbo_nchunks pool len =
  let sb = Payload_pool.slot_bytes pool in
  (len + sb - 1) / sb

(* Ethernet + IPv4 + TCP header bytes a serialized jumbo frame adds on
   top of its TCP payload; [q_gso_max] bounds the payload, so the frame
   bound is [q_gso_max + jumbo_header_slack]. *)
let jumbo_header_slack = 54

let jumbo_eligible q len =
  q.q_gso_max > 0
  && len <= q.q_gso_max + jumbo_header_slack
  &&
  match q.q_tx_pool with
  | Some pool ->
      len > Payload_pool.slot_bytes pool
      && jumbo_nchunks pool len <= Fifo.max_jumbo_chunks
  | None -> false

(* Push one frame as a jumbo descriptor: allocate the scatter vector,
   write the frame across the slots, publish one descriptor covering all
   of them.  Any refusal (ring room, slot exhaustion, a chaos alloc
   fault mid-vector) rolls the allocations back and reports [false], so
   the caller queues the frame exactly as it would on a full ring.
   [amortized] skips the per-push [xenloop_fifo_op] when the caller
   already charged it for the whole batch.

   The descriptor always carries [flag_csum_ok]: frames on the channel
   come from a trusted co-resident sender, so the receiver may skip
   transport-checksum verification whether or not this particular frame
   had its checksum elided at serialization time. *)
let push_jumbo ?(amortized = false) t q raw =
  match q.q_tx_pool with
  | None -> false
  | Some pool ->
      let p = params t in
      let len = Bytes.length raw in
      let sb = Payload_pool.slot_bytes pool in
      let nchunks = jumbo_nchunks pool len in
      if
        (not (Fifo.can_accept_jumbo q.out_fifo ~nchunks))
        || Payload_pool.free_slots pool < nchunks
      then false
      else begin
        if not amortized then Sim.Resource.use (cpu t) p.Params.xenloop_fifo_op;
        (* Like the loaned descriptor path, on a loan channel the slots
           are the frame's only resting place — no sender copy charged or
           recorded; a plain gso channel pays the one real copy. *)
        if q.q_max_loans = 0 then begin
          Sim.Resource.use (cpu t) (Params.xenloop_copy_cost p len);
          record_copy t len
        end;
        let chunk_slots = Array.make nchunks 0 in
        let chunk_lens = Array.make nchunks 0 in
        let allocated = ref 0 in
        (try
           for i = 0 to nchunks - 1 do
             let slot = Payload_pool.alloc_slot pool in
             if slot < 0 then raise Exit;
             chunk_slots.(i) <- slot;
             allocated := i + 1;
             let off = i * sb in
             let clen = min sb (len - off) in
             chunk_lens.(i) <- clen;
             Payload_pool.write_from pool ~slot ~src:raw ~src_off:off ~len:clen
           done
         with Exit -> ());
        (* [unalloc] rewinds only the most recent allocation, so the
           rollback must walk the vector most-recent-first. *)
        let rollback () =
          for i = !allocated - 1 downto 0 do
            Payload_pool.unalloc pool chunk_slots.(i)
          done
        in
        if !allocated < nchunks then begin
          rollback ();
          q.q_pool_fallbacks <- q.q_pool_fallbacks + 1;
          t.s.pool_fallbacks <- t.s.pool_fallbacks + 1;
          false
        end
        else begin
          (* Chaos hook: corrupt one chunk length in the published vector
             — [total_len] stays honest and the payload was written
             intact, so the receiver must catch the sum mismatch and drop
             this frame loudly rather than mis-deliver it. *)
          (match t.jumbo_fault with
          | Some f when chunk_lens.(0) > 1 && f () ->
              chunk_lens.(0) <- chunk_lens.(0) - 1
          | _ -> ());
          if
            Fifo.try_push_jumbo q.out_fifo ~flags:Fifo.flag_csum_ok ~chunk_slots
              ~chunk_lens ~nchunks ~total_len:len ~proto_hint:(proto_hint_of raw)
              ()
          then begin
            q.q_desc_tx <- q.q_desc_tx + 1;
            t.s.desc_tx <- t.s.desc_tx + 1;
            t.s.jumbo_tx <- t.s.jumbo_tx + 1;
            t.s.jumbo_chunks_tx <- t.s.jumbo_chunks_tx + nchunks;
            if q.q_max_loans > 0 then begin
              q.q_loan_tx <- q.q_loan_tx + 1;
              t.s.loan_tx <- t.s.loan_tx + 1
            end;
            true
          end
          else begin
            rollback ();
            false
          end
        end
      end

let push_frame_legacy t q raw =
  let p = params t in
  let len = Bytes.length raw in
  Sim.Resource.use (cpu t)
    (if tx_loan_desc q len then p.Params.xenloop_fifo_op
     else
       Sim.Time.span_add p.Params.xenloop_fifo_op (Params.xenloop_copy_cost p len));
  let outcome =
    Fifo.push_entry q.out_fifo ~pool:q.q_tx_pool ~inline_max:q.q_inline_max
      ~proto_hint:(proto_hint_of raw) raw
  in
  let ok = note_outcome t q outcome in
  if ok && not (outcome = Fifo.pushed_desc && q.q_max_loans > 0) then
    record_copy t len;
  ok

(* Jumbo push with the legacy chunked-inline copy as its degraded path:
   when the pool refuses the scatter vector (slot exhaustion, a chaos
   alloc fault) or the descriptor ring refuses the jumbo, the frame
   falls back to the multi-slot inline copy the pre-gso path would have
   used — after restoring the transport checksum the jumbo serializer
   elided, since an inline entry carries no [flag_csum_ok] vouching and
   the receiver will verify it (the checksum-elision equivalence
   property).  A gso sender therefore degrades instead of parking
   frames behind an empty ring, where no peer notification would ever
   come to flush them. *)
let push_jumbo_or_inline ?(amortized = false) t q raw =
  push_jumbo ~amortized t q raw
  ||
  match Netcore.Codec.parse ~verify_transport:false raw with
  | Ok packet -> push_frame_legacy t q (Netcore.Codec.serialize packet)
  | Error _ -> false

let push_frame t q raw =
  if push_refused t then false
  else if jumbo_eligible q (Bytes.length raw) then push_jumbo_or_inline t q raw
  else push_frame_legacy t q raw

(* Whether a frame of this size would enter the queue right now —
   {!Fifo.can_accept} generalized over this queue's descriptor path,
   and over the jumbo path for gso-eligible lengths. *)
let queue_can_accept q len =
  if jumbo_eligible q len then
    (match q.q_tx_pool with
    | Some pool ->
        let nchunks = jumbo_nchunks pool len in
        Fifo.can_accept_jumbo q.out_fifo ~nchunks
        && Payload_pool.free_slots pool >= nchunks
    | None -> false)
    (* [push_jumbo_or_inline]'s degraded path: a jumbo the pool cannot
       scatter still enters if the chunked inline copy fits. *)
    || Fifo.can_accept_entry q.out_fifo ?pool:q.q_tx_pool
         ~inline_max:q.q_inline_max len
  else
    Fifo.can_accept_entry q.out_fifo ?pool:q.q_tx_pool ~inline_max:q.q_inline_max
      len

(* Bypass the channel entirely: the frame leaves through the standard
   netfront path (overflow reroute, tenant Divert, teardown flush).
   These are always frames this guest serialized itself, and a
   gso-bound frame may carry an elided (zeroed) transport checksum —
   parse without verifying it; the device codec recomputes a correct
   checksum when the structured packet is next serialized, which is
   what the checksum-elision equivalence property pins down. *)
let transmit_standard t raw =
  match Stack.device t.stack with
  | None -> ()
  | Some dev -> (
      match Netcore.Codec.parse ~verify_transport:false raw with
      | Ok packet -> Netstack.Netdevice.transmit dev packet
      | Error _ -> ())

(* A frame the bounded waiting list cannot hold leaves through the standard
   netfront path instead: the fast path degrades to the baseline, it never
   drops or queues without bound. *)
let route_overflow_standard t raw =
  t.s.waiting_overflows <- t.s.waiting_overflows + 1;
  transmit_standard t raw

let enqueue_waiting t q raw =
  let p = params t in
  if Queue.length q.waiting >= p.Params.xenloop_waiting_list_max then
    route_overflow_standard t raw
  else begin
    Queue.push raw q.waiting;
    t.s.queued_to_waiting <- t.s.queued_to_waiting + 1;
    (* Published through the shared descriptor so the peer knows freed
       space on this queue is worth a notification back to us. *)
    Fifo.set_producer_waiting q.out_fifo true
  end

(* ------------------------------------------------------------------ *)
(* Multi-tenant QoS tx path (DESIGN.md §14).  Active only when t.qos is
   Some — the legacy functions above are untouched, so qos-off runs are
   bit-for-bit identical to the pre-QoS tree. *)

let make_queue_sched t =
  match t.qos with
  | None -> None
  | Some _ ->
      let p = params t in
      Some
        (Qos.Drr.create
           ~quantum:(max 1 p.Params.qos_quantum)
           ~max_per_flow:(max 1 p.Params.qos_flow_queue_max)
           ())

let qos_policy_for qs flow =
  Hashtbl.find_opt qs.qt_policies flow.Qos.Flow_table.f_tenant

(* Deliver a congestion edge for [flow]: tenant hook first, then —
   unless a chaos fault swallows it — the per-socket signal into the
   netstack (TCP window clamp / UDP sendspace accounting).  MAC-keyed
   flows have no socket to signal. *)
let qos_signal t qs flow ~congested =
  let key = flow.Qos.Flow_table.f_key in
  (match qos_policy_for qs flow with
  | Some pol -> pol.Qos.Policy.p_on_congestion key ~congested
  | None -> ());
  let swallowed =
    match qs.qt_congestion_fault with Some f -> f key | None -> false
  in
  if not swallowed then
    match key with
    | Steering.Ip_flow { proto; src = _; dst; sport; dport } ->
        Stack.notify_congestion t.stack ~proto ~sport
          ~dst:(Netcore.Ip.of_int32 dst) ~dport ~congested
    | Steering.Mac_flow _ -> ()

let qos_update_watermark t qs sched flow =
  let used = Qos.Drr.flow_length sched flow.Qos.Flow_table.f_key in
  match
    Qos.Watermark.update flow.Qos.Flow_table.f_mark ~used
      ~capacity:(Qos.Drr.max_per_flow sched)
  with
  | `Raise -> qos_signal t qs flow ~congested:true
  | `Clear -> qos_signal t qs flow ~congested:false
  | `None -> ()

(* Classify, account, apply the tenant enqueue hook, and queue one frame
   on its flow's sub-queue.  A full sub-queue reroutes THIS flow's frame
   through netfront — per-flow overflow, so a flooder spills its own
   traffic instead of evicting other tenants' frames. *)
let qos_enqueue_frame t qs q sched ~key raw =
  let flow = Qos.Flow_table.lookup qs.qt_flows key in
  let len = Bytes.length raw in
  flow.Qos.Flow_table.f_bytes <- flow.Qos.Flow_table.f_bytes + len;
  flow.Qos.Flow_table.f_frames <- flow.Qos.Flow_table.f_frames + 1;
  let action =
    match qos_policy_for qs flow with
    | Some pol ->
        pol.Qos.Policy.p_enqueue
          {
            Qos.Policy.pe_key = key;
            pe_len = len;
            pe_desc = len > q.q_inline_max && q.q_tx_pool <> None;
          }
    | None -> Qos.Policy.Pass
  in
  match action with
  | Qos.Policy.Drop -> ()
  | Qos.Policy.Divert -> transmit_standard t raw
  | Qos.Policy.Pass ->
      if Qos.Drr.enqueue sched ~key ~weight:flow.Qos.Flow_table.f_weight ~len raw
      then begin
        t.s.queued_to_waiting <- t.s.queued_to_waiting + 1;
        Fifo.set_producer_waiting q.out_fifo true;
        qos_update_watermark t qs sched flow
      end
      else begin
        flow.Qos.Flow_table.f_overflows <- flow.Qos.Flow_table.f_overflows + 1;
        route_overflow_standard t raw
      end

let rec take_drop n xs =
  if n <= 0 then ([], xs)
  else
    match xs with
    | [] -> ([], [])
    | x :: rest ->
        let taken, rem = take_drop (n - 1) rest in
        (x :: taken, rem)

(* DRR service loop: move scheduled frames into the FIFO in weighted
   round-robin order.  Each selected batch pays one [xenloop_fifo_op]
   (the same amortization as the legacy batch path) plus per-frame copy
   charges; a batch the FIFO cannot finish is restored to its flow's
   sub-queue front with the deficit refunded, and draining stops until
   the peer frees space. *)
let qos_drain t qs q sched =
  if q.q_tx_draining then 0
  else begin
    q.q_tx_draining <- true;
    let p = params t in
    let pushed_total = ref 0 in
    let continue_draining = ref true in
    while
      !continue_draining
      &&
      match Qos.Drr.head_len sched with
      | Some len -> queue_can_accept q len
      | None -> false
    do
      if push_refused t then continue_draining := false
      else
        match Qos.Drr.select sched with
        | None -> continue_draining := false
        | Some (key, items) -> (
            let flow = Qos.Flow_table.lookup qs.qt_flows key in
            (* Jumbo frames cannot ride [push_many]: split the batch at
               the first jumbo-eligible frame — the plain prefix takes
               the bulk push below, a jumbo head is pushed singly, and
               whatever remains is restored to the flow's sub-queue
               front (deficit refunded) for the next round. *)
            let rec split acc = function
              | ((raw, _) as it) :: rest
                when not (jumbo_eligible q (Bytes.length raw)) ->
                  split (it :: acc) rest
              | rest -> (List.rev acc, rest)
            in
            let plain, jumbo_rest = split [] items in
            match plain with
            | [] -> (
                match jumbo_rest with
                | [] -> continue_draining := false
                | (raw, len) :: rest ->
                    Sim.Resource.use (cpu t) p.Params.xenloop_fifo_op;
                    if push_jumbo_or_inline ~amortized:true t q raw then begin
                      pushed_total := !pushed_total + 1;
                      t.s.via_channel_tx <- t.s.via_channel_tx + 1;
                      flow.Qos.Flow_table.f_descs <-
                        flow.Qos.Flow_table.f_descs + 1;
                      (match qos_policy_for qs flow with
                      | Some pol ->
                          pol.Qos.Policy.p_dequeue
                            {
                              Qos.Policy.pe_key = key;
                              pe_len = len;
                              pe_desc = true;
                            }
                      | None -> ());
                      if rest <> [] then Qos.Drr.restore sched key rest
                    end
                    else begin
                      Qos.Drr.restore sched key jumbo_rest;
                      continue_draining := false
                    end;
                    qos_update_watermark t qs sched flow)
            | _ :: _ ->
            let items = plain in
            Sim.Resource.use (cpu t) p.Params.xenloop_fifo_op;
            let report =
              Fifo.push_many q.out_fifo ?pool:q.q_tx_pool
                ~inline_max:q.q_inline_max
                ~proto_hint:
                  (match items with (raw, _) :: _ -> proto_hint_of raw | [] -> 0)
                ~loans:(q.q_max_loans > 0)
                (List.map fst items)
            in
            let pushed_items, leftover = take_drop report.Fifo.pr_pushed items in
            q.q_desc_tx <- q.q_desc_tx + report.Fifo.pr_desc;
            t.s.desc_tx <- t.s.desc_tx + report.Fifo.pr_desc;
            q.q_inline_tx <- q.q_inline_tx + report.Fifo.pr_inline;
            t.s.inline_tx <- t.s.inline_tx + report.Fifo.pr_inline;
            q.q_pool_fallbacks <- q.q_pool_fallbacks + report.Fifo.pr_fallbacks;
            t.s.pool_fallbacks <- t.s.pool_fallbacks + report.Fifo.pr_fallbacks;
            q.q_loan_tx <- q.q_loan_tx + report.Fifo.pr_loans;
            t.s.loan_tx <- t.s.loan_tx + report.Fifo.pr_loans;
            t.s.via_channel_tx <- t.s.via_channel_tx + report.Fifo.pr_pushed;
            pushed_total := !pushed_total + report.Fifo.pr_pushed;
            (* Per-frame charges and tenant dequeue hooks, attributing
               descriptor outcomes in push order: the first size-eligible
               frames took the [pr_desc] descriptor slots.  A descriptor
               on a loan-negotiated channel lives its whole life in the
               pool slot — no sender copy to charge or record. *)
            let desc_left = ref report.Fifo.pr_desc in
            let policy = qos_policy_for qs flow in
            List.iter
              (fun (raw, len) ->
                let is_desc = !desc_left > 0 && len > q.q_inline_max in
                if is_desc then begin
                  decr desc_left;
                  flow.Qos.Flow_table.f_descs <-
                    flow.Qos.Flow_table.f_descs + 1
                end;
                let loan_desc = is_desc && q.q_max_loans > 0 in
                if not loan_desc then begin
                  Sim.Resource.use (cpu t) (Params.xenloop_copy_cost p len);
                  record_copy t len
                end;
                match policy with
                | Some pol ->
                    pol.Qos.Policy.p_dequeue
                      { Qos.Policy.pe_key = key; pe_len = len; pe_desc = is_desc }
                | None -> ignore raw)
              pushed_items;
            (* Frames the FIFO refused, plus any jumbo tail we carved
               off, go back to the sub-queue front; only a FIFO refusal
               stops the drain (a restored jumbo tail is simply the next
               round's head). *)
            if leftover @ jumbo_rest <> [] then
              Qos.Drr.restore sched key (leftover @ jumbo_rest);
            if leftover <> [] then continue_draining := false;
            qos_update_watermark t qs sched flow)
    done;
    if Qos.Drr.is_empty sched then Fifo.set_producer_waiting q.out_fifo false;
    q.q_tx_draining <- false;
    !pushed_total
  end

let drain_waiting_legacy t q =
  if q.q_tx_draining then 0
  else begin
    q.q_tx_draining <- true;
    let pushed = ref 0 in
    let continue_draining = ref true in
    while !continue_draining && not (Queue.is_empty q.waiting) do
      let raw = Queue.peek q.waiting in
      if queue_can_accept q (Bytes.length raw) && push_frame t q raw
      then begin
        ignore (Queue.pop q.waiting);
        t.s.via_channel_tx <- t.s.via_channel_tx + 1;
        incr pushed
      end
      else continue_draining := false
    done;
    if Queue.is_empty q.waiting then Fifo.set_producer_waiting q.out_fifo false;
    q.q_tx_draining <- false;
    !pushed
  end

let drain_waiting t q =
  match (t.qos, q.q_sched) with
  | Some qs, Some sched -> qos_drain t qs q sched
  | _ -> drain_waiting_legacy t q

(* QoS-mode frame admission: every frame enters its flow's sub-queue
   first and reaches the FIFO only through the DRR drain — scheduling
   order is always weighted-fair, never FIFO-arrival.  One trailing
   notification per burst, exactly like the legacy batch path. *)
let qos_send_batch t qs q sched keyed_frames =
  (match keyed_frames with
  | _ :: _ :: _ -> t.s.batches <- t.s.batches + 1
  | _ -> ());
  List.iter
    (fun (key, raw) -> qos_enqueue_frame t qs q sched ~key raw)
    keyed_frames;
  ignore (qos_drain t qs q sched);
  notify_peer t q

let send_via_channel t q raw =
  (* Packets behind a non-empty waiting list must queue too (per-queue
     ordering).  Like the batch path, the waiting list is first serviced
     from the sending context: forward progress must not depend solely
     on a peer notify-back, because a frame parked while the ring was
     {e empty} (a refused push, an exhausted pool) leaves the peer
     nothing to consume and hence no reason to signal.  Whatever still
     cannot leave waits for the receiver's freed-space signal — "sent
     once enough resources are available" (paper Sect. 3.1).  This is
     what makes the FIFO size matter (Fig. 5): a small FIFO forces an
     event-channel round trip per FIFO-full of packets. *)
  if not (Queue.is_empty q.waiting) then ignore (drain_waiting t q);
  let sent_now =
    if Queue.is_empty q.waiting && push_frame t q raw then true
    else begin
      enqueue_waiting t q raw;
      false
    end
  in
  if sent_now then t.s.via_channel_tx <- t.s.via_channel_tx + 1;
  (* Signal the receiver; also when we only queued, so the peer's next
     consumption round notifies us back to drain the waiting list. *)
  notify_peer t q

let send_batch t q raws =
  (* One burst — all fragments of one datagram, or several back-to-back
     steals steered to the same queue — enters the FIFO under a single
     amortized bookkeeping charge and a single trailing notification. *)
  let p = params t in
  match raws with
  | [] -> ()
  | [ raw ] -> send_via_channel t q raw
  | raws when not p.Params.xenloop_batch_tx -> List.iter (send_via_channel t q) raws
  | raws ->
      t.s.batches <- t.s.batches + 1;
      (* Service the waiting list from the sending context first: leaving
         it to the event handler alone starves it behind this process's
         own CPU charges, and ordering only needs queued frames to leave
         before the new burst. *)
      if not (Queue.is_empty q.waiting) then ignore (drain_waiting t q);
      if not (Queue.is_empty q.waiting) then
        (* Ordering: everything behind a non-empty waiting list queues. *)
        List.iter (enqueue_waiting t q) raws
      else begin
        (* The burst pays [xenloop_fifo_op] once; each frame still pays its
           copy before becoming visible to the consumer. *)
        Sim.Resource.use (cpu t) p.Params.xenloop_fifo_op;
        let overflowed = ref false in
        List.iter
          (fun raw ->
            if !overflowed then enqueue_waiting t q raw
            else begin
              let len = Bytes.length raw in
              if jumbo_eligible q len then begin
                if
                  (not (push_refused t))
                  && push_jumbo_or_inline ~amortized:true t q raw
                then t.s.via_channel_tx <- t.s.via_channel_tx + 1
                else begin
                  overflowed := true;
                  enqueue_waiting t q raw
                end
              end
              else begin
                if not (tx_loan_desc q len) then
                  Sim.Resource.use (cpu t) (Params.xenloop_copy_cost p len);
                let outcome =
                  if push_refused t then Fifo.push_failed
                  else
                    Fifo.push_entry q.out_fifo ~pool:q.q_tx_pool
                      ~inline_max:q.q_inline_max ~proto_hint:(proto_hint_of raw)
                      raw
                in
                if note_outcome t q outcome then begin
                  if not (outcome = Fifo.pushed_desc && q.q_max_loans > 0) then
                    record_copy t len;
                  t.s.via_channel_tx <- t.s.via_channel_tx + 1
                end
                else begin
                  overflowed := true;
                  enqueue_waiting t q raw
                end
              end
            end)
          raws
      end;
      notify_peer t q

(* ------------------------------------------------------------------ *)
(* Teardown *)

(* Hand a scheduler's frames back to the legacy waiting list (service
   order, each flow FIFO) so the teardown paths below need only one
   backlog representation. *)
let spill_sched_to_waiting q =
  match q.q_sched with
  | None -> ()
  | Some sched ->
      List.iter
        (fun (_, raw, _) -> Queue.push raw q.waiting)
        (Qos.Drr.drain_all sched)

(* Channel death must not leave sockets clamped behind a congestion
   signal that will never clear: reset every latched flow watermark and
   emit the clear edge. *)
let qos_release_congestion t =
  match t.qos with
  | None -> ()
  | Some qs ->
      List.iter
        (fun flow ->
          if Qos.Watermark.congested flow.Qos.Flow_table.f_mark then begin
            Qos.Watermark.reset flow.Qos.Flow_table.f_mark;
            qos_signal t qs flow ~congested:false
          end)
        (Qos.Flow_table.flows qs.qt_flows)

let flush_waiting_via_standard_path t ch =
  (* Transparent fallback: packets that never made it into any queue's
     FIFO leave through the standard netfront path instead of being
     dropped.  Snapshot every queue before transmitting: each transmit
     yields the CPU, and a handler waking mid-flush must find the queues
     already empty rather than race the iteration. *)
  let frames =
    Array.fold_left
      (fun acc q ->
        spill_sched_to_waiting q;
        let fs = List.of_seq (Queue.to_seq q.waiting) in
        Queue.clear q.waiting;
        acc @ fs)
      [] ch.queues
  in
  match Stack.device t.stack with
  | None -> ()
  | Some dev ->
      List.iter
        (fun raw ->
          (* Our own serialization; a reclaimed jumbo may carry an elided
             transport checksum (see {!transmit_standard}). *)
          match Netcore.Codec.parse ~verify_transport:false raw with
          | Ok packet -> Netstack.Netdevice.transmit dev packet
          | Error _ -> ())
        frames

exception Corrupt_channel

(* The release closure handed out with a borrowed pool-slot view.  The
   receiver's socket layer (or the application, through recvfrom_view)
   calls it exactly once when done with the view; [copied] reports whether
   the borrow degenerated into a copy somewhere in the stack (out-of-order
   TCP hold, fragment reassembly, explicit copy-out), which is then
   recorded so the copies/byte metric stays honest.  Idempotent: late
   duplicate releases are no-ops, as are releases after channel teardown
   already force-returned the slot (the pool view is dead by then). *)
let make_release t q pool ~slot ~len =
  let released = ref false in
  let finish ~copied =
    if not !released then begin
      released := true;
      q.q_loan_returns <- q.q_loan_returns + 1;
      t.s.loan_returns <- t.s.loan_returns + 1;
      if copied then record_copy t len;
      Payload_pool.release pool slot
    end
  in
  match (match t.loan_fault with None -> Loan_pass | Some f -> f ()) with
  | Loan_pass -> finish
  | Loan_leak ->
      (* Leaky application: the view is never handed back, the slot stays
         pinned until teardown force-returns it, and the credit check
         degrades later deliveries to copy-out. *)
      fun ~copied:_ -> ()
  | Loan_delay d -> fun ~copied -> Sim.Engine.after (engine t) d (fun () -> finish ~copied)

(* Multi-slot variant of {!make_release} for a loaned jumbo delivery
   (DESIGN.md §15): one release closure hands back every chunk slot of
   the scatter vector at once.  One closure, one loan_return — mirroring
   the one loan_rx the delivery counted. *)
let make_jumbo_release t q pool ~chunks ~len =
  let released = ref false in
  let finish ~copied =
    if not !released then begin
      released := true;
      q.q_loan_returns <- q.q_loan_returns + 1;
      t.s.loan_returns <- t.s.loan_returns + 1;
      if copied then record_copy t len;
      Array.iter (fun (slot, _) -> Payload_pool.release pool slot) chunks
    end
  in
  match (match t.loan_fault with None -> Loan_pass | Some f -> f ()) with
  | Loan_pass -> finish
  | Loan_leak -> fun ~copied:_ -> ()
  | Loan_delay d -> fun ~copied -> Sim.Engine.after (engine t) d (fun () -> finish ~copied)

(* A [flag_app] descriptor: a socket-shortcut datagram living in the pool
   slot behind an 8-byte app header, delivered to the application layer
   directly — as a borrowed view with an explicit release when credit
   allows, by copy-out to the plain handler otherwise. *)
let consume_app_desc t q pool ~slot ~off ~len ~dst_port =
  if len <= 8 then
    (* No room for the app header: off-protocol. *)
    raise Corrupt_channel
  else begin
    let hdr = Payload_pool.read pool ~slot ~off ~len:8 in
    let src_ip = Netcore.Ip.of_int32 (Bytes.get_int32_be hdr 0) in
    let src_port = Bytes.get_uint16_be hdr 4 in
    let plen = len - 8 in
    match t.app_view_handler with
    | Some handler
      when q.q_max_loans > 0
           && Payload_pool.outstanding_loans pool < q.q_max_loans ->
        Payload_pool.loan pool slot;
        q.q_loan_rx <- q.q_loan_rx + 1;
        t.s.loan_rx <- t.s.loan_rx + 1;
        let payload = Payload_pool.read pool ~slot ~off:(off + 8) ~len:plen in
        let release = make_release t q pool ~slot ~len:plen in
        t.s.via_channel_rx <- t.s.via_channel_rx + 1;
        handler ~src_ip ~src_port ~dst_port payload ~release
    | Some _ | None ->
        let payload = Payload_pool.read pool ~slot ~off:(off + 8) ~len:plen in
        Payload_pool.free pool slot;
        if q.q_max_loans > 0 then begin
          q.q_loan_credit_stalls <- q.q_loan_credit_stalls + 1;
          t.s.loan_credit_stalls <- t.s.loan_credit_stalls + 1;
          record_copy t plen
        end;
        t.s.via_channel_rx <- t.s.via_channel_rx + 1;
        (match t.app_handler with
        | Some handler -> handler ~src_ip ~src_port ~dst_port payload
        | None -> ())
  end

let drain_incoming t q =
  let consumed = ref 0 in
  let p = params t in
  let continue_draining = ref true in
  let inject raw =
    incr consumed;
    match Netcore.Codec.parse raw with
    | Ok packet ->
        t.s.via_channel_rx <- t.s.via_channel_rx + 1;
        Stack.inject_rx t.stack packet
    | Error _ ->
        (* An individual frame that fails to parse is dropped; the FIFO
           framing itself is still sound. *)
        ()
  in
  while !continue_draining do
    match Fifo.pop_entry q.in_fifo with
    | exception Invalid_argument _ ->
        (* The peer scribbled over the shared FIFO state.  Never trust it,
           never crash: poison the channel and let the caller disengage. *)
        raise Corrupt_channel
    | None -> continue_draining := false
    | Some entry -> (
        (* Receiver half of the batch amortization: the first frame of a
           drain pays the FIFO bookkeeping, the rest only their copies. *)
        let bookkeeping =
          if p.Params.xenloop_batch_tx && !consumed > 0 then Sim.Time.span_zero
          else p.Params.xenloop_fifo_op
        in
        match entry with
        | Fifo.Inline raw ->
            let len = Bytes.length raw in
            Sim.Resource.use (cpu t)
              (Sim.Time.span_add bookkeeping (Params.xenloop_copy_cost p len));
            record_copy t len;
            inject raw
        | Fifo.Desc { d_slot; d_off; d_len; d_proto; d_flags } -> (
            match q.q_rx_pool with
            | None ->
                (* A descriptor on a channel we never negotiated pools for:
                   the peer is off-protocol. *)
                raise Corrupt_channel
            | Some pool ->
                if
                  d_slot < 0
                  || d_slot >= Payload_pool.slots pool
                  || d_off < 0 || d_len <= 0
                  || d_off + d_len > Payload_pool.slot_bytes pool
                then raise Corrupt_channel
                else begin
                  (* The zero-copy receive half: the payload is consumed in
                     place out of the mapped pool — bookkeeping only. *)
                  Sim.Resource.use (cpu t) bookkeeping;
                  if d_flags land Fifo.flag_app <> 0 then begin
                    incr consumed;
                    consume_app_desc t q pool ~slot:d_slot ~off:d_off
                      ~len:d_len ~dst_port:d_proto
                  end
                  else if
                    q.q_max_loans > 0
                    && Payload_pool.outstanding_loans pool < q.q_max_loans
                  then begin
                    (* Loaned delivery: the socket layer borrows the slot
                       and the free-ring return waits for the application's
                       release — no copy charged, none recorded. *)
                    Payload_pool.loan pool d_slot;
                    q.q_loan_rx <- q.q_loan_rx + 1;
                    t.s.loan_rx <- t.s.loan_rx + 1;
                    let raw =
                      Payload_pool.read pool ~slot:d_slot ~off:d_off ~len:d_len
                    in
                    let release = make_release t q pool ~slot:d_slot ~len:d_len in
                    incr consumed;
                    match Netcore.Codec.parse raw with
                    | Ok packet ->
                        t.s.via_channel_rx <- t.s.via_channel_rx + 1;
                        Stack.inject_rx_borrowed t.stack packet ~release
                    | Error _ -> release ~copied:false
                  end
                  else begin
                    (* Copy-out: on a pre-loan channel this is the plain
                       descriptor receive (no copy charged or recorded, as
                       before); on a loan channel it is the transparent
                       credit-exhaustion fallback, whose one real copy is
                       recorded. *)
                    if q.q_max_loans > 0 then begin
                      q.q_loan_credit_stalls <- q.q_loan_credit_stalls + 1;
                      t.s.loan_credit_stalls <- t.s.loan_credit_stalls + 1;
                      record_copy t d_len
                    end;
                    let raw =
                      Payload_pool.read pool ~slot:d_slot ~off:d_off ~len:d_len
                    in
                    Payload_pool.free pool d_slot;
                    inject raw
                  end
                end)
        | Fifo.Jumbo { j_len; j_proto = _; j_flags; j_chunks } -> (
            match q.q_rx_pool with
            | None ->
                (* A jumbo descriptor on a channel we never negotiated
                   pools for: the peer is off-protocol. *)
                raise Corrupt_channel
            | Some pool ->
                (* GRO receive: the scatter vector reassembles into one
                   frame delivered whole to the stack — no per-MSS
                   segment processing on this side either. *)
                Sim.Resource.use (cpu t) bookkeeping;
                let nslots = Payload_pool.slots pool in
                let sb = Payload_pool.slot_bytes pool in
                let nchunks = Array.length j_chunks in
                (* Slot sanity is framing-level: an out-of-range or
                   repeated slot means the shared state itself cannot be
                   trusted — poison the channel. *)
                let slots_ok = ref (nchunks > 0) in
                for i = 0 to nchunks - 1 do
                  let s, _ = j_chunks.(i) in
                  if s < 0 || s >= nslots then slots_ok := false;
                  for k = 0 to i - 1 do
                    if fst j_chunks.(k) = s then slots_ok := false
                  done
                done;
                if not !slots_ok then raise Corrupt_channel;
                (* Length-vector sanity is frame-level: a corrupted
                   scatter length (chaos [Jumbo_truncate]) makes exactly
                   this frame undeliverable — return the slots, account
                   the drop loudly, keep the channel.  Never deliver
                   bytes the vector does not account for. *)
                let sum = Array.fold_left (fun a (_, l) -> a + l) 0 j_chunks in
                let lens_ok =
                  j_len > 0 && sum = j_len
                  && Array.for_all (fun (_, l) -> l > 0 && l <= sb) j_chunks
                in
                if not lens_ok then begin
                  Array.iter (fun (s, _) -> Payload_pool.free pool s) j_chunks;
                  t.s.jumbo_drops <- t.s.jumbo_drops + 1;
                  trace t Sim.Trace.Channel
                    "dom%d: dropped corrupt jumbo on q%d \
                     (len=%d chunk-sum=%d chunks=%d)"
                    (my_domid t) q.q_index j_len sum nchunks;
                  incr consumed
                end
                else begin
                  (* The sender stamped [flag_csum_ok] when it vouches
                     for the payload (trusted-channel checksum elision);
                     only an unstamped frame still gets its transport
                     checksum verified. *)
                  let verify_transport =
                    j_flags land Fifo.flag_csum_ok = 0
                  in
                  let gather () =
                    let raw = Bytes.create j_len in
                    let off = ref 0 in
                    Array.iter
                      (fun (s, l) ->
                        Payload_pool.read_into pool ~slot:s ~off:0 ~len:l
                          ~dst:raw ~dst_off:!off;
                        off := !off + l)
                      j_chunks;
                    raw
                  in
                  if
                    q.q_max_loans > 0
                    && Payload_pool.outstanding_loans pool + nchunks
                       <= q.q_max_loans
                  then begin
                    (* Loaned GRO delivery: every chunk slot is borrowed
                       for the lifetime of the one view; no copy charged
                       or recorded. *)
                    Array.iter (fun (s, _) -> Payload_pool.loan pool s) j_chunks;
                    q.q_loan_rx <- q.q_loan_rx + 1;
                    t.s.loan_rx <- t.s.loan_rx + 1;
                    let raw = gather () in
                    let release =
                      make_jumbo_release t q pool ~chunks:j_chunks ~len:j_len
                    in
                    incr consumed;
                    match Netcore.Codec.parse ~verify_transport raw with
                    | Ok packet ->
                        t.s.jumbo_rx <- t.s.jumbo_rx + 1;
                        t.s.via_channel_rx <- t.s.via_channel_rx + 1;
                        Stack.inject_rx_borrowed t.stack packet ~release
                    | Error _ -> release ~copied:false
                  end
                  else begin
                    (* Copy-out: the plain gso receive on a pre-loan
                       channel, or the transparent credit-exhaustion
                       fallback on a loan channel (whose one real copy
                       is recorded). *)
                    if q.q_max_loans > 0 then begin
                      q.q_loan_credit_stalls <- q.q_loan_credit_stalls + 1;
                      t.s.loan_credit_stalls <- t.s.loan_credit_stalls + 1;
                      record_copy t j_len
                    end;
                    let raw = gather () in
                    Array.iter (fun (s, _) -> Payload_pool.free pool s) j_chunks;
                    incr consumed;
                    match Netcore.Codec.parse ~verify_transport raw with
                    | Ok packet ->
                        t.s.jumbo_rx <- t.s.jumbo_rx + 1;
                        t.s.via_channel_rx <- t.s.via_channel_rx + 1;
                        Stack.inject_rx t.stack packet
                    | Error _ -> ()
                  end
                end))
  done;
  !consumed

let drain_all_incoming t ch =
  Array.iter
    (fun q -> try ignore (drain_incoming t q) with Corrupt_channel -> ())
    ch.queues

(* Channel teardown must not wait for application releases: every loan
   still in flight is force-returned to the free ring now (the pool pages
   are about to be unmapped) and the rx views go dead, so a late release
   from a socket buffer that outlives the channel is a harmless no-op. *)
let force_return_channel_loans t ch =
  Array.iter
    (fun q ->
      match q.q_rx_pool with
      | None -> ()
      | Some pool ->
          let n = Payload_pool.force_return_loans pool in
          if n > 0 then begin
            t.s.loans_force_returned <- t.s.loans_force_returned + n;
            trace t Sim.Trace.Teardown
              "dom%d: force-returned %d in-flight loan(s) on q%d to dom%d"
              (my_domid t) n q.q_index ch.peer_domid
          end)
    ch.queues

(* Abandon a channel whose shared state can no longer be trusted.  One
   corrupt queue poisons the whole channel: the queues share their page
   pool and their cleanup, so they go together or not at all. *)
let quarantine t peer_domid ch =
  t.s.corrupt_channels <- t.s.corrupt_channels + 1;
  trace t Sim.Trace.Teardown "dom%d: quarantining corrupt channel to dom%d"
    (my_domid t) peer_domid;
  Array.iter
    (fun q ->
      Queue.clear q.waiting;
      (match q.q_sched with Some sched -> Qos.Drr.clear sched | None -> ());
      (try Fifo.mark_inactive q.out_fifo with Invalid_argument _ -> ());
      try Fifo.mark_inactive q.in_fifo with Invalid_argument _ -> ())
    ch.queues;
  qos_release_congestion t;
  (* Tell the peer on every queue so it disengages too. *)
  Array.iter
    (fun q -> try notify_peer ~force:true t q with Invalid_argument _ -> ())
    ch.queues;
  force_return_channel_loans t ch;
  ch.cleanup ();
  Hashtbl.remove t.peers peer_domid;
  bump_epoch t;
  t.s.channels_torn_down <- t.s.channels_torn_down + 1

let teardown_channel t ~save ch =
  trace t Sim.Trace.Teardown "dom%d: tearing down channel to dom%d (save=%b, queues=%d)"
    (my_domid t) ch.peer_domid save (Array.length ch.queues);
  (* Receive anything still pending on every queue, kill the shared state
     so concurrent senders bounce off, save or flush the unsent packets,
     tell the peer, disengage. *)
  if ch.connected then drain_all_incoming t ch;
  (* Every queue goes inactive before any queue's frames are reclaimed: a
     handler that was mid-push on {e any} queue when we got here must see
     try_push fail, not feed frames into pages this function is about to
     reclaim and release.  This is what makes multi-queue teardown
     atomic. *)
  Array.iter
    (fun q ->
      Fifo.mark_inactive q.out_fifo;
      Fifo.mark_inactive q.in_fifo)
    ch.queues;
  (* QoS mode: scheduled frames rejoin the plain waiting list so the
     save/flush below handles one backlog representation; any latched
     congestion signal is released so no socket stays clamped behind a
     dead channel. *)
  Array.iter spill_sched_to_waiting ch.queues;
  qos_release_congestion t;
  if ch.connected then
    Array.iter
      (fun q ->
        (* Frames the peer has not yet popped would be stranded once the
           FIFO pages go back to the frame pool (the peer reads them only
           after its event latency, by which time the pages may be
           reused).  Reclaim them per queue and let the save/flush below
           carry them, in order, ahead of that queue's waiting list. *)
        let stranded = Queue.create () in
        (try
           let reclaiming = ref true in
           while !reclaiming do
             match Fifo.pop_entry q.out_fifo with
             | Some (Fifo.Inline raw) -> Queue.push raw stranded
             | Some (Fifo.Desc { d_slot; d_off; d_len; d_proto; d_flags }) -> (
                 (* A descriptor the peer never consumed: we wrote the
                    payload, so we can read it back out of our own tx pool
                    before the pool pages are released with the channel.
                    No slot return needed — the free ring dies with the
                    pages. *)
                 match q.q_tx_pool with
                 | Some pool ->
                     let raw =
                       Payload_pool.read pool ~slot:d_slot ~off:d_off ~len:d_len
                     in
                     if d_flags land Fifo.flag_app <> 0 && d_len > 8 then begin
                       (* App descriptor: the slot holds [app header |
                          datagram], not a serialized frame.  Rebuild the
                          equivalent control frame so the save/flush path
                          can carry it over netfront. *)
                       let msg =
                         Proto.App_payload
                           {
                             src_ip =
                               Netcore.Ip.of_int32 (Bytes.get_int32_be raw 0);
                             src_port = Bytes.get_uint16_be raw 4;
                             dst_port = d_proto;
                             payload = Bytes.sub raw 8 (d_len - 8);
                           }
                       in
                       Queue.push
                         (Netcore.Codec.serialize
                            (Netcore.Packet.xenloop_ctrl
                               ~src_mac:(Stack.mac_addr t.stack)
                               ~dst_mac:ch.peer_mac (Proto.encode msg)))
                         stranded
                     end
                     else Queue.push raw stranded
                 | None -> ())
             | Some (Fifo.Jumbo { j_len; j_chunks; _ }) -> (
                 (* A jumbo the peer never consumed: gather it back out
                    of our own tx pool so the save/flush below can carry
                    it (it re-enters as one frame; netfront re-segments).
                    A scatter vector we cannot trust — a chaos fault
                    corrupted it before teardown — is dropped rather
                    than read out of range. *)
                 match q.q_tx_pool with
                 | Some pool
                   when j_len > 0
                        && Array.for_all
                             (fun (s, l) ->
                               s >= 0
                               && s < Payload_pool.slots pool
                               && l > 0
                               && l <= Payload_pool.slot_bytes pool)
                             j_chunks
                        && Array.fold_left (fun a (_, l) -> a + l) 0 j_chunks
                           = j_len ->
                     let raw = Bytes.create j_len in
                     let off = ref 0 in
                     Array.iter
                       (fun (s, l) ->
                         Payload_pool.read_into pool ~slot:s ~off:0 ~len:l
                           ~dst:raw ~dst_off:!off;
                         off := !off + l)
                       j_chunks;
                     Queue.push raw stranded
                 | Some _ | None -> t.s.jumbo_drops <- t.s.jumbo_drops + 1)
             | None -> reclaiming := false
           done
         with Invalid_argument _ -> ());
        Queue.transfer q.waiting stranded;
        Queue.transfer stranded q.waiting)
      ch.queues;
  if save then
    Array.iter
      (fun q ->
        t.saved_frames <- t.saved_frames @ List.of_seq (Queue.to_seq q.waiting);
        Queue.clear q.waiting)
      ch.queues
  else flush_waiting_via_standard_path t ch;
  if ch.connected then Array.iter (fun q -> notify_peer ~force:true t q) ch.queues;
  force_return_channel_loans t ch;
  ch.cleanup ();
  t.s.channels_torn_down <- t.s.channels_torn_down + 1

let disengage_peer t peer_domid ~save =
  match Hashtbl.find_opt t.peers peer_domid with
  | Some (Active ch) ->
      (* Unregister before the teardown yields the CPU, so a concurrently
         waking handler cannot find the channel and tear it down twice. *)
      Hashtbl.remove t.peers peer_domid;
      bump_epoch t;
      teardown_channel t ~save ch
  | Some (Bootstrapping (Awaiting_ack ba)) ->
      ba.ba_channel.cleanup ();
      Hashtbl.remove t.peers peer_domid
  | Some (Bootstrapping (Requested_from_listener _)) | Some (Failed_until _) ->
      Hashtbl.remove t.peers peer_domid
  | None -> ()

let teardown_all t ~save =
  let peer_ids = Hashtbl.fold (fun id _ acc -> id :: acc) t.peers [] in
  List.iter (fun id -> disengage_peer t id ~save) peer_ids;
  Mapping_table.clear t.mapping;
  bump_epoch t

(* ------------------------------------------------------------------ *)
(* Bounded channel state (DESIGN.md §12): per-guest channel cap with
   idle-LRU eviction, plus join-storm damping on bootstrap *)

let active_channel_count t =
  Hashtbl.fold
    (fun _ state acc -> match state with Active _ -> acc + 1 | _ -> acc)
    t.peers 0

let bootstraps_inflight t =
  Hashtbl.fold
    (fun _ state acc ->
      match state with Bootstrapping _ -> acc + 1 | _ -> acc)
    t.peers 0

(* Join-storm damping: when a big announcement lands (say 100 guests at
   once), every co-resident packet wants to start a bootstrap in the same
   scan window.  Bounding the concurrent handshakes keeps grant/page
   allocation bursts flat; a refused bootstrap leaves no state behind, the
   packet takes the standard path, and the next packet towards that peer
   simply tries again once a slot frees up. *)
let bootstrap_allowed t =
  let lim = (params t).Params.xenloop_bootstrap_max_inflight in
  lim <= 0 || bootstraps_inflight t < lim

(* Oldest Active channel by last traffic, ties broken towards the lower
   domid — deterministic, so chaos digests stay replayable. *)
let lru_active_peer t ~excluding =
  Hashtbl.fold
    (fun domid state best ->
      match state with
      | Active ch when domid <> excluding -> (
          match best with
          | Some (_, best_t, best_d)
            when Sim.Time.compare best_t ch.ch_last_active < 0
                 || (Sim.Time.compare best_t ch.ch_last_active = 0
                    && best_d < domid) ->
              best
          | Some _ | None -> Some (ch, ch.ch_last_active, domid))
      | _ -> best)
    t.peers None

(* Evict one Active channel: the peer state flips to a short cooldown
   {e before} the teardown runs (teardown yields the CPU, and a
   concurrently waking handler or the very next packet must not race a new
   bootstrap into the slot being freed).  The teardown itself is the
   ordinary grant-balanced one — pending receives drained, stranded frames
   reclaimed, unsent traffic flushed over netfront exactly once — so
   eviction is transparent to the flows riding the channel; they fall back
   to netfront until traffic re-establishes it.  Not a bootstrap failure:
   the peer is fine, we just chose to shed the state. *)
let evict_channel t peer_domid =
  match Hashtbl.find_opt t.peers peer_domid with
  | Some (Active ch) ->
      let deadline =
        Sim.Time.add
          (Sim.Engine.now (engine t))
          (params t).Params.xenloop_evict_cooldown
      in
      Hashtbl.replace t.peers peer_domid (Failed_until deadline);
      bump_epoch t;
      t.s.channels_evicted <- t.s.channels_evicted + 1;
      trace t Sim.Trace.Teardown "dom%d: evicting channel to dom%d (LRU)"
        (my_domid t) peer_domid;
      teardown_channel t ~save:false ch;
      true
  | Some (Bootstrapping _) | Some (Failed_until _) | None -> false

let evict_lru t =
  if not t.loaded then false
  else
    match lru_active_peer t ~excluding:(-1) with
    | Some (_, _, domid) -> evict_channel t domid
    | None -> false

(* Make room for a channel to [peer_domid] under the configured cap by
   evicting LRU channels (never the one being established).  The guard
   bounds the loop against a pathological cap; in practice one round
   evicts one channel. *)
let make_room_under_cap t ~peer_domid =
  let cap = (params t).Params.xenloop_channel_cap in
  if cap > 0 then begin
    let guard = ref 64 in
    while active_channel_count t >= cap && !guard > 0 do
      decr guard;
      match lru_active_peer t ~excluding:peer_domid with
      | Some (_, _, victim) -> ignore (evict_channel t victim)
      | None -> guard := 0
    done
  end

(* Idle-LRU sweep, driven by the same periodic timer as the soft-state
   TTL: any connected channel quiet for [xenloop_channel_idle_ttl] is
   evicted, so an N-guest mesh's steady-state mapped memory tracks the
   traffic matrix, not N². *)
let idle_evict t =
  if t.loaded then begin
    let idle = (params t).Params.xenloop_channel_idle_ttl in
    if Sim.Time.span_is_positive idle then begin
      let now = Sim.Engine.now (engine t) in
      let victims =
        Hashtbl.fold
          (fun domid state acc ->
            match state with
            | Active ch
              when ch.connected
                   && Sim.Time.(now >= Sim.Time.add ch.ch_last_active idle) ->
                domid :: acc
            | _ -> acc)
          t.peers []
        |> List.sort compare
      in
      List.iter (fun domid -> ignore (evict_channel t domid)) victims
    end
  end

(* ------------------------------------------------------------------ *)
(* Live memory accounting (bench JSON): how much shared state this
   guest's channel set pins at steady state *)

let live_channels t =
  Hashtbl.fold
    (fun _ state acc ->
      match state with Active ch when ch.connected -> acc + 1 | _ -> acc)
    t.peers 0

(* Bytes of machine memory backing this guest's Active channels, counted
   once by the side that allocated them (the listener): every queue's FIFO
   descriptor+data pages plus both directions' payload pools.  Summing
   this over a mesh gives the total mapped pool, without double counting
   the connector's mappings of the same pages. *)
let channel_pool_bytes t =
  let pool_bytes = function
    | Some pp ->
        Memory.Page.size
        + (Payload_pool.slots pp * Payload_pool.slot_bytes pp)
    | None -> 0
  in
  Hashtbl.fold
    (fun _ state acc ->
      match state with
      | Active ch when ch.role = Listener ->
          let fifo_pages =
            Fifo.pages_for_queues ~k:t.k ~queues:(Array.length ch.queues)
          in
          Array.fold_left
            (fun acc q -> acc + pool_bytes q.q_tx_pool + pool_bytes q.q_rx_pool)
            (acc + (fifo_pages * Memory.Page.size))
            ch.queues
      | _ -> acc)
    t.peers 0

let grant_entries t =
  match Machine.grant_table (t.current_machine ()) (my_domid t) with
  | Some gt -> Gt.active_grants gt
  | None -> 0

let announce_epoch t = t.announce_epoch

(* ------------------------------------------------------------------ *)
(* Event-channel handler: packets arrived, or space was freed *)

(* Peer marked the channel inactive: drain what's left on every queue,
   then disengage (paper Sect. 3.3, "Channel teardown").  Seeing any one
   queue inactive means the whole channel is going — the peer marks them
   all before notifying. *)
let handle_peer_teardown t peer_domid ch =
  (* A handler parked in its poll window can wake after [unload] already
     disengaged this very channel; only the first teardown may clean up. *)
  match Hashtbl.find_opt t.peers peer_domid with
  | Some (Active ch') when ch' == ch ->
      (* Unregister first: the drain below yields, and only the first
         teardown may run the cleanup. *)
      Hashtbl.remove t.peers peer_domid;
      bump_epoch t;
      drain_all_incoming t ch;
      flush_waiting_via_standard_path t ch;
      force_return_channel_loans t ch;
      ch.cleanup ();
      t.s.channels_torn_down <- t.s.channels_torn_down + 1
  | _ -> ()

(* One quiescence round on one queue: receive everything pending, then
   service our own waiting list into the space that popping just freed. *)
let drain_round t q =
  let total_consumed = ref 0 and total_pushed = ref 0 in
  let quiescent = ref false in
  while not !quiescent do
    let consumed = drain_incoming t q in
    let pushed = drain_waiting t q in
    total_consumed := !total_consumed + consumed;
    total_pushed := !total_pushed + pushed;
    if consumed = 0 && pushed = 0 then quiescent := true
  done;
  (!total_consumed, !total_pushed)

(* NAPI-style adaptive polling: after draining a queue to quiescence, stay
   in the handler for a short window re-checking that queue's FIFO, so a
   streaming sender keeps seeing our consumer-active flag and never rings
   the doorbell.  Per queue: polling the bulk queue does not keep the rr
   queue's flag set.  Returns [true] when new work appeared before the
   window expired. *)
let poll_for_more t q =
  let p = params t in
  let window = p.Params.xenloop_poll_window in
  let interval = p.Params.xenloop_poll_interval in
  if not (Sim.Time.span_is_positive window && Sim.Time.span_is_positive interval)
  then false
  else begin
    let deadline = Sim.Time.add (Sim.Engine.now (engine t)) window in
    let got_work = ref false in
    let stop = ref false in
    while not (!got_work || !stop) do
      Sim.Engine.sleep interval;
      t.s.poll_rounds <- t.s.poll_rounds + 1;
      if not (Fifo.is_active q.in_fifo && Fifo.is_active q.out_fifo) then
        (* Never poll across a teardown: the disengage path must run. *)
        stop := true
      else if
        (not (Fifo.is_empty q.in_fifo))
        ||
        match tx_backlog_head_len q with
        | Some len -> queue_can_accept q len
        | None -> false
      then got_work := true
      else if Sim.Time.(Sim.Engine.now (engine t) >= deadline) then stop := true
    done;
    !got_work
  end

(* ------------------------------------------------------------------ *)
(* Busy-poll receive mode (DPDK-style run-to-completion) *)

let channel_current t peer_domid ch =
  match Hashtbl.find_opt t.peers peer_domid with
  | Some (Active ch') -> ch' == ch
  | Some (Bootstrapping _ | Failed_until _) | None -> false

(* One pinned poller fiber per queue, started when the channel connects:
   it publishes consumer-active permanently (so the peer's sends are
   doorbell-free from the first packet) and spins run-to-completion on the
   descriptor rings.  An idle queue eases off in three phases —
   spin (hot loop) → pause (PAUSE-instruction analogue) → sleep — each a
   re-check granularity far below [evtchn_delivery], which is where the
   rr latency win comes from.  Idle iterations advance only this fiber's
   virtual time, not the shared CPU resource: the model is a core pinned
   to the poller, burning cycles nobody else wanted (DESIGN.md §11). *)
let start_poller t peer_domid ch q =
  Sim.Engine.spawn (engine t) (fun () ->
      let p = params t in
      (try Fifo.set_consumer_active q.in_fifo true with Invalid_argument _ -> ());
      let idle = ref 0 in
      let running = ref true in
      while !running do
        if not (t.loaded && channel_current t peer_domid ch) then
          (* Unloaded, migrated, or the channel was replaced/torn down
             while we slept; never touch pages that may be reclaimed. *)
          running := false
        else if not (Fifo.is_active q.in_fifo && Fifo.is_active q.out_fifo) then begin
          (* Peer-initiated teardown: with event handlers disengaged, the
             poller is the one who notices and runs the disengage. *)
          running := false;
          handle_peer_teardown t peer_domid ch
        end
        else begin
          match
            let consumed = drain_incoming t q in
            let pushed = drain_waiting t q in
            consumed + pushed
          with
          | exception Corrupt_channel ->
              running := false;
              if channel_current t peer_domid ch then quarantine t peer_domid ch
          | 0 ->
              incr idle;
              t.s.poll_rounds <- t.s.poll_rounds + 1;
              let span =
                if !idle <= p.Params.xenloop_poll_spin_iters then
                  p.Params.xenloop_poll_spin
                else if
                  !idle
                  <= p.Params.xenloop_poll_spin_iters
                     + p.Params.xenloop_poll_pause_iters
                then p.Params.xenloop_poll_pause
                else p.Params.xenloop_poll_sleep
              in
              Sim.Engine.sleep span
          | _ -> idle := 0
        end
      done)

let maybe_start_pollers t peer_domid ch =
  if (params t).Params.xenloop_poll_mode then
    Array.iter (fun q -> start_poller t peer_domid ch q) ch.queues

let on_event t peer_domid qi () =
  (* In busy-poll mode the pollers own the receive path: the doorbell
     handler stands down entirely (notifies are suppressed anyway, but
     bootstrap-era stragglers must not interleave with a poller's drain). *)
  if t.loaded && not (params t).Params.xenloop_poll_mode then begin
    match Hashtbl.find_opt t.peers peer_domid with
    | Some (Active ch) when qi < Array.length ch.queues -> (
        let q = ch.queues.(qi) in
        if not q.q_busy then begin
          if not (Fifo.is_active q.in_fifo && Fifo.is_active q.out_fifo) then
            handle_peer_teardown t peer_domid ch
          else begin
            q.q_busy <- true;
            let suppressing = (params t).Params.xenloop_notify_suppression in
            match
              let total_consumed = ref 0 and total_pushed = ref 0 in
              if suppressing then Fifo.set_consumer_active q.in_fifo true;
              let serving = ref true in
              while !serving do
                let consumed = drain_incoming t q in
                let pushed = drain_waiting t q in
                total_consumed := !total_consumed + consumed;
                total_pushed := !total_pushed + pushed;
                if suppressing then begin
                  (* Signal per round, not once at handler exit: the peer
                     must refill (or drain) {e while} we are still serving,
                     or the two endpoints alternate in lockstep, one
                     FIFO-full at a time.  Once the peer is inside its own
                     handler its consumer-active flag makes these notifies
                     free. *)
                  if
                    pushed > 0
                    || (consumed > 0 && Fifo.producer_waiting q.in_fifo)
                  then notify_peer t q;
                  if consumed = 0 && pushed = 0 then
                    serving := poll_for_more t q
                end
                else if consumed = 0 && pushed = 0 then serving := false
              done;
              let final_consumed = ref 0 and final_pushed = ref 0 in
              if suppressing then begin
                Fifo.set_consumer_active q.in_fifo false;
                (* Close the suppression race: a push that saw the flag
                   still set stayed silent, so look one last time after
                   clearing. *)
                let consumed, pushed = drain_round t q in
                final_consumed := consumed;
                final_pushed := pushed;
                total_consumed := !total_consumed + consumed;
                total_pushed := !total_pushed + pushed
              end;
              (!total_consumed, !total_pushed, !final_consumed, !final_pushed)
            with
            | exception Corrupt_channel ->
                (try Fifo.set_consumer_active q.in_fifo false
                 with Invalid_argument _ -> ());
                q.q_busy <- false;
                quarantine t peer_domid ch
            | total_consumed, total_pushed, final_consumed, final_pushed ->
                q.q_busy <- false;
                if total_consumed > 0 || total_pushed > 0 then
                  ch.ch_last_active <- Sim.Engine.now (engine t);
                if not (Fifo.is_active q.in_fifo && Fifo.is_active q.out_fifo)
                then
                  (* The peer tore the channel down while we were busy; its
                     notify was swallowed by the busy guard, so disengage
                     now. *)
                  handle_peer_teardown t peer_domid ch
                else if suppressing then begin
                  (* In-loop rounds already signalled; only the race-closing
                     final drain still needs its notification. *)
                  if
                    final_pushed > 0
                    || (final_consumed > 0 && Fifo.producer_waiting q.in_fifo)
                  then notify_peer t q
                end
                else if total_consumed > 0 || total_pushed > 0 then
                  (* Per-packet-notification baseline: exactly the seed
                     behaviour, one coalesced doorbell at handler exit. *)
                  notify_peer t q
          end
        end)
    | Some (Active _) | Some (Bootstrapping _) | Some (Failed_until _) | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Bootstrap: listener side *)

let grant_fifo_pages ~gt ~peer ~desc ~data =
  let desc_gref = Gt.grant_access gt ~to_dom:peer ~page:desc ~writable:true in
  let data_grefs =
    Array.to_list
      (Array.map (fun page -> Gt.grant_access gt ~to_dom:peer ~page ~writable:true) data)
  in
  Fifo.write_grefs ~desc data_grefs;
  (* Pair every gref with its page so teardown can release pages
     one-by-one as their grants become endable. *)
  (desc_gref, (desc_gref, desc) :: List.combine data_grefs (Array.to_list data))

let send_ctrl t ~dst_mac msg =
  let deliver () = Stack.send_ctrl t.stack ~dst_mac (Proto.encode msg) in
  match t.ctrl_fault with
  | None -> deliver ()
  | Some f -> (
      match f msg with
      | Ctrl_pass -> deliver ()
      | Ctrl_drop -> ()
      | Ctrl_dup ->
          deliver ();
          deliver ()
      | Ctrl_delay d -> Sim.Engine.after (engine t) d deliver)

(* Retry exhaustion: the peer never answered, so stop — but leave a
   tombstone with a deadline instead of nothing.  Without the cooldown
   every packet classified towards the peer immediately restarts the
   bootstrap, and a dead or deaf peer turns the fast path into a retry
   storm of Create_channel grants and frame allocations. *)
let mark_bootstrap_failed t peer_domid =
  let deadline =
    Sim.Time.add
      (Sim.Engine.now (engine t))
      (params t).Params.xenloop_bootstrap_cooldown
  in
  Hashtbl.replace t.peers peer_domid (Failed_until deadline);
  t.s.bootstrap_failures <- t.s.bootstrap_failures + 1;
  bump_epoch t;
  trace t Sim.Trace.Bootstrap "dom%d: bootstrap to dom%d failed; cooling down"
    (my_domid t) peer_domid

let rec send_create_with_retry t ~peer_domid ~peer_mac ~msg ba =
  send_ctrl t ~dst_mac:peer_mac msg;
  Sim.Engine.after (engine t) ack_timeout (fun () ->
      match Hashtbl.find_opt t.peers peer_domid with
      | Some (Bootstrapping (Awaiting_ack ba')) when ba' == ba ->
          if ba.retries < max_create_retries then begin
            ba.retries <- ba.retries + 1;
            send_create_with_retry t ~peer_domid ~peer_mac ~msg ba
          end
          else begin
            (* Give up (paper: resend 3 times).  Poison the offered queues
               before releasing anything: a connector that mapped the
               grants and whose ack is still in flight must find the FIFOs
               inactive and disengage, not keep feeding a channel whose
               listener end no longer exists. *)
            Array.iter
              (fun q ->
                Fifo.mark_inactive q.out_fifo;
                Fifo.mark_inactive q.in_fifo;
                try notify_peer ~force:true t q with Invalid_argument _ -> ())
              ba.ba_channel.queues;
            ba.ba_channel.cleanup ();
            mark_bootstrap_failed t peer_domid
          end
      | _ -> ())

(* Grants the connector still has mapped when the listener tears down
   ([Still_mapped]) cannot be ended yet, and their pages must NOT go back
   to the free pool — a live peer can still write through the mapping.
   They stay owned and granted until the peer's own disengage unmaps them
   (or the hypervisor revokes a dead peer's mappings), and a short timer
   reaps them: end the grant, then release the page. *)
let reap_period = Sim.Time.of_us_f 100.0

let reap_grants t ~machine ~domid ~gt pending =
  let frames = Machine.frame_allocator machine in
  let rec reap pending () =
    match Machine.grant_table machine domid with
    | Some gt' when gt' == gt ->
        let left =
          List.filter_map
            (fun (gref, page) ->
              match Gt.end_access gt gref with
              | Ok () ->
                  Memory.Frame_allocator.release frames ~owner:domid page;
                  None
              | Error _ -> Some (gref, page))
            pending
        in
        if left <> [] then Sim.Engine.after (engine t) reap_period (reap left)
    | Some _ | None ->
        (* The domain is gone (migration or death): the hypervisor already
           reclaimed its frames and dropped its grant table. *)
        ()
  in
  Sim.Engine.after (engine t) reap_period (reap pending)

let listener_create t ~peer_domid ~peer_mac ~peer_queues ~peer_zc ~peer_loans
    ~peer_gso =
  let machine = t.current_machine () in
  let domid = my_domid t in
  let p = params t in
  if not (bootstrap_allowed t) then ()
  else begin
  make_room_under_cap t ~peer_domid;
  match Machine.grant_table machine domid with
  | None -> ()
  | Some gt -> (
      (* The negotiated count: the min of what both sides advertise, so a
         single-queue peer gets exactly the paper's one FIFO pair. *)
      let nq = max 1 (min t.max_queues peer_queues) in
      (* Zero-copy needs both ends willing; a misconfigured pool geometry
         quietly downgrades the channel to the inline path rather than
         failing the bootstrap. *)
      let slots = p.Params.xenloop_pool_slots in
      let slot_pages = p.Params.xenloop_pool_slot_pages in
      let use_pools =
        t.zerocopy && peer_zc && Payload_pool.geometry_valid ~slots ~slot_pages
      in
      let inline_max = max 0 p.Params.xenloop_inline_max in
      (* Loan credit rides the pool control page (DESIGN.md §11): stamped
         only when both sides advertise loans on top of an actual pooled
         channel, zero otherwise — which version-gates the whole loan
         machinery off bit-for-bit. *)
      let max_loans =
        if use_pools && t.loans && peer_loans then
          max 0 p.Params.xenloop_max_loans
        else 0
      in
      (* The jumbo ceiling rides the pool control page the same way
         (DESIGN.md §15): stamped only when both sides advertise gso on a
         pooled channel, zero otherwise — gso-off channels never see a
         jumbo descriptor and stay bit-for-bit legacy. *)
      let gso_max =
        if use_pools && t.gso && peer_gso then max 0 p.Params.xenloop_gso_max
        else 0
      in
      let fifo_pages = Fifo.pages_for_queues ~k:t.k ~queues:nq in
      let pool_pages_each =
        if use_pools then Payload_pool.pages_for ~slots ~slot_pages else 0
      in
      let frames = Machine.frame_allocator machine in
      (* Channel memory is real machine memory, charged to the listener;
         one atomic grab covers every queue's descriptor, data, and
         payload-pool pages, so a channel never comes up with some queues
         memory-less or descriptor-capable in one direction only. *)
      match
        Memory.Frame_allocator.allocate_many frames ~owner:domid
          ~count:(fifo_pages + (nq * 2 * pool_pages_each))
      with
      | Error Memory.Frame_allocator.Out_of_frames -> ()
      | Ok pool ->
          let ec = Machine.evtchn machine in
          let all_grefs = ref [] in
          let all_ports = ref [] in
          let build_pool ~qi ~dir =
            (* Pool pages sit after the FIFO stripes: [lc | cl] per queue,
               in queue order. *)
            let base = fifo_pages + (((qi * 2) + dir) * pool_pages_each) in
            let ctrl = pool.(base) in
            let data = Array.sub pool (base + 1) (slots * slot_pages) in
            let pp =
              Payload_pool.init ~max_loans ~gso_max ~ctrl ~data ~slots
                ~slot_pages ~inline_max ()
            in
            let ctrl_gref =
              Gt.grant_access gt ~to_dom:peer_domid ~page:ctrl ~writable:true
            in
            let data_grefs =
              Array.map
                (fun page ->
                  Gt.grant_access gt ~to_dom:peer_domid ~page ~writable:true)
                data
            in
            Payload_pool.write_grefs pp data_grefs;
            all_grefs :=
              ((ctrl_gref, ctrl)
              :: List.combine (Array.to_list data_grefs) (Array.to_list data))
              @ !all_grefs;
            (pp, ctrl_gref)
          in
          let make_queue qi =
            let qp = Fifo.carve_queue ~pool ~k:t.k ~index:qi in
            Fifo.init ~desc:qp.Fifo.qp_desc_lc ~data:qp.Fifo.qp_data_lc ~k:t.k;
            Fifo.init ~desc:qp.Fifo.qp_desc_cl ~data:qp.Fifo.qp_data_cl ~k:t.k;
            let lc_gref, lc_pairs =
              grant_fifo_pages ~gt ~peer:peer_domid ~desc:qp.Fifo.qp_desc_lc
                ~data:qp.Fifo.qp_data_lc
            in
            let cl_gref, cl_pairs =
              grant_fifo_pages ~gt ~peer:peer_domid ~desc:qp.Fifo.qp_desc_cl
                ~data:qp.Fifo.qp_data_cl
            in
            all_grefs := (lc_pairs @ cl_pairs) @ !all_grefs;
            let pools =
              if use_pools then
                Some (build_pool ~qi ~dir:0, build_pool ~qi ~dir:1)
              else None
            in
            let port = Ec.alloc_unbound ec ~dom:domid ~remote:peer_domid in
            Ec.set_handler ec ~dom:domid ~port (on_event t peer_domid qi);
            all_ports := port :: !all_ports;
            let q =
              {
                q_index = qi;
                out_fifo = Fifo.attach ~desc:qp.Fifo.qp_desc_lc ~data:qp.Fifo.qp_data_lc;
                in_fifo = Fifo.attach ~desc:qp.Fifo.qp_desc_cl ~data:qp.Fifo.qp_data_cl;
                q_port = port;
                waiting = Queue.create ();
                q_sched = make_queue_sched t;
                q_tx_pool =
                  (match pools with Some ((lc, _), _) -> Some lc | None -> None);
                q_rx_pool =
                  (match pools with Some (_, (cl, _)) -> Some cl | None -> None);
                q_inline_max = inline_max;
                q_busy = false;
                q_tx_draining = false;
                q_notifies_sent = 0;
                q_notifies_suppressed = 0;
                q_steered = 0;
                q_desc_tx = 0;
                q_inline_tx = 0;
                q_pool_fallbacks = 0;
                q_max_loans = max_loans;
                q_gso_max = gso_max;
                q_loan_tx = 0;
                q_loan_rx = 0;
                q_loan_returns = 0;
                q_loan_credit_stalls = 0;
              }
            in
            (match q.q_tx_pool with
            | Some pool -> Payload_pool.set_alloc_fault pool t.pool_fault
            | None -> ());
            let qg_lc_pool, qg_cl_pool =
              match pools with
              | Some ((_, lc_gref), (_, cl_gref)) -> (Some lc_gref, Some cl_gref)
              | None -> (None, None)
            in
            ( q,
              {
                Proto.qg_lc_gref = lc_gref;
                qg_cl_gref = cl_gref;
                qg_port = port;
                qg_lc_pool;
                qg_cl_pool;
              } )
          in
          let built = Array.init nq make_queue in
          let queues = Array.map fst built in
          let grants = Array.to_list (Array.map snd built) in
          let grefs = !all_grefs and ports = !all_ports in
          let cleanup () =
            (* The connector may still hold mappings when teardown runs
               (its unmap rides the teardown notification, a few event
               latencies away), so a page is only returned to the free
               pool once its grant actually ends; the rest are parked
               with the reaper. *)
            let pending =
              List.filter_map
                (fun (gref, page) ->
                  match Gt.end_access gt gref with
                  | Ok () ->
                      Memory.Frame_allocator.release frames ~owner:domid page;
                      None
                  | Error _ -> Some (gref, page))
                grefs
            in
            if pending <> [] then reap_grants t ~machine ~domid ~gt pending;
            List.iter (fun port -> Ec.close ec ~dom:domid ~port) ports
          in
          let ch =
            {
              peer_domid;
              peer_mac;
              role = Listener;
              queues;
              connected = false;
              ch_last_active = Sim.Engine.now (engine t);
              cleanup;
            }
          in
          let ba = { ba_channel = ch; retries = 0 } in
          Hashtbl.replace t.peers peer_domid (Bootstrapping (Awaiting_ack ba));
          t.s.bootstraps_started <- t.s.bootstraps_started + 1;
          trace t Sim.Trace.Bootstrap "dom%d: offering %d queue(s) to dom%d"
            domid nq peer_domid;
          let msg = Proto.Create_channel { listener_domid = domid; queues = grants } in
          send_create_with_retry t ~peer_domid ~peer_mac ~msg ba)
  end

let start_bootstrap t ~peer_domid ~peer_mac =
  trace t Sim.Trace.Bootstrap "dom%d: bootstrap towards dom%d" (my_domid t) peer_domid;
  if my_domid t < peer_domid then begin
    (* The listener learns the peer's advertised queue count and zero-copy
       capability from the announcement entry that put the peer in the
       mapping table; an entry without them (or a pre-multi-queue peer)
       advertises one queue, no pools. *)
    let peer_queues, peer_zc, peer_loans, peer_gso =
      match Mapping_table.find_domid t.mapping peer_domid with
      | Some e ->
          ( e.Proto.entry_queues,
            e.Proto.entry_zc,
            e.Proto.entry_loans,
            e.Proto.entry_gso )
      | None -> (1, false, false, false)
    in
    listener_create t ~peer_domid ~peer_mac ~peer_queues ~peer_zc ~peer_loans
      ~peer_gso
  end
  else if not (bootstrap_allowed t) then ()
  else begin
    make_room_under_cap t ~peer_domid;
    let token = t.next_token in
    t.next_token <- token + 1;
    Hashtbl.replace t.peers peer_domid
      (Bootstrapping (Requested_from_listener token));
    t.s.bootstraps_started <- t.s.bootstraps_started + 1;
    send_ctrl t ~dst_mac:peer_mac
      (Proto.Request_channel
         {
           requester_domid = my_domid t;
           max_queues = t.max_queues;
           zerocopy = t.zerocopy;
           loans = t.loans;
           gso = t.gso;
         });
    (* The requester has no retry loop of its own — the listener drives the
       Create/Ack exchange — so bound the wait symmetrically: if nothing
       arrived within the listener's whole retry budget, the request (or
       every Create) was lost, and the peer goes into cooldown. *)
    Sim.Engine.after (engine t)
      (Sim.Time.span_scale (max_create_retries + 2) ack_timeout)
      (fun () ->
        match Hashtbl.find_opt t.peers peer_domid with
        | Some (Bootstrapping (Requested_from_listener tk)) when tk = token ->
            mark_bootstrap_failed t peer_domid
        | _ -> ())
  end

(* ------------------------------------------------------------------ *)
(* Bootstrap: connector side *)

let connector_accept t ~listener_domid ~listener_mac ~queue_grants =
  let machine = t.current_machine () in
  let domid = my_domid t in
  let p = params t in
  make_room_under_cap t ~peer_domid:listener_domid;
  match Machine.grant_table machine listener_domid with
  | None -> ()
  | Some listener_gt -> (
      let ec = Machine.evtchn machine in
      (* All queues map, or none do: on any failure every page mapped and
         every port bound so far is rolled back, leaving no half-attached
         channel behind. *)
      let mapped = ref [] in
      let bound = ref [] in
      let unmap_all grefs =
        List.iter
          (fun gref -> ignore (Gt.unmap listener_gt gref ~by:domid ~meter:(meter t)))
          grefs
      in
      let map_page gref =
        Sim.Resource.use (cpu t) p.Params.page_map;
        match Gt.map listener_gt gref ~by:domid ~meter:(meter t) with
        | Ok page ->
            mapped := gref :: !mapped;
            Some page
        | Error _ -> None
      in
      let map_fifo desc_gref =
        match map_page desc_gref with
        | None -> None
        | Some desc -> (
            let data_grefs = Fifo.read_grefs ~desc in
            let data = List.filter_map map_page data_grefs in
            if List.length data <> List.length data_grefs then None
            else
              match Fifo.attach ~desc ~data:(Array.of_list data) with
              | fifo -> Some fifo
              | exception Invalid_argument _ -> None)
      in
      (* Mapping a payload pool is the amortization the descriptor path is
         built on: every page — control and data — is mapped here, once,
         at connect time ([page_map] charged per page, the map hypercalls
         metered as per-connect costs), so pushing a descriptor later
         costs no mapping at all. *)
      let map_payload_pool ctrl_gref =
        match map_page ctrl_gref with
        | None -> None
        | Some ctrl -> (
            match Payload_pool.read_grefs ~ctrl with
            | exception Invalid_argument _ -> None
            | data_grefs -> (
                let data = Array.map map_page data_grefs in
                if Array.exists Option.is_none data then None
                else
                  match
                    Payload_pool.attach ~ctrl
                      ~data:(Array.map Option.get data)
                  with
                  | pp -> Some pp
                  | exception Invalid_argument _ -> None))
      in
      let inline_max = max 0 p.Params.xenloop_inline_max in
      let rec build qi acc = function
        | [] -> Some (List.rev acc)
        | qg :: rest -> (
            match (map_fifo qg.Proto.qg_lc_gref, map_fifo qg.Proto.qg_cl_gref) with
            | Some lc_fifo, Some cl_fifo -> (
                let pools =
                  match (qg.Proto.qg_lc_pool, qg.Proto.qg_cl_pool) with
                  | None, None -> `No_pools
                  | Some lc, Some cl -> (
                      match (map_payload_pool lc, map_payload_pool cl) with
                      | Some lp, Some cp -> `Pools (lp, cp)
                      | _ -> `Failed)
                  | _ -> `Failed
                in
                match pools with
                | `Failed -> None
                | (`No_pools | `Pools _) as pools -> (
                    match
                      Ec.bind_interdomain ec ~dom:domid ~remote:listener_domid
                        ~remote_port:qg.Proto.qg_port
                    with
                    | Error _ -> None
                    | Ok port ->
                        bound := port :: !bound;
                        Ec.set_handler ec ~dom:domid ~port
                          (on_event t listener_domid qi);
                        (* The connector transmits on the cl direction, so
                           its tx pool is the cl pool; the threshold is the
                           conservative max of both sides' settings (the
                           listener's rides in the pool control page). *)
                        let q_tx_pool, q_rx_pool, q_inline_max =
                          match pools with
                          | `No_pools -> (None, None, inline_max)
                          | `Pools (lp, cp) ->
                              ( Some cp,
                                Some lp,
                                max inline_max (Payload_pool.inline_threshold cp) )
                        in
                        (* The listener stamps the negotiated loan credit
                           into the pool control page; a stamp of zero (or
                           this side opting out) disables loans for the
                           queue on both ends. *)
                        let q_max_loans =
                          match pools with
                          | `No_pools -> 0
                          | `Pools (lp, _) ->
                              let stamp = Payload_pool.max_loans_stamp lp in
                              if t.loans && stamp > 0 then
                                min (max 0 p.Params.xenloop_max_loans) stamp
                              else 0
                        in
                        (* Same negotiation for the jumbo ceiling: each
                           side uses the min of its own configured limit
                           and the listener's stamp. *)
                        let q_gso_max =
                          match pools with
                          | `No_pools -> 0
                          | `Pools (lp, _) ->
                              let stamp = Payload_pool.gso_stamp lp in
                              if t.gso && stamp > 0 then
                                min (max 0 p.Params.xenloop_gso_max) stamp
                              else 0
                        in
                        let q =
                          {
                            q_index = qi;
                            out_fifo = cl_fifo;
                            in_fifo = lc_fifo;
                            q_port = port;
                            waiting = Queue.create ();
                            q_sched = make_queue_sched t;
                            q_tx_pool;
                            q_rx_pool;
                            q_inline_max;
                            q_busy = false;
                            q_tx_draining = false;
                            q_notifies_sent = 0;
                            q_notifies_suppressed = 0;
                            q_steered = 0;
                            q_desc_tx = 0;
                            q_inline_tx = 0;
                            q_pool_fallbacks = 0;
                            q_max_loans;
                            q_gso_max;
                            q_loan_tx = 0;
                            q_loan_rx = 0;
                            q_loan_returns = 0;
                            q_loan_credit_stalls = 0;
                          }
                        in
                        (match q.q_tx_pool with
                        | Some pool ->
                            Payload_pool.set_alloc_fault pool t.pool_fault
                        | None -> ());
                        build (qi + 1) (q :: acc) rest))
            | _ -> None)
      in
      match build 0 [] queue_grants with
      | None ->
          unmap_all !mapped;
          List.iter (fun port -> Ec.close ec ~dom:domid ~port) !bound
      | Some queues ->
          let queues = Array.of_list queues in
          let mapped_grefs = !mapped and bound_ports = !bound in
          let cleanup () =
            unmap_all mapped_grefs;
            List.iter (fun port -> Ec.close ec ~dom:domid ~port) bound_ports
          in
          let ch =
            {
              peer_domid = listener_domid;
              peer_mac = listener_mac;
              role = Connector;
              queues;
              connected = true;
              ch_last_active = Sim.Engine.now (engine t);
              cleanup;
            }
          in
          Hashtbl.replace t.peers listener_domid (Active ch);
          bump_epoch t;
          t.s.channels_established <- t.s.channels_established + 1;
          trace t Sim.Trace.Channel
            "dom%d: channel to dom%d connected (connector, %d queue(s))" domid
            listener_domid (Array.length queues);
          send_ctrl t ~dst_mac:listener_mac
            (Proto.Channel_ack { connector_domid = domid });
          maybe_start_pollers t listener_domid ch;
          (* Anything already in the FIFOs must not wait for another
             notification that may never come (in poll mode the pollers
             just spawned cover this). *)
          if not p.Params.xenloop_poll_mode then
            Array.iteri (fun qi _ -> on_event t listener_domid qi ()) queues)

(* ------------------------------------------------------------------ *)
(* Control-plane input *)

let on_announce t entries =
  let domid = my_domid t in
  t.last_announce <- Sim.Engine.now (engine t);
  let others = List.filter (fun e -> e.Proto.entry_domid <> domid) entries in
  Mapping_table.update t.mapping others;
  (* Soft-state replacement invalidates every memoized flow decision. *)
  bump_epoch t;
  (* Soft state: peers absent from the announcement are gone. *)
  let stale =
    Hashtbl.fold
      (fun id _ acc -> if Mapping_table.mem_domid t.mapping id then acc else id :: acc)
      t.peers []
  in
  List.iter (fun id -> disengage_peer t id ~save:false) stale

(* Soft-state TTL (paper Sect. 3.5: state refreshed by the periodic
   announcements, never explicitly invalidated).  A guest that has heard
   nothing for [xenloop_softstate_ttl] — Dom0 died, announcements lost, the
   bridge wedged — must not keep steering into channels whose peers may be
   long gone: evict the whole table exactly as an empty announcement
   would. *)
let softstate_expire t =
  if t.loaded then begin
    let ttl = (params t).Params.xenloop_softstate_ttl in
    if
      Sim.Time.span_is_positive ttl
      && Mapping_table.size t.mapping > 0
      && Sim.Time.(Sim.Engine.now (engine t) >= Sim.Time.add t.last_announce ttl)
    then begin
      let evicted = Mapping_table.size t.mapping in
      t.s.softstate_evictions <- t.s.softstate_evictions + evicted;
      trace t Sim.Trace.Teardown
        "dom%d: soft-state TTL expired; evicting %d mapping entr%s" (my_domid t)
        evicted
        (if evicted = 1 then "y" else "ies");
      on_announce t [];
      (* We just threw the whole table away: under delta announcements our
         acked epoch must go back to zero, or Dom0 would keep treating us
         as up to date and never resend what we dropped. *)
      write_ack t 0
    end
  end

let on_ctrl_packet t (packet : P.t) =
  if t.loaded then begin
    match packet.P.body with
    | P.Xenloop_body data -> (
        match Proto.decode data with
        | Error _ -> ()
        | Ok (Proto.Announce entries) -> on_announce t entries
        | Ok (Proto.Delta_announce { da_base; da_epoch; da_full; da_joins; da_leaves })
          ->
            t.s.delta_announces <- t.s.delta_announces + 1;
            if da_full then begin
              (* Resync: our acked base fell out of Dom0's delta log (or we
                 just advertised) — the joins are the complete list, so this
                 is exactly a classic announcement plus an ack. *)
              on_announce t da_joins;
              write_ack t da_epoch
            end
            else if da_base = t.announce_epoch then begin
              (* In-order delta: even an empty one is the keep-alive
                 heartbeat that refreshes the soft-state TTL. *)
              t.last_announce <- Sim.Engine.now (engine t);
              if da_joins <> [] || da_leaves <> [] then begin
                let domid = my_domid t in
                let joins =
                  List.filter (fun e -> e.Proto.entry_domid <> domid) da_joins
                in
                Mapping_table.apply_delta t.mapping ~joins ~leaves:da_leaves;
                bump_epoch t;
                (* Soft state under deltas: leaves are the explicit
                   departures, so disengage exactly those (a rejoined guest
                   never appears in the aggregated leaves). *)
                List.iter
                  (fun id ->
                    if not (Mapping_table.mem_domid t.mapping id) then
                      disengage_peer t id ~save:false)
                  da_leaves
              end;
              write_ack t da_epoch
            end
            (* A delta against a base we do not hold is dropped whole —
               applying it could strand a guest that joined and left inside
               the gap.  No ack update either: Dom0 rereads our real acked
               epoch next scan and resends from the right base (or a full
               resync). *)
        | Ok
            (Proto.Request_channel
               { requester_domid; max_queues; zerocopy; loans; gso })
          -> (
            match Hashtbl.find_opt t.peers requester_domid with
            | Some (Failed_until _) ->
                (* The peer speaks — it is alive after all; drop the
                   cooldown and serve the request. *)
                Hashtbl.remove t.peers requester_domid;
                if my_domid t < requester_domid then
                  listener_create t ~peer_domid:requester_domid
                    ~peer_mac:packet.P.src_mac ~peer_queues:max_queues
                    ~peer_zc:zerocopy ~peer_loans:loans ~peer_gso:gso
            | Some _ -> ()
            | None ->
                if my_domid t < requester_domid then
                  listener_create t ~peer_domid:requester_domid
                    ~peer_mac:packet.P.src_mac ~peer_queues:max_queues
                    ~peer_zc:zerocopy ~peer_loans:loans ~peer_gso:gso)
        | Ok (Proto.Create_channel { listener_domid; queues }) -> (
            match Hashtbl.find_opt t.peers listener_domid with
            | Some (Active ch)
              when ch.role = Connector
                   && Array.for_all
                        (fun q ->
                          Fifo.is_active q.out_fifo && Fifo.is_active q.in_fifo)
                        ch.queues ->
                (* Duplicate create (our ack was in flight): re-ack. *)
                send_ctrl t ~dst_mac:packet.P.src_mac
                  (Proto.Channel_ack { connector_domid = my_domid t })
            | Some (Active ch) when ch.role = Connector ->
                (* A fresh Create while our channel to this listener is
                   already poisoned: the listener gave up on the old
                   incarnation (our ack was too late) and is starting over.
                   Disengage the zombie — its pages are going or gone on
                   the listener side — and accept the new offer. *)
                disengage_peer t listener_domid ~save:false;
                connector_accept t ~listener_domid
                  ~listener_mac:packet.P.src_mac ~queue_grants:queues
            | Some (Active _) -> ()
            | Some (Bootstrapping (Requested_from_listener _))
            | Some (Failed_until _)
            | None ->
                connector_accept t ~listener_domid ~listener_mac:packet.P.src_mac
                  ~queue_grants:queues
            | Some (Bootstrapping (Awaiting_ack _)) ->
                (* Simultaneous creates cannot happen: roles are fixed by
                   domain-id order. *)
                ())
        | Ok (Proto.App_payload { src_ip; src_port; dst_port; payload }) -> (
            match t.app_handler with
            | Some handler -> handler ~src_ip ~src_port ~dst_port payload
            | None -> ())
        | Ok (Proto.Channel_ack { connector_domid }) -> (
            match Hashtbl.find_opt t.peers connector_domid with
            | Some (Bootstrapping (Awaiting_ack ba)) ->
                ba.ba_channel.connected <- true;
                Hashtbl.replace t.peers connector_domid (Active ba.ba_channel);
                bump_epoch t;
                t.s.channels_established <- t.s.channels_established + 1;
                trace t Sim.Trace.Channel
                  "dom%d: channel to dom%d connected (listener, %d queue(s))"
                  (my_domid t) connector_domid
                  (Array.length ba.ba_channel.queues);
                maybe_start_pollers t connector_domid ba.ba_channel;
                (* The connector may have pushed data before its ack reached
                   us; the matching notification was consumed while we were
                   still awaiting the ack, so drain every queue now (in poll
                   mode the pollers just spawned cover this). *)
                if not (params t).Params.xenloop_poll_mode then
                  Array.iteri
                    (fun qi _ -> on_event t connector_domid qi ())
                    ba.ba_channel.queues
            | Some _ | None -> ()))
    | P.Ipv4_body _ | P.Arp_body _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* The netfilter hook: the guest-specific software bridge *)

let frame_for_queue t q (packet : P.t) =
  (* Jumbo intent is decided before serializing ({!Packet.wire_length}
     sizes without building) so the transport-checksum compute can be
     elided over the whole super-frame — the jumbo descriptor carries
     [flag_csum_ok] and the trusted receiver skips verification
     (DESIGN.md §15).  If the push later degrades to a fallback path,
     {!transmit_standard} parses our own bytes without verifying and the
     device codec recomputes the checksum on re-serialization. *)
  let jumbo = jumbo_eligible q (P.wire_length packet) in
  let raw =
    if jumbo then begin
      t.s.csum_elided <- t.s.csum_elided + 1;
      Netcore.Codec.serialize ~csum:false packet
    end
    else Netcore.Codec.serialize packet
  in
  if (not jumbo) && Bytes.length raw > Fifo.max_packet q.out_fifo then begin
    t.s.too_big_fallback <- t.s.too_big_fallback + 1;
    `Standard_path
  end
  else begin
    q.q_steered <- q.q_steered + 1;
    t.s.steered_packets <- t.s.steered_packets + 1;
    `Channel (q, raw, packet)
  end

(* Slow path of the routing decision: mapping-table lookup plus steering
   hash, memoized in the flow cache under the current epoch. *)
let classify_slow t (packet : P.t) key =
  match Mapping_table.lookup t.mapping packet.P.dst_mac with
  | None ->
      (* Not co-resident (as of this epoch's announcements): remember the
         negative result too, so external flows skip the table lookup. *)
      Hashtbl.replace t.flow_cache key
        { ce_epoch = t.epoch; ce_decision = Cache_standard };
      `Standard_path
  | Some peer_domid -> (
      match Hashtbl.find_opt t.peers peer_domid with
      | Some (Active ch) when ch.connected ->
          let qi = Steering.queue_index key ~queues:(Array.length ch.queues) in
          let q = ch.queues.(qi) in
          Hashtbl.replace t.flow_cache key
            { ce_epoch = t.epoch; ce_decision = Cache_queue (ch, q) };
          ch.ch_last_active <- Sim.Engine.now (engine t);
          frame_for_queue t q packet
      | Some (Active _) | Some (Bootstrapping _) ->
          (* Bootstrap in progress: standard path (paper Sect. 3.3).  Not
             cached — the decision flips without an epoch bump the moment
             the channel connects. *)
          `Standard_path
      | Some (Failed_until deadline) ->
          (* Cooldown after retry exhaustion: standard path, no new
             bootstrap until the deadline passes.  Not cached, so the
             first packet after the deadline retries immediately. *)
          if Sim.Time.(Sim.Engine.now (engine t) >= deadline) then begin
            Hashtbl.remove t.peers peer_domid;
            start_bootstrap t ~peer_domid ~peer_mac:packet.P.dst_mac
          end;
          `Standard_path
      | None ->
          start_bootstrap t ~peer_domid ~peer_mac:packet.P.dst_mac;
          `Standard_path)

(* Per-packet routing decision: steal onto one queue of a connected
   channel, or let the packet take the standard netfront path (kicking off
   a bootstrap on first co-resident traffic).  The flow cache memoizes the
   (mapping lookup, steering hash) pair per flow; any event that could
   change a decision bumps the epoch and thereby invalidates the cache
   wholesale. *)
let classify t (packet : P.t) =
  match packet.P.body with
  | P.Arp_body _ | P.Xenloop_body _ -> `Standard_path
  | P.Ipv4_body _ -> (
      let key = Steering.flow_key packet in
      match Hashtbl.find_opt t.flow_cache key with
      | Some { ce_epoch; ce_decision } when ce_epoch = t.epoch -> (
          match ce_decision with
          | Cache_standard ->
              t.s.flow_cache_hits <- t.s.flow_cache_hits + 1;
              `Standard_path
          | Cache_queue (ch, q)
            when ch.connected && Fifo.is_active q.out_fifo ->
              t.s.flow_cache_hits <- t.s.flow_cache_hits + 1;
              (* LRU timestamp: a plain field store of the engine's already
                 boxed clock — no allocation on the fast path. *)
              ch.ch_last_active <- Sim.Engine.now (engine t);
              frame_for_queue t q packet
          | Cache_queue _ ->
              (* The channel died since this was cached (the epoch bump and
                 this packet raced); recompute. *)
              t.s.flow_cache_misses <- t.s.flow_cache_misses + 1;
              Hashtbl.remove t.flow_cache key;
              classify_slow t packet key)
      | Some _ | None ->
          t.s.flow_cache_misses <- t.s.flow_cache_misses + 1;
          classify_slow t packet key)

(* The transmit hook sees whole bursts (all fragments of one datagram);
   consecutive steals steered to the same queue flush as one batch.
   Fragments of one datagram share a 3-tuple flow key, so a fragmented
   datagram is always one batch on one queue. *)
let hook_fn t (packets : P.t list) =
  if not t.loaded then List.map (fun _ -> Netstack.Netfilter.Accept) packets
  else begin
    let decisions = List.map (classify t) packets in
    let flush group =
      match List.rev group with
      | [] -> ()
      | (q, _, _) :: _ as frames -> (
          (* QoS mode keys each frame by its accounting flow (5-tuple for
             unfragmented UDP, so concurrent sockets are distinct flows)
             and admits the burst through the DRR scheduler; legacy mode
             is the FIFO-order batch path, untouched. *)
          match (t.qos, q.q_sched) with
          | Some qs, Some sched ->
              qos_send_batch t qs q sched
                (List.map
                   (fun (_, raw, pkt) -> (Steering.qos_flow_key pkt, raw))
                   frames)
          | _ -> send_batch t q (List.map (fun (_, raw, _) -> raw) frames))
    in
    let pending =
      List.fold_left
        (fun pending decision ->
          match (decision, pending) with
          | `Standard_path, pending ->
              flush pending;
              []
          | `Channel (q, raw, pkt), ((q', _, _) :: _ as pending) when q == q' ->
              (q, raw, pkt) :: pending
          | `Channel (q, raw, pkt), pending ->
              flush pending;
              [ (q, raw, pkt) ])
        [] decisions
    in
    flush pending;
    List.map
      (function
        | `Channel _ -> Netstack.Netfilter.Steal
        | `Standard_path -> Netstack.Netfilter.Accept)
      decisions
  end

(* ------------------------------------------------------------------ *)
(* Transport-level shortcut (paper Sect. 6 future work) *)

let set_app_payload_handler t handler = t.app_handler <- Some handler
let set_app_view_handler t handler = t.app_view_handler <- Some handler

let send_app_payload t ~dst_ip ~src_port ~dst_port payload =
  if not t.loaded then false
  else
    match Mapping_table.lookup_by_ip t.mapping dst_ip with
    | None -> false
    | Some entry -> (
        let peer_domid = entry.Proto.entry_domid in
        match Hashtbl.find_opt t.peers peer_domid with
        | Some (Active ch) when ch.connected ->
            ch.ch_last_active <- Sim.Engine.now (engine t);
            (* Shortcut payloads steer like hook traffic: UDP-flavoured
               5-tuple, so distinct port pairs spread across queues. *)
            let key =
              Steering.ip_flow ~proto:17 ~src:(Stack.ip_addr t.stack) ~dst:dst_ip
                ~sport:src_port ~dport:dst_port
            in
            let qi = Steering.queue_index key ~queues:(Array.length ch.queues) in
            let q = ch.queues.(qi) in
            (* App-descriptor fast path (DESIGN.md §11): on a
               loan-negotiated queue the datagram is written once into a
               pool slot behind the 8-byte app header and the FIFO carries
               only a two-slot descriptor the receiver's socket layer
               borrows in place — no Proto encode, no inline copy, no
               copy-out.  Ordering demands an empty waiting list; any
               refusal falls through to the ctrl-frame path unchanged. *)
            let app_desc_sent =
              q.q_max_loans > 0
              && tx_backlog_empty q
              &&
              match q.q_tx_pool with
              | None -> false
              | Some pool -> (
                  let total = Bytes.length payload + 8 in
                  if
                    total <= q.q_inline_max
                    || total > Payload_pool.slot_bytes pool
                    || total > Fifo.max_packet q.out_fifo
                  then false
                  else
                    match Payload_pool.alloc_slot pool with
                    | -1 -> false
                    | slot ->
                        let buf = Bytes.create total in
                        Bytes.set_int32_be buf 0
                          (Netcore.Ip.to_int32 (Stack.ip_addr t.stack));
                        Bytes.set_uint16_be buf 4 src_port;
                        Bytes.blit payload 0 buf 8 (Bytes.length payload);
                        Payload_pool.write pool ~slot ~src:buf ~len:total;
                        if
                          Fifo.try_push_desc q.out_fifo ~flags:Fifo.flag_app
                            ~slot ~offset:0 ~len:total ~proto_hint:dst_port ()
                        then begin
                          let p = params t in
                          Sim.Resource.use (cpu t) p.Params.xenloop_fifo_op;
                          q.q_steered <- q.q_steered + 1;
                          t.s.steered_packets <- t.s.steered_packets + 1;
                          q.q_desc_tx <- q.q_desc_tx + 1;
                          t.s.desc_tx <- t.s.desc_tx + 1;
                          q.q_loan_tx <- q.q_loan_tx + 1;
                          t.s.loan_tx <- t.s.loan_tx + 1;
                          t.s.via_channel_tx <- t.s.via_channel_tx + 1;
                          notify_peer t q;
                          true
                        end
                        else begin
                          Payload_pool.unalloc pool slot;
                          false
                        end)
            in
            if app_desc_sent then true
            else begin
              let msg =
                Proto.App_payload
                  {
                    src_ip = Stack.ip_addr t.stack;
                    src_port;
                    dst_port;
                    payload;
                  }
              in
              let frame =
                Netcore.Packet.xenloop_ctrl ~src_mac:(Stack.mac_addr t.stack)
                  ~dst_mac:entry.Proto.entry_mac (Proto.encode msg)
              in
              let raw = Netcore.Codec.serialize frame in
              if Bytes.length raw > Fifo.max_packet q.out_fifo then begin
                t.s.too_big_fallback <- t.s.too_big_fallback + 1;
                false
              end
              else begin
                q.q_steered <- q.q_steered + 1;
                t.s.steered_packets <- t.s.steered_packets + 1;
                (match (t.qos, q.q_sched) with
                | Some qs, Some sched -> qos_send_batch t qs q sched [ (key, raw) ]
                | _ -> send_via_channel t q raw);
                true
              end
            end
        | Some (Active _) | Some (Bootstrapping _) | Some (Failed_until _) ->
            false
        | None ->
            (* First co-resident traffic: kick off the bootstrap and let the
               caller use the standard path meanwhile. *)
            start_bootstrap t ~peer_domid ~peer_mac:entry.Proto.entry_mac;
            false)

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let prepare_migration t =
  trace t Sim.Trace.Migration "dom%d: pre-migrate (saving %d peers' channels)"
    (my_domid t) (Hashtbl.length t.peers);
  unadvertise t;
  teardown_all t ~save:true

let restore_after_migration t =
  trace t Sim.Trace.Migration "dom%d: restored; re-advertising, %d saved frame(s)"
    (my_domid t) (List.length t.saved_frames);
  advertise t;
  (* Resend packets saved from the waiting lists (paper Sect. 3.4).  Our
     own serialization; a reclaimed jumbo may carry an elided transport
     checksum (see {!transmit_standard}). *)
  (match Stack.device t.stack with
  | None -> ()
  | Some dev ->
      List.iter
        (fun raw ->
          match Netcore.Codec.parse ~verify_transport:false raw with
          | Ok packet -> Netstack.Netdevice.transmit dev packet
          | Error _ -> ())
        t.saved_frames);
  t.saved_frames <- []

let unload t =
  if t.loaded then begin
    unadvertise t;
    Stack.set_tx_jumbo_hint t.stack None;
    teardown_all t ~save:false;
    (match t.hook with
    | Some handle -> Netstack.Netfilter.unregister (Stack.post_routing t.stack) handle
    | None -> ());
    t.hook <- None;
    (match t.expiry_timer with
    | Some timer -> Sim.Engine.cancel timer
    | None -> ());
    t.expiry_timer <- None;
    t.loaded <- false
  end

(* ------------------------------------------------------------------ *)
(* Chaos-harness hooks and invariants *)

(* The guest died abruptly: the module stops reacting, but runs none of the
   teardown choreography — no unadvertisement, no peer notification, no
   resource release.  Peers must learn of the loss through the control
   plane (the guest vanishes from announcements) and reclaim their own half
   of every shared channel; the hypervisor reclaims the rest
   ({!Hypervisor.Machine.crash_domain}). *)
let kill t =
  if t.loaded then begin
    (match t.expiry_timer with
    | Some timer -> Sim.Engine.cancel timer
    | None -> ());
    t.expiry_timer <- None;
    t.loaded <- false
  end

let set_ctrl_fault_injector t f = t.ctrl_fault <- f
let set_push_fault_injector t f = t.push_fault <- f

let iter_tx_pools t f =
  Hashtbl.iter
    (fun _ state ->
      match state with
      | Active ch | Bootstrapping (Awaiting_ack { ba_channel = ch; _ }) ->
          Array.iter
            (fun q -> match q.q_tx_pool with Some pool -> f pool | None -> ())
            ch.queues
      | Bootstrapping (Requested_from_listener _) | Failed_until _ -> ())
    t.peers

let set_pool_fault_injector t f =
  t.pool_fault <- f;
  (* Existing channels' tx pools pick the injector up immediately; queues
     created later inherit it at construction. *)
  iter_tx_pools t (fun pool -> Payload_pool.set_alloc_fault pool f)

let set_loan_fault_injector t f = t.loan_fault <- f
let set_jumbo_fault_injector t f = t.jumbo_fault <- f

(* ------------------------------------------------------------------ *)
(* QoS observability and tenant control surface *)

let qos_enabled t = t.qos <> None

let set_congestion_fault_injector t f =
  match t.qos with None -> () | Some qs -> qs.qt_congestion_fault <- f

(* The composed classifier closure reads [qt_base_classify] and the
   policy table dynamically, so swapping either only requires forcing
   the flow table to re-resolve existing flows. *)
let reresolve_flows qs =
  Qos.Flow_table.set_classify qs.qt_flows qs.qt_composed qs.qt_weight_of

let set_qos_classifier t f =
  match t.qos with
  | None -> ()
  | Some qs ->
      qs.qt_base_classify := f;
      reresolve_flows qs

let install_tenant_policy t ~tenant policy =
  match t.qos with
  | None -> ()
  | Some qs ->
      Hashtbl.replace qs.qt_policies tenant policy;
      reresolve_flows qs

let remove_tenant_policy t ~tenant =
  match t.qos with
  | None -> ()
  | Some qs ->
      Hashtbl.remove qs.qt_policies tenant;
      reresolve_flows qs

type flow_stat = {
  fs_label : string;
  fs_tenant : int;
  fs_weight : int;
  fs_bytes : int;
  fs_frames : int;
  fs_descs : int;
  fs_overflows : int;
  fs_congestion_raises : int;
  fs_congestion_clears : int;
  fs_congested : bool;
}

let flow_stats t =
  match t.qos with
  | None -> []
  | Some qs ->
      List.map
        (fun f ->
          {
            fs_label = f.Qos.Flow_table.f_label;
            fs_tenant = f.Qos.Flow_table.f_tenant;
            fs_weight = f.Qos.Flow_table.f_weight;
            fs_bytes = f.Qos.Flow_table.f_bytes;
            fs_frames = f.Qos.Flow_table.f_frames;
            fs_descs = f.Qos.Flow_table.f_descs;
            fs_overflows = f.Qos.Flow_table.f_overflows;
            fs_congestion_raises = Qos.Watermark.raises f.Qos.Flow_table.f_mark;
            fs_congestion_clears = Qos.Watermark.clears f.Qos.Flow_table.f_mark;
            fs_congested = Qos.Watermark.congested f.Qos.Flow_table.f_mark;
          })
        (Qos.Flow_table.flows qs.qt_flows)

let invariant_violations t =
  let p = params t in
  let violations = ref [] in
  let note fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let check_channel domid ch =
    Array.iter
      (fun q ->
        let where dir = Printf.sprintf "dom%d->dom%d q%d %s" (my_domid t) domid q.q_index dir in
        (match Fifo.sanity q.out_fifo with
        | Some msg -> note "%s fifo: %s" (where "out") msg
        | None -> ());
        (match Fifo.sanity q.in_fifo with
        | Some msg -> note "%s fifo: %s" (where "in") msg
        | None -> ());
        (match Option.map Payload_pool.sanity q.q_tx_pool with
        | Some (Some msg) -> note "%s pool: %s" (where "tx") msg
        | Some None | None -> ());
        (match Option.map Payload_pool.sanity q.q_rx_pool with
        | Some (Some msg) -> note "%s pool: %s" (where "rx") msg
        | Some None | None -> ());
        (match q.q_rx_pool with
        | Some pool ->
            (* The negotiated credit is a hard cap: the receive path must
               degrade to copy-out rather than borrow past it. *)
            let out = Payload_pool.outstanding_loans pool in
            if out > q.q_max_loans then
              note "%s loans over credit: %d > %d" (where "rx") out
                q.q_max_loans
        | None -> ());
        (match q.q_sched with
        | Some sched ->
            (* QoS mode: the bound is per flow sub-queue, not global. *)
            Qos.Drr.fold_flows
              (fun () key ~items ~bytes:_ ->
                if items > Qos.Drr.max_per_flow sched then
                  note "%s flow %s sub-queue over bound: %d > %d" (where "tx")
                    (Steering.describe_key key) items
                    (Qos.Drr.max_per_flow sched))
              sched ()
        | None ->
            if Queue.length q.waiting > p.Params.xenloop_waiting_list_max then
              note "%s waiting list over bound: %d > %d" (where "tx")
                (Queue.length q.waiting) p.Params.xenloop_waiting_list_max))
      ch.queues
  in
  Hashtbl.fold (fun domid state acc -> (domid, state) :: acc) t.peers []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (domid, state) ->
         match state with
         | Active ch | Bootstrapping (Awaiting_ack { ba_channel = ch; _ }) ->
             check_channel domid ch
         | Bootstrapping (Requested_from_listener _) | Failed_until _ -> ());
  List.rev !violations

(* The answer this module gives the TCP sender through
   {!Stack.set_tx_jumbo_hint}: the largest TCP payload one segment
   towards [dst] may carry — the best negotiated gso ceiling across the
   connected channel's queues, or 0 when there is no gso channel and the
   per-MSS sender stays untouched. *)
let jumbo_hint_for t ~dst =
  if not t.loaded then 0
  else
    match Mapping_table.lookup_by_ip t.mapping dst with
    | None -> 0
    | Some entry -> (
        match Hashtbl.find_opt t.peers entry.Proto.entry_domid with
        | Some (Active ch) when ch.connected ->
            Array.fold_left (fun acc q -> max acc q.q_gso_max) 0 ch.queues
        | Some _ | None -> 0)

let create ~domain ~stack ~current_machine ?(fifo_k = Fifo.default_k) ?max_queues
    ?zerocopy ?loans ?gso ?qos ?trace () =
  let p = Stack.params stack in
  let mq =
    match max_queues with
    | Some q -> max 1 q
    | None -> max 1 p.Params.xenloop_queues
  in
  let zc =
    match zerocopy with Some z -> z | None -> p.Params.xenloop_zerocopy
  in
  (* Loans ride on the descriptor channel: no zero-copy, no loans. *)
  let ln =
    (match loans with Some l -> l | None -> p.Params.xenloop_loans) && zc
  in
  (* So does segmentation offload: no zero-copy, no jumbo descriptors. *)
  let gs = (match gso with Some g -> g | None -> p.Params.xenloop_gso) && zc in
  let qos_on = match qos with Some b -> b | None -> p.Params.qos_enabled in
  let qos_state =
    if not qos_on then None
    else begin
      let policies = Hashtbl.create 4 in
      let base_classify = ref (fun _ -> 0) in
      let weight_of tenant =
        match List.assoc_opt tenant p.Params.qos_tenant_weights with
        | Some w -> max 1 w
        | None -> max 1 p.Params.qos_default_weight
      in
      (* Tenant-policy classify overrides run first (lowest tenant id
         wins when several policies claim a flow — deterministic), then
         the installable base classifier.  Reads the policy table and
         base ref dynamically, so installs only need a re-resolve. *)
      let composed key =
        let overrides =
          Hashtbl.fold (fun tid pol acc -> (tid, pol) :: acc) policies []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
        in
        let rec first = function
          | [] -> !base_classify key
          | (_, pol) :: rest -> (
              match pol.Qos.Policy.p_classify key with
              | Some tenant -> tenant
              | None -> first rest)
        in
        first overrides
      in
      Some
        {
          qt_flows =
            Qos.Flow_table.create
              ~max_flows:(max 1 p.Params.qos_max_flows)
              ~high:p.Params.qos_high_watermark
              ~low:p.Params.qos_low_watermark
              ~label_of:Steering.describe_key ~classify:composed ~weight_of ();
          qt_policies = policies;
          qt_base_classify = base_classify;
          qt_composed = composed;
          qt_weight_of = weight_of;
          qt_congestion_fault = None;
        }
    end
  in
  let t =
    {
      domain;
      stack;
      current_machine;
      k = fifo_k;
      max_queues = mq;
      zerocopy = zc;
      loans = ln;
      gso = gs;
      qos = qos_state;
      mapping = Mapping_table.create ();
      peers = Hashtbl.create 8;
      flow_cache = Hashtbl.create 64;
      epoch = 0;
      hook = None;
      saved_frames = [];
      app_handler = None;
      app_view_handler = None;
      trace;
      s =
        {
          via_channel_tx = 0;
          via_channel_rx = 0;
          queued_to_waiting = 0;
          waiting_overflows = 0;
          too_big_fallback = 0;
          channels_established = 0;
          channels_torn_down = 0;
          bootstraps_started = 0;
          corrupt_channels = 0;
          notifies_sent = 0;
          notifies_suppressed = 0;
          batches = 0;
          poll_rounds = 0;
          steered_packets = 0;
          flow_cache_hits = 0;
          flow_cache_misses = 0;
          desc_tx = 0;
          inline_tx = 0;
          pool_fallbacks = 0;
          loan_tx = 0;
          loan_rx = 0;
          loan_returns = 0;
          loan_credit_stalls = 0;
          loans_force_returned = 0;
          bootstrap_failures = 0;
          softstate_evictions = 0;
          channels_evicted = 0;
          delta_announces = 0;
          jumbo_tx = 0;
          jumbo_rx = 0;
          jumbo_chunks_tx = 0;
          jumbo_drops = 0;
          csum_elided = 0;
        };
      loaded = true;
      next_token = 0;
      last_announce = Sim.Engine.now (Stack.engine stack);
      announce_epoch = 0;
      expiry_timer = None;
      ctrl_fault = None;
      push_fault = None;
      pool_fault = None;
      loan_fault = None;
      jumbo_fault = None;
    }
  in
  t.hook <-
    Some (Netstack.Netfilter.register_batch (Stack.post_routing stack) (hook_fn t));
  Stack.set_ctrl_handler stack (on_ctrl_packet t);
  (* A gso-capable module tells its own TCP sender how large a segment
     each destination's channel can swallow; with gso off the hint stays
     unregistered and the sender is bit-for-bit the per-MSS legacy. *)
  if gs then
    Stack.set_tx_jumbo_hint stack (Some (fun ~dst -> jumbo_hint_for t ~dst));
  advertise t;
  (let ttl = p.Params.xenloop_softstate_ttl in
   let idle = p.Params.xenloop_channel_idle_ttl in
   let pos = Sim.Time.span_is_positive in
   (* One periodic timer serves both expiries; its period tracks the
      shorter of the two configured horizons. *)
   let basis =
     if pos ttl && pos idle then
       Sim.Time.ns_int64 (Int64.min (Sim.Time.to_ns ttl) (Sim.Time.to_ns idle))
     else if pos ttl then ttl
     else idle
   in
   if pos basis then begin
     (* Check a few times per TTL so eviction lands within ~5/4 TTL of the
        last announcement (or last traffic), not a whole extra TTL late. *)
     let period =
       Sim.Time.span_max (Sim.Time.ms 1)
         (Sim.Time.ns_int64 (Int64.div (Sim.Time.to_ns basis) 4L))
     in
     t.expiry_timer <-
       Some
         (Sim.Engine.every (Stack.engine stack) period (fun () ->
              softstate_expire t;
              idle_evict t))
   end);
  Domain.on_pre_migrate domain (fun () -> if t.loaded then prepare_migration t);
  Domain.on_post_restore domain (fun () -> if t.loaded then restore_after_migration t);
  Domain.on_shutdown domain (fun () -> unload t);
  t
