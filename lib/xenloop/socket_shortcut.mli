(** Transport-level XenLoop — the paper's future-work prototype (Sect. 6).

    The published XenLoop intercepts below the network layer, so every
    packet still pays IP and UDP processing on both sides.  The authors
    close the paper asking whether interception {e between the socket and
    transport layers} could "eliminate network protocol processing overhead
    from the inter-VM data path".  This module is that prototype for UDP:

    - outgoing datagrams whose destination IP belongs to a co-resident,
      channel-connected guest are shipped as {!Proto.App_payload} messages
      over the existing XenLoop channel — no IP header, no UDP header, no
      checksums, no fragmentation;
    - arriving payloads are placed directly into the destination socket's
      buffer.

    Everything else (discovery, bootstrap, teardown, migration) is the
    standard {!Guest_module} machinery; when the fast path is not available
    the datagram transparently falls back to the normal stack, which the
    regular packet-level XenLoop hook may still accelerate. *)

type t

val enable :
  xl_module:Guest_module.t -> udp:Netstack.Udp.t -> unit -> t
(** Install the shortcut on a guest's UDP layer. *)

val disable : t -> unit
(** Remove the hooks; traffic reverts to the packet-level path. *)

val is_enabled : t -> bool

val sent_via_shortcut : t -> int

val received_via_shortcut : t -> int
(** All shortcut deliveries, loaned views included. *)

val received_as_view : t -> int
(** The subset of {!received_via_shortcut} delivered as borrowed pool-slot
    views (loaned-slot receive, DESIGN.md §11) rather than copied out. *)

val fallbacks : t -> int
