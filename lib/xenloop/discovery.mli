(** The Domain Discovery module that runs in Dom0 (paper Sect. 3.2).

    Every [discovery_period] (5 s in the paper) it scans XenStore for
    guests advertising a "xenloop" entry under their subtree — something
    only Dom0 is allowed to do, which is the whole reason discovery lives
    in Dom0 — collates their [guest-ID, MAC] pairs, and transmits an
    announcement message (a XenLoop-type layer-3 packet) to each willing
    guest. *)

type t

val advert_key : string
(** ["xenloop"] — the XenStore key guests advertise under their subtree. *)

val advert_path : domid:int -> string

val start :
  machine:Hypervisor.Machine.t -> dom0_stack:Netstack.Stack.t -> unit -> t
(** Begins periodic scanning on the machine's engine, with the period from
    the machine's {!Hypervisor.Params.t}. *)

val stop : t -> unit

val scan_now : t -> unit
(** One synchronous scan+announce round (process context); tests and the
    benches use it to avoid waiting out the period. *)

val willing_guests : t -> Proto.entry list
(** The result of the last scan. *)

val announcements_sent : t -> int

(** {1 Fault injection}

    Chaos-harness hook.  The injector is consulted once per recipient per
    announcement round; [true] silently drops that guest's copy (the scan
    still ran, the others still hear).  A guest starved of announcements
    long enough must expire its whole mapping table
    ({!Hypervisor.Params.xenloop_softstate_ttl}) and recover when they
    resume. *)

val set_announce_fault : t -> (domid:int -> bool) option -> unit
val announcements_dropped : t -> int
