(** The Domain Discovery module that runs in Dom0 (paper Sect. 3.2).

    Every [discovery_period] (5 s in the paper) it scans XenStore for
    guests advertising a "xenloop" entry under their subtree — something
    only Dom0 is allowed to do, which is the whole reason discovery lives
    in Dom0 — collates their [guest-ID, MAC] pairs, and transmits an
    announcement message (a XenLoop-type layer-3 packet) to each willing
    guest.

    {b Delta announcements} (DESIGN.md §12).  With
    {!Hypervisor.Params.t.xenloop_delta_announce} on, Dom0 versions the
    willing-guest list with an epoch, keeps a bounded log of per-epoch
    joins/leaves, and reads each delta-capable guest's acked epoch back
    from its {!ack_path} XenStore node: a guest behind the current epoch
    receives only the aggregated joins/leaves since its acked epoch (one
    encode shared by every guest at the same base), a guest that is up to
    date is skipped entirely until the announce-refresh deadline, and a
    guest whose base fell out of the log gets a full resync.  Legacy
    guests (no "dl" token in their advert) keep receiving the classic
    full-list announcement whenever anything changed or their refresh is
    due — version gating.  With the knob off, every round is the
    pre-delta full-list broadcast, bit for bit. *)

type t

val advert_key : string
(** ["xenloop"] — the XenStore key guests advertise under their subtree. *)

val advert_path : domid:int -> string

val ack_key : string
(** ["xenloop-ack"] — where a delta-capable guest records the announce
    epoch it last applied.  In the guest's own subtree (guests may only
    write there) and deliberately not ending in "/xenloop", so ack writes
    never trigger the discovery watch. *)

val ack_path : domid:int -> string

val start :
  machine:Hypervisor.Machine.t -> dom0_stack:Netstack.Stack.t -> unit -> t
(** Begins periodic scanning on the machine's engine, with the period from
    the machine's {!Hypervisor.Params.t}. *)

val stop : t -> unit

val scan_now : t -> unit
(** One synchronous scan+announce round (process context); tests and the
    benches use it to avoid waiting out the period. *)

val willing_guests : t -> Proto.entry list
(** The result of the last scan. *)

val announcements_sent : t -> int
(** Announcement copies actually handed to the stack (all kinds). *)

val announcements_suppressed : t -> int
(** Recipients skipped because they were up to date and inside their
    refresh window (delta mode only; always 0 with the knob off). *)

val announce_bytes : t -> int
(** Total payload bytes across every announcement copy sent — the
    numerator of the bench's announce-bytes-per-guest metric. *)

val announce_batches : t -> int
(** Distinct messages encoded across all rounds; recipients sharing a
    base epoch share one encode (delta mode; legacy rounds count one per
    round). *)

val full_resyncs : t -> int
(** Delta-capable recipients that had to be sent the complete list
    because their acked epoch fell out of the bounded delta log. *)

val current_epoch : t -> int
(** The version of the current willing-guest list (0 until the first
    change in delta mode; always 0 with the knob off). *)

(** {1 Fault injection}

    Chaos-harness hook.  The injector is consulted once per recipient per
    announcement round (in delta mode: once per recipient actually being
    sent to — suppressed recipients are not consulted); [true] silently
    drops that guest's copy (the scan still ran, the others still hear).
    A guest starved of announcements long enough must expire its whole
    mapping table ({!Hypervisor.Params.xenloop_softstate_ttl}) and
    recover when they resume. *)

val set_announce_fault : t -> (domid:int -> bool) option -> unit
val announcements_dropped : t -> int
