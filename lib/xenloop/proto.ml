type entry = {
  entry_domid : int;
  entry_mac : Netcore.Mac.t;
  entry_ip : Netcore.Ip.t;
  entry_queues : int;
  entry_zc : bool;
  entry_loans : bool;
  entry_gso : bool;
}

type queue_grant = {
  qg_lc_gref : Memory.Grant_table.gref;
  qg_cl_gref : Memory.Grant_table.gref;
  qg_port : Evtchn.Event_channel.port;
  qg_lc_pool : Memory.Grant_table.gref option;
  qg_cl_pool : Memory.Grant_table.gref option;
}

type t =
  | Announce of entry list
  | Delta_announce of {
      da_base : int;
      da_epoch : int;
      da_full : bool;
      da_joins : entry list;
      da_leaves : int list;
    }
  | Request_channel of {
      requester_domid : int;
      max_queues : int;
      zerocopy : bool;
      loans : bool;
      gso : bool;
    }
  | Create_channel of { listener_domid : int; queues : queue_grant list }
  | Channel_ack of { connector_domid : int }
  | App_payload of {
      src_ip : Netcore.Ip.t;
      src_port : int;
      dst_port : int;
      payload : Bytes.t;
    }

(* Version gating: tags 1-5 are the original single-queue wire format, kept
   bit-for-bit so a queues=1 peer (or an old binary) interoperates
   unchanged.  The multi-queue variants (6-8) are only emitted when a
   queue count above 1 actually needs expressing, the zero-copy
   variants (9-11) only when a zero-copy capability or pool grant
   actually needs expressing, and the loan variants (12-13) only when a
   loaned-slot-receive capability actually needs expressing; a
   negotiated-down handshake therefore reproduces the earlier byte
   streams exactly.  Create_channel needs no loan variant: the loan
   credit rides as a stamp in the payload-pool control page, invisible
   to the wire format.  The delta-announcement variant (14) is only ever
   sent to a guest that advertised the "dl" token, so its entries always
   carry the full queues/zc/loans capability set — no per-list gating
   needed; a legacy peer keeps receiving tags 1/6/9/12 and never sees a
   14.  The gso variants (15 = Announce, 16 = Delta_announce, 17 =
   Request_channel) add one capability byte per entry and are only
   emitted when a segmentation-offload capability actually needs
   expressing; Create_channel again needs no variant because the
   negotiated gso ceiling rides as a payload-pool control-page stamp. *)

let has_pool q = q.qg_lc_pool <> None || q.qg_cl_pool <> None

let tag = function
  | Announce entries ->
      if List.exists (fun e -> e.entry_gso) entries then 15
      else if List.exists (fun e -> e.entry_loans) entries then 12
      else if List.exists (fun e -> e.entry_zc) entries then 9
      else if List.for_all (fun e -> e.entry_queues <= 1) entries then 1
      else 6
  | Delta_announce { da_joins; _ } ->
      if List.exists (fun e -> e.entry_gso) da_joins then 16 else 14
  | Request_channel { max_queues; zerocopy; loans; gso; _ } ->
      if gso then 17
      else if loans then 13
      else if zerocopy then 10
      else if max_queues <= 1 then 2
      else 7
  | Create_channel { queues; _ } ->
      if List.exists has_pool queues then 11
      else ( match queues with [ _ ] -> 3 | _ -> 8)
  | Channel_ack _ -> 4
  | App_payload _ -> 5

let w16 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let w32 buf v =
  w16 buf (v lsr 16);
  w16 buf v

let wip buf ip =
  let v = Netcore.Ip.to_int32 ip in
  w16 buf (Int32.to_int (Int32.shift_right_logical v 16));
  w16 buf (Int32.to_int (Int32.logand v 0xFFFFl))

let wmac buf mac =
  let v = Netcore.Mac.to_int64 mac in
  for i = 5 downto 0 do
    Buffer.add_char buf (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))
  done

let encode msg =
  let buf = Buffer.create 32 in
  let t = tag msg in
  Buffer.add_char buf (Char.chr t);
  (match msg with
  | Announce entries ->
      w16 buf (List.length entries);
      List.iter
        (fun e ->
          w16 buf e.entry_domid;
          wmac buf e.entry_mac;
          wip buf e.entry_ip;
          if t = 6 || t = 9 || t = 12 || t = 15 then w16 buf e.entry_queues;
          if t = 9 || t = 12 || t = 15 then
            Buffer.add_char buf (Char.chr (Bool.to_int e.entry_zc));
          if t = 12 || t = 15 then
            Buffer.add_char buf (Char.chr (Bool.to_int e.entry_loans));
          if t = 15 then Buffer.add_char buf (Char.chr (Bool.to_int e.entry_gso)))
        entries
  | Delta_announce { da_base; da_epoch; da_full; da_joins; da_leaves } ->
      w32 buf da_base;
      w32 buf da_epoch;
      Buffer.add_char buf (Char.chr (Bool.to_int da_full));
      w16 buf (List.length da_joins);
      List.iter
        (fun e ->
          w16 buf e.entry_domid;
          wmac buf e.entry_mac;
          wip buf e.entry_ip;
          w16 buf e.entry_queues;
          Buffer.add_char buf (Char.chr (Bool.to_int e.entry_zc));
          Buffer.add_char buf (Char.chr (Bool.to_int e.entry_loans));
          if t = 16 then Buffer.add_char buf (Char.chr (Bool.to_int e.entry_gso)))
        da_joins;
      w16 buf (List.length da_leaves);
      List.iter (fun d -> w16 buf d) da_leaves
  | Request_channel { requester_domid; max_queues; zerocopy; loans; gso } ->
      w16 buf requester_domid;
      if t = 7 || t = 10 || t = 13 || t = 17 then w16 buf max_queues;
      if t = 10 || t = 13 || t = 17 then
        Buffer.add_char buf (Char.chr (Bool.to_int zerocopy));
      if t = 13 || t = 17 then
        Buffer.add_char buf (Char.chr (Bool.to_int loans));
      if t = 17 then Buffer.add_char buf (Char.chr (Bool.to_int gso))
  | Create_channel { listener_domid; queues } ->
      w16 buf listener_domid;
      if t = 8 || t = 11 then w16 buf (List.length queues);
      List.iter
        (fun q ->
          w32 buf q.qg_lc_gref;
          w32 buf q.qg_cl_gref;
          w16 buf q.qg_port;
          if t = 11 then
            match (q.qg_lc_pool, q.qg_cl_pool) with
            | Some lc, Some cl ->
                Buffer.add_char buf '\001';
                w32 buf lc;
                w32 buf cl
            | _ -> Buffer.add_char buf '\000')
        queues
  | Channel_ack { connector_domid } -> w16 buf connector_domid
  | App_payload { src_ip; src_port; dst_port; payload } ->
      wip buf src_ip;
      w16 buf src_port;
      w16 buf dst_port;
      Buffer.add_bytes buf payload);
  Buffer.to_bytes buf

exception Short

let decode data =
  let pos = ref 0 in
  let r8 () =
    if !pos >= Bytes.length data then raise Short;
    let v = Char.code (Bytes.get data !pos) in
    incr pos;
    v
  in
  let r16 () =
    let hi = r8 () in
    (hi lsl 8) lor r8 ()
  in
  let r32 () =
    let hi = r16 () in
    (hi lsl 16) lor r16 ()
  in
  let rip () =
    let hi = r16 () in
    let lo = r16 () in
    Netcore.Ip.of_int32
      (Int32.logor (Int32.shift_left (Int32.of_int hi) 16) (Int32.of_int lo))
  in
  let rmac () =
    let v = ref 0L in
    for _ = 1 to 6 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (r8 ()))
    done;
    Netcore.Mac.of_int64 !v
  in
  let rentry ~queues ~zc ~loans ~gso () =
    let entry_domid = r16 () in
    let entry_mac = rmac () in
    let entry_ip = rip () in
    let entry_queues = if queues then max 1 (r16 ()) else 1 in
    let entry_zc = if zc then r8 () <> 0 else false in
    let entry_loans = if loans then r8 () <> 0 else false in
    let entry_gso = if gso then r8 () <> 0 else false in
    {
      entry_domid;
      entry_mac;
      entry_ip;
      entry_queues;
      entry_zc;
      entry_loans;
      entry_gso;
    }
  in
  let rqueue ~pools () =
    let qg_lc_gref = r32 () in
    let qg_cl_gref = r32 () in
    let qg_port = r16 () in
    let qg_lc_pool, qg_cl_pool =
      if pools && r8 () <> 0 then
        let lc = r32 () in
        let cl = r32 () in
        (Some lc, Some cl)
      else (None, None)
    in
    { qg_lc_gref; qg_cl_gref; qg_port; qg_lc_pool; qg_cl_pool }
  in
  try
    match r8 () with
    | 1 ->
        let n = r16 () in
        Ok
          (Announce
             (List.init n (fun _ ->
                  rentry ~queues:false ~zc:false ~loans:false ~gso:false ())))
    | 6 ->
        let n = r16 () in
        Ok
          (Announce
             (List.init n (fun _ ->
                  rentry ~queues:true ~zc:false ~loans:false ~gso:false ())))
    | 9 ->
        let n = r16 () in
        Ok
          (Announce
             (List.init n (fun _ ->
                  rentry ~queues:true ~zc:true ~loans:false ~gso:false ())))
    | 12 ->
        let n = r16 () in
        Ok
          (Announce
             (List.init n (fun _ ->
                  rentry ~queues:true ~zc:true ~loans:true ~gso:false ())))
    | 15 ->
        let n = r16 () in
        Ok
          (Announce
             (List.init n (fun _ ->
                  rentry ~queues:true ~zc:true ~loans:true ~gso:true ())))
    | (14 | 16) as t ->
        let da_base = r32 () in
        let da_epoch = r32 () in
        let da_full = r8 () <> 0 in
        let nj = r16 () in
        let da_joins =
          List.init nj (fun _ ->
              rentry ~queues:true ~zc:true ~loans:true ~gso:(t = 16) ())
        in
        let nl = r16 () in
        let da_leaves = List.init nl (fun _ -> r16 ()) in
        Ok (Delta_announce { da_base; da_epoch; da_full; da_joins; da_leaves })
    | 2 ->
        Ok
          (Request_channel
             {
               requester_domid = r16 ();
               max_queues = 1;
               zerocopy = false;
               loans = false;
               gso = false;
             })
    | 7 ->
        let requester_domid = r16 () in
        let max_queues = max 1 (r16 ()) in
        Ok
          (Request_channel
             {
               requester_domid;
               max_queues;
               zerocopy = false;
               loans = false;
               gso = false;
             })
    | 10 ->
        let requester_domid = r16 () in
        let max_queues = max 1 (r16 ()) in
        let zerocopy = r8 () <> 0 in
        Ok
          (Request_channel
             { requester_domid; max_queues; zerocopy; loans = false; gso = false })
    | (13 | 17) as t ->
        let requester_domid = r16 () in
        let max_queues = max 1 (r16 ()) in
        let zerocopy = r8 () <> 0 in
        let loans = r8 () <> 0 in
        let gso = if t = 17 then r8 () <> 0 else false in
        Ok (Request_channel { requester_domid; max_queues; zerocopy; loans; gso })
    | 3 ->
        let listener_domid = r16 () in
        Ok (Create_channel { listener_domid; queues = [ rqueue ~pools:false () ] })
    | 8 ->
        let listener_domid = r16 () in
        let n = r16 () in
        if n < 1 then Error "create_channel with no queues"
        else
          Ok
            (Create_channel
               { listener_domid; queues = List.init n (fun _ -> rqueue ~pools:false ()) })
    | 11 ->
        let listener_domid = r16 () in
        let n = r16 () in
        if n < 1 then Error "create_channel with no queues"
        else
          Ok
            (Create_channel
               { listener_domid; queues = List.init n (fun _ -> rqueue ~pools:true ()) })
    | 4 -> Ok (Channel_ack { connector_domid = r16 () })
    | 5 ->
        let src_ip = rip () in
        let src_port = r16 () in
        let dst_port = r16 () in
        let payload = Bytes.sub data !pos (Bytes.length data - !pos) in
        Ok (App_payload { src_ip; src_port; dst_port; payload })
    | t -> Error (Printf.sprintf "unknown xenloop message tag %d" t)
  with Short -> Error "truncated xenloop message"

let equal a b = a = b

let pp fmt = function
  | Announce entries ->
      Format.fprintf fmt "announce[%s]"
        (String.concat "; "
           (List.map
              (fun e ->
                Printf.sprintf "dom%d=%s q%d%s%s%s" e.entry_domid
                  (Netcore.Mac.to_string e.entry_mac)
                  e.entry_queues
                  (if e.entry_zc then " zc" else "")
                  (if e.entry_loans then " ln" else "")
                  (if e.entry_gso then " gs" else ""))
              entries))
  | Delta_announce { da_base; da_epoch; da_full; da_joins; da_leaves } ->
      Format.fprintf fmt "delta_announce(%d->%d%s +[%s] -[%s])" da_base da_epoch
        (if da_full then " full" else "")
        (String.concat ";"
           (List.map (fun e -> string_of_int e.entry_domid) da_joins))
        (String.concat ";" (List.map string_of_int da_leaves))
  | Request_channel { requester_domid; max_queues; zerocopy; loans; gso } ->
      Format.fprintf fmt "request_channel(dom%d maxq=%d%s%s%s)" requester_domid
        max_queues
        (if zerocopy then " zc" else "")
        (if loans then " ln" else "")
        (if gso then " gs" else "")
  | Create_channel { listener_domid; queues } ->
      Format.fprintf fmt "create_channel(dom%d %s)" listener_domid
        (String.concat ","
           (List.map
              (fun q ->
                Printf.sprintf "grefs=%d/%d port=%d%s" q.qg_lc_gref q.qg_cl_gref
                  q.qg_port
                  (match (q.qg_lc_pool, q.qg_cl_pool) with
                  | Some lc, Some cl -> Printf.sprintf " pools=%d/%d" lc cl
                  | _ -> ""))
              queues))
  | Channel_ack { connector_domid } ->
      Format.fprintf fmt "channel_ack(dom%d)" connector_domid
  | App_payload { src_ip; src_port; dst_port; payload } ->
      Format.fprintf fmt "app_payload(%a:%d -> :%d len=%d)" Netcore.Ip.pp src_ip
        src_port dst_port (Bytes.length payload)
