(* Deterministic flow-hash steering for multi-queue channels.

   The hash must be a pure function of the flow identity so every packet
   of a flow lands on the same queue (in-order delivery per flow), and it
   must keep unrelated flows apart so a bulk stream saturating one queue
   cannot head-of-line-block a latency-sensitive flow on another.

   TCP hashes on the 5-tuple: the stack segments to MSS (TSO frames
   bypass IP fragmentation), so every packet of a connection carries its
   ports and the whole connection stays on one queue.

   UDP hashes on the 3-tuple (proto, src IP, dst IP) only — the Linux RSS
   default, and for the same reason: a large datagram IP-fragments, and
   fragments past the first carry no ports.  Hashing unfragmented
   datagrams by port while their oversized siblings fall back to the
   3-tuple would split one socket's traffic across queues and reorder it.
   Any actual fragment likewise hashes on the 3-tuple.  Non-TCP/UDP
   traffic falls back to the destination MAC. *)

type flow_key =
  | Ip_flow of { proto : int; src : int32; dst : int32; sport : int; dport : int }
  | Mac_flow of int64

let ip_flow ~proto ~src ~dst ~sport ~dport =
  Ip_flow
    { proto; src = Netcore.Ip.to_int32 src; dst = Netcore.Ip.to_int32 dst; sport; dport }

let flow_key (packet : Netcore.Packet.t) =
  match packet.Netcore.Packet.body with
  | Netcore.Packet.Ipv4_body { header; content } -> (
      let proto = Netcore.Ipv4.protocol_number header.Netcore.Ipv4.protocol in
      let three_tuple =
        ip_flow ~proto ~src:header.Netcore.Ipv4.src ~dst:header.Netcore.Ipv4.dst
          ~sport:0 ~dport:0
      in
      match content with
      | Netcore.Packet.Fragment _ -> three_tuple
      | Netcore.Packet.Full { transport; _ } -> (
          match transport with
          | Netcore.Transport.Udp _ -> three_tuple
          | Netcore.Transport.Tcp _ when not (Netcore.Ipv4.is_fragment header) -> (
              match
                ( Netcore.Transport.src_port transport,
                  Netcore.Transport.dst_port transport )
              with
              | Some sport, Some dport ->
                  ip_flow ~proto ~src:header.Netcore.Ipv4.src
                    ~dst:header.Netcore.Ipv4.dst ~sport ~dport
              | _ -> three_tuple)
          | Netcore.Transport.Tcp _ -> three_tuple
          | Netcore.Transport.Icmp _ ->
              Mac_flow (Netcore.Mac.to_int64 packet.Netcore.Packet.dst_mac)))
  | Netcore.Packet.Arp_body _ | Netcore.Packet.Xenloop_body _ ->
      Mac_flow (Netcore.Mac.to_int64 packet.Netcore.Packet.dst_mac)

(* The QoS flow identity is finer than the steering identity: steering
   zeroes UDP ports so a socket's fragmented and unfragmented datagrams
   stay on one queue, but fairness accounting wants one flow per UDP
   socket pair.  Unfragmented datagrams (ports visible on every packet)
   therefore keep their ports here; fragments and fragmented-datagram
   heads still collapse to the 3-tuple.  TCP and everything else match
   [flow_key] exactly. *)
let qos_flow_key (packet : Netcore.Packet.t) =
  match packet.Netcore.Packet.body with
  | Netcore.Packet.Ipv4_body { header; content } -> (
      match content with
      | Netcore.Packet.Full { transport = Netcore.Transport.Udp _ as transport; _ }
        when not (Netcore.Ipv4.is_fragment header) -> (
          let proto = Netcore.Ipv4.protocol_number header.Netcore.Ipv4.protocol in
          match
            ( Netcore.Transport.src_port transport,
              Netcore.Transport.dst_port transport )
          with
          | Some sport, Some dport ->
              ip_flow ~proto ~src:header.Netcore.Ipv4.src
                ~dst:header.Netcore.Ipv4.dst ~sport ~dport
          | _ -> flow_key packet)
      | _ -> flow_key packet)
  | _ -> flow_key packet

let describe_key = function
  | Ip_flow { proto; src; dst; sport; dport } ->
      let ip v =
        let v = Int32.to_int v land 0xFFFFFFFF in
        Printf.sprintf "%d.%d.%d.%d" ((v lsr 24) land 0xFF) ((v lsr 16) land 0xFF)
          ((v lsr 8) land 0xFF) (v land 0xFF)
      in
      let proto_name =
        match proto with 6 -> "tcp" | 17 -> "udp" | 1 -> "icmp" | p -> string_of_int p
      in
      Printf.sprintf "%s:%s:%d>%s:%d" proto_name (ip src) sport (ip dst) dport
  | Mac_flow mac -> Printf.sprintf "mac:%Lx" mac

(* FNV-1a over the key's words: cheap, stateless, and well-mixed in the
   low bits (which is all [queue_index] keeps). *)

let fnv_prime = 0x100000001b3L
let fnv_offset = 0xcbf29ce484222325L

let mix h v = Int64.mul (Int64.logxor h (Int64.of_int (v land 0xFFFF))) fnv_prime

let mix32 h v =
  let v = Int32.to_int v land 0xFFFFFFFF in
  mix (mix h (v land 0xFFFF)) (v lsr 16)

let hash key =
  let h =
    match key with
    | Ip_flow { proto; src; dst; sport; dport } ->
        mix (mix (mix32 (mix32 (mix fnv_offset proto) src) dst) sport) dport
    | Mac_flow mac ->
        let lo = Int64.to_int (Int64.logand mac 0xFFFFFFL) in
        let hi = Int64.to_int (Int64.shift_right_logical mac 24) in
        mix (mix fnv_offset lo) hi
  in
  Int64.to_int (Int64.logand h 0x3FFFFFFFL)

let queue_index key ~queues =
  if queues <= 1 then 0 else hash key mod queues
