(** Grant-mapped payload pool for the zero-copy descriptor channel.

    One pool per queue per direction: a control page plus a ring of
    [slots] fixed-size slots of [slot_pages] pages each, all granted by
    the listener and mapped once by the connector during the channel
    handshake — so the grant-map hypercalls are paid per connect, not per
    packet (the XWAY-style descriptor/payload split; see DESIGN.md §7).

    The sender writes a payload once into a free slot and pushes only a
    {e descriptor} through the FIFO; the receiver consumes the payload in
    place and returns the slot on the shared free ring.  Like the FIFO
    indices, the free ring's head and tail are free-running 32-bit
    counters each incremented by exactly one side, so the pool is
    lock-free.

    The control page also carries the listener's [inline_max] stamp so
    both directions agree on the copy/descriptor threshold, and the gref
    table of the data pages so the handshake message only needs the
    control page's own gref. *)

type t

val pages_for : slots:int -> slot_pages:int -> int
(** Total pages a pool occupies: one control page + [slots * slot_pages]. *)

val geometry_valid : slots:int -> slot_pages:int -> bool
(** Whether {!init} would accept this geometry ([slots] a power of two,
    free ring + gref table fitting the control page); a listener with an
    invalid configured geometry creates the channel without pools. *)

val init :
  ?max_loans:int ->
  ?gso_max:int ->
  ctrl:Memory.Page.t ->
  data:Memory.Page.t array ->
  slots:int ->
  slot_pages:int ->
  inline_max:int ->
  unit ->
  t
(** Format the control page (listener side).  [slots] must be a power of
    two and the free ring plus gref table must fit the control page.
    [max_loans] (default 0 = loans off) is the listener's loan-credit
    stamp: the most slots either receiver may hold borrowed at once (each
    side uses [min own stamp]).  [gso_max] (default 0 = gso off) is the
    listener's segmentation-offload stamp: the largest TCP payload one
    jumbo descriptor may carry on this channel (each side uses
    [min own stamp], DESIGN.md §15).
    @raise Invalid_argument otherwise. *)

val write_grefs : t -> Memory.Grant_table.gref array -> unit
(** Stamp the data pages' grant references into the control page, in slot
    order ([slots * slot_pages] entries). *)

val read_grefs : ctrl:Memory.Page.t -> Memory.Grant_table.gref array
(** What the connector reads (from the mapped control page) to learn the
    data pages it must map. *)

val attach : ctrl:Memory.Page.t -> data:Memory.Page.t array -> t
(** Attach a view over an already-initialized pool (connector side, or
    the listener re-deriving its own view). *)

val slots : t -> int
val slot_bytes : t -> int
(** Payload capacity of one slot. *)

val inline_threshold : t -> int
(** The listener's [xenloop_inline_max] stamp; each sender uses
    [max own peer_stamp] so both ends stay conservative. *)

val max_loans_stamp : t -> int
(** The listener's loan-credit stamp; [0] means loaned-slot receive is off
    for this channel and the receiver always copies out. *)

val gso_stamp : t -> int
(** The listener's segmentation-offload stamp; [0] means gso is off for
    this channel and every frame keeps the per-MSS descriptor path. *)

val free_slots : t -> int

val alloc : t -> int option
(** Sender: pop a free slot, or [None] when the pool is exhausted (the
    caller degrades that packet to the inline path). *)

val alloc_slot : t -> int
(** {!alloc} without the option box: the slot number, or [-1] when the
    free ring is empty (or a fault forces exhaustion).  The sender's
    per-packet path. *)

val unalloc : t -> int -> unit
(** Sender-local revert of its own most recent {!alloc}, before the
    descriptor is published (e.g. the FIFO refused the entry). *)

val free : t -> int -> unit
(** Receiver: return a consumed slot on the shared free ring. *)

val loan : t -> int -> unit
(** Receiver: mark a popped descriptor's slot as borrowed by the
    application instead of freeing it — the slot stays off the free ring
    until {!release}.  Loan state is view-local (the shared page never
    records it).
    @raise Invalid_argument on a double loan. *)

val release : t -> int -> unit
(** Application handed the view back: clear the loan and return the slot
    on the free ring.  After {!force_return_loans} the view is dead and
    any late release is a silent no-op.
    @raise Invalid_argument if the slot was never loaned (on a live view). *)

val outstanding_loans : t -> int
(** Slots currently borrowed through this view — the receiver's loan
    credit check, and the chaos harness's quiescence check. *)

val force_return_loans : t -> int
(** Channel teardown: return every borrowed slot to the free ring now
    (the pool pages are about to be unmapped) and mark the view dead so
    late releases no-op.  Returns how many loans were force-returned. *)

val write : t -> slot:int -> src:Bytes.t -> len:int -> unit
(** The sender's single payload copy, into the slot's pages. *)

val write_from :
  t -> slot:int -> src:Bytes.t -> src_off:int -> len:int -> unit
(** {!write} from an offset within [src] — the jumbo sender's scatter
    path, carving one oversized frame across several slots. *)

val read : t -> slot:int -> off:int -> len:int -> Bytes.t
(** The receiver's in-place view of a slot (materialized as bytes for the
    simulated stack; no copy is charged for it). *)

val read_into :
  t -> slot:int -> off:int -> len:int -> dst:Bytes.t -> dst_off:int -> unit
(** {!read} into a caller-owned scratch buffer — the busy-poll receive
    loop's zero-allocation path. *)

val sanity : t -> string option
(** Chaos-harness invariant: slot conservation over the shared free ring —
    magic/geometry intact, [free_slots <= slots], and every slot number in
    the live ring window valid, distinct, and not currently loaned out
    through this view (free + in-flight + loaned = total).
    Returns a description of the first violated property. *)

val set_alloc_fault : t -> (unit -> bool) option -> unit
(** Chaos-harness hook: when the callback returns [true], {!alloc} reports
    exhaustion even though free slots exist.  Registered per view — only
    this endpoint's allocations are affected — so the data path's
    pool-exhaustion fallback (degrade to the inline copy path) is exercised
    without corrupting the shared ring. *)
