(** The XenLoop lockless FIFO (paper Sect. 3.3, "FIFO design").

    A producer–consumer circular buffer living in shared memory pages.
    Each entry is an 8-byte metadata word followed by the packet payload in
    8-byte slots.  The number of slots is 2^k, while the free-running
    [front] and [back] indices are m-bit with m = 32 > k; because both are
    only ever incremented (mod 2^32) by exactly one side, no
    producer–consumer synchronization is needed and wrap-around falls out
    of the index arithmetic.  The first page is the {e descriptor page}:
    it holds the indices, the channel state flag, the geometry, and the
    grant references of the data pages (which is how the connector guest
    learns what to map during bootstrap). *)

type t

val default_k : int
(** 13: 2^13 slots of 8 bytes = 64 KiB, the paper's default FIFO size. *)

val data_pages_for : k:int -> int
(** Number of 4 KiB data pages backing 2^k slots. *)

(** {1 Queue-indexed layout}

    A multi-queue channel backs all its queues with one flat page pool
    (allocated in a single atomic grab) carved into per-queue
    [desc_lc | data_lc | desc_cl | data_cl] stripes. *)

val pages_per_queue : k:int -> int
(** Pages one bidirectional queue pair needs: two descriptor pages plus
    the data pages of both directions. *)

val pages_for_queues : k:int -> queues:int -> int

type queue_pages = {
  qp_desc_lc : Memory.Page.t;
  qp_data_lc : Memory.Page.t array;
  qp_desc_cl : Memory.Page.t;
  qp_data_cl : Memory.Page.t array;
}

val carve_queue : pool:Memory.Page.t array -> k:int -> index:int -> queue_pages
(** The pages of queue [index] within [pool].
    @raise Invalid_argument when the pool cannot hold that queue. *)

val max_k : int
(** Largest supported k (descriptor-page gref table is the limit). *)

(** {1 Setup (listener side)} *)

val init : desc:Memory.Page.t -> data:Memory.Page.t array -> k:int -> unit
(** Format the descriptor and mark the FIFO active.
    @raise Invalid_argument if the page count does not match [k] or [k]
    exceeds {!max_k}. *)

val write_grefs : desc:Memory.Page.t -> Memory.Grant_table.gref list -> unit
val read_grefs : desc:Memory.Page.t -> Memory.Grant_table.gref list

(** {1 Views}

    Both endpoints attach a view over the same pages; the producer side
    pushes, the consumer side pops.  Nothing stops a test from attaching
    both views in one process — they still share state through the pages,
    exactly like two guests sharing mapped memory. *)

val attach : desc:Memory.Page.t -> data:Memory.Page.t array -> t

val slots : t -> int
val max_packet : t -> int
(** Largest payload a single entry can carry; bigger packets must take the
    standard netfront path (paper Sect. 3.1). *)

val used_slots : t -> int
val free_slots : t -> int
val is_empty : t -> bool

val slots_for_payload : int -> int
(** Slots one entry occupies: the 8-byte metadata word plus the payload
    rounded up to whole slots. *)

val can_accept : t -> int -> bool
(** Whether a payload of this many bytes would fit right now: non-empty, at
    most {!max_packet}, and {!slots_for_payload} ≤ {!free_slots}.  This is
    the one authoritative admission check — callers must not re-derive it
    from slot arithmetic. *)

val try_push : t -> Bytes.t -> bool
(** Inline push: [false] when the payload does not fit in the free space
    (caller queues it on the waiting list). *)

(** {1 Descriptor entries (zero-copy payload pool)}

    With a {!Payload_pool} attached to the channel direction, payloads
    above the negotiated inline threshold are written once into a pool
    slot and the FIFO carries only a two-slot {e descriptor} entry —
    metadata word plus [{slot, offset, len, proto_hint}] — consumed in
    place by the receiver (DESIGN.md §7).  Without a pool every call
    below behaves bit-for-bit like the inline path. *)

type push_outcome = Pushed of { desc : bool; pool_fallback : bool } | Push_failed
(** [desc] — the entry went through the payload pool; [pool_fallback] —
    it was descriptor-eligible but the pool was exhausted, so it degraded
    to the inline copy path. *)

val push :
  t ->
  ?pool:Payload_pool.t ->
  ?inline_max:int ->
  ?proto_hint:int ->
  Bytes.t ->
  push_outcome

(** {2 Zero-allocation producer path}

    [push_entry] is {!push} without the [push_outcome] block: the result is
    one of the int codes below, the labelled arguments are non-optional
    (optional-argument defaults box), and nothing is allocated on the OCaml
    heap for an inline push.  The per-packet path of the guest TX engine. *)

val push_failed : int  (** 0 — the entry did not enter the FIFO *)

val pushed_inline : int  (** 1 — inline copy path *)

val pushed_desc : int  (** 2 — descriptor through the payload pool *)

val pushed_inline_fallback : int
(** 3 — descriptor-eligible but the pool was exhausted; degraded inline *)

val push_entry :
  t ->
  pool:Payload_pool.t option ->
  inline_max:int ->
  proto_hint:int ->
  Bytes.t ->
  int
(** The one producer entry point for a pooled channel.  Payloads at or
    below [inline_max] (or with no [pool]) take the inline path exactly
    as {!try_push}; eligible larger payloads allocate a pool slot, pay
    their single copy into it, and publish a descriptor.  A refused push
    never consumes a pool slot. *)

val flag_app : int
(** Descriptor-flag bit: the slot payload is a socket-shortcut app datagram
    (8-byte app header — src ip u32, src port u16, 2 pad — then the datagram
    bytes) and [proto_hint] carries the destination port, not an
    EtherType/protocol hint. *)

val try_push_desc :
  t ->
  ?flags:int ->
  slot:int ->
  offset:int ->
  len:int ->
  proto_hint:int ->
  unit ->
  bool
(** Publish a descriptor for a payload already written to the pool
    (two FIFO slots).  [flags] (default none) is OR-ed into the entry's
    flag word next to the descriptor bit — {!flag_app} and
    {!flag_csum_ok} are the defined extra bits.  {!push} is the normal
    caller for plain frames. *)

(** {2 Jumbo descriptors (segmentation offload, DESIGN.md §15)}

    A gso-negotiated sender publishes one entry for a frame larger than a
    single pool slot: the payload is scatter-written across several slots
    and the entry carries the chunk vector.  Never produced or consumed
    unless both endpoints negotiated gso — a gso-off channel's byte
    streams are bit-for-bit free of these. *)

val flag_jumbo : int
(** Descriptor-flag bit: multi-slot scatter entry (always set together
    with the descriptor bit). *)

val flag_csum_ok : int
(** Descriptor-flag bit: the sender elided the transport checksum on this
    trusted channel; the receiver parses verify-free and any
    netfront/physnet fallback must re-serialize (which recomputes). *)

val max_jumbo_chunks : int
(** Structural bound on a jumbo entry's chunk count (32). *)

val jumbo_ring_slots : int -> int
(** Ring slots a jumbo entry with this many chunks occupies (2 + n). *)

val can_accept_jumbo : t -> nchunks:int -> bool
(** Whether a jumbo entry with this many chunks would fit right now.  Pool
    slot availability is the caller's check — the chunk payloads are
    already written when the entry is pushed. *)

val try_push_jumbo :
  t ->
  ?flags:int ->
  chunk_slots:int array ->
  chunk_lens:int array ->
  nchunks:int ->
  total_len:int ->
  proto_hint:int ->
  unit ->
  bool
(** Publish a jumbo entry for a frame already scatter-written into
    [nchunks] pool slots (prefixes of [chunk_slots]/[chunk_lens]).
    [total_len] is the whole frame length and may exceed {!max_packet}.
    On [false] the caller owns the pool-slot rollback. *)

val can_accept_entry : t -> ?pool:Payload_pool.t -> ?inline_max:int -> int -> bool
(** {!can_accept} generalized over the descriptor path: whether {!push}
    with the same pool and threshold would succeed right now.  The one
    authoritative admission check for pooled queues. *)

type push_report = {
  pr_pushed : int;  (** entries that entered the FIFO *)
  pr_desc : int;  (** of those, descriptor-backed *)
  pr_inline : int;  (** of those, inline (copy path) *)
  pr_fallbacks : int;  (** inline entries that were pool-exhaustion degradations *)
  pr_loans : int;
      (** of the descriptor-backed entries, how many are loan-eligible at
          the receiver — [pr_desc] when the burst went to a loan-negotiated
          channel, [0] otherwise (loaned vs copied deliveries stay
          distinguishable in per-queue counters) *)
}

val push_many :
  t ->
  ?pool:Payload_pool.t ->
  ?inline_max:int ->
  ?proto_hint:int ->
  ?loans:bool ->
  Bytes.t list ->
  push_report
(** Push a burst of payloads in order, stopping at the first that does not
    fit; reports how many entered and how they were backed (so per-queue
    stats distinguish descriptor from copy traffic).  [loans] (default
    [false]) declares the burst bound for a loan-negotiated channel and
    only affects [pr_loans] accounting.  One batched producer publish — the
    caller charges the amortized CPU cost and issues the single trailing
    notification. *)

type entry =
  | Inline of Bytes.t
  | Desc of { d_slot : int; d_off : int; d_len : int; d_proto : int; d_flags : int }
  | Jumbo of {
      j_len : int;
      j_proto : int;
      j_flags : int;
      j_chunks : (int * int) array;  (** (pool slot, chunk length) *)
    }

val pop_entry : t -> entry option
(** Consume the next entry, whichever kind it is.  For [Desc] and [Jumbo]
    the caller resolves the payload against its mapped pool and returns
    the slot(s) on the pool's free ring.  A [Jumbo] chunk vector is
    delivered as read — the caller validates slots and lengths against
    its pool and drops (with accounting) on mismatch.
    @raise Invalid_argument on corrupt entry metadata (including a jumbo
    chunk count outside [1, {!max_jumbo_chunks}], which breaks ring
    framing itself). *)

val pop : t -> Bytes.t option
(** Inline-only consumer view of {!pop_entry}.
    @raise Invalid_argument on corrupt metadata or a descriptor entry
    (an endpoint without a pool must never see one). *)

(** {2 Zero-allocation consumer path}

    [pop_into] is {!pop_entry} without the [entry] allocation: inline
    payload bytes land in the caller's reusable buffer, and a descriptor
    entry parks its fields in the view (read them through the accessors
    below before the next pop). *)

val popped_empty : int  (** -1 — the FIFO was empty *)

val popped_desc : int
(** -2 — a descriptor entry; fields via {!desc_slot} & co. *)

val popped_jumbo : int
(** -3 — a jumbo entry; header via {!desc_len}/{!desc_proto}/{!desc_flags},
    chunk vector via {!desc_nchunks} and {!desc_chunk_slot}/{!desc_chunk_len}. *)

val pop_into : t -> Bytes.t -> int
(** Consume the next entry.  Returns the inline payload length (written at
    offset 0 of the buffer), or one of the codes above.
    @raise Invalid_argument on corrupt metadata or a buffer smaller than
    the entry's payload (size it with {!max_packet}). *)

val desc_slot : t -> int
val desc_off : t -> int
val desc_len : t -> int
val desc_proto : t -> int
val desc_flags : t -> int
(** Fields of the most recent {!popped_desc} entry from {!pop_into};
    overwritten by the next descriptor pop on this view. *)

val desc_nchunks : t -> int
val desc_chunk_slot : t -> int -> int
val desc_chunk_len : t -> int -> int
(** Chunk vector of the most recent {!popped_jumbo} entry from
    {!pop_into}; overwritten by the next jumbo pop on this view. *)

val is_active : t -> bool
val mark_inactive : t -> unit
(** Channel teardown flag, visible to the other endpoint through shared
    memory. *)

(** {1 Notification-suppression flags}

    Two header words in the shared descriptor page (an engineering
    extension over the paper's layout, mirroring Xen's
    [RING_PUSH_REQUESTS_AND_CHECK_NOTIFY] consumer-state convention).
    The consumer publishes "I am actively draining" so the producer can
    skip the event-channel hypercall; the producer publishes "my waiting
    list is non-empty" so the consumer knows freed space is worth a
    notification.  Each flag is written by exactly one endpoint and read
    by the other. *)

val consumer_active : t -> bool
val set_consumer_active : t -> bool -> unit
(** Set by the consumer while it drains/polls this FIFO; a producer that
    sees it set may skip {e data-available} notifications. *)

val producer_waiting : t -> bool
val set_producer_waiting : t -> bool -> unit
(** Set by the producer while packets sit on its waiting list; a consumer
    that frees space only notifies back when it is set. *)

(** {1 Test hooks} *)

val force_indices : desc:Memory.Page.t -> int -> unit
(** Set both indices to an arbitrary 32-bit value (e.g. near 2^32) to
    exercise wrap-around. *)

val front : t -> int
val back : t -> int

val sanity : t -> string option
(** Chaos-harness invariant: checks the shared descriptor header for
    corruption — k/page geometry vs this view, boolean flags really 0/1,
    and [used_slots <= slots] (a free-running front that overtook back).
    Returns a description of the first violated property. *)
