(** Deterministic flow-hash steering across a channel's queue pairs.

    An RSS-style generalization of the paper's single FIFO pair: the
    transmit hook hashes the flow identity and picks one of the channel's
    N queues.  TCP hashes on the 5-tuple (proto, src/dst IP, src/dst
    port); UDP and all fragments hash on the 3-tuple (proto, src/dst IP)
    so a datagram's fragments — which carry no ports — can never be split
    from their unfragmented siblings (the Linux RSS default, for the same
    reason); everything else falls back to the destination MAC.  Purely
    functional: a given flow always lands on the same queue for a given
    queue count. *)

type flow_key =
  | Ip_flow of { proto : int; src : int32; dst : int32; sport : int; dport : int }
  | Mac_flow of int64

val ip_flow :
  proto:int -> src:Netcore.Ip.t -> dst:Netcore.Ip.t -> sport:int -> dport:int ->
  flow_key
(** Build an IP flow key directly (benches use this to predict queue
    placement for chosen ports). *)

val flow_key : Netcore.Packet.t -> flow_key
(** Extract the steering key: 5-tuple for unfragmented TCP, 3-tuple
    (ports zeroed) for UDP and for any fragment, destination MAC
    otherwise. *)

val qos_flow_key : Netcore.Packet.t -> flow_key
(** The QoS accounting identity: like {!flow_key} but unfragmented UDP
    keeps its ports (one flow per socket pair), so a flooding socket is
    isolated from its neighbours even when steering maps both to the
    same queue.  Fragments still collapse to the 3-tuple. *)

val describe_key : flow_key -> string
(** Stable human-readable rendering, e.g. ["udp:10.0.0.1:5001>10.0.0.2:9000"],
    used as the flow label in stats and bench JSON. *)

val hash : flow_key -> int
(** Non-negative FNV-1a hash of the key. *)

val queue_index : flow_key -> queues:int -> int
(** [hash key mod queues]; always 0 when [queues <= 1]. *)
