module Page = Memory.Page

let mask32 = 0xFFFFFFFF
let pool_magic = 0x4C4F4F50 (* "POOL" *)

(* Control page layout (byte offsets). *)
let off_magic = 0
let off_slots = 4
let off_slot_pages = 8
let off_inline_max = 12
let off_fr_head = 16
let off_fr_tail = 20
let off_max_loans = 24
let off_gso_max = 28
let off_ring = 32
let off_grefs ~slots = off_ring + (4 * slots)


let is_power_of_two n = n > 0 && n land (n - 1) = 0

let ctrl_fits ~slots ~slot_pages =
  off_grefs ~slots + (4 * slots * slot_pages) <= Page.size

let pages_for ~slots ~slot_pages = 1 + (slots * slot_pages)

let geometry_valid ~slots ~slot_pages =
  is_power_of_two slots && slot_pages >= 1 && ctrl_fits ~slots ~slot_pages

type t = {
  ctrl : Page.t;
  data : Page.t array;
  p_slots : int;
  p_slot_pages : int;
  (* Chaos-harness hook: lives in this *view*, not the shared page, so only
     the endpoint that registered it sees forced exhaustion. *)
  mutable alloc_fault : (unit -> bool) option;
  (* Loan bookkeeping is view-local: only the receiving endpoint loans
     slots out to its socket layer, and only it needs to know which.  The
     shared page never records loans — a loaned slot is simply "in flight"
     from the free ring's point of view, exactly like one being read. *)
  pl_loaned : bool array;
  mutable pl_outstanding : int;
  (* Set by [force_return_loans] at channel teardown: any release arriving
     after the slots were force-returned must be a silent no-op, not a
     double-free onto a ring someone else now owns. *)
  mutable pl_dead : bool;
}

let check_geometry ~what ~slots ~slot_pages =
  if not (is_power_of_two slots) then
    invalid_arg (Printf.sprintf "Payload_pool.%s: slots must be a power of two" what);
  if slot_pages < 1 then
    invalid_arg (Printf.sprintf "Payload_pool.%s: slot_pages < 1" what);
  if not (ctrl_fits ~slots ~slot_pages) then
    invalid_arg
      (Printf.sprintf "Payload_pool.%s: free ring + gref table overflow the control page"
         what)

let make_view ~ctrl ~data ~slots ~slot_pages =
  {
    ctrl;
    data;
    p_slots = slots;
    p_slot_pages = slot_pages;
    alloc_fault = None;
    pl_loaned = Array.make slots false;
    pl_outstanding = 0;
    pl_dead = false;
  }

let init ?(max_loans = 0) ?(gso_max = 0) ~ctrl ~data ~slots ~slot_pages
    ~inline_max () =
  check_geometry ~what:"init" ~slots ~slot_pages;
  if Array.length data <> slots * slot_pages then
    invalid_arg "Payload_pool.init: wrong number of data pages";
  Page.zero ctrl;
  Page.set_u32 ctrl off_magic pool_magic;
  Page.set_u32 ctrl off_slots slots;
  Page.set_u32 ctrl off_slot_pages slot_pages;
  Page.set_u32 ctrl off_inline_max inline_max;
  Page.set_u32 ctrl off_max_loans (max 0 max_loans);
  Page.set_u32 ctrl off_gso_max (max 0 gso_max);
  (* Free ring starts full: every slot is available to the sender. *)
  for i = 0 to slots - 1 do
    Page.set_u32 ctrl (off_ring + (4 * i)) i
  done;
  Page.set_u32 ctrl off_fr_head 0;
  Page.set_u32 ctrl off_fr_tail slots;
  make_view ~ctrl ~data ~slots ~slot_pages

let write_grefs t grefs =
  if Array.length grefs <> t.p_slots * t.p_slot_pages then
    invalid_arg "Payload_pool.write_grefs: wrong number of grefs";
  let base = off_grefs ~slots:t.p_slots in
  Array.iteri (fun i gref -> Page.set_u32 t.ctrl (base + (4 * i)) gref) grefs

let read_grefs ~ctrl =
  if Page.get_u32 ctrl off_magic <> pool_magic then
    invalid_arg "Payload_pool.read_grefs: control page not initialized";
  let slots = Page.get_u32 ctrl off_slots in
  let slot_pages = Page.get_u32 ctrl off_slot_pages in
  let base = off_grefs ~slots in
  Array.init (slots * slot_pages) (fun i -> Page.get_u32 ctrl (base + (4 * i)))

let attach ~ctrl ~data =
  if Page.get_u32 ctrl off_magic <> pool_magic then
    invalid_arg "Payload_pool.attach: control page not initialized";
  let slots = Page.get_u32 ctrl off_slots in
  let slot_pages = Page.get_u32 ctrl off_slot_pages in
  check_geometry ~what:"attach" ~slots ~slot_pages;
  if Array.length data <> slots * slot_pages then
    invalid_arg "Payload_pool.attach: wrong number of data pages";
  make_view ~ctrl ~data ~slots ~slot_pages

let slots t = t.p_slots
let slot_bytes t = t.p_slot_pages * Page.size
let inline_threshold t = Page.get_u32 t.ctrl off_inline_max
let max_loans_stamp t = Page.get_u32 t.ctrl off_max_loans
let gso_stamp t = Page.get_u32 t.ctrl off_gso_max

let fr_head t = Page.get_u32 t.ctrl off_fr_head
let fr_tail t = Page.get_u32 t.ctrl off_fr_tail
let free_slots t = (fr_tail t - fr_head t) land mask32

(* Free-ring protocol: the ring holds slot numbers; the sender pops free
   slots at [fr_head], the receiver pushes consumed slots back at
   [fr_tail].  Like the FIFO indices, each 32-bit index is only ever
   incremented by exactly one side, so no lock is needed. *)

let set_alloc_fault t f = t.alloc_fault <- f

let alloc_faulted t =
  match t.alloc_fault with None -> false | Some f -> f ()

let alloc_slot t =
  if free_slots t = 0 || alloc_faulted t then -1
  else begin
    let h = fr_head t in
    let slot = Page.get_u32 t.ctrl (off_ring + (4 * (h land (t.p_slots - 1)))) in
    Page.set_u32 t.ctrl off_fr_head (h + 1);
    slot
  end

let alloc t =
  let slot = alloc_slot t in
  if slot < 0 then None else Some slot

let unalloc t slot =
  (* Sender-local revert of its own most recent [alloc] (e.g. the FIFO
     refused the descriptor): rewind the head.  Only the allocating side
     may call this, and only before the descriptor is published. *)
  let h = fr_head t in
  let pos = off_ring + (4 * ((h - 1) land (t.p_slots - 1))) in
  Page.set_u32 t.ctrl pos slot;
  Page.set_u32 t.ctrl off_fr_head (h - 1)

let free t slot =
  if slot < 0 || slot >= t.p_slots then invalid_arg "Payload_pool.free: bad slot";
  let tl = fr_tail t in
  Page.set_u32 t.ctrl (off_ring + (4 * (tl land (t.p_slots - 1)))) slot;
  Page.set_u32 t.ctrl off_fr_tail (tl + 1)

(* Loaned-slot receive: instead of copying out and freeing immediately, the
   receiver marks the slot loaned and defers [free] until the application
   releases its view.  All state is in this view (see the type above). *)

let outstanding_loans t = t.pl_outstanding

let loan t slot =
  if slot < 0 || slot >= t.p_slots then invalid_arg "Payload_pool.loan: bad slot";
  if t.pl_loaned.(slot) then
    invalid_arg (Printf.sprintf "Payload_pool.loan: slot %d already loaned" slot);
  t.pl_loaned.(slot) <- true;
  t.pl_outstanding <- t.pl_outstanding + 1

let release t slot =
  if slot < 0 || slot >= t.p_slots then invalid_arg "Payload_pool.release: bad slot";
  if t.pl_loaned.(slot) then begin
    t.pl_loaned.(slot) <- false;
    t.pl_outstanding <- t.pl_outstanding - 1;
    if not t.pl_dead then free t slot
  end
  else if not t.pl_dead then
    invalid_arg (Printf.sprintf "Payload_pool.release: slot %d not loaned" slot)

let force_return_loans t =
  (* Channel teardown with loans still out (e.g. migration mid-stream): the
     pool pages are about to be unmapped, so every borrowed slot goes back
     on the free ring now and any release the application fires later is a
     no-op against this dead view. *)
  let returned = ref 0 in
  for slot = 0 to t.p_slots - 1 do
    if t.pl_loaned.(slot) then begin
      t.pl_loaned.(slot) <- false;
      t.pl_outstanding <- t.pl_outstanding - 1;
      free t slot;
      incr returned
    end
  done;
  t.pl_dead <- true;
  !returned

(* Byte access spanning a slot's pages. *)

let check_span t ~what ~slot ~off ~len =
  if slot < 0 || slot >= t.p_slots then
    invalid_arg (Printf.sprintf "Payload_pool.%s: bad slot" what);
  if off < 0 || len < 0 || off + len > slot_bytes t then
    invalid_arg (Printf.sprintf "Payload_pool.%s: out of slot bounds" what)

(* Iterative copy (the sender's once-per-packet path must not allocate,
   and a local recursive helper would close over the arguments).
   [write_from] is the scatter variant a jumbo sender uses to carve one
   oversized frame across several slots. *)
let write_from t ~slot ~src ~src_off ~len =
  check_span t ~what:"write" ~slot ~off:0 ~len;
  if src_off < 0 || src_off + len > Bytes.length src then
    invalid_arg "Payload_pool.write_from: out of src bounds";
  let base = slot * t.p_slot_pages in
  let at = ref 0 and src_off = ref src_off and left = ref len in
  while !left > 0 do
    let page = t.data.(base + (!at / Page.size)) in
    let page_off = !at mod Page.size in
    let chunk = min !left (Page.size - page_off) in
    Page.write page ~off:page_off ~src ~src_off:!src_off ~len:chunk;
    at := !at + chunk;
    src_off := !src_off + chunk;
    left := !left - chunk
  done

let write t ~slot ~src ~len = write_from t ~slot ~src ~src_off:0 ~len

let read t ~slot ~off ~len =
  check_span t ~what:"read" ~slot ~off ~len;
  let dst = Bytes.create len in
  let base = slot * t.p_slot_pages in
  let rec go at dst_off len =
    if len > 0 then begin
      let page = t.data.(base + (at / Page.size)) in
      let page_off = at mod Page.size in
      let chunk = min len (Page.size - page_off) in
      Page.read page ~off:page_off ~dst ~dst_off ~len:chunk;
      go (at + chunk) (dst_off + chunk) (len - chunk)
    end
  in
  go off 0 len;
  dst

(* Zero-alloc variant for the busy-poll receive loop: same walk as [read]
   but into a caller-owned scratch buffer. *)
let read_into t ~slot ~off ~len ~dst ~dst_off =
  check_span t ~what:"read_into" ~slot ~off ~len;
  if dst_off < 0 || dst_off + len > Bytes.length dst then
    invalid_arg "Payload_pool.read_into: out of dst bounds";
  let base = slot * t.p_slot_pages in
  let at = ref off and d = ref dst_off and left = ref len in
  while !left > 0 do
    let page = t.data.(base + (!at / Page.size)) in
    let page_off = !at mod Page.size in
    let chunk = min !left (Page.size - page_off) in
    Page.read page ~off:page_off ~dst ~dst_off:!d ~len:chunk;
    at := !at + chunk;
    d := !d + chunk;
    left := !left - chunk
  done

let sanity t =
  (* Slot conservation over the shared free ring: the live window
     [fr_head, fr_tail) must never exceed the pool size, and every slot
     number in it must be a valid, distinct slot.  Slots outside the
     window are in flight (allocated by the sender or being read by the
     receiver) — free + in-flight = total by construction, so the window
     bounds are the whole invariant. *)
  if Page.get_u32 t.ctrl off_magic <> pool_magic then Some "control page magic corrupt"
  else if Page.get_u32 t.ctrl off_slots <> t.p_slots then
    Some "slot count does not match attached view"
  else if free_slots t > t.p_slots then
    Some
      (Printf.sprintf "free ring overfull: head=%d tail=%d slots=%d" (fr_head t)
         (fr_tail t) t.p_slots)
  else begin
    let h = fr_head t and n = free_slots t in
    let seen = Array.make t.p_slots false in
    let rec go i =
      if i >= n then None
      else begin
        let slot = Page.get_u32 t.ctrl (off_ring + (4 * ((h + i) land (t.p_slots - 1)))) in
        if slot < 0 || slot >= t.p_slots then
          Some (Printf.sprintf "free ring holds bad slot %d" slot)
        else if seen.(slot) then
          Some (Printf.sprintf "slot %d on the free ring twice" slot)
        else if (not t.pl_dead) && t.pl_loaned.(slot) then
          Some (Printf.sprintf "slot %d on the free ring while loaned out" slot)
        else begin
          seen.(slot) <- true;
          go (i + 1)
        end
      end
    in
    go 0
  end
