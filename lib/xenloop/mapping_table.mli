(** The per-guest soft-state mapping table of co-resident guests
    ([guest-ID, MAC] pairs, paper Sect. 3.1/3.2).

    Populated exclusively from Dom0 announcements; replaced wholesale on
    every announcement so entries for departed guests age out — that is the
    soft-state property. *)

type t

val create : unit -> t

val update : t -> Proto.entry list -> unit
(** Replace the table contents with a fresh announcement. *)

val apply_delta : t -> joins:Proto.entry list -> leaves:int list -> unit
(** Apply a delta announcement: drop the guests in [leaves], replace or
    add the guests in [joins].  Entries not named stay untouched — under
    deltas, soft-state aging is driven by explicit leaves plus the TTL
    backstop rather than wholesale replacement. *)

val lookup : t -> Netcore.Mac.t -> int option
(** Guest id of the co-resident guest owning this MAC, if any. *)

val lookup_by_ip : t -> Netcore.Ip.t -> Proto.entry option
(** The co-resident guest owning this IP address, if any (used by the
    transport-level shortcut, which intercepts before MAC resolution). *)

val mem_domid : t -> int -> bool

val find_domid : t -> int -> Proto.entry option
(** The full announcement entry for this guest id (the listener reads the
    peer's advertised queue count from it before allocating a channel). *)

val entries : t -> Proto.entry list
val size : t -> int
val clear : t -> unit
