module Page = Memory.Page

let default_k = 13
let slot_bytes = 8
let mask32 = 0xFFFFFFFF

(* Descriptor page layout (byte offsets). *)
let off_front = 0
let off_back = 4
let off_state = 8
let off_k = 12
let off_npages = 16
let off_consumer_active = 20
let off_producer_waiting = 24
let off_grefs = 28

let max_k =
  (* The gref table must fit in the descriptor page after the header. *)
  let max_grefs = (Page.size - off_grefs) / 4 in
  (* 2^k slots * 8 bytes / 4096 per page <= max_grefs  =>  k <= 18. *)
  let rec find k =
    if (1 lsl k) * slot_bytes / Page.size > max_grefs then k - 1 else find (k + 1)
  in
  find 10

let data_pages_for ~k =
  let bytes = (1 lsl k) * slot_bytes in
  (bytes + Page.size - 1) / Page.size

(* Queue-indexed layout over one flat page pool: a multi-queue channel
   allocates all its pages in a single atomic grab and carves them into
   per-queue [desc_lc | data_lc | desc_cl | data_cl] stripes, so setup and
   teardown see every queue or none. *)

let pages_per_queue ~k = 2 * (data_pages_for ~k + 1)
let pages_for_queues ~k ~queues = queues * pages_per_queue ~k

type queue_pages = {
  qp_desc_lc : Page.t;
  qp_data_lc : Page.t array;
  qp_desc_cl : Page.t;
  qp_data_cl : Page.t array;
}

let carve_queue ~pool ~k ~index =
  let n = data_pages_for ~k in
  let base = index * pages_per_queue ~k in
  if base + pages_per_queue ~k > Array.length pool then
    invalid_arg "Fifo.carve_queue: pool too small";
  {
    qp_desc_lc = pool.(base);
    qp_data_lc = Array.sub pool (base + 1) n;
    qp_desc_cl = pool.(base + n + 1);
    qp_data_cl = Array.sub pool (base + n + 2) n;
  }

let entry_magic = 0x584C (* "XL" *)
let flag_desc = 1

(* Descriptor carries a socket-shortcut app datagram instead of an Ethernet
   frame: the slot payload starts with an 8-byte app header (src ip u32,
   src port u16, 2 pad) and [proto_hint] is the destination port. *)
let flag_app = 2

(* Jumbo descriptor (GSO, DESIGN.md §15): the entry scatter-gathers one
   oversized frame across several pool slots.  Layout after the metadata
   word (which carries the total frame length): one header word
   {u16 nchunks, u16 proto_hint, u32 reserved}, then [nchunks] chunk words
   {u16 slot, u16 0, u32 len}. *)
let flag_jumbo = 4

(* The frame's transport checksum was elided by the sender (trusted
   shared-memory path); the receiver must parse it verify-free and any
   re-entry into netfront/physnet must re-serialize (recompute). *)
let flag_csum_ok = 8

let max_jumbo_chunks = 32


let init ~desc ~data ~k =
  if k < 1 || k > max_k then invalid_arg "Fifo.init: k out of range";
  if Array.length data <> data_pages_for ~k then
    invalid_arg "Fifo.init: wrong number of data pages";
  Page.zero desc;
  Page.set_u32 desc off_front 0;
  Page.set_u32 desc off_back 0;
  Page.set_u32 desc off_state 1;
  Page.set_u32 desc off_k k;
  Page.set_u32 desc off_npages (Array.length data)

let write_grefs ~desc grefs =
  List.iteri (fun i gref -> Page.set_u32 desc (off_grefs + (4 * i)) gref) grefs

let read_grefs ~desc =
  let n = Page.get_u32 desc off_npages in
  List.init n (fun i -> Page.get_u32 desc (off_grefs + (4 * i)))

type t = {
  desc : Page.t;
  data : Page.t array;
  fifo_slots : int;
  (* Scratch descriptor for [pop_into]: the consumer's per-packet path
     reads the fields through the accessors below instead of allocating an
     [entry] per pop. *)
  mutable e_slot : int;
  mutable e_off : int;
  mutable e_len : int;
  mutable e_proto : int;
  mutable e_flags : int;
  (* Jumbo scratch: chunk (slot, len) pairs of the most recent jumbo pop,
     preallocated so the consumer hot path stays zero-alloc. *)
  mutable e_nchunks : int;
  e_chunk_slots : int array;
  e_chunk_lens : int array;
}

let attach ~desc ~data =
  let k = Page.get_u32 desc off_k in
  if k < 1 || k > max_k then invalid_arg "Fifo.attach: descriptor not initialized";
  if Array.length data <> data_pages_for ~k then
    invalid_arg "Fifo.attach: wrong number of data pages";
  {
    desc;
    data;
    fifo_slots = 1 lsl k;
    e_slot = 0;
    e_off = 0;
    e_len = 0;
    e_proto = 0;
    e_flags = 0;
    e_nchunks = 0;
    e_chunk_slots = Array.make max_jumbo_chunks 0;
    e_chunk_lens = Array.make max_jumbo_chunks 0;
  }

let slots t = t.fifo_slots
let max_packet t = (t.fifo_slots - 1) * slot_bytes

let front t = Page.get_u32 t.desc off_front
let back t = Page.get_u32 t.desc off_back

let used_slots t = (back t - front t) land mask32
let free_slots t = t.fifo_slots - used_slots t
let is_empty t = used_slots t = 0

let is_active t = Page.get_u32 t.desc off_state = 1
let mark_inactive t = Page.set_u32 t.desc off_state 0

(* Notification-suppression flags (engineering extension over the paper's
   Sect. 3.3 layout, in the spirit of Xen's RING_PUSH_REQUESTS_AND_CHECK_NOTIFY).
   Both live in the shared descriptor page so either endpoint can read the
   other's published state without a hypercall. *)

let consumer_active t = Page.get_u32 t.desc off_consumer_active = 1
let set_consumer_active t v = Page.set_u32 t.desc off_consumer_active (Bool.to_int v)

let producer_waiting t = Page.get_u32 t.desc off_producer_waiting = 1
let set_producer_waiting t v = Page.set_u32 t.desc off_producer_waiting (Bool.to_int v)

let force_indices ~desc v =
  Page.set_u32 desc off_front v;
  Page.set_u32 desc off_back v

(* Byte-level ring access spanning the data pages. *)

let ring_bytes t = t.fifo_slots * slot_bytes

(* Iterative (a local recursive helper would allocate a closure; these run
   once per packet on both hot paths). *)

let write_ring t ~at ~src ~src_off ~len =
  let size = ring_bytes t in
  let at = ref at and src_off = ref src_off and left = ref len in
  while !left > 0 do
    let a = !at mod size in
    let page = t.data.(a / Page.size) in
    let page_off = a mod Page.size in
    let chunk = min !left (Page.size - page_off) in
    Page.write page ~off:page_off ~src ~src_off:!src_off ~len:chunk;
    at := a + chunk;
    src_off := !src_off + chunk;
    left := !left - chunk
  done

let read_ring t ~at ~dst ~dst_off ~len =
  let size = ring_bytes t in
  let at = ref at and dst_off = ref dst_off and left = ref len in
  while !left > 0 do
    let a = !at mod size in
    let page = t.data.(a / Page.size) in
    let page_off = a mod Page.size in
    let chunk = min !left (Page.size - page_off) in
    Page.read page ~off:page_off ~dst ~dst_off:!dst_off ~len:chunk;
    at := a + chunk;
    dst_off := !dst_off + chunk;
    left := !left - chunk
  done

let slots_for_payload len = 1 + ((len + slot_bytes - 1) / slot_bytes)

let can_accept t len =
  len > 0 && len <= max_packet t
  && slots_for_payload len <= free_slots t
  && is_active t

let try_push t payload =
  let len = Bytes.length payload in
  (* Refusing an inactive FIFO closes a teardown race: a sender that was
     mid-push when the channel died must fail, not strand the frame in
     pages about to be reclaimed. *)
  if len = 0 || len > max_packet t || not (is_active t) then false
  else begin
    let needed = slots_for_payload len in
    if needed > free_slots t then false
    else begin
      let b = back t in
      let slot_index = b land (t.fifo_slots - 1) in
      let byte_at = slot_index * slot_bytes in
      (* Metadata word: u32 length, u16 magic, u16 flags (none set).
         An 8-byte slot never straddles a 4 KiB page, so the word is
         written in place — no scratch buffer, no allocation. *)
      let mpage = t.data.(byte_at / Page.size) in
      let moff = byte_at mod Page.size in
      Page.set_u32 mpage moff len;
      Page.set_u16 mpage (moff + 4) entry_magic;
      Page.set_u16 mpage (moff + 6) 0;
      write_ring t
        ~at:((byte_at + slot_bytes) mod ring_bytes t)
        ~src:payload ~src_off:0 ~len;
      (* Publish: the producer's atomic increment of [back]. *)
      Page.set_u32 t.desc off_back (b + needed);
      true
    end
  end

(* A descriptor entry occupies exactly two slots: the metadata word with
   the descriptor flag set, then one payload word carrying
   {slot, proto_hint, offset} into the channel's payload pool. *)

let try_push_desc t ?(flags = 0) ~slot ~offset ~len ~proto_hint () =
  if len <= 0 || not (is_active t) then false
  else if free_slots t < 2 then false
  else begin
    let b = back t in
    let slot_index = b land (t.fifo_slots - 1) in
    let byte_at = slot_index * slot_bytes in
    let mpage = t.data.(byte_at / Page.size) in
    let moff = byte_at mod Page.size in
    Page.set_u32 mpage moff len;
    Page.set_u16 mpage (moff + 4) entry_magic;
    Page.set_u16 mpage (moff + 6) (flag_desc lor flags);
    let at2 = (byte_at + slot_bytes) mod ring_bytes t in
    let ppage = t.data.(at2 / Page.size) in
    let poff = at2 mod Page.size in
    Page.set_u16 ppage poff slot;
    Page.set_u16 ppage (poff + 2) proto_hint;
    Page.set_u32 ppage (poff + 4) offset;
    Page.set_u32 t.desc off_back (b + 2);
    true
  end

(* A jumbo entry occupies 2 + nchunks slots: metadata word (total length,
   descriptor + jumbo flags), a header word {nchunks, proto_hint}, then one
   chunk word {slot, len} per pool slot of the scatter list.  The caller
   has already written the payload into those slots; on [false] it owns
   the rollback (unalloc in reverse order). *)

let jumbo_ring_slots nchunks = 2 + nchunks

let can_accept_jumbo t ~nchunks =
  nchunks >= 1 && nchunks <= max_jumbo_chunks
  && is_active t
  && jumbo_ring_slots nchunks <= free_slots t

let try_push_jumbo t ?(flags = 0) ~chunk_slots ~chunk_lens ~nchunks ~total_len
    ~proto_hint () =
  if
    total_len <= 0 || nchunks < 1 || nchunks > max_jumbo_chunks
    || nchunks > Array.length chunk_slots
    || nchunks > Array.length chunk_lens
    || not (is_active t)
    || free_slots t < jumbo_ring_slots nchunks
  then false
  else begin
    let b = back t in
    let slot_index = b land (t.fifo_slots - 1) in
    let byte_at = slot_index * slot_bytes in
    let mpage = t.data.(byte_at / Page.size) in
    let moff = byte_at mod Page.size in
    Page.set_u32 mpage moff total_len;
    Page.set_u16 mpage (moff + 4) entry_magic;
    Page.set_u16 mpage (moff + 6) (flag_desc lor flag_jumbo lor flags);
    let size = ring_bytes t in
    let word_at i =
      (* 8-byte slots never straddle a page. *)
      let a = (byte_at + (slot_bytes * i)) mod size in
      (t.data.(a / Page.size), a mod Page.size)
    in
    let hpage, hoff = word_at 1 in
    Page.set_u16 hpage hoff nchunks;
    Page.set_u16 hpage (hoff + 2) proto_hint;
    Page.set_u32 hpage (hoff + 4) 0;
    for i = 0 to nchunks - 1 do
      let cpage, coff = word_at (2 + i) in
      Page.set_u16 cpage coff chunk_slots.(i);
      Page.set_u16 cpage (coff + 2) 0;
      Page.set_u32 cpage (coff + 4) chunk_lens.(i)
    done;
    Page.set_u32 t.desc off_back (b + jumbo_ring_slots nchunks);
    true
  end

(* A payload goes through the pool when it is above the negotiated inline
   threshold but still small enough for both a pool slot and an inline
   fallback — keeping every descriptor-eligible packet degradable to the
   copy path when the pool runs dry. *)
let desc_eligible t ~pool ~inline_max len =
  len > inline_max && len <= Payload_pool.slot_bytes pool && len <= max_packet t

type push_outcome = Pushed of { desc : bool; pool_fallback : bool } | Push_failed

(* [push_entry] result codes.  Plain ints: the per-packet producer path
   must not allocate a [push_outcome] block per call. *)
let push_failed = 0
let pushed_inline = 1
let pushed_desc = 2
let pushed_inline_fallback = 3

let push_entry t ~pool ~inline_max ~proto_hint payload =
  let len = Bytes.length payload in
  match pool with
  | Some pool when desc_eligible t ~pool ~inline_max len ->
      let slot = Payload_pool.alloc_slot pool in
      if slot >= 0 then begin
        if not (is_active t) || free_slots t < 2 then begin
          (* Don't burn a pool slot on a push the FIFO refuses; the
             caller queues the frame and retries. *)
          Payload_pool.unalloc pool slot;
          push_failed
        end
        else begin
          Payload_pool.write pool ~slot ~src:payload ~len;
          if try_push_desc t ~slot ~offset:0 ~len ~proto_hint () then pushed_desc
          else begin
            Payload_pool.unalloc pool slot;
            push_failed
          end
        end
      end
      else if
        (* Pool exhausted: transparently degrade this packet to the
           inline copy path rather than blocking behind the receiver's
           slot returns. *)
        try_push t payload
      then pushed_inline_fallback
      else push_failed
  | _ -> if try_push t payload then pushed_inline else push_failed

let push t ?pool ?(inline_max = max_int) ?(proto_hint = 0) payload =
  let r = push_entry t ~pool ~inline_max ~proto_hint payload in
  if r = push_failed then Push_failed
  else
    Pushed { desc = r = pushed_desc; pool_fallback = r = pushed_inline_fallback }

let can_accept_entry t ?pool ?(inline_max = max_int) len =
  match pool with
  | Some pool when desc_eligible t ~pool ~inline_max len ->
      if Payload_pool.free_slots pool > 0 then
        len > 0 && free_slots t >= 2 && is_active t
      else can_accept t len
  | _ -> can_accept t len

type push_report = {
  pr_pushed : int;
  pr_desc : int;
  pr_inline : int;
  pr_fallbacks : int;
  pr_loans : int;
}

let push_many t ?pool ?(inline_max = max_int) ?(proto_hint = 0) ?(loans = false)
    payloads =
  let pushed = ref 0 and descs = ref 0 and inlines = ref 0 and fallbacks = ref 0 in
  let rec go = function
    | [] -> ()
    | payload :: rest ->
        let r = push_entry t ~pool ~inline_max ~proto_hint payload in
        if r <> push_failed then begin
          incr pushed;
          if r = pushed_desc then incr descs else incr inlines;
          if r = pushed_inline_fallback then incr fallbacks;
          go rest
        end
  in
  go payloads;
  {
    pr_pushed = !pushed;
    pr_desc = !descs;
    pr_inline = !inlines;
    pr_fallbacks = !fallbacks;
    (* On a loan-negotiated channel every descriptor push is loan-eligible
       at the receiver; inline and fallback entries are always copied. *)
    pr_loans = (if loans then !descs else 0);
  }

type entry =
  | Inline of Bytes.t
  | Desc of { d_slot : int; d_off : int; d_len : int; d_proto : int; d_flags : int }
  | Jumbo of {
      j_len : int;
      j_proto : int;
      j_flags : int;
      j_chunks : (int * int) array;  (** (pool slot, chunk length) *)
    }

(* [pop_into] result codes. *)
let popped_empty = -1
let popped_desc = -2
let popped_jumbo = -3

(* Shared by both consumer entry points: park the jumbo header + chunk
   vector in the scratch fields and advance [front].  The chunk count is
   the only structurally-load-bearing field — out of range means the ring
   framing itself is gone (the next entry cannot be located), so it raises
   like any other corrupt metadata.  Chunk slots/lengths are validated by
   the caller against its pool, where a bad vector is a droppable frame,
   not a dead channel. *)
let pop_jumbo_into_scratch t ~f ~byte_at ~len ~flags =
  let size = ring_bytes t in
  let word_at i =
    let a = (byte_at + (slot_bytes * i)) mod size in
    (t.data.(a / Page.size), a mod Page.size)
  in
  let hpage, hoff = word_at 1 in
  let nchunks = Page.get_u16 hpage hoff in
  if nchunks < 1 || nchunks > max_jumbo_chunks then
    invalid_arg "Fifo.pop: corrupt jumbo entry metadata";
  t.e_proto <- Page.get_u16 hpage (hoff + 2);
  t.e_len <- len;
  t.e_flags <- flags;
  t.e_nchunks <- nchunks;
  for i = 0 to nchunks - 1 do
    let cpage, coff = word_at (2 + i) in
    t.e_chunk_slots.(i) <- Page.get_u16 cpage coff;
    t.e_chunk_lens.(i) <- Page.get_u32 cpage (coff + 4)
  done;
  Page.set_u32 t.desc off_front (f + jumbo_ring_slots nchunks)

let pop_into t dst =
  if is_empty t then popped_empty
  else begin
    let f = front t in
    let slot_index = f land (t.fifo_slots - 1) in
    let byte_at = slot_index * slot_bytes in
    let mpage = t.data.(byte_at / Page.size) in
    let moff = byte_at mod Page.size in
    let len = Page.get_u32 mpage moff in
    let magic = Page.get_u16 mpage (moff + 4) in
    let flags = Page.get_u16 mpage (moff + 6) in
    if magic <> entry_magic || len <= 0 then
      invalid_arg "Fifo.pop: corrupt entry metadata"
    else if flags land flag_jumbo <> 0 then begin
      pop_jumbo_into_scratch t ~f ~byte_at ~len ~flags;
      popped_jumbo
    end
    else if flags land flag_desc <> 0 then begin
      let at2 = (byte_at + slot_bytes) mod ring_bytes t in
      let ppage = t.data.(at2 / Page.size) in
      let poff = at2 mod Page.size in
      t.e_slot <- Page.get_u16 ppage poff;
      t.e_proto <- Page.get_u16 ppage (poff + 2);
      t.e_off <- Page.get_u32 ppage (poff + 4);
      t.e_len <- len;
      t.e_flags <- flags;
      Page.set_u32 t.desc off_front (f + 2);
      popped_desc
    end
    else if len > max_packet t then invalid_arg "Fifo.pop: corrupt entry metadata"
    else if Bytes.length dst < len then
      invalid_arg "Fifo.pop_into: destination buffer too small"
    else begin
      read_ring t
        ~at:((byte_at + slot_bytes) mod ring_bytes t)
        ~dst ~dst_off:0 ~len;
      Page.set_u32 t.desc off_front (f + slots_for_payload len);
      len
    end
  end

let desc_slot t = t.e_slot
let desc_off t = t.e_off
let desc_len t = t.e_len
let desc_proto t = t.e_proto
let desc_flags t = t.e_flags
let desc_nchunks t = t.e_nchunks
let desc_chunk_slot t i = t.e_chunk_slots.(i)
let desc_chunk_len t i = t.e_chunk_lens.(i)

let pop_entry t =
  if is_empty t then None
  else begin
    let f = front t in
    let slot_index = f land (t.fifo_slots - 1) in
    let byte_at = slot_index * slot_bytes in
    let mpage = t.data.(byte_at / Page.size) in
    let moff = byte_at mod Page.size in
    let len = Page.get_u32 mpage moff in
    let magic = Page.get_u16 mpage (moff + 4) in
    let flags = Page.get_u16 mpage (moff + 6) in
    if magic <> entry_magic || len <= 0 then
      invalid_arg "Fifo.pop: corrupt entry metadata"
    else if flags land flag_jumbo <> 0 then begin
      pop_jumbo_into_scratch t ~f ~byte_at ~len ~flags;
      let j_chunks =
        Array.init t.e_nchunks (fun i ->
            (t.e_chunk_slots.(i), t.e_chunk_lens.(i)))
      in
      Some (Jumbo { j_len = len; j_proto = t.e_proto; j_flags = flags; j_chunks })
    end
    else if flags land flag_desc <> 0 then begin
      let at2 = (byte_at + slot_bytes) mod ring_bytes t in
      let ppage = t.data.(at2 / Page.size) in
      let poff = at2 mod Page.size in
      let d_slot = Page.get_u16 ppage poff in
      let d_proto = Page.get_u16 ppage (poff + 2) in
      let d_off = Page.get_u32 ppage (poff + 4) in
      Page.set_u32 t.desc off_front (f + 2);
      Some (Desc { d_slot; d_off; d_len = len; d_proto; d_flags = flags })
    end
    else if len > max_packet t then invalid_arg "Fifo.pop: corrupt entry metadata"
    else begin
      let payload = Bytes.create len in
      read_ring t
        ~at:((byte_at + slot_bytes) mod ring_bytes t)
        ~dst:payload ~dst_off:0 ~len;
      Page.set_u32 t.desc off_front (f + slots_for_payload len);
      Some (Inline payload)
    end
  end

let pop t =
  match pop_entry t with
  | None -> None
  | Some (Inline payload) -> Some payload
  | Some (Desc _ | Jumbo _) ->
      (* A descriptor on a channel whose consumer has no pool mapped means
         the endpoints disagree about the negotiation — treat it like any
         other framing corruption. *)
      invalid_arg "Fifo.pop: descriptor entry on an inline-only consumer"

let sanity t =
  (* The invariant checker's view: every property here must hold at any
     instant between two well-formed shared-memory operations, whatever
     faults the harness injected around them. *)
  let k = Page.get_u32 t.desc off_k in
  let state = Page.get_u32 t.desc off_state in
  let ca = Page.get_u32 t.desc off_consumer_active in
  let pw = Page.get_u32 t.desc off_producer_waiting in
  if k < 1 || k > max_k then Some (Printf.sprintf "k out of range: %d" k)
  else if 1 lsl k <> t.fifo_slots then
    Some (Printf.sprintf "k/slots mismatch: k=%d slots=%d" k t.fifo_slots)
  else if Page.get_u32 t.desc off_npages <> Array.length t.data then
    Some "npages does not match attached data pages"
  else if state <> 0 && state <> 1 then
    Some (Printf.sprintf "state flag corrupt: %d" state)
  else if ca <> 0 && ca <> 1 then
    Some (Printf.sprintf "consumer-active flag corrupt: %d" ca)
  else if pw <> 0 && pw <> 1 then
    Some (Printf.sprintf "producer-waiting flag corrupt: %d" pw)
  else if used_slots t > t.fifo_slots then
    Some
      (Printf.sprintf "ring overfull: front=%d back=%d slots=%d" (front t)
         (back t) t.fifo_slots)
  else None
