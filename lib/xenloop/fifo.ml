module Page = Memory.Page

let default_k = 13
let slot_bytes = 8
let mask32 = 0xFFFFFFFF

(* Descriptor page layout (byte offsets). *)
let off_front = 0
let off_back = 4
let off_state = 8
let off_k = 12
let off_npages = 16
let off_consumer_active = 20
let off_producer_waiting = 24
let off_grefs = 28

let max_k =
  (* The gref table must fit in the descriptor page after the header. *)
  let max_grefs = (Page.size - off_grefs) / 4 in
  (* 2^k slots * 8 bytes / 4096 per page <= max_grefs  =>  k <= 18. *)
  let rec find k =
    if (1 lsl k) * slot_bytes / Page.size > max_grefs then k - 1 else find (k + 1)
  in
  find 10

let data_pages_for ~k =
  let bytes = (1 lsl k) * slot_bytes in
  (bytes + Page.size - 1) / Page.size

(* Queue-indexed layout over one flat page pool: a multi-queue channel
   allocates all its pages in a single atomic grab and carves them into
   per-queue [desc_lc | data_lc | desc_cl | data_cl] stripes, so setup and
   teardown see every queue or none. *)

let pages_per_queue ~k = 2 * (data_pages_for ~k + 1)
let pages_for_queues ~k ~queues = queues * pages_per_queue ~k

type queue_pages = {
  qp_desc_lc : Page.t;
  qp_data_lc : Page.t array;
  qp_desc_cl : Page.t;
  qp_data_cl : Page.t array;
}

let carve_queue ~pool ~k ~index =
  let n = data_pages_for ~k in
  let base = index * pages_per_queue ~k in
  if base + pages_per_queue ~k > Array.length pool then
    invalid_arg "Fifo.carve_queue: pool too small";
  {
    qp_desc_lc = pool.(base);
    qp_data_lc = Array.sub pool (base + 1) n;
    qp_desc_cl = pool.(base + n + 1);
    qp_data_cl = Array.sub pool (base + n + 2) n;
  }

let entry_magic = 0x584C (* "XL" *)
let flag_desc = 1

let get_u32_int page off = Int32.to_int (Page.get_u32 page off) land mask32
let set_u32_int page off v = Page.set_u32 page off (Int32.of_int (v land mask32))

let init ~desc ~data ~k =
  if k < 1 || k > max_k then invalid_arg "Fifo.init: k out of range";
  if Array.length data <> data_pages_for ~k then
    invalid_arg "Fifo.init: wrong number of data pages";
  Page.zero desc;
  set_u32_int desc off_front 0;
  set_u32_int desc off_back 0;
  set_u32_int desc off_state 1;
  set_u32_int desc off_k k;
  set_u32_int desc off_npages (Array.length data)

let write_grefs ~desc grefs =
  List.iteri (fun i gref -> set_u32_int desc (off_grefs + (4 * i)) gref) grefs

let read_grefs ~desc =
  let n = get_u32_int desc off_npages in
  List.init n (fun i -> get_u32_int desc (off_grefs + (4 * i)))

type t = {
  desc : Page.t;
  data : Page.t array;
  fifo_slots : int;
  scratch : Bytes.t;
      (* per-view scratch for entry metadata words: the push/pop hot paths
         run once per packet and must not allocate for bookkeeping *)
}

let attach ~desc ~data =
  let k = get_u32_int desc off_k in
  if k < 1 || k > max_k then invalid_arg "Fifo.attach: descriptor not initialized";
  if Array.length data <> data_pages_for ~k then
    invalid_arg "Fifo.attach: wrong number of data pages";
  { desc; data; fifo_slots = 1 lsl k; scratch = Bytes.create slot_bytes }

let slots t = t.fifo_slots
let max_packet t = (t.fifo_slots - 1) * slot_bytes

let front t = get_u32_int t.desc off_front
let back t = get_u32_int t.desc off_back

let used_slots t = (back t - front t) land mask32
let free_slots t = t.fifo_slots - used_slots t
let is_empty t = used_slots t = 0

let is_active t = get_u32_int t.desc off_state = 1
let mark_inactive t = set_u32_int t.desc off_state 0

(* Notification-suppression flags (engineering extension over the paper's
   Sect. 3.3 layout, in the spirit of Xen's RING_PUSH_REQUESTS_AND_CHECK_NOTIFY).
   Both live in the shared descriptor page so either endpoint can read the
   other's published state without a hypercall. *)

let consumer_active t = get_u32_int t.desc off_consumer_active = 1
let set_consumer_active t v = set_u32_int t.desc off_consumer_active (Bool.to_int v)

let producer_waiting t = get_u32_int t.desc off_producer_waiting = 1
let set_producer_waiting t v = set_u32_int t.desc off_producer_waiting (Bool.to_int v)

let force_indices ~desc v =
  set_u32_int desc off_front v;
  set_u32_int desc off_back v

(* Byte-level ring access spanning the data pages. *)

let ring_bytes t = t.fifo_slots * slot_bytes

let write_ring t ~at ~src ~src_off ~len =
  let size = ring_bytes t in
  let rec go at src_off len =
    if len > 0 then begin
      let at = at mod size in
      let page = t.data.(at / Page.size) in
      let page_off = at mod Page.size in
      let chunk = min len (Page.size - page_off) in
      Page.write page ~off:page_off ~src ~src_off ~len:chunk;
      go (at + chunk) (src_off + chunk) (len - chunk)
    end
  in
  go at src_off len

let read_ring t ~at ~dst ~dst_off ~len =
  let size = ring_bytes t in
  let rec go at dst_off len =
    if len > 0 then begin
      let at = at mod size in
      let page = t.data.(at / Page.size) in
      let page_off = at mod Page.size in
      let chunk = min len (Page.size - page_off) in
      Page.read page ~off:page_off ~dst ~dst_off ~len:chunk;
      go (at + chunk) (dst_off + chunk) (len - chunk)
    end
  in
  go at dst_off len

let slots_for_payload len = 1 + ((len + slot_bytes - 1) / slot_bytes)

let can_accept t len =
  len > 0 && len <= max_packet t
  && slots_for_payload len <= free_slots t
  && is_active t

let try_push t payload =
  let len = Bytes.length payload in
  (* Refusing an inactive FIFO closes a teardown race: a sender that was
     mid-push when the channel died must fail, not strand the frame in
     pages about to be reclaimed. *)
  if len = 0 || len > max_packet t || not (is_active t) then false
  else begin
    let needed = slots_for_payload len in
    if needed > free_slots t then false
    else begin
      let b = back t in
      let slot_index = b land (t.fifo_slots - 1) in
      let byte_at = slot_index * slot_bytes in
      (* Metadata word: u32 length, u16 magic, u16 flags (none set). *)
      let meta = t.scratch in
      Bytes.set_int32_le meta 0 (Int32.of_int len);
      Bytes.set_uint16_le meta 4 entry_magic;
      Bytes.set_uint16_le meta 6 0;
      write_ring t ~at:byte_at ~src:meta ~src_off:0 ~len:slot_bytes;
      write_ring t
        ~at:((byte_at + slot_bytes) mod ring_bytes t)
        ~src:payload ~src_off:0 ~len;
      (* Publish: the producer's atomic increment of [back]. *)
      set_u32_int t.desc off_back (b + needed);
      true
    end
  end

(* A descriptor entry occupies exactly two slots: the metadata word with
   the descriptor flag set, then one payload word carrying
   {slot, proto_hint, offset} into the channel's payload pool. *)

let try_push_desc t ~slot ~offset ~len ~proto_hint =
  if len <= 0 || not (is_active t) then false
  else if free_slots t < 2 then false
  else begin
    let b = back t in
    let slot_index = b land (t.fifo_slots - 1) in
    let byte_at = slot_index * slot_bytes in
    let meta = t.scratch in
    Bytes.set_int32_le meta 0 (Int32.of_int len);
    Bytes.set_uint16_le meta 4 entry_magic;
    Bytes.set_uint16_le meta 6 flag_desc;
    write_ring t ~at:byte_at ~src:meta ~src_off:0 ~len:slot_bytes;
    Bytes.set_uint16_le meta 0 slot;
    Bytes.set_uint16_le meta 2 proto_hint;
    Bytes.set_int32_le meta 4 (Int32.of_int offset);
    write_ring t
      ~at:((byte_at + slot_bytes) mod ring_bytes t)
      ~src:meta ~src_off:0 ~len:slot_bytes;
    set_u32_int t.desc off_back (b + 2);
    true
  end

(* A payload goes through the pool when it is above the negotiated inline
   threshold but still small enough for both a pool slot and an inline
   fallback — keeping every descriptor-eligible packet degradable to the
   copy path when the pool runs dry. *)
let desc_eligible t ~pool ~inline_max len =
  len > inline_max && len <= Payload_pool.slot_bytes pool && len <= max_packet t

type push_outcome = Pushed of { desc : bool; pool_fallback : bool } | Push_failed

let push t ?pool ?(inline_max = max_int) ?(proto_hint = 0) payload =
  let len = Bytes.length payload in
  match pool with
  | Some pool when desc_eligible t ~pool ~inline_max len -> (
      match Payload_pool.alloc pool with
      | Some slot ->
          if not (is_active t) || free_slots t < 2 then begin
            (* Don't burn a pool slot on a push the FIFO refuses; the
               caller queues the frame and retries. *)
            Payload_pool.unalloc pool slot;
            Push_failed
          end
          else begin
            Payload_pool.write pool ~slot ~src:payload ~len;
            if try_push_desc t ~slot ~offset:0 ~len ~proto_hint then
              Pushed { desc = true; pool_fallback = false }
            else begin
              Payload_pool.unalloc pool slot;
              Push_failed
            end
          end
      | None ->
          (* Pool exhausted: transparently degrade this packet to the
             inline copy path rather than blocking behind the receiver's
             slot returns. *)
          if try_push t payload then Pushed { desc = false; pool_fallback = true }
          else Push_failed)
  | _ ->
      if try_push t payload then Pushed { desc = false; pool_fallback = false }
      else Push_failed

let can_accept_entry t ?pool ?(inline_max = max_int) len =
  match pool with
  | Some pool when desc_eligible t ~pool ~inline_max len ->
      if Payload_pool.free_slots pool > 0 then
        len > 0 && free_slots t >= 2 && is_active t
      else can_accept t len
  | _ -> can_accept t len

type push_report = {
  pr_pushed : int;
  pr_desc : int;
  pr_inline : int;
  pr_fallbacks : int;
}

let push_many t ?pool ?inline_max ?proto_hint payloads =
  let pushed = ref 0 and descs = ref 0 and inlines = ref 0 and fallbacks = ref 0 in
  let rec go = function
    | [] -> ()
    | payload :: rest -> (
        match push t ?pool ?inline_max ?proto_hint payload with
        | Push_failed -> ()
        | Pushed { desc; pool_fallback } ->
            incr pushed;
            if desc then incr descs else incr inlines;
            if pool_fallback then incr fallbacks;
            go rest)
  in
  go payloads;
  { pr_pushed = !pushed; pr_desc = !descs; pr_inline = !inlines; pr_fallbacks = !fallbacks }

type entry =
  | Inline of Bytes.t
  | Desc of { d_slot : int; d_off : int; d_len : int; d_proto : int }

let pop_entry t =
  if is_empty t then None
  else begin
    let f = front t in
    let slot_index = f land (t.fifo_slots - 1) in
    let byte_at = slot_index * slot_bytes in
    let meta = t.scratch in
    read_ring t ~at:byte_at ~dst:meta ~dst_off:0 ~len:slot_bytes;
    let len = Int32.to_int (Bytes.get_int32_le meta 0) in
    let magic = Bytes.get_uint16_le meta 4 in
    let flags = Bytes.get_uint16_le meta 6 in
    if magic <> entry_magic || len <= 0 then
      invalid_arg "Fifo.pop: corrupt entry metadata"
    else if flags land flag_desc <> 0 then begin
      read_ring t
        ~at:((byte_at + slot_bytes) mod ring_bytes t)
        ~dst:meta ~dst_off:0 ~len:slot_bytes;
      let d_slot = Bytes.get_uint16_le meta 0 in
      let d_proto = Bytes.get_uint16_le meta 2 in
      let d_off = Int32.to_int (Bytes.get_int32_le meta 4) in
      set_u32_int t.desc off_front (f + 2);
      Some (Desc { d_slot; d_off; d_len = len; d_proto })
    end
    else if len > max_packet t then invalid_arg "Fifo.pop: corrupt entry metadata"
    else begin
      let payload = Bytes.create len in
      read_ring t
        ~at:((byte_at + slot_bytes) mod ring_bytes t)
        ~dst:payload ~dst_off:0 ~len;
      set_u32_int t.desc off_front (f + slots_for_payload len);
      Some (Inline payload)
    end
  end

let pop t =
  match pop_entry t with
  | None -> None
  | Some (Inline payload) -> Some payload
  | Some (Desc _) ->
      (* A descriptor on a channel whose consumer has no pool mapped means
         the endpoints disagree about the negotiation — treat it like any
         other framing corruption. *)
      invalid_arg "Fifo.pop: descriptor entry on an inline-only consumer"

let sanity t =
  (* The invariant checker's view: every property here must hold at any
     instant between two well-formed shared-memory operations, whatever
     faults the harness injected around them. *)
  let k = get_u32_int t.desc off_k in
  let state = get_u32_int t.desc off_state in
  let ca = get_u32_int t.desc off_consumer_active in
  let pw = get_u32_int t.desc off_producer_waiting in
  if k < 1 || k > max_k then Some (Printf.sprintf "k out of range: %d" k)
  else if 1 lsl k <> t.fifo_slots then
    Some (Printf.sprintf "k/slots mismatch: k=%d slots=%d" k t.fifo_slots)
  else if get_u32_int t.desc off_npages <> Array.length t.data then
    Some "npages does not match attached data pages"
  else if state <> 0 && state <> 1 then
    Some (Printf.sprintf "state flag corrupt: %d" state)
  else if ca <> 0 && ca <> 1 then
    Some (Printf.sprintf "consumer-active flag corrupt: %d" ca)
  else if pw <> 0 && pw <> 1 then
    Some (Printf.sprintf "producer-waiting flag corrupt: %d" pw)
  else if used_slots t > t.fifo_slots then
    Some
      (Printf.sprintf "ring overfull: front=%d back=%d slots=%d" (front t)
         (back t) t.fifo_slots)
  else None
