(** XenLoop control-plane messages.

    These travel as a distinct layer-3 protocol type (paper Sect. 3.2/3.3):
    discovery announcements from Dom0, and the out-of-band channel
    bootstrap handshake between guests, carried over the standard
    netfront–netback path while the fast channel does not exist yet.

    {b Queue-count negotiation.}  Multi-queue channels (an engineering
    extension over the paper's single FIFO pair) negotiate their queue
    count through this protocol: each guest advertises its
    {!Hypervisor.Params.t.xenloop_queues} in its XenStore advert, Dom0
    relays it in the {!Announce} entries, and the listener allocates
    [min(own, peer's advertised)] queue pairs.  The wire format is
    version-gated: the original single-queue tags are emitted bit-for-bit
    whenever a count of 1 is being expressed, so a queues=1 peer
    interoperates unchanged and a negotiated-to-1 handshake is exactly the
    paper-faithful byte stream.

    {b Zero-copy negotiation} (DESIGN.md §7) gates the same way: the
    zero-copy capability bit and the payload-pool grants ride dedicated
    tags emitted only when the capability is actually being expressed, so
    a [xenloop_zerocopy=off] guest — or an old binary — keeps producing
    and consuming the earlier byte streams unchanged and the channel
    falls back to the inline copy path.

    {b Loan negotiation} (DESIGN.md §11) adds one more rung: the
    loaned-slot-receive capability bit rides tags emitted only when a
    guest actually advertises it ([xenloop_loans] and zero-copy both on),
    so every earlier configuration keeps its exact byte streams.
    [Create_channel] needs no loan variant — the negotiated loan credit is
    stamped into the payload-pool control page, not the wire format.

    {b Segmentation-offload negotiation} (DESIGN.md §15) is the next
    rung: the gso capability bit rides tags emitted only when a guest
    actually advertises it ([xenloop_gso] on top of zero-copy), and —
    like the loan credit — the negotiated jumbo ceiling travels as a
    payload-pool control-page stamp, so [Create_channel] again needs no
    variant and every gso-off configuration keeps its exact byte
    streams. *)

type entry = {
  entry_domid : int;
  entry_mac : Netcore.Mac.t;
  entry_ip : Netcore.Ip.t;
  entry_queues : int;
      (** queue pairs this guest advertises per channel (1 for a
          single-queue peer, and when decoded from the legacy format) *)
  entry_zc : bool;
      (** the guest advertises the zero-copy descriptor channel (false
          when decoded from any pre-zero-copy format) *)
  entry_loans : bool;
      (** the guest advertises loaned-slot receive on top of zero-copy
          (false when decoded from any pre-loan format) *)
  entry_gso : bool;
      (** the guest advertises jumbo-descriptor segmentation offload on
          top of zero-copy (false when decoded from any pre-gso format) *)
}

type queue_grant = {
  qg_lc_gref : Memory.Grant_table.gref;
      (** descriptor page of this queue's listener→connector FIFO *)
  qg_cl_gref : Memory.Grant_table.gref;
      (** descriptor page of this queue's connector→listener FIFO *)
  qg_port : Evtchn.Event_channel.port;
      (** this queue's dedicated event channel *)
  qg_lc_pool : Memory.Grant_table.gref option;
      (** control page of this queue's listener→connector payload pool
          (present only on a zero-copy channel; both directions together) *)
  qg_cl_pool : Memory.Grant_table.gref option;
}

type t =
  | Announce of entry list
      (** Dom0's collated [guest-ID, MAC, queues, zc] list of willing
          guests. *)
  | Delta_announce of {
      da_base : int;
          (** the epoch this delta starts from — the recipient's acked
              epoch as Dom0 last read it (0 together with [da_full]) *)
      da_epoch : int;  (** the epoch this message brings the recipient to *)
      da_full : bool;
          (** [da_joins] is the complete willing-guest list (resync);
              [da_leaves] is empty *)
      da_joins : entry list;
      da_leaves : int list;  (** domids gone since [da_base] *)
    }
      (** Versioned delta announcement (DESIGN.md §12): sent only to
          guests that advertised the "dl" token, so steady-state announce
          bytes per guest are O(churn), not O(cluster size).  An empty
          delta ([da_base = da_epoch], no joins/leaves) is the keep-alive
          heartbeat that refreshes the recipient's soft-state TTL. *)
  | Request_channel of {
      requester_domid : int;
      max_queues : int;
      zerocopy : bool;
      loans : bool;
      gso : bool;
    }
      (** Sent by the higher-ID guest to ask the lower-ID guest (the
          listener) to create the channel resources; carries the
          requester's advertised queue count and zero-copy/loan/gso
          capabilities. *)
  | Create_channel of { listener_domid : int; queues : queue_grant list }
      (** One grant/port triple per negotiated queue (never empty). *)
  | Channel_ack of { connector_domid : int }
  | App_payload of {
      src_ip : Netcore.Ip.t;
      src_port : int;
      dst_port : int;
      payload : Bytes.t;
    }
      (** Transport-level shortcut datagram (the paper's future-work
          direction, Sect. 6): an application payload carried over the
          channel with socket addressing only — no IP or UDP processing on
          either side. *)

val encode : t -> Bytes.t
val decode : Bytes.t -> (t, string) result

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
