(* The announcement list is kept verbatim (for [entries]/[size] and the
   soft-state wholesale replacement), with MAC-, IP- and domid-keyed
   hashtable indices alongside: [lookup]/[lookup_by_ip]/[mem_domid] run
   once per outgoing packet, so they must not scan the list.  On duplicate
   keys within one announcement the first entry wins, matching the old
   [List.find]-based scans. *)

type t = {
  mutable current : Proto.entry list;
  by_mac : (Netcore.Mac.t, Proto.entry) Hashtbl.t;
  by_ip : (Netcore.Ip.t, Proto.entry) Hashtbl.t;
  by_domid : (int, Proto.entry) Hashtbl.t;
}

let create () =
  {
    current = [];
    by_mac = Hashtbl.create 16;
    by_ip = Hashtbl.create 16;
    by_domid = Hashtbl.create 16;
  }

let add_if_absent tbl key entry =
  if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key entry

let reindex t =
  Hashtbl.reset t.by_mac;
  Hashtbl.reset t.by_ip;
  Hashtbl.reset t.by_domid;
  List.iter
    (fun e ->
      add_if_absent t.by_mac e.Proto.entry_mac e;
      add_if_absent t.by_ip e.Proto.entry_ip e;
      add_if_absent t.by_domid e.Proto.entry_domid e)
    t.current

let update t entries =
  t.current <- entries;
  reindex t

(* Delta application (DESIGN.md §12): remove the left guests and any
   older incarnation of the joining ones, then append the joins.  One
   rebuild of the indices per delta keeps the per-packet lookups O(1)
   without a per-join O(n) reindex. *)
let apply_delta t ~joins ~leaves =
  let gone d =
    List.mem d leaves
    || List.exists (fun e -> e.Proto.entry_domid = d) joins
  in
  t.current <-
    List.filter (fun e -> not (gone e.Proto.entry_domid)) t.current @ joins;
  reindex t

let lookup t mac =
  Option.map (fun e -> e.Proto.entry_domid) (Hashtbl.find_opt t.by_mac mac)

let lookup_by_ip t ip = Hashtbl.find_opt t.by_ip ip

let mem_domid t domid = Hashtbl.mem t.by_domid domid
let find_domid t domid = Hashtbl.find_opt t.by_domid domid

let entries t = t.current
let size t = List.length t.current

let clear t =
  t.current <- [];
  reindex t
