let advert_key = "xenloop"

let advert_path ~domid = Xenstore.domain_path domid ^ "/" ^ advert_key

type t = {
  machine : Hypervisor.Machine.t;
  dom0_stack : Netstack.Stack.t;
  timer : Sim.Engine.timer;
  mutable last_scan : Proto.entry list;
  mutable sent : int;
}

let scan t =
  let xs = Hypervisor.Machine.xenstore t.machine in
  let ids =
    match Xenstore.directory xs ~caller:Xenstore.dom0 ~path:"/local/domain" with
    | Ok ids -> List.filter_map int_of_string_opt ids
    | Error _ -> []
  in
  List.filter_map
    (fun domid ->
      if domid = 0 then None
      else
        match Xenstore.read xs ~caller:Xenstore.dom0 ~path:(advert_path ~domid) with
        | Error _ -> None
        | Ok advert -> (
            (* The advert value is the guest's queue count, optionally
               followed by capability tokens ("4 zc" for a zero-copy
               guest).  The original single-queue module wrote "1", and
               anything unparsable is treated the same way (version
               gating); an old Dom0 reading "4 zc" likewise fails its
               int parse and falls back to one queue, no pools. *)
            let queues, zc =
              match String.split_on_char ' ' (String.trim advert) with
              | count :: caps ->
                  ( (match int_of_string_opt count with
                    | Some q when q >= 1 -> q
                    | Some _ | None -> 1),
                    List.mem "zc" caps )
              | [] -> (1, false)
            in
            match
              ( Xenstore.read xs ~caller:Xenstore.dom0
                  ~path:(Xenstore.domain_path domid ^ "/mac"),
                Xenstore.read xs ~caller:Xenstore.dom0
                  ~path:(Xenstore.domain_path domid ^ "/ip") )
            with
            | Ok mac_str, Ok ip_str -> (
                match (Netcore.Mac.of_string mac_str, Netcore.Ip.of_string ip_str) with
                | Some mac, Some ip ->
                    Some
                      {
                        Proto.entry_domid = domid;
                        entry_mac = mac;
                        entry_ip = ip;
                        entry_queues = queues;
                        entry_zc = zc;
                      }
                | _ -> None)
            | _ -> None))
    (List.sort compare ids)

let announce t entries =
  let message = Proto.encode (Proto.Announce entries) in
  List.iter
    (fun e ->
      t.sent <- t.sent + 1;
      Netstack.Stack.send_ctrl t.dom0_stack ~dst_mac:e.Proto.entry_mac message)
    entries

let scan_now t =
  let entries = scan t in
  t.last_scan <- entries;
  announce t entries

let start ~machine ~dom0_stack () =
  let period = (Hypervisor.Machine.params machine).Hypervisor.Params.discovery_period in
  let rec t =
    lazy
      {
        machine;
        dom0_stack;
        timer =
          Sim.Engine.every (Hypervisor.Machine.engine machine) period (fun () ->
              scan_now (Lazy.force t));
        last_scan = [];
        sent = 0;
      }
  in
  Lazy.force t

let stop t = Sim.Engine.cancel t.timer

let willing_guests t = t.last_scan
let announcements_sent t = t.sent
