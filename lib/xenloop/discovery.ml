let advert_key = "xenloop"

let advert_path ~domid = Xenstore.domain_path domid ^ "/" ^ advert_key

(* The guest's acked-epoch node lives in its own subtree (so the guest may
   write it) under a key that does NOT end in "/xenloop" — the discovery
   watch suffix-matches advert writes only, so ack writes never trigger a
   scan storm. *)
let ack_key = "xenloop-ack"

let ack_path ~domid = Xenstore.domain_path domid ^ "/" ^ ack_key

(* How many epochs of joins/leaves Dom0 remembers.  A guest whose acked
   epoch fell out of the window gets a full resync instead of a delta. *)
let delta_log_window = 256

(* Per-recipient delta bookkeeping, kept only while the guest is in the
   scan result. *)
type peer_track = {
  mutable pt_delta : bool;  (** advertised the "dl" token this scan *)
  mutable pt_sent_epoch : int;  (** epoch as of our last actual send *)
  mutable pt_last_sent : Sim.Time.t;
}

type t = {
  machine : Hypervisor.Machine.t;
  dom0_stack : Netstack.Stack.t;
  timer : Sim.Engine.timer;
  mutable watch : Xenstore.watch option;
  mutable scan_pending : bool;
  mutable last_scan : Proto.entry list;
  mutable sent : int;
  mutable announce_fault : (domid:int -> bool) option;
  mutable dropped : int;
  (* Delta-announcement state (DESIGN.md §12); inert when
     [xenloop_delta_announce] is off. *)
  mutable epoch : int;
  mutable delta_log : (int * Proto.entry list * int list) list;
      (** newest first: (epoch, joins, leaves) *)
  tracks : (int, peer_track) Hashtbl.t;
  mutable suppressed : int;
  mutable bytes_sent : int;
  mutable batches : int;
  mutable full_resyncs : int;
}

(* One scan returns each willing guest's announcement entry plus whether
   it advertised delta capability ("dl"); the capability is Dom0-private —
   other guests never need to know it, so it stays out of [Proto.entry]. *)
let scan t =
  let xs = Hypervisor.Machine.xenstore t.machine in
  let ids =
    match Xenstore.directory xs ~caller:Xenstore.dom0 ~path:"/local/domain" with
    | Ok ids -> List.filter_map int_of_string_opt ids
    | Error _ -> []
  in
  List.filter_map
    (fun domid ->
      if domid = 0 then None
      else
        match Xenstore.read xs ~caller:Xenstore.dom0 ~path:(advert_path ~domid) with
        | Error _ -> None
        | Ok advert -> (
            (* The advert value is the guest's queue count, optionally
               followed by capability tokens ("4 zc" for a zero-copy
               guest).  The original single-queue module wrote "1", and
               anything unparsable is treated the same way (version
               gating); an old Dom0 reading "4 zc" likewise fails its
               int parse and falls back to one queue, no pools. *)
            let queues, zc, loans, gso, delta =
              match String.split_on_char ' ' (String.trim advert) with
              | count :: caps ->
                  ( (match int_of_string_opt count with
                    | Some q when q >= 1 -> q
                    | Some _ | None -> 1),
                    List.mem "zc" caps,
                    (* Loans and gso ride on top of the descriptor
                       channel; an advert claiming "ln" or "gs" without
                       "zc" is malformed and version-gates down to plain
                       zero-copy-off. *)
                    List.mem "zc" caps && List.mem "ln" caps,
                    List.mem "zc" caps && List.mem "gs" caps,
                    List.mem "dl" caps )
              | [] -> (1, false, false, false, false)
            in
            match
              ( Xenstore.read xs ~caller:Xenstore.dom0
                  ~path:(Xenstore.domain_path domid ^ "/mac"),
                Xenstore.read xs ~caller:Xenstore.dom0
                  ~path:(Xenstore.domain_path domid ^ "/ip") )
            with
            | Ok mac_str, Ok ip_str -> (
                match (Netcore.Mac.of_string mac_str, Netcore.Ip.of_string ip_str) with
                | Some mac, Some ip ->
                    Some
                      ( {
                          Proto.entry_domid = domid;
                          entry_mac = mac;
                          entry_ip = ip;
                          entry_queues = queues;
                          entry_zc = zc;
                          entry_loans = loans;
                          entry_gso = gso;
                        },
                        delta )
                | _ -> None)
            | _ -> None))
    (List.sort compare ids)

let deliver t ~dst_domid ~dst_mac message =
  let drop =
    match t.announce_fault with None -> false | Some f -> f ~domid:dst_domid
  in
  if drop then t.dropped <- t.dropped + 1
  else begin
    t.sent <- t.sent + 1;
    t.bytes_sent <- t.bytes_sent + Bytes.length message;
    Netstack.Stack.send_ctrl t.dom0_stack ~dst_mac message
  end

(* Legacy announcement round: encode the full list once, send a copy to
   every willing guest.  This is the paper's behaviour and the exact byte
   stream every pre-delta configuration keeps producing. *)
let announce t entries =
  let message = Proto.encode (Proto.Announce entries) in
  List.iter
    (fun e ->
      deliver t ~dst_domid:e.Proto.entry_domid ~dst_mac:e.Proto.entry_mac message)
    entries

let read_ack t domid =
  let xs = Hypervisor.Machine.xenstore t.machine in
  match Xenstore.read xs ~caller:Xenstore.dom0 ~path:(ack_path ~domid) with
  | Ok s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 0 && v <= t.epoch -> v
      | Some _ | None -> 0)
  | Error _ -> 0

(* Collapse the log entries (base, current] into one net (joins, leaves)
   pair, oldest first.  [None] when the base fell out of the bounded log.
   A guest that joined and left inside the window appears in neither
   list; one that left and rejoined appears as a plain join (the guest
   applies joins as replace-or-add). *)
let aggregate t ~base =
  if base >= t.epoch then Some ([], [])
  else begin
    let span = List.filter (fun (e, _, _) -> e > base) t.delta_log in
    if List.length span <> t.epoch - base then None
    else begin
      let span = List.rev span (* oldest first *) in
      let joins = Hashtbl.create 8 in
      let leaves = Hashtbl.create 8 in
      List.iter
        (fun (_, j, l) ->
          List.iter
            (fun d ->
              if Hashtbl.mem joins d then Hashtbl.remove joins d
              else Hashtbl.replace leaves d ())
            l;
          List.iter
            (fun e ->
              Hashtbl.remove leaves e.Proto.entry_domid;
              Hashtbl.replace joins e.Proto.entry_domid e)
            j)
        span;
      let js =
        Hashtbl.fold (fun _ e acc -> e :: acc) joins []
        |> List.sort (fun a b -> compare a.Proto.entry_domid b.Proto.entry_domid)
      in
      let ls = Hashtbl.fold (fun d () acc -> d :: acc) leaves [] |> List.sort compare in
      Some (js, ls)
    end
  end

(* Delta announcement round.  Recipients are grouped by the message they
   need — one encode per distinct (base, kind) serves the whole group —
   and a recipient with nothing new to hear is skipped entirely until the
   refresh deadline, where it gets a tiny heartbeat (delta peers) or one
   full list (legacy peers) to keep its soft-state TTL alive. *)
let announce_delta t scanned =
  let engine = Hypervisor.Machine.engine t.machine in
  let p = Hypervisor.Machine.params t.machine in
  let now = Sim.Engine.now engine in
  (* The heartbeat exists to keep guests' soft-state TTLs alive, so its
     deadline is clamped to half the TTL regardless of the configured
     refresh — a test world compressing the TTL to milliseconds must not
     be starved by a 10 s refresh default. *)
  let refresh =
    let r = p.Hypervisor.Params.xenloop_announce_refresh in
    let ttl = p.Hypervisor.Params.xenloop_softstate_ttl in
    if not (Sim.Time.span_is_positive ttl) then r
    else begin
      let half = Sim.Time.ns_int64 (Int64.div (Sim.Time.to_ns ttl) 2L) in
      if
        Sim.Time.span_is_positive r
        && Int64.compare (Sim.Time.to_ns r) (Sim.Time.to_ns half) < 0
      then r
      else half
    end
  in
  let encoded : (int, Bytes.t) Hashtbl.t = Hashtbl.create 4 in
  (* Message cache keys: base epoch for a delta, -1 full resync, -2
     legacy full list. *)
  let message key build =
    match Hashtbl.find_opt encoded key with
    | Some m -> m
    | None ->
        let m = Proto.encode (build ()) in
        Hashtbl.replace encoded key m;
        t.batches <- t.batches + 1;
        m
  in
  let full_resync () =
    t.full_resyncs <- t.full_resyncs + 1;
    message (-1) (fun () ->
        Proto.Delta_announce
          {
            da_base = 0;
            da_epoch = t.epoch;
            da_full = true;
            da_joins = t.last_scan;
            da_leaves = [];
          })
  in
  List.iter
    (fun (e, dl) ->
      let domid = e.Proto.entry_domid in
      let track =
        match Hashtbl.find_opt t.tracks domid with
        | Some tr -> tr
        | None ->
            let tr =
              { pt_delta = dl; pt_sent_epoch = -1; pt_last_sent = Sim.Time.zero }
            in
            Hashtbl.replace t.tracks domid tr;
            tr
      in
      track.pt_delta <- dl;
      let due_refresh =
        track.pt_sent_epoch < 0
        || (not (Sim.Time.span_is_positive refresh))
        || Sim.Time.(now >= Sim.Time.add track.pt_last_sent refresh)
      in
      let send m =
        track.pt_sent_epoch <- t.epoch;
        track.pt_last_sent <- now;
        deliver t ~dst_domid:domid ~dst_mac:e.Proto.entry_mac m
      in
      if dl then begin
        let acked = read_ack t domid in
        if acked < t.epoch then
          match aggregate t ~base:acked with
          | Some (joins, leaves) ->
              (* A guest's own entry may ride along (it filters itself on
                 receipt, like it does for full announcements); keeping the
                 message recipient-independent is what lets one encode
                 serve every guest acked at the same epoch. *)
              send
                (message acked (fun () ->
                     Proto.Delta_announce
                       {
                         da_base = acked;
                         da_epoch = t.epoch;
                         da_full = false;
                         da_joins = joins;
                         da_leaves = leaves;
                       }))
          | None -> send (full_resync ())
        else if due_refresh then
          (* Nothing new — a heartbeat only refreshes the TTL. *)
          send
            (message t.epoch (fun () ->
                 Proto.Delta_announce
                   {
                     da_base = t.epoch;
                     da_epoch = t.epoch;
                     da_full = false;
                     da_joins = [];
                     da_leaves = [];
                   }))
        else t.suppressed <- t.suppressed + 1
      end
      else if track.pt_sent_epoch < t.epoch || due_refresh then
        (* Version gating: a legacy peer keeps hearing the classic full
           list — tags 1/6/9/12, exactly the pre-delta byte stream —
           whenever anything changed or its refresh is due. *)
        send (message (-2) (fun () -> Proto.Announce t.last_scan))
      else t.suppressed <- t.suppressed + 1)
    scanned

let scan_now t =
  let scanned = scan t in
  let entries = List.map fst scanned in
  let p = Hypervisor.Machine.params t.machine in
  if not p.Hypervisor.Params.xenloop_delta_announce then begin
    (* Pre-delta behaviour, bit for bit: full list to everyone, every
       round, no acked-epoch reads, no suppression. *)
    t.last_scan <- entries;
    announce t entries
  end
  else begin
    let prev = t.last_scan in
    let joins =
      List.filter
        (fun e ->
          match
            List.find_opt
              (fun o -> o.Proto.entry_domid = e.Proto.entry_domid)
              prev
          with
          | None -> true
          | Some o -> o <> e)
        entries
    in
    let leaves =
      List.filter_map
        (fun o ->
          if
            List.exists
              (fun e -> e.Proto.entry_domid = o.Proto.entry_domid)
              entries
          then None
          else Some o.Proto.entry_domid)
        prev
    in
    if joins <> [] || leaves <> [] then begin
      t.epoch <- t.epoch + 1;
      t.delta_log <- (t.epoch, joins, leaves) :: t.delta_log;
      (* Bound the log; a guest acked before the window resyncs in full. *)
      if List.length t.delta_log > delta_log_window then
        t.delta_log <-
          List.filteri (fun i _ -> i < delta_log_window) t.delta_log
    end;
    t.last_scan <- entries;
    (* Forget recipients that left; a rejoin starts from a fresh track
       (and a fresh ack node, written by the guest's advertise). *)
    let present = Hashtbl.create 16 in
    List.iter (fun (e, _) -> Hashtbl.replace present e.Proto.entry_domid ()) scanned;
    let stale =
      Hashtbl.fold
        (fun d _ acc -> if Hashtbl.mem present d then acc else d :: acc)
        t.tracks []
    in
    List.iter (Hashtbl.remove t.tracks) stale;
    announce_delta t scanned
  end

(* React to xenbus traffic on the advert nodes: insmod/rmmod updates the
   mapping table within ~100us instead of waiting out a full period.  The
   periodic scan stays as the soft-state backstop — a lost watch event
   only delays convergence until the next round. *)
let on_store_event t path _event =
  let suffix = "/" ^ advert_key in
  let matches =
    String.length path >= String.length suffix
    && String.sub path
         (String.length path - String.length suffix)
         (String.length suffix)
       = suffix
  in
  if matches && not t.scan_pending then begin
    t.scan_pending <- true;
    Sim.Engine.after
      (Hypervisor.Machine.engine t.machine)
      (Sim.Time.us 100)
      (fun () ->
        t.scan_pending <- false;
        scan_now t)
  end

let start ~machine ~dom0_stack () =
  let period = (Hypervisor.Machine.params machine).Hypervisor.Params.discovery_period in
  let rec t =
    lazy
      {
        machine;
        dom0_stack;
        timer =
          Sim.Engine.every (Hypervisor.Machine.engine machine) period (fun () ->
              scan_now (Lazy.force t));
        watch = None;
        scan_pending = false;
        last_scan = [];
        sent = 0;
        announce_fault = None;
        dropped = 0;
        epoch = 0;
        delta_log = [];
        tracks = Hashtbl.create 16;
        suppressed = 0;
        bytes_sent = 0;
        batches = 0;
        full_resyncs = 0;
      }
  in
  let t = Lazy.force t in
  (match
     Xenstore.watch
       (Hypervisor.Machine.xenstore machine)
       ~caller:Xenstore.dom0 ~path:"/local/domain"
       (fun path event -> on_store_event t path event)
   with
  | Ok w -> t.watch <- Some w
  | Error _ -> ());
  t

let stop t =
  Sim.Engine.cancel t.timer;
  match t.watch with
  | Some w ->
      Xenstore.unwatch (Hypervisor.Machine.xenstore t.machine) w;
      t.watch <- None
  | None -> ()

let willing_guests t = t.last_scan
let announcements_sent t = t.sent
let announcements_suppressed t = t.suppressed
let announce_bytes t = t.bytes_sent
let announce_batches t = t.batches
let full_resyncs t = t.full_resyncs
let current_epoch t = t.epoch

let set_announce_fault t f = t.announce_fault <- f
let announcements_dropped t = t.dropped
