let advert_key = "xenloop"

let advert_path ~domid = Xenstore.domain_path domid ^ "/" ^ advert_key

type t = {
  machine : Hypervisor.Machine.t;
  dom0_stack : Netstack.Stack.t;
  timer : Sim.Engine.timer;
  mutable watch : Xenstore.watch option;
  mutable scan_pending : bool;
  mutable last_scan : Proto.entry list;
  mutable sent : int;
  mutable announce_fault : (domid:int -> bool) option;
  mutable dropped : int;
}

let scan t =
  let xs = Hypervisor.Machine.xenstore t.machine in
  let ids =
    match Xenstore.directory xs ~caller:Xenstore.dom0 ~path:"/local/domain" with
    | Ok ids -> List.filter_map int_of_string_opt ids
    | Error _ -> []
  in
  List.filter_map
    (fun domid ->
      if domid = 0 then None
      else
        match Xenstore.read xs ~caller:Xenstore.dom0 ~path:(advert_path ~domid) with
        | Error _ -> None
        | Ok advert -> (
            (* The advert value is the guest's queue count, optionally
               followed by capability tokens ("4 zc" for a zero-copy
               guest).  The original single-queue module wrote "1", and
               anything unparsable is treated the same way (version
               gating); an old Dom0 reading "4 zc" likewise fails its
               int parse and falls back to one queue, no pools. *)
            let queues, zc, loans =
              match String.split_on_char ' ' (String.trim advert) with
              | count :: caps ->
                  ( (match int_of_string_opt count with
                    | Some q when q >= 1 -> q
                    | Some _ | None -> 1),
                    List.mem "zc" caps,
                    (* Loans ride on top of the descriptor channel; an
                       advert claiming "ln" without "zc" is malformed and
                       version-gates down to plain zero-copy-off. *)
                    List.mem "zc" caps && List.mem "ln" caps )
              | [] -> (1, false, false)
            in
            match
              ( Xenstore.read xs ~caller:Xenstore.dom0
                  ~path:(Xenstore.domain_path domid ^ "/mac"),
                Xenstore.read xs ~caller:Xenstore.dom0
                  ~path:(Xenstore.domain_path domid ^ "/ip") )
            with
            | Ok mac_str, Ok ip_str -> (
                match (Netcore.Mac.of_string mac_str, Netcore.Ip.of_string ip_str) with
                | Some mac, Some ip ->
                    Some
                      {
                        Proto.entry_domid = domid;
                        entry_mac = mac;
                        entry_ip = ip;
                        entry_queues = queues;
                        entry_zc = zc;
                        entry_loans = loans;
                      }
                | _ -> None)
            | _ -> None))
    (List.sort compare ids)

let announce t entries =
  let message = Proto.encode (Proto.Announce entries) in
  List.iter
    (fun e ->
      let drop =
        match t.announce_fault with
        | None -> false
        | Some f -> f ~domid:e.Proto.entry_domid
      in
      if drop then t.dropped <- t.dropped + 1
      else begin
        t.sent <- t.sent + 1;
        Netstack.Stack.send_ctrl t.dom0_stack ~dst_mac:e.Proto.entry_mac message
      end)
    entries

let scan_now t =
  let entries = scan t in
  t.last_scan <- entries;
  announce t entries

(* React to xenbus traffic on the advert nodes: insmod/rmmod updates the
   mapping table within ~100us instead of waiting out a full period.  The
   periodic scan stays as the soft-state backstop — a lost watch event
   only delays convergence until the next round. *)
let on_store_event t path _event =
  let suffix = "/" ^ advert_key in
  let matches =
    String.length path >= String.length suffix
    && String.sub path
         (String.length path - String.length suffix)
         (String.length suffix)
       = suffix
  in
  if matches && not t.scan_pending then begin
    t.scan_pending <- true;
    Sim.Engine.after
      (Hypervisor.Machine.engine t.machine)
      (Sim.Time.us 100)
      (fun () ->
        t.scan_pending <- false;
        scan_now t)
  end

let start ~machine ~dom0_stack () =
  let period = (Hypervisor.Machine.params machine).Hypervisor.Params.discovery_period in
  let rec t =
    lazy
      {
        machine;
        dom0_stack;
        timer =
          Sim.Engine.every (Hypervisor.Machine.engine machine) period (fun () ->
              scan_now (Lazy.force t));
        watch = None;
        scan_pending = false;
        last_scan = [];
        sent = 0;
        announce_fault = None;
        dropped = 0;
      }
  in
  let t = Lazy.force t in
  (match
     Xenstore.watch
       (Hypervisor.Machine.xenstore machine)
       ~caller:Xenstore.dom0 ~path:"/local/domain"
       (fun path event -> on_store_event t path event)
   with
  | Ok w -> t.watch <- Some w
  | Error _ -> ());
  t

let stop t =
  Sim.Engine.cancel t.timer;
  match t.watch with
  | Some w ->
      Xenstore.unwatch (Hypervisor.Machine.xenstore t.machine) w;
      t.watch <- None
  | None -> ()

let willing_guests t = t.last_scan
let announcements_sent t = t.sent

let set_announce_fault t f = t.announce_fault <- f
let announcements_dropped t = t.dropped
