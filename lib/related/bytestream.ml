module Page = Memory.Page

let mask32 = 0xFFFFFFFF

(* Descriptor layout: u32 head (writer), u32 tail (reader), u32 size,
   u32 state. *)
let off_head = 0
let off_tail = 4
let off_size = 8
let off_state = 12

let pages_for ~size = (size + Page.size - 1) / Page.size

let get page off = Page.get_u32 page off
let set page off v = Page.set_u32 page off (v land mask32)

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let init ~desc ~data ~size =
  if not (is_power_of_two size) then
    invalid_arg "Bytestream.init: size must be a power of two";
  if Array.length data <> pages_for ~size then
    invalid_arg "Bytestream.init: wrong number of data pages";
  Page.zero desc;
  set desc off_head 0;
  set desc off_tail 0;
  set desc off_size size;
  set desc off_state 1

type t = { desc : Page.t; data : Page.t array; size : int }

let attach ~desc ~data =
  let size = get desc off_size in
  if not (is_power_of_two size) then
    invalid_arg "Bytestream.attach: descriptor not initialized";
  if Array.length data <> pages_for ~size then
    invalid_arg "Bytestream.attach: wrong number of data pages";
  { desc; data; size }

let capacity t = t.size
let used t = (get t.desc off_head - get t.desc off_tail) land mask32
let free t = t.size - used t

let is_active t = get t.desc off_state = 1
let mark_inactive t = set t.desc off_state 0

let copy_in t ~at ~src ~off ~len =
  let rec go at off len =
    if len > 0 then begin
      let at = at land (t.size - 1) in
      let page = t.data.(at / Page.size) in
      let page_off = at mod Page.size in
      let chunk = min len (min (Page.size - page_off) (t.size - at)) in
      Page.write page ~off:page_off ~src ~src_off:off ~len:chunk;
      go (at + chunk) (off + chunk) (len - chunk)
    end
  in
  go at off len

let copy_out t ~at ~dst ~off ~len =
  let rec go at off len =
    if len > 0 then begin
      let at = at land (t.size - 1) in
      let page = t.data.(at / Page.size) in
      let page_off = at mod Page.size in
      let chunk = min len (min (Page.size - page_off) (t.size - at)) in
      Page.read page ~off:page_off ~dst ~dst_off:off ~len:chunk;
      go (at + chunk) (off + chunk) (len - chunk)
    end
  in
  go at off len

let write t ~src ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length src then
    invalid_arg "Bytestream.write: bad range";
  let n = min len (free t) in
  if n > 0 then begin
    let head = get t.desc off_head in
    copy_in t ~at:head ~src ~off ~len:n;
    set t.desc off_head (head + n)
  end;
  n

let read t ~dst ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length dst then
    invalid_arg "Bytestream.read: bad range";
  let n = min len (used t) in
  if n > 0 then begin
    let tail = get t.desc off_tail in
    copy_out t ~at:tail ~dst ~off ~len:n;
    set t.desc off_tail (tail + n)
  end;
  n
