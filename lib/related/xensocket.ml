module Page = Memory.Page
module Gt = Memory.Grant_table
module Ec = Evtchn.Event_channel
module Domain = Hypervisor.Domain
module Machine = Hypervisor.Machine
module Params = Hypervisor.Params

type handle = { desc_gref : Gt.gref; port : Ec.port }

type side = {
  machine : Machine.t;
  domain : Domain.t;
  bs : Bytestream.t;
  my_port : Ec.port;
  wake : Sim.Condition.t;
  mutable closed : bool;
  mutable signals : int;
  cleanup : unit -> unit;
}

type reader = side
type writer = side

let params side = Machine.params side.machine
let cpu side = Domain.cpu side.domain

let notify_peer side =
  side.signals <- side.signals + 1;
  Sim.Resource.use (cpu side) (params side).Params.hypercall;
  ignore
    (Ec.notify (Machine.evtchn side.machine)
       ~dom:(Domain.domid side.domain)
       ~port:side.my_port
       ~meter:(Domain.meter side.domain))

let copy_cost side n = Params.xenloop_copy_cost (params side) n

let create_pipe ~machine ~owner ~writer_domid ?(size = 65536) () =
  let owner_id = Domain.domid owner in
  let gt =
    match Machine.grant_table machine owner_id with
    | Some gt -> gt
    | None -> invalid_arg "Xensocket.create_pipe: owner has no grant table"
  in
  let n = Bytestream.pages_for ~size in
  let frames = Machine.frame_allocator machine in
  let pool =
    match
      Memory.Frame_allocator.allocate_many frames ~owner:owner_id ~count:(n + 1)
    with
    | Ok pool -> pool
    | Error Memory.Frame_allocator.Out_of_frames ->
        invalid_arg "Xensocket.create_pipe: out of machine memory"
  in
  let desc = pool.(0) in
  let data = Array.sub pool 1 n in
  Bytestream.init ~desc ~data ~size;
  let desc_gref = Gt.grant_access gt ~to_dom:writer_domid ~page:desc ~writable:true in
  let data_grefs =
    Array.to_list
      (Array.map
         (fun page -> Gt.grant_access gt ~to_dom:writer_domid ~page ~writable:true)
         data)
  in
  (* Stash the data grefs in the descriptor page, XenLoop-FIFO style, at a
     fixed offset past the stream header. *)
  List.iteri
    (fun i gref -> Page.set_u32 desc (64 + (4 * i)) gref)
    data_grefs;
  Page.set_u32 desc 60 n;
  let ec = Machine.evtchn machine in
  let port = Ec.alloc_unbound ec ~dom:owner_id ~remote:writer_domid in
  let side =
    lazy
      {
        machine;
        domain = owner;
        bs = Bytestream.attach ~desc ~data;
        my_port = port;
        wake = Sim.Condition.create ();
        closed = false;
        signals = 0;
        cleanup =
          (fun () ->
            List.iter (fun gref -> ignore (Gt.end_access gt gref))
              (desc_gref :: data_grefs);
            Array.iter
              (fun page ->
                Memory.Frame_allocator.release frames ~owner:owner_id page)
              pool;
            Ec.close ec ~dom:owner_id ~port);
      }
  in
  let side = Lazy.force side in
  Ec.set_handler ec ~dom:owner_id ~port (fun () -> Sim.Condition.broadcast side.wake);
  (side, { desc_gref; port })

let connect ~machine ~domain ~reader_domid handle =
  let my_id = Domain.domid domain in
  match Machine.grant_table machine reader_domid with
  | None -> Error "reader domain has no grant table"
  | Some reader_gt -> (
      let meter = Domain.meter domain in
      match Gt.map reader_gt handle.desc_gref ~by:my_id ~meter with
      | Error e -> Error (Gt.error_to_string e)
      | Ok desc -> (
          let n = Page.get_u32 desc 60 in
          let data_grefs =
            List.init n (fun i -> Page.get_u32 desc (64 + (4 * i)))
          in
          let mapped = List.filter_map
              (fun gref ->
                match Gt.map reader_gt gref ~by:my_id ~meter with
                | Ok page -> Some page
                | Error _ -> None)
              data_grefs
          in
          if List.length mapped <> n then Error "failed to map data pages"
          else
            let ec = Machine.evtchn machine in
            match
              Ec.bind_interdomain ec ~dom:my_id ~remote:reader_domid
                ~remote_port:handle.port
            with
            | Error e -> Error (Format.asprintf "%a" Ec.pp_error e)
            | Ok my_port ->
                let side =
                  {
                    machine;
                    domain;
                    bs = Bytestream.attach ~desc ~data:(Array.of_list mapped);
                    my_port;
                    wake = Sim.Condition.create ();
                    closed = false;
                    signals = 0;
                    cleanup =
                      (fun () ->
                        List.iter
                          (fun gref ->
                            ignore (Gt.unmap reader_gt gref ~by:my_id ~meter))
                          (handle.desc_gref :: data_grefs);
                        Ec.close ec ~dom:my_id ~port:my_port);
                  }
                in
                Ec.set_handler ec ~dom:my_id ~port:my_port (fun () ->
                    Sim.Condition.broadcast side.wake);
                Ok side))

let send w data =
  if w.closed then invalid_arg "Xensocket.send: closed";
  let p = params w in
  Sim.Resource.use (cpu w) p.Params.syscall;
  let len = Bytes.length data in
  let off = ref 0 in
  while !off < len do
    if not (Bytestream.is_active w.bs) then invalid_arg "Xensocket.send: peer gone";
    let was_empty = Bytestream.used w.bs = 0 in
    let n = Bytestream.write w.bs ~src:data ~off:!off ~len:(len - !off) in
    if n > 0 then begin
      Sim.Resource.use (cpu w) (copy_cost w n);
      off := !off + n;
      (* Signal only when the reader might be sleeping on empty. *)
      if was_empty then notify_peer w
    end
    else Sim.Condition.await w.wake
  done

let recv r ~max =
  if r.closed then invalid_arg "Xensocket.recv: closed";
  let p = params r in
  Sim.Resource.use (cpu r) p.Params.syscall;
  let buf = Bytes.create max in
  let n = ref 0 in
  let finished = ref false in
  while not !finished do
    let was_full = Bytestream.free r.bs = 0 in
    let got = Bytestream.read r.bs ~dst:buf ~off:0 ~len:max in
    if got > 0 then begin
      Sim.Resource.use (cpu r) (copy_cost r got);
      if was_full then notify_peer r;
      n := got;
      finished := true
    end
    else if not (Bytestream.is_active r.bs) then finished := true
    else Sim.Condition.await r.wake
  done;
  Bytes.sub buf 0 !n

let close_common side =
  if not side.closed then begin
    side.closed <- true;
    Bytestream.mark_inactive side.bs;
    (try notify_peer side with _ -> ());
    side.cleanup ()
  end

let close_writer = close_common
let close_reader = close_common

let signals_sent w = w.signals
let reader_signals_sent r = r.signals
