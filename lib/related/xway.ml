module Tcp = Netstack.Tcp
module Domain = Hypervisor.Domain

type conn =
  | Shm of { rx : Xensocket.reader; tx : Xensocket.writer }
  | Plain of Tcp.conn

type listener = {
  l_t : t;
  l_port : int;
  tcp_listener : Tcp.listener;
  shm_queue : conn Sim.Mailbox.t;
}

and t = {
  machine : Hypervisor.Machine.t;
  domain : Domain.t;
  tcp : Tcp.t;
  peers : (Netcore.Ip.t, t) Hashtbl.t;
  listeners : (int, listener) Hashtbl.t;
}

let attach ~machine ~domain ~tcp =
  { machine; domain; tcp; peers = Hashtbl.create 4; listeners = Hashtbl.create 4 }

let register_peer t ~peer_ip peer =
  if not (t.machine == peer.machine) then
    invalid_arg "Xway.register_peer: peers must be co-resident";
  Hashtbl.replace t.peers peer_ip peer

let listen t ~port =
  match Tcp.listen t.tcp ~port with
  | Error e -> Error e
  | Ok tcp_listener ->
      let listener = { l_t = t; l_port = port; tcp_listener; shm_queue = Sim.Mailbox.create () } in
      Hashtbl.replace t.listeners port listener;
      Ok listener

let accept listener =
  (* Whichever path delivers first: shared-memory handshakes arrive through
     the mailbox, TCP connections through the regular accept queue. *)
  let rec wait () =
    match Sim.Mailbox.recv_opt listener.shm_queue with
    | Some conn -> conn
    | None -> (
        match Tcp.accept_opt listener.tcp_listener with
        | Some tcp_conn -> Plain tcp_conn
        | None ->
            Sim.Engine.sleep (Sim.Time.us 100);
            wait ())
  in
  wait ()

(* Build the duplex pipe pair: one one-way pipe per direction, each owned
   by its receiver (so teardown responsibility is symmetric). *)
let establish_shm ~client ~server =
  let client_rx, handle_cs =
    Xensocket.create_pipe ~machine:client.machine ~owner:client.domain
      ~writer_domid:(Domain.domid server.domain) ()
  in
  let server_rx, handle_sc =
    Xensocket.create_pipe ~machine:server.machine ~owner:server.domain
      ~writer_domid:(Domain.domid client.domain) ()
  in
  match
    ( Xensocket.connect ~machine:client.machine ~domain:client.domain
        ~reader_domid:(Domain.domid server.domain) handle_sc,
      Xensocket.connect ~machine:server.machine ~domain:server.domain
        ~reader_domid:(Domain.domid client.domain) handle_cs )
  with
  | Ok client_tx, Ok server_tx ->
      Some
        ( Shm { rx = client_rx; tx = client_tx },
          Shm { rx = server_rx; tx = server_tx } )
  | _ -> None

let connect t ~dst ~dst_port =
  let shm =
    match Hashtbl.find_opt t.peers dst with
    | None -> None
    | Some peer -> (
        match Hashtbl.find_opt peer.listeners dst_port with
        | None -> None
        | Some listener -> (
            match establish_shm ~client:t ~server:peer with
            | None -> None
            | Some (client_conn, server_conn) ->
                Sim.Mailbox.send listener.shm_queue server_conn;
                Some client_conn))
  in
  match shm with
  | Some conn -> Ok conn
  | None -> (
      (* Not co-resident (or not configured): ordinary TCP. *)
      match Tcp.connect t.tcp ~dst ~dst_port () with
      | Ok c -> Ok (Plain c)
      | Error e -> Error e)

let send conn data =
  match conn with
  | Shm { tx; _ } -> Xensocket.send tx data
  | Plain c -> Tcp.send c data

let recv conn ~max =
  match conn with
  | Shm { rx; _ } -> Xensocket.recv rx ~max
  | Plain c -> Tcp.recv c ~max

let close conn =
  match conn with
  | Shm { rx; tx } ->
      Xensocket.close_writer tx;
      Xensocket.close_reader rx
  | Plain c -> Tcp.close c

let is_shared_memory = function Shm _ -> true | Plain _ -> false
