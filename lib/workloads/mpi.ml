module Tcp = Netstack.Tcp

type conn = Tcp.conn

let of_tcp conn = conn

let port_counter = ref 7001

let fresh_port () =
  let p = !port_counter in
  incr port_counter;
  p

let establish ~client ~server ~dst ?port () =
  let port = match port with Some p -> p | None -> fresh_port () in
  let listener =
    match Tcp.listen server.Host.tcp ~port with
    | Ok l -> l
    | Error e -> failwith (Format.asprintf "Mpi.establish: listen: %a" Tcp.pp_error e)
  in
  let server_conn = ref None in
  Sim.Engine.spawn (Host.engine server) (fun () ->
      server_conn := Some (Tcp.accept listener));
  let client_conn =
    match Tcp.connect client.Host.tcp ~dst ~dst_port:port () with
    | Ok c -> c
    | Error e -> failwith (Format.asprintf "Mpi.establish: connect: %a" Tcp.pp_error e)
  in
  (* The final handshake ACK is in flight; give the acceptor a moment. *)
  let retries = ref 100 in
  while !server_conn = None && !retries > 0 do
    decr retries;
    Sim.Engine.sleep (Sim.Time.us 100)
  done;
  match !server_conn with
  | Some sc ->
      (* MPI transports over TCP disable Nagle: windowed pipelined sends
         must not serialize behind the autocork waiting for ACKs. *)
      Tcp.set_nodelay client_conn true;
      Tcp.set_nodelay sc true;
      (client_conn, sc)
  | None -> failwith "Mpi.establish: accept never completed"

let send conn payload =
  let len = Bytes.length payload in
  let framed = Bytes.create (4 + len) in
  Bytes.set_int32_be framed 0 (Int32.of_int len);
  Bytes.blit payload 0 framed 4 len;
  Tcp.send conn framed

let recv conn =
  let header = Tcp.recv_exact conn 4 in
  let len = Int32.to_int (Bytes.get_int32_be header 0) in
  if len = 0 then Bytes.empty else Tcp.recv_exact conn len

let send_empty conn = send conn Bytes.empty

let close = Tcp.close
