(** netperf-style benchmarks: TCP_RR, UDP_RR (1-byte request–response
    transactions) and TCP_STREAM / UDP_STREAM (unidirectional bulk
    throughput). *)

type rr_result = {
  transactions : int;
  transactions_per_sec : float;
  avg_latency_us : float;
  p50_latency_us : float;  (** median transaction latency *)
  p99_latency_us : float;
      (** 99th-percentile transaction latency — the head-of-line-blocking
          signal: a concurrent bulk stream sharing the rr flow's channel
          queue inflates the tail far more than the mean *)
  rr_client_cpu : float;  (** client vCPU utilization, percent *)
  rr_server_cpu : float;
}

type stream_result = {
  mbps : float;
  bytes_received : int;
  messages_sent : int;
  datagrams_dropped : int;  (** socket-buffer drops at the receiver (UDP) *)
  st_client_cpu : float;  (** client vCPU utilization, percent *)
  st_server_cpu : float;
}

val tcp_rr :
  client:Host.t ->
  server:Host.t ->
  dst:Netcore.Ip.t ->
  ?port:int ->
  ?client_port:int ->
  ?interval:Sim.Time.span ->
  ?transactions:int ->
  ?request_size:int ->
  ?response_size:int ->
  unit ->
  rr_result
(** Default 2000 transactions of 1 byte each way.  Blocking; process
    context.  [client_port] pins the connection's source port so callers
    can control its flow-steering 5-tuple (multi-queue benchmarks pick a
    port whose queue differs from a concurrent stream's).  [interval]
    mirrors netperf's [-w] pacing: transactions fire on an absolute
    cadence, so the offered load — and hence the rr flow's CPU footprint —
    is fixed by the schedule instead of scaling with whatever latency the
    data path delivers.  [avg_latency_us] averages per-transaction
    latencies, so pacing gaps never count against the data path. *)

val udp_rr :
  client:Host.t ->
  server:Host.t ->
  dst:Netcore.Ip.t ->
  ?port:int ->
  ?transactions:int ->
  ?request_size:int ->
  ?response_size:int ->
  unit ->
  rr_result

val tcp_stream :
  client:Host.t ->
  server:Host.t ->
  dst:Netcore.Ip.t ->
  ?port:int ->
  ?message_size:int ->
  ?total_bytes:int ->
  unit ->
  stream_result
(** Default 16 KiB messages, 8 MiB total.  Throughput is measured at the
    receiver over the receive interval. *)

val udp_stream :
  client:Host.t ->
  server:Host.t ->
  dst:Netcore.Ip.t ->
  ?port:int ->
  ?message_size:int ->
  ?burst:int ->
  ?interval:Sim.Time.span ->
  ?total_bytes:int ->
  unit ->
  stream_result
(** Default 60 KiB datagrams (netperf-style large sends that fragment at
    the MTU), 8 MiB total.  [burst]/[interval] mirror netperf's [-b]/[-w]
    paced sends: [burst] messages back to back, then sleep [interval];
    [burst = 0] (default) sends everything in one unpaced blast.  Paced
    sends hold steady queue pressure without overrunning the channel —
    what the mixed head-of-line-blocking benchmark needs. *)
