module Tcp = Netstack.Tcp
module Udp = Netstack.Udp

type rr_result = {
  transactions : int;
  transactions_per_sec : float;
  avg_latency_us : float;
  p50_latency_us : float;
  p99_latency_us : float;
  rr_client_cpu : float;
  rr_server_cpu : float;
}

type stream_result = {
  mbps : float;
  bytes_received : int;
  messages_sent : int;
  datagrams_dropped : int;
  st_client_cpu : float;
  st_server_cpu : float;
}

(* netperf-style CPU utilization: vCPU busy time over the wall-clock
   measurement window, in percent. *)
let cpu_meter host =
  let cpu = Netstack.Stack.cpu host.Host.stack in
  let before = Sim.Resource.busy_time cpu in
  fun ~wall_s ->
    if wall_s <= 0.0 then 0.0
    else
      let busy =
        Sim.Time.to_sec_f (Sim.Time.span_sub (Sim.Resource.busy_time cpu) before)
      in
      busy /. wall_s *. 100.0

(* Fresh ports per invocation so sweeps can reuse one scenario. *)
let port_counter = ref 5001

let fresh_port () =
  let p = !port_counter in
  incr port_counter;
  p

let listen_exn tcp ~port =
  match Tcp.listen tcp ~port with
  | Ok l -> l
  | Error e -> failwith (Format.asprintf "netperf: listen: %a" Tcp.pp_error e)

let connect_exn tcp ?src_port ~dst ~dst_port () =
  match Tcp.connect tcp ?src_port ~dst ~dst_port () with
  | Ok c -> c
  | Error e -> failwith (Format.asprintf "netperf: connect: %a" Tcp.pp_error e)

let bind_exn udp ?port () =
  match Udp.bind udp ?port () with
  | Ok s -> s
  | Error _ -> failwith "netperf: udp bind failed"

let elapsed_s engine t0 =
  Sim.Time.to_sec_f (Sim.Time.diff (Sim.Engine.now engine) t0)

(* ------------------------------------------------------------------ *)

let tcp_rr ~client ~server ~dst ?port ?client_port ?interval
    ?(transactions = 2000) ?(request_size = 1) ?(response_size = 1) () =
  let port = match port with Some p -> p | None -> fresh_port () in
  let listener = listen_exn server.Host.tcp ~port in
  Sim.Engine.spawn (Host.engine server) (fun () ->
      let conn = Tcp.accept listener in
      let response = Bytes.make response_size 'r' in
      try
        while true do
          let (_ : Bytes.t) = Tcp.recv_exact conn request_size in
          Tcp.send conn response
        done
      with Tcp.Tcp_error _ -> ());
  let conn = connect_exn client.Host.tcp ?src_port:client_port ~dst ~dst_port:port () in
  let engine = Host.engine client in
  let request = Bytes.make request_size 'q' in
  let client_cpu = cpu_meter client and server_cpu = cpu_meter server in
  let lat = Sim.Stats.create () in
  let t0 = Sim.Engine.now engine in
  (* With [interval], transactions fire on an absolute cadence from [t0]
     (netperf -w): the offered load is a property of the schedule, not of
     whatever latency the data path delivers.  A transaction overrunning
     its slot makes the next one fire immediately. *)
  let next_at = ref t0 in
  for i = 1 to transactions do
    let before = Sim.Engine.now engine in
    Tcp.send conn request;
    let (_ : Bytes.t) = Tcp.recv_exact conn response_size in
    Sim.Stats.add lat
      (Sim.Time.to_sec_f (Sim.Time.diff (Sim.Engine.now engine) before) *. 1e6);
    match interval with
    | Some gap when i < transactions ->
        next_at := Sim.Time.add !next_at gap;
        let wait = Sim.Time.diff !next_at (Sim.Engine.now engine) in
        if Sim.Time.span_is_positive wait then Sim.Engine.sleep wait
    | _ -> ()
  done;
  let dt = elapsed_s engine t0 in
  Tcp.close conn;
  {
    transactions;
    transactions_per_sec = float_of_int transactions /. dt;
    avg_latency_us = Sim.Stats.mean lat;
    p50_latency_us = Sim.Stats.percentile lat 50.0;
    p99_latency_us = Sim.Stats.percentile lat 99.0;
    rr_client_cpu = client_cpu ~wall_s:dt;
    rr_server_cpu = server_cpu ~wall_s:dt;
  }

let udp_rr ~client ~server ~dst ?port ?(transactions = 2000) ?(request_size = 1)
    ?(response_size = 1) () =
  let port = match port with Some p -> p | None -> fresh_port () in
  let server_sock = bind_exn server.Host.udp ~port () in
  Sim.Engine.spawn (Host.engine server) (fun () ->
      let response = Bytes.make response_size 'r' in
      while true do
        let src, src_port, _ = Udp.recvfrom server_sock in
        Udp.sendto server_sock ~dst:src ~dst_port:src_port response
      done);
  let client_sock = bind_exn client.Host.udp () in
  let engine = Host.engine client in
  let request = Bytes.make request_size 'q' in
  let client_cpu = cpu_meter client and server_cpu = cpu_meter server in
  let lat = Sim.Stats.create () in
  let t0 = Sim.Engine.now engine in
  for _ = 1 to transactions do
    let before = Sim.Engine.now engine in
    Udp.sendto client_sock ~dst ~dst_port:port request;
    let (_ : Netcore.Ip.t * int * Bytes.t) = Udp.recvfrom client_sock in
    Sim.Stats.add lat
      (Sim.Time.to_sec_f (Sim.Time.diff (Sim.Engine.now engine) before) *. 1e6)
  done;
  let dt = elapsed_s engine t0 in
  {
    transactions;
    transactions_per_sec = float_of_int transactions /. dt;
    avg_latency_us = Sim.Stats.mean lat;
    p50_latency_us = Sim.Stats.percentile lat 50.0;
    p99_latency_us = Sim.Stats.percentile lat 99.0;
    rr_client_cpu = client_cpu ~wall_s:dt;
    rr_server_cpu = server_cpu ~wall_s:dt;
  }

(* ------------------------------------------------------------------ *)

let tcp_stream ~client ~server ~dst ?port ?(message_size = 16384)
    ?(total_bytes = 8 * 1024 * 1024) () =
  let port = match port with Some p -> p | None -> fresh_port () in
  let listener = listen_exn server.Host.tcp ~port in
  let engine = Host.engine client in
  let received = ref 0 in
  let finished_at = ref Sim.Time.zero in
  let done_cond = Sim.Condition.create () in
  Sim.Engine.spawn (Host.engine server) (fun () ->
      let conn = Tcp.accept listener in
      (try
         while !received < total_bytes do
           let chunk = Tcp.recv conn ~max:65536 in
           if Bytes.length chunk = 0 then raise Exit;
           received := !received + Bytes.length chunk
         done
       with Exit | Tcp.Tcp_error _ -> ());
      finished_at := Sim.Engine.now (Host.engine server);
      Sim.Condition.broadcast done_cond);
  let conn = connect_exn client.Host.tcp ~dst ~dst_port:port () in
  let message = Bytes.make message_size 's' in
  let client_cpu = cpu_meter client and server_cpu = cpu_meter server in
  let t0 = Sim.Engine.now engine in
  let messages = (total_bytes + message_size - 1) / message_size in
  for _ = 1 to messages do
    Tcp.send conn message
  done;
  while !received < total_bytes do
    Sim.Condition.await done_cond
  done;
  let dt = Sim.Time.to_sec_f (Sim.Time.diff !finished_at t0) in
  Tcp.close conn;
  {
    mbps = float_of_int !received *. 8.0 /. dt /. 1e6;
    bytes_received = !received;
    messages_sent = messages;
    datagrams_dropped = 0;
    st_client_cpu = client_cpu ~wall_s:dt;
    st_server_cpu = server_cpu ~wall_s:dt;
  }

let udp_stream ~client ~server ~dst ?port ?(message_size = 61440) ?(burst = 0)
    ?interval ?(total_bytes = 8 * 1024 * 1024) () =
  let port = match port with Some p -> p | None -> fresh_port () in
  let server_sock = bind_exn server.Host.udp ~port () in
  let engine = Host.engine client in
  let received_bytes = ref 0 in
  let first_rx = ref None in
  let last_rx = ref Sim.Time.zero in
  Sim.Engine.spawn (Host.engine server) (fun () ->
      while true do
        let _, _, payload = Udp.recvfrom server_sock in
        let now = Sim.Engine.now (Host.engine server) in
        if !first_rx = None then first_rx := Some now;
        last_rx := now;
        received_bytes := !received_bytes + Bytes.length payload
      done);
  let client_sock = bind_exn client.Host.udp () in
  let message = Bytes.make message_size 'u' in
  let messages = (total_bytes + message_size - 1) / message_size in
  let client_cpu = cpu_meter client and server_cpu = cpu_meter server in
  let t0 = Sim.Engine.now engine in
  (* netperf-style paced send (-b burst, -w interval): [burst] messages
     back to back, then sleep [interval].  burst = 0 (the default) blasts
     everything with no pacing. *)
  let sent = ref 0 in
  while !sent < messages do
    let n = if burst <= 0 then messages else min burst (messages - !sent) in
    for _ = 1 to n do
      Udp.sendto client_sock ~dst ~dst_port:port message
    done;
    sent := !sent + n;
    match interval with
    | Some gap when !sent < messages -> Sim.Engine.sleep gap
    | _ -> ()
  done;
  (* Wait until the receiver has gone quiet. *)
  let stable = ref false in
  while not !stable do
    let snapshot = !received_bytes in
    Sim.Engine.sleep (Sim.Time.ms 20);
    if !received_bytes = snapshot then stable := true
  done;
  (* netperf-style receive throughput: bytes delivered to the application
     over the whole transfer interval. *)
  ignore !first_rx;
  let dt =
    let span = Sim.Time.to_sec_f (Sim.Time.diff !last_rx t0) in
    if span <= 0.0 then 1e-9 else span
  in
  {
    mbps = float_of_int !received_bytes *. 8.0 /. dt /. 1e6;
    bytes_received = !received_bytes;
    messages_sent = messages;
    datagrams_dropped = Udp.drops server_sock;
    st_client_cpu = client_cpu ~wall_s:dt;
    st_server_cpu = server_cpu ~wall_s:dt;
  }
