(** A physical machine: Dom0 plus guest domains, with per-machine XenStore,
    event-channel subsystem, and per-domain grant tables. *)

type t

type cpu_model =
  | Dedicated_cpus
      (** every domain gets its own serial vCPU (the calibrated default:
          contention is captured by the cost model's service times) *)
  | Credit_scheduled of { physical_cpus : int; boost : bool }
      (** all vCPUs share [physical_cpus] cores under the Xen credit
          scheduler — slower to simulate, but models real CPU contention
          (see the [ablation-contention] bench).  [boost] enables the
          wake-up priority (Xen's default). *)

val create :
  engine:Sim.Engine.t -> params:Params.t -> id:int -> ?cpu_model:cpu_model -> unit -> t

val id : t -> int
val engine : t -> Sim.Engine.t
val params : t -> Params.t
val xenstore : t -> Xenstore.t
val evtchn : t -> Evtchn.Event_channel.t
val dom0 : t -> Domain.t

val create_domain : t -> name:string -> ip:Netcore.Ip.t -> Domain.t
(** Boot a fresh guest: assigns a domid and a MAC, creates its grant table
    and its XenStore subtree ([/local/domain/<id>/name]). *)

val adopt_domain : t -> Domain.t -> unit
(** Attach a migrated-in domain: assigns a fresh domid (identity — MAC and
    IP — is preserved), recreates grant table and XenStore entries. *)

val remove_domain : t -> Domain.t -> unit
(** Detach a domain (migration out): drops its grant table and removes its
    XenStore subtree.  The domain object itself stays alive. *)

val shutdown_domain : t -> Domain.t -> unit
(** Destroy a guest: runs its shutdown hooks, then detaches it and marks it
    dead. *)

val crash_domain : t -> Domain.t -> unit
(** Kill a guest without running any shutdown hook — the fault the chaos
    harness injects for "peer crash".  The hypervisor reclaims the
    domain's frames, grant table and XenStore subtree; surviving peers
    must converge via soft state alone. *)

val frame_allocator : t -> Memory.Frame_allocator.t
(** The machine's physical frame pool (XenLoop channels and other shared
    memory draw from it). *)

val grant_table : t -> int -> Memory.Grant_table.t option
val domain : t -> int -> Domain.t option
val guests : t -> Domain.t list
(** Guests (excluding Dom0), sorted by domid. *)

val guest_count : t -> int
