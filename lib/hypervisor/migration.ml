let migrate ~src ~dst domain =
  (match Machine.domain src (Domain.domid domain) with
  | Some d when d == domain && Domain.is_running domain -> ()
  | Some _ | None -> invalid_arg "Migration.migrate: domain not running on src");
  (* Pre-migration callback from the hypervisor (paper Sect. 3.4). *)
  Domain.run_pre_migrate domain;
  Domain.set_state domain Domain.Suspended;
  Machine.remove_domain src domain;
  (* Stop-and-copy blackout. *)
  Sim.Engine.sleep (Machine.params src).Params.migration_downtime;
  Machine.adopt_domain dst domain;
  Domain.run_post_restore domain

let suspend_resume ~machine domain =
  (match Machine.domain machine (Domain.domid domain) with
  | Some d when d == domain && Domain.is_running domain -> ()
  | Some _ | None ->
      invalid_arg "Migration.suspend_resume: domain not running here");
  (* Same callback choreography as a migration, but the domain comes back
     on the same machine with the same domid: save/restore or a localhost
     migration.  Frames, grants and XenStore survive untouched. *)
  Domain.run_pre_migrate domain;
  Domain.set_state domain Domain.Suspended;
  Sim.Engine.sleep (Machine.params machine).Params.migration_downtime;
  Domain.set_state domain Domain.Running;
  Domain.run_post_restore domain
