(** The calibrated cost model — single source of truth for every timing
    constant in the simulation.

    The defaults are calibrated against the paper's own Table 1/2/3
    micro-measurements on its Pentium D / Xen 3.2 / 1 Gbps testbed (see
    EXPERIMENTS.md §Calibration for the derivations).  Workloads and the
    XenLoop module never read these constants; only the substrate does, so
    reproduced performance shapes are emergent, not hard-coded. *)

type t = {
  (* --- Virtualization --- *)
  hypercall : Sim.Time.span;  (** trap into the hypervisor and back *)
  evtchn_delivery : Sim.Time.span;
      (** event-channel notification to handler start: virtual IRQ
          injection plus scheduling the target vCPU *)
  dom0_wakeup : Sim.Time.span;
      (** extra latency before netback processing starts in the driver
          domain (softirq + inter-domain switch penalty: TLB/cache) *)
  page_map : Sim.Time.span;  (** map or unmap one granted page *)
  page_zero : Sim.Time.span;  (** scrub one page before handing it over *)
  migration_downtime : Sim.Time.span;
      (** stop-and-copy blackout of live migration *)
  (* --- Guest / native protocol stack --- *)
  syscall : Sim.Time.span;
  udp_tx : Sim.Time.span;  (** UDP+IP output processing per datagram *)
  udp_rx : Sim.Time.span;
  tcp_tx : Sim.Time.span;  (** TCP output processing per segment *)
  tcp_rx : Sim.Time.span;
  tcp_ack : Sim.Time.span;  (** generating or absorbing a pure ACK *)
  icmp_proc : Sim.Time.span;  (** in-kernel echo processing per packet *)
  app_wakeup : Sim.Time.span;
      (** waking a process blocked in recv() (scheduler latency) *)
  netfilter_hook : Sim.Time.span;  (** one hook traversal per packet *)
  ip_rx : Sim.Time.span;  (** per-fragment IP input processing *)
  arp_proc : Sim.Time.span;
  copy_ns_per_byte : float;  (** effective memcpy cost, cache misses included *)
  xenloop_copy_ns_per_byte : float;
      (** copies into/out of the shared FIFO pages: cross-VM, cold-cache *)
  xenloop_fifo_op : Sim.Time.span;
      (** XenLoop FIFO bookkeeping per packet (metadata write, index update);
          with [xenloop_batch_tx] it is charged once per submitted burst *)
  xenloop_notify_suppression : bool;
      (** skip the event-channel hypercall when the shared consumer-active
          flag shows the receiver already draining (doorbell suppression);
          [false] restores the per-packet-notify baseline *)
  xenloop_batch_tx : bool;
      (** coalesce a burst of outgoing frames (e.g. the fragments of one
          datagram) into one FIFO submission with a single trailing notify *)
  xenloop_poll_window : Sim.Time.span;
      (** NAPI-style receiver polling: after its event handler drains the
          FIFO, the receiver keeps polling this long before clearing its
          consumer-active flag and re-arming notifications; [span_zero]
          disables polling *)
  xenloop_poll_interval : Sim.Time.span;
      (** how often the receiver re-checks the FIFO within the poll window *)
  xenloop_queues : int;
      (** queue pairs a guest advertises per peer channel (multi-queue flow
          steering, an engineering extension over the paper's single FIFO
          pair); each side uses min(own, peer's advertised), so 1 restores
          the paper-faithful single channel *)
  xenloop_waiting_list_max : int;
      (** per-queue waiting-list bound; overflow frames take the standard
          netfront path instead of growing the queue without limit *)
  xenloop_zerocopy : bool;
      (** advertise and use the zero-copy descriptor channel: payloads above
          [xenloop_inline_max] are written once into a grant-mapped payload
          pool and the FIFO entry carries only a descriptor; [false] (or a
          peer that doesn't speak it) restores the two-copy inline path
          bit-for-bit *)
  xenloop_inline_max : int;
      (** largest payload still copied inline through the FIFO when
          zero-copy is on; each side applies max(own, peer's stamp) so both
          ends agree conservatively (paper-faithful copy path below it) *)
  xenloop_pool_slots : int;
      (** payload-pool slots per queue per direction (power of two); the
          pool is granted and mapped once at connect, amortizing map
          hypercalls over the channel lifetime *)
  xenloop_pool_slot_pages : int;
      (** pages per pool slot; must fit the largest TSO frame that reaches
          the hook (gso_size + link/IP/TCP headers) or large TCP frames
          degrade to the inline path *)
  xenloop_loans : bool;
      (** advertise and use loaned-slot receive: instead of copying a
          descriptor payload out of the pool slot, the receiver's socket
          layer borrows the mapped slot and returns it to the free ring
          only when the application releases it — the last copy on the
          descriptor path disappears.  Requires [xenloop_zerocopy]; a peer
          that doesn't speak it (or [false]) restores the copy-out path
          bit-for-bit *)
  xenloop_max_loans : int;
      (** loan credit: the most pool slots a receiver may hold borrowed per
          queue direction at once; at the limit further descriptor
          deliveries degrade transparently to copy-out so a slow consumer
          can never pin the whole pool (each side uses min(own, peer's
          stamp)) *)
  xenloop_gso : bool;
      (** advertise and use jumbo-descriptor segmentation offload
          (GSO/GRO, DESIGN.md §15): a TCP sender on a gso-negotiated
          channel emits one multi-slot jumbo descriptor of up to
          [xenloop_gso_max] payload bytes instead of per-MSS frames, with
          transport checksums elided on the trusted shared-memory path
          (recomputed on any netfront/physnet fallback).  Requires
          [xenloop_zerocopy]; [false] (or a peer that doesn't speak it)
          keeps the per-MSS descriptor path bit-for-bit *)
  xenloop_gso_max : int;
      (** largest TCP payload one jumbo descriptor may carry; each side
          uses min(own, peer's control-page stamp) *)
  xenloop_poll_mode : bool;
      (** DPDK-style busy-poll receive: a pinned receiver fiber spins
          run-to-completion on the descriptor rings with event-channel
          doorbells suppressed in both directions; idle channels back off
          spin → pause → sleep.  Assumes symmetric deployment (both ends
          poll), like a DPDK l2fwd pair *)
  xenloop_poll_spin : Sim.Time.span;
      (** poll-mode spin-phase re-check interval (hot loop granularity) *)
  xenloop_poll_pause : Sim.Time.span;
      (** poll-mode pause-phase re-check interval (PAUSE-instruction
          analogue; still far below [evtchn_delivery]) *)
  xenloop_poll_sleep : Sim.Time.span;
      (** poll-mode sleep-phase re-check interval after a long idle *)
  xenloop_poll_spin_iters : int;
      (** idle iterations spent in the spin phase before easing to pause *)
  xenloop_poll_pause_iters : int;
      (** idle iterations spent in the pause phase before easing to sleep *)
  discovery_period : Sim.Time.span;
      (** Dom0 domain-discovery scan interval (paper: 5 s) *)
  xenloop_softstate_ttl : Sim.Time.span;
      (** mapping-table soft-state lifetime: a guest that hears no discovery
          announcement for this long evicts its whole mapping table and
          disengages its channels, falling back to netfront (paper's
          soft-state argument, Sect. 3.5; default 3 scan periods) *)
  xenloop_bootstrap_cooldown : Sim.Time.span;
      (** after [max_create_retries] unanswered Create_channel (or an
          unanswered Request_channel), the peer is marked failed and no new
          bootstrap is attempted until this much time has passed — bounds
          the retry storm against a dead or deaf peer *)
  xenloop_delta_announce : bool;
      (** Dom0 sends versioned delta announcements to guests advertising
          the "dl" token (epoch-stamped joins/leaves since the guest's
          acked epoch, DESIGN.md §12) instead of rebroadcasting the full
          list every scan; off reproduces the legacy full-list broadcast
          bit for bit *)
  xenloop_announce_refresh : Sim.Time.span;
      (** ceiling on announce silence towards an up-to-date guest: when
          nothing changed, Dom0 still sends a keep-alive (empty delta, or
          a full list to a legacy guest) this often so the soft-state TTL
          keeps being refreshed; must stay below [xenloop_softstate_ttl] *)
  xenloop_channel_cap : int;
      (** per-guest bound on simultaneously Active channels; establishing
          one more evicts the least-recently-active channel first.  0 =
          unbounded (the pre-cap behaviour) *)
  xenloop_channel_idle_ttl : Sim.Time.span;
      (** a connected channel with no traffic for this long is evicted
          (grant-balanced teardown; traffic falls back to netfront and
          re-establishes on demand).  Zero/negative = never *)
  xenloop_evict_cooldown : Sim.Time.span;
      (** how long an evicted peer stays in Failed_until before traffic
          may re-bootstrap the channel — keeps a cap-thrashing mesh from
          churning establish/evict cycles back to back *)
  xenloop_bootstrap_max_inflight : int;
      (** bound on concurrent bootstrap handshakes (join-storm damping: a
          100-guest announcement must not thundering-herd grant allocation);
          refused bootstraps retry on later traffic.  0 = unbounded *)
  (* --- Multi-tenant QoS (DESIGN.md §14) --- *)
  qos_enabled : bool;
      (** per-flow fairness on the channel tx path: each queue's waiting
          list becomes per-flow sub-queues served by weighted deficit
          round robin, with per-flow overflow-to-netfront and
          watermark-driven congestion signals into the socket layer.
          [false] (the default) keeps the legacy FIFO-order waiting list
          bit-for-bit *)
  qos_quantum : int;
      (** DRR byte credit per scheduler visit for a weight-1 flow; a
          flow's share per round is quantum * weight *)
  qos_flow_queue_max : int;
      (** per-flow sub-queue depth bound (frames); a flow at its bound
          overflows its *own* frames to netfront instead of evicting
          other flows' *)
  qos_max_flows : int;
      (** flow-table bound per channel; on overflow the table resets
          wholesale (accounting restarts, frames unaffected) *)
  qos_high_watermark : float;
      (** fraction of [qos_flow_queue_max] at which a flow's congestion
          signal is raised (once per crossing) *)
  qos_low_watermark : float;
      (** fraction at which a raised signal clears; the gap provides
          hysteresis so a hovering producer gets one edge per genuine
          crossing *)
  qos_default_weight : int;
      (** DRR weight for tenants absent from [qos_tenant_weights] *)
  qos_tenant_weights : (int * int) list;
      (** (tenant id, weight) overrides for the default classifier *)
  qos_udp_sendspace : int;
      (** bytes a congested UDP socket may have outstanding before
          [sendto] blocks ([sendto_nb] reports EWOULDBLOCK-style
          refusal); accounting resets when the congestion clears *)
  (* --- Netfront / netback split driver --- *)
  netfront_tx : Sim.Time.span;  (** ring work + grant issue, per packet *)
  netfront_rx : Sim.Time.span;
  netback_per_packet : Sim.Time.span;  (** fixed Dom0 cost per packet *)
  netback_per_page : Sim.Time.span;
      (** per 4 KiB: grant-copy hypercall + copy + accounting *)
  bridge_forward : Sim.Time.span;  (** software bridge lookup+forward *)
  tso_max_frame : int;
      (** TCP large frames through netfront (TSO-style); UDP gets none *)
  vif_gso_size : int option;
      (** the TSO budget a guest vif advertises to its stack ([None] =
          no offload, sender emits wire-MSS frames).  The per-MSS
          baseline the gso descriptor gate compares against (DESIGN.md
          §15) is this knob set to [None]. *)
  (* --- Physical network --- *)
  wire_gbps : float;
  wire_latency : Sim.Time.span;  (** propagation + switch store-and-forward *)
  nic_tx : Sim.Time.span;  (** driver + DMA setup per frame *)
  nic_rx : Sim.Time.span;
  nic_interrupt_latency : Sim.Time.span;
      (** interrupt moderation delay before the host sees a frame *)
  nic_mtu : int;
  (* --- Native loopback --- *)
  loopback_xmit : Sim.Time.span;  (** per-packet lo device cost *)
  loopback_mtu : int;
}

val default : t

val copy_cost : t -> int -> Sim.Time.span
(** Time to memcpy [n] bytes. *)

val xenloop_copy_cost : t -> int -> Sim.Time.span
(** Time to copy [n] bytes into or out of a shared FIFO page. *)

val wire_time : t -> int -> Sim.Time.span
(** Serialization time of [n] bytes on the physical wire. *)

val pages_of_bytes : int -> int
(** Number of 4 KiB pages touched by an [n]-byte packet (at least 1). *)
