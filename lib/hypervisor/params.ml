type t = {
  hypercall : Sim.Time.span;
  evtchn_delivery : Sim.Time.span;
  dom0_wakeup : Sim.Time.span;
  page_map : Sim.Time.span;
  page_zero : Sim.Time.span;
  migration_downtime : Sim.Time.span;
  syscall : Sim.Time.span;
  udp_tx : Sim.Time.span;
  udp_rx : Sim.Time.span;
  tcp_tx : Sim.Time.span;
  tcp_rx : Sim.Time.span;
  tcp_ack : Sim.Time.span;
  icmp_proc : Sim.Time.span;
  app_wakeup : Sim.Time.span;
  netfilter_hook : Sim.Time.span;
  ip_rx : Sim.Time.span;
  arp_proc : Sim.Time.span;
  copy_ns_per_byte : float;
  xenloop_copy_ns_per_byte : float;
  xenloop_fifo_op : Sim.Time.span;
  xenloop_notify_suppression : bool;
  xenloop_batch_tx : bool;
  xenloop_poll_window : Sim.Time.span;
  xenloop_poll_interval : Sim.Time.span;
  xenloop_queues : int;
  xenloop_waiting_list_max : int;
  xenloop_zerocopy : bool;
  xenloop_inline_max : int;
  xenloop_pool_slots : int;
  xenloop_pool_slot_pages : int;
  xenloop_loans : bool;
  xenloop_max_loans : int;
  xenloop_gso : bool;
  xenloop_gso_max : int;
  xenloop_poll_mode : bool;
  xenloop_poll_spin : Sim.Time.span;
  xenloop_poll_pause : Sim.Time.span;
  xenloop_poll_sleep : Sim.Time.span;
  xenloop_poll_spin_iters : int;
  xenloop_poll_pause_iters : int;
  discovery_period : Sim.Time.span;
  xenloop_softstate_ttl : Sim.Time.span;
  xenloop_bootstrap_cooldown : Sim.Time.span;
  xenloop_delta_announce : bool;
  xenloop_announce_refresh : Sim.Time.span;
  xenloop_channel_cap : int;
  xenloop_channel_idle_ttl : Sim.Time.span;
  xenloop_evict_cooldown : Sim.Time.span;
  xenloop_bootstrap_max_inflight : int;
  qos_enabled : bool;
  qos_quantum : int;
  qos_flow_queue_max : int;
  qos_max_flows : int;
  qos_high_watermark : float;
  qos_low_watermark : float;
  qos_default_weight : int;
  qos_tenant_weights : (int * int) list;
  qos_udp_sendspace : int;
  netfront_tx : Sim.Time.span;
  netfront_rx : Sim.Time.span;
  netback_per_packet : Sim.Time.span;
  netback_per_page : Sim.Time.span;
  bridge_forward : Sim.Time.span;
  tso_max_frame : int;
  vif_gso_size : int option;
  wire_gbps : float;
  wire_latency : Sim.Time.span;
  nic_tx : Sim.Time.span;
  nic_rx : Sim.Time.span;
  nic_interrupt_latency : Sim.Time.span;
  nic_mtu : int;
  loopback_xmit : Sim.Time.span;
  loopback_mtu : int;
}

let default =
  {
    hypercall = Sim.Time.ns 300;
    evtchn_delivery = Sim.Time.of_us_f 7.0;
    dom0_wakeup = Sim.Time.of_us_f 10.0;
    page_map = Sim.Time.of_us_f 1.2;
    page_zero = Sim.Time.of_us_f 1.0;
    migration_downtime = Sim.Time.ms 60;
    syscall = Sim.Time.ns 500;
    udp_tx = Sim.Time.of_us_f 1.5;
    udp_rx = Sim.Time.of_us_f 1.6;
    tcp_tx = Sim.Time.of_us_f 1.0;
    tcp_rx = Sim.Time.of_us_f 1.1;
    tcp_ack = Sim.Time.ns 800;
    icmp_proc = Sim.Time.of_us_f 1.2;
    app_wakeup = Sim.Time.of_us_f 5.0;
    netfilter_hook = Sim.Time.ns 250;
    ip_rx = Sim.Time.ns 400;
    arp_proc = Sim.Time.ns 600;
    copy_ns_per_byte = 0.55;
    xenloop_copy_ns_per_byte = 0.75;
    xenloop_fifo_op = Sim.Time.ns 200;
    xenloop_notify_suppression = true;
    xenloop_batch_tx = true;
    xenloop_poll_window = Sim.Time.of_us_f 100.0;
    xenloop_poll_interval = Sim.Time.of_us_f 2.0;
    xenloop_queues = 4;
    xenloop_waiting_list_max = 1024;
    xenloop_zerocopy = true;
    xenloop_inline_max = 256;
    xenloop_pool_slots = 64;
    xenloop_pool_slot_pages = 5;
    xenloop_loans = true;
    xenloop_max_loans = 32;
    (* Segmentation offload on the trusted channel (DESIGN.md §15).  A
       gso-capable pair moves one jumbo descriptor (multi-slot scatter
       list, checksum elided) per TCP send of up to [xenloop_gso_max]
       payload bytes instead of per-MSS frames; off (or a peer without
       "gs") keeps the per-MSS path bit-for-bit.  Requires
       [xenloop_zerocopy]. *)
    xenloop_gso = true;
    xenloop_gso_max = 65536;
    xenloop_poll_mode = false;
    xenloop_poll_spin = Sim.Time.ns 100;
    xenloop_poll_pause = Sim.Time.of_us_f 1.0;
    xenloop_poll_sleep = Sim.Time.of_us_f 20.0;
    xenloop_poll_spin_iters = 64;
    xenloop_poll_pause_iters = 256;
    discovery_period = Sim.Time.sec 5;
    xenloop_softstate_ttl = Sim.Time.sec 15;
    xenloop_bootstrap_cooldown = Sim.Time.sec 1;
    (* Cluster-scale control plane (DESIGN.md §12).  Delta announcements
       are on by default: a delta-capable guest advertises "dl" and Dom0
       sends it joins/leaves since its acked epoch instead of the full
       list.  The refresh span bounds announce suppression — an unchanged
       peer still hears from Dom0 at least this often, which must stay
       well under [xenloop_softstate_ttl] or idle guests expire their
       whole mapping table. *)
    xenloop_delta_announce = true;
    xenloop_announce_refresh = Sim.Time.sec 10;
    (* 0 = unbounded (the pre-cap behaviour).  A positive cap bounds the
       number of Active channels per guest; bootstrap evicts the
       least-recently-active channel to make room. *)
    xenloop_channel_cap = 0;
    (* zero = no idle eviction.  Positive: a channel with no traffic for
       this long is evicted by the soft-state expiry timer. *)
    xenloop_channel_idle_ttl = Sim.Time.span_zero;
    xenloop_evict_cooldown = Sim.Time.ms 100;
    (* Join-storm damping: a guest runs at most this many concurrent
       channel bootstraps; excess co-resident flows stay on netfront and
       retry on their next packet. *)
    xenloop_bootstrap_max_inflight = 32;
    (* Multi-tenant QoS (DESIGN.md §14).  Off by default: with
       [qos_enabled = false] every channel keeps the legacy FIFO-order
       waiting list and the tx path is bit-for-bit identical to the
       pre-QoS tree. *)
    qos_enabled = false;
    qos_quantum = 1500;
    qos_flow_queue_max = 128;
    qos_max_flows = 4096;
    qos_high_watermark = 0.75;
    qos_low_watermark = 0.25;
    qos_default_weight = 1;
    qos_tenant_weights = [];
    (* UDP sendspace budget (bytes) a congested socket may have
       outstanding before sendto blocks / sendto_nb reports
       EWOULDBLOCK. *)
    qos_udp_sendspace = 65536;
    netfront_tx = Sim.Time.of_us_f 1.0;
    netfront_rx = Sim.Time.of_us_f 1.0;
    netback_per_packet = Sim.Time.of_us_f 2.3;
    netback_per_page = Sim.Time.of_us_f 5.4;
    bridge_forward = Sim.Time.ns 600;
    tso_max_frame = 65536;
    vif_gso_size = Some 16384;
    wire_gbps = 1.0;
    wire_latency = Sim.Time.of_us_f 8.0;
    nic_tx = Sim.Time.of_us_f 2.0;
    nic_rx = Sim.Time.of_us_f 6.0;
    nic_interrupt_latency = Sim.Time.of_us_f 20.0;
    nic_mtu = 1500;
    loopback_xmit = Sim.Time.ns 400;
    loopback_mtu = 16436;
  }

let copy_cost t bytes = Sim.Time.of_ns_f (float_of_int bytes *. t.copy_ns_per_byte)

let xenloop_copy_cost t bytes =
  Sim.Time.of_ns_f (float_of_int bytes *. t.xenloop_copy_ns_per_byte)

let wire_time t bytes =
  (* Include Ethernet preamble + IFG (20 bytes) and FCS (4). *)
  Sim.Time.of_ns_f (float_of_int ((bytes + 24) * 8) /. t.wire_gbps)

let pages_of_bytes n = if n <= 0 then 1 else (n + 4095) / 4096
