type cpu_model =
  | Dedicated_cpus
  | Credit_scheduled of { physical_cpus : int; boost : bool }

type t = {
  machine_id : int;
  m_engine : Sim.Engine.t;
  m_params : Params.t;
  m_sched : Credit_scheduler.t option;
  m_xenstore : Xenstore.t;
  m_evtchn : Evtchn.Event_channel.t;
  grant_tables : (int, Memory.Grant_table.t) Hashtbl.t;
  domains : (int, Domain.t) Hashtbl.t;
  mutable next_domid : int;
  m_dom0 : Domain.t;
  m_frames : Memory.Frame_allocator.t;
}

(* 4 GB of machine memory, as on the paper's testbed. *)
let machine_frames = 1_048_576

let make_cpu sched ~name =
  match sched with
  | None -> None
  | Some sched ->
      let vcpu = Credit_scheduler.add_vcpu sched ~name ~weight:256 () in
      Some
        (Sim.Resource.custom ~name
           ~use:(fun span -> Credit_scheduler.run vcpu span)
           ~busy_time:(fun () -> Credit_scheduler.cpu_time vcpu))

let create ~engine ~params ~id ?(cpu_model = Dedicated_cpus) () =
  let evtchn =
    Evtchn.Event_channel.create ~engine ~delivery_latency:(fun () ->
        params.Params.evtchn_delivery)
  in
  let sched =
    match cpu_model with
    | Dedicated_cpus -> None
    | Credit_scheduled { physical_cpus; boost } ->
        Some (Credit_scheduler.create ~engine ~physical_cpus ~boost ())
  in
  let dom0_name = Printf.sprintf "m%d.dom0" id in
  let dom0 =
    Domain.make ~domid:0 ~name:dom0_name
      ~mac:(Netcore.Mac.of_domid ~machine:id ~domid:0)
      ~ip:(Netcore.Ip.make ~subnet:200 ~host:(id + 1))
      ?cpu:(make_cpu sched ~name:(dom0_name ^ ".vcpu"))
      ()
  in
  {
    machine_id = id;
    m_engine = engine;
    m_params = params;
    m_sched = sched;
    m_xenstore = Xenstore.create ();
    m_evtchn = evtchn;
    grant_tables = Hashtbl.create 8;
    domains = Hashtbl.create 8;
    next_domid = 1;
    m_dom0 = dom0;
    m_frames = Memory.Frame_allocator.create ~total_frames:machine_frames;
  }

let id t = t.machine_id
let engine t = t.m_engine
let params t = t.m_params
let xenstore t = t.m_xenstore
let evtchn t = t.m_evtchn
let dom0 t = t.m_dom0

let register t domain =
  let domid = Domain.domid domain in
  Hashtbl.replace t.domains domid domain;
  Hashtbl.replace t.grant_tables domid (Memory.Grant_table.create ~owner:domid);
  (match
     Xenstore.write t.m_xenstore ~caller:Xenstore.dom0
       ~path:(Xenstore.domain_path domid ^ "/name")
       ~value:(Domain.name domain)
   with
  | Ok () -> ()
  | Error _ -> assert false);
  (match
     Xenstore.write t.m_xenstore ~caller:Xenstore.dom0
       ~path:(Xenstore.domain_path domid ^ "/mac")
       ~value:(Netcore.Mac.to_string (Domain.mac domain))
   with
  | Ok () -> ()
  | Error _ -> assert false);
  match
    Xenstore.write t.m_xenstore ~caller:Xenstore.dom0
      ~path:(Xenstore.domain_path domid ^ "/ip")
      ~value:(Netcore.Ip.to_string (Domain.ip domain))
  with
  | Ok () -> ()
  | Error _ -> assert false

let fresh_domid t =
  let id = t.next_domid in
  t.next_domid <- id + 1;
  id

let create_domain t ~name ~ip =
  let domid = fresh_domid t in
  let mac = Netcore.Mac.of_domid ~machine:t.machine_id ~domid in
  let domain =
    Domain.make ~domid ~name ~mac ~ip ?cpu:(make_cpu t.m_sched ~name:(name ^ ".vcpu")) ()
  in
  register t domain;
  domain

let adopt_domain t domain =
  Domain.set_domid domain (fresh_domid t);
  Domain.set_state domain Domain.Running;
  register t domain

let remove_domain t domain =
  let domid = Domain.domid domain in
  Hashtbl.remove t.domains domid;
  Hashtbl.remove t.grant_tables domid;
  (* The departing domain's foreign mappings are torn down by the
     hypervisor so the granters are not left Still_mapped forever. *)
  Hashtbl.iter
    (fun _ gt -> ignore (Memory.Grant_table.revoke_mappings_for gt ~dom:domid))
    t.grant_tables;
  Memory.Frame_allocator.release_all t.m_frames ~owner:domid;
  match Xenstore.rm t.m_xenstore ~caller:Xenstore.dom0 ~path:(Xenstore.domain_path domid) with
  | Ok () | Error _ -> ()

let shutdown_domain t domain =
  Domain.run_shutdown domain;
  remove_domain t domain;
  Domain.set_state domain Domain.Dead

let crash_domain t domain =
  (* No shutdown hooks: the guest dies without any chance to unadvertise,
     flush waiting lists or notify peers.  The hypervisor still reclaims
     everything it accounted to the domain. *)
  remove_domain t domain;
  Domain.set_state domain Domain.Dead

let frame_allocator t = t.m_frames

let grant_table t domid = Hashtbl.find_opt t.grant_tables domid
let domain t domid = Hashtbl.find_opt t.domains domid

let guests t =
  Hashtbl.fold (fun _ d acc -> d :: acc) t.domains []
  |> List.sort (fun a b -> compare (Domain.domid a) (Domain.domid b))

let guest_count t = Hashtbl.length t.domains
