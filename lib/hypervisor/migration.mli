(** Live migration of a guest between machines.

    Reproduces the paper's lifecycle (Sect. 3.4): before the domain leaves,
    it receives a callback from the hypervisor — XenLoop uses it to delete
    its advertisement, drain in-flight packets and disengage channels.
    After restore on the target, post-restore callbacks let the network
    plumbing reattach and XenLoop re-advertise.

    Must be called from process context: the stop-and-copy downtime is
    simulated with a sleep. *)

val migrate : src:Machine.t -> dst:Machine.t -> Domain.t -> unit
(** @raise Invalid_argument if the domain is not running on [src]. *)

val suspend_resume : machine:Machine.t -> Domain.t -> unit
(** Suspend the domain, run its pre-migrate hooks, wait one blackout, then
    restore it in place (same machine, same domid) and run post-restore
    hooks — a checkpoint/restore or localhost migration.  Process context.
    @raise Invalid_argument if the domain is not running on [machine]. *)
