# Convenience wrappers around dune.  `make ci` is the gate a PR must pass:
# build, full test suite, and a smoke benchmark run whose JSON writer
# exits nonzero if the optimized data path loses or duplicates a single
# application byte relative to the baseline (see bench/main.ml).

.PHONY: all build test bench-smoke bench ci clean

all: build

build:
	dune build

test: build
	dune runtest --force

bench-smoke: build
	dune exec bench/main.exe -- --json-smoke /tmp/bench_smoke.json

bench: build
	dune exec bench/main.exe -- --json

ci: build test bench-smoke
	@echo "ci: build + tests + bench smoke (delivery check) all green"

clean:
	dune clean
