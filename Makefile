# Convenience wrappers around dune.  `make ci` is the gate a PR must pass:
# no build artifacts snuck into the index, build, full test suite, and a
# smoke benchmark run whose JSON writer exits nonzero if the optimized
# data path loses or duplicates a single application byte relative to the
# baseline (see bench/main.ml).

.PHONY: all build test bench-smoke bench soak ci check-tracked-artifacts clean

all: build

check-tracked-artifacts:
	@bad=$$(git ls-files | grep -E '^_build/|\.install$$' || true); \
	if [ -n "$$bad" ]; then \
	  echo "error: build artifacts are tracked by git (use .gitignore):"; \
	  echo "$$bad" | head -20; \
	  exit 1; \
	fi

build:
	dune build

test: build
	dune runtest --force

bench-smoke: build
	dune exec bench/main.exe -- --json-smoke /tmp/bench_smoke.json

bench: build
	dune exec bench/main.exe -- --json

# Chaos soak: the full fault matrix (every scenario x every applicable
# fault kind, alone and as a storm), deterministic per seed.  Set
# SOAK_ITERS=n for a longer sweep over seeds 42..42+n-1; a red run prints
# the first failing seed and its replay command.
soak: build
	dune exec xenloopsim -- chaos

ci: check-tracked-artifacts build test bench-smoke soak
	@echo "ci: artifact check + build + tests + bench smoke (delivery check) + chaos soak all green"

clean:
	dune clean
