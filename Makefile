# Convenience wrappers around dune.  `make ci` is the gate a PR must pass:
# no build artifacts snuck into the index, build, full test suite, and a
# smoke benchmark run whose JSON writer exits nonzero if the optimized
# data path loses or duplicates a single application byte relative to the
# baseline (see bench/main.ml).

.PHONY: all build test bench-smoke bench perf engine-check datapath-check gso-check mesh-check fairness-check soak ci check-tracked-artifacts clean

all: build

check-tracked-artifacts:
	@bad=$$(git ls-files | grep -E '^_build/|\.install$$' || true); \
	if [ -n "$$bad" ]; then \
	  echo "error: build artifacts are tracked by git (use .gitignore):"; \
	  echo "$$bad" | head -20; \
	  exit 1; \
	fi

build:
	dune build

test: build
	dune runtest --force

bench-smoke: build
	dune exec bench/main.exe -- --json-smoke /tmp/bench_smoke.json

bench: build
	dune exec bench/main.exe -- --json

# Full engine microbenchmark sweep (sim_events_per_sec per scenario,
# best-of-three).
perf: build
	dune exec bench/main.exe -- --engine-bench

# Regression gate: re-measure the headline engine scenario in smoke mode
# and fail loudly if it lost more than 25% against the committed
# BENCH_results.json.
engine-check: build
	dune exec bench/main.exe -- --engine-bench-check BENCH_results.json

# Data-path gate: with loaned-slot receive on (the default), a 16 KiB TCP
# stream must cross the channel at <= 0.1 memcpy'd bytes per delivered
# byte; more means the zero-copy borrow silently degenerated to copy-out.
datapath-check: build
	dune exec bench/main.exe -- --datapath-check

# Segmentation-offload gate: a 64 KiB gso-on TCP stream must beat the
# gso-off path by >= 20% with the channel descriptor rate down >= 10x,
# deliver byte-for-byte the same application data, and leave the gso-off
# chaos digest matrix bit-for-bit unperturbed whether or not the
# Jumbo_truncate fault is armed.
gso-check: build
	dune exec bench/main.exe -- --gso-check

# Control-plane gate: re-measure the N=128 mesh point with delta
# announcements on and fail if steady-state announce bytes/guest blow the
# hard budget, if channel bring-up lost more than 25% against the
# committed BENCH_results.json, or if the live channel population exceeds
# the per-guest cap.
mesh-check: build
	dune exec bench/main.exe -- --mesh-check BENCH_results.json

# QoS fairness gate: re-measure the incast and elephant-vs-mice sweeps in
# smoke mode and fail if the per-flow scheduler stops enforcing fairness —
# qos-on incast Jain index < 0.95, or the elephant-vs-mice victim's rr p99
# under qos-on regresses to within 5x of the qos-off pile-up.
fairness-check: build
	dune exec bench/main.exe -- --fairness-check

# Chaos soak: the full fault matrix (every scenario x every applicable
# fault kind, alone and as a storm), deterministic per seed.  Set
# SOAK_ITERS=n for a longer sweep over seeds 42..42+n-1; a red run prints
# the first failing seed and its replay command.
soak: build
	dune exec xenloopsim -- chaos

ci: check-tracked-artifacts build test bench-smoke engine-check datapath-check gso-check mesh-check fairness-check soak
	@echo "ci: artifact check + build + tests + bench smoke (delivery check) + engine perf gate + data-path copy gate + gso offload gate + mesh control-plane gate + QoS fairness gate + chaos soak all green"

clean:
	dune clean
