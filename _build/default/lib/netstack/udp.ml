module T = Netcore.Transport
module P = Netcore.Packet

let max_datagram = 65507
let receive_buffer_bytes = 212_992
let ephemeral_base = 32768
let ephemeral_limit = 61000

type socket = {
  layer : t;
  sock_port : int;
  inbox : (Netcore.Ip.t * int * Bytes.t) Sim.Mailbox.t;
  mutable buffered : int;
  mutable dropped : int;
  mutable closed : bool;
}

and t = {
  stack : Stack.t;
  ports : (int, socket) Hashtbl.t;
  mutable next_ephemeral : int;
  mutable tx_shortcut :
    (dst:Netcore.Ip.t -> dst_port:int -> src_port:int -> Bytes.t -> bool) option;
}

type bind_error = Port_in_use | No_ports_left

let handle_packet t (packet : P.t) =
  match packet.P.body with
  | P.Ipv4_body { header; content = P.Full { transport = T.Udp udp; payload } } -> (
      match Hashtbl.find_opt t.ports udp.T.udp_dst_port with
      | None -> ()
      | Some sock ->
          let params = Stack.params t.stack in
          Sim.Resource.use (Stack.cpu t.stack)
            (Sim.Time.span_add params.Hypervisor.Params.udp_rx
               (Hypervisor.Params.copy_cost params (Bytes.length payload)));
          if sock.buffered + Bytes.length payload > receive_buffer_bytes then
            sock.dropped <- sock.dropped + 1
          else begin
            sock.buffered <- sock.buffered + Bytes.length payload;
            Sim.Mailbox.send sock.inbox
              (header.Netcore.Ipv4.src, udp.T.udp_src_port, payload)
          end)
  | _ -> ()

let attach stack =
  let t =
    {
      stack;
      ports = Hashtbl.create 16;
      next_ephemeral = ephemeral_base;
      tx_shortcut = None;
    }
  in
  Stack.set_protocol_handler stack Netcore.Ipv4.Udp (handle_packet t);
  t

let set_tx_shortcut t f = t.tx_shortcut <- Some f
let clear_tx_shortcut t = t.tx_shortcut <- None

let alloc_ephemeral t =
  let start = t.next_ephemeral in
  let rec scan port =
    if not (Hashtbl.mem t.ports port) then begin
      t.next_ephemeral <-
        (if port + 1 > ephemeral_limit then ephemeral_base else port + 1);
      Some port
    end
    else begin
      let next = if port + 1 > ephemeral_limit then ephemeral_base else port + 1 in
      if next = start then None else scan next
    end
  in
  scan start

let bind t ?port () =
  let chosen =
    match port with
    | Some p -> if Hashtbl.mem t.ports p then Error Port_in_use else Ok p
    | None -> ( match alloc_ephemeral t with Some p -> Ok p | None -> Error No_ports_left)
  in
  match chosen with
  | Error e -> Error e
  | Ok p ->
      let sock =
        {
          layer = t;
          sock_port = p;
          inbox = Sim.Mailbox.create ();
          buffered = 0;
          dropped = 0;
          closed = false;
        }
      in
      Hashtbl.replace t.ports p sock;
      Ok sock

let port sock = sock.sock_port

let sendto sock ~dst ~dst_port payload =
  if sock.closed then invalid_arg "Udp.sendto: socket closed";
  if Bytes.length payload > max_datagram then
    invalid_arg "Udp.sendto: datagram too large";
  let stack = sock.layer.stack in
  Sim.Resource.use (Stack.cpu stack) (Stack.params stack).Hypervisor.Params.syscall;
  let taken_by_shortcut =
    match sock.layer.tx_shortcut with
    | Some shortcut when not (Netcore.Ip.equal dst (Stack.ip_addr stack)) ->
        shortcut ~dst ~dst_port ~src_port:sock.sock_port payload
    | Some _ | None -> false
  in
  if not taken_by_shortcut then begin
    let transport =
      T.Udp { T.udp_src_port = sock.sock_port; udp_dst_port = dst_port }
    in
    Stack.ip_send stack ~dst ~transport ~payload
  end

let recvfrom sock =
  let stack = sock.layer.stack in
  let params = Stack.params stack in
  Sim.Resource.use (Stack.cpu stack) params.Hypervisor.Params.syscall;
  let blocked = Sim.Mailbox.is_empty sock.inbox in
  let ((_, _, payload) as msg) = Sim.Mailbox.recv sock.inbox in
  if blocked then
    Sim.Resource.use (Stack.cpu stack) params.Hypervisor.Params.app_wakeup;
  sock.buffered <- sock.buffered - Bytes.length payload;
  msg

let recv_opt sock =
  match Sim.Mailbox.recv_opt sock.inbox with
  | None -> None
  | Some ((_, _, payload) as msg) ->
      sock.buffered <- sock.buffered - Bytes.length payload;
      Some msg

let deliver_local t ~src ~src_port ~dst_port payload =
  match Hashtbl.find_opt t.ports dst_port with
  | None -> ()
  | Some sock ->
      let params = Stack.params t.stack in
      Sim.Resource.use (Stack.cpu t.stack)
        (Hypervisor.Params.copy_cost params (Bytes.length payload));
      if sock.buffered + Bytes.length payload > receive_buffer_bytes then
        sock.dropped <- sock.dropped + 1
      else begin
        sock.buffered <- sock.buffered + Bytes.length payload;
        Sim.Mailbox.send sock.inbox (src, src_port, payload)
      end

let close sock =
  sock.closed <- true;
  Hashtbl.remove sock.layer.ports sock.sock_port

let drops sock = sock.dropped
