(** Packet capture — tcpdump for the simulated network.

    Attach to any {!Netdevice} and every transmitted/received frame is
    recorded with its simulated timestamp and a one-line dissection; dump
    or filter the capture when a protocol exchange needs a post-mortem. *)

type t

type direction = Netdevice.direction = Tx | Rx

type record = {
  at : Sim.Time.t;
  dev : string;
  dir : direction;
  packet : Netcore.Packet.t;
}

val attach : engine:Sim.Engine.t -> Netdevice.t -> t
(** Start capturing on a device (capture begins with the next frame). *)

val attach_many : engine:Sim.Engine.t -> Netdevice.t list -> t
(** One merged capture across several devices. *)

val stop : t -> unit
(** Stop recording (records are retained). *)

val records : t -> record list
(** In capture order. *)

val count : t -> int

val filter : t -> (record -> bool) -> record list

val tcp_only : record -> bool
val udp_only : record -> bool

val pp_record : Format.formatter -> record -> unit
(** ["[12.50us] vif1.0 Tx [00:16:3e.. -> .. 10.2.0.1 -> 10.2.0.2 tcp ...]"] *)

val pp : Format.formatter -> t -> unit
