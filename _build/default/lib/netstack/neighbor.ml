type t = {
  cache : (Netcore.Ip.t, Netcore.Mac.t) Hashtbl.t;
  waiters : (Netcore.Ip.t, (Netcore.Mac.t -> unit) list) Hashtbl.t;
}

let create () = { cache = Hashtbl.create 16; waiters = Hashtbl.create 4 }

let lookup t ip = Hashtbl.find_opt t.cache ip
let insert t ip mac = Hashtbl.replace t.cache ip mac
let remove t ip = Hashtbl.remove t.cache ip

let entries t = Hashtbl.fold (fun ip mac acc -> (ip, mac) :: acc) t.cache []

let add_waiter t ip f =
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.waiters ip) in
  Hashtbl.replace t.waiters ip (f :: existing)

let resolved t ip mac =
  insert t ip mac;
  match Hashtbl.find_opt t.waiters ip with
  | None -> ()
  | Some fs ->
      Hashtbl.remove t.waiters ip;
      List.iter (fun f -> f mac) (List.rev fs)

let waiting t ip = Hashtbl.mem t.waiters ip
