lib/netstack/capture.mli: Format Netcore Netdevice Sim
