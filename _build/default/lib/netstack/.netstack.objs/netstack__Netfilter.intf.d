lib/netstack/netfilter.mli: Netcore
