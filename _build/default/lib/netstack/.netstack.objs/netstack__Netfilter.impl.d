lib/netstack/netfilter.ml: List Netcore
