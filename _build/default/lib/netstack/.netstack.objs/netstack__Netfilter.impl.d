lib/netstack/netfilter.ml: Array List Netcore
