lib/netstack/udp.ml: Bytes Hashtbl Hypervisor Netcore Sim Stack
