lib/netstack/capture.ml: Format List Netcore Netdevice Sim
