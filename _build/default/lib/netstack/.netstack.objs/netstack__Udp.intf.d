lib/netstack/udp.mli: Bytes Netcore Stack
