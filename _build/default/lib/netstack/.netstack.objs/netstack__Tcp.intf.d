lib/netstack/tcp.mli: Bytes Format Netcore Stack
