lib/netstack/neighbor.mli: Netcore
