lib/netstack/tcp.ml: Buffer Bytes Format Hashtbl Hypervisor Int32 List Netcore Queue Sim Stack
