lib/netstack/stack.ml: Bytes Hashtbl Hypervisor List Neighbor Netcore Netdevice Netfilter Sim
