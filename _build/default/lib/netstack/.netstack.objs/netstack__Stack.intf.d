lib/netstack/stack.mli: Bytes Hypervisor Neighbor Netcore Netdevice Netfilter Sim
