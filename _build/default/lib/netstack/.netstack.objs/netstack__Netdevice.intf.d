lib/netstack/netdevice.mli: Netcore
