lib/netstack/netdevice.ml: List Netcore
