lib/netstack/neighbor.ml: Hashtbl List Netcore Option
