(** Neighbour (ARP) cache.

    XenLoop consults this system-maintained cache to resolve a packet's
    next-hop MAC before deciding whether the destination is co-resident
    (paper Sect. 3.1). *)

type t

val create : unit -> t

val lookup : t -> Netcore.Ip.t -> Netcore.Mac.t option
val insert : t -> Netcore.Ip.t -> Netcore.Mac.t -> unit
val remove : t -> Netcore.Ip.t -> unit
val entries : t -> (Netcore.Ip.t * Netcore.Mac.t) list

(** {1 Pending resolutions} *)

val add_waiter : t -> Netcore.Ip.t -> (Netcore.Mac.t -> unit) -> unit
(** Queue a callback to fire when the address is resolved. *)

val resolved : t -> Netcore.Ip.t -> Netcore.Mac.t -> unit
(** Insert and fire all waiters. *)

val waiting : t -> Netcore.Ip.t -> bool
