(** Netfilter-style hook points.

    XenLoop inserts itself as a POST_ROUTING hook: it inspects every
    outgoing packet below the network layer and may {e steal} those bound
    for a co-resident guest (paper Sect. 3.1). *)

type verdict = Accept | Steal

type t
type hook_handle

val create : unit -> t

val register : t -> (Netcore.Packet.t -> verdict) -> hook_handle
(** Hooks run in registration order. *)

val register_batch : t -> (Netcore.Packet.t list -> verdict list) -> hook_handle
(** A hook that sees a whole transmit burst at once (e.g. all fragments of
    one datagram) and returns one verdict per packet, in order.  Under
    {!run} (single-packet traversal) it receives one-element lists.  A
    short verdict list leaves the remaining packets [Accept]ed. *)

val unregister : t -> hook_handle -> unit

val run : t -> Netcore.Packet.t -> verdict
(** [Steal] as soon as any hook steals; [Accept] if all accept. *)

val run_batch : t -> Netcore.Packet.t list -> verdict list
(** Traverse all hooks with a burst of packets, preserving per-hook
    registration order and per-packet burst order; packets stolen by an
    earlier hook are not shown to later hooks.  Returns the per-packet
    verdicts in input order. *)

val hook_count : t -> int
