(** Netfilter-style hook points.

    XenLoop inserts itself as a POST_ROUTING hook: it inspects every
    outgoing packet below the network layer and may {e steal} those bound
    for a co-resident guest (paper Sect. 3.1). *)

type verdict = Accept | Steal

type t
type hook_handle

val create : unit -> t

val register : t -> (Netcore.Packet.t -> verdict) -> hook_handle
(** Hooks run in registration order. *)

val unregister : t -> hook_handle -> unit

val run : t -> Netcore.Packet.t -> verdict
(** [Steal] as soon as any hook steals; [Accept] if all accept. *)

val hook_count : t -> int
