(** Network device abstraction, the boundary between the protocol stack and
    a driver (netfront vif, physical NIC, or loopback).

    The stack calls {!transmit} to hand a frame to the driver; the driver
    calls {!receive} ([netif_rx]) to push an incoming frame up into
    whatever the stack registered with {!set_receive_handler}. *)

type t

val create : name:string -> mtu:int -> ?gso_size:int -> mac:Netcore.Mac.t -> unit -> t
(** [gso_size] advertises segmentation offload: TCP may hand the device
    frames up to this size; the device (or its backend) segments at the
    real MTU where needed.  Absent for devices without TSO. *)

val name : t -> string
val mtu : t -> int
val gso_size : t -> int option
val mac : t -> Netcore.Mac.t

val set_transmit : t -> (Netcore.Packet.t -> unit) -> unit
(** Installed by the driver. *)

val transmit : t -> Netcore.Packet.t -> unit
(** Called by the stack.  No-op (counted as a drop) until a driver is
    attached. *)

val set_receive_handler : t -> (Netcore.Packet.t -> unit) -> unit
(** Installed by the stack. *)

val receive : t -> Netcore.Packet.t -> unit
(** Called by the driver to deliver an incoming frame. *)

(** {1 Taps}

    Observers see every frame the device transmits or receives — the
    attachment point for {!Capture}. *)

type direction = Tx | Rx

val add_tap : t -> (direction -> Netcore.Packet.t -> unit) -> unit

(** {1 Statistics} *)

val tx_packets : t -> int
val tx_bytes : t -> int
val rx_packets : t -> int
val rx_bytes : t -> int
val drops : t -> int
