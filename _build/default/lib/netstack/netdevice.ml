type direction = Tx | Rx

type t = {
  dev_name : string;
  dev_mtu : int;
  dev_gso : int option;
  dev_mac : Netcore.Mac.t;
  mutable xmit : (Netcore.Packet.t -> unit) option;
  mutable deliver : (Netcore.Packet.t -> unit) option;
  mutable taps : (direction -> Netcore.Packet.t -> unit) list;
  mutable tx_count : int;
  mutable tx_byte_count : int;
  mutable rx_count : int;
  mutable rx_byte_count : int;
  mutable drop_count : int;
}

let create ~name ~mtu ?gso_size ~mac () =
  {
    dev_name = name;
    dev_mtu = mtu;
    dev_gso = gso_size;
    dev_mac = mac;
    xmit = None;
    deliver = None;
    taps = [];
    tx_count = 0;
    tx_byte_count = 0;
    rx_count = 0;
    rx_byte_count = 0;
    drop_count = 0;
  }

let name t = t.dev_name
let mtu t = t.dev_mtu
let gso_size t = t.dev_gso
let mac t = t.dev_mac

let set_transmit t f = t.xmit <- Some f

let add_tap t f = t.taps <- t.taps @ [ f ]

let run_taps t direction packet =
  List.iter (fun f -> f direction packet) t.taps

let transmit t packet =
  match t.xmit with
  | None -> t.drop_count <- t.drop_count + 1
  | Some f ->
      t.tx_count <- t.tx_count + 1;
      t.tx_byte_count <- t.tx_byte_count + Netcore.Packet.wire_length packet;
      run_taps t Tx packet;
      f packet

let set_receive_handler t f = t.deliver <- Some f

let receive t packet =
  match t.deliver with
  | None -> t.drop_count <- t.drop_count + 1
  | Some f ->
      t.rx_count <- t.rx_count + 1;
      t.rx_byte_count <- t.rx_byte_count + Netcore.Packet.wire_length packet;
      run_taps t Rx packet;
      f packet

let tx_packets t = t.tx_count
let tx_bytes t = t.tx_byte_count
let rx_packets t = t.rx_count
let rx_bytes t = t.rx_byte_count
let drops t = t.drop_count
