type verdict = Accept | Steal

type hook_handle = int

type t = {
  mutable hooks : (hook_handle * (Netcore.Packet.t -> verdict)) list;
  mutable next_handle : int;
}

let create () = { hooks = []; next_handle = 0 }

let register t f =
  let h = t.next_handle in
  t.next_handle <- h + 1;
  t.hooks <- t.hooks @ [ (h, f) ];
  h

let unregister t handle = t.hooks <- List.filter (fun (h, _) -> h <> handle) t.hooks

let run t packet =
  let rec go = function
    | [] -> Accept
    | (_, f) :: rest -> ( match f packet with Steal -> Steal | Accept -> go rest)
  in
  go t.hooks

let hook_count t = List.length t.hooks
