type direction = Netdevice.direction = Tx | Rx

type record = {
  at : Sim.Time.t;
  dev : string;
  dir : direction;
  packet : Netcore.Packet.t;
}

type t = { mutable recording : bool; mutable rev_records : record list }

let tap t ~engine ~dev_name direction packet =
  if t.recording then
    t.rev_records <-
      { at = Sim.Engine.now engine; dev = dev_name; dir = direction; packet }
      :: t.rev_records

let attach_many ~engine devices =
  let t = { recording = true; rev_records = [] } in
  List.iter
    (fun dev ->
      let dev_name = Netdevice.name dev in
      Netdevice.add_tap dev (fun direction packet ->
          tap t ~engine ~dev_name direction packet))
    devices;
  t

let attach ~engine dev = attach_many ~engine [ dev ]

let stop t = t.recording <- false

let records t = List.rev t.rev_records
let count t = List.length t.rev_records
let filter t pred = List.filter pred (records t)

let transport_is proto (r : record) =
  match Netcore.Packet.transport r.packet with
  | Some tr -> Netcore.Transport.protocol tr = proto
  | None -> false

let tcp_only r = transport_is Netcore.Ipv4.Tcp r
let udp_only r = transport_is Netcore.Ipv4.Udp r

let pp_record fmt r =
  Format.fprintf fmt "[%a] %-8s %s %a" Sim.Time.pp r.at r.dev
    (match r.dir with Tx -> "Tx" | Rx -> "Rx")
    Netcore.Packet.pp r.packet

let pp fmt t =
  List.iter (fun r -> Format.fprintf fmt "%a@." pp_record r) (records t)
