lib/evtchn/event_channel.mli: Format Memory Sim
