lib/evtchn/event_channel.ml: Format Hashtbl Memory Option Sim
