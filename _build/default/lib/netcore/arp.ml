type op = Request | Reply

type t = {
  op : op;
  sender_mac : Mac.t;
  sender_ip : Ip.t;
  target_mac : Mac.t;
  target_ip : Ip.t;
}

let request ~sender_mac ~sender_ip ~target_ip =
  { op = Request; sender_mac; sender_ip; target_mac = Mac.of_int64 0L; target_ip }

let reply ~sender_mac ~sender_ip ~target_mac ~target_ip =
  { op = Reply; sender_mac; sender_ip; target_mac; target_ip }

let length = 28

let equal a b = a = b

let pp fmt t =
  match t.op with
  | Request ->
      Format.fprintf fmt "arp who-has %a tell %a" Ip.pp t.target_ip Ip.pp t.sender_ip
  | Reply -> Format.fprintf fmt "arp %a is-at %a" Ip.pp t.sender_ip Mac.pp t.sender_mac
