(** Network packets (the simulation's [struct sk_buff]).

    A packet is an Ethernet frame with a typed body.  IPv4 bodies carry
    either a parsed transport header plus payload ([Full]) or, for IP
    fragments other than a whole datagram, an opaque slice of the original
    transport-header+payload blob ([Fragment]) — mirroring how real IP
    fragmentation works on raw bytes. *)

type ipv4_content =
  | Full of { transport : Transport.t; payload : Bytes.t }
  | Fragment of Bytes.t

type body =
  | Ipv4_body of { header : Ipv4.header; content : ipv4_content }
  | Arp_body of Arp.t
  | Xenloop_body of Bytes.t
      (** XenLoop control messages travel as a distinct layer-3 protocol
          (paper Sect. 3.2): discovery announcements and channel bootstrap
          messages. *)

type t = { src_mac : Mac.t; dst_mac : Mac.t; body : body }

val ethernet_header_length : int
(** 14 bytes. *)

val ethertype : body -> int
(** 0x0800 IPv4, 0x0806 ARP, 0x58D0 for XenLoop control. *)

(** {1 Constructors} *)

val udp :
  src_mac:Mac.t ->
  dst_mac:Mac.t ->
  src_ip:Ip.t ->
  dst_ip:Ip.t ->
  src_port:int ->
  dst_port:int ->
  ?ident:int ->
  Bytes.t ->
  t

val tcp :
  src_mac:Mac.t ->
  dst_mac:Mac.t ->
  src_ip:Ip.t ->
  dst_ip:Ip.t ->
  header:Transport.tcp ->
  ?ident:int ->
  Bytes.t ->
  t

val icmp_echo :
  src_mac:Mac.t ->
  dst_mac:Mac.t ->
  src_ip:Ip.t ->
  dst_ip:Ip.t ->
  kind:[ `Request | `Reply ] ->
  icmp_ident:int ->
  icmp_seq:int ->
  ?ident:int ->
  Bytes.t ->
  t

val arp : src_mac:Mac.t -> dst_mac:Mac.t -> Arp.t -> t
val xenloop_ctrl : src_mac:Mac.t -> dst_mac:Mac.t -> Bytes.t -> t

(** {1 Accessors} *)

val ip_header : t -> Ipv4.header option
val transport : t -> Transport.t option
val payload : t -> Bytes.t option
(** Payload of a [Full] IPv4 body. *)

val wire_length : t -> int
(** Total frame length in bytes: Ethernet header + body as serialized. *)

val payload_length : t -> int
(** Application bytes in the frame (0 for ARP/control frames; blob length
    for fragments). *)

val is_ipv4 : t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
