(** IPv4 header (no options, as the simulated stack never emits them). *)

type protocol = Icmp | Tcp | Udp

val protocol_number : protocol -> int
val protocol_of_number : int -> protocol option
val pp_protocol : Format.formatter -> protocol -> unit

type header = {
  src : Ip.t;
  dst : Ip.t;
  protocol : protocol;
  ident : int;  (** 16-bit datagram id, shared by all fragments *)
  frag_offset : int;  (** payload offset in bytes; multiple of 8 *)
  more_fragments : bool;
  ttl : int;
}

val header_length : int
(** 20 bytes. *)

val make :
  src:Ip.t -> dst:Ip.t -> protocol:protocol -> ?ident:int -> unit -> header
(** An unfragmented header with default TTL 64. *)

val is_fragment : header -> bool
(** True for any packet that is part of a fragmented datagram. *)

val equal_header : header -> header -> bool
val pp_header : Format.formatter -> header -> unit
