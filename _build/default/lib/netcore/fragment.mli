(** IP fragmentation and reassembly. *)

val max_fragment_payload : mtu:int -> int
(** Usable bytes per fragment: (mtu - 20) rounded down to a multiple of 8. *)

val fragment : mtu:int -> Packet.t -> Packet.t list
(** Split an IPv4 packet whose IP length exceeds [mtu] into fragments; a
    packet that fits (or a non-IPv4 packet) is returned unchanged as a
    singleton.  [mtu] is the maximum IP datagram size (e.g. 1500 for
    Ethernet).
    @raise Invalid_argument if [mtu] leaves no payload space. *)

type reassembler

val create_reassembler : unit -> reassembler

val push : reassembler -> Packet.t -> (Packet.t option, Codec.error) result
(** Feed a packet.  Non-fragments come straight back as [Ok (Some p)];
    fragments return [Ok None] until the datagram completes, at which point
    the reassembled [Full] packet is returned.  A completed datagram whose
    transport blob fails to parse yields an error. *)

val pending_datagrams : reassembler -> int
