let fold16 v =
  let v = (v land 0xFFFF) + (v lsr 16) in
  (v land 0xFFFF) + (v lsr 16)

let ones_complement_sum data ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length data then
    invalid_arg "Checksum: out of bounds";
  let sum = ref 0 in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    sum := !sum + (Char.code (Bytes.get data !i) lsl 8) + Char.code (Bytes.get data (!i + 1));
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Char.code (Bytes.get data !i) lsl 8);
  fold16 !sum

let compute data ~off ~len = lnot (ones_complement_sum data ~off ~len) land 0xFFFF

let verify data ~off ~len = ones_complement_sum data ~off ~len = 0xFFFF

let incremental_update ~old_checksum ~old_word ~new_word =
  (* RFC 1624: HC' = ~(~HC + ~m + m'). *)
  let sum =
    (lnot old_checksum land 0xFFFF)
    + (lnot old_word land 0xFFFF)
    + (new_word land 0xFFFF)
  in
  lnot (fold16 sum) land 0xFFFF
