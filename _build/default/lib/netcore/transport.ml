type icmp = {
  echo_kind : [ `Request | `Reply ];
  icmp_ident : int;
  icmp_seq : int;
}

type udp = { udp_src_port : int; udp_dst_port : int }

type tcp_flags = { syn : bool; ack : bool; fin : bool; psh : bool; rst : bool }

type tcp = {
  tcp_src_port : int;
  tcp_dst_port : int;
  seq : int32;
  ack_seq : int32;
  flags : tcp_flags;
  window : int;
}

type t = Icmp of icmp | Udp of udp | Tcp of tcp

let length = function Icmp _ -> 8 | Udp _ -> 8 | Tcp _ -> 20

let no_flags = { syn = false; ack = false; fin = false; psh = false; rst = false }

let flags_to_string f =
  String.concat ""
    [
      (if f.syn then "S" else "");
      (if f.ack then "A" else "");
      (if f.fin then "F" else "");
      (if f.psh then "P" else "");
      (if f.rst then "R" else "");
    ]

let src_port = function
  | Icmp _ -> None
  | Udp u -> Some u.udp_src_port
  | Tcp t -> Some t.tcp_src_port

let dst_port = function
  | Icmp _ -> None
  | Udp u -> Some u.udp_dst_port
  | Tcp t -> Some t.tcp_dst_port

let protocol = function
  | Icmp _ -> Ipv4.Icmp
  | Udp _ -> Ipv4.Udp
  | Tcp _ -> Ipv4.Tcp

let equal a b = a = b

let pp fmt = function
  | Icmp i ->
      Format.fprintf fmt "icmp-%s id=%d seq=%d"
        (match i.echo_kind with `Request -> "req" | `Reply -> "rep")
        i.icmp_ident i.icmp_seq
  | Udp u -> Format.fprintf fmt "udp %d->%d" u.udp_src_port u.udp_dst_port
  | Tcp t ->
      Format.fprintf fmt "tcp %d->%d seq=%ld ack=%ld [%s] win=%d" t.tcp_src_port
        t.tcp_dst_port t.seq t.ack_seq (flags_to_string t.flags) t.window
