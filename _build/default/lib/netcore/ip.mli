(** IPv4 addresses. *)

type t

val of_int32 : int32 -> t
val to_int32 : t -> int32

val of_octets : int -> int -> int -> int -> t
val of_string : string -> t option
val to_string : t -> string

val localhost : t
(** 127.0.0.1 *)

val make : subnet:int -> host:int -> t
(** [make ~subnet ~host] is 10.[subnet].0.[host] — the test-cluster
    addressing scheme. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
