(** Transport-layer headers carried inside IPv4 packets. *)

type icmp = {
  echo_kind : [ `Request | `Reply ];
  icmp_ident : int;  (** 16-bit *)
  icmp_seq : int;  (** 16-bit *)
}

type udp = { udp_src_port : int; udp_dst_port : int }

type tcp_flags = { syn : bool; ack : bool; fin : bool; psh : bool; rst : bool }

type tcp = {
  tcp_src_port : int;
  tcp_dst_port : int;
  seq : int32;
  ack_seq : int32;
  flags : tcp_flags;
  window : int;  (** advertised receive window, bytes (16-bit) *)
}

type t = Icmp of icmp | Udp of udp | Tcp of tcp

val length : t -> int
(** On-the-wire header length: ICMP 8, UDP 8, TCP 20. *)

val no_flags : tcp_flags
val flags_to_string : tcp_flags -> string

val src_port : t -> int option
val dst_port : t -> int option

val protocol : t -> Ipv4.protocol

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
