(** ARP messages (IPv4 over Ethernet only). *)

type op = Request | Reply

type t = {
  op : op;
  sender_mac : Mac.t;
  sender_ip : Ip.t;
  target_mac : Mac.t;  (** zero in requests *)
  target_ip : Ip.t;
}

val request : sender_mac:Mac.t -> sender_ip:Ip.t -> target_ip:Ip.t -> t
val reply : sender_mac:Mac.t -> sender_ip:Ip.t -> target_mac:Mac.t -> target_ip:Ip.t -> t

val length : int
(** 28 bytes on the wire. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
