(** Internet (RFC 1071) ones'-complement checksum. *)

val ones_complement_sum : Bytes.t -> off:int -> len:int -> int
(** Raw 16-bit ones'-complement sum (before final complement).  Odd-length
    ranges are padded with a virtual zero byte. *)

val compute : Bytes.t -> off:int -> len:int -> int
(** The checksum field value: complement of the sum, in [0, 0xffff]. *)

val verify : Bytes.t -> off:int -> len:int -> bool
(** [true] iff the range (including its embedded checksum field) sums to
    0xffff. *)

val incremental_update : old_checksum:int -> old_word:int -> new_word:int -> int
(** RFC 1624 incremental update: recompute a checksum after a single 16-bit
    word changed, without touching the rest of the data. *)
