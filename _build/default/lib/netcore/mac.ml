type t = int64

let mask48 = 0xFFFF_FFFF_FFFFL

let of_int64 v = Int64.logand v mask48
let to_int64 t = t

let broadcast = mask48

let byte t i = Int64.to_int (Int64.logand (Int64.shift_right_logical t (8 * (5 - i))) 0xFFL)

let to_string t =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x" (byte t 0) (byte t 1) (byte t 2)
    (byte t 3) (byte t 4) (byte t 5)

let of_string s =
  let parts = String.split_on_char ':' s in
  if List.length parts <> 6 then None
  else begin
    try
      let v =
        List.fold_left
          (fun acc p ->
            if String.length p <> 2 then raise Exit;
            Int64.logor (Int64.shift_left acc 8) (Int64.of_int (int_of_string ("0x" ^ p))))
          0L parts
      in
      Some v
    with Exit | Failure _ -> None
  end

let of_domid ~machine ~domid =
  (* Xen's OUI prefix 00:16:3e, then machine and domain ids. *)
  let prefix = 0x00163EL in
  of_int64
    (Int64.logor
       (Int64.shift_left prefix 24)
       (Int64.of_int (((machine land 0xFF) lsl 16) lor (domid land 0xFFFF))))

let is_broadcast t = Int64.equal t broadcast
let equal = Int64.equal
let compare = Int64.compare
let hash t = Int64.to_int t land max_int
let pp fmt t = Format.pp_print_string fmt (to_string t)
