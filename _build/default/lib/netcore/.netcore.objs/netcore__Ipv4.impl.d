lib/netcore/ipv4.ml: Format Ip Printf
