lib/netcore/arp.ml: Format Ip Mac
