lib/netcore/ip.ml: Format Int32 Printf String
