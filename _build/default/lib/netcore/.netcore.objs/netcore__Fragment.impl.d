lib/netcore/fragment.ml: Bytes Codec Hashtbl Ip Ipv4 List Packet
