lib/netcore/fragment.mli: Codec Packet
