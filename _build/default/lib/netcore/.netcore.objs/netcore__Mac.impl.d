lib/netcore/mac.ml: Format Int64 List Printf String
