lib/netcore/transport.ml: Format Ipv4 String
