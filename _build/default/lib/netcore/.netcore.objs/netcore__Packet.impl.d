lib/netcore/packet.ml: Arp Bytes Format Ipv4 Mac Transport
