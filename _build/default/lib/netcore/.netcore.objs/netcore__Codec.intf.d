lib/netcore/codec.mli: Bytes Format Ipv4 Packet Transport
