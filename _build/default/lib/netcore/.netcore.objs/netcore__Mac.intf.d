lib/netcore/mac.mli: Format
