lib/netcore/transport.mli: Format Ipv4
