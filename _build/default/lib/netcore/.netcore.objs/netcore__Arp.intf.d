lib/netcore/arp.mli: Format Ip Mac
