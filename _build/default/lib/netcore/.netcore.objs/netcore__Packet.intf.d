lib/netcore/packet.mli: Arp Bytes Format Ip Ipv4 Mac Transport
