lib/netcore/codec.ml: Arp Buffer Bytes Char Checksum Format Int32 Int64 Ip Ipv4 Mac Packet Result Transport
