lib/netcore/checksum.ml: Bytes Char
