lib/netcore/ip.mli: Format
