lib/netcore/checksum.mli: Bytes
