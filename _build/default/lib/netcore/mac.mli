(** 48-bit Ethernet MAC addresses. *)

type t

val of_int64 : int64 -> t
(** Low 48 bits are used. *)

val to_int64 : t -> int64

val of_string : string -> t option
(** Parses ["aa:bb:cc:dd:ee:ff"]. *)

val to_string : t -> string

val broadcast : t

val of_domid : machine:int -> domid:int -> t
(** Deterministic guest MAC in the Xen OUI (00:16:3e), unique per
    (machine, domain) pair. *)

val is_broadcast : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
