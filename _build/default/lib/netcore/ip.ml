type t = int32

let of_int32 v = v
let to_int32 t = t

let of_octets a b c d =
  let f x = Int32.of_int (x land 0xFF) in
  Int32.logor
    (Int32.shift_left (f a) 24)
    (Int32.logor (Int32.shift_left (f b) 16) (Int32.logor (Int32.shift_left (f c) 8) (f d)))

let octet t i = Int32.to_int (Int32.logand (Int32.shift_right_logical t (8 * (3 - i))) 0xFFl)

let to_string t =
  Printf.sprintf "%d.%d.%d.%d" (octet t 0) (octet t 1) (octet t 2) (octet t 3)

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      try
        let parse x =
          let v = int_of_string x in
          if v < 0 || v > 255 then raise Exit;
          v
        in
        Some (of_octets (parse a) (parse b) (parse c) (parse d))
      with Exit | Failure _ -> None)
  | _ -> None

let localhost = of_octets 127 0 0 1

let make ~subnet ~host = of_octets 10 subnet 0 host

let equal = Int32.equal
let compare = Int32.compare
let hash t = Int32.to_int t land max_int
let pp fmt t = Format.pp_print_string fmt (to_string t)
