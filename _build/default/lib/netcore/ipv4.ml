type protocol = Icmp | Tcp | Udp

let protocol_number = function Icmp -> 1 | Tcp -> 6 | Udp -> 17

let protocol_of_number = function
  | 1 -> Some Icmp
  | 6 -> Some Tcp
  | 17 -> Some Udp
  | _ -> None

let pp_protocol fmt p =
  Format.pp_print_string fmt (match p with Icmp -> "icmp" | Tcp -> "tcp" | Udp -> "udp")

type header = {
  src : Ip.t;
  dst : Ip.t;
  protocol : protocol;
  ident : int;
  frag_offset : int;
  more_fragments : bool;
  ttl : int;
}

let header_length = 20

let make ~src ~dst ~protocol ?(ident = 0) () =
  { src; dst; protocol; ident; frag_offset = 0; more_fragments = false; ttl = 64 }

let is_fragment h = h.more_fragments || h.frag_offset > 0

let equal_header a b =
  Ip.equal a.src b.src && Ip.equal a.dst b.dst && a.protocol = b.protocol
  && a.ident = b.ident && a.frag_offset = b.frag_offset
  && a.more_fragments = b.more_fragments && a.ttl = b.ttl

let pp_header fmt h =
  Format.fprintf fmt "%a -> %a %a id=%d%s" Ip.pp h.src Ip.pp h.dst pp_protocol
    h.protocol h.ident
    (if is_fragment h then
       Printf.sprintf " frag(off=%d more=%b)" h.frag_offset h.more_fragments
     else "")
