type ipv4_content =
  | Full of { transport : Transport.t; payload : Bytes.t }
  | Fragment of Bytes.t

type body =
  | Ipv4_body of { header : Ipv4.header; content : ipv4_content }
  | Arp_body of Arp.t
  | Xenloop_body of Bytes.t

type t = { src_mac : Mac.t; dst_mac : Mac.t; body : body }

let ethernet_header_length = 14

let ethertype = function
  | Ipv4_body _ -> 0x0800
  | Arp_body _ -> 0x0806
  | Xenloop_body _ -> 0x58D0

let ipv4 ~src_mac ~dst_mac ~header ~transport ~payload =
  { src_mac; dst_mac; body = Ipv4_body { header; content = Full { transport; payload } } }

let udp ~src_mac ~dst_mac ~src_ip ~dst_ip ~src_port ~dst_port ?ident payload =
  let header = Ipv4.make ~src:src_ip ~dst:dst_ip ~protocol:Ipv4.Udp ?ident () in
  let transport = Transport.Udp { udp_src_port = src_port; udp_dst_port = dst_port } in
  ipv4 ~src_mac ~dst_mac ~header ~transport ~payload

let tcp ~src_mac ~dst_mac ~src_ip ~dst_ip ~header ?ident payload =
  let ip_header = Ipv4.make ~src:src_ip ~dst:dst_ip ~protocol:Ipv4.Tcp ?ident () in
  ipv4 ~src_mac ~dst_mac ~header:ip_header ~transport:(Transport.Tcp header) ~payload

let icmp_echo ~src_mac ~dst_mac ~src_ip ~dst_ip ~kind ~icmp_ident ~icmp_seq ?ident
    payload =
  let header = Ipv4.make ~src:src_ip ~dst:dst_ip ~protocol:Ipv4.Icmp ?ident () in
  let transport = Transport.Icmp { echo_kind = kind; icmp_ident; icmp_seq } in
  ipv4 ~src_mac ~dst_mac ~header ~transport ~payload

let arp ~src_mac ~dst_mac msg = { src_mac; dst_mac; body = Arp_body msg }

let xenloop_ctrl ~src_mac ~dst_mac data =
  { src_mac; dst_mac; body = Xenloop_body data }

let ip_header t =
  match t.body with Ipv4_body { header; _ } -> Some header | _ -> None

let transport t =
  match t.body with
  | Ipv4_body { content = Full { transport; _ }; _ } -> Some transport
  | Ipv4_body { content = Fragment _; _ } | Arp_body _ | Xenloop_body _ -> None

let payload t =
  match t.body with
  | Ipv4_body { content = Full { payload; _ }; _ } -> Some payload
  | Ipv4_body { content = Fragment _; _ } | Arp_body _ | Xenloop_body _ -> None

let body_length = function
  | Ipv4_body { content = Full { transport; payload }; _ } ->
      Ipv4.header_length + Transport.length transport + Bytes.length payload
  | Ipv4_body { content = Fragment blob; _ } -> Ipv4.header_length + Bytes.length blob
  | Arp_body _ -> Arp.length
  | Xenloop_body data -> 2 + Bytes.length data

let wire_length t = ethernet_header_length + body_length t.body

let payload_length t =
  match t.body with
  | Ipv4_body { content = Full { payload; _ }; _ } -> Bytes.length payload
  | Ipv4_body { content = Fragment blob; _ } -> Bytes.length blob
  | Arp_body _ | Xenloop_body _ -> 0

let is_ipv4 t = match t.body with Ipv4_body _ -> true | _ -> false

let equal a b = a = b

let pp fmt t =
  Format.fprintf fmt "[%a -> %a " Mac.pp t.src_mac Mac.pp t.dst_mac;
  (match t.body with
  | Ipv4_body { header; content } -> (
      Ipv4.pp_header fmt header;
      match content with
      | Full { transport; payload } ->
          Format.fprintf fmt " %a len=%d" Transport.pp transport (Bytes.length payload)
      | Fragment blob -> Format.fprintf fmt " frag-blob len=%d" (Bytes.length blob))
  | Arp_body a -> Arp.pp fmt a
  | Xenloop_body data -> Format.fprintf fmt "xenloop-ctrl len=%d" (Bytes.length data));
  Format.fprintf fmt "]"
