(** The Xen credit scheduler (the scheduler running under the paper's
    testbed, Xen 3.2).

    Implements the classic algorithm: each vCPU belongs to a domain with a
    {e weight} (and optional {e cap}); every accounting period, credits are
    distributed proportionally to weight and debited as vCPUs run.  vCPUs
    with positive credit are UNDER priority, negative are OVER; a vCPU that
    wakes after blocking gets the temporary BOOST priority so I/O-latency-
    sensitive guests (like a domain running netback) preempt CPU hogs —
    the mechanism behind Dom0's responsiveness on the netfront path.

    The module is a faithful standalone model over the simulation engine:
    create a scheduler with [n] physical CPUs, add vCPUs, and submit work
    as bursts; the scheduler interleaves bursts according to credits,
    priorities, and the 30 ms timeslice.  Statistics expose per-domain CPU
    time so fairness is testable. *)

type t
type vcpu

type priority = Boost | Under | Over

val create :
  engine:Sim.Engine.t ->
  physical_cpus:int ->
  ?timeslice:Sim.Time.span ->
  ?accounting_period:Sim.Time.span ->
  ?boost:bool ->
  unit ->
  t
(** Defaults match Xen's credit scheduler: 30 ms timeslice, 30 ms
    accounting, BOOST enabled.  [?boost:false] disables the wake-up
    priority — the ablation knob that shows why I/O latency through Dom0
    is microseconds rather than timeslices. *)

val add_vcpu : t -> name:string -> weight:int -> ?cap_percent:int -> unit -> vcpu
(** [weight] is relative (Xen default 256).  [cap_percent], when given,
    limits the vCPU to that share of one physical CPU even when idle
    capacity exists. *)

val vcpu_name : vcpu -> string
val priority_of : vcpu -> priority
val credits : vcpu -> int

val run : vcpu -> Sim.Time.span -> unit
(** Execute a CPU burst on this vCPU (process context): blocks until the
    scheduler has granted enough physical-CPU time.  A vCPU that was idle
    (blocked) when the burst arrives enters BOOST. *)

val cpu_time : vcpu -> Sim.Time.span
(** Physical CPU time consumed so far. *)

val runnable : t -> int
(** vCPUs currently queued or running. *)
