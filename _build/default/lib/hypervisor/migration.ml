let migrate ~src ~dst domain =
  (match Machine.domain src (Domain.domid domain) with
  | Some d when d == domain && Domain.is_running domain -> ()
  | Some _ | None -> invalid_arg "Migration.migrate: domain not running on src");
  (* Pre-migration callback from the hypervisor (paper Sect. 3.4). *)
  Domain.run_pre_migrate domain;
  Domain.set_state domain Domain.Suspended;
  Machine.remove_domain src domain;
  (* Stop-and-copy blackout. *)
  Sim.Engine.sleep (Machine.params src).Params.migration_downtime;
  Machine.adopt_domain dst domain;
  Domain.run_post_restore domain
