lib/hypervisor/params.mli: Sim
