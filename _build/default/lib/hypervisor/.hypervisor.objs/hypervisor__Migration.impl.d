lib/hypervisor/migration.ml: Domain Machine Params Sim
