lib/hypervisor/credit_scheduler.mli: Sim
