lib/hypervisor/params.ml: Sim
