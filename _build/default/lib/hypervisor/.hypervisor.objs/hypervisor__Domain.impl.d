lib/hypervisor/domain.ml: Format List Memory Netcore Sim
