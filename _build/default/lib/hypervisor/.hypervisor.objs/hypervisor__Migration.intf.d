lib/hypervisor/migration.mli: Domain Machine
