lib/hypervisor/domain.mli: Format Memory Netcore Sim
