lib/hypervisor/machine.mli: Domain Evtchn Memory Netcore Params Sim Xenstore
