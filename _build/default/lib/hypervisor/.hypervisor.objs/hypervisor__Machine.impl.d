lib/hypervisor/machine.ml: Credit_scheduler Domain Evtchn Hashtbl List Memory Netcore Params Printf Sim Xenstore
