lib/hypervisor/credit_scheduler.ml: Int64 List Queue Sim
