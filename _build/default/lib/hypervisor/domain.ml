type state = Running | Suspended | Dead

type t = {
  mutable dom_id : int;
  dom_name : string;
  dom_mac : Netcore.Mac.t;
  dom_ip : Netcore.Ip.t;
  dom_cpu : Sim.Resource.t;
  dom_meter : Memory.Cost_meter.t;
  mutable dom_state : state;
  mutable pre_migrate : (unit -> unit) list;
  mutable post_restore : (unit -> unit) list;
  mutable shutdown : (unit -> unit) list;
}

let make ~domid ~name ~mac ~ip ?cpu () =
  {
    dom_id = domid;
    dom_name = name;
    dom_mac = mac;
    dom_ip = ip;
    dom_cpu =
      (match cpu with
      | Some cpu -> cpu
      | None -> Sim.Resource.create ~name:(name ^ ".vcpu"));
    dom_meter = Memory.Cost_meter.create ();
    dom_state = Running;
    pre_migrate = [];
    post_restore = [];
    shutdown = [];
  }

let domid t = t.dom_id
let set_domid t id = t.dom_id <- id
let name t = t.dom_name
let mac t = t.dom_mac
let ip t = t.dom_ip
let cpu t = t.dom_cpu
let meter t = t.dom_meter

let state t = t.dom_state
let set_state t s = t.dom_state <- s
let is_running t = t.dom_state = Running

let on_pre_migrate t f = t.pre_migrate <- f :: t.pre_migrate
let on_post_restore t f = t.post_restore <- f :: t.post_restore
let on_shutdown t f = t.shutdown <- f :: t.shutdown

(* Pre-migrate hooks run newest-first (modules stacked on top of the
   device plumbing must wind down first); post-restore hooks run in
   registration order (plumbing back first, then modules). *)
let run_pre_migrate t = List.iter (fun f -> f ()) t.pre_migrate
let run_post_restore t = List.iter (fun f -> f ()) (List.rev t.post_restore)
let run_shutdown t = List.iter (fun f -> f ()) t.shutdown

let pp fmt t =
  Format.fprintf fmt "%s(dom%d %a %a)" t.dom_name t.dom_id Netcore.Mac.pp t.dom_mac
    Netcore.Ip.pp t.dom_ip
