type priority = Boost | Under | Over

type vcpu = {
  sched : t;
  name : string;
  weight : int;
  cap_percent : int option;
  mutable credit_ns : int;
  mutable state : state;
  mutable boost : bool;
  mutable remaining_ns : int;  (** queued work not yet executed *)
  mutable demanded_ns : int;  (** cumulative work submitted *)
  mutable serviced_ns : int;  (** cumulative work executed *)
  mutable period_ns : int;  (** executed within the current accounting period *)
  mutable waiters : (int * (unit -> unit)) list;
}

and state = Idle | Queued | Running | Capped

and assignment = {
  av : vcpu;
  started : Sim.Time.t;
  mutable cancelled : bool;
}

and t = {
  engine : Sim.Engine.t;
  physical_cpus : int;
  timeslice_ns : int;
  period_ns_total : int;
  boost_enabled : bool;
  mutable vcpus : vcpu list;
  mutable free_cpus : int;
  mutable running : assignment list;
  queue_boost : vcpu Queue.t;
  queue_under : vcpu Queue.t;
  queue_over : vcpu Queue.t;
  capped : vcpu Queue.t;
}

let ns_of span = Int64.to_int (Sim.Time.to_ns span)

let create ~engine ~physical_cpus ?(timeslice = Sim.Time.ms 30)
    ?(accounting_period = Sim.Time.ms 30) ?(boost = true) () =
  if physical_cpus <= 0 then
    invalid_arg "Credit_scheduler.create: need at least one physical CPU";
  let t =
    {
      engine;
      physical_cpus;
      timeslice_ns = ns_of timeslice;
      period_ns_total = ns_of accounting_period;
      boost_enabled = boost;
      vcpus = [];
      free_cpus = physical_cpus;
      running = [];
      queue_boost = Queue.create ();
      queue_under = Queue.create ();
      queue_over = Queue.create ();
      capped = Queue.create ();
    }
  in
  t

let vcpu_name v = v.name
let credits v = v.credit_ns

let priority_of v =
  if v.boost then Boost else if v.credit_ns > 0 then Under else Over

let cpu_time v = Sim.Time.ns_int64 (Int64.of_int v.serviced_ns)

let runnable t =
  Queue.length t.queue_boost + Queue.length t.queue_under + Queue.length t.queue_over
  + (t.physical_cpus - t.free_cpus)

let cap_reached v =
  match v.cap_percent with
  | None -> false
  | Some cap -> v.period_ns >= v.sched.period_ns_total * cap / 100

let enqueue t v =
  v.state <- Queued;
  match priority_of v with
  | Boost -> Queue.push v t.queue_boost
  | Under -> Queue.push v t.queue_under
  | Over -> Queue.push v t.queue_over

let pick t =
  match Queue.take_opt t.queue_boost with
  | Some v -> Some v
  | None -> (
      match Queue.take_opt t.queue_under with
      | Some v -> Some v
      | None -> Queue.take_opt t.queue_over)

let wake_waiters v =
  let ready, still =
    List.partition (fun (target, _) -> v.serviced_ns >= target) v.waiters
  in
  v.waiters <- still;
  List.iter (fun (_, resume) -> resume ()) (List.rev ready)

let cap_allowance v =
  match v.cap_percent with
  | None -> max_int
  | Some cap -> max 0 ((v.sched.period_ns_total * cap / 100) - v.period_ns)

(* Account [ran] nanoseconds of execution and requeue or idle the vCPU. *)
let rec finish t v ~ran =
  v.remaining_ns <- v.remaining_ns - ran;
  v.serviced_ns <- v.serviced_ns + ran;
  v.period_ns <- v.period_ns + ran;
  v.credit_ns <- v.credit_ns - ran;
  t.free_cpus <- t.free_cpus + 1;
  wake_waiters v;
  if v.remaining_ns > 0 then begin
    if cap_reached v then begin
      v.state <- Capped;
      Queue.push v t.capped
    end
    else enqueue t v
  end
  else v.state <- Idle

and dispatch t =
  if t.free_cpus > 0 then begin
    match pick t with
    | None -> ()
    | Some v when cap_allowance v = 0 ->
        (* Out of budget for this accounting period. *)
        v.state <- Capped;
        Queue.push v t.capped;
        dispatch t
    | Some v ->
        t.free_cpus <- t.free_cpus - 1;
        v.state <- Running;
        (* BOOST is consumed by being scheduled (as in Xen): a running vCPU
           no longer outranks a waking one. *)
        v.boost <- false;
        let a = { av = v; started = Sim.Engine.now t.engine; cancelled = false } in
        t.running <- a :: t.running;
        let slice = min (min t.timeslice_ns v.remaining_ns) (cap_allowance v) in
        Sim.Engine.after t.engine (Sim.Time.ns slice) (fun () ->
            if not a.cancelled then begin
              t.running <- List.filter (fun a' -> not (a' == a)) t.running;
              finish t v ~ran:slice;
              dispatch t
            end);
        dispatch t
  end

(* Xen's runq tickle: a waking BOOST vCPU preempts a running lower-priority
   vCPU instead of waiting for its timeslice to expire. *)
let tickle t =
  if t.free_cpus = 0 && not (Queue.is_empty t.queue_boost) then begin
    let prio_rank v = match priority_of v with Boost -> 2 | Under -> 1 | Over -> 0 in
    let victim =
      List.fold_left
        (fun best a ->
          match best with
          | None -> if prio_rank a.av < 2 then Some a else None
          | Some b -> if prio_rank a.av < prio_rank b.av then Some a else best)
        None t.running
    in
    match victim with
    | None -> ()
    | Some a ->
        a.cancelled <- true;
        t.running <- List.filter (fun a' -> not (a' == a)) t.running;
        let ran =
          Int64.to_int
            (Sim.Time.to_ns (Sim.Time.diff (Sim.Engine.now t.engine) a.started))
        in
        finish t a.av ~ran;
        dispatch t
  end

let accounting_tick t =
  let total_weight = List.fold_left (fun acc v -> acc + v.weight) 0 t.vcpus in
  if total_weight > 0 then begin
    let capacity = t.period_ns_total * t.physical_cpus in
    List.iter
      (fun v ->
        let grant = capacity * v.weight / total_weight in
        v.credit_ns <- v.credit_ns + grant;
        (* Clamp, as Xen does, so an idle domain cannot bank unbounded
           credit and then starve everyone. *)
        let bound = 2 * t.period_ns_total in
        if v.credit_ns > bound then v.credit_ns <- bound;
        if v.credit_ns < -bound then v.credit_ns <- -bound;
        v.period_ns <- 0)
      t.vcpus
  end;
  (* Capped vCPUs get a fresh period. *)
  let rec release () =
    match Queue.take_opt t.capped with
    | None -> ()
    | Some v ->
        if v.remaining_ns > 0 then enqueue t v else v.state <- Idle;
        release ()
  in
  release ();
  dispatch t

let add_vcpu t ~name ~weight ?cap_percent () =
  if weight <= 0 then invalid_arg "Credit_scheduler.add_vcpu: weight must be positive";
  (match cap_percent with
  | Some c when c <= 0 || c > 100 ->
      invalid_arg "Credit_scheduler.add_vcpu: cap must be in 1..100"
  | Some _ | None -> ());
  let v =
    {
      sched = t;
      name;
      weight;
      cap_percent;
      credit_ns = 0;
      state = Idle;
      boost = false;
      remaining_ns = 0;
      demanded_ns = 0;
      serviced_ns = 0;
      period_ns = 0;
      waiters = [];
    }
  in
  (if t.vcpus = [] then
     (* First vCPU: start the accounting clock. *)
     ignore
       (Sim.Engine.every t.engine
          (Sim.Time.ns t.period_ns_total)
          (fun () -> accounting_tick t)));
  t.vcpus <- v :: t.vcpus;
  v

let run v span =
  let t = v.sched in
  let ns = ns_of span in
  if ns < 0 then invalid_arg "Credit_scheduler.run: negative span";
  if ns > 0 then begin
    v.demanded_ns <- v.demanded_ns + ns;
    let target = v.demanded_ns in
    let was_idle = v.state = Idle in
    v.remaining_ns <- v.remaining_ns + ns;
    if was_idle then begin
      (* A vCPU waking from idle gets BOOST (I/O latency mechanism). *)
      if t.boost_enabled then v.boost <- true;
      enqueue t v;
      dispatch t;
      if t.boost_enabled then tickle t
    end;
    if v.serviced_ns < target then
      Sim.Engine.suspend ~register:(fun resume ->
          v.waiters <- (target, resume) :: v.waiters)
  end
