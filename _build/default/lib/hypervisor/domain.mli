(** Domains (VMs).

    A domain is the unit of isolation: it has a vCPU (a serial
    {!Sim.Resource.t} — all of its protocol processing contends on it), a
    cost meter, an identity (MAC and IP persist across migration; the
    domain id does not, as in Xen), and lifecycle hooks that kernel modules
    such as XenLoop register to learn about suspend/migrate/shutdown
    events. *)

type state = Running | Suspended | Dead

type t

val make :
  domid:int ->
  name:string ->
  mac:Netcore.Mac.t ->
  ip:Netcore.Ip.t ->
  ?cpu:Sim.Resource.t ->
  unit ->
  t
(** [cpu] defaults to a dedicated serial resource; machines running the
    credit scheduler pass a scheduler-backed resource instead. *)

val domid : t -> int
val set_domid : t -> int -> unit
(** Used by migration: the target machine assigns a fresh id. *)

val name : t -> string
val mac : t -> Netcore.Mac.t
val ip : t -> Netcore.Ip.t
val cpu : t -> Sim.Resource.t
val meter : t -> Memory.Cost_meter.t

val state : t -> state
val set_state : t -> state -> unit
val is_running : t -> bool

(** {1 Lifecycle hooks}

    [on_pre_migrate] runs in process context before the domain is detached
    from its machine (XenLoop uses it to tear down channels and save
    in-flight packets); [on_post_restore] runs after the domain is attached
    to the target machine; [on_shutdown] runs when the domain is destroyed.
    Hooks run most-recently-registered first. *)

val on_pre_migrate : t -> (unit -> unit) -> unit
val on_post_restore : t -> (unit -> unit) -> unit
val on_shutdown : t -> (unit -> unit) -> unit

val run_pre_migrate : t -> unit
val run_post_restore : t -> unit
val run_shutdown : t -> unit

val pp : Format.formatter -> t -> unit
