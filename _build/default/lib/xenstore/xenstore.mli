(** XenStore: the hierarchical key-value store maintained by Dom0.

    Permission model, after the paper (Sect. 3.2): Dom0 (domain id 0) can
    read and write everything; an unprivileged guest can read and modify
    only its own subtree [/local/domain/<id>], and in particular cannot read
    other guests' entries — which is exactly why XenLoop needs a discovery
    module in Dom0. *)

type t

type domid = int

type error = Noent | Eacces | Einval

val pp_error : Format.formatter -> error -> unit

val create : unit -> t

val dom0 : domid

val domain_path : domid -> string
(** ["/local/domain/<id>"]. *)

(** {1 Store operations}

    Paths are ['/']-separated, absolute ("/local/domain/3/xenloop").
    Writing creates intermediate nodes.  [rm] removes a whole subtree. *)

val write : t -> caller:domid -> path:string -> value:string -> (unit, error) result
val read : t -> caller:domid -> path:string -> (string, error) result
val rm : t -> caller:domid -> path:string -> (unit, error) result
val exists : t -> caller:domid -> path:string -> bool
(** [false] also when the caller lacks read permission. *)

val directory : t -> caller:domid -> path:string -> (string list, error) result
(** Child node names, sorted. *)

(** {1 Watches} *)

type event = Written of string | Removed
type watch

val watch :
  t -> caller:domid -> path:string -> (string -> event -> unit) -> (watch, error) result
(** Fire the callback for every change at or below [path] (the callback
    receives the affected path).  The caller must be able to read [path]. *)

val unwatch : t -> watch -> unit

(** {1 Introspection} *)

val node_count : t -> int
