let bw_tcp ~client ~server ~dst ?(total_bytes = 8 * 1024 * 1024) () =
  let result =
    Netperf.tcp_stream ~client ~server ~dst ~message_size:65536 ~total_bytes ()
  in
  result.Netperf.mbps

let lat_tcp ~client ~server ~dst ?(round_trips = 2000) () =
  let result =
    Netperf.tcp_rr ~client ~server ~dst ~transactions:round_trips ~request_size:1
      ~response_size:1 ()
  in
  result.Netperf.avg_latency_us
