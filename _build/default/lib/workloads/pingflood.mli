(** ICMP flood ping (the paper's "Flood Ping RTT" rows): each echo request
    is sent as soon as the previous reply arrives. *)

type result = {
  sent : int;
  received : int;
  avg_rtt_us : float;
  min_rtt_us : float;
  max_rtt_us : float;
}

val run :
  Host.t -> dst:Netcore.Ip.t -> ?count:int -> ?payload_len:int -> unit -> result
(** Default 500 pings of 56 bytes.  Process context. *)
