lib/workloads/pingflood.ml: Host Netstack Sim
