lib/workloads/osu.mli: Host Netcore
