lib/workloads/mpi.ml: Bytes Format Host Int32 Netstack Sim
