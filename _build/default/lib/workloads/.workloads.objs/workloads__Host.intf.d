lib/workloads/host.mli: Netstack Sim
