lib/workloads/netpipe.ml: Bytes Host List Mpi Netstack Sim
