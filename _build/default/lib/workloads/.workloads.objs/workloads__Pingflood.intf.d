lib/workloads/pingflood.mli: Host Netcore
