lib/workloads/lmbench.ml: Netperf
