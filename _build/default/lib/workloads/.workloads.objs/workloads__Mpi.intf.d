lib/workloads/mpi.mli: Bytes Host Netcore Netstack
