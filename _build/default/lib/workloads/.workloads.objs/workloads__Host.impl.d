lib/workloads/host.ml: Netstack Sim
