lib/workloads/lmbench.mli: Host Netcore
