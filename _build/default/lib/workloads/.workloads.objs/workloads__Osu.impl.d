lib/workloads/osu.ml: Bytes Host List Mpi Netstack Sim
