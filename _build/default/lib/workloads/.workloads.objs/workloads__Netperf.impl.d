lib/workloads/netperf.ml: Bytes Format Host Netcore Netstack Sim
