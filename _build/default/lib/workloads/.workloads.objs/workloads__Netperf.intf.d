lib/workloads/netperf.mli: Host Netcore Sim
