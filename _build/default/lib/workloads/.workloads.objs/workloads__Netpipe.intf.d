lib/workloads/netpipe.mli: Host Netcore
