type bw_point = { size : int; mbps : float }
type lat_point = { size : int; latency_us : float }

let default_sizes = [ 1; 4; 16; 64; 256; 1024; 4096; 16384; 65536; 262144 ]

let default_iterations size = max 2 (min 64 (524_288 / max 1 size / 16))

let elapsed_s engine t0 = Sim.Time.to_sec_f (Sim.Time.diff (Sim.Engine.now engine) t0)

(* --- Uni-directional bandwidth --- *)

let uni_receiver conn ~window =
  try
    while true do
      for _ = 1 to window do
        let (_ : Bytes.t) = Mpi.recv conn in
        ()
      done;
      Mpi.send_empty conn
    done
  with Netstack.Tcp.Tcp_error _ | Failure _ -> ()

let uni_one_size ~engine ~conn ~size ~window ~iterations =
  let payload = Bytes.make size 'b' in
  let run () =
    for _ = 1 to window do
      Mpi.send conn payload
    done;
    let (_ : Bytes.t) = Mpi.recv conn in
    ()
  in
  run () (* warm-up iteration *);
  let t0 = Sim.Engine.now engine in
  for _ = 1 to iterations do
    run ()
  done;
  let dt = elapsed_s engine t0 in
  let bytes = float_of_int (size * window * iterations) in
  { size; mbps = bytes *. 8.0 /. dt /. 1e6 }

let uni_bandwidth ~client ~server ~dst ?(sizes = default_sizes) ?(window = 16)
    ?(iterations_for = default_iterations) () =
  let engine = Host.engine client in
  List.map
    (fun size ->
      (* A fresh connection per size keeps the receiver loop's window in
         lockstep with the sender. *)
      let client_conn, server_conn = Mpi.establish ~client ~server ~dst () in
      Sim.Engine.spawn (Host.engine server) (fun () -> uni_receiver server_conn ~window);
      let point =
        uni_one_size ~engine ~conn:client_conn ~size ~window
          ~iterations:(iterations_for size)
      in
      Mpi.close client_conn;
      point)
    sizes

(* --- Bi-directional bandwidth --- *)

let bi_bandwidth ~client ~server ~dst ?(sizes = default_sizes) ?(window = 16)
    ?(iterations_for = default_iterations) () =
  let engine = Host.engine client in
  List.map
    (fun size ->
      let iterations = 1 + iterations_for size in
      let client_conn, server_conn = Mpi.establish ~client ~server ~dst () in
      let payload = Bytes.make size 'c' in
      (* Server side: per round, concurrently send a window and receive a
         window, then exchange empty acknowledgements. *)
      Sim.Engine.spawn (Host.engine server) (fun () ->
          try
            while true do
              let sent = ref false in
              Sim.Engine.spawn (Host.engine server) (fun () ->
                  (try
                     for _ = 1 to window do
                       Mpi.send server_conn payload
                     done
                   with Netstack.Tcp.Tcp_error _ | Failure _ -> ());
                  sent := true);
              for _ = 1 to window do
                let (_ : Bytes.t) = Mpi.recv server_conn in
                ()
              done;
              while not !sent do
                Sim.Engine.sleep (Sim.Time.us 50)
              done;
              Mpi.send_empty server_conn;
              let (_ : Bytes.t) = Mpi.recv server_conn in
              ()
            done
          with Netstack.Tcp.Tcp_error _ | Failure _ -> ());
      let round () =
        let sent = ref false in
        Sim.Engine.spawn engine (fun () ->
            (try
               for _ = 1 to window do
                 Mpi.send client_conn payload
               done
             with Netstack.Tcp.Tcp_error _ | Failure _ -> ());
            sent := true);
        for _ = 1 to window do
          let (_ : Bytes.t) = Mpi.recv client_conn in
          ()
        done;
        while not !sent do
          Sim.Engine.sleep (Sim.Time.us 50)
        done;
        Mpi.send_empty client_conn;
        let (_ : Bytes.t) = Mpi.recv client_conn in
        ()
      in
      round () (* warm-up *);
      let t0 = Sim.Engine.now engine in
      for _ = 1 to iterations - 1 do
        round ()
      done;
      let dt = elapsed_s engine t0 in
      (* Both directions moved a window per round. *)
      let bytes = float_of_int (2 * size * window * (iterations - 1)) in
      Mpi.close client_conn;
      { size; mbps = bytes *. 8.0 /. dt /. 1e6 })
    sizes

(* --- Latency --- *)

let latency ~client ~server ~dst ?(sizes = default_sizes) ?(iterations_for = default_iterations)
    () =
  let client_conn, server_conn = Mpi.establish ~client ~server ~dst () in
  Sim.Engine.spawn (Host.engine server) (fun () ->
      try
        while true do
          let msg = Mpi.recv server_conn in
          Mpi.send server_conn msg
        done
      with Netstack.Tcp.Tcp_error _ | Failure _ -> ());
  let engine = Host.engine client in
  let points =
    List.map
      (fun size ->
        let payload = Bytes.make size 'l' in
        let iterations = 4 * iterations_for size in
        Mpi.send client_conn payload;
        let (_ : Bytes.t) = Mpi.recv client_conn in
        let t0 = Sim.Engine.now engine in
        for _ = 1 to iterations do
          Mpi.send client_conn payload;
          let (_ : Bytes.t) = Mpi.recv client_conn in
          ()
        done;
        let dt = elapsed_s engine t0 in
        { size; latency_us = dt *. 1e6 /. (2.0 *. float_of_int iterations) })
      sizes
  in
  Mpi.close client_conn;
  points
