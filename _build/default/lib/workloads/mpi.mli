(** A minimal MPI-style message layer over TCP stream sockets
    (length-prefixed messages), the transport under the NetPIPE-MPICH and
    OSU benchmarks.  Like MPICH's ch3:sock channel, it runs over ordinary
    sockets and therefore benefits from XenLoop without modification. *)

type conn

val establish :
  client:Host.t ->
  server:Host.t ->
  dst:Netcore.Ip.t ->
  ?port:int ->
  unit ->
  conn * conn
(** [(client_side, server_side)].  Process context. *)

val of_tcp : Netstack.Tcp.conn -> conn
(** Frame an existing TCP connection with the MPI length-prefix protocol. *)

val send : conn -> Bytes.t -> unit
val recv : conn -> Bytes.t

val send_empty : conn -> unit
(** A 0-byte message (used as the OSU window acknowledgement). *)

val close : conn -> unit

val fresh_port : unit -> int
