(** lmbench-style TCP tests: [bw_tcp] (64 KiB messages, bulk bandwidth) and
    [lat_tcp] (1-byte round trips), the lmbench rows of Tables 1–3. *)

val bw_tcp :
  client:Host.t ->
  server:Host.t ->
  dst:Netcore.Ip.t ->
  ?total_bytes:int ->
  unit ->
  float
(** Mbps. *)

val lat_tcp :
  client:Host.t ->
  server:Host.t ->
  dst:Netcore.Ip.t ->
  ?round_trips:int ->
  unit ->
  float
(** Average round-trip time in microseconds. *)
