type point = { size : int; latency_us : float; mbps : float }

let default_sizes =
  let rec go acc size = if size > 262_144 then List.rev acc else go (size :: acc) (size * 2) in
  go [] 1

let default_reps size = max 4 (min 200 (262_144 / max 1 size))

let echo_server conn =
  try
    while true do
      let msg = Mpi.recv conn in
      Mpi.send conn msg
    done
  with Netstack.Tcp.Tcp_error _ | Failure _ -> ()

let measure ~engine ~conn ~size ~reps =
  let payload = Bytes.make size 'n' in
  (* One untimed warm-up exchange. *)
  Mpi.send conn payload;
  let (_ : Bytes.t) = Mpi.recv conn in
  let t0 = Sim.Engine.now engine in
  for _ = 1 to reps do
    Mpi.send conn payload;
    let (_ : Bytes.t) = Mpi.recv conn in
    ()
  done;
  let dt = Sim.Time.to_sec_f (Sim.Time.diff (Sim.Engine.now engine) t0) in
  let one_way_s = dt /. (2.0 *. float_of_int reps) in
  {
    size;
    latency_us = one_way_s *. 1e6;
    mbps = (if size = 0 then 0.0 else float_of_int size *. 8.0 /. one_way_s /. 1e6);
  }

let sweep ~client ~server ~dst ?(sizes = default_sizes) ?(reps_for = default_reps) () =
  let client_conn, server_conn = Mpi.establish ~client ~server ~dst () in
  Sim.Engine.spawn (Host.engine server) (fun () -> echo_server server_conn);
  let engine = Host.engine client in
  let points =
    List.map (fun size -> measure ~engine ~conn:client_conn ~size ~reps:(reps_for size)) sizes
  in
  Mpi.close client_conn;
  points

let single ~client ~server ~dst ~size ?reps () =
  let reps = match reps with Some r -> r | None -> default_reps size in
  match sweep ~client ~server ~dst ~sizes:[ size ] ~reps_for:(fun _ -> reps) () with
  | [ point ] -> point
  | _ -> assert false
