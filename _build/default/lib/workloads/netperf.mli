(** netperf-style benchmarks: TCP_RR, UDP_RR (1-byte request–response
    transactions) and TCP_STREAM / UDP_STREAM (unidirectional bulk
    throughput). *)

type rr_result = {
  transactions : int;
  transactions_per_sec : float;
  avg_latency_us : float;
  rr_client_cpu : float;  (** client vCPU utilization, percent *)
  rr_server_cpu : float;
}

type stream_result = {
  mbps : float;
  bytes_received : int;
  messages_sent : int;
  datagrams_dropped : int;  (** socket-buffer drops at the receiver (UDP) *)
  st_client_cpu : float;  (** client vCPU utilization, percent *)
  st_server_cpu : float;
}

val tcp_rr :
  client:Host.t ->
  server:Host.t ->
  dst:Netcore.Ip.t ->
  ?port:int ->
  ?transactions:int ->
  ?request_size:int ->
  ?response_size:int ->
  unit ->
  rr_result
(** Default 2000 transactions of 1 byte each way.  Blocking; process
    context. *)

val udp_rr :
  client:Host.t ->
  server:Host.t ->
  dst:Netcore.Ip.t ->
  ?port:int ->
  ?transactions:int ->
  ?request_size:int ->
  ?response_size:int ->
  unit ->
  rr_result

val tcp_stream :
  client:Host.t ->
  server:Host.t ->
  dst:Netcore.Ip.t ->
  ?port:int ->
  ?message_size:int ->
  ?total_bytes:int ->
  unit ->
  stream_result
(** Default 16 KiB messages, 8 MiB total.  Throughput is measured at the
    receiver over the receive interval. *)

val udp_stream :
  client:Host.t ->
  server:Host.t ->
  dst:Netcore.Ip.t ->
  ?port:int ->
  ?message_size:int ->
  ?total_bytes:int ->
  unit ->
  stream_result
(** Default 60 KiB datagrams (netperf-style large sends that fragment at
    the MTU), 8 MiB total. *)
