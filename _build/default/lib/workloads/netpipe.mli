(** NetPIPE-MPICH: protocol-independent ping-pong with increasing message
    sizes (paper Figs. 6–7 and the netpipe rows of Tables 2–3). *)

type point = { size : int; latency_us : float; mbps : float }

val default_sizes : int list
(** Powers of two from 1 B to 256 KiB. *)

val sweep :
  client:Host.t ->
  server:Host.t ->
  dst:Netcore.Ip.t ->
  ?sizes:int list ->
  ?reps_for:(int -> int) ->
  unit ->
  point list
(** For each size, [reps] request–response exchanges; latency is the
    average one-way time, throughput is size / one-way-time.  Process
    context. *)

val single :
  client:Host.t ->
  server:Host.t ->
  dst:Netcore.Ip.t ->
  size:int ->
  ?reps:int ->
  unit ->
  point
