type result = {
  sent : int;
  received : int;
  avg_rtt_us : float;
  min_rtt_us : float;
  max_rtt_us : float;
}

let run host ~dst ?(count = 500) ?(payload_len = 56) () =
  let stats = Sim.Stats.create () in
  let received = ref 0 in
  for _ = 1 to count do
    match Netstack.Stack.ping host.Host.stack ~dst ~payload_len () with
    | Some rtt ->
        incr received;
        Sim.Stats.add stats (Sim.Time.to_us_f rtt)
    | None -> ()
  done;
  {
    sent = count;
    received = !received;
    avg_rtt_us = Sim.Stats.mean stats;
    min_rtt_us = (if !received = 0 then 0.0 else Sim.Stats.min stats);
    max_rtt_us = (if !received = 0 then 0.0 else Sim.Stats.max stats);
  }
