(** OSU MPI micro-benchmarks (paper Figs. 8–10): uni-directional bandwidth
    (windowed back-to-back sends), bi-directional bandwidth, and ping-pong
    latency. *)

type bw_point = { size : int; mbps : float }
type lat_point = { size : int; latency_us : float }

val default_sizes : int list
(** Powers of four from 1 B to 256 KiB. *)

val uni_bandwidth :
  client:Host.t ->
  server:Host.t ->
  dst:Netcore.Ip.t ->
  ?sizes:int list ->
  ?window:int ->
  ?iterations_for:(int -> int) ->
  unit ->
  bw_point list
(** Per iteration the sender streams [window] messages back-to-back; the
    receiver acknowledges the whole window with an empty message. *)

val bi_bandwidth :
  client:Host.t ->
  server:Host.t ->
  dst:Netcore.Ip.t ->
  ?sizes:int list ->
  ?window:int ->
  ?iterations_for:(int -> int) ->
  unit ->
  bw_point list
(** Both sides stream a window simultaneously; reported bandwidth is the
    aggregate of the two directions. *)

val latency :
  client:Host.t ->
  server:Host.t ->
  dst:Netcore.Ip.t ->
  ?sizes:int list ->
  ?iterations_for:(int -> int) ->
  unit ->
  lat_point list
(** Ping-pong; reports the average one-way latency per size. *)
