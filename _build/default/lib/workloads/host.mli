(** What a workload needs from an endpoint: its socket layers. *)

type t = {
  stack : Netstack.Stack.t;
  udp : Netstack.Udp.t;
  tcp : Netstack.Tcp.t;
}

val engine : t -> Sim.Engine.t
val now_s : t -> float
(** Current simulated time in seconds. *)
