type t = {
  stack : Netstack.Stack.t;
  udp : Netstack.Udp.t;
  tcp : Netstack.Tcp.t;
}

let engine t = Netstack.Stack.engine t.stack
let now_s t = Sim.Time.instant_to_sec_f (Sim.Engine.now (engine t))
