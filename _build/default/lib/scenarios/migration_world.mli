(** Two Xen machines on one switch, with migratable XenLoop guests — the
    world behind the paper's Sect. 4.5 / Fig. 11 experiment and the
    migration tests.

    Each machine runs a Dom0 with a software bridge, an uplink NIC to the
    switch, and a XenLoop discovery module.  Guests carry their stack,
    their XenLoop module, and vif plumbing that re-attaches automatically
    on migration (via domain lifecycle hooks, in the order the paper
    describes: XenLoop winds down first, then the vif detaches; on restore
    the vif reattaches first, then XenLoop re-advertises and resends saved
    packets). *)

type machine_env = {
  machine : Hypervisor.Machine.t;
  bridge : Xennet.Bridge.t;
  dom0_ep : Endpoint.t;
  discovery : Xenloop.Discovery.t;
}

type guest_env = {
  domain : Hypervisor.Domain.t;
  ep : Endpoint.t;
  xl_module : Xenloop.Guest_module.t;
  location : machine_env ref;
  vif : Xennet.Vif.t ref;
  destination : machine_env option ref;
}

type t = {
  engine : Sim.Engine.t;
  params : Hypervisor.Params.t;
  switch : Physnet.Switch.t;
  m1 : machine_env;
  m2 : machine_env;
  guest1 : guest_env;  (** starts on [m1] *)
  guest2 : guest_env;  (** starts on [m2] *)
}

val create : ?params:Hypervisor.Params.t -> unit -> t

val migrate : t -> guest_env -> dst:machine_env -> unit
(** Live-migrate a guest (process context): runs the full callback
    choreography and leaves the guest attached to [dst]'s bridge. *)

val co_resident : guest_env -> guest_env -> bool
