lib/scenarios/endpoint.ml: Netstack Sim
