lib/scenarios/setup.ml: Endpoint Hypervisor List Netcore Netstack Physnet Printf Sim Xenloop Xennet
