lib/scenarios/experiment.mli: Setup Sim
