lib/scenarios/endpoint.mli: Hypervisor Netcore Netstack Sim
