lib/scenarios/experiment.ml: Setup Sim
