lib/scenarios/migration_world.ml: Endpoint Hypervisor List Netcore Netstack Physnet Printf Setup Sim Xenloop Xennet
