lib/scenarios/migration_world.mli: Endpoint Hypervisor Physnet Sim Xenloop Xennet
