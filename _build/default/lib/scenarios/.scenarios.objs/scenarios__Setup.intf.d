lib/scenarios/setup.mli: Endpoint Hypervisor Netcore Netstack Sim Xenloop Xennet
