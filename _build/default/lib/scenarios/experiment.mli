(** Running measurement functions inside a scenario's engine. *)

val execute : ?limit:Sim.Time.span -> Setup.duo -> (unit -> 'a) -> 'a
(** [execute duo f] runs [warmup] and then [f] as a simulation process and
    drives the engine until [f] returns (bounded by [limit], default 600
    simulated seconds — periodic timers like discovery keep the event queue
    non-empty forever, so an unbounded run would not terminate).
    @raise Failure if [f] has not completed within the limit. *)

val run_process :
  ?limit:Sim.Time.span -> Sim.Engine.t -> (unit -> 'a) -> 'a
(** Same, on a bare engine without a scenario warmup. *)
