(** A network endpoint: one host (or guest) with a full socket stack. *)

type t = {
  ep_name : string;
  cpu : Sim.Resource.t;
  stack : Netstack.Stack.t;
  udp : Netstack.Udp.t;
  tcp : Netstack.Tcp.t;
}

val make :
  engine:Sim.Engine.t ->
  params:Hypervisor.Params.t ->
  cpu:Sim.Resource.t ->
  name:string ->
  ip:Netcore.Ip.t ->
  mac:Netcore.Mac.t ->
  t
(** Builds the stack and attaches the UDP and TCP layers.  The Ethernet
    device is attached separately by the scenario (vif, NIC, or none for
    pure-loopback hosts). *)

val ip : t -> Netcore.Ip.t
val mac : t -> Netcore.Mac.t
