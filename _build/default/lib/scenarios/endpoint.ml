type t = {
  ep_name : string;
  cpu : Sim.Resource.t;
  stack : Netstack.Stack.t;
  udp : Netstack.Udp.t;
  tcp : Netstack.Tcp.t;
}

let make ~engine ~params ~cpu ~name ~ip ~mac =
  let stack = Netstack.Stack.create ~engine ~params ~cpu ~ip ~mac () in
  let udp = Netstack.Udp.attach stack in
  let tcp = Netstack.Tcp.attach stack in
  { ep_name = name; cpu; stack; udp; tcp }

let ip t = Netstack.Stack.ip_addr t.stack
let mac t = Netstack.Stack.mac_addr t.stack
