let default_limit = Sim.Time.sec 600

let run_process ?(limit = default_limit) engine f =
  let result = ref None in
  Sim.Engine.spawn engine (fun () -> result := Some (f ()));
  Sim.Engine.run ~until:(Sim.Time.add (Sim.Engine.now engine) limit) engine;
  match !result with
  | Some r -> r
  | None -> failwith "Experiment: measurement did not complete within the time limit"

let execute ?limit duo f =
  run_process ?limit duo.Setup.engine (fun () ->
      duo.Setup.warmup ();
      f ())
